package detect

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzDetectorStep pins the Step contract under arbitrary knob/sample
// combinations: construction rejects out-of-domain knobs instead of
// panicking, NaN/Inf samples are rejected without touching state, no
// accepted sequence fires during warm-up, and every accepted sample
// leaves the state valid (finite, non-negative sums).
func FuzzDetectorStep(f *testing.F) {
	f.Add(0.2, 0.5, 5.0, 8, 100.0, 100.0, 600.0)
	f.Add(0.5, 1.0, 2.0, 2, 0.0, 1e9, -1e9)
	f.Add(0.9, 0.0, 0.0, 1, math.NaN(), math.Inf(1), 3.5)
	f.Add(-1.0, -1.0, -1.0, -1, 1.0, 2.0, 3.0)
	f.Add(0.2, 0.5, 5.0, 3, math.MaxFloat64, -math.MaxFloat64, 0.0)
	f.Fuzz(func(t *testing.T, alpha, drift, threshold float64, warmup int, x0, x1, x2 float64) {
		d, err := New(Config{Alpha: alpha, Drift: drift, Threshold: threshold, Warmup: warmup})
		if err != nil {
			return
		}
		cfg := d.Config()
		if cfg.Alpha <= 0 || cfg.Alpha >= 1 || cfg.Drift < 0 || cfg.Threshold < 0 || cfg.Warmup < 0 {
			t.Fatalf("New accepted config resolving to out-of-domain %+v", cfg)
		}
		// Cycle the three fuzzed samples long enough to leave warm-up.
		samples := []float64{x0, x1, x2}
		for i := 0; i < cfg.Warmup+16; i++ {
			x := samples[i%3]
			before := d.State()
			dir, err := d.Step(x)
			if (math.IsNaN(x) || math.IsInf(x, 0)) && err == nil {
				t.Fatalf("Step accepted non-finite sample %v", x)
			}
			if err != nil {
				// Rejected (non-finite, or overflow-scale): state untouched.
				if d.State() != before {
					t.Fatalf("rejected Step(%v) mutated state", x)
				}
				continue
			}
			if dir != None && !((dir == Up) || (dir == Down)) {
				t.Fatalf("Step returned unknown direction %d", dir)
			}
			if dir != None && before.Seen < uint64(cfg.Warmup) {
				t.Fatalf("fired %v on warm-up sample %d of %d", dir, before.Seen+1, cfg.Warmup)
			}
			if err := d.State().valid(); err != nil {
				t.Fatalf("Step(%v) left invalid state: %v", x, err)
			}
		}
	})
}

// FuzzDetectorStateRoundTrip pins the checkpoint face: arbitrary bytes
// fed through json.Unmarshal+SetState must never panic; anything
// SetState accepts must survive State->JSON->SetState->State bitwise;
// and a restored detector must step identically to the donor — the
// stream-equivalence the replay checkpoints rely on.
func FuzzDetectorStateRoundTrip(f *testing.F) {
	f.Add([]byte(`{"seen":4,"mean":250.5,"var":12.25,"s_pos":0.75,"s_neg":0}`), 260.0)
	f.Add([]byte(`{"seen":0,"mean":0,"var":0,"s_pos":0,"s_neg":0}`), 0.0)
	f.Add([]byte(`{"seen":1,"mean":-0.0,"var":1e308,"s_pos":3,"s_neg":3}`), -5.5)
	f.Add([]byte(`{"mean":"NaN"}`), 1.0)
	f.Add([]byte(`not json`), 2.0)
	f.Fuzz(func(t *testing.T, raw []byte, x float64) {
		var st State
		if err := json.Unmarshal(raw, &st); err != nil {
			return
		}
		a, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := a.SetState(st); err != nil {
			if st.valid() == nil {
				t.Fatalf("SetState rejected a valid state %+v: %v", st, err)
			}
			return
		}
		blob, err := json.Marshal(a.State())
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(Config{})
		if err != nil {
			t.Fatal(err)
		}
		var back State
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("re-decoding marshalled state: %v", err)
		}
		if err := b.SetState(back); err != nil {
			t.Fatalf("round-tripped state rejected: %v", err)
		}
		if a.State() != b.State() {
			t.Fatalf("state changed across JSON round trip: %+v vs %+v", a.State(), b.State())
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return
		}
		da, errA := a.Step(x)
		db, errB := b.Step(x)
		if (errA == nil) != (errB == nil) || da != db || a.State() != b.State() {
			t.Fatalf("restored detector diverged on Step(%v): (%v,%v) vs (%v,%v)", x, da, errA, db, errB)
		}
	})
}
