package detect

import (
	"encoding/json"
	"math"
	"testing"

	"kyoto/internal/xrand"
)

func mustNew(t *testing.T, cfg Config) *Detector {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// run feeds the series and returns the (index, direction) of every
// confirmed change point.
type firing struct {
	Index int
	Dir   Direction
}

func run(t *testing.T, d *Detector, xs []float64) []firing {
	t.Helper()
	var fires []firing
	for i, x := range xs {
		dir, err := d.Step(x)
		if err != nil {
			t.Fatalf("step %d (%v): %v", i, x, err)
		}
		if dir != None {
			fires = append(fires, firing{Index: i, Dir: dir})
		}
	}
	return fires
}

// noisySeries draws a deterministic pseudo-random series around a
// baseline with uniform jitter in [-jitter, jitter].
func noisySeries(rng *xrand.Rand, n int, base, jitter float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = base + jitter*(2*rng.Float64()-1)
	}
	return xs
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{Alpha: -0.1},
		{Alpha: 1},
		{Alpha: 1.5},
		{Alpha: math.NaN()},
		{Drift: -1},
		{Drift: math.NaN()},
		{Drift: math.Inf(1)},
		{Threshold: -1},
		{Threshold: math.NaN()},
		{Warmup: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an out-of-domain config", cfg)
		}
	}
}

func TestNewResolvesDefaults(t *testing.T) {
	d := mustNew(t, Config{})
	got := d.Config()
	want := Config{Alpha: DefaultAlpha, Drift: DefaultDrift, Threshold: DefaultThreshold, Warmup: DefaultWarmup}
	if got != want {
		t.Fatalf("resolved config %+v, want %+v", got, want)
	}
}

func TestStepRejectsNonFinite(t *testing.T) {
	d := mustNew(t, Config{})
	run(t, d, []float64{10, 11, 9})
	before := d.State()
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		dir, err := d.Step(x)
		if err == nil {
			t.Fatalf("Step(%v) accepted a non-finite sample", x)
		}
		if dir != None {
			t.Fatalf("Step(%v) fired while erroring", x)
		}
		if d.State() != before {
			t.Fatalf("Step(%v) mutated state on rejection: %+v != %+v", x, d.State(), before)
		}
	}
}

// Property: the detector is a pure function of its sample stream — the
// same series through two fresh detectors yields bitwise-identical
// change points and final state.
func TestDeterminism(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(80)
		xs := noisySeries(rng, n, 200+500*rng.Float64(), 1+10*rng.Float64())
		// Inject a few shifts so some trials actually fire.
		if n > 40 {
			for i := n / 2; i < n; i++ {
				xs[i] += 300
			}
		}
		a, b := mustNew(t, Config{}), mustNew(t, Config{})
		fa, fb := run(t, a, xs), run(t, b, xs)
		if len(fa) != len(fb) {
			t.Fatalf("trial %d: %v vs %v change points", trial, fa, fb)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("trial %d: change point %d differs: %+v vs %+v", trial, i, fa[i], fb[i])
			}
		}
		if a.State() != b.State() {
			t.Fatalf("trial %d: final states differ: %+v vs %+v", trial, a.State(), b.State())
		}
	}
}

// Property: EWMA normalization is shift-invariant — adding a constant
// offset to every sample moves the baseline with the series and leaves
// the z-scores, and therefore the change points, unchanged. Exact in
// real arithmetic; the trials use shifts and steps large enough that
// float rounding cannot flip a decision.
func TestShiftInvariance(t *testing.T) {
	rng := xrand.New(17)
	shifts := []float64{1000, -250, 42.5, 1e6}
	for trial := 0; trial < 40; trial++ {
		n := 30 + rng.Intn(60)
		xs := noisySeries(rng, n, 300, 5)
		for i := n * 2 / 3; i < n; i++ {
			xs[i] += 200 // a step most trials detect
		}
		baseFires := run(t, mustNew(t, Config{}), xs)
		for _, c := range shifts {
			shifted := make([]float64, n)
			for i := range xs {
				shifted[i] = xs[i] + c
			}
			d := mustNew(t, Config{})
			fires := run(t, d, shifted)
			if len(fires) != len(baseFires) {
				t.Fatalf("trial %d shift %v: %v change points vs %v unshifted", trial, c, fires, baseFires)
			}
			for i := range fires {
				if fires[i] != baseFires[i] {
					t.Fatalf("trial %d shift %v: change point %d moved: %+v vs %+v", trial, c, i, fires[i], baseFires[i])
				}
			}
		}
	}
}

// Property: a constant series never fires, whatever the constant and
// however long the stream — the first sample anchors the mean exactly,
// so every later deviation is exactly zero and the CUSUM sums never
// leave zero.
func TestNoFireOnConstantSeries(t *testing.T) {
	rng := xrand.New(29)
	for trial := 0; trial < 30; trial++ {
		c := 1e4*rng.Float64() - 5e3
		d := mustNew(t, Config{})
		for i := 0; i < 500; i++ {
			dir, err := d.Step(c)
			if err != nil {
				t.Fatal(err)
			}
			if dir != None {
				t.Fatalf("trial %d: fired %v at step %d of constant series %v", trial, dir, i, c)
			}
		}
		st := d.State()
		if st.SPos != 0 || st.SNeg != 0 {
			t.Fatalf("trial %d: CUSUM sums left zero on constant series: %+v", trial, st)
		}
	}
}

// Property: a sustained step far above the drift allowance is always
// detected, promptly, and in the right direction. The warm-up here is
// long enough for the EWMA variance to converge onto the jitter scale
// (0.8^16 of the zero initial estimate remains), and the threshold sits
// far above what bounded baseline z-scores can accumulate in the armed
// window — a CUSUM false-fires at its average-run-length rate at the
// default h, which is the trade DetectionSweep measures, not a property
// to pin here. Each post-step sample advances the matching sum by
// nearly zClip-drift, so even h=12 falls within two epochs. A mirrored
// downward step fires Down.
func TestDetectionGuaranteeOnLargeStep(t *testing.T) {
	rng := xrand.New(41)
	const stepAt = 25
	for trial := 0; trial < 30; trial++ {
		jitter := 1 + 9*rng.Float64()
		base := 100 + 900*rng.Float64()
		step := 50 * jitter // >> drift*sigma for any EWMA sigma the jitter yields
		for _, dir := range []Direction{Up, Down} {
			xs := noisySeries(rng, stepAt, base, jitter)
			after := noisySeries(rng, 20, base+float64(dir)*step, jitter)
			xs = append(xs, after...)
			d := mustNew(t, Config{Warmup: 16, Threshold: 12})
			fires := run(t, d, xs)
			if len(fires) == 0 {
				t.Fatalf("trial %d dir %v: no change point on a %vx-jitter step", trial, dir, step/jitter)
			}
			first := fires[0]
			if first.Dir != dir {
				t.Fatalf("trial %d: step in direction %v fired %v", trial, dir, first.Dir)
			}
			if first.Index < stepAt {
				t.Fatalf("trial %d dir %v: fired at %d, before the step at %d", trial, dir, first.Index, stepAt)
			}
			if lag := first.Index - stepAt; lag > 8 {
				t.Fatalf("trial %d dir %v: detection lag %d epochs on an unmissable step", trial, dir, lag)
			}
		}
	}
}

// Property: SetState(State()) mid-stream is invisible — a detector
// checkpointed at any point and restored into a fresh instance produces
// bitwise the same change points and final state as the uninterrupted
// one. This is the contract the replay checkpoints lean on.
func TestStateRoundTripStreamEquivalence(t *testing.T) {
	rng := xrand.New(53)
	for trial := 0; trial < 40; trial++ {
		n := 30 + rng.Intn(70)
		xs := noisySeries(rng, n, 400, 8)
		for i := n / 2; i < n; i++ {
			xs[i] += 350
		}
		cut := 1 + rng.Intn(n-1)

		whole := mustNew(t, Config{})
		wantFires := run(t, whole, xs)

		first := mustNew(t, Config{})
		gotFires := run(t, first, xs[:cut])
		blob, err := json.Marshal(first.State())
		if err != nil {
			t.Fatal(err)
		}
		var st State
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		second := mustNew(t, Config{})
		if err := second.SetState(st); err != nil {
			t.Fatal(err)
		}
		for _, f := range run(t, second, xs[cut:]) {
			gotFires = append(gotFires, firing{Index: f.Index + cut, Dir: f.Dir})
		}

		if len(gotFires) != len(wantFires) {
			t.Fatalf("trial %d cut %d: %v change points vs %v uninterrupted", trial, cut, gotFires, wantFires)
		}
		for i := range gotFires {
			if gotFires[i] != wantFires[i] {
				t.Fatalf("trial %d cut %d: change point %d differs: %+v vs %+v", trial, cut, i, gotFires[i], wantFires[i])
			}
		}
		if second.State() != whole.State() {
			t.Fatalf("trial %d cut %d: final states differ: %+v vs %+v", trial, cut, second.State(), whole.State())
		}
	}
}

func TestSetStateRejectsInvalid(t *testing.T) {
	bad := []State{
		{Mean: math.NaN()},
		{Var: math.Inf(1)},
		{Var: -1},
		{SPos: -0.5},
		{SNeg: math.NaN()},
	}
	d := mustNew(t, Config{})
	for _, st := range bad {
		if err := d.SetState(st); err == nil {
			t.Errorf("SetState(%+v) accepted an impossible state", st)
		}
	}
}

func TestNeverFiresDuringWarmup(t *testing.T) {
	d := mustNew(t, Config{Warmup: 10})
	// Violent swings well inside warm-up must stay silent.
	xs := []float64{0, 1e6, -1e6, 5e5, 0, 1e6, -1e6, 2e5, 0, 9e5}
	for i, x := range xs {
		dir, err := d.Step(x)
		if err != nil {
			t.Fatal(err)
		}
		if dir != None {
			t.Fatalf("fired %v at warm-up sample %d", dir, i)
		}
		if d.Warm() {
			t.Fatalf("Warm() true at sample %d of a 10-sample warm-up", i)
		}
	}
}

func TestDirectionString(t *testing.T) {
	for dir, want := range map[Direction]string{Up: "up", Down: "down", None: "none", Direction(7): "none"} {
		if got := dir.String(); got != want {
			t.Errorf("Direction(%d).String() = %q, want %q", dir, got, want)
		}
	}
}
