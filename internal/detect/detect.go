// Package detect provides a streaming change-point detector for
// per-VM pollution-rate series: a two-sided CUSUM over EWMA-normalized
// samples, in the spirit of the signature-based IaaS performance change
// detection literature (Fattah & Bouguettaya). The cluster rebalancers
// feed it one Equation-1 rate per rebalance epoch and act only on
// confirmed regime shifts instead of instantaneous threshold crossings,
// which suppresses the false triggers a raw threshold fires on every
// transient spike.
//
// The detector is pure, deterministic math: the same sample stream
// always yields the same change points, and the full internal state is
// exposed through State/SetState so a detector checkpointed mid-stream
// resumes bit-identically (the contract internal/snapshot relies on).
package detect

import (
	"fmt"
	"math"
)

// Defaults for the Config knobs. Zero-valued knobs resolve to these, in
// the same style as cluster.DefaultRebalanceThreshold.
const (
	// DefaultAlpha is the EWMA smoothing factor for the running baseline
	// mean and variance. 0.2 weights the last ~5 epochs, matching the
	// rebalancers' view of "recent" behaviour.
	DefaultAlpha = 0.2
	// DefaultDrift is the CUSUM slack k, in sigma units: deviations
	// smaller than k·sigma per sample are absorbed as noise and never
	// accumulate toward a change point.
	DefaultDrift = 0.5
	// DefaultThreshold is the CUSUM decision threshold h, in accumulated
	// sigma units. With k=0.5 and h=5, a sustained 1.5-sigma shift is
	// confirmed after five epochs; a one-epoch spike never is.
	DefaultThreshold = 5
	// DefaultWarmup is the number of samples the detector observes to
	// learn its baseline before it may fire. Warm-up restarts after every
	// confirmed change point, when the baseline re-anchors. Four samples
	// is deliberately short: the streams this package watches are per-VM
	// epoch rates, and cloud VM lifetimes are only a few tens of epochs
	// at best — a longer warm-up would outlive most of the fleet before
	// ever arming. The z-clip bounds the false-fire cost of the
	// under-converged early variance.
	DefaultWarmup = 4
)

// sigmaFloor bounds the normalization denominator away from zero so a
// perfectly flat baseline (variance exactly 0) still yields finite
// z-scores when the series finally moves.
const sigmaFloor = 1e-9

// zClip bounds each sample's normalized deviation. Without it, the
// first sample after a flat baseline would contribute an astronomically
// large z (sigma at the floor) and poison the CUSUM sums; with it, any
// single sample advances the sums by at most zClip-drift.
const zClip = 8

// Direction labels a confirmed change point.
type Direction int

const (
	// None means no change point was confirmed at this sample.
	None Direction = 0
	// Up means the series shifted to a higher regime.
	Up Direction = 1
	// Down means the series shifted to a lower regime.
	Down Direction = -1
)

// String returns the direction's report label.
func (d Direction) String() string {
	switch d {
	case Up:
		return "up"
	case Down:
		return "down"
	default:
		return "none"
	}
}

// Config holds the detector knobs. The zero value selects all defaults.
type Config struct {
	// Alpha is the EWMA smoothing factor for the baseline mean and
	// variance, in (0, 1). 0 selects DefaultAlpha.
	Alpha float64
	// Drift is the CUSUM slack k in sigma units; per-sample deviations
	// below it never accumulate. 0 selects DefaultDrift.
	Drift float64
	// Threshold is the CUSUM decision threshold h in accumulated sigma
	// units. 0 selects DefaultThreshold.
	Threshold float64
	// Warmup is the number of baseline-learning samples before the
	// detector may fire, restarted after each confirmed change point.
	// 0 selects DefaultWarmup.
	Warmup int
}

// resolve returns cfg with zero-valued knobs replaced by the defaults.
func (cfg Config) resolve() Config {
	if cfg.Alpha == 0 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.Drift == 0 {
		cfg.Drift = DefaultDrift
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = DefaultThreshold
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = DefaultWarmup
	}
	return cfg
}

// validate rejects resolved configs the detector's guarantees do not
// hold for.
func (cfg Config) validate() error {
	if math.IsNaN(cfg.Alpha) || cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		return fmt.Errorf("detect: alpha %v outside (0, 1)", cfg.Alpha)
	}
	if math.IsNaN(cfg.Drift) || math.IsInf(cfg.Drift, 0) || cfg.Drift < 0 {
		return fmt.Errorf("detect: drift %v must be a finite non-negative sigma count", cfg.Drift)
	}
	if math.IsNaN(cfg.Threshold) || math.IsInf(cfg.Threshold, 0) || cfg.Threshold < 0 {
		return fmt.Errorf("detect: threshold %v must be a finite non-negative sigma count", cfg.Threshold)
	}
	if cfg.Warmup < 0 {
		return fmt.Errorf("detect: warmup %d must be non-negative", cfg.Warmup)
	}
	return nil
}

// State is the detector's complete internal state. Marshal/unmarshal
// round-trips bit-exactly (encoding/json emits shortest round-trip
// float forms), so a detector restored from a checkpointed State
// continues its stream identically to one that never paused.
type State struct {
	// Seen counts samples since the last baseline anchor (construction
	// or the most recent confirmed change point).
	Seen uint64 `json:"seen"`
	// Mean and Var are the EWMA baseline estimates.
	Mean float64 `json:"mean"`
	Var  float64 `json:"var"`
	// SPos and SNeg are the upward and downward CUSUM sums.
	SPos float64 `json:"s_pos"`
	SNeg float64 `json:"s_neg"`
}

// valid rejects states no Step sequence could have produced.
func (st State) valid() error {
	for _, v := range []float64{st.Mean, st.Var, st.SPos, st.SNeg} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("detect: non-finite state value %v", v)
		}
	}
	if st.Var < 0 || st.SPos < 0 || st.SNeg < 0 {
		return fmt.Errorf("detect: negative variance or CUSUM sum in state")
	}
	return nil
}

// Detector is a streaming two-sided CUSUM change-point detector over an
// EWMA-normalized series. One Detector tracks one series; it is not
// safe for concurrent use.
type Detector struct {
	cfg Config
	st  State
}

// New returns a detector with cfg's zero values resolved to the
// defaults. It errors on knobs outside their domains (alpha not in
// (0,1), negative drift/threshold/warmup, NaN anywhere).
func New(cfg Config) (*Detector, error) {
	cfg = cfg.resolve()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg}, nil
}

// Config returns the resolved knob values the detector runs with.
func (d *Detector) Config() Config { return d.cfg }

// Warm reports whether the detector has finished learning its baseline
// and is armed to fire.
func (d *Detector) Warm() bool { return d.st.Seen > uint64(d.cfg.Warmup) }

// State returns a copy of the detector's complete internal state.
func (d *Detector) State() State { return d.st }

// SetState replaces the detector's internal state, typically with a
// State captured from another detector of the same Config. The restored
// detector's subsequent Step results are bit-identical to the source's.
func (d *Detector) SetState(st State) error {
	if err := st.valid(); err != nil {
		return err
	}
	d.st = st
	return nil
}

// Step feeds one sample and reports whether it confirms a change point,
// and in which direction. Non-finite samples are rejected with an error
// and leave the state untouched. Step never fires during warm-up — the
// first Warmup samples after construction or after a previous fire —
// and never fires on a constant series (a constant input keeps the
// normalized deviation exactly zero, so the CUSUM sums never grow).
//
// On a confirmed change point the baseline re-anchors at the firing
// sample and warm-up restarts, so one sustained shift yields one fire,
// not one per epoch for the rest of the stream.
func (d *Detector) Step(x float64) (Direction, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return None, fmt.Errorf("detect: non-finite sample %v", x)
	}
	s := &d.st
	if s.Seen == 0 {
		// First sample anchors the baseline exactly. A constant series
		// therefore keeps x - Mean == 0 forever: z is exactly zero and
		// the CUSUM sums never leave zero.
		*s = State{Seen: 1, Mean: x}
		return None, nil
	}

	// Normalize against the baseline as of the previous sample, then
	// fold the sample into the EWMA estimates. Once armed, the update is
	// winsorized — the folded deviation is clamped at zClip sigma — so a
	// regime shift cannot drag the baseline mean toward itself and blow
	// the variance up faster than the CUSUM can confirm it; during
	// warm-up the estimates learn unclipped. A sample so far out that
	// even its clamped update would overflow the variance is rejected
	// like a non-finite one, before any state changes.
	armed := s.Seen >= uint64(d.cfg.Warmup)
	sigma := math.Sqrt(s.Var)
	if sigma < sigmaFloor {
		sigma = sigmaFloor
	}
	diff := x - s.Mean
	z := diff / sigma
	if z > zClip {
		z = zClip
	} else if z < -zClip {
		z = -zClip
	}
	udiff := diff
	if armed {
		if limit := zClip * sigma; udiff > limit {
			udiff = limit
		} else if udiff < -limit {
			udiff = -limit
		}
	}
	nextVar := (1 - d.cfg.Alpha) * (s.Var + d.cfg.Alpha*udiff*udiff)
	if math.IsInf(nextVar, 0) {
		return None, fmt.Errorf("detect: sample %v overflows the variance estimate", x)
	}
	s.Mean += d.cfg.Alpha * udiff
	s.Var = nextVar
	s.Seen++

	// During warm-up the baseline is still being learned: the sample
	// contributes to the estimates but not to the decision sums, so a
	// warm-up transient cannot pre-charge a fire at the first armed
	// sample.
	if s.Seen <= uint64(d.cfg.Warmup) {
		return None, nil
	}

	s.SPos = math.Max(0, s.SPos+z-d.cfg.Drift)
	s.SNeg = math.Max(0, s.SNeg-z-d.cfg.Drift)
	var dir Direction
	switch {
	case s.SPos > d.cfg.Threshold:
		dir = Up
	case s.SNeg > d.cfg.Threshold:
		dir = Down
	default:
		return None, nil
	}
	// Confirmed: re-anchor the baseline at the new regime and relearn.
	*s = State{Seen: 1, Mean: x}
	return dir, nil
}
