package arrivals

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"kyoto/internal/cluster"
)

func TestSynthesizeIsDeterministic(t *testing.T) {
	cfg := SynthConfig{Seed: 11, VMs: 24}
	a, b := Synthesize(cfg), Synthesize(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical configs must synthesize identical traces")
	}
	c := Synthesize(SynthConfig{Seed: 12, VMs: 24})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds must synthesize different traces")
	}
	if len(a.Events) != 24 {
		t.Fatalf("got %d events, want 24", len(a.Events))
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, e := range a.Events {
		if e.Lifetime < DefaultSynthMinLifetime {
			t.Fatalf("event %d lifetime %d below floor", i, e.Lifetime)
		}
		if e.LLCCap != DefaultSynthLLCCap {
			t.Fatalf("event %d books llc_cap %v", i, e.LLCCap)
		}
	}
}

func TestSynthesizeHeavyTail(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 5, VMs: 400, Horizon: 4000})
	var over, max uint64
	for _, e := range tr.Events {
		if e.Lifetime > 2*DefaultSynthMeanLifetime {
			over++
		}
		if e.Lifetime > max {
			max = e.Lifetime
		}
	}
	// A Pareto(1.8) tail has a visible mass beyond 2x the mean and the
	// occasional long-runner far beyond it.
	if over == 0 || max < 4*DefaultSynthMeanLifetime {
		t.Fatalf("lifetimes not heavy-tailed: %d over 2x mean, max %d", over, max)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 3, VMs: 9, MemoryMB: 32})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("JSON round trip diverged:\n%+v\n%+v", tr, got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Trace{Events: []Event{
		{Submit: 0, Lifetime: 12, Name: "a", App: "gcc", VCPUs: 1, MemoryMB: 64, LLCCap: 250},
		{Submit: 4, Name: "b", App: "lbm", LLCCap: 125.5},
	}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("CSV round trip diverged:\n%+v\n%+v", tr, got)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader(`{"events":[{"app":"gcc","bogus":1}]}`)); err == nil {
		t.Fatal("unknown JSON field must be rejected")
	}
	if _, err := ParseJSON(strings.NewReader(`{"events":[{"submit":3}]}`)); err == nil {
		t.Fatal("missing app class must be rejected")
	}
	if _, err := ParseCSV(strings.NewReader("nope,really\n1,2\n")); err == nil {
		t.Fatal("wrong CSV header must be rejected")
	}
	if _, err := ParseCSV(strings.NewReader("submit,lifetime,name,app,vcpus,memory_mb,llc_cap\nx,0,a,gcc,1,64,250\n")); err == nil {
		t.Fatal("non-numeric submit must be rejected")
	}
}

func TestLoadCommittedExamples(t *testing.T) {
	js, err := Load(filepath.Join("testdata", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(js.Events) < 20 {
		t.Fatalf("example.json has %d events", len(js.Events))
	}
	cs, err := Load(filepath.Join("testdata", "example.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Events) != 5 {
		t.Fatalf("example.csv has %d events", len(cs.Events))
	}
	if cs.Events[3].Lifetime != 0 {
		t.Fatal("empty lifetime cell must mean runs-forever")
	}
	if _, err := Load(filepath.Join("testdata", "missing.xml")); err == nil {
		t.Fatal("unknown extension must be rejected")
	}
}

// testFleet builds a small Kyoto-enforced fleet for replay tests.
func testFleet(t *testing.T, hosts, workers int, placer cluster.Placer) *cluster.Fleet {
	t.Helper()
	f, err := cluster.New(cluster.Config{
		Hosts:    hosts,
		Template: cluster.HostTemplate{Seed: 42, EnableKyoto: true},
		Placer:   placer,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// testTrace: 6 VMs on a 2-host fleet (8 vCPU slots, 8 permit slots), with
// enough overlap that departures matter and one permit-less VM that Kyoto
// admission must reject.
func testTrace() Trace {
	return Trace{Events: []Event{
		{Submit: 0, Lifetime: 9, Name: "a", App: "gcc", LLCCap: 250},
		{Submit: 0, Lifetime: 15, Name: "b", App: "lbm", LLCCap: 250},
		{Submit: 3, Lifetime: 9, Name: "c", App: "omnetpp", LLCCap: 250},
		{Submit: 6, Name: "noperm", App: "mcf"}, // no permit: rejected by Admission
		{Submit: 9, Lifetime: 9, Name: "d", App: "astar", LLCCap: 250},
		{Submit: 12, Name: "forever", App: "bzip", LLCCap: 250}, // lives to the end
	}}
}

func TestReplayLifecycle(t *testing.T) {
	f := testFleet(t, 2, 1, cluster.Admission{})
	res, err := Replay(f, testTrace(), Options{DrainTicks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 5 || res.Rejected != 1 {
		t.Fatalf("placed %d rejected %d, want 5/1", res.Placed, res.Rejected)
	}
	if got := res.RejectionRate(); got != 1.0/6 {
		t.Fatalf("rejection rate %v", got)
	}
	byName := map[string]Record{}
	for _, r := range res.Records {
		byName[r.Name] = r
	}
	if r := byName["noperm"]; !r.Rejected || r.HostID != -1 || r.Reason == "" {
		t.Fatalf("permit-less VM not rejected cleanly: %+v", r)
	}
	if r := byName["a"]; !r.Departed || r.Depart != 9 || r.Counters.Instructions == 0 {
		t.Fatalf("departed VM record wrong: %+v", r)
	}
	if r := byName["forever"]; r.Departed || r.Depart != res.EndTick || r.Counters.Instructions == 0 {
		t.Fatalf("still-running VM record wrong: %+v", r)
	}
	// b departs at 15, d at 18, drain 6 -> end tick 24.
	if res.EndTick != 24 {
		t.Fatalf("end tick %d, want 24", res.EndTick)
	}
	if res.CPUUtilization <= 0 || res.CPUUtilization > 1 {
		t.Fatalf("utilization %v out of range", res.CPUUtilization)
	}
	// After the replay only "forever" is live.
	if got := len(f.Placements()); got != 1 {
		t.Fatalf("%d live placements after replay, want 1", got)
	}
}

func TestReplayIsDeterministicSerialAndParallel(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 21, VMs: 10, Horizon: 40, MeanLifetime: 12})
	run := func(workers int) string {
		f := testFleet(t, 2, workers, cluster.FirstFit{})
		res, err := Replay(f, tr, Options{DrainTicks: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	first := run(1)
	if again := run(1); again != first {
		t.Fatalf("serial replay not reproducible: %s vs %s", again, first)
	}
	if par := run(0); par != first {
		t.Fatalf("parallel replay fingerprint %s != serial %s", par, first)
	}
}

func TestReplayRejectsDuplicateActiveNames(t *testing.T) {
	f := testFleet(t, 1, 1, cluster.FirstFit{})
	tr := Trace{Events: []Event{
		{Submit: 0, Lifetime: 20, Name: "dup", App: "gcc", LLCCap: 250},
		{Submit: 5, Lifetime: 20, Name: "dup", App: "lbm", LLCCap: 250},
	}}
	if _, err := Replay(f, tr, Options{}); err == nil {
		t.Fatal("duplicate active VM names must fail the replay")
	}
	// Reusing a name after its first holder departed is fine.
	f2 := testFleet(t, 1, 1, cluster.FirstFit{})
	tr2 := Trace{Events: []Event{
		{Submit: 0, Lifetime: 5, Name: "dup", App: "gcc", LLCCap: 250},
		{Submit: 10, Lifetime: 5, Name: "dup", App: "lbm", LLCCap: 250},
	}}
	if _, err := Replay(f2, tr2, Options{}); err != nil {
		t.Fatalf("name reuse after departure must work: %v", err)
	}
}

func TestReplayRejectsOverflowingLifetime(t *testing.T) {
	f := testFleet(t, 1, 1, cluster.FirstFit{})
	tr := Trace{Events: []Event{
		{Submit: 2, Lifetime: ^uint64(0) - 1, Name: "x", App: "gcc", LLCCap: 250},
	}}
	if _, err := Replay(f, tr, Options{}); err == nil {
		t.Fatal("overflowing departure tick must fail, not hang")
	}
}

func TestSynthesizeSanitizesBadKnobs(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 2, VMs: -3, MeanLifetime: -5})
	if len(tr.Events) != DefaultSynthVMs {
		t.Fatalf("negative VMs not defaulted: %d events", len(tr.Events))
	}
	for i, e := range tr.Events {
		if e.Lifetime > 100*DefaultSynthMeanLifetime {
			t.Fatalf("event %d: negative mean lifetime leaked an absurd lifetime %d", i, e.Lifetime)
		}
	}
}

func TestValidateRejectsUnknownApp(t *testing.T) {
	tr := Trace{Events: []Event{{Submit: 0, App: "gc", LLCCap: 250}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("typo'd app class must fail at validation, not mid-replay")
	}
}
