package arrivals

import (
	"math"
	"testing"
)

func TestLifetimeStatsMeanResidualLife(t *testing.T) {
	tr := Trace{Events: []Event{
		{App: "gcc", Lifetime: 10},
		{App: "gcc", Lifetime: 20},
		{App: "lbm", Lifetime: 40},
		{App: "gcc"}, // never departs: no lifetime evidence, excluded
	}}
	s := NewLifetimeStats(tr)
	if s.Samples() != 3 {
		t.Fatalf("samples %d, want 3 (immortal VM excluded)", s.Samples())
	}
	cases := []struct {
		age  uint64
		want float64
	}{
		{0, 70.0 / 3}, // mean of {10,20,40}
		{10, 20},      // survivors {20,40}: mean(L-10) = (10+30)/2
		{39, 1},       // only the 40-tick VM survives
		{40, 0},       // nothing in the trace lived past 40
		{1000, 0},     // far past every sample
	}
	for _, c := range cases {
		if got := s.ExpectedRemainingTicks(c.age); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("age %d: remaining %v, want %v", c.age, got, c.want)
		}
	}
}

func TestLifetimeStatsNoEvidence(t *testing.T) {
	s := NewLifetimeStats(Trace{Events: []Event{{App: "gcc"}}})
	if s.Samples() != 0 {
		t.Fatalf("samples %d, want 0", s.Samples())
	}
	if got := s.ExpectedRemainingTicks(7); !math.IsInf(got, 1) {
		t.Fatalf("no departures ever observed must mean +Inf remaining, got %v", got)
	}
}

func TestLifetimeStatsResidualGrowsOnHeavyTail(t *testing.T) {
	// A heavy-tailed mix: many short VMs, a few very long ones. The mean
	// residual life must *increase* with age — the inversion that makes
	// old VMs better migration investments than young ones.
	ev := make([]Event, 0, 104)
	for i := 0; i < 100; i++ {
		ev = append(ev, Event{App: "gcc", Lifetime: 5})
	}
	for i := 0; i < 4; i++ {
		ev = append(ev, Event{App: "gcc", Lifetime: 1000})
	}
	s := NewLifetimeStats(Trace{Events: ev})
	young := s.ExpectedRemainingTicks(0)
	old := s.ExpectedRemainingTicks(10)
	if old <= young {
		t.Fatalf("residual life at age 10 (%v) must exceed age 0 (%v) on a heavy tail", old, young)
	}
}
