package arrivals

// Barrier edge cases for the event-horizon engine: the replay ticks
// that force several lazy-clock interactions to land on the same tick
// (departure + rebalance epoch + pending retry), queue-side events that
// fire while every host world is hundreds of ticks behind the fleet
// clock, and the blanket contract that Options.Lockstep changes
// scheduling only — every fingerprint must match the lazy default
// bit for bit.

import (
	"strings"
	"testing"

	"kyoto/internal/cluster"
)

// kyotoFleet builds an admission-controlled Kyoto fleet for the
// edge-case scenarios (4 vCPU slots per Table-1 host).
func kyotoFleet(t *testing.T, hosts, workers int) *cluster.Fleet {
	t.Helper()
	f, err := cluster.New(cluster.Config{
		Hosts:    hosts,
		Template: cluster.HostTemplate{Seed: 21, EnableKyoto: true},
		Placer:   cluster.Admission{},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestLockstepMatchesLazyFingerprint is the blanket equivalence
// contract behind the -lockstep flag: on a sparse synthetic trace with
// the pending queue and reactive rebalancing active, the eager
// lockstep engine and the lazy event-horizon default must produce the
// same result fingerprint, serial and parallel alike.
func TestLockstepMatchesLazyFingerprint(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 9, VMs: 60, Horizon: 3600, MeanLifetime: 5})
	run := func(lockstep bool, workers int) string {
		t.Helper()
		res, err := Replay(kyotoFleet(t, 6, workers), tr, Options{
			DrainTicks:     6,
			Pending:        PendingFIFO,
			Rebalancer:     &cluster.Reactive{},
			RebalanceEvery: 9,
			Lockstep:       lockstep,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	lazy := run(false, 1)
	for _, tc := range []struct {
		name     string
		lockstep bool
		workers  int
	}{
		{"lazy-parallel", false, 0},
		{"lockstep-serial", true, 1},
		{"lockstep-parallel", true, 0},
	} {
		if got := run(tc.lockstep, tc.workers); got != lazy {
			t.Fatalf("%s fingerprint %s != lazy serial %s", tc.name, got, lazy)
		}
	}
}

// TestEpochDepartureRetrySameTick pins the replay's intra-tick ordering
// when three lazy-clock triggers coincide: at tick 18 a VM departs
// (freeing the only open slot), the rebalance epoch observes the fleet,
// and the pending retry places the queued VM — all in one step. The
// queued VM must land on exactly that tick under both engines.
func TestEpochDepartureRetrySameTick(t *testing.T) {
	// Two 4-slot hosts, saturated at tick 0 by eight fillers. One filler
	// departs at tick 18 — the same tick as the second rebalance epoch
	// (RebalanceEvery 9) — and "late", queued since tick 2, takes the
	// freed slot during that tick's retry pass.
	tr := Trace{Events: []Event{
		{Submit: 0, Name: "f0", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "f1", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "f2", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "f3", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "f4", App: "lbm", LLCCap: 100},
		{Submit: 0, Name: "f5", App: "lbm", LLCCap: 100},
		{Submit: 0, Name: "f6", App: "lbm", LLCCap: 100},
		{Submit: 0, Lifetime: 18, Name: "f7", App: "lbm", LLCCap: 100},
		{Submit: 2, Lifetime: 8, Name: "late", App: "omnetpp", LLCCap: 100},
	}}
	opt := func(lockstep bool) Options {
		return Options{
			DrainTicks:     4,
			Pending:        PendingFIFO,
			Rebalancer:     &cluster.Reactive{},
			RebalanceEvery: 9,
			Lockstep:       lockstep,
		}
	}
	res, err := Replay(kyotoFleet(t, 2, 1), tr, opt(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 9 || res.Rejected != 0 {
		t.Fatalf("placed %d rejected %d, want 9/0", res.Placed, res.Rejected)
	}
	if !res.RebalanceUsed {
		t.Fatal("RebalanceUsed must be set with a rebalancer active")
	}
	late := recordByName(t, res, "late")
	if !late.Queued || late.PlacedTick != 18 || late.WaitTicks != 16 {
		t.Fatalf("late: %+v, want placed on the epoch/departure tick 18 after waiting 16", late)
	}
	want := res.Fingerprint()
	for _, workers := range []int{1, 0} {
		lock, err := Replay(kyotoFleet(t, 2, workers), tr, opt(true))
		if err != nil {
			t.Fatal(err)
		}
		if got := lock.Fingerprint(); got != want {
			t.Fatalf("lockstep (workers %d) fingerprint %s != lazy %s", workers, got, want)
		}
	}
}

// TestReplayerStepMatchesReplay drives a replay one moment at a time
// through the Replayer's public stepping API — the boundary CaptureState
// snapshots at — and requires the stepped run to reach the same
// fingerprint as the one-shot Replay.
func TestReplayerStepMatchesReplay(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 11, VMs: 20, Horizon: 200, MeanLifetime: 12})
	opt := Options{DrainTicks: 4, Pending: PendingFIFO}
	ref, err := Replay(kyotoFleet(t, 2, 1), tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewReplayer(kyotoFleet(t, 2, 1), tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if p.Done() {
		t.Fatal("fresh replayer reports done")
	}
	if p.Now() != 0 {
		t.Fatalf("fresh replayer clock %d, want 0", p.Now())
	}
	steps := 0
	for {
		more, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if !more {
			break
		}
	}
	if steps < 2 {
		t.Fatalf("replay collapsed into %d step(s) — the moment loop never ran", steps)
	}
	if !p.Done() {
		t.Fatal("replayer not done after Step returned no more work")
	}
	res, err := p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("stepped fingerprint %s != one-shot %s", got, want)
	}
	if _, err := p.Step(); err == nil {
		t.Fatal("Step after Finish must error")
	}
}

// TestDeadlineFiresAcrossHostGap drops and then places VMs while the
// host's world is far behind the fleet clock: after the tick-0
// saturation nothing seeks the host for 560 ticks, so the deadline drop
// at tick 505 is decided purely from the booking ledger and the
// eventual placements cross a multi-hundred-tick fast-forward gap.
func TestDeadlineFiresAcrossHostGap(t *testing.T) {
	tr := Trace{Events: []Event{
		{Submit: 0, Lifetime: 560, Name: "a", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "b", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "c", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "d", App: "gcc", LLCCap: 100},
		// Queued at tick 5, deadline 505 — fires long before the first
		// departure at 560 ever touches the host world.
		{Submit: 5, Lifetime: 8, Name: "impatient", App: "lbm", LLCCap: 100},
		// Arrives after the 560-tick gap and takes a's freed slot.
		{Submit: 600, Lifetime: 20, Name: "patient", App: "omnetpp", LLCCap: 100},
	}}
	opt := func(lockstep bool) Options {
		return Options{Pending: PendingDeadline, MaxWait: 500, DrainTicks: 4, Lockstep: lockstep}
	}
	res, err := Replay(oneHostFleet(t), tr, opt(false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 5 || res.Rejected != 1 {
		t.Fatalf("placed %d rejected %d, want 5/1", res.Placed, res.Rejected)
	}
	imp := recordByName(t, res, "impatient")
	if !imp.Rejected || !imp.Queued || imp.WaitTicks != 500 || imp.PlacedTick != 505 {
		t.Fatalf("impatient: %+v, want dropped at tick 505 after waiting 500", imp)
	}
	if !strings.Contains(imp.Reason, "deadline") {
		t.Fatalf("impatient reason %q, want a deadline drop", imp.Reason)
	}
	pat := recordByName(t, res, "patient")
	if pat.Rejected || pat.Queued || pat.PlacedTick != 600 || pat.HostID != 0 {
		t.Fatalf("patient: %+v, want placed immediately at tick 600", pat)
	}
	want := res.Fingerprint()
	lock, err := Replay(oneHostFleet(t), tr, opt(true))
	if err != nil {
		t.Fatal(err)
	}
	if got := lock.Fingerprint(); got != want {
		t.Fatalf("lockstep fingerprint %s != lazy %s", got, want)
	}
}
