package arrivals

import (
	"strings"
	"testing"

	"kyoto/internal/cluster"
)

// oneHostFleet builds a single Table-1 host (4 vCPU slots) behind
// first-fit, the simplest fleet that can saturate.
func oneHostFleet(t *testing.T) *cluster.Fleet {
	t.Helper()
	f, err := cluster.New(cluster.Config{Hosts: 1, Template: cluster.HostTemplate{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// saturatingTrace fills the host at tick 0 with four 10-tick VMs and
// submits two more (e at tick 2, f at tick 3) that must wait for the
// departures at tick 10.
func saturatingTrace() Trace {
	return Trace{Events: []Event{
		{Submit: 0, Lifetime: 10, Name: "a", App: "gcc", LLCCap: 100},
		{Submit: 0, Lifetime: 10, Name: "b", App: "gcc", LLCCap: 100},
		{Submit: 0, Lifetime: 10, Name: "c", App: "gcc", LLCCap: 100},
		{Submit: 0, Lifetime: 10, Name: "d", App: "gcc", LLCCap: 100},
		{Submit: 2, Lifetime: 8, Name: "e", App: "gcc", LLCCap: 100},
		{Submit: 3, Lifetime: 8, Name: "f", App: "gcc", LLCCap: 100},
	}}
}

func recordByName(t *testing.T, res Result, name string) Record {
	t.Helper()
	for _, rec := range res.Records {
		if rec.Name == name {
			return rec
		}
	}
	t.Fatalf("no record for %q", name)
	return Record{}
}

func TestPendingNoneRejectsOutright(t *testing.T) {
	res, err := Replay(oneHostFleet(t), saturatingTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 4 || res.Rejected != 2 {
		t.Fatalf("placed %d rejected %d, want 4/2", res.Placed, res.Rejected)
	}
	if res.PendingUsed {
		t.Fatal("PendingUsed must be false without a queue")
	}
	e := recordByName(t, res, "e")
	if !e.Rejected || e.Queued || e.WaitTicks != 0 {
		t.Fatalf("e without queue: %+v", e)
	}
}

func TestPendingFIFOPlacesAfterDepartures(t *testing.T) {
	res, err := Replay(oneHostFleet(t), saturatingTrace(), Options{Pending: PendingFIFO})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 6 || res.Rejected != 0 {
		t.Fatalf("placed %d rejected %d, want 6/0", res.Placed, res.Rejected)
	}
	if !res.PendingUsed {
		t.Fatal("PendingUsed must be set")
	}
	e, f := recordByName(t, res, "e"), recordByName(t, res, "f")
	if !e.Queued || e.PlacedTick != 10 || e.WaitTicks != 8 {
		t.Fatalf("e: %+v, want queued, placed at 10 after waiting 8", e)
	}
	if !f.Queued || f.PlacedTick != 10 || f.WaitTicks != 7 {
		t.Fatalf("f: %+v, want queued, placed at 10 after waiting 7", f)
	}
	// Lifetimes count from placement, so the stragglers depart at 18.
	if e.Depart != 18 || !e.Departed {
		t.Fatalf("e departs at %d (departed %v), want 18", e.Depart, e.Departed)
	}
	waits := res.PlacedWaits()
	if len(waits) != 6 {
		t.Fatalf("PlacedWaits has %d entries, want 6", len(waits))
	}
	var queuedWaits int
	for _, w := range waits {
		if w > 0 {
			queuedWaits++
		}
	}
	if queuedWaits != 2 {
		t.Fatalf("%d non-zero waits, want 2", queuedWaits)
	}
}

func TestPendingDeadlineDropsImpatientVMs(t *testing.T) {
	res, err := Replay(oneHostFleet(t), saturatingTrace(), Options{Pending: PendingDeadline, MaxWait: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 4 || res.Rejected != 2 {
		t.Fatalf("placed %d rejected %d, want 4/2", res.Placed, res.Rejected)
	}
	e, f := recordByName(t, res, "e"), recordByName(t, res, "f")
	if !e.Rejected || !e.Queued || e.WaitTicks != 5 || e.PlacedTick != 7 {
		t.Fatalf("e: %+v, want dropped at tick 7 after waiting 5", e)
	}
	if !strings.Contains(e.Reason, "deadline") {
		t.Fatalf("e reason %q", e.Reason)
	}
	if !f.Rejected || f.WaitTicks != 5 || f.PlacedTick != 8 {
		t.Fatalf("f: %+v, want dropped at tick 8", f)
	}
}

func TestPendingDeadlinePlacesWhenDepartureBeatsDeadline(t *testing.T) {
	res, err := Replay(oneHostFleet(t), saturatingTrace(), Options{Pending: PendingDeadline, MaxWait: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 6 || res.Rejected != 0 {
		t.Fatalf("placed %d rejected %d, want 6/0 with a generous deadline", res.Placed, res.Rejected)
	}
}

func TestPendingFIFODrainsUnplaceableTail(t *testing.T) {
	// Nothing ever departs (Lifetime 0), so the queued VM can never fit.
	tr := Trace{Events: []Event{
		{Submit: 0, Name: "a", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "b", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "c", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "d", App: "gcc", LLCCap: 100},
		{Submit: 4, Name: "late", App: "gcc", LLCCap: 100},
	}}
	res, err := Replay(oneHostFleet(t), tr, Options{Pending: PendingFIFO, DrainTicks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placed != 4 || res.Rejected != 1 {
		t.Fatalf("placed %d rejected %d, want 4/1", res.Placed, res.Rejected)
	}
	late := recordByName(t, res, "late")
	if !late.Rejected || !late.Queued || !strings.Contains(late.Reason, "no capacity ever freed") {
		t.Fatalf("late: %+v", late)
	}
}

// sjfTrace saturates the host so that at tick 10 two vCPU slots free up
// with a 2-vCPU VM ("big", submitted first) and a 1-vCPU VM ("small")
// both parked: FIFO gives the slots to big, SJF lets small jump the line.
func sjfTrace() Trace {
	return Trace{Events: []Event{
		{Submit: 0, Name: "a", App: "gcc", LLCCap: 100},
		{Submit: 0, Name: "b", App: "gcc", LLCCap: 100},
		{Submit: 0, Lifetime: 10, Name: "c", App: "gcc", LLCCap: 100},
		{Submit: 0, Lifetime: 10, Name: "d", App: "gcc", LLCCap: 100},
		{Submit: 2, Lifetime: 8, Name: "big", App: "gcc", VCPUs: 2, LLCCap: 100},
		{Submit: 3, Lifetime: 8, Name: "small", App: "gcc", LLCCap: 100},
	}}
}

func TestPendingSJFLetsSmallRequestsJumpTheLine(t *testing.T) {
	fifo, err := Replay(oneHostFleet(t), sjfTrace(), Options{Pending: PendingFIFO})
	if err != nil {
		t.Fatal(err)
	}
	sjf, err := Replay(oneHostFleet(t), sjfTrace(), Options{Pending: PendingSJF})
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]Result{"fifo": fifo, "sjf": sjf} {
		if res.Placed != 6 || res.Rejected != 0 {
			t.Fatalf("%s: placed %d rejected %d, want 6/0", name, res.Placed, res.Rejected)
		}
	}
	// FIFO honours submit order: big gets the tick-10 slots, small waits
	// for big's departure.
	if big, small := recordByName(t, fifo, "big"), recordByName(t, fifo, "small"); big.PlacedTick != 10 || small.PlacedTick != 18 {
		t.Fatalf("fifo: big placed %d, small placed %d, want 10/18", big.PlacedTick, small.PlacedTick)
	}
	// SJF retries smallest-booking-first: small jumps the line at tick
	// 10, big waits for small's departure.
	if big, small := recordByName(t, sjf, "big"), recordByName(t, sjf, "small"); small.PlacedTick != 10 || big.PlacedTick != 18 {
		t.Fatalf("sjf: small placed %d, big placed %d, want 10/18", small.PlacedTick, big.PlacedTick)
	}

	// Replays under SJF stay deterministic (fingerprints fold the
	// queue's placement ticks).
	again, err := Replay(oneHostFleet(t), sjfTrace(), Options{Pending: PendingSJF})
	if err != nil {
		t.Fatal(err)
	}
	if sjf.Fingerprint() != again.Fingerprint() {
		t.Fatal("sjf replay not reproducible")
	}
	if sjf.Fingerprint() == fifo.Fingerprint() {
		t.Fatal("sjf and fifo produced identical outcomes — the scenario does not discriminate the policies")
	}
}

func TestPendingPolicyNamesIncludeSJF(t *testing.T) {
	p, err := PendingPolicyByName("sjf")
	if err != nil || p != PendingSJF {
		t.Fatalf("sjf: %v, %v", p, err)
	}
	if PendingSJF.String() != "sjf" {
		t.Fatalf("String() = %q", PendingSJF.String())
	}
	found := false
	for _, n := range PendingPolicyNames() {
		if n == "sjf" {
			found = true
		}
	}
	if !found {
		t.Fatalf("PendingPolicyNames() = %v, missing sjf", PendingPolicyNames())
	}
}

func TestPendingQueueRefusesDuplicateQueuedName(t *testing.T) {
	tr := saturatingTrace()
	tr.Events = append(tr.Events, Event{Submit: 4, Lifetime: 5, Name: "e", App: "gcc", LLCCap: 100})
	_, err := Replay(oneHostFleet(t), tr, Options{Pending: PendingFIFO})
	if err == nil || !strings.Contains(err.Error(), "already pending") {
		t.Fatalf("duplicate queued name: %v", err)
	}
}

// TestPendingFingerprintsAreStable pins the subsystem-conditional folding:
// the same replay must fingerprint identically run to run, and a replay
// without the queue must fingerprint differently from one with it only
// through actual outcome differences — not through the extra fields.
func TestPendingFingerprintDeterminism(t *testing.T) {
	run := func(pending PendingPolicy) string {
		t.Helper()
		res, err := Replay(oneHostFleet(t), saturatingTrace(), Options{Pending: pending})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	}
	if a, b := run(PendingFIFO), run(PendingFIFO); a != b {
		t.Fatalf("FIFO replay not reproducible: %s vs %s", a, b)
	}
	if a, b := run(PendingNone), run(PendingFIFO); a == b {
		t.Fatal("queueing changed outcomes but not the fingerprint")
	}
}

// TestMigrationReplayDeterminism exercises the full option set — pending
// queue plus reactive rebalancing with downtime — serial and parallel,
// which is the determinism contract the churn-migration golden pins (and
// what -race runs chase data races through).
func TestMigrationReplayDeterminism(t *testing.T) {
	tr := Synthesize(SynthConfig{Seed: 9, VMs: 10, Horizon: 40, MeanLifetime: 12})
	run := func(workers int) string {
		t.Helper()
		f, err := cluster.New(cluster.Config{
			Hosts:    3,
			Template: cluster.HostTemplate{Seed: 21, EnableKyoto: true},
			Placer:   cluster.Admission{},
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Replay(f, tr, Options{
			DrainTicks:        6,
			Pending:           PendingFIFO,
			Rebalancer:        &cluster.Reactive{},
			RebalanceEvery:    9,
			MigrationDowntime: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.RebalanceUsed {
			t.Fatal("RebalanceUsed must be set")
		}
		return res.Fingerprint()
	}
	serial := run(1)
	if again := run(1); again != serial {
		t.Fatalf("serial migration replay not reproducible: %s vs %s", again, serial)
	}
	if par := run(0); par != serial {
		t.Fatalf("parallel migration fingerprint %s != serial %s", par, serial)
	}
}
