package arrivals

// Replay checkpoint support. A Replayer paused between moments is fully
// described by: the fleet's own snapshot, the records so far, the
// pending-queue indices, the loop cursors (event index, clock, utilization
// integral, next rebalance epoch), the fleet monitor's previous-counter
// snapshots and the rebalancer's cooldown blob. Everything else the loop
// keeps — the waiting set, the active map, the departure heap — is
// derivable: waiting is exactly the names of the queued records, active is
// exactly the placed-and-not-departed records, and each active record's
// departure tick is PlacedTick + Lifetime (what tryPlace pushed). The heap
// is rebuilt by heap.Init; its pop order depends only on the strict
// (tick, idx) order, so the rebuilt heap drains identically.

import (
	"container/heap"
	"encoding/json"
	"fmt"

	"kyoto/internal/cluster"
)

// ReplayState is a checkpoint of an in-flight Replayer at a moment
// boundary.
type ReplayState struct {
	// NumEvents guards against resuming with a different trace.
	NumEvents int `json:"num_events"`
	// I is the next unsubmitted event index.
	I int `json:"i"`
	// Now is the fleet clock.
	Now uint64 `json:"now"`
	// UtilTicks is the utilization integral so far.
	UtilTicks float64 `json:"util_ticks"`
	// NextRebalance is the next rebalance epoch tick (max uint64 when the
	// replay runs without a rebalancer).
	NextRebalance uint64 `json:"next_rebalance"`
	// Pend is the pending queue, in submit order.
	Pend []int `json:"pend,omitempty"`
	// Records, Migrations, Placed, Rejected mirror the partial Result.
	Records    []Record         `json:"records"`
	Migrations []MigrationEvent `json:"migrations,omitempty"`
	Placed     int              `json:"placed"`
	Rejected   int              `json:"rejected"`
	// Monitor is the fleet monitor's per-VM snapshots, name-sorted.
	Monitor []cluster.NamedCounters `json:"monitor,omitempty"`
	// Rebalancer is the policy's cooldown blob, when it has one.
	Rebalancer json.RawMessage `json:"rebalancer,omitempty"`
	// Fleet is the complete fleet snapshot.
	Fleet *cluster.FleetState `json:"fleet"`
}

// CaptureState checkpoints the replay at the current moment boundary.
// The Replayer keeps running; the state is an independent copy.
func (p *Replayer) CaptureState() (*ReplayState, error) {
	if p.finished {
		return nil, fmt.Errorf("arrivals: cannot checkpoint a finished replayer")
	}
	r := p.run
	fst, err := r.f.CaptureState()
	if err != nil {
		return nil, err
	}
	st := &ReplayState{
		NumEvents:     len(r.events),
		I:             r.i,
		Now:           r.now,
		UtilTicks:     r.utilTicks,
		NextRebalance: r.nextRebalance,
		Pend:          append([]int(nil), r.pend...),
		Records:       append([]Record(nil), r.res.Records...),
		Migrations:    append([]MigrationEvent(nil), r.res.Migrations...),
		Placed:        r.res.Placed,
		Rejected:      r.res.Rejected,
		Fleet:         fst,
	}
	if r.mon != nil {
		st.Monitor = r.mon.State()
	}
	if sr, ok := r.opt.Rebalancer.(cluster.StatefulRebalancer); ok {
		blob, err := sr.CaptureRebalanceState()
		if err != nil {
			return nil, err
		}
		st.Rebalancer = blob
	}
	return st, nil
}

// ResumeReplayer rebuilds a paused replay onto a freshly built fleet of
// the identical configuration, with the identical trace and options the
// checkpointed replay ran under. The resumed replay continues
// bit-identically to the uninterrupted one.
func ResumeReplayer(f *cluster.Fleet, tr Trace, opt Options, st *ReplayState) (*Replayer, error) {
	p, err := NewReplayer(f, tr, opt)
	if err != nil {
		return nil, err
	}
	r := p.run
	if st.NumEvents != len(r.events) || len(st.Records) != len(r.events) {
		return nil, fmt.Errorf("arrivals: checkpoint covers %d events, trace has %d — resume must use the checkpointed trace", st.NumEvents, len(r.events))
	}
	if st.I < 0 || st.I > len(r.events) {
		return nil, fmt.Errorf("arrivals: checkpoint event cursor %d out of range 0..%d", st.I, len(r.events))
	}
	hasRebalancer := opt.Rebalancer != nil
	if hasRebalancer != (st.NextRebalance != noTick) {
		return nil, fmt.Errorf("arrivals: checkpoint and options disagree on rebalancing — resume must use the checkpointed options")
	}
	if st.Fleet == nil {
		return nil, fmt.Errorf("arrivals: checkpoint has no fleet state")
	}
	if err := f.RestoreState(st.Fleet); err != nil {
		return nil, err
	}

	r.i = st.I
	r.now = st.Now
	r.utilTicks = st.UtilTicks
	r.nextRebalance = st.NextRebalance
	copy(r.res.Records, st.Records)
	r.res.Migrations = append([]MigrationEvent(nil), st.Migrations...)
	r.res.Placed = st.Placed
	r.res.Rejected = st.Rejected
	for _, idx := range st.Pend {
		if idx < 0 || idx >= len(r.events) {
			return nil, fmt.Errorf("arrivals: checkpoint pending index %d out of range", idx)
		}
		r.pend = append(r.pend, idx)
		r.waiting[r.res.Records[idx].Name] = true
	}

	// Rebuild active from the records (placed and not yet departed), then
	// cross-check against what the restored fleet actually holds.
	for idx := range r.res.Records {
		rec := &r.res.Records[idx]
		if rec.HostID >= 0 && !rec.Rejected && !rec.Departed && rec.Name != "" {
			r.active[rec.Name] = idx
		}
	}
	live := 0
	for _, pl := range f.Placements() {
		if _, ok := r.active[pl.VM.Name]; !ok {
			return nil, fmt.Errorf("arrivals: restored fleet holds VM %q, which the checkpoint records do not list as active", pl.VM.Name)
		}
		live++
	}
	if live != len(r.active) {
		return nil, fmt.Errorf("arrivals: checkpoint records list %d active VMs, restored fleet holds %d", len(r.active), live)
	}

	// Rebuild the departure heap: tryPlace pushed PlacedTick + Lifetime
	// for every placed VM with a finite lifetime. Pop order depends only
	// on the strict (tick, idx) order, so heap.Init reproduces the drain.
	for _, idx := range r.active {
		ev := r.events[idx]
		if ev.Lifetime > 0 {
			r.deps = append(r.deps, departure{tick: r.res.Records[idx].PlacedTick + ev.Lifetime, idx: idx})
		}
	}
	heap.Init(&r.deps)

	if r.mon != nil {
		r.mon.SetState(st.Monitor)
	}
	if sr, ok := opt.Rebalancer.(cluster.StatefulRebalancer); ok && len(st.Rebalancer) > 0 {
		if err := sr.RestoreRebalanceState(st.Rebalancer); err != nil {
			return nil, err
		}
	}
	return p, nil
}
