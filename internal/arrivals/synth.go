package arrivals

import (
	"math"

	"kyoto/internal/xrand"
)

// Synthetic-churn defaults; see SynthConfig.
const (
	DefaultSynthVMs          = 16
	DefaultSynthHorizon      = 120
	DefaultSynthMeanLifetime = 45
	DefaultSynthParetoAlpha  = 1.8
	DefaultSynthMinLifetime  = 6
	DefaultSynthLLCCap       = 250
)

// ClassShare weights one application class in the synthetic mix.
type ClassShare struct {
	// App is the workload profile name.
	App string
	// Weight is the class's relative arrival probability.
	Weight float64
}

// SizeShare weights one VM size in the synthetic mix: how many vCPUs
// and how much memory an arrival of this share books.
type SizeShare struct {
	// VCPUs booked and instantiated.
	VCPUs int
	// MemoryMB booked (0 falls back to SynthConfig.MemoryMB, and from
	// there to the cluster default).
	MemoryMB int
	// Weight is the share's relative arrival probability.
	Weight float64
}

// DefaultMix is the synthetic-churn application mix: mostly quiet
// tenants, a steady share of the paper's Figure-4 polluters (lbm, mcf,
// blockie), roughly the quiet-to-aggressive ratio of a multi-tenant rack.
func DefaultMix() []ClassShare {
	return []ClassShare{
		{App: "gcc", Weight: 3},
		{App: "omnetpp", Weight: 2},
		{App: "astar", Weight: 2},
		{App: "bzip", Weight: 1},
		{App: "lbm", Weight: 2},
		{App: "mcf", Weight: 1},
		{App: "blockie", Weight: 1},
	}
}

// SynthConfig parameterizes the synthetic churn generator. The zero value
// is usable: 16 VMs over a 120-tick horizon with 45-tick mean lifetimes,
// the default mix and a full Figure-5 permit per VM.
type SynthConfig struct {
	// Seed drives all randomness (0 means 1). The same config and seed
	// always synthesize the identical trace.
	Seed uint64
	// VMs is the number of arrivals to generate.
	VMs int
	// Horizon spreads the arrivals: the mean inter-arrival gap is
	// Horizon/VMs ticks (Poisson-style exponential gaps).
	Horizon uint64
	// MeanLifetime is the mean VM lifetime in ticks. Lifetimes are
	// Pareto-distributed (heavy-tailed: most VMs short-lived, a few
	// long-runners), matching public-cloud churn studies.
	MeanLifetime float64
	// ParetoAlpha is the lifetime tail shape (> 1; smaller = heavier
	// tail).
	ParetoAlpha float64
	// MinLifetime floors lifetimes, in ticks (two slices by default, so
	// every VM exists across at least one Kyoto refill boundary).
	MinLifetime uint64
	// Mix is the weighted application-class mix (default DefaultMix).
	Mix []ClassShare
	// SizeMix optionally draws each VM's size (vCPUs, memory) from a
	// weighted mix, the way real traces mix instance types. Empty keeps
	// every VM at 1 vCPU with the MemoryMB default — the pre-calibration
	// behaviour, bit-identical to older traces.
	SizeMix []SizeShare
	// BurstMean, when > 1, clusters arrivals: VMs arrive in bursts of
	// geometrically distributed size with this mean, sharing one submit
	// tick, with exponential gaps between bursts stretched so the
	// overall arrival rate still matches Horizon/VMs. Public-cloud
	// arrival streams are over-dispersed relative to Poisson (deployments
	// submit groups of VMs at once); this knob reproduces that
	// burstiness. <= 1 keeps plain Poisson arrivals, bit-identical to
	// older traces.
	BurstMean float64
	// MemoryMB books each VM's memory (default cluster default, 64 MB).
	MemoryMB int
	// LLCCap books each VM's pollution permit (default 250, the paper's
	// Figure-5 booking). Set negative to book none (permit-less VMs are
	// rejected by Kyoto admission — useful to probe rejection behaviour).
	LLCCap float64
}

// withDefaults fills zero-valued fields.
func (c SynthConfig) withDefaults() SynthConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.VMs <= 0 {
		c.VMs = DefaultSynthVMs
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultSynthHorizon
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = DefaultSynthMeanLifetime
	}
	if c.ParetoAlpha <= 1 {
		c.ParetoAlpha = DefaultSynthParetoAlpha
	}
	if c.MinLifetime == 0 {
		c.MinLifetime = DefaultSynthMinLifetime
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.LLCCap == 0 {
		c.LLCCap = DefaultSynthLLCCap
	} else if c.LLCCap < 0 {
		c.LLCCap = 0
	}
	return c
}

// Synthesize generates a seeded churn trace: exponential inter-arrival
// gaps with mean Horizon/VMs (clustered into bursts when BurstMean > 1),
// Pareto lifetimes mean-matched to MeanLifetime, classes drawn from the
// weighted Mix and sizes from the weighted SizeMix. Identical configs
// yield identical traces, and configs that leave the calibration knobs
// (SizeMix, BurstMean) at their zero values reproduce pre-calibration
// traces bit for bit — the burst and size RNG streams are split off
// after the original three and never drawn from on the default path.
func Synthesize(cfg SynthConfig) Trace {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed)
	arrivalRNG := rng.Split()
	lifeRNG := rng.Split()
	classRNG := rng.Split()
	burstRNG := rng.Split()
	sizeRNG := rng.Split()

	var totalWeight float64
	for _, s := range cfg.Mix {
		totalWeight += s.Weight
	}
	var totalSizeWeight float64
	for _, s := range cfg.SizeMix {
		totalSizeWeight += s.Weight
	}
	meanGap := float64(cfg.Horizon) / float64(cfg.VMs)
	// Pareto scale so the mean is MeanLifetime: mean = xm*alpha/(alpha-1).
	xm := cfg.MeanLifetime * (cfg.ParetoAlpha - 1) / cfg.ParetoAlpha

	evs := make([]Event, 0, cfg.VMs)
	at := 0.0
	burstLeft := 0
	for i := 0; i < cfg.VMs; i++ {
		if cfg.BurstMean > 1 {
			if burstLeft == 0 {
				// Stretch the inter-burst gap by the mean burst size so
				// the long-run arrival rate stays VMs/Horizon.
				at += expSample(arrivalRNG, meanGap*cfg.BurstMean)
				burstLeft = geometricSample(burstRNG, cfg.BurstMean)
			}
			burstLeft--
		} else {
			at += expSample(arrivalRNG, meanGap)
		}
		life := xm * math.Pow(1-lifeRNG.Float64(), -1/cfg.ParetoAlpha)
		lifetime := uint64(math.Round(life))
		if lifetime < cfg.MinLifetime {
			lifetime = cfg.MinLifetime
		}
		ev := Event{
			Submit:   uint64(math.Round(at)),
			Lifetime: lifetime,
			App:      pickClass(classRNG, cfg.Mix, totalWeight),
			MemoryMB: cfg.MemoryMB,
			LLCCap:   cfg.LLCCap,
		}
		if len(cfg.SizeMix) > 0 {
			size := pickSize(sizeRNG, cfg.SizeMix, totalSizeWeight)
			ev.VCPUs = size.VCPUs
			if size.MemoryMB != 0 {
				ev.MemoryMB = size.MemoryMB
			}
		}
		evs = append(evs, ev)
	}
	return Trace{Events: evs}
}

// expSample draws an exponential variate with the given mean.
func expSample(rng *xrand.Rand, mean float64) float64 {
	// 1-Float64() is in (0, 1], so the log is finite.
	return -mean * math.Log(1-rng.Float64())
}

// geometricSample draws a geometric variate on {1, 2, ...} with the
// given mean (mean must be > 1).
func geometricSample(rng *xrand.Rand, mean float64) int {
	p := 1 / mean
	// Inverse CDF: k = 1 + floor(ln(1-U) / ln(1-p)).
	k := 1 + int(math.Floor(math.Log(1-rng.Float64())/math.Log(1-p)))
	if k < 1 {
		return 1
	}
	return k
}

// pickClass draws one class from the weighted mix.
func pickClass(rng *xrand.Rand, mix []ClassShare, total float64) string {
	x := rng.Float64() * total
	for _, s := range mix {
		x -= s.Weight
		if x < 0 {
			return s.App
		}
	}
	return mix[len(mix)-1].App
}

// pickSize draws one size from the weighted mix.
func pickSize(rng *xrand.Rand, mix []SizeShare, total float64) SizeShare {
	x := rng.Float64() * total
	for _, s := range mix {
		x -= s.Weight
		if x < 0 {
			return s
		}
	}
	return mix[len(mix)-1]
}
