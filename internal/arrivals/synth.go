package arrivals

import (
	"math"

	"kyoto/internal/xrand"
)

// Synthetic-churn defaults; see SynthConfig.
const (
	DefaultSynthVMs          = 16
	DefaultSynthHorizon      = 120
	DefaultSynthMeanLifetime = 45
	DefaultSynthParetoAlpha  = 1.8
	DefaultSynthMinLifetime  = 6
	DefaultSynthLLCCap       = 250
)

// ClassShare weights one application class in the synthetic mix.
type ClassShare struct {
	// App is the workload profile name.
	App string
	// Weight is the class's relative arrival probability.
	Weight float64
}

// DefaultMix is the synthetic-churn application mix: mostly quiet
// tenants, a steady share of the paper's Figure-4 polluters (lbm, mcf,
// blockie), roughly the quiet-to-aggressive ratio of a multi-tenant rack.
func DefaultMix() []ClassShare {
	return []ClassShare{
		{App: "gcc", Weight: 3},
		{App: "omnetpp", Weight: 2},
		{App: "astar", Weight: 2},
		{App: "bzip", Weight: 1},
		{App: "lbm", Weight: 2},
		{App: "mcf", Weight: 1},
		{App: "blockie", Weight: 1},
	}
}

// SynthConfig parameterizes the synthetic churn generator. The zero value
// is usable: 16 VMs over a 120-tick horizon with 45-tick mean lifetimes,
// the default mix and a full Figure-5 permit per VM.
type SynthConfig struct {
	// Seed drives all randomness (0 means 1). The same config and seed
	// always synthesize the identical trace.
	Seed uint64
	// VMs is the number of arrivals to generate.
	VMs int
	// Horizon spreads the arrivals: the mean inter-arrival gap is
	// Horizon/VMs ticks (Poisson-style exponential gaps).
	Horizon uint64
	// MeanLifetime is the mean VM lifetime in ticks. Lifetimes are
	// Pareto-distributed (heavy-tailed: most VMs short-lived, a few
	// long-runners), matching public-cloud churn studies.
	MeanLifetime float64
	// ParetoAlpha is the lifetime tail shape (> 1; smaller = heavier
	// tail).
	ParetoAlpha float64
	// MinLifetime floors lifetimes, in ticks (two slices by default, so
	// every VM exists across at least one Kyoto refill boundary).
	MinLifetime uint64
	// Mix is the weighted application-class mix (default DefaultMix).
	Mix []ClassShare
	// MemoryMB books each VM's memory (default cluster default, 64 MB).
	MemoryMB int
	// LLCCap books each VM's pollution permit (default 250, the paper's
	// Figure-5 booking). Set negative to book none (permit-less VMs are
	// rejected by Kyoto admission — useful to probe rejection behaviour).
	LLCCap float64
}

// withDefaults fills zero-valued fields.
func (c SynthConfig) withDefaults() SynthConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.VMs <= 0 {
		c.VMs = DefaultSynthVMs
	}
	if c.Horizon == 0 {
		c.Horizon = DefaultSynthHorizon
	}
	if c.MeanLifetime <= 0 {
		c.MeanLifetime = DefaultSynthMeanLifetime
	}
	if c.ParetoAlpha <= 1 {
		c.ParetoAlpha = DefaultSynthParetoAlpha
	}
	if c.MinLifetime == 0 {
		c.MinLifetime = DefaultSynthMinLifetime
	}
	if len(c.Mix) == 0 {
		c.Mix = DefaultMix()
	}
	if c.LLCCap == 0 {
		c.LLCCap = DefaultSynthLLCCap
	} else if c.LLCCap < 0 {
		c.LLCCap = 0
	}
	return c
}

// Synthesize generates a seeded churn trace: exponential inter-arrival
// gaps with mean Horizon/VMs, Pareto lifetimes mean-matched to
// MeanLifetime, and classes drawn from the weighted Mix. Identical
// configs yield identical traces.
func Synthesize(cfg SynthConfig) Trace {
	cfg = cfg.withDefaults()
	rng := xrand.New(cfg.Seed)
	arrivalRNG := rng.Split()
	lifeRNG := rng.Split()
	classRNG := rng.Split()

	var totalWeight float64
	for _, s := range cfg.Mix {
		totalWeight += s.Weight
	}
	meanGap := float64(cfg.Horizon) / float64(cfg.VMs)
	// Pareto scale so the mean is MeanLifetime: mean = xm*alpha/(alpha-1).
	xm := cfg.MeanLifetime * (cfg.ParetoAlpha - 1) / cfg.ParetoAlpha

	evs := make([]Event, 0, cfg.VMs)
	at := 0.0
	for i := 0; i < cfg.VMs; i++ {
		at += expSample(arrivalRNG, meanGap)
		life := xm * math.Pow(1-lifeRNG.Float64(), -1/cfg.ParetoAlpha)
		lifetime := uint64(math.Round(life))
		if lifetime < cfg.MinLifetime {
			lifetime = cfg.MinLifetime
		}
		evs = append(evs, Event{
			Submit:   uint64(math.Round(at)),
			Lifetime: lifetime,
			App:      pickClass(classRNG, cfg.Mix, totalWeight),
			MemoryMB: cfg.MemoryMB,
			LLCCap:   cfg.LLCCap,
		})
	}
	return Trace{Events: evs}
}

// expSample draws an exponential variate with the given mean.
func expSample(rng *xrand.Rand, mean float64) float64 {
	// 1-Float64() is in (0, 1], so the log is finite.
	return -mean * math.Log(1-rng.Float64())
}

// pickClass draws one class from the weighted mix.
func pickClass(rng *xrand.Rand, mix []ClassShare, total float64) string {
	x := rng.Float64() * total
	for _, s := range mix {
		x -= s.Weight
		if x < 0 {
			return s.App
		}
	}
	return mix[len(mix)-1].App
}
