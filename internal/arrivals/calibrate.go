package arrivals

// Calibration of the synthetic generator against published public-cloud
// trace statistics — primarily the Azure VM workload characterization of
// Cortez et al., "Resource Central" (SOSP 2017), which the ROADMAP names
// as the shape the churn generator should reproduce. Three robust
// qualitative facts from that study (and the Borg/EC2 literature around
// it) drive the knobs:
//
//   - Lifetimes are heavy-tailed: most VMs are short-lived (a large
//     share shorter than the mean), while a small share of long-runners
//     carries most of the VM-hours, so the lifetime coefficient of
//     variation is well above 1 (an exponential fit would give CV = 1).
//   - The size mix is dominated by small instances: the large majority
//     of VMs book 1-2 cores, with a thin tail of bigger shapes.
//   - Arrival streams are over-dispersed relative to Poisson:
//     deployments submit groups of VMs at once, so counts per window
//     have variance well above their mean (Poisson would have ratio 1).
//
// AzureCalibrated encodes those as a SynthConfig; TraceStats measures
// any trace against the same three axes; the calibration test pins the
// committed 256-VM example trace (testdata/azure_calibrated_256.json)
// inside CalibrationTargets' windows.

import "math"

// CalibrationTargets bounds the three calibrated statistics. The windows
// are deliberately wide — they assert the *shape* (heavy tail, small-VM
// dominance, bursty arrivals), not fragile point estimates.
type CalibrationTargets struct {
	// MinLifetimeCV is the lower bound on the lifetime coefficient of
	// variation (Poisson/exponential churn would sit at 1).
	MinLifetimeCV float64
	// MinShortLivedShare is the lower bound on the fraction of VMs whose
	// lifetime is below the trace's mean lifetime — the "most VMs are
	// short-lived" skew.
	MinShortLivedShare float64
	// MinSmallVMShare and MaxSmallVMShare bound the fraction of VMs
	// booking 1-2 vCPUs.
	MinSmallVMShare, MaxSmallVMShare float64
	// MinArrivalDispersion is the lower bound on the index of dispersion
	// of arrivals (variance/mean of counts per window; Poisson is 1).
	MinArrivalDispersion float64
}

// DefaultCalibrationTargets returns the windows the committed calibrated
// trace is pinned inside.
func DefaultCalibrationTargets() CalibrationTargets {
	return CalibrationTargets{
		MinLifetimeCV:        1.3,
		MinShortLivedShare:   0.60,
		MinSmallVMShare:      0.75,
		MaxSmallVMShare:      0.95,
		MinArrivalDispersion: 1.3,
	}
}

// AzureCalibrated returns a SynthConfig whose traces match the published
// Azure shape: Pareto lifetimes with a heavy tail (alpha 1.4, so the
// sample CV sits well above the exponential's 1), a small-instance-
// dominated size mix (~85% of VMs at 1-2 vCPUs), and bursty arrivals
// (mean burst 2.5 VMs, giving counts per window roughly twice Poisson
// dispersion). The horizon scales with the VM count so fleet pressure is
// independent of trace length.
func AzureCalibrated(seed uint64, vms int) SynthConfig {
	if vms <= 0 {
		vms = DefaultSynthVMs
	}
	return SynthConfig{
		Seed:         seed,
		VMs:          vms,
		Horizon:      uint64(vms) * 8,
		MeanLifetime: 40,
		ParetoAlpha:  1.4,
		MinLifetime:  2,
		BurstMean:    2.5,
		SizeMix: []SizeShare{
			{VCPUs: 1, MemoryMB: 64, Weight: 5},
			{VCPUs: 2, MemoryMB: 128, Weight: 3.5},
			{VCPUs: 4, MemoryMB: 256, Weight: 1.5},
		},
	}
}

// TraceStats are the measured calibration statistics of one trace.
type TraceStats struct {
	// Events counts the trace's records.
	Events int
	// LifetimeMean and LifetimeCV describe the lifetime distribution
	// (never-departing lifetime-0 VMs are excluded).
	LifetimeMean float64
	LifetimeCV   float64
	// ShortLivedShare is the fraction of VMs living shorter than
	// LifetimeMean.
	ShortLivedShare float64
	// SmallVMShare is the fraction of VMs booking 1-2 vCPUs.
	SmallVMShare float64
	// ArrivalDispersion is the index of dispersion (variance/mean) of
	// arrival counts per 10-tick window across the submit span.
	ArrivalDispersion float64
}

// arrivalWindow is the bucketing TraceStats uses for the dispersion
// index.
const arrivalWindow = 10

// MeasureTrace computes the calibration statistics of a trace.
func MeasureTrace(tr Trace) TraceStats {
	st := TraceStats{Events: len(tr.Events)}
	if len(tr.Events) == 0 {
		return st
	}
	var lives []float64
	var maxSubmit uint64
	small := 0
	for _, e := range tr.Events {
		if e.Lifetime > 0 {
			lives = append(lives, float64(e.Lifetime))
		}
		if v := e.VCPUs; v == 0 || v <= 2 {
			small++
		}
		if e.Submit > maxSubmit {
			maxSubmit = e.Submit
		}
	}
	st.SmallVMShare = float64(small) / float64(len(tr.Events))

	if len(lives) > 0 {
		var sum float64
		for _, l := range lives {
			sum += l
		}
		st.LifetimeMean = sum / float64(len(lives))
		var sq float64
		short := 0
		for _, l := range lives {
			d := l - st.LifetimeMean
			sq += d * d
			if l < st.LifetimeMean {
				short++
			}
		}
		if st.LifetimeMean > 0 {
			st.LifetimeCV = math.Sqrt(sq/float64(len(lives))) / st.LifetimeMean
		}
		st.ShortLivedShare = float64(short) / float64(len(lives))
	}

	windows := int(maxSubmit/arrivalWindow) + 1
	counts := make([]float64, windows)
	for _, e := range tr.Events {
		counts[int(e.Submit/arrivalWindow)]++
	}
	mean := float64(len(tr.Events)) / float64(windows)
	var varSum float64
	for _, c := range counts {
		d := c - mean
		varSum += d * d
	}
	if mean > 0 && windows > 1 {
		st.ArrivalDispersion = (varSum / float64(windows)) / mean
	}
	return st
}

// Check reports whether the statistics sit inside the targets' windows;
// the returned slice names each violated bound (empty = calibrated).
func (st TraceStats) Check(t CalibrationTargets) []string {
	var bad []string
	if st.LifetimeCV < t.MinLifetimeCV {
		bad = append(bad, "lifetime CV below target (tail too light)")
	}
	if st.ShortLivedShare < t.MinShortLivedShare {
		bad = append(bad, "short-lived share below target (not skewed enough)")
	}
	if st.SmallVMShare < t.MinSmallVMShare || st.SmallVMShare > t.MaxSmallVMShare {
		bad = append(bad, "small-VM share outside target window")
	}
	if st.ArrivalDispersion < t.MinArrivalDispersion {
		bad = append(bad, "arrival dispersion below target (not bursty enough)")
	}
	return bad
}
