package arrivals

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateAzure = flag.Bool("update-azure", false, "rewrite testdata/azure_calibrated_256.json from the generator")

const azureTracePath = "azure_calibrated_256.json"

func TestAzureCalibratedTraceMatchesPublishedShape(t *testing.T) {
	cfg := AzureCalibrated(1, 256)
	tr := Synthesize(cfg)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 256 {
		t.Fatalf("generated %d events, want 256", len(tr.Events))
	}
	st := MeasureTrace(tr)
	if bad := st.Check(DefaultCalibrationTargets()); len(bad) > 0 {
		t.Fatalf("calibration drifted out of the published Azure shape: %v\nstats: %+v", bad, st)
	}
	// The knobs must actually engage: at least one multi-VM burst (two
	// events sharing a submit tick) and at least one non-1-vCPU size.
	shared, big := false, false
	for i, e := range tr.Events {
		if i > 0 && e.Submit == tr.Events[i-1].Submit {
			shared = true
		}
		if e.VCPUs > 1 {
			big = true
		}
	}
	if !shared || !big {
		t.Fatalf("burst/size knobs inert: shared-submit=%v, multi-vcpu=%v", shared, big)
	}

	// The committed example (the >=10x-scale trace the ROADMAP asked
	// for) must be exactly what the generator emits, so the file and the
	// code cannot drift apart.
	path := filepath.Join("testdata", azureTracePath)
	if *updateAzure {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(f); err != nil {
			f.Close()
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	committed, err := Load(path)
	if err != nil {
		t.Fatalf("load committed calibrated trace (run with -update-azure to create): %v", err)
	}
	if !reflect.DeepEqual(committed, tr) {
		t.Fatal("committed calibrated trace differs from the generator's output — regenerate with -update-azure")
	}
}

func TestAzureCalibratedIsDeterministic(t *testing.T) {
	a := Synthesize(AzureCalibrated(9, 64))
	b := Synthesize(AzureCalibrated(9, 64))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical calibrated configs synthesized different traces")
	}
	c := Synthesize(AzureCalibrated(10, 64))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds synthesized identical traces")
	}
}

func TestCalibrationKnobsDoNotDisturbDefaultPath(t *testing.T) {
	// The default path must stay bit-identical to pre-calibration
	// traces: BurstMean <= 1 and an empty SizeMix draw nothing from the
	// new RNG streams (the churn goldens in internal/cluster pin the
	// same property end to end).
	base := SynthConfig{Seed: 7, VMs: 12, Horizon: 45, MeanLifetime: 14}
	plain := Synthesize(base)
	withInert := base
	withInert.BurstMean = 1 // <= 1 means plain Poisson
	if !reflect.DeepEqual(plain, Synthesize(withInert)) {
		t.Fatal("BurstMean=1 changed the default arrival stream")
	}
	for _, e := range plain.Events {
		if e.VCPUs != 0 {
			t.Fatalf("default path emitted sized VM: %+v", e)
		}
	}
}

func TestMeasureTraceOnSmallShapes(t *testing.T) {
	if st := MeasureTrace(Trace{}); st.Events != 0 || st.LifetimeCV != 0 {
		t.Fatalf("empty trace stats: %+v", st)
	}
	// A single window of identical arrivals: dispersion needs > 1
	// window, lifetimes of 0 are excluded as never-departing.
	tr := Trace{Events: []Event{
		{Submit: 0, App: "gcc"},
		{Submit: 1, App: "gcc", Lifetime: 10},
	}}
	st := MeasureTrace(tr)
	if st.Events != 2 || st.LifetimeMean != 10 || st.SmallVMShare != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
