package arrivals

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"kyoto/internal/cluster"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// DefaultRebalanceEvery is the rebalance epoch length in ticks when
// Options enables a Rebalancer without choosing one: four scheduler
// slices, long enough for the epoch's Equation-1 rates to mean something.
const DefaultRebalanceEvery = 12

// Options tunes a replay.
type Options struct {
	// DrainTicks runs the fleet this many extra ticks after the last
	// event before final counters are read, letting VMs that never depart
	// accumulate a measurable window (default 0).
	DrainTicks int

	// Pending selects what happens to arrivals no host can take: reject
	// outright (PendingNone, the default), or park them in a Borg-style
	// pending queue and retry as capacity frees (PendingFIFO,
	// PendingDeadline, PendingSJF). See the PendingPolicy docs for retry
	// ordering.
	Pending PendingPolicy
	// MaxWait bounds a queued VM's wait under PendingDeadline, in ticks
	// (default DefaultMaxWait). Ignored by the other policies.
	MaxWait uint64

	// Rebalancer enables live migration: every RebalanceEvery ticks a
	// fleet monitor snapshots per-VM pollution (Equation 1 over the
	// epoch) and the policy's plan is applied through Fleet.Migrate.
	// nil (the default) never migrates.
	Rebalancer cluster.Rebalancer
	// RebalanceEvery is the epoch length in ticks (default
	// DefaultRebalanceEvery).
	RebalanceEvery uint64
	// MigrationDowntime suspends each migrated VM for this many ticks on
	// its destination — the stop-and-copy blackout (default 0: the only
	// migration cost is the lost cache footprint).
	MigrationDowntime int

	// Lockstep disables lazy per-host advancement: every inter-event gap
	// synchronizes the whole fleet, exactly as the replay engine worked
	// before event-horizon execution. Results are bit-identical either
	// way (the fleet's seeks and barriers guarantee it); the knob exists
	// as the measured baseline for the lazy engine's speedup and as a
	// bisection aid. It changes scheduling only, never results, so it is
	// excluded from sweep config digests (like Workers).
	Lockstep bool
}

// Record is one event's outcome: where the VM landed (or why it was
// rejected) and the PMC counters it accumulated over its residency.
type Record struct {
	// Index is the event's position in the sorted trace.
	Index int
	// Name and App echo the resolved event.
	Name string
	App  string
	// VCPUs echoes the event's requested vCPU count (0 means the default
	// of 1, as in Event) — the size-class key the per-class wait
	// percentiles group by. omitempty keeps the JSON of all-default
	// traces byte-identical to records minted before the field existed,
	// so sweep payload fingerprints over such traces are unchanged.
	VCPUs int `json:",omitempty"`
	// Submit and Depart bound the VM's residency in ticks. For VMs still
	// running when the replay ends (Lifetime 0), Depart is the end tick.
	Submit uint64
	Depart uint64
	// PlacedTick is when the VM actually started: Submit unless it waited
	// in the pending queue. For rejected VMs it is the tick the rejection
	// became final (a deadline drop or the end of the replay).
	PlacedTick uint64
	// WaitTicks is PlacedTick - Submit: the time spent queued (0 when
	// placed immediately; for dropped VMs, the time waited before giving
	// up).
	WaitTicks uint64
	// Queued reports whether the VM ever sat in the pending queue.
	Queued bool
	// HostID is where the VM ran (its final host if it was migrated), -1
	// when rejected.
	HostID int
	// Migrations counts how many times the VM was live-migrated.
	Migrations int
	// Rejected is set when the VM never ran; Reason carries the placement
	// policy's last explanation (or the queue's drop reason).
	Rejected bool
	Reason   string
	// Departed distinguishes a real departure from an end-of-replay
	// snapshot of a still-running VM.
	Departed bool
	// Counters is the VM's aggregate PMC delta over its residency,
	// accumulated across every host it ran on.
	Counters pmc.Counters
}

// MigrationEvent is one applied live migration.
type MigrationEvent struct {
	// Tick is when the migration happened.
	Tick uint64
	// Index and Name identify the migrated VM's record.
	Index int
	Name  string
	// SrcHost and DstHost are the endpoints.
	SrcHost, DstHost int
	// Reason echoes the rebalancer's explanation.
	Reason string
}

// Result is a whole replay's outcome.
type Result struct {
	// Records parallels the sorted trace's events.
	Records []Record
	// Placed and Rejected count outcomes.
	Placed   int
	Rejected int
	// Migrations lists every applied live migration in order.
	Migrations []MigrationEvent
	// EndTick is the fleet clock when the replay finished.
	EndTick uint64
	// CPUUtilization is the time-weighted mean booked share of vCPU slots
	// over the whole replay, in [0, 1].
	CPUUtilization float64
	// PendingUsed and RebalanceUsed record which optional subsystems the
	// replay ran with; Fingerprint folds a subsystem's outcomes only when
	// it was active, so fingerprints of scenarios that predate a
	// subsystem are stable across its introduction.
	PendingUsed   bool
	RebalanceUsed bool
}

// RejectionRate returns rejected / submitted, in [0, 1].
func (r Result) RejectionRate() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(len(r.Records))
}

// PlacedWaits returns the queue wait in ticks of every placed VM (zero
// for VMs placed on arrival) — the wait-time distribution the pending
// queue trades against rejection rate. Dropped VMs are not included; they
// are counted by RejectionRate instead.
func (r Result) PlacedWaits() []float64 {
	waits := make([]float64, 0, r.Placed)
	for _, rec := range r.Records {
		if !rec.Rejected {
			waits = append(waits, float64(rec.WaitTicks))
		}
	}
	return waits
}

// SmallVMMaxCPUs is the size-class boundary for PlacedWaitsByClass:
// VMs booking at most this many vCPUs are "small", the rest "large".
// Matches the {1,2} vs {4} split of the Azure-calibrated size mix.
const SmallVMMaxCPUs = 2

// PlacedWaitsByClass splits PlacedWaits by VM size class: small VMs
// (booked vCPUs <= SmallVMMaxCPUs) versus large. Shortest-job-first
// pending queues systematically push large VMs to the back, so the two
// distributions expose the starvation cost a pooled percentile hides.
// Sizes are compared after booking normalization (0 vCPUs books as 1).
func (r Result) PlacedWaitsByClass() (small, large []float64) {
	for _, rec := range r.Records {
		if rec.Rejected {
			continue
		}
		req := cluster.Request{Spec: vm.Spec{VCPUs: rec.VCPUs}}
		if req.CPUs() <= SmallVMMaxCPUs {
			small = append(small, float64(rec.WaitTicks))
		} else {
			large = append(large, float64(rec.WaitTicks))
		}
	}
	return small, large
}

// Fingerprint folds every record's counters and placement metadata into
// one stable hash. Two replays of the same trace on identically
// configured fleets — serial or parallel, today or in a year — must
// produce the same fingerprint; the churn goldens pin several. Outcomes
// of the optional subsystems (pending-queue placement ticks, applied
// migrations) are folded only when the subsystem was active, so a
// fingerprint minted before a subsystem existed still matches.
func (r Result) Fingerprint() string {
	h := pmc.FoldSeed
	for _, rec := range r.Records {
		h = rec.Counters.Fold(h)
		h = pmc.FoldUint64(h, uint64(rec.HostID+2))
		h = pmc.FoldUint64(h, rec.Submit)
		h = pmc.FoldUint64(h, rec.Depart)
		var flags uint64
		if rec.Rejected {
			flags |= 1
		}
		if rec.Departed {
			flags |= 2
		}
		h = pmc.FoldUint64(h, flags)
		if r.PendingUsed {
			h = pmc.FoldUint64(h, rec.PlacedTick)
		}
	}
	if r.RebalanceUsed {
		h = pmc.FoldUint64(h, uint64(len(r.Migrations)))
		for _, m := range r.Migrations {
			h = pmc.FoldUint64(h, m.Tick)
			h = pmc.FoldUint64(h, uint64(m.Index))
			h = pmc.FoldUint64(h, uint64(m.SrcHost+2))
			h = pmc.FoldUint64(h, uint64(m.DstHost+2))
		}
	}
	return fmt.Sprintf("%016x", h)
}

// booking normalizes an event's request through the cluster's own
// zero-means-default accessors, so SJF compares what would actually be
// booked at placement (one source of truth for the defaults).
func booking(e Event) (cpus, memMB int) {
	req := cluster.Request{Spec: vm.Spec{VCPUs: e.VCPUs}, MemoryMB: e.MemoryMB}
	return req.CPUs(), req.MemMB()
}

// departure is a scheduled Fleet.Remove.
type departure struct {
	tick uint64
	idx  int // record index; orders same-tick departures deterministically
}

// departureHeap is a min-heap on (tick, idx).
type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].idx < h[j].idx
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// noTick marks "no next event" in the tick minimum computations.
const noTick = ^uint64(0)

// Replay feeds the trace through the fleet: at each event tick the fleet
// clock is advanced to that tick, departures are processed first (freeing
// booked CPU, memory and llc_cap, and evicting the departed VM's cache
// footprint), then — when the options enable them — the rebalance epoch
// runs, the pending queue retries, deadline drops fire, and finally
// arrivals are placed in trace order. Rejections are recorded, not fatal
// — a rejection is the placement policy speaking.
//
// Execution is event-horizon: only the hosts a moment actually touches
// are simulated up to it (the fleet's lazy per-host clocks; see the
// arrivals README), while rebalance epochs, checkpoints and the end of
// the run are global barriers. Because per-host simulation is
// chunk-invariant, the results are bit-identical to the lockstep
// engine's (Options.Lockstep replays the old schedule for comparison).
//
// The fleet should be freshly built; Replay assumes its clock starts at
// the trace's epoch. Event order, the fixed same-tick ordering above, and
// the fleet's deterministic per-host advancement make the whole replay
// deterministic for a given trace, seed, fleet configuration and option
// set.
func Replay(f *cluster.Fleet, tr Trace, opt Options) (Result, error) {
	p, err := NewReplayer(f, tr, opt)
	if err != nil {
		return Result{}, err
	}
	return p.Finish()
}

// replayRun is one in-flight replay: the closure state of the original
// Replay loop lifted into fields so a replay can pause at a moment
// boundary, be checkpointed, and resume bit-identically. The methods
// below are the original loop's closures verbatim; any change to their
// statement order risks the churn goldens.
type replayRun struct {
	f      *cluster.Fleet
	events []Event
	opt    Options

	maxWait uint64
	every   uint64
	mon     *cluster.FleetMonitor

	nextRebalance uint64
	active        map[string]int  // live VM name -> record index
	waiting       map[string]bool // names parked in the pending queue
	pend          []int           // queued record indices, submit order
	deps          departureHeap
	now           uint64
	utilTicks     float64 // integral of booked-CPU fraction over ticks
	i             int
	res           Result
}

// runTo advances the replay clock to tick t, accruing utilization over
// the gap in one float addition — which is why pauses happen only at
// moment boundaries: splitting a gap would split the addition and could
// differ in the last bit.
//
// The fleet's virtual clock moves with the replay clock, but hosts are
// not simulated here: each one is fast-forwarded lazily by the fleet
// when the moment being processed actually touches it (a placement, a
// departure, a migration endpoint, a monitor observation or a
// checkpoint/end-of-run barrier). BookedCPUFraction reads only booking
// ledgers, so the utilization integral never forces a catch-up. Under
// Options.Lockstep the whole fleet is instead ticked eagerly across the
// gap (Fleet.RunTicksLockstep) — the pre-event-horizon execution, kept
// as the measured baseline.
func (r *replayRun) runTo(t uint64) {
	if t <= r.now {
		return
	}
	r.utilTicks += r.f.BookedCPUFraction() * float64(t-r.now)
	if r.opt.Lockstep {
		r.f.RunTicksLockstep(int(t - r.now))
	} else {
		r.f.SkipTicks(t - r.now)
	}
	r.now = t
}

// tryPlace attempts to place the event's VM now. It returns false on a
// policy rejection (recording the reason) and propagates real errors.
func (r *replayRun) tryPlace(idx int) (bool, error) {
	ev := r.events[idx]
	rec := &r.res.Records[idx]
	p, err := r.f.Place(cluster.Request{
		Spec:     vm.Spec{Name: rec.Name, App: ev.App, VCPUs: ev.VCPUs, LLCCap: ev.LLCCap},
		MemoryMB: ev.MemoryMB,
	})
	if err != nil {
		if !errors.Is(err, cluster.ErrUnplaceable) {
			return false, err
		}
		rec.Reason = err.Error()
		return false, nil
	}
	rec.HostID = p.HostID
	rec.PlacedTick = r.now
	rec.WaitTicks = r.now - rec.Submit
	rec.Reason = ""
	r.active[rec.Name] = idx
	r.res.Placed++
	if ev.Lifetime > 0 {
		// Validate bounds Submit and Lifetime to MaxTick, so the
		// departure tick cannot overflow.
		heap.Push(&r.deps, departure{tick: r.now + ev.Lifetime, idx: idx})
	}
	return true, nil
}

// retryOrder returns the queued record indices in SJF retry order:
// smallest booked request first (vCPUs, then memory, then llc_cap;
// submit order breaks ties — record indices follow the sorted trace,
// so a lower index is an earlier submit). FIFO/deadline retries use
// pend directly.
func (r *replayRun) retryOrder() []int {
	if len(r.pend) < 2 {
		return r.pend
	}
	order := append([]int(nil), r.pend...)
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := r.events[order[a]], r.events[order[b]]
		ca, ma := booking(ea)
		cb, mb := booking(eb)
		if ca != cb {
			return ca < cb
		}
		if ma != mb {
			return ma < mb
		}
		if ea.LLCCap != eb.LLCCap {
			return ea.LLCCap < eb.LLCCap
		}
		return order[a] < order[b]
	})
	return order
}

// retryPending re-attempts the queue in the policy's order, skipping
// VMs that still do not fit (a scan, not head-of-line blocking:
// Borg's scheduler also keeps trying the rest of the queue). The
// queue itself stays in submit order whatever the retry order, so
// deadline scans and end-of-trace rejections stay deterministic.
func (r *replayRun) retryPending() error {
	if len(r.pend) == 0 {
		return nil
	}
	if r.opt.Pending != PendingSJF {
		// Retry order == queue order: compact in place, no allocation
		// (this runs on every capacity-freeing tick).
		kept := r.pend[:0]
		for _, idx := range r.pend {
			ok, err := r.tryPlace(idx)
			if err != nil {
				return err
			}
			if ok {
				delete(r.waiting, r.res.Records[idx].Name)
			} else {
				kept = append(kept, idx)
			}
		}
		r.pend = kept
		return nil
	}
	placed := make(map[int]bool)
	for _, idx := range r.retryOrder() {
		ok, err := r.tryPlace(idx)
		if err != nil {
			return err
		}
		if ok {
			placed[idx] = true
			delete(r.waiting, r.res.Records[idx].Name)
		}
	}
	if len(placed) > 0 {
		kept := r.pend[:0]
		for _, idx := range r.pend {
			if !placed[idx] {
				kept = append(kept, idx)
			}
		}
		r.pend = kept
	}
	return nil
}

// reject finalizes a queued VM as rejected with the given reason.
func (r *replayRun) reject(idx int, reason string) {
	rec := &r.res.Records[idx]
	rec.Rejected = true
	rec.Reason = reason
	rec.PlacedTick = r.now
	rec.WaitTicks = r.now - rec.Submit
	r.res.Rejected++
	delete(r.waiting, rec.Name)
}

// rebalance runs one epoch: observe, plan, migrate.
func (r *replayRun) rebalance() (bool, error) {
	view := r.mon.Observe(r.f)
	plan := r.opt.Rebalancer.Plan(r.f.Hosts(), view)
	for _, m := range plan {
		// The Rebalancer contract is to plan only feasible moves of
		// VMs this replay placed; surface violations loudly. The
		// active check matters when the caller handed Replay a
		// pre-populated fleet: migrating a pre-existing VM would
		// otherwise corrupt an unrelated record.
		idx, ok := r.active[m.VMName]
		if !ok {
			return false, fmt.Errorf("arrivals: rebalance at tick %d: plan moves %q, which this replay did not place", r.now, m.VMName)
		}
		if _, err := r.f.Migrate(m.VMName, m.DstHost, r.opt.MigrationDowntime); err != nil {
			return false, fmt.Errorf("arrivals: rebalance at tick %d: %w", r.now, err)
		}
		r.res.Records[idx].HostID = m.DstHost
		r.res.Records[idx].Migrations++
		r.res.Migrations = append(r.res.Migrations, MigrationEvent{
			Tick: r.now, Index: idx, Name: m.VMName,
			SrcHost: m.SrcHost, DstHost: m.DstHost, Reason: m.Reason,
		})
	}
	return len(plan) > 0, nil
}

// done reports whether the event loop has nothing left to process. Once
// only queued VMs remain, nothing frees capacity on its own: under
// PendingDeadline their deadlines still fire (and rebalance epochs may
// still make room before then); under PendingFIFO the queue can never
// drain, so the loop stops and Finish rejects the leftovers.
func (r *replayRun) done() bool {
	workRemains := r.i < len(r.events) || r.deps.Len() > 0
	return !workRemains && (r.opt.Pending != PendingDeadline || len(r.pend) == 0)
}

// step advances the replay to the next moment (event submit, departure,
// rebalance epoch or pending deadline, whichever is earliest) and
// processes everything due there, in the fixed same-tick order.
func (r *replayRun) step() error {
	next := noTick
	if r.i < len(r.events) {
		next = r.events[r.i].Submit
	}
	if r.deps.Len() > 0 && r.deps[0].tick < next {
		next = r.deps[0].tick
	}
	if r.nextRebalance < next {
		next = r.nextRebalance
	}
	if r.opt.Pending == PendingDeadline && len(r.pend) > 0 {
		// The queue is in submit order, so the head's deadline is the
		// earliest.
		if dl := r.res.Records[r.pend[0]].Submit + r.maxWait; dl < next {
			next = dl
		}
	}
	r.runTo(next)

	freed := false
	for r.deps.Len() > 0 && r.deps[0].tick == r.now {
		d := heap.Pop(&r.deps).(departure)
		rec := &r.res.Records[d.idx]
		p, err := r.f.Remove(rec.Name)
		if err != nil {
			return fmt.Errorf("arrivals: departing %q at tick %d: %w", rec.Name, r.now, err)
		}
		rec.Counters = p.VM.Counters()
		rec.Depart = r.now
		rec.Departed = true
		delete(r.active, rec.Name)
		freed = true
	}

	if r.now == r.nextRebalance {
		migrated, err := r.rebalance()
		if err != nil {
			return err
		}
		freed = freed || migrated
		r.nextRebalance += r.every
	}

	if freed {
		if err := r.retryPending(); err != nil {
			return err
		}
	}

	if r.opt.Pending == PendingDeadline {
		kept := r.pend[:0]
		for _, idx := range r.pend {
			if r.now-r.res.Records[idx].Submit >= r.maxWait {
				r.reject(idx, fmt.Sprintf("pending deadline: waited %d ticks (max %d)", r.now-r.res.Records[idx].Submit, r.maxWait))
			} else {
				kept = append(kept, idx)
			}
		}
		r.pend = kept
	}

	for r.i < len(r.events) && r.events[r.i].Submit == r.now {
		ev := r.events[r.i]
		rec := &r.res.Records[r.i]
		*rec = Record{Index: r.i, Name: ev.name(r.i), App: ev.App, VCPUs: ev.VCPUs, Submit: r.now, PlacedTick: r.now, HostID: -1}
		if _, dup := r.active[rec.Name]; dup {
			return fmt.Errorf("arrivals: event %d: VM name %q already active at tick %d", r.i, rec.Name, r.now)
		}
		if r.waiting[rec.Name] {
			return fmt.Errorf("arrivals: event %d: VM name %q already pending at tick %d", r.i, rec.Name, r.now)
		}
		ok, err := r.tryPlace(r.i)
		if err != nil {
			return err
		}
		if !ok {
			if r.opt.Pending == PendingNone {
				rec.Rejected = true
				r.res.Rejected++
			} else {
				rec.Queued = true
				r.waiting[rec.Name] = true
				r.pend = append(r.pend, r.i)
			}
		}
		r.i++
	}
	return nil
}

// Replayer is a pausable replay: the same loop Replay runs, exposed a
// moment at a time so callers can checkpoint between moments (see
// CaptureState) and resume later. A Replayer drives one fleet through
// one trace exactly once; after Finish it is spent.
type Replayer struct {
	run      *replayRun
	finished bool
}

// NewReplayer validates and sorts the trace and prepares a replay over
// the (freshly built) fleet, without advancing anything.
func NewReplayer(f *cluster.Fleet, tr Trace, opt Options) (*Replayer, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	sorted := tr.Sorted()
	events := sorted.Events
	r := &replayRun{
		f:      f,
		events: events,
		opt:    opt,
		res: Result{
			Records:       make([]Record, len(events)),
			PendingUsed:   opt.Pending != PendingNone,
			RebalanceUsed: opt.Rebalancer != nil,
		},
		active:        make(map[string]int, len(events)),
		waiting:       make(map[string]bool),
		nextRebalance: noTick,
	}
	r.maxWait = opt.MaxWait
	if r.maxWait == 0 {
		r.maxWait = DefaultMaxWait
	}
	r.every = opt.RebalanceEvery
	if r.every == 0 {
		r.every = DefaultRebalanceEvery
	}
	if opt.Rebalancer != nil {
		r.mon = cluster.NewFleetMonitor()
		r.nextRebalance = r.every
	}
	return &Replayer{run: r}, nil
}

// Now returns the fleet clock in ticks.
func (p *Replayer) Now() uint64 { return p.run.now }

// Done reports whether the event loop is exhausted; Finish remains to be
// called for the drain window and final snapshots.
func (p *Replayer) Done() bool { return p.finished || p.run.done() }

// Step processes the next moment of the replay and returns whether more
// remain. Between Step calls the replay sits at a moment boundary — the
// only place CaptureState may be called.
func (p *Replayer) Step() (bool, error) {
	if p.finished {
		return false, fmt.Errorf("arrivals: replayer already finished")
	}
	if p.run.done() {
		return false, nil
	}
	if err := p.run.step(); err != nil {
		return false, err
	}
	return !p.run.done(), nil
}

// StepUntil processes moments until the fleet clock reaches at least
// tick (the replay overshoots to the first moment boundary >= tick) or
// the event loop is exhausted, and returns whether more moments remain.
func (p *Replayer) StepUntil(tick uint64) (bool, error) {
	for {
		if p.finished || p.run.done() {
			return false, nil
		}
		if p.run.now >= tick {
			return true, nil
		}
		if err := p.run.step(); err != nil {
			return false, err
		}
	}
}

// Finish drives the remaining moments, runs the drain window, snapshots
// still-running VMs and returns the Result — exactly what Replay
// returns. The Replayer is spent afterwards.
func (p *Replayer) Finish() (Result, error) {
	if p.finished {
		return Result{}, fmt.Errorf("arrivals: replayer already finished")
	}
	r := p.run
	for !r.done() {
		if err := r.step(); err != nil {
			return r.res, err
		}
	}
	p.finished = true

	// VMs still queued when the events ran out can never be placed (under
	// PendingDeadline the loop above already drained the queue through
	// its deadlines).
	for _, idx := range r.pend {
		r.reject(idx, "pending at end of trace: no capacity ever freed")
	}
	r.pend = nil

	if r.opt.DrainTicks > 0 {
		r.runTo(r.now + uint64(r.opt.DrainTicks))
	}
	// End-of-run barrier: the still-running VMs' counters are about to
	// be read, so every lazily lagging host must reach the end tick.
	r.f.Barrier()
	// Snapshot VMs that never depart (Lifetime 0) as of the end tick, in
	// record order for determinism.
	for idx := range r.res.Records {
		rec := &r.res.Records[idx]
		if aidx, ok := r.active[rec.Name]; ok && aidx == idx {
			if v, _ := r.f.FindVM(rec.Name); v != nil {
				rec.Counters = v.Counters()
			}
			rec.Depart = r.now
		}
	}
	r.res.EndTick = r.now
	if r.now > 0 {
		r.res.CPUUtilization = r.utilTicks / float64(r.now)
	}
	return r.res, nil
}
