package arrivals

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"kyoto/internal/cluster"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// DefaultRebalanceEvery is the rebalance epoch length in ticks when
// Options enables a Rebalancer without choosing one: four scheduler
// slices, long enough for the epoch's Equation-1 rates to mean something.
const DefaultRebalanceEvery = 12

// Options tunes a replay.
type Options struct {
	// DrainTicks runs the fleet this many extra ticks after the last
	// event before final counters are read, letting VMs that never depart
	// accumulate a measurable window (default 0).
	DrainTicks int

	// Pending selects what happens to arrivals no host can take: reject
	// outright (PendingNone, the default), or park them in a Borg-style
	// pending queue and retry as capacity frees (PendingFIFO,
	// PendingDeadline, PendingSJF). See the PendingPolicy docs for retry
	// ordering.
	Pending PendingPolicy
	// MaxWait bounds a queued VM's wait under PendingDeadline, in ticks
	// (default DefaultMaxWait). Ignored by the other policies.
	MaxWait uint64

	// Rebalancer enables live migration: every RebalanceEvery ticks a
	// fleet monitor snapshots per-VM pollution (Equation 1 over the
	// epoch) and the policy's plan is applied through Fleet.Migrate.
	// nil (the default) never migrates.
	Rebalancer cluster.Rebalancer
	// RebalanceEvery is the epoch length in ticks (default
	// DefaultRebalanceEvery).
	RebalanceEvery uint64
	// MigrationDowntime suspends each migrated VM for this many ticks on
	// its destination — the stop-and-copy blackout (default 0: the only
	// migration cost is the lost cache footprint).
	MigrationDowntime int
}

// Record is one event's outcome: where the VM landed (or why it was
// rejected) and the PMC counters it accumulated over its residency.
type Record struct {
	// Index is the event's position in the sorted trace.
	Index int
	// Name and App echo the resolved event.
	Name string
	App  string
	// VCPUs echoes the event's requested vCPU count (0 means the default
	// of 1, as in Event) — the size-class key the per-class wait
	// percentiles group by. omitempty keeps the JSON of all-default
	// traces byte-identical to records minted before the field existed,
	// so sweep payload fingerprints over such traces are unchanged.
	VCPUs int `json:",omitempty"`
	// Submit and Depart bound the VM's residency in ticks. For VMs still
	// running when the replay ends (Lifetime 0), Depart is the end tick.
	Submit uint64
	Depart uint64
	// PlacedTick is when the VM actually started: Submit unless it waited
	// in the pending queue. For rejected VMs it is the tick the rejection
	// became final (a deadline drop or the end of the replay).
	PlacedTick uint64
	// WaitTicks is PlacedTick - Submit: the time spent queued (0 when
	// placed immediately; for dropped VMs, the time waited before giving
	// up).
	WaitTicks uint64
	// Queued reports whether the VM ever sat in the pending queue.
	Queued bool
	// HostID is where the VM ran (its final host if it was migrated), -1
	// when rejected.
	HostID int
	// Migrations counts how many times the VM was live-migrated.
	Migrations int
	// Rejected is set when the VM never ran; Reason carries the placement
	// policy's last explanation (or the queue's drop reason).
	Rejected bool
	Reason   string
	// Departed distinguishes a real departure from an end-of-replay
	// snapshot of a still-running VM.
	Departed bool
	// Counters is the VM's aggregate PMC delta over its residency,
	// accumulated across every host it ran on.
	Counters pmc.Counters
}

// MigrationEvent is one applied live migration.
type MigrationEvent struct {
	// Tick is when the migration happened.
	Tick uint64
	// Index and Name identify the migrated VM's record.
	Index int
	Name  string
	// SrcHost and DstHost are the endpoints.
	SrcHost, DstHost int
	// Reason echoes the rebalancer's explanation.
	Reason string
}

// Result is a whole replay's outcome.
type Result struct {
	// Records parallels the sorted trace's events.
	Records []Record
	// Placed and Rejected count outcomes.
	Placed   int
	Rejected int
	// Migrations lists every applied live migration in order.
	Migrations []MigrationEvent
	// EndTick is the fleet clock when the replay finished.
	EndTick uint64
	// CPUUtilization is the time-weighted mean booked share of vCPU slots
	// over the whole replay, in [0, 1].
	CPUUtilization float64
	// PendingUsed and RebalanceUsed record which optional subsystems the
	// replay ran with; Fingerprint folds a subsystem's outcomes only when
	// it was active, so fingerprints of scenarios that predate a
	// subsystem are stable across its introduction.
	PendingUsed   bool
	RebalanceUsed bool
}

// RejectionRate returns rejected / submitted, in [0, 1].
func (r Result) RejectionRate() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(len(r.Records))
}

// PlacedWaits returns the queue wait in ticks of every placed VM (zero
// for VMs placed on arrival) — the wait-time distribution the pending
// queue trades against rejection rate. Dropped VMs are not included; they
// are counted by RejectionRate instead.
func (r Result) PlacedWaits() []float64 {
	waits := make([]float64, 0, r.Placed)
	for _, rec := range r.Records {
		if !rec.Rejected {
			waits = append(waits, float64(rec.WaitTicks))
		}
	}
	return waits
}

// SmallVMMaxCPUs is the size-class boundary for PlacedWaitsByClass:
// VMs booking at most this many vCPUs are "small", the rest "large".
// Matches the {1,2} vs {4} split of the Azure-calibrated size mix.
const SmallVMMaxCPUs = 2

// PlacedWaitsByClass splits PlacedWaits by VM size class: small VMs
// (booked vCPUs <= SmallVMMaxCPUs) versus large. Shortest-job-first
// pending queues systematically push large VMs to the back, so the two
// distributions expose the starvation cost a pooled percentile hides.
// Sizes are compared after booking normalization (0 vCPUs books as 1).
func (r Result) PlacedWaitsByClass() (small, large []float64) {
	for _, rec := range r.Records {
		if rec.Rejected {
			continue
		}
		req := cluster.Request{Spec: vm.Spec{VCPUs: rec.VCPUs}}
		if req.CPUs() <= SmallVMMaxCPUs {
			small = append(small, float64(rec.WaitTicks))
		} else {
			large = append(large, float64(rec.WaitTicks))
		}
	}
	return small, large
}

// Fingerprint folds every record's counters and placement metadata into
// one stable hash. Two replays of the same trace on identically
// configured fleets — serial or parallel, today or in a year — must
// produce the same fingerprint; the churn goldens pin several. Outcomes
// of the optional subsystems (pending-queue placement ticks, applied
// migrations) are folded only when the subsystem was active, so a
// fingerprint minted before a subsystem existed still matches.
func (r Result) Fingerprint() string {
	h := pmc.FoldSeed
	for _, rec := range r.Records {
		h = rec.Counters.Fold(h)
		h = pmc.FoldUint64(h, uint64(rec.HostID+2))
		h = pmc.FoldUint64(h, rec.Submit)
		h = pmc.FoldUint64(h, rec.Depart)
		var flags uint64
		if rec.Rejected {
			flags |= 1
		}
		if rec.Departed {
			flags |= 2
		}
		h = pmc.FoldUint64(h, flags)
		if r.PendingUsed {
			h = pmc.FoldUint64(h, rec.PlacedTick)
		}
	}
	if r.RebalanceUsed {
		h = pmc.FoldUint64(h, uint64(len(r.Migrations)))
		for _, m := range r.Migrations {
			h = pmc.FoldUint64(h, m.Tick)
			h = pmc.FoldUint64(h, uint64(m.Index))
			h = pmc.FoldUint64(h, uint64(m.SrcHost+2))
			h = pmc.FoldUint64(h, uint64(m.DstHost+2))
		}
	}
	return fmt.Sprintf("%016x", h)
}

// booking normalizes an event's request through the cluster's own
// zero-means-default accessors, so SJF compares what would actually be
// booked at placement (one source of truth for the defaults).
func booking(e Event) (cpus, memMB int) {
	req := cluster.Request{Spec: vm.Spec{VCPUs: e.VCPUs}, MemoryMB: e.MemoryMB}
	return req.CPUs(), req.MemMB()
}

// departure is a scheduled Fleet.Remove.
type departure struct {
	tick uint64
	idx  int // record index; orders same-tick departures deterministically
}

// departureHeap is a min-heap on (tick, idx).
type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].idx < h[j].idx
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// noTick marks "no next event" in the tick minimum computations.
const noTick = ^uint64(0)

// Replay feeds the trace through the fleet: at each event tick the fleet
// is advanced to that tick, departures are processed first (freeing
// booked CPU, memory and llc_cap, and evicting the departed VM's cache
// footprint), then — when the options enable them — the rebalance epoch
// runs, the pending queue retries, deadline drops fire, and finally
// arrivals are placed in trace order. Rejections are recorded, not fatal
// — a rejection is the placement policy speaking.
//
// The fleet should be freshly built; Replay assumes its clock starts at
// the trace's epoch. Event order, the fixed same-tick ordering above, and
// the fleet's serial-equivalent RunTicks make the whole replay
// deterministic for a given trace, seed, fleet configuration and option
// set.
func Replay(f *cluster.Fleet, tr Trace, opt Options) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	sorted := tr.Sorted()
	events := sorted.Events
	res := Result{
		Records:       make([]Record, len(events)),
		PendingUsed:   opt.Pending != PendingNone,
		RebalanceUsed: opt.Rebalancer != nil,
	}
	maxWait := opt.MaxWait
	if maxWait == 0 {
		maxWait = DefaultMaxWait
	}
	every := opt.RebalanceEvery
	if every == 0 {
		every = DefaultRebalanceEvery
	}
	var mon *cluster.FleetMonitor
	nextRebalance := noTick
	if opt.Rebalancer != nil {
		mon = cluster.NewFleetMonitor()
		nextRebalance = every
	}

	active := make(map[string]int, len(events)) // live VM name -> record index
	waiting := make(map[string]bool)            // names parked in the pending queue
	var pend []int                              // queued record indices, submit order
	deps := &departureHeap{}
	now := uint64(0)
	var utilTicks float64 // integral of booked-CPU fraction over ticks

	runTo := func(t uint64) {
		if t <= now {
			return
		}
		utilTicks += f.BookedCPUFraction() * float64(t-now)
		// Advance in int-sized chunks so the uint64 tick delta cannot
		// truncate on 32-bit platforms (Validate bounds t, not int).
		for now < t {
			step := t - now
			if step > math.MaxInt32 {
				step = math.MaxInt32
			}
			f.RunTicks(int(step))
			now += step
		}
	}

	// tryPlace attempts to place the event's VM now. It returns false on a
	// policy rejection (recording the reason) and propagates real errors.
	tryPlace := func(idx int) (bool, error) {
		ev := events[idx]
		rec := &res.Records[idx]
		p, err := f.Place(cluster.Request{
			Spec:     vm.Spec{Name: rec.Name, App: ev.App, VCPUs: ev.VCPUs, LLCCap: ev.LLCCap},
			MemoryMB: ev.MemoryMB,
		})
		if err != nil {
			if !errors.Is(err, cluster.ErrUnplaceable) {
				return false, err
			}
			rec.Reason = err.Error()
			return false, nil
		}
		rec.HostID = p.HostID
		rec.PlacedTick = now
		rec.WaitTicks = now - rec.Submit
		rec.Reason = ""
		active[rec.Name] = idx
		res.Placed++
		if ev.Lifetime > 0 {
			// Validate bounds Submit and Lifetime to MaxTick, so the
			// departure tick cannot overflow.
			heap.Push(deps, departure{tick: now + ev.Lifetime, idx: idx})
		}
		return true, nil
	}

	// retryOrder returns the queued record indices in SJF retry order:
	// smallest booked request first (vCPUs, then memory, then llc_cap;
	// submit order breaks ties — record indices follow the sorted trace,
	// so a lower index is an earlier submit). FIFO/deadline retries use
	// pend directly.
	retryOrder := func() []int {
		if len(pend) < 2 {
			return pend
		}
		order := append([]int(nil), pend...)
		sort.SliceStable(order, func(a, b int) bool {
			ea, eb := events[order[a]], events[order[b]]
			ca, ma := booking(ea)
			cb, mb := booking(eb)
			if ca != cb {
				return ca < cb
			}
			if ma != mb {
				return ma < mb
			}
			if ea.LLCCap != eb.LLCCap {
				return ea.LLCCap < eb.LLCCap
			}
			return order[a] < order[b]
		})
		return order
	}

	// retryPending re-attempts the queue in the policy's order, skipping
	// VMs that still do not fit (a scan, not head-of-line blocking:
	// Borg's scheduler also keeps trying the rest of the queue). The
	// queue itself stays in submit order whatever the retry order, so
	// deadline scans and end-of-trace rejections stay deterministic.
	retryPending := func() error {
		if len(pend) == 0 {
			return nil
		}
		if opt.Pending != PendingSJF {
			// Retry order == queue order: compact in place, no allocation
			// (this runs on every capacity-freeing tick).
			kept := pend[:0]
			for _, idx := range pend {
				ok, err := tryPlace(idx)
				if err != nil {
					return err
				}
				if ok {
					delete(waiting, res.Records[idx].Name)
				} else {
					kept = append(kept, idx)
				}
			}
			pend = kept
			return nil
		}
		placed := make(map[int]bool)
		for _, idx := range retryOrder() {
			ok, err := tryPlace(idx)
			if err != nil {
				return err
			}
			if ok {
				placed[idx] = true
				delete(waiting, res.Records[idx].Name)
			}
		}
		if len(placed) > 0 {
			kept := pend[:0]
			for _, idx := range pend {
				if !placed[idx] {
					kept = append(kept, idx)
				}
			}
			pend = kept
		}
		return nil
	}

	// reject finalizes a queued VM as rejected with the given reason.
	reject := func(idx int, reason string) {
		rec := &res.Records[idx]
		rec.Rejected = true
		rec.Reason = reason
		rec.PlacedTick = now
		rec.WaitTicks = now - rec.Submit
		res.Rejected++
		delete(waiting, rec.Name)
	}

	// rebalance runs one epoch: observe, plan, migrate.
	rebalance := func() (bool, error) {
		view := mon.Observe(f)
		plan := opt.Rebalancer.Plan(f.Hosts(), view)
		for _, m := range plan {
			// The Rebalancer contract is to plan only feasible moves of
			// VMs this replay placed; surface violations loudly. The
			// active check matters when the caller handed Replay a
			// pre-populated fleet: migrating a pre-existing VM would
			// otherwise corrupt an unrelated record.
			idx, ok := active[m.VMName]
			if !ok {
				return false, fmt.Errorf("arrivals: rebalance at tick %d: plan moves %q, which this replay did not place", now, m.VMName)
			}
			if _, err := f.Migrate(m.VMName, m.DstHost, opt.MigrationDowntime); err != nil {
				return false, fmt.Errorf("arrivals: rebalance at tick %d: %w", now, err)
			}
			res.Records[idx].HostID = m.DstHost
			res.Records[idx].Migrations++
			res.Migrations = append(res.Migrations, MigrationEvent{
				Tick: now, Index: idx, Name: m.VMName,
				SrcHost: m.SrcHost, DstHost: m.DstHost, Reason: m.Reason,
			})
		}
		return len(plan) > 0, nil
	}

	i := 0
	for {
		workRemains := i < len(events) || deps.Len() > 0
		// Once only queued VMs remain, nothing frees capacity on its own:
		// under PendingDeadline their deadlines still fire (and rebalance
		// epochs may still make room before then); under PendingFIFO the
		// queue can never drain, so stop and reject the leftovers.
		if !workRemains && (opt.Pending != PendingDeadline || len(pend) == 0) {
			break
		}
		next := noTick
		if i < len(events) {
			next = events[i].Submit
		}
		if deps.Len() > 0 && (*deps)[0].tick < next {
			next = (*deps)[0].tick
		}
		if nextRebalance < next {
			next = nextRebalance
		}
		if opt.Pending == PendingDeadline && len(pend) > 0 {
			// The queue is in submit order, so the head's deadline is the
			// earliest.
			if dl := res.Records[pend[0]].Submit + maxWait; dl < next {
				next = dl
			}
		}
		runTo(next)

		freed := false
		for deps.Len() > 0 && (*deps)[0].tick == now {
			d := heap.Pop(deps).(departure)
			rec := &res.Records[d.idx]
			p, err := f.Remove(rec.Name)
			if err != nil {
				return res, fmt.Errorf("arrivals: departing %q at tick %d: %w", rec.Name, now, err)
			}
			rec.Counters = p.VM.Counters()
			rec.Depart = now
			rec.Departed = true
			delete(active, rec.Name)
			freed = true
		}

		if now == nextRebalance {
			migrated, err := rebalance()
			if err != nil {
				return res, err
			}
			freed = freed || migrated
			nextRebalance += every
		}

		if freed {
			if err := retryPending(); err != nil {
				return res, err
			}
		}

		if opt.Pending == PendingDeadline {
			kept := pend[:0]
			for _, idx := range pend {
				if now-res.Records[idx].Submit >= maxWait {
					reject(idx, fmt.Sprintf("pending deadline: waited %d ticks (max %d)", now-res.Records[idx].Submit, maxWait))
				} else {
					kept = append(kept, idx)
				}
			}
			pend = kept
		}

		for i < len(events) && events[i].Submit == now {
			ev := events[i]
			rec := &res.Records[i]
			*rec = Record{Index: i, Name: ev.name(i), App: ev.App, VCPUs: ev.VCPUs, Submit: now, PlacedTick: now, HostID: -1}
			if _, dup := active[rec.Name]; dup {
				return res, fmt.Errorf("arrivals: event %d: VM name %q already active at tick %d", i, rec.Name, now)
			}
			if waiting[rec.Name] {
				return res, fmt.Errorf("arrivals: event %d: VM name %q already pending at tick %d", i, rec.Name, now)
			}
			ok, err := tryPlace(i)
			if err != nil {
				return res, err
			}
			if !ok {
				if opt.Pending == PendingNone {
					rec.Rejected = true
					res.Rejected++
				} else {
					rec.Queued = true
					waiting[rec.Name] = true
					pend = append(pend, i)
				}
			}
			i++
		}
	}

	// VMs still queued when the events ran out can never be placed (under
	// PendingDeadline the loop above already drained the queue through
	// its deadlines).
	for _, idx := range pend {
		reject(idx, "pending at end of trace: no capacity ever freed")
	}
	pend = nil

	if opt.DrainTicks > 0 {
		runTo(now + uint64(opt.DrainTicks))
	}
	// Snapshot VMs that never depart (Lifetime 0) as of the end tick, in
	// record order for determinism.
	for idx := range res.Records {
		rec := &res.Records[idx]
		if aidx, ok := active[rec.Name]; ok && aidx == idx {
			if v, _ := f.FindVM(rec.Name); v != nil {
				rec.Counters = v.Counters()
			}
			rec.Depart = now
		}
	}
	res.EndTick = now
	if now > 0 {
		res.CPUUtilization = utilTicks / float64(now)
	}
	return res, nil
}
