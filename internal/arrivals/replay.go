package arrivals

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"kyoto/internal/cluster"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// Options tunes a replay.
type Options struct {
	// DrainTicks runs the fleet this many extra ticks after the last
	// event before final counters are read, letting VMs that never depart
	// accumulate a measurable window (default 0).
	DrainTicks int
}

// Record is one event's outcome: where the VM landed (or why it was
// rejected) and the PMC counters it accumulated over its residency.
type Record struct {
	// Index is the event's position in the sorted trace.
	Index int
	// Name and App echo the resolved event.
	Name string
	App  string
	// Submit and Depart bound the VM's residency in ticks. For VMs still
	// running when the replay ends (Lifetime 0), Depart is the end tick.
	Submit uint64
	Depart uint64
	// HostID is where the VM ran, -1 when rejected.
	HostID int
	// Rejected is set when no host could take the VM; Reason carries the
	// policy's explanation.
	Rejected bool
	Reason   string
	// Departed distinguishes a real departure from an end-of-replay
	// snapshot of a still-running VM.
	Departed bool
	// Counters is the VM's aggregate PMC delta over its residency.
	Counters pmc.Counters
}

// Result is a whole replay's outcome.
type Result struct {
	// Records parallels the sorted trace's events.
	Records []Record
	// Placed and Rejected count outcomes.
	Placed   int
	Rejected int
	// EndTick is the fleet clock when the replay finished.
	EndTick uint64
	// CPUUtilization is the time-weighted mean booked share of vCPU slots
	// over the whole replay, in [0, 1].
	CPUUtilization float64
}

// RejectionRate returns rejected / submitted, in [0, 1].
func (r Result) RejectionRate() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return float64(r.Rejected) / float64(len(r.Records))
}

// Fingerprint folds every record's counters and placement metadata into
// one stable hash. Two replays of the same trace on identically
// configured fleets — serial or parallel, today or in a year — must
// produce the same fingerprint; the churn golden test pins one.
func (r Result) Fingerprint() string {
	h := pmc.FoldSeed
	for _, rec := range r.Records {
		h = rec.Counters.Fold(h)
		h = pmc.FoldUint64(h, uint64(rec.HostID+2))
		h = pmc.FoldUint64(h, rec.Submit)
		h = pmc.FoldUint64(h, rec.Depart)
		var flags uint64
		if rec.Rejected {
			flags |= 1
		}
		if rec.Departed {
			flags |= 2
		}
		h = pmc.FoldUint64(h, flags)
	}
	return fmt.Sprintf("%016x", h)
}

// departure is a scheduled Fleet.Remove.
type departure struct {
	tick uint64
	idx  int // record index; orders same-tick departures deterministically
}

// departureHeap is a min-heap on (tick, idx).
type departureHeap []departure

func (h departureHeap) Len() int { return len(h) }
func (h departureHeap) Less(i, j int) bool {
	if h[i].tick != h[j].tick {
		return h[i].tick < h[j].tick
	}
	return h[i].idx < h[j].idx
}
func (h departureHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)   { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any {
	old := *h
	n := len(old)
	d := old[n-1]
	*h = old[:n-1]
	return d
}

// Replay feeds the trace through the fleet: at each event tick the fleet
// is advanced to that tick, departures are processed first (freeing
// booked CPU, memory and llc_cap, and evicting the departed VM's cache
// footprint), then arrivals are placed in trace order. Rejections are
// recorded, not fatal — a rejection is the placement policy speaking.
//
// The fleet should be freshly built; Replay assumes its clock starts at
// the trace's epoch. Event order, same-tick ordering (departures before
// arrivals, both by trace position) and the fleet's serial-equivalent
// RunTicks make the whole replay deterministic for a given trace, seed
// and fleet configuration.
func Replay(f *cluster.Fleet, tr Trace, opt Options) (Result, error) {
	if err := tr.Validate(); err != nil {
		return Result{}, err
	}
	sorted := tr.Sorted()
	events := sorted.Events
	res := Result{Records: make([]Record, len(events))}

	active := make(map[string]int, len(events)) // live VM name -> record index
	deps := &departureHeap{}
	now := uint64(0)
	var utilTicks float64 // integral of booked-CPU fraction over ticks

	runTo := func(t uint64) {
		if t <= now {
			return
		}
		utilTicks += f.BookedCPUFraction() * float64(t-now)
		// Advance in int-sized chunks so the uint64 tick delta cannot
		// truncate on 32-bit platforms (Validate bounds t, not int).
		for now < t {
			step := t - now
			if step > math.MaxInt32 {
				step = math.MaxInt32
			}
			f.RunTicks(int(step))
			now += step
		}
	}

	i := 0
	for i < len(events) || deps.Len() > 0 {
		next := ^uint64(0)
		if i < len(events) {
			next = events[i].Submit
		}
		if deps.Len() > 0 && (*deps)[0].tick < next {
			next = (*deps)[0].tick
		}
		runTo(next)

		for deps.Len() > 0 && (*deps)[0].tick == now {
			d := heap.Pop(deps).(departure)
			rec := &res.Records[d.idx]
			p, err := f.Remove(rec.Name)
			if err != nil {
				return res, fmt.Errorf("arrivals: departing %q at tick %d: %w", rec.Name, now, err)
			}
			rec.Counters = p.VM.Counters()
			rec.Depart = now
			rec.Departed = true
			delete(active, rec.Name)
		}

		for i < len(events) && events[i].Submit == now {
			ev := events[i]
			rec := &res.Records[i]
			*rec = Record{Index: i, Name: ev.name(i), App: ev.App, Submit: now, HostID: -1}
			if _, dup := active[rec.Name]; dup {
				return res, fmt.Errorf("arrivals: event %d: VM name %q already active at tick %d", i, rec.Name, now)
			}
			p, err := f.Place(cluster.Request{
				Spec:     vm.Spec{Name: rec.Name, App: ev.App, VCPUs: ev.VCPUs, LLCCap: ev.LLCCap},
				MemoryMB: ev.MemoryMB,
			})
			if err != nil {
				if !errors.Is(err, cluster.ErrUnplaceable) {
					return res, err
				}
				rec.Rejected = true
				rec.Reason = err.Error()
				res.Rejected++
				i++
				continue
			}
			rec.HostID = p.HostID
			active[rec.Name] = i
			res.Placed++
			if ev.Lifetime > 0 {
				// Validate bounds Submit and Lifetime to MaxTick, so the
				// departure tick cannot overflow.
				heap.Push(deps, departure{tick: now + ev.Lifetime, idx: i})
			}
			i++
		}
	}

	if opt.DrainTicks > 0 {
		runTo(now + uint64(opt.DrainTicks))
	}
	// Snapshot VMs that never depart (Lifetime 0) as of the end tick, in
	// record order for determinism.
	for idx := range res.Records {
		rec := &res.Records[idx]
		if aidx, ok := active[rec.Name]; ok && aidx == idx {
			if v, _ := f.FindVM(rec.Name); v != nil {
				rec.Counters = v.Counters()
			}
			rec.Depart = now
		}
	}
	res.EndTick = now
	if now > 0 {
		res.CPUUtilization = utilTicks / float64(now)
	}
	return res, nil
}
