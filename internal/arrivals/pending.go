// The Borg-style pending queue: what real cluster managers do with
// requests that cannot be placed right now. Instead of dropping a rejected
// arrival, Replay can park it and retry whenever capacity frees up — a
// departure, or a live migration that redistributes load — trading
// rejection rate against wait time. The queue policies here decide the
// retry order and when waiting stops being worth it.

package arrivals

import "fmt"

// PendingPolicy selects what Replay does with arrivals no host can take.
type PendingPolicy int

// Pending-queue policies.
const (
	// PendingNone rejects unplaceable arrivals outright — the pre-queue
	// behaviour, and the baseline the queue is measured against.
	PendingNone PendingPolicy = iota
	// PendingFIFO parks unplaceable arrivals in submit order and retries
	// the whole queue (in order, skipping entries that still do not fit)
	// whenever a departure or migration frees capacity. VMs still queued
	// when the replay runs out of events are rejected.
	PendingFIFO
	// PendingDeadline is PendingFIFO plus a patience bound: a VM that has
	// waited MaxWait ticks is dropped (rejected) instead of waiting
	// forever — the SLA-bounded variant.
	PendingDeadline
	// PendingSJF retries the queue shortest-job-first by booked
	// resources (vCPUs, then memory, then llc_cap; submit order breaks
	// ties): when a departure frees a sliver of capacity, the smallest
	// parked request gets it. The classic wait-time optimization — mean
	// wait drops because small VMs stop queueing behind big ones — at
	// the classic price: large requests can be starved while small ones
	// keep jumping the line.
	PendingSJF
)

// String returns the policy's CLI name.
func (p PendingPolicy) String() string {
	switch p {
	case PendingNone:
		return "none"
	case PendingFIFO:
		return "fifo"
	case PendingDeadline:
		return "deadline"
	case PendingSJF:
		return "sjf"
	default:
		return fmt.Sprintf("PendingPolicy(%d)", int(p))
	}
}

// DefaultMaxWait is the deadline policy's patience bound in ticks when
// Options.MaxWait is zero: two Figure-5 measurement windows.
const DefaultMaxWait = 60

// PendingPolicyByName returns the policy with the given CLI name.
func PendingPolicyByName(name string) (PendingPolicy, error) {
	switch name {
	case "", "none":
		return PendingNone, nil
	case "fifo":
		return PendingFIFO, nil
	case "deadline":
		return PendingDeadline, nil
	case "sjf":
		return PendingSJF, nil
	default:
		return 0, fmt.Errorf("arrivals: unknown pending policy %q (want none, fifo, deadline or sjf)", name)
	}
}

// PendingPolicyNames lists the pending-queue policy names for CLI help.
func PendingPolicyNames() []string { return []string{"none", "fifo", "deadline", "sjf"} }
