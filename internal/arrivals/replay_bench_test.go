package arrivals

// Replay throughput benchmarks: the event-horizon engine's headline
// numbers. BenchmarkReplayChurn replays seeded synthetic churn traces —
// exact and analytic tiers, lazy (the default) and lockstep (the
// pre-event-horizon baseline), with and without a rebalancer forcing
// epoch barriers — and reports events/sec alongside ns/op, so
// scripts/bench_json.sh can fold the replay trajectory into
// BENCH_kyoto.json. Two fleet regimes are pinned deliberately: "fleet"
// is sparse (a 12-host fleet whose hosts idle most of the time, where
// the lazy engine's O(1) idle elision wins outright) and "saturated" is
// dense (every host busy every tick, where lazy and lockstep must be
// within noise of each other because there is nothing to elide). The
// steady-state advancement path (SkipTicks + seek/Barrier over analytic
// worlds) is asserted allocation-free in
// TestReplayAdvanceAnalyticZeroAlloc — the fleet analogue of the
// per-world 0 allocs/op tick gate.

import (
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/cluster"
	"kyoto/internal/vm"
)

// placeReq is a 1-vCPU Kyoto-permitted placement request.
func placeReq(name, app string, llcCap float64) cluster.Request {
	return cluster.Request{Spec: vm.Spec{Name: name, App: app, LLCCap: llcCap}}
}

// benchFleet builds a Kyoto-enforced fleet for replay benchmarks;
// workers <= 1 keeps every advancement on the calling goroutine.
func benchFleet(b *testing.B, hosts, workers int, fid cache.Fidelity) *cluster.Fleet {
	b.Helper()
	f, err := cluster.New(cluster.Config{
		Hosts:    hosts,
		Template: cluster.HostTemplate{Seed: 42, EnableKyoto: true, Fidelity: fid},
		Placer:   cluster.Admission{},
		Workers:  workers,
	})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// benchChurnTrace sizes the workload's concurrency: mean concurrent VMs
// = vms * meanLife / horizon. The sparse fleet regime keeps that far
// below fleet capacity (hosts idle, elision dominates); the saturated
// regime pushes it past capacity (every tick busy, nothing to elide).
func benchChurnTrace(vms int, horizon uint64) Trace {
	return Synthesize(SynthConfig{
		Seed:         7,
		VMs:          vms,
		Horizon:      horizon,
		MeanLifetime: 40,
	})
}

func BenchmarkReplayChurn(b *testing.B) {
	cases := []struct {
		name     string
		fidelity cache.Fidelity
		hosts    int
		vms      int
		horizon  uint64
		lockstep bool
		migrate  bool
	}{
		// Sparse 12-host fleet, ~4 concurrent VMs: the event-horizon
		// regime. Lazy elides every idle host-tick; lockstep simulates
		// hosts x horizon of them.
		{"fleet", cache.FidelityAnalytic, 12, 2000, 20000, false, false},
		{"fleet-lockstep", cache.FidelityAnalytic, 12, 2000, 20000, true, false},
		// Same sparse fleet with a reactive rebalancer: every epoch is a
		// global barrier, bounding how much laziness can elide.
		{"fleet-migrate", cache.FidelityAnalytic, 12, 2000, 20000, false, true},
		// Saturated 4-host fleet, ~40 concurrent VMs against 16 slots:
		// every host busy every tick, lazy ~= lockstep by construction.
		{"saturated", cache.FidelityAnalytic, 4, 2000, 2000, false, false},
		{"saturated-lockstep", cache.FidelityAnalytic, 4, 2000, 2000, true, false},
		// Exact tier, scaled down: per-tick cost is 100-1000x analytic.
		{"exact-fleet", cache.FidelityExact, 8, 200, 2000, false, false},
		{"exact-fleet-lockstep", cache.FidelityExact, 8, 200, 2000, true, false},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			tr := benchChurnTrace(c.vms, c.horizon)
			events := float64(len(tr.Events))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := benchFleet(b, c.hosts, 0, c.fidelity)
				opt := Options{Lockstep: c.lockstep}
				if c.migrate {
					opt.Rebalancer = &cluster.Reactive{}
				}
				res, err := Replay(f, tr, opt)
				if err != nil {
					b.Fatal(err)
				}
				if res.Placed == 0 {
					b.Fatal("benchmark replay placed nothing")
				}
			}
			b.StopTimer()
			b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// TestReplayAdvanceAnalyticZeroAlloc pins the steady-state advancement
// path at zero allocations: once a fleet is placed and warm, skipping
// the clock forward and closing the lag (seeks and barriers over
// analytic worlds) must not allocate — the property that keeps
// million-arrival replays GC-quiet between events.
func TestReplayAdvanceAnalyticZeroAlloc(t *testing.T) {
	f, err := cluster.New(cluster.Config{
		Hosts:    2,
		Template: cluster.HostTemplate{Seed: 42, EnableKyoto: true, Fidelity: cache.FidelityAnalytic},
		Placer:   cluster.Admission{},
		Workers:  1, // the serial path is the steady state the gate pins
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if _, err := f.Place(placeReq(name, "gcc", 250)); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up past the analytic tier's first-epoch transients (and any
	// lazily grown scratch) before measuring.
	f.RunTicks(512)
	allocs := testing.AllocsPerRun(20, func() {
		f.SkipTicks(300)
		f.Barrier()
	})
	if allocs != 0 {
		t.Fatalf("steady-state lazy advancement allocates %v allocs/op, want 0", allocs)
	}
}
