// Package arrivals drives a simulated fleet through datacenter lifecycle
// dynamics: VMs arrive, live for a while, and leave. It is the layer that
// turns the cluster simulator from fixed-population snapshots into the
// long-running, churn-and-heterogeneity regime where public-cloud
// measurement studies locate tail unpredictability — and therefore where
// the paper's claim (Kyoto llc_cap permits make *any* placement safe,
// versus NP-hard contention-aware packing) is actually testable.
//
// The package has three parts:
//
//   - a Trace of Events (submit tick, lifetime, vCPUs, memory, cache
//     aggressiveness class, llc_cap permit), loadable from Azure/Borg-
//     shaped JSON or CSV files and writable back (tracefile.go);
//   - a seeded synthetic generator (Synthesize): Poisson-style arrivals
//     with heavy-tailed Pareto lifetimes over a weighted application mix,
//     built on internal/xrand so traces are reproducible bit for bit;
//   - a replay engine (Replay) that feeds the events through
//     cluster.Fleet.Place and Fleet.Remove in deterministic order and
//     reports per-VM lifetime counters, rejections and fleet utilization.
//     Options extend the replay with a Borg-style pending queue for
//     rejected arrivals (pending.go: FIFO retry, deadline drops,
//     wait-time accounting) and epoch-driven live migration through
//     cluster.Fleet.Migrate (reactive or topology-aware rebalancers).
//
// Determinism: replay interleaves fleet ticks and placement decisions on
// the calling goroutine, and Fleet.RunTicks is bit-identical serial or
// parallel, so a seeded churn scenario has a stable Result.Fingerprint —
// the churn golden test in internal/cluster/testdata pins one.
package arrivals

import (
	"fmt"
	"sort"

	"kyoto/internal/workload"
)

// Event is one trace record: a VM that is submitted at tick Submit and,
// if placed, departs Lifetime ticks later.
type Event struct {
	// Submit is the arrival tick.
	Submit uint64 `json:"submit"`
	// Lifetime is the number of ticks the VM stays once placed; 0 means
	// the VM never departs (it survives to the end of the replay).
	Lifetime uint64 `json:"lifetime,omitempty"`
	// Name identifies the VM; empty derives "vm<index>" from the event's
	// position in the trace.
	Name string `json:"name,omitempty"`
	// App is the cache-aggressiveness class: a workload profile name
	// ("gcc", "lbm", "blockie", ...; see workload.Names).
	App string `json:"app"`
	// VCPUs is the vCPU count booked and instantiated (default 1).
	VCPUs int `json:"vcpus,omitempty"`
	// MemoryMB is the memory booking (default cluster.DefaultVMMemoryMB).
	MemoryMB int `json:"memory_mb,omitempty"`
	// LLCCap is the pollution permit in Equation-1 units. Kyoto admission
	// rejects VMs that book none; the other placers ignore it.
	LLCCap float64 `json:"llc_cap,omitempty"`
}

// Trace is an ordered set of lifecycle events.
type Trace struct {
	Events []Event `json:"events"`
}

// MaxTick bounds Submit and Lifetime values (about 350 simulated years
// of 10 ms ticks). The ceiling keeps tick sums (submit + lifetime) far
// below uint64 overflow, so absurd trace values fail validation instead
// of corrupting the replay clock; the replay itself advances the fleet
// in int-sized chunks, so the bound is safe on 32-bit platforms too.
const MaxTick = 1 << 40

// Validate reports the first malformed event.
func (t Trace) Validate() error {
	for i, e := range t.Events {
		if e.App == "" {
			return fmt.Errorf("arrivals: event %d: missing app class", i)
		}
		// Resolve the class now: a typo'd app should fail at load time,
		// not abort a replay thousands of ticks in.
		if _, err := workload.Lookup(e.App); err != nil {
			return fmt.Errorf("arrivals: event %d: %w", i, err)
		}
		if e.Submit > MaxTick || e.Lifetime > MaxTick {
			return fmt.Errorf("arrivals: event %d (%s): submit/lifetime beyond MaxTick (%d)", i, e.App, uint64(MaxTick))
		}
		if e.VCPUs < 0 {
			return fmt.Errorf("arrivals: event %d (%s): negative vcpus", i, e.App)
		}
		if e.MemoryMB < 0 {
			return fmt.Errorf("arrivals: event %d (%s): negative memory", i, e.App)
		}
		if e.LLCCap < 0 {
			return fmt.Errorf("arrivals: event %d (%s): negative llc_cap", i, e.App)
		}
	}
	return nil
}

// Sorted returns a copy of the trace ordered by submit tick; events with
// equal submit ticks keep their input order (stable), which is the order
// Replay places them in.
func (t Trace) Sorted() Trace {
	evs := make([]Event, len(t.Events))
	copy(evs, t.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Submit < evs[j].Submit })
	return Trace{Events: evs}
}

// name returns the VM name Replay uses for the event at index i.
func (e Event) name(i int) string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("vm%03d", i)
}
