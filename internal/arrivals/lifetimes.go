package arrivals

// Trace-derived lifetime statistics: the empirical mean-residual-life
// estimator the Signature rebalancer's migration-cost check consumes.
// Cloud VM lifetimes are heavy-tailed (the synthesizer draws Pareto, as
// the Azure traces motivate), which inverts the naive intuition: a VM
// that has already run a long time is *more* likely to keep running,
// and is therefore a better migration investment than a young VM that
// will probably depart before its rewarmed cache pays for the move.

import (
	"math"
	"sort"

	"kyoto/internal/cluster"
)

// LifetimeStats is an empirical mean-residual-life estimator built from
// a trace's lifetime distribution. It implements
// cluster.LifetimeEstimator.
type LifetimeStats struct {
	// sorted holds the finite lifetimes ascending; suffix[i] is the sum
	// of sorted[i:], so a conditional mean is two lookups.
	sorted []uint64
	suffix []float64
}

var _ cluster.LifetimeEstimator = (*LifetimeStats)(nil)

// NewLifetimeStats builds the estimator from the trace's finite
// lifetimes (Lifetime 0 means the VM never departs; such events carry
// no departure evidence and are excluded from the sample).
func NewLifetimeStats(tr Trace) *LifetimeStats {
	s := &LifetimeStats{}
	for _, ev := range tr.Events {
		if ev.Lifetime > 0 {
			s.sorted = append(s.sorted, ev.Lifetime)
		}
	}
	sort.Slice(s.sorted, func(i, j int) bool { return s.sorted[i] < s.sorted[j] })
	s.suffix = make([]float64, len(s.sorted)+1)
	for i := len(s.sorted) - 1; i >= 0; i-- {
		s.suffix[i] = s.suffix[i+1] + float64(s.sorted[i])
	}
	return s
}

// Samples returns the number of finite lifetimes the estimator holds.
func (s *LifetimeStats) Samples() int { return len(s.sorted) }

// ExpectedRemainingTicks implements cluster.LifetimeEstimator: the
// empirical mean residual life at the given age, mean(L - age | L >
// age) over the trace's lifetimes. With no finite lifetimes at all it
// returns +Inf (no departure was ever observed); when no sampled
// lifetime exceeds the age it returns 0 (nothing in the trace lived
// that long, so there is no evidence the VM will either).
func (s *LifetimeStats) ExpectedRemainingTicks(age uint64) float64 {
	if len(s.sorted) == 0 {
		return math.Inf(1)
	}
	i := sort.Search(len(s.sorted), func(i int) bool { return s.sorted[i] > age })
	n := len(s.sorted) - i
	if n == 0 {
		return 0
	}
	return (s.suffix[i] - float64(n)*float64(age)) / float64(n)
}
