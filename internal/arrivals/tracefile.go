package arrivals

// Trace file I/O. Two on-disk shapes, both Azure/Borg-flavoured (one
// record per VM: submit time, lifetime, size, class):
//
//	JSON  {"events": [{"submit": 0, "lifetime": 40, "name": "web0",
//	                   "app": "gcc", "vcpus": 1, "memory_mb": 64,
//	                   "llc_cap": 250}, ...]}
//	CSV   submit,lifetime,name,app,vcpus,memory_mb,llc_cap
//	      0,40,web0,gcc,1,64,250
//
// The format is documented field by field in this package's README.md; a
// committed example lives in testdata/.

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// csvHeader is the canonical CSV column order.
var csvHeader = []string{"submit", "lifetime", "name", "app", "vcpus", "memory_mb", "llc_cap"}

// Load reads a trace from path, selecting the format by extension
// (".json" or ".csv"), and validates it.
func Load(path string) (Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return Trace{}, err
	}
	defer f.Close()
	switch ext := strings.ToLower(filepath.Ext(path)); ext {
	case ".json":
		return ParseJSON(f)
	case ".csv":
		return ParseCSV(f)
	default:
		return Trace{}, fmt.Errorf("arrivals: %s: unknown trace format %q (want .json or .csv)", path, ext)
	}
}

// ParseJSON decodes and validates a JSON trace. Unknown fields are
// rejected so schema typos fail loudly.
func ParseJSON(r io.Reader) (Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Trace{}, fmt.Errorf("arrivals: parsing JSON trace: %w", err)
	}
	return t, t.Validate()
}

// ParseCSV decodes and validates a CSV trace. The header row is required
// and must match the canonical column order; empty cells take the field's
// default.
func ParseCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	rows, err := cr.ReadAll()
	if err != nil {
		return Trace{}, fmt.Errorf("arrivals: parsing CSV trace: %w", err)
	}
	if len(rows) == 0 {
		return Trace{}, fmt.Errorf("arrivals: CSV trace is empty (want header %s)", strings.Join(csvHeader, ","))
	}
	if got := strings.Join(rows[0], ","); got != strings.Join(csvHeader, ",") {
		return Trace{}, fmt.Errorf("arrivals: CSV header %q, want %q", got, strings.Join(csvHeader, ","))
	}
	var t Trace
	for n, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return Trace{}, fmt.Errorf("arrivals: CSV row %d has %d columns, want %d", n+2, len(row), len(csvHeader))
		}
		var e Event
		var err error
		if e.Submit, err = parseUint(row[0]); err == nil {
			if e.Lifetime, err = parseUint(row[1]); err == nil {
				e.Name, e.App = row[2], row[3]
				if e.VCPUs, err = parseInt(row[4]); err == nil {
					if e.MemoryMB, err = parseInt(row[5]); err == nil {
						e.LLCCap, err = parseFloat(row[6])
					}
				}
			}
		}
		if err != nil {
			return Trace{}, fmt.Errorf("arrivals: CSV row %d: %w", n+2, err)
		}
		t.Events = append(t.Events, e)
	}
	return t, t.Validate()
}

// WriteJSON renders the trace as indented JSON (the -trace-out format).
func (t Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV renders the trace in the canonical CSV column order.
func (t Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, e := range t.Events {
		row := []string{
			strconv.FormatUint(e.Submit, 10),
			strconv.FormatUint(e.Lifetime, 10),
			e.Name,
			e.App,
			strconv.Itoa(e.VCPUs),
			strconv.Itoa(e.MemoryMB),
			strconv.FormatFloat(e.LLCCap, 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func parseUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

func parseInt(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.Atoi(s)
}

func parseFloat(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}
