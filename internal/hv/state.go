package hv

// World checkpoint support: capture the complete mutable simulation state
// at a tick boundary and restore it into a freshly built World with the
// identical Config, such that the restored world's future is bit-identical
// to the original's — the contract the snapshot differential goldens pin.
//
// What is deliberately NOT captured, and why that is safe at a tick
// boundary:
//
//   - per-tick scratch (core budgets, cap budgets): rebuilt at the top of
//     every tick;
//   - the schedulers' assignment trackers: consulted only to prevent
//     double-assignment within one tick, and entries from earlier ticks
//     are dead by construction (taken tests t == now+1);
//   - Kyoto's pending measurement buffer: drained by EndTick, so it is
//     empty whenever now is between ticks;
//   - the analytic executors' per-epoch mix caches: re-derived on the
//     next Run from the restored occupancy model;
//   - tick hooks: behaviourally relevant monitor state (the Oracle's
//     sampler snapshots) is captured by the owner of the hook through
//     monitor.Oracle.CaptureState, because hv does not know what hooks
//     are attached.
//
// Scheduler-internal runqueues are rebuilt by re-registering the vCPUs in
// their original creation order (ascending Seq — the world's vcpus order),
// then overlaying the per-vCPU scheduler fields the Register defaults
// clobbered; decorators with accounts of their own (core.Kyoto) implement
// StatefulScheduler and get their blob back after registration.

import (
	"encoding/json"
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/cpu"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// StatefulScheduler is optionally implemented by schedulers whose
// accounting cannot be rebuilt from vCPU fields alone (core.Kyoto's
// pollution ledgers). The blob is opaque to hv; capture runs after the
// world state is read, restore runs after every vCPU is re-registered.
type StatefulScheduler interface {
	CaptureSchedState() (json.RawMessage, error)
	RestoreSchedState(data json.RawMessage) error
}

// VCPUState is one vCPU's serialized state.
type VCPUState struct {
	ID       int `json:"id"`
	Seq      int `json:"seq"`
	Index    int `json:"index"`
	Pin      int `json:"pin"`
	LastCore int `json:"last_core"`

	Counters pmc.Counters      `json:"counters"`
	Gen      workload.GenState `json:"gen"`
	Ctx      cpu.ContextState  `json:"ctx"`
	// ACtx is present exactly when the world runs the analytic tier.
	ACtx *cpu.AnalyticContextState `json:"actx,omitempty"`

	RemainCredit int64  `json:"remain_credit"`
	OverPriority bool   `json:"over_priority"`
	WindowBurn   uint64 `json:"window_burn"`
	CapBlocked   bool   `json:"cap_blocked"`
	LastRunTick  uint64 `json:"last_run_tick"`
	VRuntime     uint64 `json:"vruntime"`
}

// VMState is one VM's serialized state.
type VMState struct {
	ID               int          `json:"id"`
	Spec             vm.Spec      `json:"spec"`
	PollutionBlocked bool         `json:"pollution_blocked"`
	Down             bool         `json:"down"`
	Punishments      uint64       `json:"punishments"`
	Carried          pmc.Counters `json:"carried"`
	VCPUs            []VCPUState  `json:"vcpus"`
}

// WakeState is one pending migration-blackout wake-up.
type WakeState struct {
	VMID int    `json:"vm_id"`
	At   uint64 `json:"at"`
}

// WorldState is the complete serialized state of a World at a tick
// boundary, sufficient — together with the Config the world was built
// from, which the caller re-supplies — to continue bit-identically.
type WorldState struct {
	Now        uint64 `json:"now"`
	VMSeq      int    `json:"vm_seq"`
	VCPUSeq    int    `json:"vcpu_seq"`
	VCPUTotal  int    `json:"vcpu_total"`
	FreeOwners []int  `json:"free_owners,omitempty"` // LIFO order preserved

	VMs []VMState `json:"vms"`
	// Current is the per-core assignment as vCPU Seq, -1 for idle cores.
	Current    []int       `json:"current"`
	IdleCycles []uint64    `json:"idle_cycles"`
	Wakes      []WakeState `json:"wakes,omitempty"`

	// Sched is the StatefulScheduler blob, when the policy has one.
	Sched json.RawMessage `json:"sched,omitempty"`

	// Exact-tier cache state: private levels per core (global core
	// order), shared LLC per socket. Empty on the analytic tier, whose
	// SoA structures are never touched.
	L1  []cache.State `json:"l1,omitempty"`
	L2  []cache.State `json:"l2,omitempty"`
	LLC []cache.State `json:"llc,omitempty"`
	// Analytic-tier occupancy models per socket; empty on the exact tier.
	AnalyticLLC []cache.AnalyticState `json:"analytic_llc,omitempty"`
}

// CaptureState serializes the world's complete mutable state. Call it
// only between ticks (never from a TickHook).
func (w *World) CaptureState() (*WorldState, error) {
	st := &WorldState{
		Now:        w.now,
		VMSeq:      w.vmSeq,
		VCPUSeq:    w.vcpuSeq,
		VCPUTotal:  w.vcpuTotal,
		FreeOwners: append([]int(nil), w.freeOwners...),
		Current:    make([]int, len(w.current)),
		IdleCycles: append([]uint64(nil), w.IdleCycles...),
	}
	for _, m := range w.vms {
		vs := VMState{
			ID:               m.ID,
			Spec:             m.Spec,
			PollutionBlocked: m.PollutionBlocked,
			Down:             m.Down,
			Punishments:      m.Punishments,
			Carried:          m.Carried,
		}
		for _, v := range m.VCPUs {
			gst, err := workload.CaptureGenState(v.Gen)
			if err != nil {
				return nil, fmt.Errorf("hv: VM %q vCPU %d: %w", m.Name, v.Index, err)
			}
			cs := VCPUState{
				ID: v.ID, Seq: v.Seq, Index: v.Index, Pin: v.Pin, LastCore: v.LastCore,
				Counters: v.Counters, Gen: gst, Ctx: v.Ctx.CaptureState(),
				RemainCredit: v.RemainCredit, OverPriority: v.OverPriority,
				WindowBurn: v.WindowBurn, CapBlocked: v.CapBlocked,
				LastRunTick: v.LastRunTick, VRuntime: v.VRuntime,
			}
			if v.ACtx != nil {
				ast := v.ACtx.CaptureState()
				cs.ACtx = &ast
			}
			vs.VCPUs = append(vs.VCPUs, cs)
		}
		st.VMs = append(st.VMs, vs)
	}
	for i, v := range w.current {
		st.Current[i] = -1
		if v != nil {
			st.Current[i] = v.Seq
		}
	}
	for _, wk := range w.wakes {
		st.Wakes = append(st.Wakes, WakeState{VMID: wk.domain.ID, At: wk.at})
	}
	if ss, ok := w.sch.(StatefulScheduler); ok {
		blob, err := ss.CaptureSchedState()
		if err != nil {
			return nil, fmt.Errorf("hv: scheduler %s: %w", w.sch.Name(), err)
		}
		st.Sched = blob
	}
	if w.analytic != nil {
		for _, llc := range w.analytic {
			st.AnalyticLLC = append(st.AnalyticLLC, llc.CaptureState())
		}
	} else {
		for _, core := range w.m.Cores() {
			st.L1 = append(st.L1, core.Path.L1D.CaptureState())
			st.L2 = append(st.L2, core.Path.L2.CaptureState())
		}
		for _, sock := range w.m.Sockets() {
			st.LLC = append(st.LLC, sock.LLC.CaptureState())
		}
	}
	return st, nil
}

// RestoreState overlays a captured state onto a freshly built, still-empty
// world whose Config is identical to the captured world's. The caller is
// responsible for that identity (the snapshot envelope enforces it with a
// config digest); this method validates what it can — geometry, fidelity,
// population shape — and fails cleanly on mismatches.
func (w *World) RestoreState(st *WorldState) error {
	if w.now != 0 || len(w.vms) != 0 || w.vcpuTotal != 0 {
		return fmt.Errorf("hv: restore target must be a freshly built world (now=%d, %d VMs)", w.now, len(w.vms))
	}
	cores := w.m.NumCores()
	if len(st.Current) != cores || len(st.IdleCycles) != cores {
		return fmt.Errorf("hv: state is for %d cores, machine has %d", len(st.Current), cores)
	}
	if w.analytic != nil {
		if len(st.AnalyticLLC) != len(w.analytic) {
			return fmt.Errorf("hv: state carries %d analytic LLC models, world needs %d (fidelity or topology mismatch)",
				len(st.AnalyticLLC), len(w.analytic))
		}
	} else if len(st.LLC) != w.m.NumSockets() || len(st.L1) != cores || len(st.L2) != cores {
		return fmt.Errorf("hv: state carries %d/%d/%d L1/L2/LLC caches, machine has %d/%d/%d (fidelity or topology mismatch)",
			len(st.L1), len(st.L2), len(st.LLC), cores, cores, w.m.NumSockets())
	}

	for i := range st.VMs {
		if err := w.restoreVM(&st.VMs[i]); err != nil {
			return err
		}
	}
	w.vmSeq = st.VMSeq
	w.vcpuSeq = st.VCPUSeq
	w.vcpuTotal = st.VCPUTotal
	w.freeOwners = append(w.freeOwners[:0], st.FreeOwners...)

	if len(st.Sched) > 0 {
		ss, ok := w.sch.(StatefulScheduler)
		if !ok {
			return fmt.Errorf("hv: state carries scheduler accounts but policy %s cannot restore them (scheduler mismatch)", w.sch.Name())
		}
		if err := ss.RestoreSchedState(st.Sched); err != nil {
			return err
		}
	} else if _, ok := w.sch.(StatefulScheduler); ok {
		return fmt.Errorf("hv: policy %s needs scheduler accounts but the state has none (scheduler mismatch)", w.sch.Name())
	}

	if w.analytic != nil {
		for i, llc := range w.analytic {
			if err := llc.RestoreState(st.AnalyticLLC[i]); err != nil {
				return err
			}
		}
	} else {
		for i, core := range w.m.Cores() {
			if err := core.Path.L1D.RestoreState(st.L1[i]); err != nil {
				return err
			}
			if err := core.Path.L2.RestoreState(st.L2[i]); err != nil {
				return err
			}
		}
		for i, sock := range w.m.Sockets() {
			if err := sock.LLC.RestoreState(st.LLC[i]); err != nil {
				return err
			}
		}
	}

	for _, wk := range st.Wakes {
		domain := w.findVMByID(wk.VMID)
		if domain == nil {
			return fmt.Errorf("hv: wake entry references unknown VM id %d", wk.VMID)
		}
		w.wakes = append(w.wakes, wake{domain: domain, at: wk.At})
	}
	for coreID, seq := range st.Current {
		if seq < 0 {
			continue
		}
		v := w.findVCPUBySeq(seq)
		if v == nil {
			return fmt.Errorf("hv: core %d assignment references unknown vCPU seq %d", coreID, seq)
		}
		w.current[coreID] = v
		w.bind(v, w.m.Core(coreID))
	}
	copy(w.IdleCycles, st.IdleCycles)
	w.now = st.Now
	return nil
}

// restoreVM rebuilds one VM from its state: the AddVM construction path
// with explicit identities, followed by the state overlay. Registration
// happens VM by VM in state order, which reproduces the original
// registration order (ascending Seq) and with it every runqueue.
func (w *World) restoreVM(vs *VMState) error {
	spec := vs.Spec
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("hv: restore VM: %w", err)
	}
	profile := spec.Profile
	if len(profile.Phases) == 0 {
		p, err := workload.Lookup(spec.App)
		if err != nil {
			return fmt.Errorf("hv: restore VM %q: %w", spec.Name, err)
		}
		profile = p
	}
	nv := spec.VCPUs
	if nv == 0 {
		nv = 1
	}
	if len(vs.VCPUs) != nv {
		return fmt.Errorf("hv: restore VM %q: state has %d vCPUs, spec declares %d", spec.Name, len(vs.VCPUs), nv)
	}
	weight := spec.Weight
	if weight == 0 {
		weight = vm.DefaultWeight
	}
	domain := &vm.VM{
		ID:         vs.ID,
		Name:       spec.Name,
		App:        profile.Name,
		Weight:     weight,
		CapPercent: spec.CapPercent,
		LLCCap:     spec.LLCCap,
		HomeNode:   spec.HomeNode,
		Spec:       spec,

		PollutionBlocked: vs.PollutionBlocked,
		Down:             vs.Down,
		Punishments:      vs.Punishments,
		Carried:          vs.Carried,
	}
	seed := spec.Seed
	if seed == 0 {
		seed = w.cfg.Seed ^ uint64(domain.ID)*0x9e3779b97f4a7c15
	}
	for i := range vs.VCPUs {
		cs := &vs.VCPUs[i]
		if cs.Index != i {
			return fmt.Errorf("hv: restore VM %q: vCPU %d has index %d", spec.Name, i, cs.Index)
		}
		gen, err := workload.New(profile, seed+uint64(i))
		if err != nil {
			return fmt.Errorf("hv: restore VM %q: %w", spec.Name, err)
		}
		if err := workload.RestoreGenState(gen, cs.Gen); err != nil {
			return fmt.Errorf("hv: restore VM %q vCPU %d: %w", spec.Name, i, err)
		}
		v := &vm.VCPU{
			VM: domain, ID: cs.ID, Seq: cs.Seq, Index: i,
			Gen: gen, Pin: cs.Pin, LastCore: cs.LastCore,
			Counters: cs.Counters,
		}
		v.Ctx = cpu.Context{
			Gen:      gen,
			Owner:    v.Owner(),
			AddrBase: uint64(domain.ID) << 36,
			Counters: &v.Counters,
		}
		if err := v.Ctx.RestoreState(cs.Ctx); err != nil {
			return fmt.Errorf("hv: restore VM %q vCPU %d: %w", spec.Name, i, err)
		}
		if w.analytic != nil {
			if cs.ACtx == nil {
				return fmt.Errorf("hv: restore VM %q vCPU %d: state has no analytic context but the world runs the analytic tier", spec.Name, i)
			}
			actx, err := cpu.NewAnalyticContext(profile, w.aparams, v.Owner(), &v.Counters)
			if err != nil {
				return fmt.Errorf("hv: restore VM %q vCPU %d: %w", spec.Name, i, err)
			}
			if err := actx.RestoreState(*cs.ACtx); err != nil {
				return fmt.Errorf("hv: restore VM %q vCPU %d: %w", spec.Name, i, err)
			}
			v.ACtx = actx
		}
		domain.VCPUs = append(domain.VCPUs, v)
	}
	for _, v := range domain.VCPUs {
		w.vcpus = append(w.vcpus, v)
		w.sch.Register(v)
	}
	// Overlay the scheduler-owned fields Register just defaulted.
	for i, v := range domain.VCPUs {
		cs := &vs.VCPUs[i]
		v.RemainCredit = cs.RemainCredit
		v.OverPriority = cs.OverPriority
		v.WindowBurn = cs.WindowBurn
		v.CapBlocked = cs.CapBlocked
		v.LastRunTick = cs.LastRunTick
		v.VRuntime = cs.VRuntime
	}
	w.vms = append(w.vms, domain)
	return nil
}

// findVMByID returns the VM with the given domain id, or nil.
func (w *World) findVMByID(id int) *vm.VM {
	for _, m := range w.vms {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// findVCPUBySeq returns the vCPU with the given creation sequence number,
// or nil.
func (w *World) findVCPUBySeq(seq int) *vm.VCPU {
	for _, v := range w.vcpus {
		if v.Seq == seq {
			return v
		}
	}
	return nil
}
