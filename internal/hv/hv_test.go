package hv

import (
	"testing"

	"kyoto/internal/machine"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

func mkWorld(t *testing.T, mcfg machine.Config) *World {
	t.Helper()
	cores := mcfg.Sockets * mcfg.CoresPerSocket
	w, err := New(Config{Machine: mcfg, Seed: 1}, sched.NewCredit(cores))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestAddVMValidation(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	if _, err := w.AddVM(vm.Spec{}); err == nil {
		t.Fatal("invalid spec must fail")
	}
	if _, err := w.AddVM(vm.Spec{Name: "v", App: "no-such-app"}); err == nil {
		t.Fatal("unknown app must fail")
	}
	if _, err := w.AddVM(vm.Spec{Name: "v", App: "gcc", Pins: []int{99}}); err == nil {
		t.Fatal("invalid pin must fail")
	}
	if _, err := w.AddVM(vm.Spec{Name: "v", App: "gcc", HomeNode: 5}); err == nil {
		t.Fatal("invalid home node must fail")
	}
	if _, err := w.AddVM(vm.Spec{Name: "ok", App: "gcc"}); err != nil {
		t.Fatalf("valid spec failed: %v", err)
	}
}

func TestExecutionMakesProgress(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	w.RunTicks(5)
	c := d.Counters()
	if c.Instructions == 0 {
		t.Fatal("no instructions retired")
	}
	// ~5 ticks of wall occupancy (one step of overshoot allowed per tick).
	wall := c.WallCycles()
	if wall < 5*machine.CyclesPerTick || wall > 5*machine.CyclesPerTick+5_000 {
		t.Fatalf("wall cycles = %d, want ~%d", wall, 5*machine.CyclesPerTick)
	}
	if w.Now() != 5 {
		t.Fatalf("Now = %d", w.Now())
	}
	if w.NowMillis() != 50 {
		t.Fatalf("NowMillis = %v", w.NowMillis())
	}
}

func TestIdleCoresAccounted(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	w.RunTicks(3)
	if w.IdleCycles[0] != 0 {
		t.Fatal("busy core must not accrue idle cycles")
	}
	for coreID := 1; coreID < 4; coreID++ {
		if w.IdleCycles[coreID] != 3*machine.CyclesPerTick {
			t.Fatalf("core %d idle = %d", coreID, w.IdleCycles[coreID])
		}
	}
}

func TestTimeSharingOneCore(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	a := w.MustAddVM(vm.Spec{Name: "a", App: "povray", Pins: []int{0}})
	b := w.MustAddVM(vm.Spec{Name: "b", App: "povray", Pins: []int{0}})
	w.RunTicks(60)
	wa, wb := a.Counters().WallCycles(), b.Counters().WallCycles()
	total := wa + wb
	if total < 59*machine.CyclesPerTick {
		t.Fatalf("core under-used: %d", total)
	}
	ratio := float64(wa) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("unfair split: %v", ratio)
	}
}

func TestSliceGranularScheduling(t *testing.T) {
	// With two VMs on one core, assignments change only at slice
	// boundaries: each VM's occupancy is a multiple of ~3 ticks.
	w := mkWorld(t, machine.TableOne(1))
	a := w.MustAddVM(vm.Spec{Name: "a", App: "povray", Pins: []int{0}})
	w.MustAddVM(vm.Spec{Name: "b", App: "povray", Pins: []int{0}})
	prev := uint64(0)
	changes := 0
	for tick := 0; tick < 30; tick++ {
		w.RunTicks(1)
		cur := a.Counters().WallCycles()
		if cur != prev {
			// a ran this tick
			prev = cur
		}
		_ = cur
		if tick%3 == 0 {
			changes++
		}
	}
	// Sanity: both ran; detailed slice alternation is covered by the
	// Figure 2 experiment test.
	if a.Counters().WallCycles() == 0 {
		t.Fatal("a never ran")
	}
	_ = changes
}

func TestParallelContentionEmerges(t *testing.T) {
	solo := mkWorld(t, machine.TableOne(1))
	v := solo.MustAddVM(vm.Spec{Name: "v", App: "micro-c2-rep", Pins: []int{0}})
	solo.RunTicks(30)
	soloIPC := v.Counters().IPC()

	pair := mkWorld(t, machine.TableOne(1))
	rep := pair.MustAddVM(vm.Spec{Name: "rep", App: "micro-c2-rep", Pins: []int{0}})
	pair.MustAddVM(vm.Spec{Name: "dis", App: "micro-c2-dis", Pins: []int{1}})
	pair.RunTicks(30)
	pairIPC := rep.Counters().IPC()

	if pairIPC >= soloIPC*0.8 {
		t.Fatalf("LLC contention missing: solo %v vs contended %v", soloIPC, pairIPC)
	}
}

func TestNUMARemotePenalty(t *testing.T) {
	// Same app, memory local vs remote: remote must be slower.
	local := mkWorld(t, machine.R420(1))
	lv := local.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}, HomeNode: 0})
	local.RunTicks(20)

	remote := mkWorld(t, machine.R420(1))
	rv := remote.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}, HomeNode: 1})
	remote.RunTicks(20)

	if rv.Counters().RemoteAccesses == 0 {
		t.Fatal("remote VM must count remote accesses")
	}
	if lv.Counters().RemoteAccesses != 0 {
		t.Fatal("local VM must not count remote accesses")
	}
	if rv.Counters().IPC() >= lv.Counters().IPC() {
		t.Fatalf("remote IPC %v must trail local %v", rv.Counters().IPC(), lv.Counters().IPC())
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		w := mkWorld(t, machine.TableOne(7))
		a := w.MustAddVM(vm.Spec{Name: "a", App: "gcc", Pins: []int{0}})
		w.MustAddVM(vm.Spec{Name: "b", App: "lbm", Pins: []int{1}})
		w.RunTicks(25)
		c := a.Counters()
		return c.Instructions ^ c.LLCMisses<<32
	}
	if run() != run() {
		t.Fatal("identical configs diverged")
	}
}

func TestRunUntil(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	ticks := w.RunUntil(func(*World) bool {
		return d.Counters().Instructions >= 1_000_000
	}, 1000)
	if ticks >= 1000 || d.Counters().Instructions < 1_000_000 {
		t.Fatalf("RunUntil: %d ticks, %d instrs", ticks, d.Counters().Instructions)
	}
	// Immediate predicate.
	if got := w.RunUntil(func(*World) bool { return true }, 10); got != 0 {
		t.Fatalf("immediate predicate ran %d ticks", got)
	}
}

func TestHooksRunEachTick(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	w.MustAddVM(vm.Spec{Name: "v", App: "povray"})
	calls := 0
	w.AddHook(TickHookFunc(func(*World) { calls++ }))
	w.RunTicks(7)
	if calls != 7 {
		t.Fatalf("hook ran %d times", calls)
	}
}

func TestSnapshotVMs(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	w.RunTicks(2)
	snap := w.SnapshotVMs()
	if snap["v"].Instructions == 0 {
		t.Fatal("snapshot empty")
	}
}

func TestFindVM(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	w.MustAddVM(vm.Spec{Name: "v", App: "povray"})
	if w.FindVM("v") == nil || w.FindVM("nope") != nil {
		t.Fatal("FindVM wrong")
	}
}

func TestVCPUIDsAndAddrBases(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	a := w.MustAddVM(vm.Spec{Name: "a", App: "povray", VCPUs: 2})
	b := w.MustAddVM(vm.Spec{Name: "b", App: "povray"})
	if a.VCPUs[0].ID == a.VCPUs[1].ID || a.VCPUs[1].ID == b.VCPUs[0].ID {
		t.Fatal("vCPU ids must be unique")
	}
	if a.VCPUs[0].Ctx.AddrBase == b.VCPUs[0].Ctx.AddrBase {
		t.Fatal("VMs must not share address bases")
	}
	if a.VCPUs[0].Ctx.AddrBase != a.VCPUs[1].Ctx.AddrBase {
		t.Fatal("vCPUs of one VM share the address space")
	}
}

func TestOverheadReporterCharged(t *testing.T) {
	// A scheduler reporting overhead shrinks core 0's effective budget.
	base := sched.NewCredit(4)
	w, err := New(Config{Machine: machine.TableOne(1), Seed: 1}, overheadSched{base, 100_000})
	if err != nil {
		t.Fatal(err)
	}
	d := w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	w.RunTicks(10)
	wall := d.Counters().WallCycles()
	want := uint64(10) * (machine.CyclesPerTick - 100_000)
	if wall > want+10_000 {
		t.Fatalf("overhead not charged: wall %d, want <= ~%d", wall, want)
	}
}

// overheadSched wraps a scheduler with a fixed per-tick overhead.
type overheadSched struct {
	sched.Scheduler
	cycles uint64
}

func (o overheadSched) TickOverheadCycles() uint64 { return o.cycles }

func TestCyclesPerTickOverride(t *testing.T) {
	w, err := New(Config{
		Machine:       machine.TableOne(1),
		CyclesPerTick: 300_000,
		Seed:          1,
	}, sched.NewCredit(4))
	if err != nil {
		t.Fatal(err)
	}
	d := w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	w.RunTicks(10)
	wall := d.Counters().WallCycles()
	if wall < 10*300_000 || wall > 10*300_000+5_000 {
		t.Fatalf("wall = %d with 300k tick", wall)
	}
}
