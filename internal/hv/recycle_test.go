package hv

// Owner-tag recycling and migration-blackout regression tests: the churn
// fixes that keep long-running fleets bounded. The ROADMAP's owner-ID
// growth note is pinned here — per-owner cache stats slices must not grow
// with total arrivals.

import (
	"testing"

	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

func TestOwnerTagsAreRecycledAndStatsStayBounded(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	llc := w.Machine().Sockets()[0].LLC
	baseline := llc.OwnersTracked()

	// Churn far more arrivals than the presized owner population: without
	// recycling, monotonically minted tags force the dense stats slices
	// to grow with total arrivals (the ROADMAP bug); with it, the slices
	// stay at the peak-concurrency watermark.
	for i := 0; i < 200; i++ {
		if _, err := w.AddVM(vm.Spec{Name: "churner", App: "gcc"}); err != nil {
			t.Fatal(err)
		}
		w.RunTicks(2)
		if err := w.RemoveVM("churner"); err != nil {
			t.Fatal(err)
		}
	}
	if got := llc.OwnersTracked(); got != baseline {
		t.Fatalf("LLC tracks %d owners after 200 arrivals (baseline %d): stats slices grew with churn", got, baseline)
	}
	for _, core := range w.Machine().Cores() {
		if got := core.Path.L1D.OwnersTracked(); got != baseline {
			t.Fatalf("L1D tracks %d owners, want %d", got, baseline)
		}
	}
}

func TestRecycledTagStartsWithCleanStats(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	first := w.MustAddVM(vm.Spec{Name: "old", App: "lbm"})
	w.RunTicks(6)
	owner := first.VCPUs[0].Owner()
	llc := w.Machine().Sockets()[0].LLC
	if llc.Stats(owner).Accesses == 0 {
		t.Fatal("lbm issued no LLC accesses in 6 ticks")
	}
	if err := w.RemoveVM("old"); err != nil {
		t.Fatal(err)
	}
	if got := llc.Stats(owner).Accesses; got != 0 {
		t.Fatalf("released tag still reports %d accesses", got)
	}
	if got := llc.Occupancy(owner); got != 0 {
		t.Fatalf("released tag still owns %d lines", got)
	}

	second := w.MustAddVM(vm.Spec{Name: "new", App: "gcc"})
	v := second.VCPUs[0]
	if v.Owner() != owner {
		t.Fatalf("tag not recycled: got %d, want %d", v.Owner(), owner)
	}
	if v.Seq == first.VCPUs[0].Seq {
		t.Fatal("scheduler sequence numbers must never be recycled")
	}
	if second.ID == first.ID {
		t.Fatal("VM IDs must never be recycled (they seed address spaces)")
	}
}

func TestSuspendVMBlackoutAndWake(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "gcc"})
	w.RunTicks(3)
	before := d.Counters()

	w.SuspendVM(d, 5)
	if !d.Down {
		t.Fatal("SuspendVM must set Down")
	}
	w.RunTicks(5)
	if got := d.Counters(); got.Instructions != before.Instructions {
		t.Fatalf("suspended VM retired %d instructions", got.Instructions-before.Instructions)
	}
	w.RunTicks(3)
	if d.Down {
		t.Fatal("VM still down after its blackout elapsed")
	}
	if got := d.Counters(); got.Instructions <= before.Instructions {
		t.Fatal("VM made no progress after waking")
	}

	// Extending while down keeps the later deadline; a zero/negative
	// blackout is a no-op.
	w.SuspendVM(d, 2)
	w.SuspendVM(d, 6)
	w.RunTicks(4)
	if !d.Down {
		t.Fatal("extension must keep the VM down past the earlier deadline")
	}
	w.RunTicks(4)
	if d.Down {
		t.Fatal("VM must wake after the extended blackout")
	}
	w.SuspendVM(d, 0)
	if d.Down {
		t.Fatal("zero-tick suspension must be a no-op")
	}
}

func TestRemoveVMWhileSuspendedDropsWake(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "gcc"})
	w.SuspendVM(d, 50)
	if err := w.RemoveVM("v"); err != nil {
		t.Fatal(err)
	}
	if len(w.wakes) != 0 {
		t.Fatalf("%d stale wake entries after removal", len(w.wakes))
	}
	// The world keeps ticking without the departed VM's wake firing.
	w.RunTicks(60)
}
