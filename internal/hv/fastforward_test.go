package hv

// FastForward must be bit-identical to RunTicks in every situation: the
// idle elision on empty worlds (exact and analytic, plain and
// Kyoto-decorated with an oracle feeding it), the fallback when VMs are
// live, and the fallback when a non-invariant hook disqualifies the
// world. Identity is checked on the complete serialized world state, so
// a drifting epoch counter, idle-cycle tally or residual cache slot
// cannot hide.

import (
	"encoding/json"
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/machine"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// ffWorld builds one world of the given fidelity; kyoto wraps the credit
// scheduler with enforcement (no monitor — feed is the caller's choice).
func ffWorld(t *testing.T, fid cache.Fidelity, kyoto bool) *World {
	t.Helper()
	mcfg := machine.TableOne(7)
	cores := mcfg.Sockets * mcfg.CoresPerSocket
	var s sched.Scheduler = sched.NewCredit(cores)
	if kyoto {
		s = core.New(s)
	}
	w, err := New(Config{Machine: mcfg, Seed: 7, Fidelity: fid}, s)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// stateJSON serializes the world's complete mutable state.
func stateJSON(t *testing.T, w *World) string {
	t.Helper()
	st, err := w.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// churnThenEmpty drives the world through a short busy phase and removes
// every VM again, leaving the residual state (recycled owner tags,
// advanced epochs, idle cycles) a long-idle fleet host would carry.
func churnThenEmpty(t *testing.T, w *World) {
	t.Helper()
	w.MustAddVM(vm.Spec{Name: "a", App: "gcc"})
	w.MustAddVM(vm.Spec{Name: "b", App: "povray"})
	w.RunTicks(97)
	for _, name := range []string{"a", "b"} {
		if err := w.RemoveVM(name); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFastForwardIdentity(t *testing.T) {
	spans := []int{1, 5, int(machine.TicksPerSlice), 3*int(machine.TicksPerSlice) + 7, 1000}
	for _, tc := range []struct {
		name   string
		fid    cache.Fidelity
		kyoto  bool
		churn  bool
		expect bool // elision expected (Now must jump without tick work)
	}{
		{"exact-fresh", cache.FidelityExact, false, false, true},
		{"exact-churned", cache.FidelityExact, false, true, true},
		{"analytic-fresh", cache.FidelityAnalytic, false, false, true},
		{"analytic-churned", cache.FidelityAnalytic, true, true, true},
		{"kyoto-churned", cache.FidelityExact, true, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range spans {
				ticked := ffWorld(t, tc.fid, tc.kyoto)
				jumped := ffWorld(t, tc.fid, tc.kyoto)
				if tc.churn {
					churnThenEmpty(t, ticked)
					churnThenEmpty(t, jumped)
				}
				if got := jumped.idleEligible(); got != tc.expect {
					t.Fatalf("idleEligible = %v, want %v", got, tc.expect)
				}
				ticked.RunTicks(n)
				jumped.FastForward(n)
				if a, b := stateJSON(t, ticked), stateJSON(t, jumped); a != b {
					t.Fatalf("n=%d: FastForward state diverged from RunTicks\nticked: %s\njumped: %s", n, a, b)
				}
			}
		})
	}
}

// TestFastForwardBusyFallback: with VMs live, FastForward must tick.
func TestFastForwardBusyFallback(t *testing.T) {
	ticked := ffWorld(t, cache.FidelityAnalytic, false)
	jumped := ffWorld(t, cache.FidelityAnalytic, false)
	ticked.MustAddVM(vm.Spec{Name: "v", App: "gcc"})
	jumped.MustAddVM(vm.Spec{Name: "v", App: "gcc"})
	if jumped.idleEligible() {
		t.Fatal("world with a live VM must not be idle-eligible")
	}
	ticked.RunTicks(50)
	jumped.FastForward(50)
	if a, b := stateJSON(t, ticked), stateJSON(t, jumped); a != b {
		t.Fatalf("busy fallback diverged:\n%s\n%s", a, b)
	}
	if c := jumped.FindVM("v").Counters(); c.Instructions == 0 {
		t.Fatal("busy fallback did not execute")
	}
}

// TestFastForwardHookGate: a tick hook without the IdleTickInvariant
// marker (a recorder sampling every tick) disqualifies the world, and
// FastForward falls back to real ticks so the hook keeps firing.
func TestFastForwardHookGate(t *testing.T) {
	w := ffWorld(t, cache.FidelityExact, false)
	fired := 0
	w.AddHook(TickHookFunc(func(*World) { fired++ }))
	if w.idleEligible() {
		t.Fatal("unmarked hook must clear idle eligibility")
	}
	w.FastForward(25)
	if fired != 25 {
		t.Fatalf("hook fired %d times, want 25 (elision would have skipped it)", fired)
	}
	if w.Now() != 25 {
		t.Fatalf("Now = %d, want 25", w.Now())
	}
}
