// Package hv is the virtual testbed: it owns the simulated machine, the
// VMs, and the scheduler, and drives the deterministic tick loop in which
// everything else happens.
//
// Time model (the paper's Xen defaults): a tick is 10 ms of model time
// (machine.CyclesPerTick cycles); a time slice is 3 ticks. Scheduling
// decisions are taken on slice boundaries (or immediately when the current
// vCPU becomes unschedulable), accounting happens every tick — mirroring
// XCS's 30 ms slices with 10 ms ticks.
//
// Within a tick, the cores that have work execute in round-robin chunks of
// ChunkCycles so that parallel vCPUs interleave finely on the shared LLC;
// this is what lets Figure 1's parallel-execution contention emerge
// instead of being an artefact of running cores to completion one by one.
//
// # Performance
//
// The tick loop is the hot path of every experiment sweep — a tick on a
// loaded 4-core host is millions of simulated memory accesses, and the
// Figure 4 matrix alone is 90 worlds. The path is engineered to be
// allocation-free and cache-lean in steady state:
//
//   - workload generators emit steps in batches (workload.BatchGenerator)
//     into a per-vCPU buffer owned by cpu.Context, so the Generator
//     interface is crossed once per 64 steps, not once per step;
//   - cache lookups index dense per-owner stats slices (no maps on the
//     access path) and plain-LRU caches keep recency in a per-set linked
//     list, making both MRU promotion and victim choice O(1);
//   - the per-tick scratch (core budgets, budget caps, monitor buffers)
//     is pre-allocated in New and reused, so steady-state ticks report
//     0 allocs/op (BenchmarkWorldTick enforces this).
//
// Determinism is the contract that lets the hot path be rewritten at all:
// the golden fingerprints in testdata/golden.json (and the fleet golden
// in internal/cluster) pin runs bit-for-bit, so any optimization must
// prove itself arithmetic-preserving before it lands. Profile with
// `kyotobench -cpuprofile` and track ns/op via scripts/bench_json.sh.
package hv

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/cpu"
	"kyoto/internal/machine"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// DefaultChunkCycles is the intra-tick interleave granularity (0.1 ms of
// model time): fine enough for parallel contention, coarse enough to be
// cheap.
const DefaultChunkCycles = 10_000

// Config configures a World.
type Config struct {
	// Machine is the hardware description (machine.TableOne, machine.R420
	// or custom).
	Machine machine.Config
	// CyclesPerTick overrides the tick length (default
	// machine.CyclesPerTick). Figure 12 sweeps this.
	CyclesPerTick uint64
	// ChunkCycles overrides the interleave granularity.
	ChunkCycles uint64
	// Seed drives all workload randomness.
	Seed uint64
	// Fidelity selects the cache-model tier: cache.FidelityExact (the
	// zero value — per-access simulation, the goldens' reference) or
	// cache.FidelityAnalytic (closed-form occupancy model, ~100x faster,
	// validated by the cross-validation harness in internal/experiments).
	Fidelity cache.Fidelity
}

// TickHook observes the world once per tick, after execution and charging
// but before the scheduler's end-of-tick accounting. Monitors and
// experiment recorders are hooks.
type TickHook interface {
	OnTick(w *World)
}

// TickHookFunc adapts a function to TickHook.
type TickHookFunc func(w *World)

// OnTick implements TickHook.
func (f TickHookFunc) OnTick(w *World) { f(w) }

// OverheadReporter is optionally implemented by schedulers that consume
// measurable pCPU time themselves (the Kyoto monitoring path, §4.5). The
// reported cycles are deducted from core 0's execution budget each tick,
// modelling monitor work running in dom0.
type OverheadReporter interface {
	TickOverheadCycles() uint64
}

// World is the assembled testbed.
type World struct {
	cfg     Config
	m       *machine.Machine
	sch     sched.Scheduler
	vms     []*vm.VM
	vcpus   []*vm.VCPU
	hooks   []TickHook
	now     uint64
	current []*vm.VCPU // per core
	scratch []uint64   // per-core consumed cycles, reused across ticks
	caps    []uint64   // per-core budget caps, reused across ticks

	// vmSeq is a monotonic ID counter. VM IDs are never reused after
	// RemoveVM: the VM ID seeds workloads and address spaces, so recycling
	// one would alias a live VM's memory behaviour with a departed one's.
	vmSeq int
	// vcpuSeq is the high-water mark of vCPU IDs. Unlike VM IDs, vCPU IDs
	// (the cache attribution owner tags) ARE recycled: RemoveVM releases
	// each departed vCPU's tag — after evicting every line it owns and
	// zeroing its per-cache stats row (cache.ReleaseOwner) — onto
	// freeOwners, and AddVM reuses released tags before minting new ones.
	// This keeps the dense per-owner stats slices in every cache bounded
	// by the peak concurrent vCPU population instead of growing with
	// total arrivals, which is what makes million-arrival churn runs
	// possible (and keeps tags far from the uint16 Owner ceiling).
	vcpuSeq    int
	freeOwners []int // released vCPU IDs, reused LIFO
	// vcpuTotal counts every vCPU ever created; it mints vm.VCPU.Seq, the
	// never-recycled scheduler tie-break key.
	vcpuTotal int

	// wakes holds VMs suspended by SuspendVM (migration blackout) and the
	// tick at which each resumes. Empty in steady state: the tick loop
	// pays one length check when no migration is in flight.
	wakes []wake

	// analytic holds the per-socket occupancy models when the world runs
	// on the analytic tier; nil on the exact tier, which is also the
	// tick loop's fidelity dispatch test.
	analytic []*cache.AnalyticLLC
	aparams  cpu.AnalyticParams

	// IdleCycles accumulates, per core, cycles with no vCPU assigned.
	IdleCycles []uint64

	// idleSafe records whether the scheduler and every installed hook
	// carry the sched.IdleTickInvariant marker — the static half of the
	// FastForward eligibility check (the dynamic half is "no VMs, no
	// pending wakes"). Set at construction, cleared by AddHook when a
	// hook without the marker is installed.
	idleSafe bool
}

// New builds a World on the given machine driving the given scheduler.
// Core-count-dependent policies can size themselves from cfg.Machine
// (Sockets x CoresPerSocket).
func New(cfg Config, s sched.Scheduler) (*World, error) {
	m, err := machine.New(cfg.Machine)
	if err != nil {
		return nil, err
	}
	if cfg.CyclesPerTick == 0 {
		cfg.CyclesPerTick = machine.CyclesPerTick
	}
	if cfg.ChunkCycles == 0 {
		cfg.ChunkCycles = DefaultChunkCycles
	}
	if cfg.ChunkCycles > cfg.CyclesPerTick {
		cfg.ChunkCycles = cfg.CyclesPerTick
	}
	w := &World{
		cfg:        cfg,
		m:          m,
		sch:        s,
		current:    make([]*vm.VCPU, m.NumCores()),
		scratch:    make([]uint64, m.NumCores()),
		caps:       make([]uint64, m.NumCores()),
		IdleCycles: make([]uint64, m.NumCores()),
		idleSafe:   schedIdleInvariant(s),
	}
	if cfg.Fidelity == cache.FidelityAnalytic {
		for range m.Sockets() {
			llc, err := cache.NewAnalyticLLC(cfg.Machine.LLC)
			if err != nil {
				return nil, err
			}
			w.analytic = append(w.analytic, llc)
		}
		w.aparams = analyticParams(cfg.Machine)
	}
	return w, nil
}

// analyticParams derives the analytic executor's geometry and latencies
// from the machine description.
func analyticParams(mcfg machine.Config) cpu.AnalyticParams {
	lines := func(c cache.Config) int { return c.SizeBytes / c.LineBytes }
	return cpu.AnalyticParams{
		L1Lines: lines(mcfg.L1), L1Sets: lines(mcfg.L1) / mcfg.L1.Ways, L1Ways: mcfg.L1.Ways,
		L2Lines: lines(mcfg.L2), L2Sets: lines(mcfg.L2) / mcfg.L2.Ways, L2Ways: mcfg.L2.Ways,
		LLCSets: lines(mcfg.LLC) / mcfg.LLC.Ways, LLCWays: mcfg.LLC.Ways,
		LineBytes:     mcfg.L1.LineBytes,
		L1Lat:         float64(mcfg.L1.HitLatencyCycles),
		L2Lat:         float64(mcfg.L2.HitLatencyCycles),
		LLCLat:        float64(mcfg.LLC.HitLatencyCycles),
		MemLat:        float64(mcfg.MemLatencyCycles),
		RemotePenalty: float64(mcfg.RemotePenaltyCycles),
	}
}

// Fidelity returns the cache-model tier the world runs on.
func (w *World) Fidelity() cache.Fidelity {
	if w.analytic != nil {
		return cache.FidelityAnalytic
	}
	return cache.FidelityExact
}

// AnalyticLLC returns the analytic occupancy model of the given socket,
// or nil on the exact tier. Monitors and the cross-validation harness
// read per-owner occupancy fractions from it.
func (w *World) AnalyticLLC(socket int) *cache.AnalyticLLC {
	if w.analytic == nil {
		return nil
	}
	return w.analytic[socket]
}

// LLCOccupancyFraction returns the fraction of the machine's total LLC
// lines owned by the vCPU, summed across sockets — readable on either
// fidelity tier, which is what lets Equation-1 views and the
// cross-validation harness compare occupancy between tiers.
func (w *World) LLCOccupancyFraction(v *vm.VCPU) float64 {
	var owned, capacity float64
	if w.analytic != nil {
		for _, llc := range w.analytic {
			owned += llc.OccupancyLines(v.Owner())
			capacity += llc.Lines()
		}
	} else {
		for _, sock := range w.m.Sockets() {
			cfg := sock.LLC.Config()
			owned += float64(sock.LLC.Occupancy(v.Owner()))
			capacity += float64(cfg.SizeBytes / cfg.LineBytes)
		}
	}
	if capacity == 0 {
		return 0
	}
	return owned / capacity
}

// Machine returns the simulated machine.
func (w *World) Machine() *machine.Machine { return w.m }

// Scheduler returns the scheduling policy.
func (w *World) Scheduler() sched.Scheduler { return w.sch }

// Now returns the number of completed ticks.
func (w *World) Now() uint64 { return w.now }

// NowMillis returns elapsed model time in milliseconds.
func (w *World) NowMillis() float64 {
	return float64(w.now) * float64(w.cfg.CyclesPerTick) / float64(machine.CPUFreqKHz)
}

// CyclesPerTick returns the configured tick length.
func (w *World) CyclesPerTick() uint64 { return w.cfg.CyclesPerTick }

// VMs returns the VMs in creation order.
func (w *World) VMs() []*vm.VM { return w.vms }

// VCPUs returns all vCPUs in id order.
func (w *World) VCPUs() []*vm.VCPU { return w.vcpus }

// FindVM returns the VM with the given name, or nil.
func (w *World) FindVM(name string) *vm.VM {
	for _, m := range w.vms {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// AddHook appends a tick hook.
func (w *World) AddHook(h TickHook) {
	w.hooks = append(w.hooks, h)
	if _, ok := h.(sched.IdleTickInvariant); !ok {
		// A hook without the marker may observe or mutate state every
		// tick (recorders do), so the idle fast-forward must not elide
		// ticks for this world anymore.
		w.idleSafe = false
	}
}

// schedIdleInvariant reports whether s (and, for decorators, its whole
// base chain) promises sched.IdleTickInvariant.
func schedIdleInvariant(s sched.Scheduler) bool {
	if _, ok := s.(sched.IdleTickInvariant); !ok {
		return false
	}
	if d, ok := s.(interface{ Base() sched.Scheduler }); ok {
		return schedIdleInvariant(d.Base())
	}
	return true
}

// AddVM instantiates spec: resolves the workload profile, creates the
// vCPUs, and registers them with the scheduler.
func (w *World) AddVM(spec vm.Spec) (*vm.VM, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	profile := spec.Profile
	if len(profile.Phases) == 0 {
		p, err := workload.Lookup(spec.App)
		if err != nil {
			return nil, err
		}
		profile = p
	}
	nv := spec.VCPUs
	if nv == 0 {
		nv = 1
	}
	if spec.HomeNode < 0 || spec.HomeNode >= w.m.NumSockets() {
		return nil, fmt.Errorf("hv: VM %q home node %d out of range", spec.Name, spec.HomeNode)
	}
	weight := spec.Weight
	if weight == 0 {
		weight = vm.DefaultWeight
	}
	domain := &vm.VM{
		ID:         w.vmSeq + 1,
		Name:       spec.Name,
		App:        profile.Name,
		Weight:     weight,
		CapPercent: spec.CapPercent,
		LLCCap:     spec.LLCCap,
		HomeNode:   spec.HomeNode,
		Spec:       spec,
	}
	seed := spec.Seed
	if seed == 0 {
		seed = w.cfg.Seed ^ uint64(domain.ID)*0x9e3779b97f4a7c15
	}
	// Plan the vCPU IDs without committing them: recycled owner tags first
	// (LIFO off freeOwners), freshly minted ones past the high-water mark
	// after. The free list is only shrunk once the whole VM builds.
	recycled := nv
	if recycled > len(w.freeOwners) {
		recycled = len(w.freeOwners)
	}
	// Build every vCPU before mutating any world or scheduler state, so a
	// failed spec (bad pin, unknown profile phase) leaves the world exactly
	// as it was — cluster placement relies on AddVM being atomic.
	for i := 0; i < nv; i++ {
		gen, err := workload.New(profile, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		pin := vm.NoPin
		if i < len(spec.Pins) {
			pin = spec.Pins[i]
		}
		if pin != vm.NoPin && (pin < 0 || pin >= w.m.NumCores()) {
			return nil, fmt.Errorf("hv: VM %q vCPU %d pinned to invalid core %d", spec.Name, i, pin)
		}
		id := 0
		if i < recycled {
			id = w.freeOwners[len(w.freeOwners)-1-i]
		} else {
			id = w.vcpuSeq + 1 + (i - recycled)
		}
		v := &vm.VCPU{
			VM:       domain,
			ID:       id,
			Seq:      w.vcpuTotal + 1 + i,
			Index:    i,
			Gen:      gen,
			Pin:      pin,
			LastCore: vm.NoPin,
		}
		v.Ctx = cpu.Context{
			Gen:      gen,
			Owner:    v.Owner(),
			AddrBase: uint64(domain.ID) << 36,
			Counters: &v.Counters,
		}
		if w.analytic != nil {
			actx, err := cpu.NewAnalyticContext(profile, w.aparams, v.Owner(), &v.Counters)
			if err != nil {
				return nil, err
			}
			v.ACtx = actx
		}
		domain.VCPUs = append(domain.VCPUs, v)
	}
	w.vmSeq++
	w.freeOwners = w.freeOwners[:len(w.freeOwners)-recycled]
	w.vcpuSeq += nv - recycled
	w.vcpuTotal += nv
	for _, v := range domain.VCPUs {
		w.vcpus = append(w.vcpus, v)
		w.sch.Register(v)
	}
	w.vms = append(w.vms, domain)
	return domain, nil
}

// VMRemovalHook is optionally implemented by tick hooks that keep per-VM
// or per-vCPU state (monitors, recorders); RemoveVM notifies them so
// long-running churn scenarios do not leak state for departed VMs.
type VMRemovalHook interface {
	OnRemoveVM(domain *vm.VM)
}

// RemoveVM tears the named VM down: its vCPUs leave the scheduler
// runqueues, any core currently assigned one idles, every cache line the
// VM still holds is invalidated and its owner tags are released for reuse
// (cache.ReleaseOwner — departures free their LLC footprint to the
// survivors and keep per-owner stats slices bounded under churn), and
// hooks implementing VMRemovalHook are notified. The scheduler must
// implement sched.Remover (all built-in policies do). The VM's counters
// remain readable by the caller, who typically snapshots them before
// removal for lifetime statistics.
func (w *World) RemoveVM(name string) error {
	domain := w.FindVM(name)
	if domain == nil {
		return fmt.Errorf("hv: remove %q: no such VM", name)
	}
	remover, ok := w.sch.(sched.Remover)
	if !ok {
		return fmt.Errorf("hv: remove %q: scheduler %s does not support removal", name, w.sch.Name())
	}
	// A decorator (core.Kyoto) implements Remover by delegating to its
	// base; check the wrapped policy too, so an unremovable base surfaces
	// here as a clean error instead of a panic mid-removal.
	if d, ok := w.sch.(interface{ Base() sched.Scheduler }); ok {
		if _, ok := d.Base().(sched.Remover); !ok {
			return fmt.Errorf("hv: remove %q: base scheduler %s does not support removal", name, d.Base().Name())
		}
	}
	for _, v := range domain.VCPUs {
		remover.Unregister(v)
		for coreID, cur := range w.current {
			if cur == v {
				w.current[coreID] = nil
			}
		}
		// Release the vCPU's owner tag everywhere it may have run: every
		// private level and every socket's LLC. ReleaseOwner both evicts
		// the lines (departures free their footprint to the survivors) and
		// zeroes the tag's stats rows, so the tag can be recycled for a
		// future vCPU without inheriting this one's attribution history.
		// Cold path, O(lines).
		for _, core := range w.m.Cores() {
			core.Path.L1D.ReleaseOwner(v.Owner())
			core.Path.L2.ReleaseOwner(v.Owner())
		}
		for _, sock := range w.m.Sockets() {
			sock.LLC.ReleaseOwner(v.Owner())
		}
		for _, llc := range w.analytic {
			llc.ReleaseOwner(v.Owner())
		}
		w.freeOwners = append(w.freeOwners, v.ID)
		for i, wv := range w.vcpus {
			if wv == v {
				w.vcpus = append(w.vcpus[:i], w.vcpus[i+1:]...)
				break
			}
		}
	}
	for i, m := range w.vms {
		if m == domain {
			w.vms = append(w.vms[:i], w.vms[i+1:]...)
			break
		}
	}
	// Drop any pending migration wake-up: the domain is gone.
	for i := 0; i < len(w.wakes); {
		if w.wakes[i].domain == domain {
			w.wakes = append(w.wakes[:i], w.wakes[i+1:]...)
			continue
		}
		i++
	}
	for _, h := range w.hooks {
		if rh, ok := h.(VMRemovalHook); ok {
			rh.OnRemoveVM(domain)
		}
	}
	return nil
}

// wake schedules the end of one VM's migration blackout.
type wake struct {
	domain *vm.VM
	at     uint64 // first tick at which the VM may run again
}

// SuspendVM takes the VM off-CPU for the next ticks ticks — the blackout
// window of a live migration (the stop-and-copy phase the Figure 9
// dedication study pays for real). While suspended, the VM's vCPUs are
// unschedulable under every policy; the VM resumes automatically once the
// window elapses. Suspending an already-suspended VM extends the blackout
// to whichever deadline is later. ticks <= 0 is a no-op.
func (w *World) SuspendVM(domain *vm.VM, ticks int) {
	if domain == nil || ticks <= 0 {
		return
	}
	at := w.now + uint64(ticks)
	domain.Down = true
	for i := range w.wakes {
		if w.wakes[i].domain == domain {
			if w.wakes[i].at < at {
				w.wakes[i].at = at
			}
			return
		}
	}
	w.wakes = append(w.wakes, wake{domain: domain, at: at})
}

// processWakes clears the Down flag of every VM whose blackout has
// elapsed. Called from tick only while suspensions exist.
func (w *World) processWakes() {
	kept := w.wakes[:0]
	for _, wk := range w.wakes {
		if w.now >= wk.at {
			wk.domain.Down = false
		} else {
			kept = append(kept, wk)
		}
	}
	w.wakes = kept
}

// MustAddVM is AddVM but panics on error, for statically valid scenarios.
func (w *World) MustAddVM(spec vm.Spec) *vm.VM {
	m, err := w.AddVM(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// RunTicks advances the world n ticks.
func (w *World) RunTicks(n int) {
	for i := 0; i < n; i++ {
		w.tick()
	}
}

// FastForward advances the world n ticks, bit-identically to
// RunTicks(n), eliding the tick loop entirely when the world provably
// holds no simulated activity. On an idle-eligible world — no VMs, no
// pending wakes, no stale core assignment, and a scheduler plus hooks
// that all promise sched.IdleTickInvariant — one tick's only mutations
// are now++, one CyclesPerTick of idle accounting per core, and (on the
// analytic tier) one empty occupancy epoch per socket; all three have
// exact closed forms, applied here in O(cores + sockets) regardless of
// n. Any world that fails the eligibility check is ticked normally, so
// FastForward is always safe to substitute for RunTicks. The fleet's
// lazy per-host clocks use it to close an untouched host's idle stretch
// in constant time — the elision that makes event-horizon replay faster
// than lockstep, not merely deferred (TestFastForwardIdentity pins the
// equivalence).
func (w *World) FastForward(n int) {
	if n <= 0 {
		return
	}
	if !w.idleEligible() {
		w.RunTicks(n)
		return
	}
	ticks := uint64(n)
	for i := range w.IdleCycles {
		w.IdleCycles[i] += ticks * w.cfg.CyclesPerTick
	}
	for _, llc := range w.analytic {
		llc.SkipEpochs(ticks)
	}
	w.now += ticks
}

// idleEligible reports whether every one of the next ticks would be a
// provable no-op beyond the closed-form mutations FastForward applies.
// No VM can appear mid-run (AddVM happens between RunTicks calls), so
// checking at entry covers the whole window.
func (w *World) idleEligible() bool {
	if !w.idleSafe || len(w.vms) != 0 || len(w.wakes) != 0 {
		return false
	}
	for _, cur := range w.current {
		if cur != nil {
			return false
		}
	}
	return true
}

// RunUntil advances the world until pred returns true or maxTicks elapse,
// returning the number of ticks run.
func (w *World) RunUntil(pred func(*World) bool, maxTicks int) int {
	for i := 0; i < maxTicks; i++ {
		if pred(w) {
			return i
		}
		w.tick()
	}
	return maxTicks
}

// tick executes one scheduler tick.
func (w *World) tick() {
	if len(w.wakes) > 0 {
		w.processWakes()
	}
	cores := w.m.Cores()
	sliceBoundary := w.now%machine.TicksPerSlice == 0

	// 1. Scheduling decisions: keep the current assignment inside a
	// slice, re-pick at boundaries or when the incumbent cannot run.
	for _, core := range cores {
		cur := w.current[core.ID]
		if cur != nil && !sliceBoundary && cur.Schedulable() && cur.AllowedOn(core.ID) {
			continue
		}
		next := w.sch.PickNext(core, w.now)
		w.current[core.ID] = next
		if next != nil {
			w.bind(next, core)
		}
	}

	// 2. Overhead deduction (monitoring work, modelled on core 0).
	budgets := w.scratch[:len(cores)]
	for i := range budgets {
		budgets[i] = 0
	}
	overhead := uint64(0)
	if r, ok := w.sch.(OverheadReporter); ok {
		overhead = r.TickOverheadCycles()
		if overhead > w.cfg.CyclesPerTick {
			overhead = w.cfg.CyclesPerTick
		}
	}

	// 3. Interleaved execution. Sub-tick budget limits (credit caps) come
	// from the scheduler when it implements sched.BudgetLimiter.
	limiter, _ := w.sch.(sched.BudgetLimiter)
	caps := w.caps[:len(cores)]
	for _, core := range cores {
		caps[core.ID] = ^uint64(0)
		if v := w.current[core.ID]; v != nil && limiter != nil {
			caps[core.ID] = limiter.TickBudget(v, w.now)
		}
	}
	tickBudget := w.cfg.CyclesPerTick
	chunk := w.cfg.ChunkCycles
	for target := chunk; ; target += chunk {
		if target > tickBudget {
			target = tickBudget
		}
		for _, core := range cores {
			v := w.current[core.ID]
			if v == nil {
				continue
			}
			limit := target
			if core.ID == 0 && overhead > 0 {
				// dom0 monitoring steals the head of core 0's tick.
				if limit <= overhead {
					continue
				}
				limit -= overhead
			}
			if c := caps[core.ID]; c != ^uint64(0) {
				// Spread the capped budget evenly across the tick so a
				// capped vCPU interleaves with its neighbours instead of
				// bursting at the tick head (Xen's credit burn has the
				// same pacing effect at its finer accounting quantum).
				scaled := c * target / tickBudget
				if limit > scaled {
					limit = scaled
				}
			}
			if budgets[core.ID] < limit {
				if w.analytic != nil {
					budgets[core.ID] += cpu.RunAnalytic(v.ACtx, limit-budgets[core.ID])
				} else {
					budgets[core.ID] += cpu.Run(&v.Ctx, limit-budgets[core.ID])
				}
			}
		}
		if target == tickBudget {
			break
		}
	}

	// 4. Charging and idle accounting.
	for _, core := range cores {
		v := w.current[core.ID]
		if v == nil {
			w.IdleCycles[core.ID] += tickBudget
			continue
		}
		w.sch.ChargeTick(v, budgets[core.ID], w.now)
	}

	// 5. Hooks (monitors, recorders).
	for _, h := range w.hooks {
		h.OnTick(w)
	}

	// 6. End-of-tick policy accounting; on the analytic tier the
	// occupancy recurrence advances one epoch per tick.
	for _, llc := range w.analytic {
		llc.EndEpoch()
	}
	w.sch.EndTick(w.now)
	w.now++
}

// bind points the vCPU's execution context at its new core.
func (w *World) bind(v *vm.VCPU, core *machine.Core) {
	v.Ctx.Path = &core.Path
	v.Ctx.Remote = v.VM.HomeNode != core.SocketID
	if w.analytic != nil {
		v.ACtx.LLC = w.analytic[core.SocketID]
		v.ACtx.Remote = v.Ctx.Remote
	}
	v.LastCore = core.ID
}

// CurrentOn returns the vCPU currently assigned to core, or nil.
func (w *World) CurrentOn(coreID int) *vm.VCPU { return w.current[coreID] }

// SnapshotVMs returns each VM's aggregate counters, keyed by VM name.
// Experiments snapshot before and after a measurement window and take
// deltas.
func (w *World) SnapshotVMs() map[string]pmc.Counters {
	return w.SnapshotVMsInto(nil)
}

// SnapshotVMsInto fills dst with each VM's aggregate counters and returns
// it, allocating only when dst is nil. Periodic samplers (per-tick hooks,
// fleet monitors) pass their previous map back to snapshot without
// re-allocating; entries for VMs no longer in the world are not removed.
func (w *World) SnapshotVMsInto(dst map[string]pmc.Counters) map[string]pmc.Counters {
	if dst == nil {
		dst = make(map[string]pmc.Counters, len(w.vms))
	}
	for _, m := range w.vms {
		dst[m.Name] = m.Counters()
	}
	return dst
}
