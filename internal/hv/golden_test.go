package hv_test

// Golden determinism guard for the simulation hot path.
//
// Each scenario below runs a fixed number of ticks and folds every vCPU's
// full PMC block into one 64-bit fingerprint (pmc.Counters.Fold). The
// fingerprints are pinned in testdata/golden.json; any change to the
// workload -> cpu -> cache -> hv pipeline that alters a single counter by
// one changes the fingerprint and fails this test. Performance refactors
// of the hot path must keep these values bit-identical.
//
// Regenerate (only when a semantic change is intended and understood):
//
//	go test ./internal/hv -run TestGoldenFingerprints -update
import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json with observed fingerprints")

// goldenTicks is long enough to cross many slice boundaries, fill the LLC,
// and (in the Kyoto scenario) trigger pollution punishments.
const goldenTicks = 60

// goldenSeed fixes all randomness in the golden scenarios.
const goldenSeed = 7

// goldenWorlds builds the three representative scenarios: an uncontended
// run, a two-VM LLC contention pair, and a fully-booked 4-VM host under
// Kyoto enforcement (admission-style bookings, oracle monitor).
func goldenWorlds(t testing.TB) map[string]*hv.World {
	t.Helper()
	mk := func(s sched.Scheduler, hooks []hv.TickHook, specs ...vm.Spec) *hv.World {
		w, err := hv.New(hv.Config{Machine: machine.TableOne(goldenSeed), Seed: goldenSeed}, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if _, err := w.AddVM(spec); err != nil {
				t.Fatal(err)
			}
		}
		for _, h := range hooks {
			w.AddHook(h)
		}
		return w
	}
	k := core.New(sched.NewCredit(4))
	oracle := monitor.NewOracle(k, core.Equation1)
	return map[string]*hv.World{
		"solo-gcc": mk(sched.NewCredit(4), nil,
			vm.Spec{Name: "solo", App: "gcc", Pins: []int{0}}),
		"gcc-lbm-contention": mk(sched.NewCredit(4), nil,
			vm.Spec{Name: "victim", App: "gcc", Pins: []int{0}},
			vm.Spec{Name: "attacker", App: "lbm", Pins: []int{1}}),
		"kyoto-admission-4vm": mk(k, []hv.TickHook{oracle},
			vm.Spec{Name: "vm0", App: "gcc", Pins: []int{0}, LLCCap: 250},
			vm.Spec{Name: "vm1", App: "lbm", Pins: []int{1}, LLCCap: 250},
			vm.Spec{Name: "vm2", App: "omnetpp", Pins: []int{2}, LLCCap: 250},
			vm.Spec{Name: "vm3", App: "blockie", Pins: []int{3}, LLCCap: 250}),
	}
}

// fingerprint folds every vCPU's counters, in vCPU-id order, into one hash.
func fingerprint(w *hv.World) string {
	h := pmc.FoldSeed
	for _, v := range w.VCPUs() {
		h = v.Counters.Fold(h)
	}
	return fmt.Sprintf("%016x", h)
}

// goldenPath locates the committed fingerprint file.
func goldenPath() string { return filepath.Join("testdata", "golden.json") }

func readGolden(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("parse golden file: %v", err)
	}
	return m
}

func TestGoldenFingerprints(t *testing.T) {
	worlds := goldenWorlds(t)
	got := make(map[string]string, len(worlds))
	names := make([]string, 0, len(worlds))
	for name := range worlds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		worlds[name].RunTicks(goldenTicks)
		got[name] = fingerprint(worlds[name])
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath())
		return
	}

	want := readGolden(t)
	for _, name := range names {
		if want[name] == "" {
			t.Errorf("%s: no golden fingerprint committed (run with -update)", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: fingerprint %s, want %s — the simulation is no longer bit-identical to the committed baseline",
				name, got[name], want[name])
		}
	}
}

// TestGoldenRerunStable re-runs one scenario twice in-process: determinism
// must hold independently of the committed goldens (this catches state
// leaking between worlds, e.g. through shared scratch buffers).
func TestGoldenRerunStable(t *testing.T) {
	a := goldenWorlds(t)["kyoto-admission-4vm"]
	b := goldenWorlds(t)["kyoto-admission-4vm"]
	a.RunTicks(goldenTicks)
	b.RunTicks(goldenTicks)
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("identical Kyoto scenarios diverged within one process")
	}
}

// BenchmarkWorldTick measures single-world tick throughput on a fully
// loaded 4-core host — the inner loop every experiment sweep multiplies.
// The credit variant must run allocation-free in steady state.
func BenchmarkWorldTick(b *testing.B) {
	for _, bc := range []struct {
		name  string
		build func(testing.TB) *hv.World
	}{
		{"credit", func(t testing.TB) *hv.World {
			return goldenWorlds(t)["gcc-lbm-contention"]
		}},
		{"credit-4vm", func(t testing.TB) *hv.World {
			w, err := hv.New(hv.Config{Machine: machine.TableOne(goldenSeed), Seed: goldenSeed}, sched.NewCredit(4))
			if err != nil {
				t.Fatal(err)
			}
			for i, app := range []string{"gcc", "lbm", "omnetpp", "blockie"} {
				if _, err := w.AddVM(vm.Spec{Name: fmt.Sprintf("vm%d", i), App: app, Pins: []int{i}}); err != nil {
					t.Fatal(err)
				}
			}
			return w
		}},
		{"kyoto-4vm", func(t testing.TB) *hv.World {
			return goldenWorlds(t)["kyoto-admission-4vm"]
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w := bc.build(b)
			w.RunTicks(12) // warmup: fill caches, reach scheduler steady state
			b.ReportAllocs()
			b.ResetTimer()
			w.RunTicks(b.N)
			b.StopTimer()
			b.ReportMetric(float64(w.CyclesPerTick())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
		})
	}
}
