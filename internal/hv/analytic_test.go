package hv_test

// Analytic-tier guards: determinism (same seed -> bit-identical counter
// fingerprints, the property the exact tier pins with golden.json),
// physical sanity of the bulk counter updates, and the tick-throughput
// benchmark the two-fidelity work is measured by (BenchmarkWorldTickAnalytic
// must be >=10x BenchmarkWorldTick with 0 allocs/op; CI enforces the
// alloc half, BENCH_kyoto.json records the ratio).

import (
	"fmt"
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// analyticWorlds rebuilds the golden scenarios on the analytic tier.
func analyticWorlds(t testing.TB) map[string]*hv.World {
	t.Helper()
	mk := func(s sched.Scheduler, hooks []hv.TickHook, specs ...vm.Spec) *hv.World {
		w, err := hv.New(hv.Config{
			Machine:  machine.TableOne(goldenSeed),
			Seed:     goldenSeed,
			Fidelity: cache.FidelityAnalytic,
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			if _, err := w.AddVM(spec); err != nil {
				t.Fatal(err)
			}
		}
		for _, h := range hooks {
			w.AddHook(h)
		}
		return w
	}
	k := core.New(sched.NewCredit(4))
	oracle := monitor.NewOracle(k, core.Equation1)
	return map[string]*hv.World{
		"solo-gcc": mk(sched.NewCredit(4), nil,
			vm.Spec{Name: "solo", App: "gcc", Pins: []int{0}}),
		"gcc-lbm-contention": mk(sched.NewCredit(4), nil,
			vm.Spec{Name: "victim", App: "gcc", Pins: []int{0}},
			vm.Spec{Name: "attacker", App: "lbm", Pins: []int{1}}),
		"kyoto-admission-4vm": mk(k, []hv.TickHook{oracle},
			vm.Spec{Name: "vm0", App: "gcc", Pins: []int{0}, LLCCap: 250},
			vm.Spec{Name: "vm1", App: "lbm", Pins: []int{1}, LLCCap: 250},
			vm.Spec{Name: "vm2", App: "omnetpp", Pins: []int{2}, LLCCap: 250},
			vm.Spec{Name: "vm3", App: "blockie", Pins: []int{3}, LLCCap: 250}),
	}
}

// TestAnalyticDeterminism is the analytic tier's face of the determinism
// contract: the same seed must reproduce every counter bit for bit, for
// each scenario, across independently built worlds.
func TestAnalyticDeterminism(t *testing.T) {
	a := analyticWorlds(t)
	b := analyticWorlds(t)
	for name := range a {
		a[name].RunTicks(goldenTicks)
		b[name].RunTicks(goldenTicks)
		if fa, fb := fingerprint(a[name]), fingerprint(b[name]); fa != fb {
			t.Errorf("%s: analytic runs with the same seed diverged: %s vs %s", name, fa, fb)
		}
	}
}

// TestAnalyticCountersSane checks the bulk updates preserve execStep's
// counter invariants: the miss waterfall is monotone, memory traffic
// splits misses, and IPC lands in a physical range.
func TestAnalyticCountersSane(t *testing.T) {
	for name, w := range analyticWorlds(t) {
		w.RunTicks(goldenTicks)
		for _, v := range w.VCPUs() {
			c := v.Counters
			if c.Instructions == 0 || c.UnhaltedCycles == 0 {
				t.Fatalf("%s: vCPU %d retired nothing on the analytic tier", name, v.ID)
			}
			if c.L1Misses > c.Accesses || c.L2Misses > c.L1Misses || c.LLCMisses > c.L2Misses {
				t.Errorf("%s: vCPU %d miss waterfall not monotone: %+v", name, v.ID, c)
			}
			if c.LLCReferences != c.L2Misses {
				t.Errorf("%s: vCPU %d LLCReferences %d != L2Misses %d", name, v.ID, c.LLCReferences, c.L2Misses)
			}
			if rw := c.MemReads + c.MemWrites; rw > c.LLCMisses+2 || rw+2 < c.LLCMisses {
				t.Errorf("%s: vCPU %d memory traffic %d does not split LLC misses %d", name, v.ID, rw, c.LLCMisses)
			}
			if ipc := c.IPC(); ipc <= 0 || ipc > 2 {
				t.Errorf("%s: vCPU %d IPC %.3f outside (0,2]", name, v.ID, ipc)
			}
			if f := w.LLCOccupancyFraction(v); f < 0 || f > 1 {
				t.Errorf("%s: vCPU %d occupancy fraction %.3f outside [0,1]", name, v.ID, f)
			}
		}
		// Occupancies share one cache: their sum cannot exceed it.
		var total float64
		for _, v := range w.VCPUs() {
			total += w.LLCOccupancyFraction(v)
		}
		if total > 1.0001 {
			t.Errorf("%s: occupancy fractions sum to %.4f > 1", name, total)
		}
	}
}

// TestAnalyticContentionOrdering: the analytic tier must reproduce the
// paper's first-order effect — a cache-sensitive VM runs slower against
// a polluter than solo.
func TestAnalyticContentionOrdering(t *testing.T) {
	ws := analyticWorlds(t)
	solo, pair := ws["solo-gcc"], ws["gcc-lbm-contention"]
	solo.RunTicks(goldenTicks)
	pair.RunTicks(goldenTicks)
	soloIPC := solo.FindVM("solo").Counters().IPC()
	contIPC := pair.FindVM("victim").Counters().IPC()
	if contIPC >= soloIPC {
		t.Errorf("analytic tier shows no contention: solo gcc IPC %.3f vs contended %.3f", soloIPC, contIPC)
	}
}

// TestAnalyticRemoveVMReleasesState: departures must release occupancy
// and owner tags on the analytic tier exactly as on the exact tier.
func TestAnalyticRemoveVMReleasesState(t *testing.T) {
	w, err := hv.New(hv.Config{
		Machine:  machine.TableOne(goldenSeed),
		Seed:     goldenSeed,
		Fidelity: cache.FidelityAnalytic,
	}, sched.NewCredit(4))
	if err != nil {
		t.Fatal(err)
	}
	domain, err := w.AddVM(vm.Spec{Name: "tenant", App: "lbm", Pins: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	w.RunTicks(12)
	v := domain.VCPUs[0]
	if w.LLCOccupancyFraction(v) == 0 {
		t.Fatal("lbm built no analytic occupancy in 12 ticks")
	}
	owner := v.Owner()
	if err := w.RemoveVM("tenant"); err != nil {
		t.Fatal(err)
	}
	if got := w.AnalyticLLC(0).OccupancyLines(owner); got != 0 {
		t.Fatalf("departed owner still holds %.1f analytic lines", got)
	}
}

// BenchmarkWorldTickAnalytic is BenchmarkWorldTick on the analytic tier:
// the same three scenarios, the same warmup, the same Mcycles/s metric,
// so the analytic-vs-exact ratio in BENCH_kyoto.json compares like with
// like. The tick path must stay allocation-free here too.
func BenchmarkWorldTickAnalytic(b *testing.B) {
	for _, bc := range []struct {
		name  string
		build func(testing.TB) *hv.World
	}{
		{"credit", func(t testing.TB) *hv.World {
			return analyticWorlds(t)["gcc-lbm-contention"]
		}},
		{"credit-4vm", func(t testing.TB) *hv.World {
			w, err := hv.New(hv.Config{
				Machine:  machine.TableOne(goldenSeed),
				Seed:     goldenSeed,
				Fidelity: cache.FidelityAnalytic,
			}, sched.NewCredit(4))
			if err != nil {
				t.Fatal(err)
			}
			for i, app := range []string{"gcc", "lbm", "omnetpp", "blockie"} {
				if _, err := w.AddVM(vm.Spec{Name: fmt.Sprintf("vm%d", i), App: app, Pins: []int{i}}); err != nil {
					t.Fatal(err)
				}
			}
			return w
		}},
		{"kyoto-4vm", func(t testing.TB) *hv.World {
			return analyticWorlds(t)["kyoto-admission-4vm"]
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w := bc.build(b)
			w.RunTicks(12)
			b.ReportAllocs()
			b.ResetTimer()
			w.RunTicks(b.N)
			b.StopTimer()
			b.ReportMetric(float64(w.CyclesPerTick())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
		})
	}
}
