package pmc

import (
	"testing"
	"testing/quick"
)

func TestAddAndDelta(t *testing.T) {
	var a Counters
	a.Add(Counters{Instructions: 10, UnhaltedCycles: 20, LLCMisses: 3})
	a.Add(Counters{Instructions: 5, HaltedCycles: 7, LLCMisses: 1})
	if a.Instructions != 15 || a.UnhaltedCycles != 20 || a.HaltedCycles != 7 || a.LLCMisses != 4 {
		t.Fatalf("add wrong: %+v", a)
	}
	d := a.Delta(Counters{Instructions: 10, LLCMisses: 3})
	if d.Instructions != 5 || d.LLCMisses != 1 || d.UnhaltedCycles != 20 {
		t.Fatalf("delta wrong: %+v", d)
	}
}

func TestWallCycles(t *testing.T) {
	c := Counters{UnhaltedCycles: 70, HaltedCycles: 30}
	if c.WallCycles() != 100 {
		t.Fatalf("wall = %d", c.WallCycles())
	}
}

func TestIPC(t *testing.T) {
	if (Counters{}).IPC() != 0 {
		t.Fatal("zero cycles must give IPC 0")
	}
	c := Counters{Instructions: 50, UnhaltedCycles: 100}
	if c.IPC() != 0.5 {
		t.Fatalf("IPC = %v", c.IPC())
	}
}

func TestMPKI(t *testing.T) {
	if (Counters{}).MissesPerKiloInstr() != 0 {
		t.Fatal("zero instructions must give MPKI 0")
	}
	c := Counters{Instructions: 2000, LLCMisses: 4}
	if c.MissesPerKiloInstr() != 2 {
		t.Fatalf("MPKI = %v", c.MissesPerKiloInstr())
	}
}

func TestSampler(t *testing.T) {
	var src Counters
	s := NewSampler(&src)
	src.Add(Counters{Instructions: 100, LLCMisses: 5})
	if d := s.Peek(); d.Instructions != 100 {
		t.Fatalf("peek = %+v", d)
	}
	if d := s.Sample(); d.Instructions != 100 || d.LLCMisses != 5 {
		t.Fatalf("first sample = %+v", d)
	}
	src.Add(Counters{Instructions: 50})
	if d := s.Sample(); d.Instructions != 50 || d.LLCMisses != 0 {
		t.Fatalf("second sample = %+v", d)
	}
	if d := s.Sample(); d != (Counters{}) {
		t.Fatalf("idle sample = %+v, want zero", d)
	}
}

// Property: Delta inverts Add for monotonic counters.
func TestQuickAddDeltaInverse(t *testing.T) {
	f := func(a, b Counters) bool {
		sum := a
		sum.Add(b)
		return sum.Delta(a) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: samples over a sequence of increments sum to the total.
func TestQuickSamplerConservation(t *testing.T) {
	f := func(incs []uint32) bool {
		var src Counters
		s := NewSampler(&src)
		var sampled, total uint64
		for _, inc := range incs {
			src.Add(Counters{Instructions: uint64(inc)})
			total += uint64(inc)
			sampled += s.Sample().Instructions
		}
		return sampled == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldFingerprint(t *testing.T) {
	a := Counters{Instructions: 1, LLCMisses: 2}
	b := Counters{Instructions: 1, LLCMisses: 2}
	if a.Fold(FoldSeed) != b.Fold(FoldSeed) {
		t.Fatal("equal counters must fold to equal hashes")
	}
	c := Counters{Instructions: 2, LLCMisses: 1}
	if a.Fold(FoldSeed) == c.Fold(FoldSeed) {
		t.Fatal("field swap must change the fold (fields are position-sensitive)")
	}
	if a.Fold(FoldSeed) == (Counters{}).Fold(FoldSeed) {
		t.Fatal("non-zero counters must not collide with the zero block")
	}
	// Chaining is order-sensitive: fold(a, then c) != fold(c, then a).
	if c.Fold(a.Fold(FoldSeed)) == a.Fold(c.Fold(FoldSeed)) {
		t.Fatal("fold chains must be order-sensitive")
	}
}
