// Package pmc models the hardware performance-monitoring counters that
// Kyoto reads (the paper gathers them through a modified perfctr-xen,
// §2.2.3). Each vCPU owns one Counters block that the execution engine
// increments; monitors read deltas over sampling windows exactly as the
// real system reads MSR deltas.
package pmc

// Counters is one vCPU's cumulative counter block.
//
// The paper's Equation 1 uses LLCMisses and UnhaltedCycles; the remaining
// counters support the evaluation harness (IPC, miss ratios, timelines).
type Counters struct {
	// Instructions retired.
	Instructions uint64
	// UnhaltedCycles counts cycles the core spent non-halted while this
	// vCPU was scheduled — the paper's UNHALTED_CORE_CYCLES.
	UnhaltedCycles uint64
	// HaltedCycles counts scheduled wall cycles during which the core was
	// halted (the workload was idling). Wall occupancy of the pCPU is
	// UnhaltedCycles + HaltedCycles.
	HaltedCycles uint64
	// L1Misses, L2Misses count data misses at the private levels.
	L1Misses uint64
	L2Misses uint64
	// LLCReferences counts accesses that reached the LLC (missed L2).
	LLCReferences uint64
	// LLCMisses counts accesses that missed the LLC — the paper's
	// LLC_MISSES counter feeding Equation 1.
	LLCMisses uint64
	// MemReads and MemWrites split LLC misses by direction.
	MemReads  uint64
	MemWrites uint64
	// RemoteAccesses counts memory accesses served by a remote NUMA node.
	RemoteAccesses uint64
	// Accesses counts all data accesses issued.
	Accesses uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Instructions += other.Instructions
	c.UnhaltedCycles += other.UnhaltedCycles
	c.HaltedCycles += other.HaltedCycles
	c.L1Misses += other.L1Misses
	c.L2Misses += other.L2Misses
	c.LLCReferences += other.LLCReferences
	c.LLCMisses += other.LLCMisses
	c.MemReads += other.MemReads
	c.MemWrites += other.MemWrites
	c.RemoteAccesses += other.RemoteAccesses
	c.Accesses += other.Accesses
}

// Delta returns c - earlier, field-wise. Counters are monotonic, so the
// result is well-defined when earlier is a previous snapshot of c.
func (c Counters) Delta(earlier Counters) Counters {
	return Counters{
		Instructions:   c.Instructions - earlier.Instructions,
		UnhaltedCycles: c.UnhaltedCycles - earlier.UnhaltedCycles,
		HaltedCycles:   c.HaltedCycles - earlier.HaltedCycles,
		L1Misses:       c.L1Misses - earlier.L1Misses,
		L2Misses:       c.L2Misses - earlier.L2Misses,
		LLCReferences:  c.LLCReferences - earlier.LLCReferences,
		LLCMisses:      c.LLCMisses - earlier.LLCMisses,
		MemReads:       c.MemReads - earlier.MemReads,
		MemWrites:      c.MemWrites - earlier.MemWrites,
		RemoteAccesses: c.RemoteAccesses - earlier.RemoteAccesses,
		Accesses:       c.Accesses - earlier.Accesses,
	}
}

// WallCycles returns the pCPU wall cycles this counter block accounts for
// (busy plus halted occupancy).
func (c Counters) WallCycles() uint64 { return c.UnhaltedCycles + c.HaltedCycles }

// FoldSeed is the canonical starting value for Fold chains (the FNV-1a
// 64-bit offset basis).
const FoldSeed uint64 = 14695981039346656037

// foldPrime is the FNV-1a 64-bit prime.
const foldPrime uint64 = 1099511628211

// Fold mixes every field of c into a running FNV-style hash and returns
// the new hash. Folding the counters of all vCPUs of a run (in vCPU-id
// order, starting from FoldSeed) yields a stable fingerprint of the whole
// simulation — the golden determinism tests pin these fingerprints so that
// hot-path refactors can prove they are bit-identical.
func (c Counters) Fold(h uint64) uint64 {
	for _, f := range [...]uint64{
		c.Instructions,
		c.UnhaltedCycles,
		c.HaltedCycles,
		c.L1Misses,
		c.L2Misses,
		c.LLCReferences,
		c.LLCMisses,
		c.MemReads,
		c.MemWrites,
		c.RemoteAccesses,
		c.Accesses,
	} {
		h = FoldUint64(h, f)
	}
	return h
}

// FoldUint64 mixes one extra 64-bit value into a Fold chain. Fingerprints
// that cover more than raw counters (placement metadata in fleet churn
// goldens) use it to keep the whole fingerprint in one hash family.
func FoldUint64(h, v uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (v >> i & 0xff)) * foldPrime
	}
	return h
}

// IPC returns instructions per unhalted cycle — the paper's §2.2.3
// performance metric. Zero cycles yields 0.
func (c Counters) IPC() float64 {
	if c.UnhaltedCycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.UnhaltedCycles)
}

// MissesPerKiloInstr returns LLC misses per 1000 instructions (MPKI).
func (c Counters) MissesPerKiloInstr() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.LLCMisses) / float64(c.Instructions)
}

// Sampler takes periodic snapshots of a Counters block and exposes the
// delta since the previous snapshot, which is how perfctr-xen-style
// monitoring consumes counters.
type Sampler struct {
	src  *Counters
	last Counters
}

// NewSampler starts a sampler over src; the first Sample covers everything
// accumulated so far.
func NewSampler(src *Counters) *Sampler {
	return &Sampler{src: src}
}

// Sample returns the counter delta since the previous Sample (or since
// NewSampler) and advances the snapshot.
func (s *Sampler) Sample() Counters {
	cur := *s.src
	d := cur.Delta(s.last)
	s.last = cur
	return d
}

// Peek returns the delta since the previous Sample without advancing.
func (s *Sampler) Peek() Counters {
	return s.src.Delta(s.last)
}

// Last returns the snapshot taken by the previous Sample (zero before the
// first). Checkpoint/restore captures it so a restored sampler's next
// Sample covers exactly the same window the original's would have.
func (s *Sampler) Last() Counters { return s.last }

// SetLast overwrites the previous-Sample snapshot.
func (s *Sampler) SetLast(c Counters) { s.last = c }
