package monitor

import (
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/mcsim"
	"kyoto/internal/pmc"
	"kyoto/internal/trace"
	"kyoto/internal/vm"
)

// DefaultRingCapacity bounds per-vCPU trace windows; heavier windows are
// extrapolated from the retained sample.
const DefaultRingCapacity = 16384

// ShadowSim is the McSimA+-based monitor (§3.3): each vCPU's accesses are
// captured by a Pin-substitute tracer and replayed every tick on a private
// replica of the cache hierarchy, producing contention-free llc_cap_act
// estimates. Placement is never perturbed, so the Figure 9 migration
// penalty does not apply — this is exactly why the paper built the second
// strategy.
type ShadowSim struct {
	feeder  Feeder
	mcfg    machine.Config
	ringCap int

	rings     map[*vm.VCPU]*trace.Ring
	replayers map[*vm.VCPU]*mcsim.Replayer
	samplers  map[*vm.VCPU]*pmc.Sampler

	// Cumulative totals per VM (replayed misses over real unhalted
	// cycles): the estimate converges over the VM's whole (scheduled)
	// history instead of echoing whichever phase ran in the last tick.
	missTotal  map[*vm.VM]float64
	cycleTotal map[*vm.VM]float64

	// LastRate exposes the current per-VM estimate for recorders.
	LastRate map[*vm.VM]float64
}

var _ hv.TickHook = (*ShadowSim)(nil)
var _ hv.VMRemovalHook = (*ShadowSim)(nil)

// NewShadowSim returns a shadow-simulator monitor feeding f (may be nil).
// mcfg describes the hardware the replayer models (normally the same
// config the world runs on). ringCap <= 0 selects DefaultRingCapacity.
func NewShadowSim(f Feeder, mcfg machine.Config, ringCap int) *ShadowSim {
	if ringCap <= 0 {
		ringCap = DefaultRingCapacity
	}
	return &ShadowSim{
		feeder:     f,
		mcfg:       mcfg,
		ringCap:    ringCap,
		rings:      make(map[*vm.VCPU]*trace.Ring),
		replayers:  make(map[*vm.VCPU]*mcsim.Replayer),
		samplers:   make(map[*vm.VCPU]*pmc.Sampler),
		missTotal:  make(map[*vm.VM]float64),
		cycleTotal: make(map[*vm.VM]float64),
		LastRate:   make(map[*vm.VM]float64),
	}
}

// attach lazily instruments a vCPU with a trace ring and replayer.
func (s *ShadowSim) attach(v *vm.VCPU) (*trace.Ring, *mcsim.Replayer, error) {
	ring, ok := s.rings[v]
	if !ok {
		ring = trace.NewRing(s.ringCap)
		s.rings[v] = ring
		v.Ctx.Tracer = ring
	}
	rep, ok := s.replayers[v]
	if !ok {
		var err error
		rep, err = mcsim.NewReplayer(s.mcfg)
		if err != nil {
			return nil, nil, err
		}
		s.replayers[v] = rep
	}
	return ring, rep, nil
}

// OnTick implements hv.TickHook: drain and replay every vCPU's window.
func (s *ShadowSim) OnTick(w *hv.World) {
	ms := make([]core.Measurement, 0, len(w.VMs()))
	for _, domain := range w.VMs() {
		var misses, cycles float64
		for _, v := range domain.VCPUs {
			ring, rep, err := s.attach(v)
			if err != nil {
				// Replayer construction fails only on invalid machine
				// configs, which the World already validated; skip VM.
				continue
			}
			sampler, ok := s.samplers[v]
			if !ok {
				sampler = pmc.NewSampler(&v.Counters)
				s.samplers[v] = sampler
			}
			delta := sampler.Sample()
			events, total := ring.Drain()
			res := rep.Replay(events, total)
			misses += float64(res.LLCMisses)
			// The replay supplies clean miss counts; the busy-time
			// denominator comes from the real PMCs because compute-only
			// phases emit no trace events at all.
			cycles += float64(delta.UnhaltedCycles)
		}
		s.missTotal[domain] += misses
		s.cycleTotal[domain] += cycles
		rate := 0.0
		if s.cycleTotal[domain] > 0 {
			rate = s.missTotal[domain] * float64(machine.CPUFreqKHz) / s.cycleTotal[domain]
		}
		s.LastRate[domain] = rate
		ms = append(ms, core.Measurement{VM: domain, Misses: misses, Rate: rate})
	}
	if s.feeder != nil {
		s.feeder.Feed(ms)
	}
}

// OnRemoveVM implements hv.VMRemovalHook: release the departed VM's trace
// rings, replayers, samplers and running totals.
func (s *ShadowSim) OnRemoveVM(domain *vm.VM) {
	for _, v := range domain.VCPUs {
		delete(s.rings, v)
		delete(s.replayers, v)
		delete(s.samplers, v)
	}
	delete(s.missTotal, domain)
	delete(s.cycleTotal, domain)
	delete(s.LastRate, domain)
}
