package monitor

import (
	"math"
	"testing"

	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// mkWorld builds a world with the given scheduler.
func mkWorld(t *testing.T, mcfg machine.Config, s sched.Scheduler) *hv.World {
	t.Helper()
	w, err := hv.New(hv.Config{Machine: mcfg, Seed: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// feederFunc adapts a function to Feeder.
type feederFunc func([]core.Measurement)

func (f feederFunc) Feed(ms []core.Measurement) { f(ms) }

func TestOracleMeasuresExactMisses(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1), sched.NewCredit(4))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}})
	var fed []core.Measurement
	o := NewOracle(feederFunc(func(ms []core.Measurement) { fed = append(fed, ms...) }), core.Equation1)
	w.AddHook(o)
	w.RunTicks(10)

	var sum float64
	for _, m := range fed {
		if m.VM != d {
			t.Fatal("measurement for unknown VM")
		}
		sum += m.Misses
	}
	if got := float64(d.Counters().LLCMisses); math.Abs(got-sum) > 0.5 {
		t.Fatalf("oracle fed %v misses, counters say %v", sum, got)
	}
	if o.LastRate[d] <= 0 {
		t.Fatal("lbm must show a positive pollution rate")
	}
}

func TestOracleNilFeeder(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1), sched.NewCredit(4))
	w.MustAddVM(vm.Spec{Name: "v", App: "povray", Pins: []int{0}})
	o := NewOracle(nil, core.Equation1)
	w.AddHook(o)
	w.RunTicks(3) // must not panic
}

func TestOracleWithKyotoEnforces(t *testing.T) {
	k := core.New(sched.NewCredit(4))
	w := mkWorld(t, machine.TableOne(1), k)
	sen := w.MustAddVM(vm.Spec{Name: "sen", App: "gcc", Pins: []int{0}, LLCCap: 250})
	dis := w.MustAddVM(vm.Spec{Name: "dis", App: "lbm", Pins: []int{1}, LLCCap: 250})
	w.AddHook(NewOracle(k, core.Equation1))
	w.RunTicks(60)
	if dis.Punishments == 0 {
		t.Fatal("over-permit disruptor must be punished")
	}
	if sen.Punishments > dis.Punishments/4 {
		t.Fatalf("sensitive VM punished too much: %d vs %d", sen.Punishments, dis.Punishments)
	}
	// Enforcement means the disruptor lost CPU time.
	if dis.Counters().WallCycles() >= sen.Counters().WallCycles() {
		t.Fatal("punished VM must consume less CPU than the compliant one")
	}
}

func TestShadowSimTracksOracle(t *testing.T) {
	mcfg := machine.TableOne(1)
	w := mkWorld(t, mcfg, sched.NewCredit(4))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}})
	sh := NewShadowSim(nil, mcfg, 0)
	or := NewOracle(nil, core.Equation1)
	w.AddHook(sh)
	w.AddHook(or)
	w.RunTicks(30)
	shadow, oracle := sh.LastRate[d], or.LastRate[d]
	if oracle <= 0 || shadow <= 0 {
		t.Fatalf("rates: shadow %v oracle %v", shadow, oracle)
	}
	if rel := math.Abs(shadow-oracle) / oracle; rel > 0.25 {
		t.Fatalf("shadow estimate off by %.0f%% (shadow %v, oracle %v)", rel*100, shadow, oracle)
	}
}

func TestShadowSimSmallRingStillEstimates(t *testing.T) {
	mcfg := machine.TableOne(1)
	w := mkWorld(t, mcfg, sched.NewCredit(4))
	d := w.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}})
	sh := NewShadowSim(nil, mcfg, 512) // far smaller than per-tick access counts
	w.AddHook(sh)
	w.RunTicks(20)
	if sh.LastRate[d] <= 0 {
		t.Fatal("overflowed ring must still extrapolate a rate")
	}
}

func TestDedicationCleanMeasurement(t *testing.T) {
	mcfg := machine.R420(1)
	// Solo reference.
	solo := mkWorld(t, mcfg, sched.NewCredit(8))
	sd := solo.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}})
	solo.RunTicks(30)
	ref := core.Equation1Value(sd.Counters())

	// Contended, with dedication windows.
	w := mkWorld(t, mcfg, sched.NewCredit(8))
	target := w.MustAddVM(vm.Spec{Name: "lbm", App: "lbm", Pins: []int{0}})
	w.MustAddVM(vm.Spec{Name: "noisy", App: "mcf", Pins: []int{1}})
	ded := NewDedication(nil, core.Equation1)
	w.AddHook(ded)
	w.RunTicks(60)

	got := ded.LastRate[target]
	if got <= 0 {
		t.Fatal("no dedicated measurement produced")
	}
	if rel := math.Abs(got-ref) / ref; rel > 0.1 {
		t.Fatalf("dedicated rate %v deviates %.0f%% from solo %v", got, rel*100, ref)
	}
	if ded.Migrations == 0 {
		t.Fatal("dedication must have migrated co-runners")
	}
}

func TestDedicationRestoresPins(t *testing.T) {
	mcfg := machine.R420(1)
	w := mkWorld(t, mcfg, sched.NewCredit(8))
	a := w.MustAddVM(vm.Spec{Name: "a", App: "lbm", Pins: []int{0}})
	b := w.MustAddVM(vm.Spec{Name: "b", App: "mcf", Pins: []int{1}})
	ded := NewDedication(nil, core.Equation1)
	ded.WindowTicks = 2
	w.AddHook(ded)
	// Run full rotations: after any complete window, pins are restored.
	w.RunTicks(2 * (2 + 1 + 2))
	// Let the current window (if any) finish.
	for i := 0; i < 10 && dedMeasuring(ded); i++ {
		w.RunTicks(1)
	}
	if a.VCPUs[0].Pin != 0 || b.VCPUs[0].Pin != 1 {
		t.Fatalf("pins not restored: a=%d b=%d", a.VCPUs[0].Pin, b.VCPUs[0].Pin)
	}
}

// dedMeasuring reports whether a window is in flight (via String to avoid
// exporting internals).
func dedMeasuring(d *Dedication) bool {
	return d.String() != "" && !contains(d.String(), "measuring=idle")
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestDedicationSkipHeuristics(t *testing.T) {
	mcfg := machine.R420(1)
	w := mkWorld(t, mcfg, sched.NewCredit(8))
	w.MustAddVM(vm.Spec{Name: "quiet", App: "hmmer", Pins: []int{0}})
	w.MustAddVM(vm.Spec{Name: "noisy", App: "lbm", Pins: []int{1}})
	ded := NewDedication(nil, core.Equation1)
	ded.LowThreshold = 50
	w.AddHook(ded)
	w.RunTicks(40)
	if ded.SkippedWindows == 0 {
		t.Fatal("hmmer windows must be served in place (heuristic 1)")
	}
}

func TestDedicationAllQuietSkipsEveryone(t *testing.T) {
	mcfg := machine.R420(1)
	w := mkWorld(t, mcfg, sched.NewCredit(8))
	w.MustAddVM(vm.Spec{Name: "q1", App: "hmmer", Pins: []int{0}})
	w.MustAddVM(vm.Spec{Name: "q2", App: "povray", Pins: []int{1}})
	ded := NewDedication(nil, core.Equation1)
	ded.LowThreshold = 50
	w.AddHook(ded)
	w.RunTicks(40)
	if ded.Migrations != 0 {
		t.Fatalf("all-quiet host performed %d migrations", ded.Migrations)
	}
}

func TestDedicationPanicsOnSingleSocket(t *testing.T) {
	w := mkWorld(t, machine.TableOne(1), sched.NewCredit(4))
	w.MustAddVM(vm.Spec{Name: "v", App: "lbm", Pins: []int{0}})
	w.AddHook(NewDedication(nil, core.Equation1))
	defer func() {
		if recover() == nil {
			t.Fatal("single-socket dedication must panic")
		}
	}()
	w.RunTicks(1)
}
