package monitor

import (
	"fmt"

	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// Dedication is the socket-dedication monitor (§3.3, first strategy): to
// measure one VM's llc_cap_act, every co-located vCPU is migrated to the
// other socket for the sampling window, so the measured vCPU's per-core
// PMCs reflect an uncontended LLC. VMs are measured round-robin, one
// sampling window each.
//
// The migrated vCPUs keep their memory on their home node, so they pay
// remote-access latency for the duration (Figure 9's overhead), and they
// return with cold private caches. Two skip heuristics (§4.5, Figure 10)
// avoid the migration when it cannot change the result:
//
//  1. a vCPU whose recent miss rate is below LowThreshold is measured in
//     place (it is neither a disturber nor sensitive), and
//  2. a vCPU whose co-runners all have miss rates below LowThreshold is
//     measured in place (nobody is inflating its counters).
type Dedication struct {
	feeder Feeder
	ind    core.Indicator
	// WindowTicks is the sampling window per VM (default 3, one slice).
	WindowTicks int
	// SettleTicks discards the first ticks of each window (default 1):
	// the measured VM is reloading the footprint its co-runners evicted,
	// which would bias the clean estimate upward.
	SettleTicks int
	// LowThreshold is the misses-per-ms rate under which the skip
	// heuristics apply; <=0 disables skipping.
	LowThreshold float64

	samplers map[*vm.VCPU]*pmc.Sampler

	// rotation state
	order     []*vm.VM
	idx       int
	measuring *vm.VM
	inPlace   bool // current window measured without migration
	phase     int
	savedPins map[*vm.VCPU]int
	windowAcc pmc.Counters

	// LastRate is the most recent clean estimate per VM.
	LastRate map[*vm.VM]float64
	// rawRate tracks every VM's latest in-place rate (heuristic input).
	rawRate map[*vm.VM]float64
	// Migrations counts vCPU migrations performed (overhead metric).
	Migrations uint64
	// SkippedWindows counts sampling windows served in place.
	SkippedWindows uint64
}

var _ hv.TickHook = (*Dedication)(nil)

// NewDedication returns a socket-dedication monitor feeding f (may be
// nil). It requires a multi-socket world; OnTick validates lazily and
// panics on a single-socket machine, since that is a static experiment
// misconfiguration.
func NewDedication(f Feeder, ind core.Indicator) *Dedication {
	return &Dedication{
		feeder:      f,
		ind:         ind,
		WindowTicks: 3,
		SettleTicks: 1,
		samplers:    make(map[*vm.VCPU]*pmc.Sampler),
		savedPins:   make(map[*vm.VCPU]int),
		LastRate:    make(map[*vm.VM]float64),
		rawRate:     make(map[*vm.VM]float64),
	}
}

// OnTick implements hv.TickHook.
func (d *Dedication) OnTick(w *hv.World) {
	if w.Machine().NumSockets() < 2 {
		panic("monitor: socket dedication requires a multi-socket machine (use machine.R420)")
	}
	if len(d.order) != len(w.VMs()) {
		d.order = append([]*vm.VM(nil), w.VMs()...)
	}

	// Sample everyone; update raw in-place rates.
	deltas := make(map[*vm.VM]pmc.Counters, len(d.order))
	for _, domain := range d.order {
		var delta pmc.Counters
		for _, v := range domain.VCPUs {
			s, ok := d.samplers[v]
			if !ok {
				s = pmc.NewSampler(&v.Counters)
				d.samplers[v] = s
			}
			delta.Add(s.Sample())
		}
		deltas[domain] = delta
		d.rawRate[domain] = d.ind.Value(delta)
	}

	// Advance the measurement window. The settle ticks let the measured
	// VM re-establish its footprint before counting.
	if d.measuring != nil {
		if d.phase >= d.SettleTicks {
			d.windowAcc.Add(deltas[d.measuring])
		}
		d.phase++
		if d.phase >= d.SettleTicks+d.WindowTicks {
			d.finishWindow(w)
		}
	} else {
		d.startWindow(w)
	}

	// Feed: debit each VM by its busy time at the last clean rate.
	if d.feeder != nil {
		ms := make([]core.Measurement, 0, len(d.order))
		for _, domain := range d.order {
			rate, ok := d.LastRate[domain]
			if !ok {
				// Not yet measured: fall back to the raw rate so new
				// polluters cannot free-ride until their first window.
				rate = d.rawRate[domain]
			}
			busyMs := core.BusyMillis(deltas[domain])
			ms = append(ms, core.Measurement{
				VM:     domain,
				Misses: rate * busyMs,
				Rate:   rate,
			})
		}
		d.feeder.Feed(ms)
	}
}

// startWindow begins measuring the next VM in rotation.
func (d *Dedication) startWindow(w *hv.World) {
	if len(d.order) == 0 {
		return
	}
	domain := d.order[d.idx%len(d.order)]
	d.idx++
	d.measuring = domain
	d.phase = 0
	d.windowAcc = pmc.Counters{}

	if d.skipIsolation(domain) {
		d.inPlace = true
		d.SkippedWindows++
		return
	}
	d.inPlace = false
	d.migrateOthersAway(w, domain)
}

// skipIsolation applies the §4.5 heuristics.
func (d *Dedication) skipIsolation(domain *vm.VM) bool {
	if d.LowThreshold <= 0 {
		return false
	}
	// Heuristic 1: the VM itself is quiet.
	if d.rawRate[domain] < d.LowThreshold {
		return true
	}
	// Heuristic 2: all co-runners are quiet.
	for _, other := range d.order {
		if other != domain && d.rawRate[other] >= d.LowThreshold {
			return false
		}
	}
	return true
}

// migrateOthersAway pins every other VM's vCPUs to cores of a different
// socket than the measured VM's home NUMA node, and the measured VM to its
// home socket — measuring with remote memory would systematically bias
// llc_cap_act (every miss would pay the remote penalty).
func (d *Dedication) migrateOthersAway(w *hv.World, domain *vm.VM) {
	m := w.Machine()
	homeSocket := domain.HomeNode
	if homeSocket < 0 || homeSocket >= m.NumSockets() {
		homeSocket = 0
	}
	awaySocket := (homeSocket + 1) % m.NumSockets()
	away := m.Socket(awaySocket).Cores
	home := m.Socket(homeSocket).Cores

	// Hold the measured VM on its home socket, keeping cache affinity
	// when its last core is already there.
	for i, v := range domain.VCPUs {
		d.savedPins[v] = v.Pin
		core0 := v.LastCore
		if core0 == vm.NoPin || m.Core(core0).SocketID != homeSocket {
			core0 = home[i%len(home)].ID
		}
		v.Pin = core0
	}
	// Exile everyone else.
	i := 0
	for _, other := range d.order {
		if other == domain {
			continue
		}
		for _, v := range other.VCPUs {
			d.savedPins[v] = v.Pin
			v.Pin = away[i%len(away)].ID
			d.Migrations++
			i++
		}
	}
}

// finishWindow computes the clean rate and restores placement.
func (d *Dedication) finishWindow(w *hv.World) {
	domain := d.measuring
	d.LastRate[domain] = d.ind.Value(d.windowAcc)
	d.measuring = nil
	if !d.inPlace {
		for v, pin := range d.savedPins {
			v.Pin = pin
			delete(d.savedPins, v)
			d.Migrations++
		}
	}
}

// String describes the monitor's state for debugging.
func (d *Dedication) String() string {
	name := "idle"
	if d.measuring != nil {
		name = d.measuring.Name
	}
	return fmt.Sprintf("dedication{measuring=%s phase=%d migrations=%d skipped=%d}",
		name, d.phase, d.Migrations, d.SkippedWindows)
}
