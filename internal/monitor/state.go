package monitor

// Oracle checkpoint support. The monitor's only replay-relevant state is
// each sampler's previous-Sample snapshot: a restored sampler must see
// exactly the counter delta the original's next Sample would have seen,
// or every Equation-1 measurement after the restore point diverges.
// LastRate/LastDelta are reporting surfaces rebuilt by the next OnTick
// and deliberately not captured.

import (
	"fmt"

	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// CaptureState returns each vCPU's sampler snapshot, in the order of the
// given vCPUs (the world's vCPU order). vCPUs the oracle has not sampled
// yet report zero counters, which restores to the same first-Sample
// behaviour a fresh sampler has.
func (o *Oracle) CaptureState(vcpus []*vm.VCPU) []pmc.Counters {
	lasts := make([]pmc.Counters, len(vcpus))
	for i, v := range vcpus {
		if s, ok := o.samplers[v]; ok {
			lasts[i] = s.Last()
		}
	}
	return lasts
}

// RestoreState primes the oracle's samplers for the given vCPUs with
// captured snapshots, positionally matched to CaptureState's order.
func (o *Oracle) RestoreState(vcpus []*vm.VCPU, lasts []pmc.Counters) error {
	if len(lasts) != len(vcpus) {
		return fmt.Errorf("monitor: oracle state has %d samplers, world has %d vCPUs", len(lasts), len(vcpus))
	}
	for i, v := range vcpus {
		s := pmc.NewSampler(&v.Counters)
		s.SetLast(lasts[i])
		o.samplers[v] = s
	}
	return nil
}
