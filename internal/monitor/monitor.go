// Package monitor implements the llc_cap_act identification strategies of
// §3.3 as testbed tick hooks that feed Measurements to the Kyoto
// scheduler:
//
//   - Oracle: reads the simulator's exact per-vCPU counters. This is the
//     in-place PMC reading a per-core counter gives on real hardware —
//     exact attribution of the VM's own misses, but inflated by whatever
//     contention the co-runners inflict.
//   - ShadowSim: the McSimA+ strategy — capture each vCPU's access trace
//     (the Pin substitute) and replay it on a dedicated cache model,
//     yielding contention-free estimates without perturbing placement.
//   - Dedication: the socket-dedication strategy — migrate co-located
//     vCPUs to the other socket for the sampling window so the measured
//     VM has the LLC to itself; pays the migration/NUMA cost Figure 9
//     quantifies, avoidable in the Figure 10 situations via skip
//     heuristics.
package monitor

import (
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// Feeder receives per-tick measurements; *core.Kyoto implements it. A nil
// Feeder is allowed: the monitor then only records, which is how the
// characterization experiments (Figs 9-11) use monitors without
// enforcement.
//
// The slice is only valid for the duration of the call: monitors reuse
// their measurement buffer across ticks, so an implementation that wants
// to retain measurements must copy them out (as core.Kyoto does).
type Feeder interface {
	Feed([]core.Measurement)
}

// Oracle measures every VM's pollution from its exact per-vCPU counters.
type Oracle struct {
	feeder    Feeder
	indicator core.Indicator
	samplers  map[*vm.VCPU]*pmc.Sampler
	scratch   []core.Measurement // per-tick buffer, reused (Feed copies)

	// LastRate and LastDelta expose the most recent per-VM observations
	// for recorders (Figs 2 and 5 timelines read these).
	LastRate  map[*vm.VM]float64
	LastDelta map[*vm.VM]pmc.Counters
}

var _ hv.TickHook = (*Oracle)(nil)
var _ hv.VMRemovalHook = (*Oracle)(nil)

// NewOracle returns an oracle monitor feeding f (which may be nil) using
// the given indicator.
func NewOracle(f Feeder, indicator core.Indicator) *Oracle {
	return &Oracle{
		feeder:    f,
		indicator: indicator,
		samplers:  make(map[*vm.VCPU]*pmc.Sampler),
		LastRate:  make(map[*vm.VM]float64),
		LastDelta: make(map[*vm.VM]pmc.Counters),
	}
}

// IdleTickInvariant implements sched.IdleTickInvariant: with no VMs in
// the world, OnTick samples nothing, leaves every map untouched, and
// feeds an empty measurement batch (which Kyoto.Feed appends as
// nothing) — a provable per-tick no-op, qualifying oracle-monitored
// worlds for the idle fast-forward.
func (o *Oracle) IdleTickInvariant() {}

// OnTick implements hv.TickHook.
func (o *Oracle) OnTick(w *hv.World) {
	ms := o.scratch[:0]
	for _, domain := range w.VMs() {
		var delta pmc.Counters
		for _, v := range domain.VCPUs {
			s, ok := o.samplers[v]
			if !ok {
				s = pmc.NewSampler(&v.Counters)
				o.samplers[v] = s
			}
			delta.Add(s.Sample())
		}
		rate := o.indicator.Value(delta)
		o.LastRate[domain] = rate
		o.LastDelta[domain] = delta
		ms = append(ms, core.Measurement{
			VM:     domain,
			Misses: float64(delta.LLCMisses),
			Rate:   rate,
		})
	}
	o.scratch = ms
	if o.feeder != nil {
		o.feeder.Feed(ms)
	}
}

// OnRemoveVM implements hv.VMRemovalHook: drop the departed VM's samplers
// and last observations so churn scenarios do not leak monitor state.
func (o *Oracle) OnRemoveVM(domain *vm.VM) {
	for _, v := range domain.VCPUs {
		delete(o.samplers, v)
	}
	delete(o.LastRate, domain)
	delete(o.LastDelta, domain)
}
