// Package cpu implements the execution engine: it runs a workload's
// instruction stream against a core's memory path for a bounded number of
// cycles, charging the paper's measured latencies (§2.2.4: L1 4, L2 12,
// LLC 45, memory 180 cycles) and updating the vCPU's performance counters.
//
// IPC is never assumed — it emerges from the interaction between the
// workload's access pattern and the (shared) cache state, which is what
// makes contention visible exactly as the paper's Figure 1 measures it.
package cpu

import (
	"kyoto/internal/cache"
	"kyoto/internal/pmc"
	"kyoto/internal/workload"
)

// minOverlappedLatency floors the effective latency of an LLC/memory
// access under memory-level parallelism: even a perfect prefetcher cannot
// beat the L2 round trip.
const minOverlappedLatency = 12

// batchSteps is how many steps Run pulls from the generator per refill.
// Generating ahead is safe: the stream is deterministic and buffered steps
// are executed in order, so the executed sequence is identical to step-at-
// a-time generation — only the interface-dispatch cost is amortized.
const batchSteps = 64

// Context carries everything needed to execute one vCPU on one core.
// The hypervisor rebinds Path/Remote when it migrates the vCPU.
type Context struct {
	// Gen produces the instruction stream.
	Gen workload.Generator
	// Owner tags cache fills for attribution.
	Owner cache.Owner
	// Path is the memory path of the core the vCPU currently runs on.
	Path *cache.Path
	// Remote marks the vCPU's memory as living on a remote NUMA node
	// relative to the core it runs on.
	Remote bool
	// AddrBase relocates the VM's virtual addresses into a private
	// physical range so distinct VMs never alias in the caches.
	AddrBase uint64
	// Counters receives the PMC increments.
	Counters *pmc.Counters
	// Tracer, when non-nil, observes every memory access (the Pin-tool
	// substitute used by the shadow-simulator monitor).
	Tracer Tracer

	// Step batching state: steps[head:n] are generated but not yet
	// executed. The buffer survives across Run calls (budget boundaries
	// never discard steps) and across Path rebinds (steps carry only
	// workload state, never core state).
	steps   []workload.Step
	head, n int
}

// Tracer observes executed memory accesses.
type Tracer interface {
	// RecordAccess is called once per memory access with the virtual
	// address, the number of instructions retired since the previous
	// access, and the access's memory-level parallelism (so an offline
	// replayer can model overlapped latency as the hardware would).
	RecordAccess(addr uint64, gapInstrs uint32, mlp float64)
}

// Run executes ctx's workload for at most budget wall cycles and returns
// the wall cycles actually consumed. The return value may exceed budget by
// at most one step's cost (a step is indivisible, as an instruction is on
// real hardware); callers account the actual value.
func Run(ctx *Context, budget uint64) uint64 {
	if budget == 0 {
		return 0
	}
	// Counters is hoisted out of the per-step path once per Run; the
	// generator refills in batches so the Generator interface is crossed
	// once per batchSteps steps in the common case.
	c := ctx.Counters
	var used uint64
	for {
		for ctx.head < ctx.n {
			used += execStep(ctx, &ctx.steps[ctx.head], c)
			ctx.head++
			if used >= budget {
				return used
			}
		}
		ctx.refill()
	}
}

// refill replenishes the step buffer from the generator. The batch
// assertion is resolved here, once per batchSteps steps rather than per
// step, so rebinding ctx.Gen between Runs (a future migration or
// trace-replay path) takes effect at the next refill. Note that steps
// already buffered from the previous generator still execute first.
func (ctx *Context) refill() {
	if ctx.steps == nil {
		ctx.steps = make([]workload.Step, batchSteps)
	}
	if bg, ok := ctx.Gen.(workload.BatchGenerator); ok {
		ctx.n = bg.NextBatch(ctx.steps)
	} else {
		ctx.steps[0] = ctx.Gen.Next()
		ctx.n = 1
	}
	ctx.head = 0
}

// execStep executes one step and returns its wall-cycle cost.
func execStep(ctx *Context, step *workload.Step, c *pmc.Counters) uint64 {
	busy := uint64(step.ComputeCycles)
	if step.HasAccess {
		level, lat := ctx.Path.Access(ctx.AddrBase+step.Addr, ctx.Owner, ctx.Remote)
		if level >= cache.HitLLC && step.MLP > 1 {
			over := uint32(float64(lat) / step.MLP)
			if over < minOverlappedLatency {
				over = minOverlappedLatency
			}
			lat = over
		}
		busy += uint64(lat)
		c.Accesses++
		switch level {
		case cache.HitL2:
			c.L1Misses++
		case cache.HitLLC:
			c.L1Misses++
			c.L2Misses++
			c.LLCReferences++
		case cache.HitMemory:
			c.L1Misses++
			c.L2Misses++
			c.LLCReferences++
			c.LLCMisses++
			if step.IsWrite {
				c.MemWrites++
			} else {
				c.MemReads++
			}
			if ctx.Remote {
				c.RemoteAccesses++
			}
		}
		if ctx.Tracer != nil {
			gap := step.Instrs
			if gap > 0 {
				gap--
			}
			ctx.Tracer.RecordAccess(step.Addr, gap, step.MLP)
		}
	}

	c.Instructions += uint64(step.Instrs)
	c.UnhaltedCycles += busy

	wall := busy
	if step.HaltFrac > 0 {
		// Stretch wall time so that halted/(halted+busy) == HaltFrac.
		halt := uint64(float64(busy) * step.HaltFrac / (1 - step.HaltFrac))
		c.HaltedCycles += halt
		wall += halt
	}
	return wall
}
