package cpu

// Unit tests of the analytic-tier executor against the same small
// geometry cpu_test.go uses for the exact one: phase compilation
// (footprints, set-concentration, MLP overlap), the bulk counter
// waterfall, and the occupancy-driven mix. World-level behaviour
// (epoch advance, contention ordering, benchmarks) lives in
// internal/hv/analytic_test.go.

import (
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/pmc"
	"kyoto/internal/workload"
)

// testAnalyticParams mirrors testPath's geometry: L1 8 lines (4 sets x
// 2 ways), L2 64 lines (16 x 4), LLC 1024 lines (128 x 8).
func testAnalyticParams() AnalyticParams {
	return AnalyticParams{
		L1Lines: 8, L1Sets: 4, L1Ways: 2,
		L2Lines: 64, L2Sets: 16, L2Ways: 4,
		LLCSets: 128, LLCWays: 8,
		LineBytes: 64,
		L1Lat:     4, L2Lat: 12, LLCLat: 45, MemLat: 180, RemotePenalty: 120,
	}
}

func testAnalyticLLC(t *testing.T) *cache.AnalyticLLC {
	t.Helper()
	llc, err := cache.NewAnalyticLLC(cache.Config{
		Name: "LLC", SizeBytes: 64 * 1024, Ways: 8, LineBytes: 64, HitLatencyCycles: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	return llc
}

// chaseProfile touches WSS bytes with dependent loads, memRatio accesses
// per instruction.
func chaseProfile(wss int, memRatio float64) workload.Profile {
	return workload.Profile{
		Name: "test-chase", BaseCPI: 1,
		Phases: []workload.Phase{{
			Kind: workload.Chase, WSSBytes: wss, MemRatio: memRatio, Instructions: 10_000,
		}},
	}
}

func newCtx(t *testing.T, p workload.Profile, llc *cache.AnalyticLLC, c *pmc.Counters) *AnalyticContext {
	t.Helper()
	a, err := NewAnalyticContext(p, testAnalyticParams(), 1, c)
	if err != nil {
		t.Fatal(err)
	}
	a.LLC = llc
	return a
}

func TestAnalyticComputeOnly(t *testing.T) {
	p := workload.Profile{
		Name: "test-compute", BaseCPI: 2,
		Phases: []workload.Phase{{Kind: workload.Compute, Instructions: 1000}},
	}
	var c pmc.Counters
	a := newCtx(t, p, nil, &c)
	used := RunAnalytic(a, 1000)
	if used < 1000 {
		t.Fatalf("used = %d, want >= budget 1000", used)
	}
	if c.Accesses != 0 || c.LLCMisses != 0 {
		t.Fatalf("compute phase touched memory: %+v", c)
	}
	if c.Instructions == 0 || c.UnhaltedCycles != used {
		t.Fatalf("counters = %+v, used = %d", c, used)
	}
	if RunAnalytic(a, 0) != 0 {
		t.Fatal("zero budget must consume nothing")
	}
}

func TestAnalyticRejectsInvalidProfile(t *testing.T) {
	if _, err := NewAnalyticContext(workload.Profile{}, testAnalyticParams(), 1, &pmc.Counters{}); err == nil {
		t.Fatal("invalid profile must error")
	}
	misaligned := workload.Profile{
		Name: "test-misaligned", BaseCPI: 1,
		Phases: []workload.Phase{{
			Kind: workload.Strided, WSSBytes: 1 << 20, StrideBytes: 96,
			MemRatio: 0.5, Instructions: 1000,
		}},
	}
	if _, err := NewAnalyticContext(misaligned, testAnalyticParams(), 1, &pmc.Counters{}); err == nil {
		t.Fatal("non-line-aligned stride must error")
	}
}

func TestAnalyticCounterWaterfall(t *testing.T) {
	// Footprint far beyond every level: all accesses must walk the full
	// miss waterfall, and reads+writes must re-add to the misses.
	llc := testAnalyticLLC(t)
	var c pmc.Counters
	a := newCtx(t, chaseProfile(1<<24, 0.4), llc, &c)
	for i := 0; i < 5; i++ {
		RunAnalytic(a, 100_000)
		llc.EndEpoch()
	}
	if c.Accesses == 0 {
		t.Fatal("no memory accesses recorded")
	}
	if c.L1Misses > c.Accesses || c.L2Misses > c.L1Misses || c.LLCMisses > c.L2Misses {
		t.Fatalf("miss waterfall violated: %+v", c)
	}
	if c.LLCReferences != c.L2Misses {
		t.Fatalf("LLC references %d != L2 misses %d", c.LLCReferences, c.L2Misses)
	}
	if got, want := c.MemReads+c.MemWrites, c.LLCMisses; got+2 < want || got > want+2 {
		t.Fatalf("memory traffic %d does not re-add to LLC misses %d", got, want)
	}
	if c.RemoteAccesses != 0 {
		t.Fatalf("local run recorded remote accesses: %d", c.RemoteAccesses)
	}
}

func TestAnalyticDeterministic(t *testing.T) {
	run := func() pmc.Counters {
		llc := testAnalyticLLC(t)
		var c pmc.Counters
		a := newCtx(t, chaseProfile(1<<20, 0.3), llc, &c)
		for i := 0; i < 8; i++ {
			RunAnalytic(a, 50_000)
			llc.EndEpoch()
		}
		return c
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestAnalyticRemotePenaltySlowsExecution(t *testing.T) {
	run := func(remote bool) uint64 {
		llc := testAnalyticLLC(t)
		var c pmc.Counters
		a := newCtx(t, chaseProfile(1<<24, 0.5), llc, &c)
		a.Remote = remote
		RunAnalytic(a, 200_000)
		if remote && c.RemoteAccesses == 0 {
			t.Fatal("remote run recorded no remote accesses")
		}
		return c.Instructions
	}
	local, remote := run(false), run(true)
	if remote >= local {
		t.Fatalf("remote memory must slow execution: %d instructions remote vs %d local", remote, local)
	}
}

func TestAnalyticOccupancyWarmupReducesMisses(t *testing.T) {
	// Footprint fits the LLC: as occupancy builds across epochs the LLC
	// hit fraction must rise, so per-epoch misses fall.
	llc := testAnalyticLLC(t)
	var c pmc.Counters
	a := newCtx(t, chaseProfile(32*1024, 0.3), llc, &c)
	missesAt := func() uint64 { return c.LLCMisses }

	RunAnalytic(a, 100_000)
	llc.EndEpoch()
	first := missesAt()
	for i := 0; i < 6; i++ {
		RunAnalytic(a, 100_000)
		llc.EndEpoch()
	}
	before := missesAt()
	RunAnalytic(a, 100_000)
	warm := missesAt() - before
	if warm >= first {
		t.Fatalf("warm epoch misses %d not below cold epoch misses %d", warm, first)
	}
	if f := llc.OccupancyFraction(1); f <= 0 || f > 1 {
		t.Fatalf("implausible occupancy fraction %v", f)
	}
}

func TestAnalyticHaltedPhase(t *testing.T) {
	p := workload.Profile{
		Name: "test-halt", BaseCPI: 1,
		Phases: []workload.Phase{{
			Kind: workload.Compute, Instructions: 1000, HaltFrac: 0.5,
		}},
	}
	var c pmc.Counters
	a := newCtx(t, p, nil, &c)
	used := RunAnalytic(a, 10_000)
	if c.HaltedCycles == 0 {
		t.Fatal("HaltFrac phase recorded no halted cycles")
	}
	if c.UnhaltedCycles+c.HaltedCycles != used {
		t.Fatalf("wall %d != busy %d + halted %d", used, c.UnhaltedCycles, c.HaltedCycles)
	}
}

func TestAnalyticStridedSelfThrash(t *testing.T) {
	// A 2KB stride concentrates the walk into few sets: the effective
	// LLC capacity shrinks below the footprint, so the phase can never
	// go resident and keeps missing to memory even after many epochs.
	p := workload.Profile{
		Name: "test-strided", BaseCPI: 1,
		Phases: []workload.Phase{{
			Kind: workload.Strided, WSSBytes: 1 << 20, StrideBytes: 2048,
			MemRatio: 0.5, MLP: 4, Instructions: 100_000,
		}},
	}
	llc := testAnalyticLLC(t)
	var c pmc.Counters
	a := newCtx(t, p, llc, &c)
	for i := 0; i < 6; i++ {
		RunAnalytic(a, 100_000)
		llc.EndEpoch()
	}
	before := c.LLCMisses
	RunAnalytic(a, 100_000)
	if c.LLCMisses == before {
		t.Fatal("self-thrashing strided phase stopped missing")
	}
}

func TestAnalyticStreamGoesResident(t *testing.T) {
	// A unit-stride stream whose footprint fits the LLC: once occupancy
	// covers the footprint the ramp reaches all-hits, and misses stop.
	p := workload.Profile{
		Name: "test-stream", BaseCPI: 1,
		Phases: []workload.Phase{{
			Kind: workload.Stream, WSSBytes: 16 * 1024,
			MemRatio: 0.5, Instructions: 100_000,
		}},
	}
	llc := testAnalyticLLC(t)
	var c pmc.Counters
	a := newCtx(t, p, llc, &c)
	for i := 0; i < 10; i++ {
		RunAnalytic(a, 100_000)
		llc.EndEpoch()
	}
	before := c.LLCMisses
	RunAnalytic(a, 100_000)
	if got := c.LLCMisses - before; got != 0 {
		t.Fatalf("resident stream still missed %d times", got)
	}
}
