package cpu

// Analytic-tier executor: the fast-fidelity counterpart of Run. Instead
// of walking the instruction stream step by step, it advances a vCPU in
// bulk — thousands of instructions per call — by pricing the phase's
// average instruction from closed-form hit fractions:
//
//	CPI_busy = BaseCPI + MemRatio · E[lat]
//	E[lat]   = f_L1·L1 + f_L2·L2 + f_LLC·lat_LLC + f_mem·lat_mem
//	wall     = busy / (1 − HaltFrac)
//
// The private-level hit fractions f_L1/f_L2 are static per phase (the
// levels are private, their capacity is fixed); the LLC fraction is
// dynamic, derived each epoch from the owner's fractional occupancy in
// the socket's cache.AnalyticLLC. lat_LLC and lat_mem carry the same
// MLP overlap rule as the exact executor (lat/MLP floored at the L2
// round trip). Counters are updated in bulk with the exact per-access
// semantics of execStep — Accesses, the L1/L2/LLC miss waterfall,
// read/write memory traffic, remote accesses, unhalted and halted
// cycles — through fractional accumulators, so monitors (Equation 1)
// read the analytic tier exactly as they read hardware PMCs.
//
// Hit-fraction model per phase kind, for a level with effective
// capacity A lines and a phase footprint of F distinct lines:
//
//	Chase, UniformRandom:  p_hit = min(1, A/F)       (uniform reuse)
//	Stream, Strided:       p_hit = 0        if F > A (cyclic LRU thrash)
//	                       ramps 0→1 as occupancy covers the footprint
//
// Set-concentration is honoured: a stride of s bytes touches only
// sets/gcd(s/64, sets) of a level's sets, so its effective capacity —
// and the most lines it can ever hold — shrinks by the same factor,
// which is how a 2 KB-strided scan (milc) self-thrashes a 640 KB LLC.

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/pmc"
	"kyoto/internal/workload"
)

// AnalyticParams carries the machine geometry and latencies the analytic
// executor prices against; internal/hv derives it from machine.Config.
type AnalyticParams struct {
	// Per-core private levels: capacity in lines, sets and ways.
	L1Lines, L1Sets, L1Ways int
	L2Lines, L2Sets, L2Ways int
	// Shared LLC geometry (capacity lives in cache.AnalyticLLC).
	LLCSets, LLCWays int
	// LineBytes is the line size.
	LineBytes int
	// Hit/memory latencies in cycles, as in cache.Path.
	L1Lat, L2Lat, LLCLat, MemLat, RemotePenalty float64
}

// analyticPhase is one workload phase compiled to closed form.
type analyticPhase struct {
	instrs      uint64
	compute     bool
	memRatio    float64
	writes      float64
	haltStretch float64 // HaltFrac/(1-HaltFrac)
	wallFactor  float64 // 1/(1-HaltFrac)
	cpiBase     float64

	foot       float64 // distinct lines touched
	llcFootCap float64 // most LLC lines the phase can hold (set-concentration)
	streaming  bool    // Stream/Strided: cyclic reuse, all-or-nothing residency
	f1, f2     float64 // static private-level hit fractions
	eBase      float64 // f1*L1Lat + f2*L2Lat
	latLLC     float64 // MLP-overlapped LLC hit latency
	latMem     float64 // MLP-overlapped local memory latency
	latMemRem  float64 // MLP-overlapped remote memory latency
}

// AnalyticContext carries everything needed to execute one vCPU on the
// analytic tier. The hypervisor rebinds LLC/Remote when it migrates the
// vCPU, exactly as it rebinds Context.Path on the exact tier.
type AnalyticContext struct {
	// Owner tags LLC occupancy for attribution.
	Owner cache.Owner
	// LLC is the analytic model of the socket the vCPU currently runs on.
	LLC *cache.AnalyticLLC
	// Remote marks the vCPU's memory as on a remote NUMA node.
	Remote bool
	// Counters receives the PMC increments.
	Counters *pmc.Counters

	phases   []analyticPhase
	phaseIdx int
	phaseRem uint64

	// Cached per-(phase, epoch, binding) mix so the ~100 chunked Run
	// calls per tick recompute the occupancy-derived fractions once.
	mixValid  bool
	mixEpoch  uint64
	mixLLC    *cache.AnalyticLLC
	mixRemote bool
	fLLC      float64
	fMem      float64
	cpiBusy   float64
	wallInstr float64

	// Fractional accumulators carrying sub-unit counter remainders
	// across calls, keeping bulk updates drift-free and deterministic.
	accAccess, accL1M, accL2M, accLLCM float64
	accMemR, accMemW, accRemote        float64
	accBusy, accHalt                   float64
}

// NewAnalyticContext compiles profile against the machine parameters.
// It fails on profiles the closed form cannot price (none of the
// built-in profiles do).
func NewAnalyticContext(profile workload.Profile, p AnalyticParams, owner cache.Owner, counters *pmc.Counters) (*AnalyticContext, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	a := &AnalyticContext{
		Owner:    owner,
		Counters: counters,
		phases:   make([]analyticPhase, len(profile.Phases)),
	}
	for i, ph := range profile.Phases {
		c, err := compilePhase(profile, ph, p)
		if err != nil {
			return nil, err
		}
		a.phases[i] = c
	}
	a.phaseRem = a.phases[0].instrs
	return a, nil
}

// compilePhase prices one phase's static quantities.
func compilePhase(profile workload.Profile, ph workload.Phase, p AnalyticParams) (analyticPhase, error) {
	c := analyticPhase{
		instrs:     ph.Instructions,
		cpiBase:    profile.BaseCPI,
		wallFactor: 1 / (1 - ph.HaltFrac),
	}
	if ph.HaltFrac > 0 {
		c.haltStretch = ph.HaltFrac / (1 - ph.HaltFrac)
	}
	if ph.Kind == workload.Compute || ph.MemRatio == 0 {
		c.compute = true
		return c, nil
	}
	c.memRatio = ph.MemRatio
	c.writes = ph.Writes
	c.streaming = ph.Kind == workload.Stream || ph.Kind == workload.Strided

	lineStride := 1
	if c.streaming && ph.StrideBytes > p.LineBytes {
		if ph.StrideBytes%p.LineBytes != 0 {
			return c, fmt.Errorf("cpu: analytic tier needs line-aligned strides, got %d", ph.StrideBytes)
		}
		lineStride = ph.StrideBytes / p.LineBytes
	}
	c.foot = float64(ph.WSSBytes / (p.LineBytes * lineStride))
	if c.foot < 1 {
		c.foot = 1
	}
	c.llcFootCap = c.foot
	if eff := effectiveLines(p.LLCSets, p.LLCWays, lineStride); eff < c.llcFootCap {
		c.llcFootCap = eff
	}

	pL1 := c.hitProb(effectiveLines(p.L1Sets, p.L1Ways, lineStride))
	pL2 := c.hitProb(effectiveLines(p.L2Sets, p.L2Ways, lineStride))
	c.f1 = pL1
	c.f2 = pL2 - pL1
	if c.f2 < 0 {
		c.f2 = 0
	}
	c.eBase = c.f1*p.L1Lat + c.f2*p.L2Lat

	c.latLLC = overlapped(p.LLCLat, ph.MLP)
	c.latMem = overlapped(p.MemLat, ph.MLP)
	c.latMemRem = overlapped(p.MemLat+p.RemotePenalty, ph.MLP)
	return c, nil
}

// hitProb is the static residency probability of the phase's footprint
// in a level of eff available lines.
func (c *analyticPhase) hitProb(eff float64) float64 {
	if c.streaming {
		// Cyclic reuse under LRU: all hits once resident, none otherwise.
		if c.foot <= eff {
			return 1
		}
		return 0
	}
	p := eff / c.foot
	if p > 1 {
		p = 1
	}
	return p
}

// effectiveLines is a level's capacity as seen by a pattern whose line
// stride concentrates it into sets/gcd(stride, sets) of the sets.
func effectiveLines(sets, ways, lineStride int) float64 {
	return float64(sets / gcd(lineStride, sets) * ways)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// overlapped applies the exact executor's MLP rule: latencies at LLC
// level and beyond divide by the phase's MLP, floored at the L2 round
// trip (minOverlappedLatency).
func overlapped(lat, mlp float64) float64 {
	if mlp <= 1 {
		return lat
	}
	o := lat / mlp
	if o < minOverlappedLatency {
		o = minOverlappedLatency
	}
	return o
}

// refreshMix recomputes the occupancy-derived access mix when the phase,
// the epoch, or the binding changed since the last call.
func (a *AnalyticContext) refreshMix(ph *analyticPhase) {
	epoch := uint64(0)
	if a.LLC != nil {
		epoch = a.LLC.Epoch()
	}
	if a.mixValid && a.mixEpoch == epoch && a.mixLLC == a.LLC && a.mixRemote == a.Remote {
		return
	}
	a.mixValid = true
	a.mixEpoch = epoch
	a.mixLLC = a.LLC
	a.mixRemote = a.Remote
	if ph.compute {
		a.fLLC, a.fMem = 0, 0
		a.cpiBusy = ph.cpiBase
		a.wallInstr = a.cpiBusy * ph.wallFactor
		return
	}
	pLLC := 0.0
	if a.LLC != nil {
		a.LLC.SetFootprint(a.Owner, ph.llcFootCap)
		occ := a.LLC.OccupancyLines(a.Owner)
		if ph.streaming {
			// All-or-nothing residency, smoothed: no hits until the
			// occupancy covers half the footprint (and none ever when the
			// footprint cannot fit its sets), then a linear ramp to 1.
			// The ramp damps the refill oscillation a hard threshold
			// would cause at the epoch granularity.
			if ph.foot <= ph.llcFootCap {
				r := occ / ph.foot
				if r > 0.5 {
					pLLC = (r - 0.5) * 2
					if pLLC > 1 {
						pLLC = 1
					}
				}
			}
		} else {
			pLLC = occ / ph.foot
			if pLLC > 1 {
				pLLC = 1
			}
		}
	}
	fLLC := pLLC - ph.f1 - ph.f2
	if fLLC < 0 {
		fLLC = 0
	}
	fMem := 1 - ph.f1 - ph.f2 - fLLC
	if fMem < 0 {
		fMem = 0
	}
	a.fLLC, a.fMem = fLLC, fMem
	latMem := ph.latMem
	if a.Remote {
		latMem = ph.latMemRem
	}
	a.cpiBusy = ph.cpiBase + ph.memRatio*(ph.eBase+fLLC*ph.latLLC+fMem*latMem)
	a.wallInstr = a.cpiBusy * ph.wallFactor
}

// frac adds a fractional increment to an accumulator and returns the
// whole part to credit, leaving the remainder for the next call.
func frac(acc *float64, add float64) uint64 {
	*acc += add
	k := uint64(*acc)
	*acc -= float64(k)
	return k
}

// RunAnalytic executes ctx's workload for at most budget wall cycles on
// the analytic tier and returns the wall cycles actually consumed —
// the same contract as Run, at O(phases crossed) instead of O(steps).
// It allocates nothing.
func RunAnalytic(a *AnalyticContext, budget uint64) uint64 {
	if budget == 0 {
		return 0
	}
	var used uint64
	for {
		ph := &a.phases[a.phaseIdx]
		a.refreshMix(ph)
		n := uint64(float64(budget-used) / a.wallInstr)
		if n == 0 {
			n = 1
		}
		if n > a.phaseRem {
			n = a.phaseRem
		}
		used += a.exec(ph, n)
		a.phaseRem -= n
		if a.phaseRem == 0 {
			a.phaseIdx++
			if a.phaseIdx == len(a.phases) {
				a.phaseIdx = 0
			}
			a.phaseRem = a.phases[a.phaseIdx].instrs
			a.mixValid = false
		}
		if used >= budget {
			return used
		}
	}
}

// exec retires n instructions of the current phase in bulk, updating
// counters with execStep's per-access semantics, and returns the wall
// cycles consumed.
func (a *AnalyticContext) exec(ph *analyticPhase, n uint64) uint64 {
	c := a.Counters
	fn := float64(n)
	c.Instructions += n
	if !ph.compute {
		acc := fn * ph.memRatio
		c.Accesses += frac(&a.accAccess, acc)
		c.L1Misses += frac(&a.accL1M, acc*(1-ph.f1))
		refs := frac(&a.accL2M, acc*(a.fLLC+a.fMem))
		c.L2Misses += refs
		c.LLCReferences += refs
		miss := acc * a.fMem
		c.LLCMisses += frac(&a.accLLCM, miss)
		c.MemWrites += frac(&a.accMemW, miss*ph.writes)
		c.MemReads += frac(&a.accMemR, miss*(1-ph.writes))
		if a.Remote {
			c.RemoteAccesses += frac(&a.accRemote, miss)
		}
		if a.LLC != nil && miss > 0 {
			a.LLC.Reference(a.Owner, miss)
		}
	}
	busy := fn * a.cpiBusy
	b := frac(&a.accBusy, busy)
	c.UnhaltedCycles += b
	wall := b
	if ph.haltStretch > 0 {
		h := frac(&a.accHalt, busy*ph.haltStretch)
		c.HaltedCycles += h
		wall += h
	}
	return wall
}
