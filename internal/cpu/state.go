package cpu

// Execution-context checkpoint support. The exact-tier Context buffers
// generated-but-unexecuted steps across Run calls, so a tick-boundary
// checkpoint must carry that buffer: discarding it would resume the
// stream 0..batchSteps steps early. The analytic context's state is its
// phase cursor plus the nine fractional accumulators; the per-epoch mix
// cache is deliberately not captured (it re-derives from the LLC at the
// next Run, and the restored world rebinds LLC pointers anyway).

import (
	"fmt"

	"kyoto/internal/workload"
)

// ContextState is the serializable execution state of a Context beyond
// what the generator cursor already covers: the pending step buffer, in
// execution order.
type ContextState struct {
	Steps []workload.Step `json:"steps,omitempty"`
}

// CaptureState returns the pending (generated, unexecuted) steps.
func (ctx *Context) CaptureState() ContextState {
	if ctx.head >= ctx.n {
		return ContextState{}
	}
	st := ContextState{Steps: make([]workload.Step, ctx.n-ctx.head)}
	copy(st.Steps, ctx.steps[ctx.head:ctx.n])
	return st
}

// RestoreState reloads the pending step buffer.
func (ctx *Context) RestoreState(st ContextState) error {
	if len(st.Steps) > batchSteps {
		return fmt.Errorf("cpu: context state carries %d pending steps, batch size is %d", len(st.Steps), batchSteps)
	}
	if ctx.steps == nil {
		ctx.steps = make([]workload.Step, batchSteps)
	}
	copy(ctx.steps, st.Steps)
	ctx.head = 0
	ctx.n = len(st.Steps)
	return nil
}

// AnalyticContextState is the serializable cursor of an AnalyticContext.
// All floats are finite fractional remainders in [0,1), so their JSON
// round-trip is exact.
type AnalyticContextState struct {
	PhaseIdx int    `json:"phase_idx"`
	PhaseRem uint64 `json:"phase_rem"`
	// Accumulators, in the struct's declaration order: access, L1 miss,
	// L2 miss, LLC miss, mem read, mem write, remote, busy, halt.
	Acc [9]float64 `json:"acc"`
}

// CaptureState extracts the analytic cursor.
func (a *AnalyticContext) CaptureState() AnalyticContextState {
	return AnalyticContextState{
		PhaseIdx: a.phaseIdx,
		PhaseRem: a.phaseRem,
		Acc: [9]float64{
			a.accAccess, a.accL1M, a.accL2M, a.accLLCM,
			a.accMemR, a.accMemW, a.accRemote, a.accBusy, a.accHalt,
		},
	}
}

// RestoreState overlays a captured cursor onto a context freshly built by
// NewAnalyticContext for the same (profile, params). The mix cache is
// left invalid; it re-derives on the next Run.
func (a *AnalyticContext) RestoreState(st AnalyticContextState) error {
	if st.PhaseIdx < 0 || st.PhaseIdx >= len(a.phases) {
		return fmt.Errorf("cpu: analytic state phase %d outside profile's %d phases", st.PhaseIdx, len(a.phases))
	}
	if st.PhaseRem > a.phases[st.PhaseIdx].instrs {
		return fmt.Errorf("cpu: analytic state has %d instructions left in a %d-instruction phase",
			st.PhaseRem, a.phases[st.PhaseIdx].instrs)
	}
	a.phaseIdx = st.PhaseIdx
	a.phaseRem = st.PhaseRem
	a.accAccess, a.accL1M, a.accL2M, a.accLLCM = st.Acc[0], st.Acc[1], st.Acc[2], st.Acc[3]
	a.accMemR, a.accMemW, a.accRemote, a.accBusy, a.accHalt = st.Acc[4], st.Acc[5], st.Acc[6], st.Acc[7], st.Acc[8]
	a.mixValid = false
	return nil
}
