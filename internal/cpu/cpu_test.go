package cpu

import (
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/pmc"
	"kyoto/internal/workload"
)

// testPath builds a small 3-level path.
func testPath() *cache.Path {
	return &cache.Path{
		L1D:                 cache.MustNew(cache.Config{Name: "L1", SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatencyCycles: 4}),
		L2:                  cache.MustNew(cache.Config{Name: "L2", SizeBytes: 4096, Ways: 4, LineBytes: 64, HitLatencyCycles: 12}),
		LLC:                 cache.MustNew(cache.Config{Name: "LLC", SizeBytes: 64 * 1024, Ways: 8, LineBytes: 64, HitLatencyCycles: 45}),
		MemLatencyCycles:    180,
		RemotePenaltyCycles: 120,
	}
}

// fixedGen emits a fixed repeating sequence of steps.
type fixedGen struct {
	steps []workload.Step
	i     int
}

func (g *fixedGen) Next() workload.Step {
	st := g.steps[g.i%len(g.steps)]
	g.i++
	return st
}

func TestComputeOnlyStep(t *testing.T) {
	var c pmc.Counters
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 10, ComputeCycles: 10}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
	}
	used := Run(ctx, 100)
	if used != 100 {
		t.Fatalf("used = %d, want 100", used)
	}
	if c.Instructions != 100 || c.UnhaltedCycles != 100 || c.Accesses != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMemoryAccessLatencyAndCounters(t *testing.T) {
	var c pmc.Counters
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0x1000}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
	}
	used := Run(ctx, 1) // one step: cold access = 180 cycles
	if used != 180 {
		t.Fatalf("cold access cost = %d, want 180", used)
	}
	if c.LLCMisses != 1 || c.L1Misses != 1 || c.L2Misses != 1 || c.LLCReferences != 1 || c.MemReads != 1 {
		t.Fatalf("counters = %+v", c)
	}
	// Second access to the same line hits L1.
	used = Run(ctx, 1)
	if used != 4 {
		t.Fatalf("hot access cost = %d, want 4", used)
	}
	if c.LLCMisses != 1 {
		t.Fatalf("hot access must not miss: %+v", c)
	}
}

func TestMLPReducesLatency(t *testing.T) {
	var c pmc.Counters
	ctx := &Context{
		Gen: &fixedGen{steps: []workload.Step{
			{Instrs: 1, HasAccess: true, Addr: 0x10000, MLP: 6},
		}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
	}
	used := Run(ctx, 1)
	if used != 30 { // 180/6
		t.Fatalf("MLP-6 cold access = %d, want 30", used)
	}
	// Floor: MLP cannot beat the L2 round trip.
	ctx2 := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0x20000, MLP: 64}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
	}
	if used := Run(ctx2, 1); used != minOverlappedLatency {
		t.Fatalf("floored access = %d, want %d", used, minOverlappedLatency)
	}
}

func TestMLPDoesNotAffectPrivateHits(t *testing.T) {
	var c pmc.Counters
	p := testPath()
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0, MLP: 8}}},
		Owner:    1,
		Path:     p,
		Counters: &c,
	}
	Run(ctx, 1) // cold fill
	used := Run(ctx, 1)
	if used != 4 { // L1 hit latency untouched by MLP
		t.Fatalf("L1 hit under MLP = %d, want 4", used)
	}
}

func TestHaltStretchesWallTime(t *testing.T) {
	var c pmc.Counters
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 10, ComputeCycles: 100, HaltFrac: 0.5}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
	}
	used := Run(ctx, 1)
	if used != 200 { // 100 busy + 100 halted
		t.Fatalf("wall = %d, want 200", used)
	}
	if c.UnhaltedCycles != 100 || c.HaltedCycles != 100 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRemoteAccessPenalty(t *testing.T) {
	var c pmc.Counters
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0x3000}}},
		Owner:    1,
		Path:     testPath(),
		Remote:   true,
		Counters: &c,
	}
	used := Run(ctx, 1)
	if used != 300 {
		t.Fatalf("remote cold access = %d, want 300", used)
	}
	if c.RemoteAccesses != 1 {
		t.Fatalf("remote accesses = %d", c.RemoteAccesses)
	}
}

func TestWriteCounting(t *testing.T) {
	var c pmc.Counters
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0x4000, IsWrite: true}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
	}
	Run(ctx, 1)
	if c.MemWrites != 1 || c.MemReads != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestAddrBaseRelocation(t *testing.T) {
	p := testPath()
	var c1, c2 pmc.Counters
	mk := func(base uint64, c *pmc.Counters, owner cache.Owner) *Context {
		return &Context{
			Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0}}},
			Owner:    owner,
			Path:     p,
			AddrBase: base,
			Counters: c,
		}
	}
	a := mk(0, &c1, 1)
	b := mk(1<<36, &c2, 2)
	Run(a, 1)
	Run(b, 1)
	// Different bases must not alias: b's access also misses.
	if c2.LLCMisses != 1 {
		t.Fatalf("aliased across AddrBase: %+v", c2)
	}
}

// recorder implements Tracer.
type recorder struct {
	addrs []uint64
	gaps  []uint32
	mlps  []float64
}

func (r *recorder) RecordAccess(addr uint64, gap uint32, mlp float64) {
	r.addrs = append(r.addrs, addr)
	r.gaps = append(r.gaps, gap)
	r.mlps = append(r.mlps, mlp)
}

func TestTracerObservesAccesses(t *testing.T) {
	var c pmc.Counters
	rec := &recorder{}
	ctx := &Context{
		Gen: &fixedGen{steps: []workload.Step{
			{Instrs: 4, ComputeCycles: 3, HasAccess: true, Addr: 0x40, MLP: 2},
		}},
		Owner:    1,
		Path:     testPath(),
		Counters: &c,
		Tracer:   rec,
	}
	Run(ctx, 1)
	if len(rec.addrs) != 1 || rec.addrs[0] != 0x40 || rec.gaps[0] != 3 || rec.mlps[0] != 2 {
		t.Fatalf("trace = %+v", rec)
	}
}

func TestRunZeroBudget(t *testing.T) {
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, ComputeCycles: 1}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &pmc.Counters{},
	}
	if used := Run(ctx, 0); used != 0 {
		t.Fatalf("zero budget consumed %d", used)
	}
}

func TestOverrunBounded(t *testing.T) {
	// A step is indivisible: the overrun never exceeds one step's cost.
	ctx := &Context{
		Gen:      &fixedGen{steps: []workload.Step{{Instrs: 1, HasAccess: true, Addr: 0x5000}}},
		Owner:    1,
		Path:     testPath(),
		Counters: &pmc.Counters{},
	}
	used := Run(ctx, 10) // budget 10, first step costs 180
	if used != 180 {
		t.Fatalf("used = %d", used)
	}
}

func TestIPCEmergesFromCacheBehaviour(t *testing.T) {
	// A resident chase must achieve higher IPC than an out-of-cache one.
	small := workload.MustNew(workload.Profile{
		Name: "small", Class: workload.C1, BaseCPI: 1,
		Phases: []workload.Phase{{Kind: workload.Chase, WSSBytes: 2048, MemRatio: 0.5, Instructions: 1 << 40}},
	}, 1)
	big := workload.MustNew(workload.Profile{
		Name: "big", Class: workload.C3, BaseCPI: 1,
		Phases: []workload.Phase{{Kind: workload.Chase, WSSBytes: 1 << 20, MemRatio: 0.5, Instructions: 1 << 40}},
	}, 1)
	run := func(g workload.Generator) float64 {
		var c pmc.Counters
		ctx := &Context{Gen: g, Owner: 1, Path: testPath(), Counters: &c}
		Run(ctx, 2_000_000)
		return c.IPC()
	}
	if ipcSmall, ipcBig := run(small), run(big); ipcSmall <= 2*ipcBig {
		t.Fatalf("resident IPC %v should far exceed thrashing IPC %v", ipcSmall, ipcBig)
	}
}
