// Package stats provides the small statistical toolkit the evaluation
// harness needs: central moments, normalization, rank correlation
// (Kendall's tau, used by the paper's Figure 4 analysis) and simple series
// containers for rendering paper-style tables.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest element of xs. It returns an error for an empty
// slice so callers cannot silently treat "no data" as zero.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile of xs (p in [0, 100]) using
// linear interpolation between closest ranks — the estimator behind the
// fleet-wide p50/p95/p99 normalized-performance reports. xs is not
// modified. An empty sample set returns ErrEmpty.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if !(p >= 0 && p <= 100) { // inverted so NaN is rejected too
		return 0, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	for _, x := range xs {
		if math.IsNaN(x) {
			// sort.Float64s leaves NaNs in unspecified positions, which
			// would silently corrupt every rank after them.
			return 0, fmt.Errorf("stats: percentile over NaN sample")
		}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// DegradationPercent returns the slowdown of observed relative to baseline,
// in percent: 100 * (baseline - observed) / baseline for "higher is better"
// metrics such as IPC. A negative result means observed beat the baseline.
func DegradationPercent(baseline, observed float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - observed) / baseline
}

// SlowdownPercent returns the slowdown of observed relative to baseline for
// "lower is better" metrics such as execution time:
// 100 * (observed - baseline) / baseline.
func SlowdownPercent(baseline, observed float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (observed - baseline) / baseline
}

// KendallTau computes Kendall's rank correlation coefficient (tau-a)
// between two orderings of the same item set.
//
// Each argument lists item identifiers from best to worst (the paper's o1,
// o2, o3 orderings of application aggressiveness). The result is in
// [-1, 1]: 1 means identical orderings, -1 means exactly reversed. An error
// is returned if the orderings are not permutations of each other or have
// fewer than two items.
func KendallTau(a, b []string) (float64, error) {
	n := len(a)
	if n != len(b) {
		return 0, fmt.Errorf("stats: orderings have different lengths %d and %d", n, len(b))
	}
	if n < 2 {
		return 0, fmt.Errorf("stats: need at least 2 items, got %d", n)
	}
	posB := make(map[string]int, n)
	for i, id := range b {
		if _, dup := posB[id]; dup {
			return 0, fmt.Errorf("stats: duplicate item %q in second ordering", id)
		}
		posB[id] = i
	}
	seen := make(map[string]bool, n)
	ranks := make([]int, n) // ranks[i] = position in b of the item at position i in a
	for i, id := range a {
		if seen[id] {
			return 0, fmt.Errorf("stats: duplicate item %q in first ordering", id)
		}
		seen[id] = true
		p, ok := posB[id]
		if !ok {
			return 0, fmt.Errorf("stats: item %q missing from second ordering", id)
		}
		ranks[i] = p
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ranks[i] < ranks[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	return float64(concordant-discordant) / float64(pairs), nil
}

// RankByValue returns the item identifiers ordered by descending value
// (ties broken by identifier for determinism). It is used to turn measured
// aggressiveness or indicator values into an ordering for KendallTau.
func RankByValue(values map[string]float64) []string {
	ids := make([]string, 0, len(values))
	for id := range values {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		vi, vj := values[ids[i]], values[ids[j]]
		if vi != vj {
			return vi > vj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Normalize divides every element of xs by base, returning a new slice.
// A zero base yields a slice of zeros rather than Inf/NaN, since callers
// render the result directly into report tables.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	if base == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// GeoMean returns the geometric mean of xs. Non-positive inputs are
// rejected with an error because they indicate a harness bug upstream.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geometric mean requires positive values, got %v", x)
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs))), nil
}

// PearsonR returns the Pearson correlation coefficient between xs and ys.
// It is used to verify Figure 3's "degradation grows linearly with
// disruptor capacity" claim.
func PearsonR(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance input")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
