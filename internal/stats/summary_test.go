package stats

import (
	"encoding/json"
	"math"
	"testing"

	"kyoto/internal/xrand"
)

// randomSamples draws n deterministic pseudo-random samples, mixing in
// a few repeated and signed-zero values so the merge order tests hit
// the interesting equal-value cases.
func randomSamples(rng *xrand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch rng.Intn(8) {
		case 0:
			xs[i] = 0.25 // repeated value across both operands
		case 1:
			xs[i] = math.Copysign(0, -1) // negative zero
		case 2:
			xs[i] = 0.0
		default:
			xs[i] = float64(rng.Uint64n(1<<20))/float64(1<<10) - 256
		}
	}
	return xs
}

func mustSummary(t *testing.T, xs ...float64) Summary {
	t.Helper()
	s, err := NewSummary(xs...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Property: merge(a, b) == merge(b, a), bitwise, for many random sample
// sets — the seed-sweep merge must not care which shard arrives first.
func TestSummaryMergeCommutative(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 200; trial++ {
		a := mustSummary(t, randomSamples(rng, int(rng.Uint64n(40)))...)
		b := mustSummary(t, randomSamples(rng, int(rng.Uint64n(40)))...)
		ab, ba := a.Merge(b), b.Merge(a)
		if !ab.Equal(ba) {
			t.Fatalf("trial %d: merge(a,b) %v != merge(b,a) %v", trial, ab.Samples(), ba.Samples())
		}
	}
}

// Property: merging in any grouping equals the flat Summary over all
// samples — ((a+b)+c) == (a+(b+c)) == flat(a,b,c). This is the property
// that makes per-shard Summaries composable with any shard count.
func TestSummaryMergeAssociativeAndFlat(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 100; trial++ {
		xsA := randomSamples(rng, int(rng.Uint64n(25)))
		xsB := randomSamples(rng, int(rng.Uint64n(25)))
		xsC := randomSamples(rng, int(rng.Uint64n(25)))
		a, b, c := mustSummary(t, xsA...), mustSummary(t, xsB...), mustSummary(t, xsC...)

		left := a.Merge(b).Merge(c)
		right := a.Merge(b.Merge(c))
		flat := mustSummary(t, append(append(append([]float64(nil), xsA...), xsB...), xsC...)...)

		if !left.Equal(right) {
			t.Fatalf("trial %d: (a+b)+c != a+(b+c)", trial)
		}
		if !left.Equal(flat) {
			t.Fatalf("trial %d: merged %v != flat %v", trial, left.Samples(), flat.Samples())
		}
		// Moments derived from merged vs flat must be bit-identical too:
		// both stream the same sorted slice through Welford.
		if math.Float64bits(left.Mean()) != math.Float64bits(flat.Mean()) ||
			math.Float64bits(left.Variance()) != math.Float64bits(flat.Variance()) {
			t.Fatalf("trial %d: merged moments differ from flat", trial)
		}
	}
}

// Property: AddAll(xs...) is bitwise identical to folding the same
// samples through Add one at a time — the batch path is a pure
// performance substitute (O((n+k)+k log k) vs O(n·k)), never a
// behavioral one. Trials mix batch sizes, pre-existing multiset sizes,
// repeated values and signed zeros.
func TestSummaryAddAllMatchesSequentialAdd(t *testing.T) {
	rng := xrand.New(13)
	for trial := 0; trial < 200; trial++ {
		base := randomSamples(rng, int(rng.Uint64n(30)))
		batch := randomSamples(rng, int(rng.Uint64n(50)))

		batched := mustSummary(t, base...)
		if err := batched.AddAll(batch...); err != nil {
			t.Fatal(err)
		}
		sequential := mustSummary(t, base...)
		for _, x := range batch {
			if err := sequential.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		if !batched.Equal(sequential) {
			t.Fatalf("trial %d: AddAll %v != sequential Add %v", trial, batched.Samples(), sequential.Samples())
		}
		// Derived statistics must agree bit-for-bit too: both stream the
		// identical sorted slice through Welford.
		if math.Float64bits(batched.Mean()) != math.Float64bits(sequential.Mean()) ||
			math.Float64bits(batched.Variance()) != math.Float64bits(sequential.Variance()) {
			t.Fatalf("trial %d: AddAll moments differ from sequential Add", trial)
		}
	}
}

// AddAll is all-or-nothing: one bad sample anywhere in the batch leaves
// the Summary untouched, exactly as a rejected Add would.
func TestSummaryAddAllRejectsWholeBatch(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		s := mustSummary(t, 1, 2, 3)
		if err := s.AddAll(4, bad, 5); err == nil {
			t.Fatalf("AddAll accepted a batch containing %v", bad)
		}
		if !s.Equal(mustSummary(t, 1, 2, 3)) {
			t.Fatalf("rejected AddAll mutated the Summary: %v", s.Samples())
		}
	}
	var empty Summary
	if err := empty.AddAll(); err != nil {
		t.Fatalf("empty AddAll errored: %v", err)
	}
	if empty.Count() != 0 {
		t.Fatalf("empty AddAll grew the Summary to %d", empty.Count())
	}
}

func TestSummaryMergeEmptyIdentity(t *testing.T) {
	var empty Summary
	s := mustSummary(t, 3, 1, 2)
	if got := empty.Merge(s); !got.Equal(s) {
		t.Fatalf("empty+s = %v", got.Samples())
	}
	if got := s.Merge(empty); !got.Equal(s) {
		t.Fatalf("s+empty = %v", got.Samples())
	}
	if got := empty.Merge(empty); got.Count() != 0 {
		t.Fatalf("empty+empty has %d samples", got.Count())
	}
}

func TestSummaryRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewSummary(1, bad); err == nil {
			t.Fatalf("NewSummary accepted %v", bad)
		}
		var s Summary
		if err := s.Add(bad); err == nil {
			t.Fatalf("Add accepted %v", bad)
		}
	}
}

func TestSummaryPercentileEdgeCases(t *testing.T) {
	var empty Summary
	if _, err := empty.Percentile(50); err != ErrEmpty {
		t.Fatalf("empty percentile err = %v, want ErrEmpty", err)
	}
	if _, err := empty.MeanCI(0.95); err != ErrEmpty {
		t.Fatalf("empty MeanCI err = %v", err)
	}
	if _, err := empty.PercentileCI(50, 0.95, 10, 1); err != ErrEmpty {
		t.Fatalf("empty PercentileCI err = %v", err)
	}

	single := mustSummary(t, 42)
	for _, p := range []float64{0, 50, 99, 100} {
		got, err := single.Percentile(p)
		if err != nil || got != 42 {
			t.Fatalf("single p%v = %v, %v", p, got, err)
		}
	}
	ci, err := single.PercentileCI(99, 0.95, 10, 1)
	if err != nil || ci.Lo != 42 || ci.Hi != 42 {
		t.Fatalf("single-sample CI = %+v, %v", ci, err)
	}
	mci, err := single.MeanCI(0.95)
	if err != nil || mci.Lo != 42 || mci.Hi != 42 {
		t.Fatalf("single-sample mean CI = %+v, %v", mci, err)
	}

	s := mustSummary(t, 1, 2, 3, 4)
	for _, p := range []float64{-1, 101, math.NaN()} {
		if _, err := s.Percentile(p); err == nil {
			t.Fatalf("Percentile(%v) accepted", p)
		}
		if _, err := s.PercentileCI(p, 0.95, 10, 1); err == nil {
			t.Fatalf("PercentileCI(%v) accepted", p)
		}
	}
	if got, _ := s.Percentile(50); got != 2.5 {
		t.Fatalf("p50 of 1..4 = %v", got)
	}
	min, _ := s.Min()
	max, _ := s.Max()
	if min != 1 || max != 4 {
		t.Fatalf("min/max = %v/%v", min, max)
	}
}

// Package-level Percentile must reject NaN samples rather than sort
// them into an unspecified position.
func TestPercentileRejectsNaNSamples(t *testing.T) {
	if _, err := Percentile([]float64{1, math.NaN(), 3}, 50); err == nil {
		t.Fatal("Percentile accepted a NaN sample")
	}
}

// Property: the bootstrap is a pure function of (samples, p, confidence,
// resamples, seed) — identical inputs give the identical interval, and
// a different seed gives a (generally) different one.
func TestBootstrapCIDeterministic(t *testing.T) {
	rng := xrand.New(3)
	xs := randomSamples(rng, 64)
	s := mustSummary(t, xs...)

	a, err := s.PercentileCI(99, 0.95, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.PercentileCI(99, 0.95, 500, 42)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Lo) != math.Float64bits(b.Lo) || math.Float64bits(a.Hi) != math.Float64bits(b.Hi) {
		t.Fatalf("same seed, different CI: %+v vs %+v", a, b)
	}
	if a.Lo > a.Hi {
		t.Fatalf("inverted CI %+v", a)
	}
	p99, _ := s.Percentile(99)
	if p99 < a.Lo-1e-9 || p99 > a.Hi+1e-9 {
		// Not guaranteed in theory, but with 64 samples and 500 resamples
		// the point estimate falling outside its own bootstrap interval
		// means the resampling is broken.
		t.Fatalf("point estimate %v outside bootstrap CI %+v", p99, a)
	}
	c, err := s.PercentileCI(99, 0.95, 500, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("different seeds produced the identical CI %+v — seed is being ignored", a)
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.Count() != 8 || math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, count = %d", w.Mean(), w.Count())
	}
	// Sample variance of the classic 2,4,4,4,5,5,7,9 set is 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", w.Variance())
	}
	var a, b Welford
	for _, x := range xs[:3] {
		a.Add(x)
	}
	for _, x := range xs[3:] {
		b.Add(x)
	}
	a.Merge(b)
	if a.Count() != w.Count() || math.Abs(a.Mean()-w.Mean()) > 1e-12 || math.Abs(a.Variance()-w.Variance()) > 1e-12 {
		t.Fatalf("merged moments diverge: %v/%v vs %v/%v", a.Mean(), a.Variance(), w.Mean(), w.Variance())
	}
	var empty Welford
	empty.Merge(a)
	if empty.Count() != 8 {
		t.Fatalf("merge into empty lost samples: %d", empty.Count())
	}
	if empty.StdErr() <= 0 {
		t.Fatalf("stderr = %v", empty.StdErr())
	}
}

func TestMeanCIUsesNormalQuantile(t *testing.T) {
	// 100 identical-spread samples: CI halfwidth must be z * s/sqrt(n).
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := mustSummary(t, xs...)
	ci, err := s.MeanCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	z := math.Sqrt2 * math.Erfinv(0.95)
	if math.Abs(z-1.9599639845) > 1e-6 {
		t.Fatalf("z(0.95) = %v", z)
	}
	wantHW := z * s.StdDev() / 10
	if math.Abs(ci.Halfwidth()-wantHW) > 1e-9 {
		t.Fatalf("halfwidth %v, want %v", ci.Halfwidth(), wantHW)
	}
	if math.Abs((ci.Lo+ci.Hi)/2-s.Mean()) > 1e-9 {
		t.Fatalf("CI %+v not centred on mean %v", ci, s.Mean())
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := s.MeanCI(bad); err == nil {
			t.Fatalf("MeanCI accepted confidence %v", bad)
		}
		if _, err := s.PercentileCI(50, bad, 10, 1); err == nil {
			t.Fatalf("PercentileCI accepted confidence %v", bad)
		}
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	s := mustSummary(t, 3, 1, 2, 2)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "[1,2,2,3]" {
		t.Fatalf("marshalled %s", data)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip lost samples: %v", back.Samples())
	}
	var empty Summary
	data, err = json.Marshal(empty)
	if err != nil || string(data) != "[]" {
		t.Fatalf("empty marshals to %s, %v", data, err)
	}
	if err := json.Unmarshal([]byte(`["x"]`), &back); err == nil {
		t.Fatal("string sample accepted")
	}
	if err := json.Unmarshal([]byte(`[1,"NaN"]`), &back); err == nil {
		t.Fatal("NaN-as-string accepted")
	}
}

func TestFormatMeanCI(t *testing.T) {
	if got := FormatMeanCI(0.54321, 0.0321); got != "0.543 ± 0.032" {
		t.Fatalf("FormatMeanCI = %q", got)
	}
}
