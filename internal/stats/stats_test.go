package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty must be 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("stddev of singleton must be 0")
	}
	if !almost(StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatalf("stddev = %v, want 2", StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Fatal("Min of empty must error")
	}
	if _, err := Max(nil); err == nil {
		t.Fatal("Max of empty must error")
	}
	mn, _ := Min([]float64{3, -1, 2})
	mx, _ := Max([]float64{3, -1, 2})
	if mn != -1 || mx != 3 {
		t.Fatalf("min/max = %v/%v", mn, mx)
	}
}

func TestDegradationPercent(t *testing.T) {
	if !almost(DegradationPercent(2, 1), 50) {
		t.Fatal("50% degradation expected")
	}
	if !almost(DegradationPercent(2, 2), 0) {
		t.Fatal("0% expected")
	}
	if DegradationPercent(0, 1) != 0 {
		t.Fatal("zero baseline must not blow up")
	}
	if DegradationPercent(1, 2) >= 0 {
		t.Fatal("improvement must be negative")
	}
}

func TestSlowdownPercent(t *testing.T) {
	if !almost(SlowdownPercent(100, 124), 24) {
		t.Fatal("24% slowdown expected")
	}
	if SlowdownPercent(0, 5) != 0 {
		t.Fatal("zero baseline must not blow up")
	}
}

func TestKendallTauIdentical(t *testing.T) {
	o := []string{"a", "b", "c", "d"}
	tau, err := KendallTau(o, o)
	if err != nil || !almost(tau, 1) {
		t.Fatalf("tau = %v err %v, want 1", tau, err)
	}
}

func TestKendallTauReversed(t *testing.T) {
	tau, err := KendallTau([]string{"a", "b", "c", "d"}, []string{"d", "c", "b", "a"})
	if err != nil || !almost(tau, -1) {
		t.Fatalf("tau = %v err %v, want -1", tau, err)
	}
}

func TestKendallTauPaperValues(t *testing.T) {
	// The paper's Figure 4 orderings: tau(o2,o1) and tau(o3,o1).
	o1 := []string{"blockie", "lbm", "mcf", "soplex", "milc", "omnetpp", "gcc", "xalan", "astar", "bzip"}
	o2 := []string{"milc", "lbm", "soplex", "mcf", "blockie", "gcc", "omnetpp", "xalan", "astar", "bzip"}
	o3 := []string{"lbm", "blockie", "milc", "mcf", "soplex", "gcc", "omnetpp", "xalan", "astar", "bzip"}
	t2, err := KendallTau(o2, o1)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := KendallTau(o3, o1)
	if err != nil {
		t.Fatal(err)
	}
	if !(t3 > t2) {
		t.Fatalf("paper requires tau(o3,o1)=%v > tau(o2,o1)=%v", t3, t2)
	}
	if math.Abs(t2-0.6) > 1e-9 || math.Abs(t3-(37.0/45))*45 > 1e-6 {
		t.Fatalf("taus = %v, %v; want 0.600 and %v", t2, t3, 37.0/45)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]string{"a"}, []string{"a"}); err == nil {
		t.Fatal("single item must error")
	}
	if _, err := KendallTau([]string{"a", "b"}, []string{"a"}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := KendallTau([]string{"a", "b"}, []string{"a", "c"}); err == nil {
		t.Fatal("different item sets must error")
	}
	if _, err := KendallTau([]string{"a", "a"}, []string{"a", "b"}); err == nil {
		t.Fatal("duplicates must error")
	}
	if _, err := KendallTau([]string{"a", "b"}, []string{"b", "b"}); err == nil {
		t.Fatal("duplicates in second must error")
	}
}

func TestKendallTauSymmetricRange(t *testing.T) {
	f := func(seed int64) bool {
		// Build a deterministic shuffle of 6 items from the seed.
		items := []string{"a", "b", "c", "d", "e", "f"}
		shuffled := append([]string(nil), items...)
		s := uint64(seed)
		for i := len(shuffled) - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		tau1, err1 := KendallTau(items, shuffled)
		tau2, err2 := KendallTau(shuffled, items)
		if err1 != nil || err2 != nil {
			return false
		}
		return almost(tau1, tau2) && tau1 >= -1 && tau1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRankByValue(t *testing.T) {
	order := RankByValue(map[string]float64{"a": 1, "b": 3, "c": 2})
	if order[0] != "b" || order[1] != "c" || order[2] != "a" {
		t.Fatalf("order = %v", order)
	}
	// Ties broken lexicographically for determinism.
	order = RankByValue(map[string]float64{"z": 1, "y": 1, "x": 1})
	if order[0] != "x" || order[2] != "z" {
		t.Fatalf("tie order = %v", order)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4}, 2)
	if !almost(out[0], 1) || !almost(out[1], 2) {
		t.Fatalf("normalize = %v", out)
	}
	out = Normalize([]float64{2, 4}, 0)
	if out[0] != 0 || out[1] != 0 {
		t.Fatal("zero base must yield zeros")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || !almost(g, 2) {
		t.Fatalf("geomean = %v err %v", g, err)
	}
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Fatal("non-positive input must error")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty must error")
	}
}

func TestPearsonR(t *testing.T) {
	r, err := PearsonR([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || !almost(r, 1) {
		t.Fatalf("perfect correlation: r = %v err %v", r, err)
	}
	r, err = PearsonR([]float64{1, 2, 3}, []float64{6, 4, 2})
	if err != nil || !almost(r, -1) {
		t.Fatalf("perfect anti-correlation: r = %v err %v", r, err)
	}
	if _, err := PearsonR([]float64{1}, []float64{1}); err == nil {
		t.Fatal("too few points must error")
	}
	if _, err := PearsonR([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero variance must error")
	}
	if _, err := PearsonR([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("out-of-range p must error")
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {100, 4}, {50, 2.5}, {25, 1.75},
	} {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("p%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if xs[0] != 4 {
		t.Fatal("Percentile must not reorder its input")
	}
	one, _ := Percentile([]float64{7}, 99)
	if one != 7 {
		t.Fatalf("single sample p99 = %v", one)
	}
}

func TestPercentileRejectsNaN(t *testing.T) {
	if _, err := Percentile([]float64{1, 2}, math.NaN()); err == nil {
		t.Fatal("NaN percentile must error, not panic")
	}
}
