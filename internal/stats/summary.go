package stats

// Statistical summaries for repeated-sample experiments: streaming
// moments (Welford), an order-insensitive per-metric Summary whose merge
// is exactly associative and commutative, and confidence intervals
// (normal-approximation for means, seeded bootstrap for percentiles).
//
// This is the layer behind the seed sweeps: "Patterns in the Chaos"
// (Leitner & Cito) shows IaaS performance distributions are multi-modal
// and only resolvable with large repeated samples, so every headline
// number the harness reports wants an error bar computed from many
// seeds. Because seed sweeps shard across processes and merge in one
// canonical plan order, every aggregation here is deterministic: same
// samples, same seed, same CI — bit for bit, whatever the shard count.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"kyoto/internal/xrand"
)

// Welford accumulates streaming mean and variance using Welford's
// online algorithm (numerically stable: no catastrophic cancellation of
// sum-of-squares). The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w (Chan et al.'s parallel
// update). Merging is associative and commutative up to floating-point
// rounding; code that needs bit-identical results across merge shapes
// should fold observations in one canonical order instead (see Summary).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Count returns the number of observations folded in.
func (w Welford) Count() int64 { return w.n }

// Mean returns the running mean (0 when empty).
func (w Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (n-1 denominator; 0 for fewer
// than two observations).
func (w Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// Summary is an order-insensitive aggregate of one metric's samples
// (one sample per seed in a seed sweep). It keeps the full sorted
// sample multiset, which buys two things the streaming moments cannot:
// percentiles with bootstrap confidence intervals, and a Merge that is
// *exactly* associative and commutative — merge(a, b) and merge(b, a)
// hold the identical float64s, so statistics derived from a merged
// Summary are bit-identical however the samples were partitioned across
// shard envelopes. Derived moments are computed by streaming the sorted
// samples through Welford, making them deterministic too.
//
// NaN and ±Inf samples are rejected at the door: a non-finite metric is
// a harness bug upstream, and silently sorting NaNs would corrupt every
// percentile after it.
type Summary struct {
	sorted []float64
}

// NewSummary builds a Summary from the samples (copied, not aliased).
// It rejects non-finite samples.
func NewSummary(xs ...float64) (Summary, error) {
	sorted := make([]float64, len(xs))
	for i, x := range xs {
		if !finite(x) {
			return Summary{}, fmt.Errorf("stats: non-finite sample %v", x)
		}
		sorted[i] = canonical(x)
	}
	sort.Float64s(sorted)
	return Summary{sorted: sorted}, nil
}

// Add folds one sample in, keeping the multiset sorted.
func (s *Summary) Add(x float64) error {
	if !finite(x) {
		return fmt.Errorf("stats: non-finite sample %v", x)
	}
	x = canonical(x)
	i := sort.SearchFloat64s(s.sorted, x)
	s.sorted = append(s.sorted, 0)
	copy(s.sorted[i+1:], s.sorted[i:])
	s.sorted[i] = x
	return nil
}

// AddAll folds a batch of samples in at once: the batch is validated,
// canonicalized and sorted, then merged into the multiset with one
// linear pass — O((n+k) + k log k) for k new samples against n held,
// against the O(n·k) that k repeated Add insertions cost (each Add
// shifts the tail of the backing slice). The result is bit-identical to
// calling Add per sample in any order, because both reduce to the same
// sorted multiset of canonicalized float64s.
//
// Validation is all-or-nothing: if any sample is non-finite, the
// Summary is left untouched and an error identifying the sample
// returned — matching Add's contract, where a rejected sample never
// mutates the multiset.
func (s *Summary) AddAll(xs ...float64) error {
	if len(xs) == 0 {
		return nil
	}
	batch := make([]float64, len(xs))
	for i, x := range xs {
		if !finite(x) {
			return fmt.Errorf("stats: non-finite sample %v at index %d", x, i)
		}
		batch[i] = canonical(x)
	}
	sort.Float64s(batch)
	*s = s.Merge(Summary{sorted: batch})
	return nil
}

// Merge returns the union of both sample multisets. The result is the
// same sorted slice whichever operand comes first and however the
// samples were previously grouped, so Merge is exactly associative and
// commutative — the property that lets per-shard Summaries fold into
// one whole-sweep Summary in any order.
func (s Summary) Merge(o Summary) Summary {
	merged := make([]float64, 0, len(s.sorted)+len(o.sorted))
	i, j := 0, 0
	for i < len(s.sorted) && j < len(o.sorted) {
		// Equal finite float64s hold identical bits (-0 is canonicalized
		// to +0 at intake), so ties may come from either side and the
		// merged slice is bitwise identical whichever operand led.
		if o.sorted[j] < s.sorted[i] {
			merged = append(merged, o.sorted[j])
			j++
		} else {
			merged = append(merged, s.sorted[i])
			i++
		}
	}
	merged = append(merged, s.sorted[i:]...)
	merged = append(merged, o.sorted[j:]...)
	return Summary{sorted: merged}
}

// Count returns the number of samples.
func (s Summary) Count() int { return len(s.sorted) }

// Samples returns the sorted samples (a copy).
func (s Summary) Samples() []float64 {
	return append([]float64(nil), s.sorted...)
}

// Equal reports whether both Summaries hold bitwise-identical sample
// multisets — the equality the merge-associativity property tests pin.
func (s Summary) Equal(o Summary) bool {
	if len(s.sorted) != len(o.sorted) {
		return false
	}
	for i, x := range s.sorted {
		if math.Float64bits(x) != math.Float64bits(o.sorted[i]) {
			return false
		}
	}
	return true
}

// moments streams the sorted samples through Welford — one canonical
// fold order, so the moments of a merged Summary cannot depend on how
// the samples reached it.
func (s Summary) moments() Welford {
	var w Welford
	for _, x := range s.sorted {
		w.Add(x)
	}
	return w
}

// Mean returns the sample mean (0 when empty).
func (s Summary) Mean() float64 { return s.moments().Mean() }

// Variance returns the sample variance (n-1 denominator).
func (s Summary) Variance() float64 { return s.moments().Variance() }

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return s.moments().StdDev() }

// Min returns the smallest sample, or an error when empty.
func (s Summary) Min() (float64, error) {
	if len(s.sorted) == 0 {
		return 0, ErrEmpty
	}
	return s.sorted[0], nil
}

// Max returns the largest sample, or an error when empty.
func (s Summary) Max() (float64, error) {
	if len(s.sorted) == 0 {
		return 0, ErrEmpty
	}
	return s.sorted[len(s.sorted)-1], nil
}

// Percentile returns the p-th percentile (p in [0, 100]) of the samples
// with the same linear-interpolation estimator as the package-level
// Percentile, but without re-sorting.
func (s Summary) Percentile(p float64) (float64, error) {
	if len(s.sorted) == 0 {
		return 0, ErrEmpty
	}
	if !(p >= 0 && p <= 100) { // inverted so NaN is rejected too
		return 0, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	return interpolate(s.sorted, p), nil
}

// interpolate reads the p-th percentile off an already-sorted slice.
func interpolate(sorted []float64, p float64) float64 {
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
}

// Halfwidth returns half the interval's width — the "±" number.
func (c CI) Halfwidth() float64 { return (c.Hi - c.Lo) / 2 }

// MeanCI returns the mean's two-sided confidence interval at the given
// level (e.g. 0.95) under the normal approximation: mean ± z·stderr.
// With a single sample the interval degenerates to [x, x].
func (s Summary) MeanCI(confidence float64) (CI, error) {
	if len(s.sorted) == 0 {
		return CI{}, ErrEmpty
	}
	z, err := zQuantile(confidence)
	if err != nil {
		return CI{}, err
	}
	w := s.moments()
	hw := z * w.StdErr()
	return CI{Lo: w.Mean() - hw, Hi: w.Mean() + hw}, nil
}

// DefaultBootstrapResamples is the bootstrap replication count used when
// a caller passes 0.
const DefaultBootstrapResamples = 1000

// PercentileCI returns a bootstrap confidence interval for the p-th
// percentile: `resamples` resamples-with-replacement are drawn with a
// deterministic generator seeded by `seed`, the percentile of each is
// collected, and the interval is the (1±confidence)/2 span of that
// bootstrap distribution (the percentile method). The same samples,
// seed, and resample count always yield the identical interval.
func (s Summary) PercentileCI(p, confidence float64, resamples int, seed uint64) (CI, error) {
	if len(s.sorted) == 0 {
		return CI{}, ErrEmpty
	}
	if !(p >= 0 && p <= 100) {
		return CI{}, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	if !(confidence > 0 && confidence < 1) {
		return CI{}, fmt.Errorf("stats: confidence %v outside (0, 1)", confidence)
	}
	if resamples <= 0 {
		resamples = DefaultBootstrapResamples
	}
	n := len(s.sorted)
	if n == 1 {
		return CI{Lo: s.sorted[0], Hi: s.sorted[0]}, nil
	}
	rng := xrand.New(seed)
	boot := make([]float64, resamples)
	resample := make([]float64, n)
	for b := range boot {
		for i := range resample {
			resample[i] = s.sorted[rng.Intn(n)]
		}
		sort.Float64s(resample)
		boot[b] = interpolate(resample, p)
	}
	sort.Float64s(boot)
	alpha := (1 - confidence) / 2
	return CI{
		Lo: interpolate(boot, 100*alpha),
		Hi: interpolate(boot, 100*(1-alpha)),
	}, nil
}

// MarshalJSON encodes the Summary as its sorted sample array, so a
// Summary can ride inside a shard envelope or checkpoint file.
func (s Summary) MarshalJSON() ([]byte, error) {
	if s.sorted == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.sorted)
}

// UnmarshalJSON decodes a sample array, re-sorting and re-validating so
// a hand-edited or corrupted file cannot smuggle in NaNs or misorder.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var xs []float64
	if err := json.Unmarshal(data, &xs); err != nil {
		return err
	}
	sum, err := NewSummary(xs...)
	if err != nil {
		return err
	}
	*s = sum
	return nil
}

// zQuantile returns the standard-normal two-sided critical value for a
// confidence level in (0, 1): z with P(|Z| <= z) = confidence
// (confidence 0.95 → ≈1.96).
func zQuantile(confidence float64) (float64, error) {
	if !(confidence > 0 && confidence < 1) {
		return 0, fmt.Errorf("stats: confidence %v outside (0, 1)", confidence)
	}
	return math.Sqrt2 * math.Erfinv(confidence), nil
}

// finite reports whether x is neither NaN nor ±Inf.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// canonical maps -0 to +0 so every sample value has exactly one bit
// pattern in the sorted multiset; sort.Float64s treats the zeros as
// equal and would otherwise leave their bit order arbitrary, breaking
// bitwise merge commutativity.
func canonical(x float64) float64 {
	if x == 0 {
		return 0
	}
	return x
}

// FormatMeanCI renders "mean ± halfwidth" the way the README results
// tables quote seed-sweep statistics, e.g. "0.54 ± 0.03".
func FormatMeanCI(mean, halfwidth float64) string {
	return fmt.Sprintf("%.3f ± %.3f", mean, halfwidth)
}
