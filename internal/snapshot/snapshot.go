// Package snapshot serializes complete simulation states — a single
// World or a whole Fleet — into versioned, fingerprinted envelopes and
// restores them with bit-identity replay guarantees: a world restored
// from Restore(Snapshot(w)) under the same configuration continues
// exactly as w would have, tick for tick and bit for bit.
//
// The envelope carries three safeguards so a stale, corrupted or
// mismatched checkpoint fails loudly instead of silently diverging:
//
//   - Schema pins the format version; a snapshot from a future or past
//     incompatible format is rejected by name.
//   - Config is a digest of the normalized construction configuration
//     (machine, scheduler, Kyoto enforcement, seed, fidelity). Restoring
//     under any other configuration — a different seed, the other cache
//     tier — is refused before any state is touched.
//   - Fingerprint hashes the payload bytes (the same FNV-1a fold the
//     sweep envelopes use), so truncation and bit flips are detected.
//
// What a world snapshot contains: the exact set-associative cache arrays
// (or the analytic occupancy model, per the world's fidelity tier), every
// scheduler's per-vCPU and per-VM accounts, the Kyoto pollution ledgers,
// the monitor's sampler snapshots, each workload generator's PRNG cursor
// and phase position, VM/owner id allocators, pending wake-ups, and the
// per-core assignments. What it deliberately omits — per-tick scratch —
// is exactly the state that is provably dead at a tick boundary; see
// internal/hv/state.go.
package snapshot

import (
	"encoding/json"
	"fmt"

	"kyoto/internal/cluster"
	"kyoto/internal/hv"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sweep"
)

// Schema identifies the snapshot envelope format.
const Schema = "kyoto-snapshot-v1"

// Envelope kinds.
const (
	// KindWorld wraps one host's WorldPayload.
	KindWorld = "world"
	// KindFleet wraps a cluster.FleetState.
	KindFleet = "fleet"
)

// Envelope is the on-disk form of every snapshot.
type Envelope struct {
	// Schema is always Schema for this format version.
	Schema string `json:"schema"`
	// Kind says what the payload is (KindWorld, KindFleet).
	Kind string `json:"kind"`
	// Config digests the construction configuration the state belongs to.
	Config string `json:"config"`
	// Fingerprint hashes Payload (sweep.FingerprintPayload), detecting
	// truncation and corruption.
	Fingerprint string `json:"fingerprint"`
	// Payload is the serialized state.
	Payload json.RawMessage `json:"payload"`
}

// WorldPayload is a KindWorld envelope's payload: the hypervisor state
// plus the counter monitor's sampler snapshots (present exactly when the
// world attaches one).
type WorldPayload struct {
	World  *hv.WorldState `json:"world"`
	Oracle []pmc.Counters `json:"oracle,omitempty"`
}

// ConfigDigest canonicalizes a configuration value to JSON and hashes
// it. Both sides of a checkpoint must digest the identically normalized
// configuration, which is the caller's contract (the public facade
// normalizes before digesting).
func ConfigDigest(cfg any) (string, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("snapshot: digesting config: %w", err)
	}
	return sweep.FingerprintPayload(raw), nil
}

// Encode wraps a payload value in a fingerprinted envelope.
func Encode(kind, configDigest string, payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding %s payload: %w", kind, err)
	}
	env := Envelope{
		Schema:      Schema,
		Kind:        kind,
		Config:      configDigest,
		Fingerprint: sweep.FingerprintPayload(raw),
		Payload:     raw,
	}
	return json.Marshal(env)
}

// Decode validates an envelope — schema, kind, configuration digest,
// payload fingerprint — and returns its payload. Every failure mode of a
// checkpoint file (truncated, bit-flipped, produced by another format
// version, taken under a different configuration or fidelity) is a clean
// error here, never a panic and never a silently diverging restore.
func Decode(data []byte, wantKind, wantConfig string) (json.RawMessage, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("snapshot: not a snapshot envelope (truncated or corrupted): %w", err)
	}
	if env.Schema != Schema {
		return nil, fmt.Errorf("snapshot: unsupported schema %q, this build reads %q", env.Schema, Schema)
	}
	if env.Kind != wantKind {
		return nil, fmt.Errorf("snapshot: envelope holds a %q snapshot, expected %q", env.Kind, wantKind)
	}
	if len(env.Payload) == 0 {
		return nil, fmt.Errorf("snapshot: envelope has no payload")
	}
	if got := sweep.FingerprintPayload(env.Payload); got != env.Fingerprint {
		return nil, fmt.Errorf("snapshot: payload does not match its fingerprint (%s vs %s) — file corrupted", got, env.Fingerprint)
	}
	if env.Config != wantConfig {
		return nil, fmt.Errorf("snapshot: snapshot was taken under a different configuration (config digest %s, restoring with %s) — the restore side must use the exact configuration of the checkpointed run, including seed and fidelity", env.Config, wantConfig)
	}
	return env.Payload, nil
}

// CaptureWorld snapshots a world (and its counter monitor, when
// attached) into an envelope. Call it only between ticks.
func CaptureWorld(w *hv.World, o *monitor.Oracle, configDigest string) ([]byte, error) {
	st, err := w.CaptureState()
	if err != nil {
		return nil, err
	}
	p := WorldPayload{World: st}
	if o != nil {
		p.Oracle = o.CaptureState(w.VCPUs())
	}
	return Encode(KindWorld, configDigest, p)
}

// RestoreWorld restores a world snapshot onto a freshly built world (and
// its counter monitor, when attached) constructed from the identical
// configuration the digest was computed over.
func RestoreWorld(w *hv.World, o *monitor.Oracle, configDigest string, data []byte) error {
	raw, err := Decode(data, KindWorld, configDigest)
	if err != nil {
		return err
	}
	var p WorldPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		return fmt.Errorf("snapshot: decoding world payload: %w", err)
	}
	if p.World == nil {
		return fmt.Errorf("snapshot: world payload has no hypervisor state")
	}
	if err := w.RestoreState(p.World); err != nil {
		return err
	}
	if o != nil {
		if err := o.RestoreState(w.VCPUs(), p.Oracle); err != nil {
			return err
		}
	}
	return nil
}

// CaptureFleet snapshots a whole fleet into an envelope. Call it only
// between RunTicks calls.
func CaptureFleet(f *cluster.Fleet, configDigest string) ([]byte, error) {
	st, err := f.CaptureState()
	if err != nil {
		return nil, err
	}
	return Encode(KindFleet, configDigest, st)
}

// RestoreFleet restores a fleet snapshot onto a freshly built fleet
// constructed from the identical configuration.
func RestoreFleet(f *cluster.Fleet, configDigest string, data []byte) error {
	raw, err := Decode(data, KindFleet, configDigest)
	if err != nil {
		return err
	}
	var st cluster.FleetState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("snapshot: decoding fleet payload: %w", err)
	}
	return f.RestoreState(&st)
}
