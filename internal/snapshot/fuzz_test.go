package snapshot_test

// Fuzzing the envelope codec. Two properties: Decode never panics on any
// input — truncated, bit-flipped, version-skewed, or valid — and always
// fails cleanly on anything that is not an intact envelope; and the
// encode→decode→encode composition is a fixpoint — one Encode
// canonicalizes (compacts, escapes), after which re-encoding the decoded
// payload reproduces the bytes exactly. A committed seed corpus under
// testdata/fuzz pins the interesting failure shapes.

import (
	"bytes"
	"encoding/json"
	"testing"

	"kyoto/internal/snapshot"
)

// validEnvelope builds a small intact envelope for seeding.
func validEnvelope(tb testing.TB) []byte {
	data, err := snapshot.Encode(snapshot.KindWorld, "cfg", map[string]int{"x": 1})
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

func addSeeds(f *testing.F) {
	valid := validEnvelope(f)
	f.Add([]byte(nil))
	f.Add([]byte("not a snapshot"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(flipByte(valid))
	f.Add(bytes.Replace(valid, []byte(snapshot.Schema), []byte("kyoto-snapshot-v999"), 1))
	f.Add([]byte(`{"schema":"kyoto-snapshot-v1","kind":"world","config":"cfg","fingerprint":"0","payload":null}`))
	f.Add([]byte(`{"schema":"kyoto-snapshot-v1","kind":"fleet","config":"cfg","fingerprint":"0","payload":{}}`))
}

func FuzzSnapshotDecode(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, kind := range []string{snapshot.KindWorld, snapshot.KindFleet} {
			payload, err := snapshot.Decode(data, kind, "cfg")
			if err != nil {
				continue
			}
			// Whatever Decode accepts must be intact: the payload it
			// returns re-encodes into a decodable envelope.
			enc, err := snapshot.Encode(kind, "cfg", payload)
			if err != nil {
				t.Fatalf("accepted payload does not re-encode: %v", err)
			}
			if _, err := snapshot.Decode(enc, kind, "cfg"); err != nil {
				t.Fatalf("re-encoded envelope does not decode: %v", err)
			}
		}
	})
}

func FuzzSnapshotRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		var env snapshot.Envelope
		if json.Unmarshal(data, &env) != nil {
			return
		}
		payload, err := snapshot.Decode(data, env.Kind, env.Config)
		if err != nil {
			return
		}
		// First Encode canonicalizes; from there the composition must be
		// byte-stable.
		enc1, err := snapshot.Encode(env.Kind, env.Config, payload)
		if err != nil {
			t.Fatalf("encode of decoded payload: %v", err)
		}
		p2, err := snapshot.Decode(enc1, env.Kind, env.Config)
		if err != nil {
			t.Fatalf("decode of canonical envelope: %v", err)
		}
		enc2, err := snapshot.Encode(env.Kind, env.Config, p2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode∘decode not a fixpoint:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
