package snapshot_test

// The bit-identity contract, at the hypervisor level: for every golden
// scenario (the same three worlds internal/hv pins fingerprints for), on
// both fidelity tiers, snapshotting at several mid-run ticks and
// restoring into a fresh world must (a) leave the snapshotted world's
// own future unchanged, (b) give the restored world the exact same
// future, and (c) re-capturing the restored world immediately must
// reproduce the snapshot byte for byte. Run under -race in CI.

import (
	"bytes"
	"fmt"
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/snapshot"
	"kyoto/internal/vm"
)

const (
	testSeed  = 7
	testTicks = 60
)

// world is one built scenario: the hypervisor plus its oracle (nil for
// non-Kyoto scenarios).
type world struct {
	w      *hv.World
	oracle *monitor.Oracle
}

// scenarios mirrors internal/hv's golden worlds: solo, contention pair,
// and the fully booked Kyoto host — the three commit-pinned futures.
var scenarios = []struct {
	name  string
	specs []vm.Spec
	kyoto bool
}{
	{"solo-gcc", []vm.Spec{
		{Name: "solo", App: "gcc", Pins: []int{0}},
	}, false},
	{"gcc-lbm-contention", []vm.Spec{
		{Name: "victim", App: "gcc", Pins: []int{0}},
		{Name: "attacker", App: "lbm", Pins: []int{1}},
	}, false},
	{"kyoto-admission-4vm", []vm.Spec{
		{Name: "vm0", App: "gcc", Pins: []int{0}, LLCCap: 250},
		{Name: "vm1", App: "lbm", Pins: []int{1}, LLCCap: 250},
		{Name: "vm2", App: "omnetpp", Pins: []int{2}, LLCCap: 250},
		{Name: "vm3", App: "blockie", Pins: []int{3}, LLCCap: 250},
	}, true},
}

// buildHost constructs the scenario's world with no VMs — the shape a
// restore target must have (RestoreState rebuilds the VMs itself).
func buildHost(t testing.TB, scIdx int, fid cache.Fidelity) world {
	t.Helper()
	sc := scenarios[scIdx]
	var s sched.Scheduler = sched.NewCredit(4)
	var k *core.Kyoto
	if sc.kyoto {
		k = core.New(s)
		s = k
	}
	w, err := hv.New(hv.Config{Machine: machine.TableOne(testSeed), Seed: testSeed, Fidelity: fid}, s)
	if err != nil {
		t.Fatal(err)
	}
	out := world{w: w}
	if sc.kyoto {
		out.oracle = monitor.NewOracle(k, core.Equation1)
		w.AddHook(out.oracle)
	}
	return out
}

// build constructs the scenario's world with its VMs placed, ready to run.
func build(t testing.TB, scIdx int, fid cache.Fidelity) world {
	t.Helper()
	out := buildHost(t, scIdx, fid)
	for _, spec := range scenarios[scIdx].specs {
		if _, err := out.w.AddVM(spec); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// fingerprint folds every vCPU's counters and every VM's punishment
// count — the identity the goldens pin, extended with the Kyoto outcome.
func fingerprint(w *hv.World) string {
	h := pmc.FoldSeed
	for _, v := range w.VCPUs() {
		h = v.Counters.Fold(h)
	}
	for _, m := range w.VMs() {
		h = pmc.FoldUint64(h, m.Punishments)
	}
	return fmt.Sprintf("%016x", h)
}

func TestWorldRoundTripBitIdentity(t *testing.T) {
	for scIdx := range scenarios {
		for _, fid := range []cache.Fidelity{cache.FidelityExact, cache.FidelityAnalytic} {
			t.Run(fmt.Sprintf("%s/%v", scenarios[scIdx].name, fid), func(t *testing.T) {
				ref := build(t, scIdx, fid)
				ref.w.RunTicks(testTicks)
				want := fingerprint(ref.w)

				for _, snapTick := range []int{0, 17, 41} {
					// (a) capturing must not perturb the captured world.
					a := build(t, scIdx, fid)
					a.w.RunTicks(snapTick)
					data, err := snapshot.CaptureWorld(a.w, a.oracle, "test-config")
					if err != nil {
						t.Fatalf("tick %d: capture: %v", snapTick, err)
					}
					a.w.RunTicks(testTicks - snapTick)
					if got := fingerprint(a.w); got != want {
						t.Fatalf("tick %d: snapshotted world diverged after capture: %s vs %s", snapTick, got, want)
					}

					// (b) the restored world continues bit-identically.
					b := buildHost(t, scIdx, fid)
					if err := snapshot.RestoreWorld(b.w, b.oracle, "test-config", data); err != nil {
						t.Fatalf("tick %d: restore: %v", snapTick, err)
					}
					if b.w.Now() != uint64(snapTick) {
						t.Fatalf("tick %d: restored clock at %d", snapTick, b.w.Now())
					}
					b.w.RunTicks(testTicks - snapTick)
					if got := fingerprint(b.w); got != want {
						t.Fatalf("tick %d: restored world diverged: %s vs %s", snapTick, got, want)
					}

					// (c) re-capturing a freshly restored world reproduces
					// the snapshot byte for byte.
					c := buildHost(t, scIdx, fid)
					if err := snapshot.RestoreWorld(c.w, c.oracle, "test-config", data); err != nil {
						t.Fatalf("tick %d: second restore: %v", snapTick, err)
					}
					again, err := snapshot.CaptureWorld(c.w, c.oracle, "test-config")
					if err != nil {
						t.Fatalf("tick %d: recapture: %v", snapTick, err)
					}
					if !bytes.Equal(again, data) {
						t.Fatalf("tick %d: capture(restore(snap)) differs from snap", snapTick)
					}
				}
			})
		}
	}
}

// TestRestoreFidelityMismatch pins the cross-tier failure mode below the
// config digest: even with a matching digest string, restoring an
// analytic snapshot into an exact world (or vice versa) must fail
// cleanly on the state shape.
func TestRestoreFidelityMismatch(t *testing.T) {
	a := build(t, 0, cache.FidelityAnalytic)
	a.w.RunTicks(5)
	data, err := snapshot.CaptureWorld(a.w, a.oracle, "same-digest")
	if err != nil {
		t.Fatal(err)
	}
	b := buildHost(t, 0, cache.FidelityExact)
	if err := snapshot.RestoreWorld(b.w, b.oracle, "same-digest", data); err == nil {
		t.Fatal("restoring an analytic snapshot into an exact world succeeded")
	}

	c := build(t, 0, cache.FidelityExact)
	c.w.RunTicks(5)
	data, err = snapshot.CaptureWorld(c.w, c.oracle, "same-digest")
	if err != nil {
		t.Fatal(err)
	}
	d := buildHost(t, 0, cache.FidelityAnalytic)
	if err := snapshot.RestoreWorld(d.w, d.oracle, "same-digest", data); err == nil {
		t.Fatal("restoring an exact snapshot into an analytic world succeeded")
	}
}

// TestRestoreRequiresFreshWorld pins the restore-onto-used-world error.
func TestRestoreRequiresFreshWorld(t *testing.T) {
	a := build(t, 0, cache.FidelityExact)
	a.w.RunTicks(3)
	data, err := snapshot.CaptureWorld(a.w, a.oracle, "cfg")
	if err != nil {
		t.Fatal(err)
	}
	b := build(t, 0, cache.FidelityExact)
	b.w.RunTicks(1)
	if err := snapshot.RestoreWorld(b.w, b.oracle, "cfg", data); err == nil {
		t.Fatal("restoring onto a world that already ran succeeded")
	}
}

func TestDecodeValidation(t *testing.T) {
	a := build(t, 0, cache.FidelityExact)
	a.w.RunTicks(3)
	data, err := snapshot.CaptureWorld(a.w, a.oracle, "cfg")
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		kind string
		cfg  string
	}{
		{"truncated", data[:len(data)/2], snapshot.KindWorld, "cfg"},
		{"empty", nil, snapshot.KindWorld, "cfg"},
		{"not-json", []byte("not a snapshot"), snapshot.KindWorld, "cfg"},
		{"bit-flip", flipByte(data), snapshot.KindWorld, "cfg"},
		{"version-skew", bytes.Replace(data, []byte(snapshot.Schema), []byte("kyoto-snapshot-v999"), 1), snapshot.KindWorld, "cfg"},
		{"kind-mismatch", data, snapshot.KindFleet, "cfg"},
		{"config-mismatch", data, snapshot.KindWorld, "other-cfg"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := snapshot.Decode(tc.data, tc.kind, tc.cfg); err == nil {
				t.Fatalf("Decode accepted a %s envelope", tc.name)
			}
		})
	}
}

// flipByte flips one bit in the middle of the payload region.
func flipByte(data []byte) []byte {
	out := append([]byte(nil), data...)
	out[len(out)/2] ^= 0x40
	return out
}
