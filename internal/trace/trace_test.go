package trace

import (
	"testing"
	"testing/quick"
)

func TestRecordAndDrain(t *testing.T) {
	r := NewRing(4)
	r.RecordAccess(0x100, 2, 1)
	r.RecordAccess(0x200, 3, 4)
	if r.Len() != 2 || r.Total() != 2 {
		t.Fatalf("len/total = %d/%d", r.Len(), r.Total())
	}
	events, total := r.Drain()
	if total != 2 || len(events) != 2 {
		t.Fatalf("drain = %d events, total %d", len(events), total)
	}
	if events[0].Addr != 0x100 || events[0].GapInstrs != 2 {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[1].MLP != 4 {
		t.Fatalf("event 1 MLP = %v", events[1].MLP)
	}
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("drain must reset the ring")
	}
}

func TestOverflowKeepsMostRecent(t *testing.T) {
	r := NewRing(3)
	for i := uint64(0); i < 10; i++ {
		r.RecordAccess(i, 0, 1)
	}
	events, total := r.Drain()
	if total != 10 {
		t.Fatalf("total = %d, want 10", total)
	}
	if len(events) != 3 {
		t.Fatalf("retained = %d, want 3", len(events))
	}
	// Most recent three, in arrival order.
	for i, want := range []uint64{7, 8, 9} {
		if events[i].Addr != want {
			t.Fatalf("events[%d].Addr = %d, want %d", i, events[i].Addr, want)
		}
	}
}

func TestTinyCapacity(t *testing.T) {
	r := NewRing(0) // clamped to 1
	r.RecordAccess(1, 0, 0)
	r.RecordAccess(2, 0, 0)
	events, total := r.Drain()
	if total != 2 || len(events) != 1 || events[0].Addr != 2 {
		t.Fatalf("events = %+v total %d", events, total)
	}
}

// Property: Drain returns min(total, capacity) events, ending with the
// last recorded address, and Total always counts every record.
func TestQuickRingInvariants(t *testing.T) {
	f := func(addrs []uint16, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		r := NewRing(capacity)
		for _, a := range addrs {
			r.RecordAccess(uint64(a), 1, 1)
		}
		events, total := r.Drain()
		if total != uint64(len(addrs)) {
			return false
		}
		want := len(addrs)
		if want > capacity {
			want = capacity
		}
		if len(events) != want {
			return false
		}
		if want > 0 && events[want-1].Addr != uint64(addrs[len(addrs)-1]) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
