// Package trace captures bounded per-vCPU memory-access traces — the
// simulator's stand-in for the Pin instrumentation the paper uses to feed
// McSimA+ (§3.3, second monitoring solution).
//
// A Ring keeps the most recent accesses up to its capacity and counts how
// many it saw in total, so a replayer can extrapolate from the retained
// sample when a window overflows.
package trace

// Event is one recorded memory access.
type Event struct {
	// Addr is the virtual address accessed.
	Addr uint64
	// GapInstrs is the number of non-memory instructions retired since
	// the previous access.
	GapInstrs uint32
	// MLP is the access's memory-level parallelism (0 means 1). Replay
	// uses it to model overlapped latency, as McSimA+ models the
	// microarchitecture's miss-handling registers.
	MLP float32
}

// Ring is a fixed-capacity access recorder implementing cpu.Tracer.
// The zero value is unusable; use NewRing.
type Ring struct {
	events []Event
	head   int    // next write position
	filled bool   // true once the ring wrapped
	total  uint64 // accesses seen since the last Drain
}

// NewRing returns a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{events: make([]Event, capacity)}
}

// RecordAccess implements cpu.Tracer.
func (r *Ring) RecordAccess(addr uint64, gapInstrs uint32, mlp float64) {
	r.events[r.head] = Event{Addr: addr, GapInstrs: gapInstrs, MLP: float32(mlp)}
	r.head++
	if r.head == len(r.events) {
		r.head = 0
		r.filled = true
	}
	r.total++
}

// Len returns the number of events currently retained.
func (r *Ring) Len() int {
	if r.filled {
		return len(r.events)
	}
	return r.head
}

// Total returns the number of accesses seen since the last Drain.
func (r *Ring) Total() uint64 { return r.total }

// Drain returns the retained events in arrival order plus the total seen,
// then resets the ring for the next window. The returned slice is freshly
// allocated; callers own it.
func (r *Ring) Drain() ([]Event, uint64) {
	n := r.Len()
	out := make([]Event, 0, n)
	if r.filled {
		out = append(out, r.events[r.head:]...)
	}
	out = append(out, r.events[:r.head]...)
	total := r.total
	r.head = 0
	r.filled = false
	r.total = 0
	return out, total
}
