// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator.
//
// The simulator must be reproducible bit-for-bit from a scenario seed, so no
// package in this module may use math/rand's global functions or seed from
// wall-clock time. Every component that needs randomness receives a *Rand
// (or derives one with Split) from the scenario configuration.
//
// The generator is splitmix64 (Steele, Lea, Flood; "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). It is not cryptographically
// secure; it is used only to drive synthetic workloads.
package xrand

// Rand is a deterministic pseudo-random number generator.
//
// The zero value is a valid generator with seed 0. Rand is not safe for
// concurrent use; derive independent generators with Split instead of
// sharing one.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Split derives a new, statistically independent generator from r.
// It advances r, so repeated Split calls yield distinct generators.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64()}
}

// State returns the generator's internal position. Together with SetState
// it lets checkpoint/restore reproduce a stream bit-for-bit: a generator
// restored to a captured state emits exactly the values the original
// would have emitted next.
func (r *Rand) State() uint64 { return r.state }

// SetState rewinds or advances r to a previously captured State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform pseudo-random value in [0, n).
// It returns 0 when n is 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	// Multiply-shift reduction (Lemire). The slight bias is irrelevant for
	// workload synthesis and avoids a divide on the hot path.
	hi, _ := mul64(r.Uint64(), n)
	return hi
}

// Intn returns a uniform pseudo-random value in [0, n). It returns 0 when
// n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform pseudo-random value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}
