package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 draws collided across seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draws")
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			return New(seed).Uint64n(0) == 0
		}
		v := New(seed).Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive n must be 0")
	}
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(13)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) hit rate = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared-ish sanity over 16 buckets.
	r := New(23)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64n(16)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/16) > n/16*0.05 {
			t.Fatalf("bucket %d count %d deviates more than 5%%", i, c)
		}
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r Rand
	// Must not panic; first draws must still look random-ish.
	a, b := r.Uint64(), r.Uint64()
	if a == b {
		t.Fatal("zero-value generator repeated itself")
	}
}
