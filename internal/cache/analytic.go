package cache

// This file is the package's second fidelity: an analytic LLC-occupancy
// model that replaces per-access simulation with one fixed-cost update
// per epoch (one hypervisor tick). The exact model (cache.go) charges
// ~20ns per simulated access; the analytic model charges nothing per
// access and O(owners) per epoch, which is what makes million-arrival
// sweeps affordable. internal/hv selects the tier at construction via
// Fidelity.
//
// # Model
//
// The LLC is reduced to one number per owner: O_i, the fractional number
// of lines owner i currently holds. Owners report their expected fill
// counts (misses, under write-allocate fills == misses) during the epoch
// via Reference; at the epoch boundary EndEpoch applies one step of the
// Markov occupancy recurrence:
//
//	E      = max(0, ΣM_j − (C − ΣO_j))   // fills that must evict
//	O_i'   = O_i − E·O_i/ΣO_j + M_i      // lose share of evictions, gain fills
//	O_i'   = min(O_i', W_i)              // never grow past the footprint
//	O_i''  = O_i' · min(1, C/ΣO_j')      // renormalize to capacity
//
// where C is the capacity in lines, M_i the owner's fills this epoch and
// W_i the owner's declared footprint (SetFootprint): the number of
// distinct lines its current phase can touch, already reduced for
// set-concentration (a strided pattern that maps to 1/k of the sets can
// hold at most sets/k × ways lines however small its footprint). The
// fixed point of the recurrence is the classical proportional-fill
// steady state O_i/C = M_i/ΣM_j, which is the same first-order behaviour
// the exact LRU model converges to under competing owners.
//
// Miss rates close the loop: internal/cpu's analytic executor derives
// each owner's LLC hit fraction from O_i against its footprint (see
// cpu/analytic.go) and feeds the resulting expected fills back in. The
// two tiers are cross-validated against each other on the committed
// goldens by internal/experiments' CrossValidate harness.

import "fmt"

// Fidelity selects the cache-model tier a simulated world runs on.
type Fidelity int

const (
	// FidelityExact is the per-access set-associative model — the
	// default, and the reference the goldens pin bit-for-bit.
	FidelityExact Fidelity = iota
	// FidelityAnalytic is the epoch-granular occupancy model defined in
	// this file: no per-access work, fixed cost per epoch, validated
	// against FidelityExact within the error budgets declared by the
	// cross-validation harness.
	FidelityAnalytic
)

// String returns the fidelity's CLI name.
func (f Fidelity) String() string {
	switch f {
	case FidelityExact:
		return "exact"
	case FidelityAnalytic:
		return "analytic"
	default:
		return fmt.Sprintf("Fidelity(%d)", int(f))
	}
}

// ParseFidelity parses a CLI fidelity name. The empty string selects
// FidelityExact, matching the zero value.
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "", "exact":
		return FidelityExact, nil
	case "analytic":
		return FidelityAnalytic, nil
	default:
		return FidelityExact, fmt.Errorf("cache: unknown fidelity %q (want exact or analytic)", s)
	}
}

// AnalyticLLC is the analytic-tier stand-in for a socket's shared LLC:
// fractional per-owner occupancy advanced once per epoch, no per-access
// state. Like Cache it is not safe for concurrent use; the hypervisor
// drives it from the single deterministic tick goroutine.
type AnalyticLLC struct {
	cfg   Config
	lines float64
	epoch uint64

	// Dense per-owner state, grown on demand exactly like Cache's stats
	// slices so owner-tag recycling keeps them bounded.
	occ       []float64 // current occupancy, lines
	fills     []float64 // fills reported this epoch
	footprint []float64 // declared footprint cap, lines
}

// NewAnalyticLLC builds the analytic model of the LLC described by cfg.
// Only LRU (the default policy) has an analytic counterpart; the policy
// ablations need the exact tier.
func NewAnalyticLLC(cfg Config) (*AnalyticLLC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy != 0 && cfg.Policy != LRU {
		return nil, fmt.Errorf("cache %q: analytic fidelity models LRU replacement only, have %v", cfg.Name, cfg.Policy)
	}
	return &AnalyticLLC{
		cfg:       cfg,
		lines:     float64(cfg.SizeBytes / cfg.LineBytes),
		occ:       make([]float64, presizeOwners),
		fills:     make([]float64, presizeOwners),
		footprint: make([]float64, presizeOwners),
	}, nil
}

// Config returns the configuration of the modelled cache.
func (a *AnalyticLLC) Config() Config { return a.cfg }

// Lines returns the modelled capacity in lines.
func (a *AnalyticLLC) Lines() float64 { return a.lines }

// Epoch returns the number of completed epochs. Executors key their
// cached occupancy-derived miss mixes on it.
func (a *AnalyticLLC) Epoch() uint64 { return a.epoch }

// grow extends the dense per-owner slices to cover owner.
func (a *AnalyticLLC) grow(owner Owner) {
	n := len(a.occ) * 2
	if n <= int(owner) {
		n = int(owner) + 1
	}
	occ := make([]float64, n)
	copy(occ, a.occ)
	a.occ = occ
	fills := make([]float64, n)
	copy(fills, a.fills)
	a.fills = fills
	fp := make([]float64, n)
	copy(fp, a.footprint)
	a.footprint = fp
}

// Reference reports fills (expected misses, fractional) charged to owner
// during the current epoch. The executor calls it once per run slice;
// the count only takes effect at the next EndEpoch.
func (a *AnalyticLLC) Reference(owner Owner, fills float64) {
	if int(owner) >= len(a.occ) {
		a.grow(owner)
	}
	a.fills[owner] += fills
}

// SetFootprint declares the most lines owner's current phase can keep
// resident (its distinct-line footprint, reduced for set-concentration).
// Occupancy never grows past it; occupancy already above a newly smaller
// footprint decays through eviction pressure rather than instantly.
func (a *AnalyticLLC) SetFootprint(owner Owner, lines float64) {
	if int(owner) >= len(a.occ) {
		a.grow(owner)
	}
	a.footprint[owner] = lines
}

// OccupancyLines returns owner's current occupancy in lines.
func (a *AnalyticLLC) OccupancyLines(owner Owner) float64 {
	if int(owner) >= len(a.occ) {
		return 0
	}
	return a.occ[owner]
}

// OccupancyFraction returns owner's share of the cache's lines, in
// [0,1] — the analytic counterpart of Cache.OccupancyFraction.
func (a *AnalyticLLC) OccupancyFraction(owner Owner) float64 {
	return a.OccupancyLines(owner) / a.lines
}

// EndEpoch advances the occupancy recurrence one step (see the file
// comment) and zeroes the epoch's fill counters. Cost is O(owners);
// it allocates nothing.
func (a *AnalyticLLC) EndEpoch() {
	var occupied, fills float64
	for i := range a.occ {
		occupied += a.occ[i]
		fills += a.fills[i]
	}
	evict := fills - (a.lines - occupied)
	if evict < 0 {
		evict = 0
	}
	var total float64
	for i := range a.occ {
		o := a.occ[i]
		if evict > 0 && occupied > 0 {
			o -= evict * o / occupied
			if o < 0 {
				o = 0
			}
		}
		grown := o + a.fills[i]
		if cap := a.footprint[i]; grown > cap {
			// Fills never push occupancy past the footprint; lines left
			// over from an earlier, larger phase survive until eviction
			// pressure reclaims them.
			if o > cap {
				grown = o
			} else {
				grown = cap
			}
		}
		a.occ[i] = grown
		a.fills[i] = 0
		total += grown
	}
	if total > a.lines {
		scale := a.lines / total
		for i := range a.occ {
			a.occ[i] *= scale
		}
	}
	a.epoch++
}

// SkipEpochs advances the epoch counter n steps without running the
// occupancy recurrence. It is exact — not an approximation — whenever
// every owner's occupancy and fills are zero: EndEpoch on the all-zero
// state computes occupied = fills = 0, eviction pressure
// max(0, 0 - (lines - 0)) = 0, and grows every slot by zero, so the
// only mutation is epoch++. A world with no VMs is in exactly that
// state (ReleaseOwner zeroes each departing owner's slots, and fills
// are reset at every epoch boundary), which is what the hypervisor's
// idle fast-forward relies on. If any slot is non-zero, the recurrence
// is run step by step instead, so SkipEpochs(n) is always bit-identical
// to n calls of EndEpoch.
func (a *AnalyticLLC) SkipEpochs(n uint64) {
	for i := range a.occ {
		if a.occ[i] != 0 || a.fills[i] != 0 {
			for ; n > 0; n-- {
				a.EndEpoch()
			}
			return
		}
	}
	a.epoch += n
}

// FlushOwner zeroes owner's occupancy, modelling the footprint loss of a
// migration; the declared footprint is kept so the owner can refill.
func (a *AnalyticLLC) FlushOwner(owner Owner) {
	if int(owner) < len(a.occ) {
		a.occ[owner] = 0
	}
}

// ReleaseOwner zeroes all of owner's state so the tag can be recycled
// for a future vCPU — the analytic counterpart of Cache.ReleaseOwner.
func (a *AnalyticLLC) ReleaseOwner(owner Owner) {
	if int(owner) < len(a.occ) {
		a.occ[owner] = 0
		a.fills[owner] = 0
		a.footprint[owner] = 0
	}
}

// OwnersTracked returns the capacity of the per-owner slices; the churn
// boundedness tests assert it stays at the peak concurrent population.
func (a *AnalyticLLC) OwnersTracked() int { return len(a.occ) }
