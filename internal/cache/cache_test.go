package cache

import (
	"testing"
	"testing/quick"
)

// tiny returns a small LRU cache: 4 sets x 2 ways x 64B lines = 512 B.
func tiny(t *testing.T, p Policy) *Cache {
	t.Helper()
	c, err := New(Config{
		Name: "T", SizeBytes: 512, Ways: 2, LineBytes: 64,
		Policy: p, HitLatencyCycles: 4, Seed: 1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", Config{Name: "c", SizeBytes: 1024, Ways: 2, LineBytes: 64}, true},
		{"zero size", Config{Name: "c", SizeBytes: 0, Ways: 2, LineBytes: 64}, false},
		{"negative ways", Config{Name: "c", SizeBytes: 1024, Ways: -1, LineBytes: 64}, false},
		{"line not pow2", Config{Name: "c", SizeBytes: 1024, Ways: 2, LineBytes: 48}, false},
		{"size not multiple of line", Config{Name: "c", SizeBytes: 1000, Ways: 2, LineBytes: 64}, false},
		{"lines not divisible by ways", Config{Name: "c", SizeBytes: 64 * 6, Ways: 4, LineBytes: 64}, false},
		{"sets not pow2", Config{Name: "c", SizeBytes: 64 * 12, Ways: 2, LineBytes: 64}, false},
		{"too many ways", Config{Name: "c", SizeBytes: 64 * 128, Ways: 128, LineBytes: 64}, false},
		{"bad epsilon", Config{Name: "c", SizeBytes: 1024, Ways: 2, LineBytes: 64, BIPEpsilon: 1.5}, false},
		{"paper LLC", Config{Name: "LLC", SizeBytes: 10 * 1024 * 1024 / 16, Ways: 20, LineBytes: 64}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("want error, got nil")
			}
		})
	}
}

func TestMissThenHit(t *testing.T) {
	c := tiny(t, LRU)
	if c.Access(0x1000, 1) {
		t.Fatal("first access must miss")
	}
	if !c.Access(0x1000, 1) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x1020, 1) {
		t.Fatal("same-line access (different offset) must hit")
	}
	st := c.Stats(1)
	if st.Accesses != 3 || st.Misses != 1 || st.Hits() != 2 {
		t.Fatalf("stats = %+v, want 3 accesses / 1 miss", st)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := tiny(t, LRU) // 4 sets, 2 ways; same set every 4 lines (256B stride)
	a0 := uint64(0x0000)
	a1 := a0 + 256 // same set, different tag
	a2 := a0 + 512
	c.Access(a0, 1)
	c.Access(a1, 1)
	c.Access(a0, 1) // a0 now MRU, a1 LRU
	c.Access(a2, 1) // evicts a1
	if !c.Probe(a0) {
		t.Fatal("a0 (MRU) must survive")
	}
	if c.Probe(a1) {
		t.Fatal("a1 (LRU) must be evicted")
	}
	if !c.Probe(a2) {
		t.Fatal("a2 must be present")
	}
}

func TestEvictionAttribution(t *testing.T) {
	c := tiny(t, LRU)
	// Owner 1 fills both ways of set 0, then owner 2 evicts one.
	c.Access(0, 1)
	c.Access(256, 1)
	c.Access(512, 2)
	s1, s2 := c.Stats(1), c.Stats(2)
	if s1.EvictionsSuffered != 1 {
		t.Fatalf("owner 1 suffered = %d, want 1", s1.EvictionsSuffered)
	}
	if s2.EvictionsInflicted != 1 {
		t.Fatalf("owner 2 inflicted = %d, want 1", s2.EvictionsInflicted)
	}
	if s2.SelfEvictions != 0 {
		t.Fatalf("owner 2 self-evictions = %d, want 0", s2.SelfEvictions)
	}
	// Owner 1 thrashes its own set: self eviction.
	c.Access(1024, 1)
	c.Access(1280, 1)
	c.Access(1536, 1)
	s1 = c.Stats(1)
	if s1.SelfEvictions == 0 {
		t.Fatal("expected at least one self eviction")
	}
}

func TestOccupancyTracking(t *testing.T) {
	c := tiny(t, LRU)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*64, 1) // four distinct sets
	}
	if got := c.Occupancy(1); got != 4 {
		t.Fatalf("occupancy = %d, want 4", got)
	}
	if got := c.OccupancyFraction(1); got != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	c.FlushOwner(1)
	if got := c.Occupancy(1); got != 0 {
		t.Fatalf("occupancy after FlushOwner = %d, want 0", got)
	}
	for i := uint64(0); i < 4; i++ {
		if c.Probe(i * 64) {
			t.Fatalf("line %d survived FlushOwner", i)
		}
	}
}

func TestFlushKeepsStats(t *testing.T) {
	c := tiny(t, LRU)
	c.Access(0, 1)
	c.Flush()
	if c.Probe(0) {
		t.Fatal("line survived Flush")
	}
	if st := c.Stats(1); st.Accesses != 1 {
		t.Fatalf("stats cleared by Flush: %+v", st)
	}
	c.ResetStats()
	if st := c.Stats(1); st.Accesses != 0 {
		t.Fatalf("ResetStats left %+v", st)
	}
}

func TestRandomPolicyStillCaches(t *testing.T) {
	c := tiny(t, Random)
	c.Access(0x40, 7)
	if !c.Access(0x40, 7) {
		t.Fatal("random policy must still hit on resident lines")
	}
}

func TestBIPResistsThrashing(t *testing.T) {
	// A working set slightly larger than one set's ways, streamed
	// repeatedly, thrashes LRU (hit rate ~0) but BIP keeps a subset
	// resident. Use a single-set cache to isolate the effect.
	mk := func(p Policy) *Cache {
		return MustNew(Config{
			Name: "one-set", SizeBytes: 4 * 64, Ways: 4, LineBytes: 64,
			Policy: p, Seed: 42,
		})
	}
	stream := func(c *Cache) float64 {
		// 6 lines > 4 ways, all mapping to the single set; 300 rounds.
		var hits, acc uint64
		for r := 0; r < 300; r++ {
			for i := uint64(0); i < 6; i++ {
				if c.Access(i*64, 1) {
					hits++
				}
				acc++
			}
		}
		return float64(hits) / float64(acc)
	}
	lru, bip := stream(mk(LRU)), stream(mk(BIP))
	if lru > 0.01 {
		t.Fatalf("LRU hit rate on thrash stream = %v, want ~0", lru)
	}
	if bip < 0.2 {
		t.Fatalf("BIP hit rate = %v, want >= 0.2 (thrash resistance)", bip)
	}
}

func TestDIPFollowsBetterPolicy(t *testing.T) {
	c := MustNew(Config{
		// 128 sets so both leader groups (set%64==0,1) exist.
		Name: "dip", SizeBytes: 128 * 4 * 64, Ways: 4, LineBytes: 64,
		Policy: DIP, Seed: 7,
	})
	// Thrash-heavy stream over 8 lines per set on a 4-way cache.
	var hits, acc uint64
	for r := 0; r < 200; r++ {
		for s := uint64(0); s < 128; s++ {
			for i := uint64(0); i < 8; i++ {
				if c.Access((s+i*128)*64, 1) {
					hits++
				}
				acc++
			}
		}
	}
	rate := float64(hits) / float64(acc)
	if rate < 0.05 {
		t.Fatalf("DIP hit rate = %v under thrash, want BIP-like (> 0.05)", rate)
	}
}

func TestPartitioning(t *testing.T) {
	c := MustNew(Config{
		Name: "part", SizeBytes: 4 * 4 * 64, Ways: 4, LineBytes: 64,
		Policy: PartitionedLRU, Seed: 3,
	})
	if err := c.SetPartition(1, 0b0011); err != nil {
		t.Fatal(err)
	}
	if err := c.SetPartition(2, 0b1100); err != nil {
		t.Fatal(err)
	}
	// Owner 2 fills its two ways of set 0; owner 1 then streams many
	// conflicting lines. Owner 2's lines must survive: that is the whole
	// point of UCP-style partitioning.
	c.Access(0x0000, 2)
	c.Access(0x0400, 2) // set stride = 4 sets * 64 B = 256; 0x400 = 4*256 -> set 0
	for i := uint64(2); i < 30; i++ {
		c.Access(i*0x400, 1)
	}
	if !c.Probe(0x0000) || !c.Probe(0x0400) {
		t.Fatal("partitioned owner 2 lines were evicted by owner 1")
	}
	if got := c.Stats(1).EvictionsInflicted; got != 0 {
		t.Fatalf("owner 1 inflicted %d evictions despite disjoint partitions", got)
	}
}

func TestPartitionRequiresPolicy(t *testing.T) {
	c := tiny(t, LRU)
	if err := c.SetPartition(1, 0b01); err == nil {
		t.Fatal("SetPartition must fail on non-partitioned policy")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	l1 := MustNew(Config{Name: "L1", SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatencyCycles: 4})
	l2 := MustNew(Config{Name: "L2", SizeBytes: 2048, Ways: 4, LineBytes: 64, HitLatencyCycles: 12})
	llc := MustNew(Config{Name: "LLC", SizeBytes: 8192, Ways: 8, LineBytes: 64, HitLatencyCycles: 45})
	p := &Path{L1D: l1, L2: l2, LLC: llc, MemLatencyCycles: 180, RemotePenaltyCycles: 120}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	lvl, lat := p.Access(0x1000, 1, false)
	if lvl != HitMemory || lat != 180 {
		t.Fatalf("cold access = %v/%d, want MEM/180", lvl, lat)
	}
	lvl, lat = p.Access(0x1000, 1, false)
	if lvl != HitL1 || lat != 4 {
		t.Fatalf("hot access = %v/%d, want L1/4", lvl, lat)
	}
	_, lat = p.Access(0x2000, 1, true)
	if lat != 300 {
		t.Fatalf("remote cold access latency = %d, want 300", lat)
	}

	// Evict from L1 only: next access should hit L2 at 12 cycles.
	p.FlushPrivate()
	l2.Access(0x1000, 1) // reload L2 by hand after flush
	lvl, lat = p.Access(0x1000, 1, false)
	if lvl != HitL2 && lvl != HitLLC {
		t.Fatalf("after private flush, level = %v, want L2 or LLC", lvl)
	}
	if lat != 12 && lat != 45 {
		t.Fatalf("latency = %d, want 12 or 45", lat)
	}
}

func TestHierarchyValidate(t *testing.T) {
	p := &Path{}
	if err := p.Validate(); err == nil {
		t.Fatal("empty path must not validate")
	}
}

// Property: for any access sequence, per-owner accounting stays coherent.
func TestQuickAccountingInvariants(t *testing.T) {
	f := func(addrs []uint16, owners []uint8) bool {
		c := MustNew(Config{
			Name: "q", SizeBytes: 8 * 2 * 64, Ways: 2, LineBytes: 64, Seed: 9,
		})
		for i, a := range addrs {
			o := Owner(1)
			if len(owners) > 0 {
				o = Owner(owners[i%len(owners)]%4) + 1
			}
			c.Access(uint64(a)*8, o)
		}
		tot := c.Totals()
		// accesses = hits + misses; fills == misses (write-allocate, no bypass)
		if tot.Hits()+tot.Misses != tot.Accesses || tot.Fills != tot.Misses {
			return false
		}
		// evictions suffered = inflicted + self, globally
		if tot.EvictionsSuffered != tot.EvictionsInflicted+tot.SelfEvictions {
			return false
		}
		// occupancy sums to fills - evictions and never exceeds capacity
		occ := 0
		for o := Owner(1); o <= 4; o++ {
			if c.Occupancy(o) < 0 {
				return false
			}
			occ += c.Occupancy(o)
		}
		if occ > 16 {
			return false
		}
		return uint64(occ) == tot.Fills-tot.EvictionsSuffered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a resident line always hits until something evicts it; Probe
// never lies.
func TestQuickProbeConsistency(t *testing.T) {
	f := func(seq []uint16) bool {
		c := MustNew(Config{
			Name: "q2", SizeBytes: 4 * 2 * 64, Ways: 2, LineBytes: 64, Seed: 11,
		})
		for _, a := range seq {
			addr := uint64(a) * 32
			present := c.Probe(addr)
			hit := c.Access(addr, 1)
			if present != hit {
				return false
			}
			if !c.Probe(addr) { // just-filled line must be resident
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// refLRU is a brute-force reference LRU model: full tags, uint64 stamps,
// linear victim scan with lowest-index tie-break — the semantics the
// production cache's linked recency list must reproduce exactly.
type refLRU struct {
	ways   int
	sets   uint64
	tags   [][]uint64
	stamps [][]uint64
	owners [][]Owner
	valid  [][]bool
	clock  uint64
}

func newRefLRU(sets, ways int) *refLRU {
	r := &refLRU{ways: ways, sets: uint64(sets)}
	for s := 0; s < sets; s++ {
		r.tags = append(r.tags, make([]uint64, ways))
		r.stamps = append(r.stamps, make([]uint64, ways))
		r.owners = append(r.owners, make([]Owner, ways))
		r.valid = append(r.valid, make([]bool, ways))
	}
	return r
}

func (r *refLRU) access(addr uint64, owner Owner) bool {
	tag := addr >> 6
	set := tag % r.sets
	r.clock++
	for w := 0; w < r.ways; w++ {
		if r.valid[set][w] && r.tags[set][w] == tag {
			r.stamps[set][w] = r.clock
			return true
		}
	}
	victim := -1
	for w := 0; w < r.ways; w++ {
		if !r.valid[set][w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		var bestStamp uint64
		for w := 0; w < r.ways; w++ {
			if victim < 0 || r.stamps[set][w] < bestStamp {
				victim, bestStamp = w, r.stamps[set][w]
			}
		}
	}
	r.tags[set][victim] = tag
	r.stamps[set][victim] = r.clock
	r.owners[set][victim] = owner
	r.valid[set][victim] = true
	return false
}

func (r *refLRU) flushOwner(owner Owner) {
	for s := range r.valid {
		for w := 0; w < r.ways; w++ {
			if r.valid[s][w] && r.owners[s][w] == owner {
				r.valid[s][w] = false
				r.stamps[s][w] = 0
			}
		}
	}
}

// Property: the linked-list LRU replacement is access-for-access identical
// to the reference stamp-scan model, with interleaved owners and under
// both full-Flush and FlushOwner holes (invalidated ways keep stale
// positions in the recency list; the old code zeroed their stamps — the
// victim choice must come out the same either way).
func TestQuickLRUMatchesReference(t *testing.T) {
	f := func(seq []uint16, flushAt, flushOwnerAt uint8) bool {
		const sets, ways = 4, 4
		c := MustNew(Config{
			Name: "lru-eq", SizeBytes: sets * ways * 64, Ways: ways, LineBytes: 64, Seed: 13,
		})
		ref := newRefLRU(sets, ways)
		for i, a := range seq {
			addr := uint64(a) * 64
			owner := Owner(i%3) + 1
			if c.Access(addr, owner) != ref.access(addr, owner) {
				return false
			}
			if len(seq) > 0 && i == int(flushAt)%len(seq) {
				c.Flush()
				for s := 0; s < sets; s++ {
					for w := 0; w < ways; w++ {
						ref.valid[s][w] = false
					}
				}
			}
			if len(seq) > 0 && i == int(flushOwnerAt)%len(seq) {
				c.FlushOwner(2)
				ref.flushOwner(2)
			}
		}
		// Residency must agree line-for-line at the end.
		for _, a := range seq {
			addr := uint64(a) * 64
			tag := addr >> 6
			set := tag % sets
			present := false
			for w := 0; w < ways; w++ {
				if ref.valid[set][w] && ref.tags[set][w] == tag {
					present = true
				}
			}
			if c.Probe(addr) != present {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOwnerStatsGrowth(t *testing.T) {
	c := tiny(t, LRU)
	// Owners far beyond the pre-sized slice must work and stay isolated.
	high := Owner(900)
	c.Access(0, high)
	c.Access(0, high)
	st := c.Stats(high)
	if st.Accesses != 2 || st.Misses != 1 {
		t.Fatalf("high-owner stats = %+v", st)
	}
	if got := c.Occupancy(high); got != 1 {
		t.Fatalf("high-owner occupancy = %d, want 1", got)
	}
	// Unseen owners (in and out of the grown range) read as zero.
	if c.Stats(5) != (OwnerStats{}) || c.Stats(1023) != (OwnerStats{}) {
		t.Fatal("unseen owners must have zero stats")
	}
	if c.Occupancy(5) != 0 || c.Occupancy(1023) != 0 {
		t.Fatal("unseen owners must have zero occupancy")
	}
}

func TestFlushOwnerInterleaved(t *testing.T) {
	c := tiny(t, LRU) // 4 sets x 2 ways
	// Owners 1 and 2 each own one way of every set.
	for set := uint64(0); set < 4; set++ {
		c.Access(set*64, 1)
		c.Access(set*64+256, 2)
	}
	if c.Occupancy(1) != 4 || c.Occupancy(2) != 4 {
		t.Fatalf("occupancy = %d/%d, want 4/4", c.Occupancy(1), c.Occupancy(2))
	}
	c.FlushOwner(1)
	if c.Occupancy(1) != 0 {
		t.Fatalf("owner 1 occupancy after flush = %d", c.Occupancy(1))
	}
	if c.Occupancy(2) != 4 {
		t.Fatalf("owner 2 occupancy disturbed: %d", c.Occupancy(2))
	}
	for set := uint64(0); set < 4; set++ {
		if c.Probe(set * 64) {
			t.Fatal("owner 1 line survived FlushOwner")
		}
		if !c.Probe(set*64 + 256) {
			t.Fatal("owner 2 line lost by FlushOwner")
		}
	}
	// Flushing an owner that never filled anything is a no-op.
	c.FlushOwner(777)
	if c.Occupancy(2) != 4 || c.Occupancy(777) != 0 {
		t.Fatal("FlushOwner of unseen owner must not disturb state")
	}
	// The flushed ways refill before any valid line is evicted.
	before := c.Totals().EvictionsSuffered
	for set := uint64(0); set < 4; set++ {
		c.Access(set*64+512, 3)
	}
	if c.Totals().EvictionsSuffered != before {
		t.Fatal("refill after FlushOwner must use the freed ways")
	}
}

func TestResetStatsKeepsOccupancyAndContent(t *testing.T) {
	c := tiny(t, LRU)
	c.Access(0, 1)
	c.Access(256, 2)
	c.ResetStats()
	if c.Stats(1) != (OwnerStats{}) || c.Stats(2) != (OwnerStats{}) || c.Totals() != (OwnerStats{}) {
		t.Fatal("ResetStats must zero all rows and totals")
	}
	if c.Occupancy(1) != 1 || c.Occupancy(2) != 1 {
		t.Fatal("ResetStats must preserve occupancy")
	}
	if !c.Probe(0) || !c.Probe(256) {
		t.Fatal("ResetStats must preserve content")
	}
	// Stats resume accumulating after the reset.
	c.Access(0, 1)
	if st := c.Stats(1); st.Accesses != 1 || st.Hits() != 1 {
		t.Fatalf("post-reset stats = %+v", st)
	}
}

func TestOccupancyFractionBounds(t *testing.T) {
	c := tiny(t, LRU)
	if got := c.OccupancyFraction(3); got != 0 {
		t.Fatalf("unseen owner fraction = %v, want 0", got)
	}
	for i := uint64(0); i < 8; i++ {
		c.Access(i*64, 1)
	}
	if got := c.OccupancyFraction(1); got != 1 {
		t.Fatalf("full-cache fraction = %v, want 1", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() OwnerStats {
		c := MustNew(Config{
			Name: "d", SizeBytes: 16 * 4 * 64, Ways: 4, LineBytes: 64,
			Policy: BIP, Seed: 1234,
		})
		for i := 0; i < 5000; i++ {
			c.Access(uint64(i*97)%32768, Owner(i%3)+1)
		}
		return c.Totals()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different totals:\n%+v\n%+v", a, b)
	}
}

func BenchmarkAccessLRU(b *testing.B) {
	c := MustNew(Config{
		Name: "bench", SizeBytes: 640 * 1024, Ways: 20, LineBytes: 64, Seed: 5,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*64)%(2*640*1024), 1)
	}
}

// BenchmarkCacheAccess covers the shapes the simulation hot path actually
// issues: hammering a resident line (the L1-hit fast path), streaming
// through twice the capacity (miss + eviction path), and interleaving four
// owners (the per-owner stats path a multi-VM host exercises).
func BenchmarkCacheAccess(b *testing.B) {
	mk := func() *Cache {
		return MustNew(Config{
			Name: "bench", SizeBytes: 640 * 1024, Ways: 20, LineBytes: 64, Seed: 5,
		})
	}
	b.Run("hit", func(b *testing.B) {
		c := mk()
		c.Access(0x1000, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(0x1000, 1)
		}
	})
	b.Run("stream-miss", func(b *testing.B) {
		c := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(uint64(i)*64%(2*640*1024), 1)
		}
	})
	b.Run("multi-owner", func(b *testing.B) {
		c := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(uint64(i)*64%(2*640*1024), Owner(i&3)+1)
		}
	})
	b.Run("path", func(b *testing.B) {
		l1 := MustNew(Config{Name: "L1", SizeBytes: 2 * 1024, Ways: 8, LineBytes: 64, HitLatencyCycles: 4, Seed: 5})
		l2 := MustNew(Config{Name: "L2", SizeBytes: 16 * 1024, Ways: 8, LineBytes: 64, HitLatencyCycles: 12, Seed: 6})
		llc := MustNew(Config{Name: "LLC", SizeBytes: 640 * 1024, Ways: 20, LineBytes: 64, HitLatencyCycles: 45, Seed: 7})
		p := &Path{L1D: l1, L2: l2, LLC: llc, MemLatencyCycles: 180, RemotePenaltyCycles: 120}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// 7/8 of accesses revisit a small hot set (L1 hits), 1/8 streams.
			addr := uint64(i) * 64 % 1024
			if i&7 == 0 {
				addr = uint64(i) * 64 % (2 * 640 * 1024)
			}
			p.Access(addr, 1, false)
		}
	})
}
