// Package cache implements the set-associative cache models at the heart of
// the simulated testbed: single caches with pluggable replacement policies,
// per-owner (per-vCPU) attribution of fills and evictions, optional way
// partitioning, and a multi-level hierarchy (L1 -> L2 -> LLC -> memory)
// using the latencies the paper measured with lmbench (§2.2.4).
//
// Attribution is what makes the Kyoto evaluation possible: every line
// remembers which owner filled it, so the simulator can report both a VM's
// own misses (what hardware PMCs expose) and the evictions it inflicts on
// other VMs (the ground-truth "pollution" that hardware cannot attribute
// when VMs share the LLC in parallel).
package cache

import (
	"fmt"
	"math/bits"

	"kyoto/internal/xrand"
)

// Owner identifies the entity (vCPU) that filled a cache line.
type Owner uint16

// OwnerNone marks an invalid or unattributed line.
const OwnerNone Owner = ^Owner(0)

// MaxOwners bounds the number of distinct owners a cache tracks statistics
// for. 1024 comfortably exceeds the paper's "about a hundred VMs per host".
const MaxOwners = 1024

// Policy selects the replacement policy of a cache.
type Policy int

// Replacement policies. LRU is the default and what the paper's hardware
// approximates; BIP/DIP reproduce the adaptive-insertion related work
// ([17,19] in the paper) for the ablation benches; Random is a cheap
// baseline; PartitionedLRU restricts each owner to a configured way mask,
// modelling UCP-style cache partitioning ([27]).
const (
	LRU Policy = iota + 1
	Random
	BIP
	DIP
	PartitionedLRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "Random"
	case BIP:
		return "BIP"
	case DIP:
		return "DIP"
	case PartitionedLRU:
		return "PartitionedLRU"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	// Name labels the cache in reports, e.g. "L1D" or "LLC".
	Name string
	// SizeBytes is the total capacity. Must be Ways*LineBytes*power-of-two.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size (the paper's machines use 64).
	LineBytes int
	// Policy is the replacement policy; zero value means LRU.
	Policy Policy
	// HitLatencyCycles is the access cost when this level hits, measured
	// from the core (i.e. inclusive of lookup in faster levels), matching
	// how lmbench reports it.
	HitLatencyCycles uint32
	// BIPEpsilon is the probability that BIP/DIP inserts at MRU rather
	// than LRU position. Zero means the conventional 1/32.
	BIPEpsilon float64
	// Seed seeds the policy's private RNG (Random and BIP need one).
	Seed uint64
}

// Validate checks the geometry and returns a descriptive error when the
// configuration cannot be built.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: size, ways and line size must be positive (got %d/%d/%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %q: size %d is not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, sets)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache %q: %d ways exceeds the 64-way partition mask limit", c.Name, c.Ways)
	}
	if c.BIPEpsilon < 0 || c.BIPEpsilon > 1 {
		return fmt.Errorf("cache %q: BIP epsilon %v outside [0,1]", c.Name, c.BIPEpsilon)
	}
	return nil
}

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	stamp uint64 // recency: higher = more recently used
	owner Owner
	valid bool
}

// OwnerStats aggregates a single owner's activity at one cache level.
type OwnerStats struct {
	// Accesses counts lookups issued by the owner.
	Accesses uint64
	// Misses counts lookups that missed at this level.
	Misses uint64
	// Fills counts lines installed by the owner (== Misses unless the
	// level is bypassed).
	Fills uint64
	// EvictionsInflicted counts valid lines belonging to *other* owners
	// that this owner's fills displaced — the ground-truth pollution the
	// Kyoto principle charges for.
	EvictionsInflicted uint64
	// EvictionsSuffered counts this owner's valid lines displaced by any
	// owner (including itself).
	EvictionsSuffered uint64
	// SelfEvictions counts this owner's lines displaced by its own fills.
	SelfEvictions uint64
}

// Hits returns the owner's hit count at this level.
func (s OwnerStats) Hits() uint64 { return s.Accesses - s.Misses }

// Cache is a single set-associative cache level.
//
// Cache is not safe for concurrent use: the simulated machine interleaves
// cores deterministically on a single goroutine (see internal/hv), which is
// what makes runs reproducible.
type Cache struct {
	cfg       Config
	lines     []line // sets*ways, set-major
	ways      uint32
	setMask   uint64
	lineShift uint
	clock     uint64 // global recency stamp source
	rng       *xrand.Rand

	// Per-owner statistics, allocated lazily as owners appear. The
	// memoized last lookup keeps the per-access hot path off the map:
	// owners run for whole scheduling chunks, so the memo almost always
	// hits.
	stats     map[Owner]*OwnerStats
	occupancy []int // indexed by owner, grown on demand
	memoOwner Owner
	memoStats *OwnerStats

	// Way partitioning (PartitionedLRU): per-owner allowed-way bitmasks.
	// Owners without an entry may use defaultMask.
	partition   map[Owner]uint64
	defaultMask uint64

	// DIP set-dueling state.
	psel     int
	pselMax  int
	totals   OwnerStats // aggregate over all owners (kept separately: cheap)
	epsilonQ uint64     // BIP: insert at MRU when rng draw < epsilonQ (16.16 fixed point of 2^32)
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = LRU
	}
	eps := cfg.BIPEpsilon
	if eps == 0 {
		eps = 1.0 / 32
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	c := &Cache{
		cfg:         cfg,
		lines:       make([]line, lines),
		ways:        uint32(cfg.Ways),
		setMask:     uint64(sets - 1),
		lineShift:   uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		rng:         xrand.New(cfg.Seed ^ 0xcafef00d),
		stats:       make(map[Owner]*OwnerStats),
		partition:   make(map[Owner]uint64),
		defaultMask: wayMaskAll(cfg.Ways),
		pselMax:     1024,
		psel:        512,
		epsilonQ:    uint64(eps * float64(1<<32)),
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and static configs whose
// validity is established by construction.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask + 1) }

// SetPartition restricts owner's fills to the ways set in mask
// (bit i = way i). Only honoured under PartitionedLRU. A zero mask removes
// the restriction. Lookups always search all ways, as in UCP hardware.
func (c *Cache) SetPartition(owner Owner, mask uint64) error {
	mask &= wayMaskAll(c.cfg.Ways)
	if c.cfg.Policy != PartitionedLRU {
		return fmt.Errorf("cache %q: partitioning requires PartitionedLRU policy, have %v", c.cfg.Name, c.cfg.Policy)
	}
	if mask == 0 {
		delete(c.partition, owner)
		return nil
	}
	c.partition[owner] = mask
	return nil
}

// Access performs one load/store lookup for owner at byte address addr.
// It returns true on hit. On miss the line is filled (write-allocate) and a
// victim is evicted per the replacement policy.
func (c *Cache) Access(addr uint64, owner Owner) bool {
	tag := addr >> c.lineShift
	set := uint32(tag & c.setMask)
	base := set * c.ways
	ways := c.lines[base : base+c.ways : base+c.ways]
	c.clock++
	st := c.ownerStats(owner)
	st.Accesses++
	c.totals.Accesses++

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.touch(&ways[i], set)
			return true
		}
	}

	st.Misses++
	c.totals.Misses++
	c.fill(ways, set, tag, owner, st)
	return false
}

// Probe reports whether addr is present without updating replacement state
// or statistics. Monitors use it to inspect without perturbing.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	set := uint32(tag & c.setMask)
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// touch updates replacement metadata on a hit.
func (c *Cache) touch(l *line, set uint32) {
	switch c.effectivePolicy(set) {
	case Random:
		// Random replacement keeps no recency state.
	default:
		// LRU, BIP, DIP, PartitionedLRU: promote to MRU on hit.
		l.stamp = c.clock
	}
}

// fill installs tag into the set for owner, evicting a victim if needed.
func (c *Cache) fill(ways []line, set uint32, tag uint64, owner Owner, st *OwnerStats) {
	victim := c.pickVictim(ways, set, owner)
	v := &ways[victim]
	if v.valid {
		vst := c.ownerStats(v.owner)
		vst.EvictionsSuffered++
		c.totals.EvictionsSuffered++
		c.occupancySlot(v.owner)[0]--
		if v.owner == owner {
			st.SelfEvictions++
			c.totals.SelfEvictions++
		} else {
			st.EvictionsInflicted++
			c.totals.EvictionsInflicted++
		}
	}
	v.tag = tag
	v.owner = owner
	v.valid = true
	c.occupancySlot(owner)[0]++
	st.Fills++
	c.totals.Fills++

	switch c.effectivePolicy(set) {
	case BIP:
		c.dipUpdate(set)
		v.stamp = c.bipStamp()
	case LRU, PartitionedLRU:
		c.dipUpdate(set)
		v.stamp = c.clock
	case Random:
		v.stamp = c.clock
	default:
		v.stamp = c.clock
	}
}

// bipStamp returns the insertion stamp BIP uses: MRU with probability
// epsilon, otherwise LRU (stamp 0 ages out first).
func (c *Cache) bipStamp() uint64 {
	if uint64(uint32(c.rng.Uint64())) < c.epsilonQ {
		return c.clock
	}
	return 0
}

// pickVictim chooses the way to evict in the given set.
func (c *Cache) pickVictim(ways []line, set uint32, owner Owner) uint32 {
	mask := c.defaultMask
	if c.cfg.Policy == PartitionedLRU {
		if m, ok := c.partition[owner]; ok {
			mask = m
		}
	}
	// Prefer an invalid way inside the allowed mask.
	for i := uint32(0); i < c.ways; i++ {
		if mask&(1<<i) != 0 && !ways[i].valid {
			return i
		}
	}
	if c.effectivePolicy(set) == Random {
		// Choose uniformly among allowed ways.
		n := bits.OnesCount64(mask)
		k := c.rng.Intn(n)
		for i := uint32(0); i < c.ways; i++ {
			if mask&(1<<i) != 0 {
				if k == 0 {
					return i
				}
				k--
			}
		}
	}
	// LRU within the allowed mask: lowest stamp wins, lowest index breaks
	// ties (deterministic).
	best := ^uint32(0)
	var bestStamp uint64
	for i := uint32(0); i < c.ways; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if best == ^uint32(0) || ways[i].stamp < bestStamp {
			best, bestStamp = i, ways[i].stamp
		}
	}
	return best
}

// effectivePolicy resolves DIP set-dueling: leader sets are pinned to LRU
// or BIP and follower sets go with the current PSEL winner.
func (c *Cache) effectivePolicy(set uint32) Policy {
	p := c.cfg.Policy
	if p != DIP {
		return p
	}
	switch set & 63 {
	case 0:
		return LRU
	case 1:
		return BIP
	}
	if c.psel >= c.pselMax/2 {
		return BIP
	}
	return LRU
}

// dipUpdate nudges the PSEL counter when a leader set misses.
func (c *Cache) dipUpdate(set uint32) {
	if c.cfg.Policy != DIP {
		return
	}
	switch set & 63 {
	case 0: // LRU leader missed: favour BIP
		if c.psel < c.pselMax {
			c.psel++
		}
	case 1: // BIP leader missed: favour LRU
		if c.psel > 0 {
			c.psel--
		}
	}
}

// ownerStats returns (allocating if needed) the stats row for owner.
func (c *Cache) ownerStats(owner Owner) *OwnerStats {
	if c.memoStats != nil && c.memoOwner == owner {
		return c.memoStats
	}
	s, ok := c.stats[owner]
	if !ok {
		s = &OwnerStats{}
		c.stats[owner] = s
	}
	c.memoOwner, c.memoStats = owner, s
	return s
}

// Stats returns a copy of owner's statistics at this level.
func (c *Cache) Stats(owner Owner) OwnerStats {
	if s, ok := c.stats[owner]; ok {
		return *s
	}
	return OwnerStats{}
}

// Totals returns aggregate statistics across all owners.
func (c *Cache) Totals() OwnerStats { return c.totals }

// occupancySlot returns a one-element slice addressing owner's occupancy
// counter, growing the backing store on demand.
func (c *Cache) occupancySlot(owner Owner) []int {
	if int(owner) >= len(c.occupancy) {
		grown := make([]int, int(owner)+1)
		copy(grown, c.occupancy)
		c.occupancy = grown
	}
	return c.occupancy[owner : owner+1]
}

// Occupancy returns the number of valid lines currently owned by owner.
func (c *Cache) Occupancy(owner Owner) int {
	if int(owner) >= len(c.occupancy) {
		return 0
	}
	return c.occupancy[owner]
}

// OccupancyFraction returns owner's share of the cache's lines, in [0,1].
func (c *Cache) OccupancyFraction(owner Owner) float64 {
	return float64(c.occupancy[owner]) / float64(len(c.lines))
}

// ResetStats zeroes all statistics (occupancy and content are preserved).
// Sampling windows call this between measurements.
func (c *Cache) ResetStats() {
	for _, s := range c.stats {
		*s = OwnerStats{}
	}
	c.totals = OwnerStats{}
}

// Flush invalidates every line and clears occupancy. Statistics are kept.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
	for i := range c.occupancy {
		c.occupancy[i] = 0
	}
}

// FlushOwner invalidates every line belonging to owner, modelling the cache
// footprint loss a vCPU suffers when migrated to another socket.
func (c *Cache) FlushOwner(owner Owner) {
	removed := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].owner == owner {
			c.lines[i] = line{}
			removed++
		}
	}
	if removed > 0 {
		c.occupancySlot(owner)[0] -= removed
	}
}

// wayMaskAll returns a bitmask with the low n bits set.
func wayMaskAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}
