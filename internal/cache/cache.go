// Package cache implements the set-associative cache models at the heart of
// the simulated testbed: single caches with pluggable replacement policies,
// per-owner (per-vCPU) attribution of fills and evictions, optional way
// partitioning, and a multi-level hierarchy (L1 -> L2 -> LLC -> memory)
// using the latencies the paper measured with lmbench (§2.2.4).
//
// Attribution is what makes the Kyoto evaluation possible: every line
// remembers which owner filled it, so the simulator can report both a VM's
// own misses (what hardware PMCs expose) and the evictions it inflicts on
// other VMs (the ground-truth "pollution" that hardware cannot attribute
// when VMs share the LLC in parallel).
//
// The package carries two fidelity tiers, selected by Fidelity. The exact
// tier (this file and hierarchy.go) simulates every access through the
// set-associative structures; the analytic tier (AnalyticLLC, analytic.go)
// replaces per-access work with a per-owner occupancy recurrence advanced
// once per epoch — ~200x faster, with modeled rather than simulated miss
// rates. The analytic model's equations and their assumptions are derived
// in analytic.go's file comment; its error against the exact tier is
// cross-validated on every committed golden by internal/experiments
// (crossval.go), with declared budgets enforced in CI.
package cache

import (
	"fmt"
	"math/bits"

	"kyoto/internal/xrand"
)

// Owner identifies the entity (vCPU) that filled a cache line.
type Owner uint16

// OwnerNone marks an invalid or unattributed line.
const OwnerNone Owner = ^Owner(0)

// MaxOwners bounds the number of distinct owners a cache tracks statistics
// for. 1024 comfortably exceeds the paper's "about a hundred VMs per host".
const MaxOwners = 1024

// Policy selects the replacement policy of a cache.
type Policy int

// Replacement policies. LRU is the default and what the paper's hardware
// approximates; BIP/DIP reproduce the adaptive-insertion related work
// ([17,19] in the paper) for the ablation benches; Random is a cheap
// baseline; PartitionedLRU restricts each owner to a configured way mask,
// modelling UCP-style cache partitioning ([27]).
const (
	LRU Policy = iota + 1
	Random
	BIP
	DIP
	PartitionedLRU
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case Random:
		return "Random"
	case BIP:
		return "BIP"
	case DIP:
		return "DIP"
	case PartitionedLRU:
		return "PartitionedLRU"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config describes one cache level.
type Config struct {
	// Name labels the cache in reports, e.g. "L1D" or "LLC".
	Name string
	// SizeBytes is the total capacity. Must be Ways*LineBytes*power-of-two.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size (the paper's machines use 64).
	LineBytes int
	// Policy is the replacement policy; zero value means LRU.
	Policy Policy
	// HitLatencyCycles is the access cost when this level hits, measured
	// from the core (i.e. inclusive of lookup in faster levels), matching
	// how lmbench reports it.
	HitLatencyCycles uint32
	// BIPEpsilon is the probability that BIP/DIP inserts at MRU rather
	// than LRU position. Zero means the conventional 1/32.
	BIPEpsilon float64
	// Seed seeds the policy's private RNG (Random and BIP need one).
	Seed uint64
}

// Validate checks the geometry and returns a descriptive error when the
// configuration cannot be built.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %q: size, ways and line size must be positive (got %d/%d/%d)",
			c.Name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cache %q: size %d is not a multiple of line size %d", c.Name, c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by %d ways", c.Name, lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: %d sets is not a power of two", c.Name, sets)
	}
	if c.Ways > 64 {
		return fmt.Errorf("cache %q: %d ways exceeds the 64-way partition mask limit", c.Name, c.Ways)
	}
	if c.BIPEpsilon < 0 || c.BIPEpsilon > 1 {
		return fmt.Errorf("cache %q: BIP epsilon %v outside [0,1]", c.Name, c.BIPEpsilon)
	}
	return nil
}

// The cache's line metadata is kept in structure-of-arrays form: the hit
// path scans only the dense tags array (8 bytes per way instead of a
// 24-byte line struct), the victim scan touches only stamps, and validity
// is one bitmask per set so "any invalid way?" is a single mask compare.
// This layout is what makes a simulated memory access cheap enough for
// the multi-thousand-world sweeps; see the package benchmarks.

// OwnerStats aggregates a single owner's activity at one cache level.
type OwnerStats struct {
	// Accesses counts lookups issued by the owner.
	Accesses uint64
	// Misses counts lookups that missed at this level.
	Misses uint64
	// Fills counts lines installed by the owner (== Misses unless the
	// level is bypassed).
	Fills uint64
	// EvictionsInflicted counts valid lines belonging to *other* owners
	// that this owner's fills displaced — the ground-truth pollution the
	// Kyoto principle charges for.
	EvictionsInflicted uint64
	// EvictionsSuffered counts this owner's valid lines displaced by any
	// owner (including itself).
	EvictionsSuffered uint64
	// SelfEvictions counts this owner's lines displaced by its own fills.
	SelfEvictions uint64
}

// Hits returns the owner's hit count at this level.
func (s OwnerStats) Hits() uint64 { return s.Accesses - s.Misses }

// Cache is a single set-associative cache level.
//
// Cache is not safe for concurrent use: the simulated machine interleaves
// cores deterministically on a single goroutine (see internal/hv), which is
// what makes runs reproducible.
type Cache struct {
	cfg    Config
	tags   []uint64 // sets*ways, set-major; meaningful only where valid
	stamps []uint64 // recency: higher = more recently used (nil under plain LRU)
	owners []Owner  // filling owner per line
	valid  []uint64 // per-set bitmask: bit i set = way i holds a line
	// Plain LRU keeps recency as a doubly-linked list of ways per set
	// (byte indices), so a hit's MRU promotion and a miss's LRU victim
	// are both O(1) — no stamp scan, no list search. lruNext points
	// towards LRU, lruPrev towards MRU.
	lruNext   []uint8 // indexed base+way
	lruPrev   []uint8 // indexed base+way
	lruHead   []uint8 // per set: MRU way
	lruTail   []uint8 // per set: LRU way
	ways      uint32
	setMask   uint64
	lineShift uint
	clock     uint64 // global recency stamp source
	rng       *xrand.Rand

	// Per-owner statistics and occupancy, dense slices indexed by Owner.
	// Owners are small dense ints (vCPU ids, bounded by MaxOwners), so a
	// direct index replaces the map+memo the hot path used to pay for.
	// Both slices grow together on demand; see growOwners.
	stats     []OwnerStats
	occupancy []int

	// Way partitioning (PartitionedLRU): per-owner allowed-way bitmasks.
	// Owners without an entry may use defaultMask.
	partition   map[Owner]uint64
	defaultMask uint64

	// Policy fast-path flags, fixed at construction.
	plainLRU   bool // LRU: recency kept in order, not stamps; O(1) victim
	touchMRU   bool // every policy but Random promotes to MRU on hit
	simpleFill bool // PartitionedLRU/Random: insert at clock, no dueling
	fastVictim bool // BIP/DIP: all ways allowed, stamp-scan victim

	// DIP set-dueling state.
	psel     int
	pselMax  int
	totals   OwnerStats // aggregate over all owners (kept separately: cheap)
	epsilonQ uint64     // BIP: insert at MRU when rng draw < epsilonQ (16.16 fixed point of 2^32)
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = LRU
	}
	eps := cfg.BIPEpsilon
	if eps == 0 {
		eps = 1.0 / 32
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	c := &Cache{
		cfg:         cfg,
		tags:        make([]uint64, lines),
		owners:      make([]Owner, lines),
		valid:       make([]uint64, sets),
		ways:        uint32(cfg.Ways),
		setMask:     uint64(sets - 1),
		lineShift:   uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		rng:         xrand.New(cfg.Seed ^ 0xcafef00d),
		stats:       make([]OwnerStats, presizeOwners),
		occupancy:   make([]int, presizeOwners),
		partition:   make(map[Owner]uint64),
		defaultMask: wayMaskAll(cfg.Ways),
		plainLRU:    cfg.Policy == LRU,
		touchMRU:    cfg.Policy != Random,
		simpleFill:  cfg.Policy == PartitionedLRU || cfg.Policy == Random,
		fastVictim:  cfg.Policy == BIP || cfg.Policy == DIP,
		pselMax:     1024,
		psel:        512,
		epsilonQ:    uint64(eps * float64(1<<32)),
	}
	if c.plainLRU {
		// Plain LRU keeps recency as a per-set linked list instead of
		// stamps. LRU stamps are strictly increasing and unique, so the
		// list's recency order and the stamp order are the same total
		// order — victim choice stays bit-identical to a stamp scan.
		c.lruNext = make([]uint8, lines)
		c.lruPrev = make([]uint8, lines)
		c.lruHead = make([]uint8, sets)
		c.lruTail = make([]uint8, sets)
		for s := 0; s < sets; s++ {
			base := s * cfg.Ways
			for w := 0; w < cfg.Ways; w++ {
				c.lruNext[base+w] = uint8(w + 1)
				c.lruPrev[base+w] = uint8(w - 1)
			}
			c.lruHead[s] = 0
			c.lruTail[s] = uint8(cfg.Ways - 1)
		}
	} else {
		c.stamps = make([]uint64, lines)
	}
	return c, nil
}

// presizeOwners is the initial length of the per-owner stats/occupancy
// slices: enough for a typical host's vCPU population without growth.
const presizeOwners = 16

// MustNew is New but panics on error; for tests and static configs whose
// validity is established by construction.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the configuration the cache was built with.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.setMask + 1) }

// SetPartition restricts owner's fills to the ways set in mask
// (bit i = way i). Only honoured under PartitionedLRU. A zero mask removes
// the restriction. Lookups always search all ways, as in UCP hardware.
func (c *Cache) SetPartition(owner Owner, mask uint64) error {
	mask &= wayMaskAll(c.cfg.Ways)
	if c.cfg.Policy != PartitionedLRU {
		return fmt.Errorf("cache %q: partitioning requires PartitionedLRU policy, have %v", c.cfg.Name, c.cfg.Policy)
	}
	if mask == 0 {
		delete(c.partition, owner)
		return nil
	}
	c.partition[owner] = mask
	return nil
}

// Access performs one load/store lookup for owner at byte address addr.
// It returns true on hit. On miss the line is filled (write-allocate) and a
// victim is evicted per the replacement policy.
//
// The hit path is deliberately lean: one dense stats index, one sequential
// scan over the set's tags, and a single conditional stamp store. All
// policy dispatch and eviction bookkeeping live on the miss path.
func (c *Cache) Access(addr uint64, owner Owner) bool {
	tag := addr >> c.lineShift
	set := uint32(tag & c.setMask)
	base := set * c.ways
	c.clock++
	if int(owner) >= len(c.stats) {
		c.growOwners(owner)
	}
	st := &c.stats[owner]
	st.Accesses++
	c.totals.Accesses++

	vmask := c.valid[set]
	tags := c.tags[base : base+c.ways : base+c.ways]
	for i := range tags {
		// The validity test only runs on a tag match (stale tags of
		// invalidated ways must not hit), so the common non-matching way
		// costs one load and one compare.
		if tags[i] == tag && vmask>>uint(i)&1 != 0 {
			if c.plainLRU {
				c.touchLRU(base, set, uint8(i))
			} else if c.touchMRU {
				c.stamps[base+uint32(i)] = c.clock
			}
			return true
		}
	}

	st.Misses++
	c.totals.Misses++
	c.fill(base, set, tag, owner, st)
	return false
}

// touchLRU promotes way w to MRU in the set's recency list: an unlink and
// a head insert, a handful of byte stores whatever the associativity.
func (c *Cache) touchLRU(base, set uint32, w uint8) {
	if c.lruHead[set] == w {
		return
	}
	p, n := c.lruPrev[base+uint32(w)], c.lruNext[base+uint32(w)]
	c.lruNext[base+uint32(p)] = n // w != head, so p is a real way
	if c.lruTail[set] == w {
		c.lruTail[set] = p
	} else {
		c.lruPrev[base+uint32(n)] = p
	}
	h := c.lruHead[set]
	c.lruPrev[base+uint32(h)] = w
	c.lruNext[base+uint32(w)] = h
	c.lruHead[set] = w
}

// Probe reports whether addr is present without updating replacement state
// or statistics. Monitors use it to inspect without perturbing.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	set := uint32(tag & c.setMask)
	base := set * c.ways
	vmask := c.valid[set]
	for i := uint32(0); i < c.ways; i++ {
		if c.tags[base+i] == tag && vmask>>i&1 != 0 {
			return true
		}
	}
	return false
}

// fill installs tag into the set for owner, evicting a victim if needed.
func (c *Cache) fill(base, set uint32, tag uint64, owner Owner, st *OwnerStats) {
	victim := c.pickVictim(base, set, owner)
	idx := base + victim
	vbit := uint64(1) << victim
	evicting := c.valid[set]&vbit != 0
	if evicting {
		vowner := c.owners[idx]
		// The victim's owner filled this line earlier, so its stats row
		// already exists; st stays valid because no growth can occur here.
		vst := &c.stats[vowner]
		vst.EvictionsSuffered++
		c.totals.EvictionsSuffered++
		c.occupancy[vowner]--
		if vowner == owner {
			st.SelfEvictions++
			c.totals.SelfEvictions++
		} else {
			st.EvictionsInflicted++
			c.totals.EvictionsInflicted++
		}
	} else {
		c.valid[set] |= vbit
	}
	c.tags[idx] = tag
	c.owners[idx] = owner
	c.occupancy[owner]++
	st.Fills++
	c.totals.Fills++

	if c.plainLRU {
		c.touchLRU(base, set, uint8(victim))
		return
	}
	if c.simpleFill {
		c.stamps[idx] = c.clock
		return
	}
	switch c.effectivePolicy(set) {
	case BIP:
		c.dipUpdate(set)
		c.stamps[idx] = c.bipStamp()
	default:
		c.dipUpdate(set)
		c.stamps[idx] = c.clock
	}
}

// bipStamp returns the insertion stamp BIP uses: MRU with probability
// epsilon, otherwise LRU (stamp 0 ages out first).
func (c *Cache) bipStamp() uint64 {
	if uint64(uint32(c.rng.Uint64())) < c.epsilonQ {
		return c.clock
	}
	return 0
}

// pickVictim chooses the way to evict in the given set.
func (c *Cache) pickVictim(base, set uint32, owner Owner) uint32 {
	vmask := c.valid[set]
	if c.plainLRU {
		// The lowest clear valid bit is exactly the first invalid way the
		// masked scan used to find; with all ways valid the LRU victim is
		// the recency list's tail: one byte load, no scan.
		if free := ^vmask & c.defaultMask; free != 0 {
			return uint32(bits.TrailingZeros64(free))
		}
		return uint32(c.lruTail[set])
	}
	if c.fastVictim {
		// BIP/DIP: every way is allowed; a straight stamp scan picks the
		// victim (lowest stamp wins, lowest index breaks the stamp-0 ties
		// BIP insertion creates, keeping victim choice deterministic).
		if free := ^vmask & c.defaultMask; free != 0 {
			return uint32(bits.TrailingZeros64(free))
		}
		stamps := c.stamps[base : base+c.ways : base+c.ways]
		best, bestStamp := uint32(0), stamps[0]
		for i := uint32(1); i < c.ways; i++ {
			if stamps[i] < bestStamp {
				best, bestStamp = i, stamps[i]
			}
		}
		return best
	}

	mask := c.defaultMask
	if c.cfg.Policy == PartitionedLRU {
		if m, ok := c.partition[owner]; ok {
			mask = m
		}
	}
	// Prefer an invalid way inside the allowed mask.
	if free := ^vmask & mask; free != 0 {
		return uint32(bits.TrailingZeros64(free))
	}
	if c.effectivePolicy(set) == Random {
		// Choose uniformly among allowed ways.
		n := bits.OnesCount64(mask)
		k := c.rng.Intn(n)
		for i := uint32(0); i < c.ways; i++ {
			if mask&(1<<i) != 0 {
				if k == 0 {
					return i
				}
				k--
			}
		}
	}
	// LRU within the allowed mask: lowest stamp wins, lowest index breaks
	// ties (deterministic).
	best := ^uint32(0)
	var bestStamp uint64
	for i := uint32(0); i < c.ways; i++ {
		if mask&(1<<i) == 0 {
			continue
		}
		if best == ^uint32(0) || c.stamps[base+i] < bestStamp {
			best, bestStamp = i, c.stamps[base+i]
		}
	}
	return best
}

// effectivePolicy resolves DIP set-dueling: leader sets are pinned to LRU
// or BIP and follower sets go with the current PSEL winner.
func (c *Cache) effectivePolicy(set uint32) Policy {
	p := c.cfg.Policy
	if p != DIP {
		return p
	}
	switch set & 63 {
	case 0:
		return LRU
	case 1:
		return BIP
	}
	if c.psel >= c.pselMax/2 {
		return BIP
	}
	return LRU
}

// dipUpdate nudges the PSEL counter when a leader set misses.
func (c *Cache) dipUpdate(set uint32) {
	if c.cfg.Policy != DIP {
		return
	}
	switch set & 63 {
	case 0: // LRU leader missed: favour BIP
		if c.psel < c.pselMax {
			c.psel++
		}
	case 1: // BIP leader missed: favour LRU
		if c.psel > 0 {
			c.psel--
		}
	}
}

// growOwners extends the dense stats and occupancy slices to cover owner.
// Growth doubles (bounded below by the owner's index) so repeated new
// owners amortize; MaxOwners documents the intended population bound, but
// the slices simply grow to whatever owner ids actually appear.
func (c *Cache) growOwners(owner Owner) {
	n := len(c.stats) * 2
	if n <= int(owner) {
		n = int(owner) + 1
	}
	stats := make([]OwnerStats, n)
	copy(stats, c.stats)
	c.stats = stats
	occ := make([]int, n)
	copy(occ, c.occupancy)
	c.occupancy = occ
}

// Stats returns a copy of owner's statistics at this level.
func (c *Cache) Stats(owner Owner) OwnerStats {
	if int(owner) >= len(c.stats) {
		return OwnerStats{}
	}
	return c.stats[owner]
}

// Totals returns aggregate statistics across all owners.
func (c *Cache) Totals() OwnerStats { return c.totals }

// Occupancy returns the number of valid lines currently owned by owner.
func (c *Cache) Occupancy(owner Owner) int {
	if int(owner) >= len(c.occupancy) {
		return 0
	}
	return c.occupancy[owner]
}

// OccupancyFraction returns owner's share of the cache's lines, in [0,1].
func (c *Cache) OccupancyFraction(owner Owner) float64 {
	return float64(c.Occupancy(owner)) / float64(len(c.tags))
}

// ResetStats zeroes all statistics (occupancy and content are preserved).
// Sampling windows call this between measurements.
func (c *Cache) ResetStats() {
	for i := range c.stats {
		c.stats[i] = OwnerStats{}
	}
	c.totals = OwnerStats{}
}

// Flush invalidates every line and clears occupancy. Statistics are kept.
// Recency state (stamps or the LRU order list) needs no reset: victims are
// taken from invalid ways until the set refills, and by then the recency
// order has been rebuilt entirely from the new fills.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.owners[i] = 0
	}
	for i := range c.stamps {
		c.stamps[i] = 0
	}
	for i := range c.valid {
		c.valid[i] = 0
	}
	for i := range c.occupancy {
		c.occupancy[i] = 0
	}
}

// FlushOwner invalidates every line belonging to owner, modelling the cache
// footprint loss a vCPU suffers when migrated to another socket.
func (c *Cache) FlushOwner(owner Owner) {
	removed := 0
	for set := range c.valid {
		vmask := c.valid[set]
		for rest := vmask; rest != 0; rest &= rest - 1 {
			i := uint32(bits.TrailingZeros64(rest))
			idx := uint32(set)*c.ways + i
			if c.owners[idx] == owner {
				c.valid[set] &^= 1 << i
				c.tags[idx], c.owners[idx] = 0, 0
				if c.stamps != nil {
					c.stamps[idx] = 0
				}
				removed++
			}
		}
	}
	if removed > 0 {
		// owner filled the removed lines, so its occupancy slot exists.
		c.occupancy[owner] -= removed
	}
}

// ReleaseOwner invalidates every line belonging to owner (FlushOwner) and
// zeroes the owner's statistics row and partition entry, so the tag can be
// recycled for a future vCPU without inheriting the departed one's history.
// Aggregate Totals are cumulative across the cache's whole life and are
// deliberately not rewound, so fleet-level pollution accounting survives
// churn; after a release, summing Stats over live owners no longer
// reproduces Totals.
func (c *Cache) ReleaseOwner(owner Owner) {
	c.FlushOwner(owner)
	if int(owner) < len(c.stats) {
		c.stats[owner] = OwnerStats{}
	}
	delete(c.partition, owner)
}

// OwnersTracked returns the capacity of the dense per-owner statistics
// slices — how many distinct owner tags this cache has sized itself for.
// With tag recycling (hv.World.RemoveVM releases tags for reuse) this stays
// bounded by the peak concurrent vCPU population, not by total arrivals;
// the churn regression tests assert exactly that.
func (c *Cache) OwnersTracked() int { return len(c.stats) }

// wayMaskAll returns a bitmask with the low n bits set.
func wayMaskAll(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}
