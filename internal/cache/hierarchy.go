package cache

import "fmt"

// Level identifies where in the memory hierarchy an access was satisfied.
type Level int

// Hierarchy levels, ordered fastest first.
const (
	HitL1 Level = iota + 1
	HitL2
	HitLLC
	HitMemory
)

// String returns a short label for the level.
func (l Level) String() string {
	switch l {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	case HitMemory:
		return "MEM"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Path is the memory path seen by one core: private L1D and L2, a shared
// LLC, and main memory. The same *Cache LLC instance is shared between the
// Paths of all cores on a socket, which is precisely how LLC contention
// arises in the model.
type Path struct {
	// L1D and L2 are this core's private caches.
	L1D *Cache
	L2  *Cache
	// LLC is the socket-shared last-level cache.
	LLC *Cache
	// MemLatencyCycles is the cost of a local main-memory access, measured
	// from the core (the paper's lmbench figure: ~180 cycles).
	MemLatencyCycles uint32
	// RemotePenaltyCycles is added on top of MemLatencyCycles when the
	// access targets a remote NUMA node (Fig 9's effect).
	RemotePenaltyCycles uint32
}

// Validate reports configuration errors.
func (p *Path) Validate() error {
	if p.L1D == nil || p.L2 == nil || p.LLC == nil {
		return fmt.Errorf("cache path: all of L1D, L2, LLC must be set")
	}
	if p.MemLatencyCycles == 0 {
		return fmt.Errorf("cache path: memory latency must be positive")
	}
	return nil
}

// Access performs one data access for owner at addr, filling lines on the
// way down (write-allocate at every level). remote selects the NUMA
// penalty. It returns the satisfying level and the access cost in cycles.
func (p *Path) Access(addr uint64, owner Owner, remote bool) (Level, uint32) {
	if p.L1D.Access(addr, owner) {
		return HitL1, p.L1D.cfg.HitLatencyCycles
	}
	if p.L2.Access(addr, owner) {
		return HitL2, p.L2.cfg.HitLatencyCycles
	}
	if p.LLC.Access(addr, owner) {
		return HitLLC, p.LLC.cfg.HitLatencyCycles
	}
	lat := p.MemLatencyCycles
	if remote {
		lat += p.RemotePenaltyCycles
	}
	return HitMemory, lat
}

// FlushPrivate invalidates the private levels (L1D, L2), modelling the
// private-cache loss on a core migration. The shared LLC is left intact;
// use LLC.FlushOwner for cross-socket moves.
func (p *Path) FlushPrivate() {
	p.L1D.Flush()
	p.L2.Flush()
}
