package cache

import (
	"math"
	"strings"
	"testing"
)

func testAnalyticConfig() Config {
	// 1024 lines: 64KB / 64B.
	return Config{Name: "LLC", SizeBytes: 64 * 1024, Ways: 8, LineBytes: 64, HitLatencyCycles: 45}
}

func newAnalytic(t *testing.T) *AnalyticLLC {
	t.Helper()
	a, err := NewAnalyticLLC(testAnalyticConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFidelityStringAndParse(t *testing.T) {
	cases := []struct {
		in   string
		want Fidelity
	}{
		{"", FidelityExact},
		{"exact", FidelityExact},
		{"analytic", FidelityAnalytic},
	}
	for _, c := range cases {
		got, err := ParseFidelity(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseFidelity(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseFidelity("quantum"); err == nil || !strings.Contains(err.Error(), "quantum") {
		t.Errorf("ParseFidelity(quantum) err = %v, want unknown-fidelity error", err)
	}
	if FidelityExact.String() != "exact" || FidelityAnalytic.String() != "analytic" {
		t.Errorf("String() = %q, %q", FidelityExact, FidelityAnalytic)
	}
	if s := Fidelity(42).String(); !strings.Contains(s, "42") {
		t.Errorf("Fidelity(42).String() = %q", s)
	}
}

func TestNewAnalyticLLCRejectsBadConfig(t *testing.T) {
	if _, err := NewAnalyticLLC(Config{Name: "broken"}); err == nil {
		t.Error("invalid config must be rejected")
	}
	cfg := testAnalyticConfig()
	cfg.Policy = Random
	if _, err := NewAnalyticLLC(cfg); err == nil || !strings.Contains(err.Error(), "LRU") {
		t.Errorf("non-LRU policy err = %v, want LRU-only error", err)
	}
	cfg.Policy = LRU
	if _, err := NewAnalyticLLC(cfg); err != nil {
		t.Errorf("explicit LRU rejected: %v", err)
	}
}

func TestAnalyticLLCAccessors(t *testing.T) {
	a := newAnalytic(t)
	if a.Config() != testAnalyticConfig() {
		t.Errorf("Config() = %+v", a.Config())
	}
	if a.Lines() != 1024 {
		t.Errorf("Lines() = %v, want 1024", a.Lines())
	}
	if a.Epoch() != 0 {
		t.Errorf("fresh model Epoch() = %d", a.Epoch())
	}
	a.EndEpoch()
	if a.Epoch() != 1 {
		t.Errorf("Epoch() after EndEpoch = %d", a.Epoch())
	}
	// Unknown owners read as zero without growing state.
	if a.OccupancyLines(5000) != 0 || a.OccupancyFraction(5000) != 0 {
		t.Error("unknown owner must have zero occupancy")
	}
}

func TestAnalyticLLCFillsBecomeOccupancy(t *testing.T) {
	a := newAnalytic(t)
	a.SetFootprint(1, 600)
	a.Reference(1, 200)
	if a.OccupancyLines(1) != 0 {
		t.Error("fills must not land before EndEpoch")
	}
	a.EndEpoch()
	if got := a.OccupancyLines(1); got != 200 {
		t.Errorf("occupancy after uncontended epoch = %v, want 200", got)
	}
	if got := a.OccupancyFraction(1); math.Abs(got-200.0/1024) > 1e-12 {
		t.Errorf("OccupancyFraction = %v", got)
	}
	// Footprint clamps growth: 500 more fills cannot push past 600.
	a.Reference(1, 500)
	a.EndEpoch()
	if got := a.OccupancyLines(1); got != 600 {
		t.Errorf("occupancy clamped to footprint: got %v, want 600", got)
	}
	// An epoch with no fills leaves occupancy alone (no eviction pressure).
	a.EndEpoch()
	if got := a.OccupancyLines(1); got != 600 {
		t.Errorf("idle epoch changed occupancy: %v", got)
	}
}

func TestAnalyticLLCEvictionSharesProportionally(t *testing.T) {
	a := newAnalytic(t)
	// Fill the cache with two owners at 512 lines each, then let owner 2
	// keep filling: owner 1 must lose lines in proportion to its share.
	a.SetFootprint(1, 1024)
	a.SetFootprint(2, 1024)
	a.Reference(1, 512)
	a.Reference(2, 512)
	a.EndEpoch()
	a.Reference(2, 256)
	a.EndEpoch()
	o1, o2 := a.OccupancyLines(1), a.OccupancyLines(2)
	if o1 >= 512 {
		t.Errorf("idle owner kept %v lines under pressure, want < 512", o1)
	}
	if o2 <= o1 {
		t.Errorf("filling owner %v not above idle owner %v", o2, o1)
	}
	if total := o1 + o2; total > a.Lines()+1e-9 {
		t.Errorf("total occupancy %v exceeds capacity %v", total, a.Lines())
	}
}

func TestAnalyticLLCSteadyStateProportionalToFills(t *testing.T) {
	a := newAnalytic(t)
	a.SetFootprint(1, 1024)
	a.SetFootprint(2, 1024)
	for i := 0; i < 400; i++ {
		a.Reference(1, 300)
		a.Reference(2, 100)
		a.EndEpoch()
	}
	// Fixed point: O_i/C = M_i/ΣM.
	f1, f2 := a.OccupancyFraction(1), a.OccupancyFraction(2)
	if math.Abs(f1-0.75) > 0.02 || math.Abs(f2-0.25) > 0.02 {
		t.Errorf("steady-state shares = %.3f, %.3f, want 0.75, 0.25", f1, f2)
	}
}

func TestAnalyticLLCShrunkFootprintDecays(t *testing.T) {
	a := newAnalytic(t)
	a.SetFootprint(1, 800)
	a.Reference(1, 800)
	a.EndEpoch()
	if a.OccupancyLines(1) != 800 {
		t.Fatalf("setup: occupancy = %v", a.OccupancyLines(1))
	}
	// Phase change to a smaller footprint: the surplus is not dropped
	// instantly, only reclaimed by eviction pressure.
	a.SetFootprint(1, 100)
	a.EndEpoch()
	if got := a.OccupancyLines(1); got != 800 {
		t.Errorf("surplus dropped without pressure: %v", got)
	}
	a.SetFootprint(2, 1024)
	a.Reference(2, 1024)
	a.EndEpoch()
	if got := a.OccupancyLines(1); got >= 800 {
		t.Errorf("eviction pressure failed to reclaim surplus: %v", got)
	}
}

func TestAnalyticLLCFlushAndRelease(t *testing.T) {
	a := newAnalytic(t)
	a.SetFootprint(1, 400)
	a.Reference(1, 400)
	a.EndEpoch()
	a.FlushOwner(1)
	if a.OccupancyLines(1) != 0 {
		t.Error("FlushOwner left occupancy behind")
	}
	// Footprint survives a flush so the owner can refill after migration.
	a.Reference(1, 200)
	a.EndEpoch()
	if got := a.OccupancyLines(1); got != 200 {
		t.Errorf("post-flush refill = %v, want 200", got)
	}
	a.Reference(1, 50) // pending fills that Release must drop
	a.ReleaseOwner(1)
	a.EndEpoch()
	if a.OccupancyLines(1) != 0 {
		t.Error("ReleaseOwner left state behind")
	}
	// Both are no-ops for owners beyond the tracked range.
	a.FlushOwner(9999)
	a.ReleaseOwner(9999)
}

func TestAnalyticLLCOwnerGrowth(t *testing.T) {
	a := newAnalytic(t)
	base := a.OwnersTracked()
	a.Reference(Owner(base+3), 10)
	if got := a.OwnersTracked(); got <= base+3 {
		t.Errorf("OwnersTracked = %d after touching owner %d", got, base+3)
	}
	grown := a.OwnersTracked()
	a.SetFootprint(Owner(grown+1), 5)
	if a.OwnersTracked() <= grown+1 {
		t.Errorf("SetFootprint did not grow owner state")
	}
}
