package cache

import (
	"strings"
	"testing"
)

func TestPolicyAndLevelStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		LRU: "LRU", Random: "Random", BIP: "BIP", DIP: "DIP", PartitionedLRU: "PartitionedLRU",
	} {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
	if s := Policy(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown Policy String() = %q", s)
	}
	for l, want := range map[Level]string{HitL1: "L1", HitL2: "L2", HitLLC: "LLC"} {
		if got := l.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestCacheAccessorsAndRelease(t *testing.T) {
	cfg := testAnalyticConfig()
	c := MustNew(cfg)
	// New normalizes the zero Policy to the explicit LRU default.
	if got := c.Config(); got.Name != cfg.Name || got.SizeBytes != cfg.SizeBytes || got.Policy != LRU {
		t.Errorf("Config() = %+v", got)
	}
	if got, want := c.Sets(), 128; got != want {
		t.Errorf("Sets() = %d, want %d", got, want)
	}
	c.Access(0, 1)
	if c.Stats(1).Accesses == 0 {
		t.Fatal("access not recorded")
	}
	c.ReleaseOwner(1)
	if c.Stats(1) != (OwnerStats{}) {
		t.Errorf("ReleaseOwner left stats: %+v", c.Stats(1))
	}
	if c.OwnersTracked() == 0 {
		t.Error("OwnersTracked() = 0 after use")
	}
}

func TestMustNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config must panic")
		}
	}()
	MustNew(Config{Name: "broken"})
}
