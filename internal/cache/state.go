package cache

// Cache checkpoint support, for both fidelity tiers. A cache's behaviour
// is a pure function of its configuration plus the mutable state captured
// here — line metadata, recency, the policy RNG, per-owner statistics and
// the DIP duel counter — so restoring a State into a cache freshly built
// from the identical Config reproduces every future access bit-for-bit.
// Capture and restore are cold-path (checkpoint-time) operations; they
// trade compactness for readability and validate geometry on restore so a
// state from a differently shaped cache fails cleanly.

import "fmt"

// OwnerMask is one owner's way-partition entry in serialized form (JSON
// maps need string keys, so the map is flattened to a sorted slice).
type OwnerMask struct {
	Owner Owner  `json:"owner"`
	Mask  uint64 `json:"mask"`
}

// State is the complete mutable state of an exact-tier Cache.
type State struct {
	Tags   []uint64 `json:"tags"`
	Stamps []uint64 `json:"stamps,omitempty"` // absent under plain LRU
	Owners []Owner  `json:"owners"`
	Valid  []uint64 `json:"valid"`
	// Plain-LRU recency lists; absent under stamp-based policies.
	LRUNext []uint8 `json:"lru_next,omitempty"`
	LRUPrev []uint8 `json:"lru_prev,omitempty"`
	LRUHead []uint8 `json:"lru_head,omitempty"`
	LRUTail []uint8 `json:"lru_tail,omitempty"`
	Clock   uint64  `json:"clock"`
	RNG     uint64  `json:"rng"`
	// Per-owner rows, truncated to the slice lengths the cache had grown
	// to (restore re-grows to the same lengths, keeping growth behaviour
	// aligned between the original and the restored cache).
	Stats     []OwnerStats `json:"stats"`
	Occupancy []int        `json:"occupancy"`
	Partition []OwnerMask  `json:"partition,omitempty"`
	PSel      int          `json:"psel"`
	Totals    OwnerStats   `json:"totals"`
}

// CaptureState extracts the cache's mutable state.
func (c *Cache) CaptureState() State {
	st := State{
		Tags:      append([]uint64(nil), c.tags...),
		Owners:    append([]Owner(nil), c.owners...),
		Valid:     append([]uint64(nil), c.valid...),
		Clock:     c.clock,
		RNG:       c.rng.State(),
		Stats:     append([]OwnerStats(nil), c.stats...),
		Occupancy: append([]int(nil), c.occupancy...),
		PSel:      c.psel,
		Totals:    c.totals,
	}
	if c.stamps != nil {
		st.Stamps = append([]uint64(nil), c.stamps...)
	}
	if c.plainLRU {
		st.LRUNext = append([]uint8(nil), c.lruNext...)
		st.LRUPrev = append([]uint8(nil), c.lruPrev...)
		st.LRUHead = append([]uint8(nil), c.lruHead...)
		st.LRUTail = append([]uint8(nil), c.lruTail...)
	}
	for owner, mask := range c.partition {
		st.Partition = append(st.Partition, OwnerMask{Owner: owner, Mask: mask})
	}
	sortOwnerMasks(st.Partition)
	return st
}

// RestoreState overlays a captured state onto a cache freshly built from
// the identical Config. Geometry mismatches fail without partial effects.
func (c *Cache) RestoreState(st State) error {
	lines, sets := len(c.tags), len(c.valid)
	if len(st.Tags) != lines || len(st.Owners) != lines || len(st.Valid) != sets {
		return fmt.Errorf("cache %q: state geometry %d/%d lines, %d sets does not match %d lines, %d sets",
			c.cfg.Name, len(st.Tags), len(st.Owners), len(st.Valid), lines, sets)
	}
	if c.plainLRU {
		if len(st.LRUNext) != lines || len(st.LRUPrev) != lines || len(st.LRUHead) != sets || len(st.LRUTail) != sets {
			return fmt.Errorf("cache %q: LRU list state does not match geometry (or the state is from a non-LRU cache)", c.cfg.Name)
		}
	} else if len(st.Stamps) != lines {
		return fmt.Errorf("cache %q: stamp state has %d lines, want %d (or the state is from a plain-LRU cache)",
			c.cfg.Name, len(st.Stamps), lines)
	}
	if len(st.Stats) != len(st.Occupancy) {
		return fmt.Errorf("cache %q: state has %d stats rows but %d occupancy rows", c.cfg.Name, len(st.Stats), len(st.Occupancy))
	}
	copy(c.tags, st.Tags)
	copy(c.owners, st.Owners)
	copy(c.valid, st.Valid)
	if c.plainLRU {
		copy(c.lruNext, st.LRUNext)
		copy(c.lruPrev, st.LRUPrev)
		copy(c.lruHead, st.LRUHead)
		copy(c.lruTail, st.LRUTail)
	} else {
		copy(c.stamps, st.Stamps)
	}
	c.clock = st.Clock
	c.rng.SetState(st.RNG)
	c.stats = append([]OwnerStats(nil), st.Stats...)
	c.occupancy = append([]int(nil), st.Occupancy...)
	c.partition = make(map[Owner]uint64, len(st.Partition))
	for _, om := range st.Partition {
		c.partition[om.Owner] = om.Mask
	}
	c.psel = st.PSel
	c.totals = st.Totals
	return nil
}

// sortOwnerMasks orders partition entries by owner so capture output is
// canonical (map iteration order must never leak into a snapshot).
func sortOwnerMasks(ms []OwnerMask) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Owner < ms[j-1].Owner; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// AnalyticState is the complete mutable state of an AnalyticLLC. The
// occupancy values are finite fractions of a finite capacity, so their
// JSON round-trip is exact.
type AnalyticState struct {
	Epoch     uint64    `json:"epoch"`
	Occ       []float64 `json:"occ"`
	Fills     []float64 `json:"fills"`
	Footprint []float64 `json:"footprint"`
}

// CaptureState extracts the model's mutable state.
func (a *AnalyticLLC) CaptureState() AnalyticState {
	return AnalyticState{
		Epoch:     a.epoch,
		Occ:       append([]float64(nil), a.occ...),
		Fills:     append([]float64(nil), a.fills...),
		Footprint: append([]float64(nil), a.footprint...),
	}
}

// RestoreState overlays a captured state onto a model freshly built from
// the identical Config.
func (a *AnalyticLLC) RestoreState(st AnalyticState) error {
	if len(st.Occ) != len(st.Fills) || len(st.Occ) != len(st.Footprint) {
		return fmt.Errorf("cache %q: analytic state rows disagree (%d/%d/%d)",
			a.cfg.Name, len(st.Occ), len(st.Fills), len(st.Footprint))
	}
	a.epoch = st.Epoch
	a.occ = append([]float64(nil), st.Occ...)
	a.fills = append([]float64(nil), st.Fills...)
	a.footprint = append([]float64(nil), st.Footprint...)
	return nil
}
