// Package mcsim is the repo's McSimA+ substitute (§3.3): an offline
// microarchitectural replay simulator that runs a captured access trace
// against a private replica of the machine's cache hierarchy and returns
// the PMCs the trace would have produced with the LLC to itself.
//
// This is the paper's second llc_cap_act identification strategy: instead
// of dedicating a socket to the measured vCPU (and paying the migration
// penalty of Figure 9), the trace is replayed "atop a dedicated machine"
// — here, a dedicated model — yielding contention-free per-VM counters.
package mcsim

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/machine"
	"kyoto/internal/trace"
)

// Result is the counter block a replay produces.
type Result struct {
	// Accesses and LLCMisses are the replayed memory behaviour.
	Accesses  uint64
	LLCMisses uint64
	// Instructions and Cycles estimate retirement and busy time under
	// the model's latencies.
	Instructions uint64
	Cycles       uint64
}

// MissRate returns LLC misses per access, or 0 for an empty replay.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.LLCMisses) / float64(r.Accesses)
}

// Replayer replays one vCPU's trace windows against a persistent private
// cache hierarchy, so steady-state cache contents carry across windows
// exactly as they would on the dedicated measurement machine.
type Replayer struct {
	path cache.Path
	// owner tags replayed fills; a replayer is single-tenant.
	owner cache.Owner
	// baseCPI approximates the non-memory cost per instruction.
	baseCPI float64
}

// NewReplayer builds a replayer with a fresh single-core replica of cfg's
// hierarchy.
func NewReplayer(cfg machine.Config) (*Replayer, error) {
	mk := func(c cache.Config, name string) (*cache.Cache, error) {
		c.Name = "mcsim-" + name
		return cache.New(c)
	}
	l1, err := mk(cfg.L1, "l1")
	if err != nil {
		return nil, fmt.Errorf("mcsim: %w", err)
	}
	l2, err := mk(cfg.L2, "l2")
	if err != nil {
		return nil, fmt.Errorf("mcsim: %w", err)
	}
	llc, err := mk(cfg.LLC, "llc")
	if err != nil {
		return nil, fmt.Errorf("mcsim: %w", err)
	}
	return &Replayer{
		path: cache.Path{
			L1D: l1, L2: l2, LLC: llc,
			MemLatencyCycles: cfg.MemLatencyCycles,
		},
		owner:   1,
		baseCPI: 1,
	}, nil
}

// minOverlappedLatency mirrors the execution engine's floor on overlapped
// LLC/memory latency.
const minOverlappedLatency = 12

// Replay runs one window's events and returns the window's counters.
// totalAccesses is the number of accesses the window actually contained
// (from trace.Ring.Drain); when it exceeds len(events) the result is
// scaled up linearly from the retained sample.
func (r *Replayer) Replay(events []trace.Event, totalAccesses uint64) Result {
	var res Result
	for _, ev := range events {
		res.Accesses++
		res.Instructions += uint64(ev.GapInstrs) + 1
		res.Cycles += uint64(float64(ev.GapInstrs) * r.baseCPI)
		level, lat := r.path.Access(ev.Addr, r.owner, false)
		if level >= cache.HitLLC && ev.MLP > 1 {
			over := uint32(float64(lat) / float64(ev.MLP))
			if over < minOverlappedLatency {
				over = minOverlappedLatency
			}
			lat = over
		}
		res.Cycles += uint64(lat)
		if level == cache.HitMemory {
			res.LLCMisses++
		}
	}
	if totalAccesses > res.Accesses && res.Accesses > 0 {
		scale := float64(totalAccesses) / float64(res.Accesses)
		res = Result{
			Accesses:     totalAccesses,
			LLCMisses:    uint64(float64(res.LLCMisses) * scale),
			Instructions: uint64(float64(res.Instructions) * scale),
			Cycles:       uint64(float64(res.Cycles) * scale),
		}
	}
	return res
}
