package mcsim

import (
	"testing"

	"kyoto/internal/machine"
	"kyoto/internal/trace"
)

func TestReplayCountsMisses(t *testing.T) {
	rep, err := NewReplayer(machine.TableOne(1))
	if err != nil {
		t.Fatal(err)
	}
	events := []trace.Event{
		{Addr: 0x1000, GapInstrs: 2},
		{Addr: 0x1000, GapInstrs: 2}, // same line: hit
		{Addr: 0x8000, GapInstrs: 0},
	}
	res := rep.Replay(events, uint64(len(events)))
	if res.Accesses != 3 || res.LLCMisses != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Instructions != 3+2+2 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
}

func TestReplayStatePersistsAcrossWindows(t *testing.T) {
	rep, err := NewReplayer(machine.TableOne(1))
	if err != nil {
		t.Fatal(err)
	}
	w1 := []trace.Event{{Addr: 0x40}}
	rep.Replay(w1, 1)
	// Same line in the next window: must hit thanks to persistent caches.
	res := rep.Replay(w1, 1)
	if res.LLCMisses != 0 {
		t.Fatalf("second window missed: %+v", res)
	}
}

func TestReplayScalesOverflowedWindows(t *testing.T) {
	rep, err := NewReplayer(machine.TableOne(1))
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct cold lines retained, but the window saw 10 accesses.
	events := []trace.Event{{Addr: 0}, {Addr: 64 * 1024}}
	res := rep.Replay(events, 10)
	if res.Accesses != 10 {
		t.Fatalf("scaled accesses = %d", res.Accesses)
	}
	if res.LLCMisses != 10 { // 2 misses scaled by 5
		t.Fatalf("scaled misses = %d", res.LLCMisses)
	}
}

func TestReplayAppliesMLP(t *testing.T) {
	mk := func() *Replayer {
		r, err := NewReplayer(machine.TableOne(1))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial := mk().Replay([]trace.Event{{Addr: 0x100000}}, 1)
	overlapped := mk().Replay([]trace.Event{{Addr: 0x100000, MLP: 6}}, 1)
	if overlapped.Cycles >= serial.Cycles {
		t.Fatalf("MLP must reduce cycles: %d vs %d", overlapped.Cycles, serial.Cycles)
	}
	if serial.Cycles != 180 || overlapped.Cycles != 30 {
		t.Fatalf("cycles = %d/%d, want 180/30", serial.Cycles, overlapped.Cycles)
	}
}

func TestMissRate(t *testing.T) {
	if (Result{}).MissRate() != 0 {
		t.Fatal("empty replay miss rate must be 0")
	}
	r := Result{Accesses: 4, LLCMisses: 1}
	if r.MissRate() != 0.25 {
		t.Fatalf("miss rate = %v", r.MissRate())
	}
}

func TestEmptyReplay(t *testing.T) {
	rep, err := NewReplayer(machine.TableOne(1))
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Replay(nil, 0)
	if res != (Result{}) {
		t.Fatalf("empty replay = %+v", res)
	}
}

func TestInvalidMachineRejected(t *testing.T) {
	cfg := machine.TableOne(1)
	cfg.L1.Ways = 3
	if _, err := NewReplayer(cfg); err == nil {
		t.Fatal("invalid cache geometry must fail")
	}
}
