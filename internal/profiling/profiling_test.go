package profiling

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	var runErr error
	StopInto(stop, &runErr)
	if runErr != nil {
		t.Fatal(runErr)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartDisabledIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartRejectsUnwritableCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "missing", "cpu.out"), ""); err == nil {
		t.Error("unwritable cpu path must fail Start")
	}
}

func TestStopIntoReportsUnwritableMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "missing", "mem.out"))
	if err != nil {
		t.Fatal(err)
	}
	var runErr error
	StopInto(stop, &runErr)
	if runErr == nil {
		t.Error("unwritable mem path must surface through StopInto")
	}
}

func TestStopIntoKeepsFirstError(t *testing.T) {
	first := errors.New("first")
	err := first
	StopInto(func() error { return errors.New("second") }, &err)
	if err != first {
		t.Errorf("StopInto replaced existing error: %v", err)
	}
}
