// Package profiling wires the standard pprof profilers into the CLIs so
// simulator hot-path work can be profiled without recompiling: every perf
// investigation starts with `kyotobench -run fig1 -cpuprofile cpu.out`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StopInto runs stop and merges its error into *err when *err is still
// nil. CLIs defer it so a profile that failed to write fails the run —
// perf tooling must not be handed a missing or truncated profile by a
// process that exited 0:
//
//	stop, err := profiling.Start(*cpuProfile, *memProfile)
//	if err != nil { return err }
//	defer profiling.StopInto(stop, &err) // err: named return
func StopInto(stop func() error, err *error) {
	if perr := stop(); perr != nil && *err == nil {
		*err = perr
	}
}

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// stop time to memPath; either path may be empty to skip that profile.
// The returned stop function must be called (typically deferred via
// StopInto) before the process exits, and reports any error writing the
// profiles.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile is stable
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
