package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// fakeSeedable runs two arms ("a", "b") whose single metric is a cheap
// deterministic function of (seed, arm), so merged distributions are
// predictable and shard-order bugs shift them visibly.
type fakeSeedable struct {
	seed   uint64
	rows   []MetricRow
	reseed func(uint64) (Seedable, error) // optional override
}

func newFakeSeedable(seed uint64) *fakeSeedable { return &fakeSeedable{seed: seed} }

func (f *fakeSeedable) Name() string { return "fake-seedable" }

func (f *fakeSeedable) Plan() []Job {
	return []Job{
		{Sweep: f.Name(), Key: "arm/a", Index: 0, Seed: f.seed, Params: map[string]string{"arm": "a"}},
		{Sweep: f.Name(), Key: "arm/b", Index: 1, Seed: f.seed},
	}
}

func (f *fakeSeedable) Run(job Job) (json.RawMessage, error) {
	return json.Marshal(float64(f.seed) + float64(job.Index)*100)
}

func (f *fakeSeedable) Merge(payloads []json.RawMessage) error {
	if len(payloads) != 2 {
		return fmt.Errorf("want 2 payloads, got %d", len(payloads))
	}
	f.rows = make([]MetricRow, len(payloads))
	for i, p := range payloads {
		var v float64
		if err := json.Unmarshal(p, &v); err != nil {
			return err
		}
		f.rows[i] = MetricRow{Arm: string(rune('a' + i)), Values: []float64{v, v * 2}}
	}
	return nil
}

func (f *fakeSeedable) Reseed(seed uint64) (Seedable, error) {
	if f.reseed != nil {
		return f.reseed(seed)
	}
	return newFakeSeedable(seed), nil
}

func (f *fakeSeedable) MetricNames() []string { return []string{"value", "double"} }

func (f *fakeSeedable) MetricRows() []MetricRow { return f.rows }

func (f *fakeSeedable) ConfigFingerprint() string { return "fake-config" }

func TestSeedSweeperPlanShape(t *testing.T) {
	s, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 3, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "seed-sweep/fake-seedable" {
		t.Fatalf("name %q", s.Name())
	}
	plan := s.Plan()
	if len(plan) != 6 {
		t.Fatalf("planned %d jobs, want 6", len(plan))
	}
	wantKeys := []string{"seed/5/arm/a", "seed/5/arm/b", "seed/6/arm/a", "seed/6/arm/b", "seed/7/arm/a", "seed/7/arm/b"}
	for i, j := range plan {
		if j.Key != wantKeys[i] || j.Index != i {
			t.Fatalf("job %d = %q/%d, want %q/%d", i, j.Key, j.Index, wantKeys[i], i)
		}
		if j.Seed != 5+uint64(i/2) {
			t.Fatalf("job %d seed %d", i, j.Seed)
		}
		if j.Params["seed"] != fmt.Sprint(j.Seed) {
			t.Fatalf("job %d params %v", i, j.Params)
		}
	}
	if plan[0].Params["arm"] != "a" {
		t.Fatalf("inner params not propagated: %v", plan[0].Params)
	}
}

func TestSeedSweeperMergedStatistics(t *testing.T) {
	s, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 4, BaseSeed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := (Engine{Workers: 1}).Run(s); err != nil {
		t.Fatal(err)
	}
	res := s.Result()
	if res == nil {
		t.Fatal("no result after Run")
	}
	if res.Seeds != 4 || res.BaseSeed != 10 || res.Sweep != "fake-seedable" {
		t.Fatalf("result header %+v", res)
	}
	// Arm "a": value = seed for seeds 10..13; arm "b": seed+100.
	sumA, err := res.Metric("a", "value")
	if err != nil {
		t.Fatal(err)
	}
	if sumA.Count() != 4 || sumA.Mean() != 11.5 {
		t.Fatalf("arm a: count %d mean %v", sumA.Count(), sumA.Mean())
	}
	sumB, err := res.Metric("b", "double")
	if err != nil {
		t.Fatal(err)
	}
	if sumB.Mean() != 2*111.5 {
		t.Fatalf("arm b double mean %v", sumB.Mean())
	}
	if _, err := res.Metric("a", "nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := res.Arm("zz"); err == nil {
		t.Fatal("unknown arm accepted")
	}
}

// The core guarantee: merged statistics are bit-identical for every
// shard count, because Merge always sees payloads in plan order.
func TestSeedSweeperShardCountInvariant(t *testing.T) {
	run := func(shards int) *SeedSweepResult {
		s, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 5})
		if err != nil {
			t.Fatal(err)
		}
		envs := make([]Envelope, shards)
		for k := range envs {
			if envs[k], err = (Engine{Workers: 2}).RunShard(s, k, shards); err != nil {
				t.Fatal(err)
			}
		}
		if err := Merge(s, envs); err != nil {
			t.Fatal(err)
		}
		return s.Result()
	}
	want, err := json.Marshal(run(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 7} {
		got, err := json.Marshal(run(shards))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%d shards: result %s != serial %s", shards, got, want)
		}
	}
}

func TestSeedSweeperConfigValidation(t *testing.T) {
	if _, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 0}); err == nil {
		t.Fatal("0 seeds accepted")
	}
	if _, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 2, Confidence: 1.5}); err == nil {
		t.Fatal("confidence 1.5 accepted")
	}
	if _, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 2, Resamples: -1}); err == nil {
		t.Fatal("negative resamples accepted")
	}
	proto := newFakeSeedable(0)
	proto.reseed = func(seed uint64) (Seedable, error) {
		return nil, fmt.Errorf("cannot reseed")
	}
	if _, err := NewSeedSweeper(proto, SeedSweepConfig{Seeds: 2}); err == nil {
		t.Fatal("reseed failure swallowed")
	}

	s, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.BaseSeed != 1 || s.cfg.Confidence != 0.95 || s.cfg.Resamples != 1000 || s.cfg.BootstrapSeed != 1 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestSeedSweeperConfigFingerprintDistinguishesRuns(t *testing.T) {
	fp := func(cfg SeedSweepConfig) string {
		s, err := NewSeedSweeper(newFakeSeedable(0), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.ConfigFingerprint()
	}
	base := fp(SeedSweepConfig{Seeds: 4})
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	if fp(SeedSweepConfig{Seeds: 5}) == base {
		t.Fatal("seed count not in fingerprint")
	}
	if fp(SeedSweepConfig{Seeds: 4, BaseSeed: 2}) == base {
		t.Fatal("base seed not in fingerprint")
	}
	if fp(SeedSweepConfig{Seeds: 4}) != base {
		t.Fatal("fingerprint not deterministic")
	}
}

// A seed sweep whose merged samples include the CI machinery end to
// end: mean CI halfwidth shrinks roughly as 1/sqrt(n).
func TestSeedSweepCIWidthShrinksWithSeeds(t *testing.T) {
	width := func(seeds int) float64 {
		s, err := NewSeedSweeper(newFakeSeedable(0), SeedSweepConfig{Seeds: seeds})
		if err != nil {
			t.Fatal(err)
		}
		if err := (Engine{}).Run(s); err != nil {
			t.Fatal(err)
		}
		sum, err := s.Result().Metric("a", "value")
		if err != nil {
			t.Fatal(err)
		}
		ci, err := sum.MeanCI(0.95)
		if err != nil {
			t.Fatal(err)
		}
		return ci.Halfwidth()
	}
	// The fake metric is uniform over consecutive seeds, whose stddev
	// grows linearly with n — so compare stderr-normalized widths via
	// the ratio test on matched distributions instead: use relative
	// halfwidth against the spread.
	w16, w64 := width(16)/math.Sqrt(16*16-1), width(64)/math.Sqrt(64*64-1)
	if w64 >= w16 {
		t.Fatalf("relative CI halfwidth did not shrink: 16 seeds %v, 64 seeds %v", w16, w64)
	}
}
