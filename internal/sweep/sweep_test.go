package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"kyoto/internal/pmc"
)

// fakeSweep squares its job indices: cheap, deterministic, and the merge
// result (the sum of squares) is order-sensitive enough to catch
// reassembly bugs.
type fakeSweep struct {
	name   string
	jobs   int
	runs   atomic.Int64
	merged []int
	failAt int // job index whose Run errors; -1 disables
}

func newFakeSweep(jobs int) *fakeSweep {
	return &fakeSweep{name: "fake", jobs: jobs, failAt: -1}
}

func (f *fakeSweep) Name() string { return f.name }

func (f *fakeSweep) Plan() []Job {
	plan := make([]Job, f.jobs)
	for i := range plan {
		plan[i] = Job{Sweep: f.name, Key: fmt.Sprintf("job/%d", i), Index: i, Seed: 1}
	}
	return plan
}

func (f *fakeSweep) Run(job Job) (json.RawMessage, error) {
	f.runs.Add(1)
	if job.Index == f.failAt {
		return nil, fmt.Errorf("boom at %d", job.Index)
	}
	return json.Marshal(job.Index * job.Index)
}

func (f *fakeSweep) Merge(payloads []json.RawMessage) error {
	f.merged = make([]int, len(payloads))
	for i, p := range payloads {
		if err := json.Unmarshal(p, &f.merged[i]); err != nil {
			return err
		}
	}
	return nil
}

func TestEngineRunMatchesShardedMerge(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 7} {
		whole := newFakeSweep(7)
		if err := (Engine{Workers: 1}).Run(whole); err != nil {
			t.Fatal(err)
		}
		parts := newFakeSweep(7)
		envs := make([]Envelope, shards)
		for k := 0; k < shards; k++ {
			env, err := Engine{Workers: 2}.RunShard(parts, k, shards)
			if err != nil {
				t.Fatal(err)
			}
			if env.Shard != k || env.Shards != shards || env.PlanJobs != 7 {
				t.Fatalf("envelope metadata wrong: %+v", env)
			}
			envs[k] = env
		}
		if err := Merge(parts, envs); err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if fmt.Sprint(parts.merged) != fmt.Sprint(whole.merged) {
			t.Fatalf("%d shards: merged %v, unsharded %v", shards, parts.merged, whole.merged)
		}
		if got := parts.runs.Load(); got != 7 {
			t.Fatalf("%d shards ran %d jobs, want exactly 7", shards, got)
		}
	}
}

func TestMergedFingerprintIsShardCountInvariant(t *testing.T) {
	base, err := Engine{}.RunShard(newFakeSweep(6), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := MergedFingerprint([]Envelope{base})
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 6} {
		envs := make([]Envelope, shards)
		for k := range envs {
			if envs[k], err = (Engine{}).RunShard(newFakeSweep(6), k, shards); err != nil {
				t.Fatal(err)
			}
		}
		got, err := MergedFingerprint(envs)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%d shards: merged fingerprint %s, want %s", shards, got, want)
		}
	}
}

func TestMergeRejectsBrokenEnvelopeSets(t *testing.T) {
	s := newFakeSweep(4)
	e0, err := Engine{}.RunShard(s, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := Engine{}.RunShard(s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		envs func() []Envelope
		want string
	}{
		{"missing shard", func() []Envelope { return []Envelope{e0} }, "missing shard"},
		{"duplicate shard", func() []Envelope { return []Envelope{e0, e0} }, "supplied twice"},
		{"foreign sweep", func() []Envelope {
			bad := e0
			bad.Sweep = "other"
			return []Envelope{bad, e1}
		}, "belongs to sweep"},
		{"disagreeing shard counts", func() []Envelope {
			bad := e1
			bad.Shards = 3
			return []Envelope{e0, bad}
		}, "disagree"},
		{"plan size mismatch", func() []Envelope {
			bad := e0
			bad.PlanJobs = 9
			return []Envelope{bad, e1}
		}, "same flags"},
		{"corrupted payload", func() []Envelope {
			bad := e0
			bad.Jobs = append([]JobResult(nil), e0.Jobs...)
			bad.Jobs[0].Payload = json.RawMessage("12345")
			return []Envelope{bad, e1}
		}, "fingerprint"},
		{"none at all", func() []Envelope { return nil }, "no shard envelopes"},
	}
	for _, tc := range cases {
		err := Merge(newFakeSweep(4), tc.envs())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestRunShardValidatesArguments(t *testing.T) {
	s := newFakeSweep(3)
	if _, err := (Engine{}).RunShard(s, 0, 0); err == nil {
		t.Fatal("0 shards must fail")
	}
	if _, err := (Engine{}).RunShard(s, 3, 3); err == nil {
		t.Fatal("shard == shards must fail")
	}
	if _, err := (Engine{}).RunShard(s, -1, 3); err == nil {
		t.Fatal("negative shard must fail")
	}
	s.failAt = 1
	if _, err := (Engine{}).RunShard(s, 0, 1); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("job failure must propagate, got %v", err)
	}
}

func TestEnvelopeFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newFakeSweep(5)
	for k := 0; k < 2; k++ {
		env, err := Engine{}.RunShard(s, k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := env.WriteFile(filepath.Join(dir, fmt.Sprintf("shard-%d.json", k)), nil); err != nil {
			t.Fatal(err)
		}
	}
	envs, err := ReadEnvelopes([]string{filepath.Join(dir, "shard-*.json")})
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != 2 {
		t.Fatalf("glob read %d envelopes, want 2", len(envs))
	}
	merged := newFakeSweep(5)
	if err := Merge(merged, envs); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(merged.merged) != "[0 1 4 9 16]" {
		t.Fatalf("merged %v", merged.merged)
	}

	if _, err := ReadEnvelopes([]string{filepath.Join(dir, "nope-*.json")}); err == nil {
		t.Fatal("empty glob must fail loudly")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"wrong"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEnvelope(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema must fail, got %v", err)
	}
}

func TestParseShardSpec(t *testing.T) {
	k, n, err := ParseShardSpec("2/5")
	if err != nil || k != 2 || n != 5 {
		t.Fatalf("2/5 -> %d/%d, %v", k, n, err)
	}
	for _, bad := range []string{"", "3", "a/b", "1/0", "5/5", "-1/4", "1/2/3"} {
		if _, _, err := ParseShardSpec(bad); err == nil {
			t.Fatalf("%q must be rejected", bad)
		}
	}
}

func TestForEachSerialAndParallel(t *testing.T) {
	for _, workers := range []int{1, 0, 4} {
		var sum atomic.Int64
		if err := ForEach(100, workers, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if sum.Load() != 4950 {
			t.Fatalf("workers=%d: sum %d", workers, sum.Load())
		}
	}
	err := ForEach(10, 3, func(i int) error {
		if i >= 4 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "fail 4") {
		t.Fatalf("lowest-indexed failure must win, got %v", err)
	}
}

// The fused compact-and-fold in FingerprintPayload must produce exactly
// what the original implementation produced — json.Compact into a
// buffer, then fold — for any valid JSON, or every committed envelope
// and golden fingerprint would shift.
func TestFingerprintPayloadMatchesCompactThenFold(t *testing.T) {
	reference := func(payload []byte) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, payload); err == nil {
			payload = buf.Bytes()
		}
		h := pmc.FoldSeed
		for _, b := range payload {
			h = pmc.FoldUint64(h, uint64(b))
		}
		return fmt.Sprintf("%016x", h)
	}
	cases := []string{
		`{}`,
		`{"seed":5}`,
		"{\n  \"seed\": 5,\n  \"apps\": [\"gcc\", \"lbm\"]\n}",
		`{"s":"spaces  inside\tstay","esc":"a \"quoted\" part"}`,
		`{"backslash":"ends with \\", "next": " \t "}`,
		`{"unicode":"é café — ☕","nested":{"a":[1,2,{"b":" x "}]}}`,
		`[1, 2,    3,
			{"deep": {"deeper": "  \\\" tricky "}}]`,
		`"just a string with \" and \\ and spaces  "`,
		`  42  `,
	}
	for _, c := range cases {
		if got, want := FingerprintPayload([]byte(c)), reference([]byte(c)); got != want {
			t.Errorf("payload %q: fused fold %s, reference %s", c, got, want)
		}
	}
}
