package sweep

// RunShardResumable contract tests on the fake sweep: a cold run's final
// envelope is byte-identical to plain RunShard; a run killed mid-shard
// leaves a checkpoint that a retry resumes from without re-running the
// completed jobs, and the resumed envelope is still byte-identical; and
// checkpoints from another sweep, shard slice or configuration are
// refused instead of silently discarded.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestRunShardResumableColdMatchesRunShard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	plain, err := Engine{Workers: 1}.RunShard(newFakeSweep(9), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	resumable, resumed, err := Engine{Workers: 1}.RunShardResumable(newFakeSweep(9), 0, 2, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("cold start resumed %d jobs", resumed)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(resumable)
	if string(a) != string(b) {
		t.Fatalf("resumable envelope differs from RunShard:\n%s\nvs\n%s", b, a)
	}

	// The final checkpoint file is the complete envelope: resuming from it
	// runs zero jobs and returns the identical envelope.
	again := newFakeSweep(9)
	env2, resumed2, err := Engine{Workers: 1}.RunShardResumable(again, 0, 2, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed2 != len(env2.Jobs) || again.runs.Load() != 0 {
		t.Fatalf("complete checkpoint re-ran jobs: resumed %d of %d, %d runs", resumed2, len(env2.Jobs), again.runs.Load())
	}
	c, _ := json.Marshal(env2)
	if string(c) != string(a) {
		t.Fatal("fully resumed envelope differs")
	}
}

func TestRunShardResumableKillAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	ref, err := Engine{Workers: 1}.RunShard(newFakeSweep(10), 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	// First attempt dies at job 6; with serial execution and a 1-job
	// checkpoint interval, jobs 0..5 are on disk.
	dying := newFakeSweep(10)
	dying.failAt = 6
	if _, _, err := (Engine{Workers: 1}).RunShardResumable(dying, 0, 1, path, 1); err == nil {
		t.Fatal("failing shard run succeeded")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint left behind: %v", err)
	}

	retry := newFakeSweep(10)
	env, resumed, err := Engine{Workers: 1}.RunShardResumable(retry, 0, 1, path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 6 {
		t.Fatalf("resumed %d jobs, want 6", resumed)
	}
	if got := retry.runs.Load(); got != 4 {
		t.Fatalf("retry ran %d jobs, want 4", got)
	}
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(env)
	if string(a) != string(b) {
		t.Fatal("resumed envelope differs from uninterrupted RunShard")
	}
	if err := Merge(newFakeSweep(10), []Envelope{env}); err != nil {
		t.Fatalf("resumed envelope does not merge: %v", err)
	}
}

func TestRunShardResumableRejectsMismatchedCheckpoints(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if _, _, err := (Engine{Workers: 1}).RunShardResumable(newFakeSweep(8), 1, 2, path, 1); err != nil {
		t.Fatal(err)
	}

	cases := map[string]func() (Envelope, int, error){
		"other-shard": func() (Envelope, int, error) {
			return Engine{Workers: 1}.RunShardResumable(newFakeSweep(8), 0, 2, path, 1)
		},
		"other-shard-count": func() (Envelope, int, error) {
			return Engine{Workers: 1}.RunShardResumable(newFakeSweep(8), 1, 4, path, 1)
		},
		"other-plan": func() (Envelope, int, error) {
			return Engine{Workers: 1}.RunShardResumable(newFakeSweep(5), 1, 2, path, 1)
		},
		"other-sweep": func() (Envelope, int, error) {
			s := newFakeSweep(8)
			s.name = "different"
			return Engine{Workers: 1}.RunShardResumable(s, 1, 2, path, 1)
		},
	}
	for name, run := range cases {
		if _, _, err := run(); err == nil {
			t.Errorf("%s: mismatched checkpoint accepted", name)
		}
	}

	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Engine{Workers: 1}).RunShardResumable(newFakeSweep(8), 1, 2, corrupt, 1); err == nil {
		t.Error("corrupted checkpoint accepted")
	}

	if _, _, err := (Engine{Workers: 1}).RunShardResumable(newFakeSweep(8), 0, 1, filepath.Join(dir, "x.json"), 0); err == nil {
		t.Error("zero checkpoint interval accepted")
	}
}

func TestRunShardResumableParallelWorkers(t *testing.T) {
	// Concurrent completions interleave checkpoint writes; the final
	// envelope must still be byte-identical to the serial reference.
	path := filepath.Join(t.TempDir(), "ckpt.json")
	ref, err := Engine{Workers: 1}.RunShard(newFakeSweep(16), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	env, _, err := Engine{Workers: 4}.RunShardResumable(newFakeSweep(16), 0, 1, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(ref)
	b, _ := json.Marshal(env)
	if string(a) != string(b) {
		t.Fatal("parallel resumable envelope differs from serial RunShard")
	}
}

func TestRunShardResumableUniqueKeysAcrossRetries(t *testing.T) {
	// A resumed retry that itself checkpoints must keep the partial file
	// parseable at every step: drive a 3-stage run (die at 3, die at 7,
	// finish) and verify each intermediate checkpoint loads cleanly.
	path := filepath.Join(t.TempDir(), "ckpt.json")
	for _, failAt := range []int{3, 7, -1} {
		s := newFakeSweep(12)
		s.failAt = failAt
		_, _, err := Engine{Workers: 1}.RunShardResumable(s, 0, 1, path, 1)
		if failAt >= 0 && err == nil {
			t.Fatalf("failAt %d: run succeeded", failAt)
		}
		if failAt < 0 && err != nil {
			t.Fatalf("final stage: %v", err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env Envelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("failAt %d: checkpoint unparseable: %v", failAt, err)
		}
	}
	// After the final stage the checkpoint is the complete envelope.
	env, resumed, err := Engine{Workers: 1}.RunShardResumable(newFakeSweep(12), 0, 1, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 12 || len(env.Jobs) != 12 {
		t.Fatalf("final checkpoint incomplete: resumed %d, jobs %d", resumed, len(env.Jobs))
	}
	_ = fmt.Sprint(env.Fingerprint)
}
