// Package sweep is the shardable sweep engine: one job model behind
// every multi-configuration experiment, executable as a single process
// or fanned out across many.
//
// The paper's evaluation is a grid of scenarios (the Figure 4 matrix
// alone is 90 worlds; the migration sweep crosses 9 arms over a trace),
// and once single-world ticks are cheap the bottleneck is sweep
// orchestration. This package turns every such sweep into the same three
// phases:
//
//	plan  — a Sweep enumerates its Jobs in one canonical order,
//	        deterministically derived from its configuration;
//	run   — an Engine executes the jobs of one shard (shard k of n owns
//	        jobs with Index % n == k) and emits a JSON Envelope of
//	        per-job payloads with fingerprints;
//	merge — the envelopes of all n shards are validated for coverage and
//	        folded, in plan order, into the sweep's final result.
//
// Because the in-process path (one shard, n = 1) uses exactly the same
// envelope serialization and merge code as the distributed path, merging
// n shard envelopes is bit-identical to the unsharded run by
// construction; golden tests in internal/experiments pin it. Processes
// never share state: each one rebuilds the Sweep from the same
// configuration (CLI flags, trace file, seed), plans the same job list,
// and runs only its own slice.
package sweep

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"kyoto/internal/pmc"
)

// Job is one deterministic unit of a sweep's plan. A job is fully
// described by its owning sweep's configuration plus this spec: any
// process that rebuilds the sweep from the same configuration can execute
// any job of the plan and obtain the identical payload.
type Job struct {
	// Sweep names the owning sweep (Sweep.Name).
	Sweep string `json:"sweep"`
	// Key is the job's stable, human-readable identity within the sweep,
	// e.g. "solo/gcc" or "arm/reactive/kyoto". Keys are unique per plan.
	Key string `json:"key"`
	// Index is the job's position in the canonical plan order; shard k of
	// n owns the jobs with Index % n == k.
	Index int `json:"index"`
	// Seed is the simulation seed the job runs under.
	Seed uint64 `json:"seed"`
	// Params echoes the arm parameters for reports and debugging; the
	// executing sweep keys off Key/Index, not Params.
	Params map[string]string `json:"params,omitempty"`
}

// Sweep is a shardable experiment: a deterministic plan of independent
// jobs plus a merge that folds their payloads into the final result.
// Implementations live in internal/experiments (trace sweep, migration
// sweep, Figure 4, the ablations); external drivers consume them through
// the public kyoto.SweepJobs / kyoto.RunSweepShard / kyoto.MergeShards.
type Sweep interface {
	// Name identifies the sweep; envelopes carry it and Merge validates
	// it, so shards of different sweeps cannot be folded together.
	Name() string
	// Plan enumerates the jobs in canonical order. Plan must be
	// deterministic for a given sweep configuration: every process of a
	// distributed run re-plans and must see the identical list.
	Plan() []Job
	// Run executes one job and returns its result as canonical JSON.
	// Jobs are independent: Run must not depend on any other job having
	// run, and must be safe for concurrent use from multiple goroutines.
	Run(job Job) (json.RawMessage, error)
	// Merge folds the payloads of all jobs, in plan order, into the
	// sweep's final result (retrievable from the concrete type).
	Merge(payloads []json.RawMessage) error
}

// JobResult is one executed job inside an Envelope.
type JobResult struct {
	// Key and Index echo the job spec.
	Key   string `json:"key"`
	Index int    `json:"index"`
	// Fingerprint is FingerprintPayload(Payload): a stable hash of the
	// canonical JSON, so two executions of the same job can be compared
	// without decoding.
	Fingerprint string `json:"fingerprint"`
	// Payload is the job's canonical JSON result.
	Payload json.RawMessage `json:"payload"`
}

// ConfigFingerprinter is optionally implemented by sweeps that can
// digest their full configuration (trace, seeds, fleet shape — anything
// that changes results). RunShard stamps the digest into the envelope
// and Merge rejects envelopes whose digest differs from the merging
// sweep's, catching the "merged with different flags" mistake even when
// the job plan happens to look identical.
type ConfigFingerprinter interface {
	ConfigFingerprint() string
}

// configFingerprint resolves the optional interface.
func configFingerprint(s Sweep) string {
	if cf, ok := s.(ConfigFingerprinter); ok {
		return cf.ConfigFingerprint()
	}
	return ""
}

// EnvelopeSchema identifies the shard-envelope JSON format.
const EnvelopeSchema = "kyoto-sweep-shard-v1"

// Envelope is the canonical result of running one shard of a sweep: the
// unit that crosses process (and machine) boundaries on disk.
type Envelope struct {
	// Schema is EnvelopeSchema.
	Schema string `json:"schema"`
	// Sweep is the owning sweep's name.
	Sweep string `json:"sweep"`
	// Shard and Shards identify the slice: this envelope holds the jobs
	// with Index % Shards == Shard.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// PlanJobs is the size of the full plan, so Merge can detect a
	// sweep/flag mismatch before diffing job indices.
	PlanJobs int `json:"plan_jobs"`
	// Config is the sweep's configuration digest
	// (ConfigFingerprinter.ConfigFingerprint) when the sweep provides
	// one, empty otherwise.
	Config string `json:"config,omitempty"`
	// Jobs holds the shard's executed jobs in ascending Index order.
	Jobs []JobResult `json:"jobs"`
	// Fingerprint folds the job fingerprints in Index order — a quick
	// equality check for whole shards.
	Fingerprint string `json:"fingerprint"`
}

// FingerprintPayload hashes a JSON payload (FNV-1a over its compacted
// bytes, rendered like the replay fingerprints). Compacting makes the
// fingerprint whitespace-insensitive, so an envelope re-indented on its
// way through a file still verifies. The compaction is fused into the
// fold: one pass skips RFC 8259 whitespace outside strings and folds
// every other byte as it goes, with no intermediate buffer — on a
// million-VM churn replay, fingerprinting the multi-megabyte arm
// payloads through json.Compact was half the sweep's CPU (the copy, its
// validation pass, and the buffer regrowth), and this path is what every
// job result funnels through. Bytes inside strings are folded verbatim
// (tracking escape state so a quote ending the string is distinguished
// from an escaped one), exactly as json.Compact preserves them.
func FingerprintPayload(payload []byte) string {
	h := pmc.FoldSeed
	inString, escaped := false, false
	for _, b := range payload {
		if inString {
			h = pmc.FoldUint64(h, uint64(b))
			switch {
			case escaped:
				escaped = false
			case b == '\\':
				escaped = true
			case b == '"':
				inString = false
			}
			continue
		}
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '"':
			inString = true
		}
		h = pmc.FoldUint64(h, uint64(b))
	}
	return fmt.Sprintf("%016x", h)
}

// foldFingerprints combines per-job fingerprint strings in the order
// given into one envelope- or sweep-level fingerprint.
func foldFingerprints(fps []string) string {
	h := pmc.FoldSeed
	h = pmc.FoldUint64(h, uint64(len(fps)))
	for _, fp := range fps {
		for _, b := range []byte(fp) {
			h = pmc.FoldUint64(h, uint64(b))
		}
	}
	return fmt.Sprintf("%016x", h)
}

// Engine executes sweep jobs across a bounded worker pool.
type Engine struct {
	// Workers caps in-process parallelism: 0 means GOMAXPROCS, 1 runs
	// jobs serially in plan order (the reference execution the
	// determinism goldens compare against).
	Workers int
}

// RunShard plans the sweep and executes shard `shard` of `shards`,
// returning its envelope. Shards partition the plan round-robin by job
// index, so a sweep whose expensive jobs cluster at one end still
// spreads them across shards.
func (e Engine) RunShard(s Sweep, shard, shards int) (Envelope, error) {
	if shards < 1 {
		return Envelope{}, fmt.Errorf("sweep: shards must be >= 1, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return Envelope{}, fmt.Errorf("sweep: shard %d out of range 0..%d", shard, shards-1)
	}
	plan, err := validatePlan(s)
	if err != nil {
		return Envelope{}, err
	}
	var mine []Job
	for _, j := range plan {
		if j.Index%shards == shard {
			mine = append(mine, j)
		}
	}
	env := Envelope{
		Schema:   EnvelopeSchema,
		Sweep:    s.Name(),
		Shard:    shard,
		Shards:   shards,
		PlanJobs: len(plan),
		Config:   configFingerprint(s),
		Jobs:     make([]JobResult, len(mine)),
	}
	err = ForEach(len(mine), e.Workers, func(i int) error {
		payload, err := s.Run(mine[i])
		if err != nil {
			return fmt.Errorf("sweep %s: job %s: %w", s.Name(), mine[i].Key, err)
		}
		// Re-encode through json.RawMessage-safe compaction is not needed:
		// the payload is already canonical JSON from json.Marshal. Guard
		// against invalid JSON here so a buggy Sweep fails its own shard,
		// not a later merge on another machine.
		if !json.Valid(payload) {
			return fmt.Errorf("sweep %s: job %s returned invalid JSON", s.Name(), mine[i].Key)
		}
		env.Jobs[i] = JobResult{
			Key:         mine[i].Key,
			Index:       mine[i].Index,
			Fingerprint: FingerprintPayload(payload),
			Payload:     payload,
		}
		return nil
	})
	if err != nil {
		return Envelope{}, err
	}
	fps := make([]string, len(env.Jobs))
	for i, j := range env.Jobs {
		fps[i] = j.Fingerprint
	}
	env.Fingerprint = foldFingerprints(fps)
	return env, nil
}

// Run executes the whole sweep in-process and merges the result — the
// single-machine convenience path. It is exactly RunShard(s, 0, 1)
// followed by Merge, so its result is bit-identical to any sharded
// execution of the same sweep.
func (e Engine) Run(s Sweep) error {
	env, err := e.RunShard(s, 0, 1)
	if err != nil {
		return err
	}
	return Merge(s, []Envelope{env})
}

// Merge validates that envs cover every job of the sweep's plan exactly
// once and folds the payloads, in plan order, into the sweep's result via
// s.Merge. The sweep must be configured identically to the one that
// produced the envelopes; mismatches (different sweep name, plan size,
// missing or duplicate jobs, disagreeing shard counts) are errors.
func Merge(s Sweep, envs []Envelope) error {
	plan, err := validatePlan(s)
	if err != nil {
		return err
	}
	if len(envs) == 0 {
		return fmt.Errorf("sweep %s: no shard envelopes to merge", s.Name())
	}
	shards := envs[0].Shards
	seen := make(map[int]bool, len(envs))
	payloads := make([]json.RawMessage, len(plan))
	for _, env := range envs {
		if env.Schema != EnvelopeSchema {
			return fmt.Errorf("sweep %s: envelope schema %q, want %q", s.Name(), env.Schema, EnvelopeSchema)
		}
		if env.Sweep != s.Name() {
			return fmt.Errorf("sweep %s: envelope belongs to sweep %q", s.Name(), env.Sweep)
		}
		if env.Shards != shards {
			return fmt.Errorf("sweep %s: envelopes disagree on shard count: %d vs %d", s.Name(), env.Shards, shards)
		}
		if env.PlanJobs != len(plan) {
			return fmt.Errorf("sweep %s: envelope plans %d jobs, this configuration plans %d — merge must use the same flags as the shards", s.Name(), env.PlanJobs, len(plan))
		}
		if want := configFingerprint(s); env.Config != want {
			return fmt.Errorf("sweep %s: envelope was produced under a different configuration (digest %s, merging with %s) — merge must use the same flags as the shards", s.Name(), env.Config, want)
		}
		if env.Shard < 0 || env.Shard >= shards {
			return fmt.Errorf("sweep %s: envelope shard %d out of range 0..%d", s.Name(), env.Shard, shards-1)
		}
		if seen[env.Shard] {
			return fmt.Errorf("sweep %s: shard %d supplied twice", s.Name(), env.Shard)
		}
		seen[env.Shard] = true
		for _, j := range env.Jobs {
			if j.Index < 0 || j.Index >= len(plan) {
				return fmt.Errorf("sweep %s: job index %d out of plan range", s.Name(), j.Index)
			}
			if j.Index%shards != env.Shard {
				return fmt.Errorf("sweep %s: job %d does not belong to shard %d of %d", s.Name(), j.Index, env.Shard, shards)
			}
			if j.Key != plan[j.Index].Key {
				return fmt.Errorf("sweep %s: job %d is %q in the envelope but %q in the plan — merge must use the same flags as the shards", s.Name(), j.Index, j.Key, plan[j.Index].Key)
			}
			if payloads[j.Index] != nil {
				return fmt.Errorf("sweep %s: job %d supplied twice", s.Name(), j.Index)
			}
			if got := FingerprintPayload(j.Payload); got != j.Fingerprint {
				return fmt.Errorf("sweep %s: job %s payload does not match its fingerprint (%s vs %s) — envelope corrupted in transit", s.Name(), j.Key, got, j.Fingerprint)
			}
			payloads[j.Index] = j.Payload
		}
	}
	if len(seen) != shards {
		missing := make([]int, 0, shards)
		for k := 0; k < shards; k++ {
			if !seen[k] {
				missing = append(missing, k)
			}
		}
		return fmt.Errorf("sweep %s: missing shard envelopes %v of %d", s.Name(), missing, shards)
	}
	for i, p := range payloads {
		if p == nil {
			return fmt.Errorf("sweep %s: job %d (%s) missing from all envelopes", s.Name(), i, plan[i].Key)
		}
	}
	return s.Merge(payloads)
}

// MergedFingerprint folds the per-job fingerprints of a complete envelope
// set in plan order — the whole-sweep identity the determinism goldens
// pin. It performs the same coverage validation as Merge but does not
// execute the sweep's own fold.
func MergedFingerprint(envs []Envelope) (string, error) {
	if len(envs) == 0 {
		return "", fmt.Errorf("sweep: no envelopes")
	}
	n := envs[0].PlanJobs
	fps := make([]string, n)
	for _, env := range envs {
		if env.PlanJobs != n {
			return "", fmt.Errorf("sweep: envelopes disagree on plan size: %d vs %d", env.PlanJobs, n)
		}
		for _, j := range env.Jobs {
			if j.Index < 0 || j.Index >= n {
				return "", fmt.Errorf("sweep: job index %d out of plan range", j.Index)
			}
			if fps[j.Index] != "" {
				return "", fmt.Errorf("sweep: job %d supplied twice", j.Index)
			}
			fps[j.Index] = j.Fingerprint
		}
	}
	for i, fp := range fps {
		if fp == "" {
			return "", fmt.Errorf("sweep: job %d missing", i)
		}
	}
	return foldFingerprints(fps), nil
}

// validatePlan fetches the plan and checks its invariants: contiguous
// indices in order, unique keys, matching sweep name.
func validatePlan(s Sweep) ([]Job, error) {
	plan := s.Plan()
	if len(plan) == 0 {
		return nil, fmt.Errorf("sweep %s: empty plan", s.Name())
	}
	keys := make(map[string]bool, len(plan))
	for i, j := range plan {
		if j.Index != i {
			return nil, fmt.Errorf("sweep %s: plan job %d carries index %d", s.Name(), i, j.Index)
		}
		if j.Sweep != s.Name() {
			return nil, fmt.Errorf("sweep %s: plan job %d belongs to sweep %q", s.Name(), i, j.Sweep)
		}
		if j.Key == "" || keys[j.Key] {
			return nil, fmt.Errorf("sweep %s: plan job %d has empty or duplicate key %q", s.Name(), i, j.Key)
		}
		keys[j.Key] = true
	}
	return plan, nil
}

// ForEach runs f(0) .. f(n-1) across a bounded worker pool (0 workers
// means GOMAXPROCS; 1 means serial in index order) and returns the error
// of the lowest-indexed failure. It is the one worker pool behind every
// sweep and experiment fan-out.
func ForEach(n, workers int, f func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
