package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseShardSpec pins the shard-spec parser: arbitrary input must
// never panic, and any accepted spec must be a well-formed "k/n" with
// 0 <= k < n that survives a format/reparse round trip.
func FuzzParseShardSpec(f *testing.F) {
	for _, seed := range []string{"0/1", "3/4", "0/16", "", "1", "a/b", "1/0", "-1/4", "4/4", "1/2/3", "01/04", " 1/2", "+1/2", "9999999999999999999/2"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		shard, shards, err := ParseShardSpec(spec)
		if err != nil {
			return
		}
		if shards < 1 || shard < 0 || shard >= shards {
			t.Fatalf("accepted %q as out-of-range %d/%d", spec, shard, shards)
		}
		shard2, shards2, err := ParseShardSpec(fmt.Sprintf("%d/%d", shard, shards))
		if err != nil || shard2 != shard || shards2 != shards {
			t.Fatalf("%q parsed to %d/%d, which reparses to %d/%d (%v)", spec, shard, shards, shard2, shards2, err)
		}
	})
}

// FuzzShardEnvelopeRoundTrip pins the envelope file format from both
// directions. Arbitrary bytes fed to ReadEnvelope must never panic, and
// anything it accepts must carry the canonical schema. A well-formed
// envelope built around the fuzzed payload must survive
// WriteFile -> ReadEnvelope bit-exactly, and its payload fingerprint
// must be stable across the trip and insensitive to JSON whitespace.
func FuzzShardEnvelopeRoundTrip(f *testing.F) {
	f.Add([]byte(`{"metric": 0.54}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`"solo/gcc"`))
	f.Add([]byte(`{"schema":"kyoto-sweep-shard-v1","sweep":"x","shard":0,"shards":1,"plan_jobs":1,"jobs":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()

		// Direction 1: raw bytes as an envelope file. Must reject or
		// yield a schema-valid envelope — never panic.
		rawPath := filepath.Join(dir, "raw.json")
		if err := os.WriteFile(rawPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if env, err := ReadEnvelope(rawPath); err == nil && env.Schema != EnvelopeSchema {
			t.Fatalf("accepted envelope with schema %q", env.Schema)
		}

		// Direction 2: the fuzzed bytes as a job payload inside a
		// canonical envelope, when they are valid JSON.
		if !json.Valid(raw) {
			return
		}
		payload := json.RawMessage(raw)
		fp := FingerprintPayload(payload)
		if fp != FingerprintPayload(payload) {
			t.Fatal("fingerprint not deterministic")
		}
		// Whitespace-insensitivity: json.Indent reformats the byte stream
		// without reordering tokens, so the fingerprint must not move.
		var indented bytes.Buffer
		if err := json.Indent(&indented, raw, "", "  "); err == nil {
			if FingerprintPayload(indented.Bytes()) != fp {
				t.Fatalf("fingerprint of %q changed under re-indentation", raw)
			}
		}
		env := Envelope{
			Schema:   EnvelopeSchema,
			Sweep:    "fuzz",
			Shard:    0,
			Shards:   1,
			PlanJobs: 1,
			Jobs: []JobResult{{
				Key:         "job/0",
				Index:       0,
				Fingerprint: fp,
				Payload:     payload,
			}},
		}
		env.Fingerprint = foldFingerprints([]string{fp})
		path := filepath.Join(dir, "env.json")
		if err := env.WriteFile(path, nil); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEnvelope(path)
		if err != nil {
			t.Fatalf("canonical envelope rejected: %v", err)
		}
		// The payload may be re-indented by MarshalIndent, so compare
		// compacted payloads and everything else structurally.
		if FingerprintPayload(back.Jobs[0].Payload) != fp {
			t.Fatalf("payload fingerprint changed across file round trip")
		}
		back.Jobs[0].Payload = nil
		env.Jobs[0].Payload = nil
		if !reflect.DeepEqual(env, back) {
			t.Fatalf("envelope changed across round trip:\n%+v\n%+v", env, back)
		}
		// The merged fingerprint of the round-tripped envelope set must
		// still validate.
		if _, err := MergedFingerprint([]Envelope{back}); err != nil {
			t.Fatalf("round-tripped envelope fails merged fingerprint: %v", err)
		}
	})
}
