package sweep

// Seed sweeps: the same experiment repeated under many RNG seeds, with
// per-metric distributions instead of single numbers. A SeedSweeper
// wraps any Seedable sweep and is itself a Sweep, so the whole seed
// grid rides the existing shard machinery — plan, envelopes, merge —
// and a 1000-seed run fans out across processes exactly like any other
// sweep. At merge time each seed's payloads are folded by that seed's
// inner sweep and its metrics accumulate into stats.Summary multisets,
// whose merge-order insensitivity makes the final means, percentiles
// and confidence intervals bit-identical for every shard count.

import (
	"encoding/json"
	"fmt"

	"kyoto/internal/stats"
)

// MetricRow is one arm's metric values for a single seed, aligned with
// the owning sweep's MetricNames.
type MetricRow struct {
	// Arm identifies the experiment arm, e.g. "kyoto" or "kyoto/reactive".
	Arm string
	// Values holds one value per metric name, in MetricNames order.
	Values []float64
}

// Seedable is a sweep that can be replicated under a different RNG seed
// and report scalar metrics after merging. Implementations live in
// internal/experiments (trace sweep, migration sweep, Figure 4, the
// ablations).
type Seedable interface {
	Sweep
	// Reseed returns an independent copy of this sweep configured to run
	// under the given seed; everything else about the configuration is
	// identical. The copy's plan must have the same length, keys and
	// order as the original's.
	Reseed(seed uint64) (Seedable, error)
	// MetricNames lists the scalar metrics this sweep reports after
	// Merge, in a fixed order (e.g. "p99_norm", "rej_rate").
	MetricNames() []string
	// MetricRows reports, after Merge, one row per experiment arm with
	// one value per metric name. Arms must appear in the same order for
	// every reseeded copy.
	MetricRows() []MetricRow
}

// SeedSweepConfig parameterizes a SeedSweeper.
type SeedSweepConfig struct {
	// Seeds is the number of replications; required, >= 1.
	Seeds int
	// BaseSeed is the first seed; replication i runs under BaseSeed+i.
	// Defaults to 1; 0 is rejected because some sweeps normalize seed 0
	// to 1, which would alias the first two replications.
	BaseSeed uint64
	// Confidence is the two-sided CI level for reported intervals.
	// Defaults to 0.95.
	Confidence float64
	// Resamples is the bootstrap replication count for percentile CIs.
	// Defaults to stats.DefaultBootstrapResamples.
	Resamples int
	// BootstrapSeed seeds the bootstrap resampler. Defaults to 1.
	BootstrapSeed uint64
}

// withDefaults validates and fills in the defaulted fields.
func (c SeedSweepConfig) withDefaults() (SeedSweepConfig, error) {
	if c.Seeds < 1 {
		return c, fmt.Errorf("seed sweep: seeds must be >= 1, got %d", c.Seeds)
	}
	if c.BaseSeed == 0 {
		c.BaseSeed = 1
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if !(c.Confidence > 0 && c.Confidence < 1) {
		return c, fmt.Errorf("seed sweep: confidence %v outside (0, 1)", c.Confidence)
	}
	if c.Resamples == 0 {
		c.Resamples = stats.DefaultBootstrapResamples
	}
	if c.Resamples < 1 {
		return c, fmt.Errorf("seed sweep: resamples must be >= 1, got %d", c.Resamples)
	}
	if c.BootstrapSeed == 0 {
		c.BootstrapSeed = 1
	}
	return c, nil
}

// SeedSweepArm is one experiment arm's per-metric sample distributions
// across all seeds.
type SeedSweepArm struct {
	// Arm echoes the inner sweep's arm identity.
	Arm string `json:"arm"`
	// Summaries holds one Summary per metric, aligned with
	// SeedSweepResult.Metrics. Each Summary has exactly Seeds samples.
	Summaries []stats.Summary `json:"summaries"`
}

// SeedSweepResult is the merged outcome of a seed sweep: for every
// (arm, metric) pair, the full distribution of that metric over the
// seeds, ready for mean/percentile/CI queries.
type SeedSweepResult struct {
	// Sweep names the inner sweep that was replicated.
	Sweep string `json:"sweep"`
	// BaseSeed, Seeds, Confidence, Resamples and BootstrapSeed echo the
	// configuration the statistics were computed under.
	Seeds         int     `json:"seeds"`
	BaseSeed      uint64  `json:"base_seed"`
	Confidence    float64 `json:"confidence"`
	Resamples     int     `json:"resamples"`
	BootstrapSeed uint64  `json:"bootstrap_seed"`
	// Metrics lists the metric names, defining the Summaries order of
	// every arm.
	Metrics []string `json:"metrics"`
	// Arms holds one entry per experiment arm, in the inner sweep's
	// canonical arm order.
	Arms []SeedSweepArm `json:"arms"`
}

// Arm returns the named arm's distributions, or an error if absent.
func (r *SeedSweepResult) Arm(name string) (SeedSweepArm, error) {
	for _, a := range r.Arms {
		if a.Arm == name {
			return a, nil
		}
	}
	return SeedSweepArm{}, fmt.Errorf("seed sweep: no arm %q", name)
}

// Metric returns the named metric's Summary for the given arm.
func (r *SeedSweepResult) Metric(arm, metric string) (stats.Summary, error) {
	a, err := r.Arm(arm)
	if err != nil {
		return stats.Summary{}, err
	}
	for i, m := range r.Metrics {
		if m == metric {
			return a.Summaries[i], nil
		}
	}
	return stats.Summary{}, fmt.Errorf("seed sweep: no metric %q", metric)
}

// SeedSweeper replicates a Seedable sweep across consecutive seeds and
// aggregates its metrics into distributions. It is itself a Sweep: the
// plan is the concatenation of every seed's inner plan in seed-major
// order, so shards cut across seeds and arms alike.
type SeedSweeper struct {
	cfg    SeedSweepConfig
	proto  Seedable
	inners []Seedable // one reseeded copy per replication
	plan   []Job      // inners[0]'s plan, the template for all seeds
	res    *SeedSweepResult
}

// NewSeedSweeper builds a seed sweep over the given prototype. The
// prototype itself is never run; replication i runs a Reseed copy under
// seed BaseSeed+i.
func NewSeedSweeper(proto Seedable, cfg SeedSweepConfig) (*SeedSweeper, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(proto.MetricNames()) == 0 {
		return nil, fmt.Errorf("seed sweep: sweep %s reports no metrics", proto.Name())
	}
	s := &SeedSweeper{cfg: cfg, proto: proto, inners: make([]Seedable, cfg.Seeds)}
	for i := range s.inners {
		inner, err := proto.Reseed(cfg.BaseSeed + uint64(i))
		if err != nil {
			return nil, fmt.Errorf("seed sweep: reseed %d: %w", cfg.BaseSeed+uint64(i), err)
		}
		s.inners[i] = inner
	}
	s.plan = s.inners[0].Plan()
	if len(s.plan) == 0 {
		return nil, fmt.Errorf("seed sweep: sweep %s plans no jobs", proto.Name())
	}
	for i := 1; i < len(s.inners); i++ {
		p := s.inners[i].Plan()
		if len(p) != len(s.plan) {
			return nil, fmt.Errorf("seed sweep: reseeded plan has %d jobs, seed %d has %d", len(p), cfg.BaseSeed, len(s.plan))
		}
		for j := range p {
			if p[j].Key != s.plan[j].Key {
				return nil, fmt.Errorf("seed sweep: reseeded plan job %d is %q, seed %d has %q", j, p[j].Key, cfg.BaseSeed, s.plan[j].Key)
			}
		}
	}
	return s, nil
}

// Name identifies the seed sweep by its inner sweep.
func (s *SeedSweeper) Name() string { return "seed-sweep/" + s.proto.Name() }

// Plan enumerates Seeds x len(inner plan) jobs in seed-major order. Job
// keys are "seed/<seed>/<inner key>"; the round-robin shard partition
// therefore interleaves seeds and arms across shards.
func (s *SeedSweeper) Plan() []Job {
	inner := len(s.plan)
	plan := make([]Job, 0, s.cfg.Seeds*inner)
	for i := 0; i < s.cfg.Seeds; i++ {
		seed := s.cfg.BaseSeed + uint64(i)
		for j, job := range s.plan {
			params := map[string]string{"seed": fmt.Sprint(seed)}
			for k, v := range job.Params {
				params[k] = v
			}
			plan = append(plan, Job{
				Sweep:  s.Name(),
				Key:    fmt.Sprintf("seed/%d/%s", seed, job.Key),
				Index:  i*inner + j,
				Seed:   seed,
				Params: params,
			})
		}
	}
	return plan
}

// Run executes one job by delegating to the owning seed's inner sweep.
// Safe for concurrent use when the inner sweep's Run is (the Sweep
// contract): the inner copies are built eagerly in NewSeedSweeper, so
// Run only reads shared state.
func (s *SeedSweeper) Run(job Job) (json.RawMessage, error) {
	inner := len(s.plan)
	if job.Index < 0 || job.Index >= s.cfg.Seeds*inner {
		return nil, fmt.Errorf("seed sweep: job index %d out of range", job.Index)
	}
	rep, j := job.Index/inner, job.Index%inner
	return s.inners[rep].Run(s.inners[rep].Plan()[j])
}

// Merge splits the payloads into per-seed blocks, folds each block with
// its seed's inner sweep, and accumulates the inner metric rows into
// per-(arm, metric) Summaries. Payloads arrive in plan order (the Merge
// contract), so every statistic is computed from the identical sample
// multiset whatever the shard count was.
func (s *SeedSweeper) Merge(payloads []json.RawMessage) error {
	inner := len(s.plan)
	if len(payloads) != s.cfg.Seeds*inner {
		return fmt.Errorf("seed sweep: %d payloads, want %d", len(payloads), s.cfg.Seeds*inner)
	}
	res := &SeedSweepResult{
		Sweep:         s.proto.Name(),
		Seeds:         s.cfg.Seeds,
		BaseSeed:      s.cfg.BaseSeed,
		Confidence:    s.cfg.Confidence,
		Resamples:     s.cfg.Resamples,
		BootstrapSeed: s.cfg.BootstrapSeed,
		Metrics:       append([]string(nil), s.proto.MetricNames()...),
	}
	armIndex := make(map[string]int)
	// Samples are collected per (arm, metric) in seed order and folded
	// with one batched AddAll per cell at the end: a single linear merge
	// instead of Seeds repeated sorted insertions (which are quadratic in
	// the seed count), bit-identical to the sequential Adds by AddAll's
	// contract.
	var samples [][][]float64
	for i := 0; i < s.cfg.Seeds; i++ {
		if err := s.inners[i].Merge(payloads[i*inner : (i+1)*inner]); err != nil {
			return fmt.Errorf("seed sweep: seed %d: %w", s.cfg.BaseSeed+uint64(i), err)
		}
		rows := s.inners[i].MetricRows()
		if i == 0 {
			for _, row := range rows {
				if _, dup := armIndex[row.Arm]; dup {
					return fmt.Errorf("seed sweep: duplicate arm %q", row.Arm)
				}
				armIndex[row.Arm] = len(res.Arms)
				res.Arms = append(res.Arms, SeedSweepArm{
					Arm:       row.Arm,
					Summaries: make([]stats.Summary, len(res.Metrics)),
				})
				cells := make([][]float64, len(res.Metrics))
				for mi := range cells {
					cells[mi] = make([]float64, 0, s.cfg.Seeds)
				}
				samples = append(samples, cells)
			}
		}
		if len(rows) != len(res.Arms) {
			return fmt.Errorf("seed sweep: seed %d reports %d arms, seed %d reported %d", s.cfg.BaseSeed+uint64(i), len(rows), s.cfg.BaseSeed, len(res.Arms))
		}
		for _, row := range rows {
			ai, ok := armIndex[row.Arm]
			if !ok {
				return fmt.Errorf("seed sweep: seed %d reports unknown arm %q", s.cfg.BaseSeed+uint64(i), row.Arm)
			}
			if len(row.Values) != len(res.Metrics) {
				return fmt.Errorf("seed sweep: arm %q reports %d values for %d metrics", row.Arm, len(row.Values), len(res.Metrics))
			}
			for mi, v := range row.Values {
				samples[ai][mi] = append(samples[ai][mi], v)
			}
		}
	}
	for ai := range res.Arms {
		for mi := range res.Arms[ai].Summaries {
			if err := res.Arms[ai].Summaries[mi].AddAll(samples[ai][mi]...); err != nil {
				return fmt.Errorf("seed sweep: arm %q metric %q: %w", res.Arms[ai].Arm, res.Metrics[mi], err)
			}
		}
	}
	s.res = res
	return nil
}

// Result returns the merged statistics, or nil before Merge.
func (s *SeedSweeper) Result() *SeedSweepResult { return s.res }

// ConfigFingerprint digests the seed-sweep configuration together with
// the inner sweep's own configuration digest, so shards run under
// different seed counts, base seeds or inner flags refuse to merge.
func (s *SeedSweeper) ConfigFingerprint() string {
	spec, _ := json.Marshal(struct {
		Sweep    string `json:"sweep"`
		Seeds    int    `json:"seeds"`
		BaseSeed uint64 `json:"base_seed"`
		Inner    string `json:"inner"`
	}{s.proto.Name(), s.cfg.Seeds, s.cfg.BaseSeed, configFingerprint(s.proto)})
	return FingerprintPayload(spec)
}
