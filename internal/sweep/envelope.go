package sweep

// Envelope file I/O: shard results are plain JSON files, so any
// transport that can move a file (scp, object storage, CI artifacts) can
// move a shard between the process that ran it and the process that
// merges it.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// WriteFile writes the envelope as indented JSON to path ("-" writes to
// w if non-nil, else stdout).
func (e Envelope) WriteFile(path string, w io.Writer) error {
	// Encode without HTML escaping: escaping would rewrite & < > inside
	// job payloads, so a payload that is legal JSON with those bytes
	// would come back from the file with a different fingerprint and be
	// rejected at merge as corrupt.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e); err != nil {
		return fmt.Errorf("sweep: encoding envelope: %w", err)
	}
	data := buf.Bytes()
	if path == "-" {
		if w == nil {
			w = os.Stdout
		}
		_, err := w.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadEnvelope parses one shard envelope file.
func ReadEnvelope(path string) (Envelope, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Envelope{}, err
	}
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope{}, fmt.Errorf("sweep: parsing envelope %s: %w", path, err)
	}
	if env.Schema != EnvelopeSchema {
		return Envelope{}, fmt.Errorf("sweep: %s: schema %q, want %q", path, env.Schema, EnvelopeSchema)
	}
	return env, nil
}

// ReadEnvelopes expands each argument as a glob pattern (a literal path
// matches itself) and parses every matched envelope. The expansion is
// sorted, so results are deterministic whatever the shell did.
func ReadEnvelopes(patterns []string) ([]Envelope, error) {
	var paths []string
	for _, pat := range patterns {
		matches, err := filepath.Glob(pat)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad shard pattern %q: %w", pat, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("sweep: shard pattern %q matched no files", pat)
		}
		paths = append(paths, matches...)
	}
	sort.Strings(paths)
	envs := make([]Envelope, 0, len(paths))
	for _, p := range paths {
		env, err := ReadEnvelope(p)
		if err != nil {
			return nil, err
		}
		envs = append(envs, env)
	}
	return envs, nil
}

// ParseShardSpec parses a "-shard k/n" flag value.
func ParseShardSpec(s string) (shard, shards int, err error) {
	k, n, ok := strings.Cut(s, "/")
	if ok {
		var errK, errN error
		shard, errK = strconv.Atoi(k)
		shards, errN = strconv.Atoi(n)
		ok = errK == nil && errN == nil
	}
	if !ok {
		return 0, 0, fmt.Errorf("sweep: bad shard spec %q (want k/n, e.g. 0/4)", s)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("sweep: bad shard spec %q: shard must be in 0..n-1", s)
	}
	return shard, shards, nil
}
