package sweep

// Resumable shard runs: the same job plan and the same final envelope as
// RunShard, with completed jobs checkpointed to disk along the way so a
// killed run restarts where it stopped instead of from job zero. The
// checkpoint file is itself a (partial) Envelope — same schema, same
// validation surface — holding the completed jobs of this shard; a
// resumed run re-plans the sweep, verifies the checkpoint belongs to this
// exact configuration and shard slice, skips every job whose payload is
// already present, and runs the rest. Because jobs are deterministic, the
// assembled final envelope is byte-identical to an uninterrupted
// RunShard, whatever mix of cached and fresh jobs produced it.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// RunShardResumable is RunShard with job-level checkpointing. The file at
// path, when present, must be a checkpoint of this exact sweep
// configuration and shard slice (schema, sweep name, shard/shards, plan
// size, config digest and per-job fingerprints are all validated); its
// completed jobs are reused without re-running. Progress is rewritten to
// path (atomically, via rename) after every `every` fresh completions and
// once at the end, so the final file is the complete shard envelope.
// Returns the envelope plus how many jobs were reused from the
// checkpoint.
func (e Engine) RunShardResumable(s Sweep, shard, shards int, path string, every int) (Envelope, int, error) {
	if every < 1 {
		return Envelope{}, 0, fmt.Errorf("sweep: checkpoint interval must be >= 1 job, got %d", every)
	}
	if shards < 1 {
		return Envelope{}, 0, fmt.Errorf("sweep: shards must be >= 1, got %d", shards)
	}
	if shard < 0 || shard >= shards {
		return Envelope{}, 0, fmt.Errorf("sweep: shard %d out of range 0..%d", shard, shards-1)
	}
	plan, err := validatePlan(s)
	if err != nil {
		return Envelope{}, 0, err
	}
	var mine []Job
	for _, j := range plan {
		if j.Index%shards == shard {
			mine = append(mine, j)
		}
	}

	env := Envelope{
		Schema:   EnvelopeSchema,
		Sweep:    s.Name(),
		Shard:    shard,
		Shards:   shards,
		PlanJobs: len(plan),
		Config:   configFingerprint(s),
		Jobs:     make([]JobResult, len(mine)),
	}
	done := make([]bool, len(mine))
	resumed := 0
	if prior, err := loadCheckpoint(path, env, plan, shards); err != nil {
		return Envelope{}, 0, err
	} else if prior != nil {
		byIndex := make(map[int]int, len(mine))
		for i, j := range mine {
			byIndex[j.Index] = i
		}
		for _, jr := range prior {
			i := byIndex[jr.Index]
			env.Jobs[i] = jr
			done[i] = true
			resumed++
		}
	}

	// The checkpoint writer: completed jobs only, in slice order, guarded
	// by one mutex shared with the completion counter.
	var mu sync.Mutex
	fresh := 0
	flush := func() error {
		partial := env
		partial.Jobs = nil
		for i, jr := range env.Jobs {
			if done[i] {
				partial.Jobs = append(partial.Jobs, jr)
			}
		}
		return writeCheckpoint(path, partial)
	}

	err = ForEach(len(mine), e.Workers, func(i int) error {
		if done[i] {
			return nil
		}
		payload, err := s.Run(mine[i])
		if err != nil {
			return fmt.Errorf("sweep %s: job %s: %w", s.Name(), mine[i].Key, err)
		}
		if !json.Valid(payload) {
			return fmt.Errorf("sweep %s: job %s returned invalid JSON", s.Name(), mine[i].Key)
		}
		jr := JobResult{
			Key:         mine[i].Key,
			Index:       mine[i].Index,
			Fingerprint: FingerprintPayload(payload),
			Payload:     payload,
		}
		mu.Lock()
		defer mu.Unlock()
		env.Jobs[i] = jr
		done[i] = true
		fresh++
		if fresh%every == 0 {
			return flush()
		}
		return nil
	})
	if err != nil {
		// Persist whatever completed before the failure, so the retry
		// resumes instead of restarting; the run itself still fails.
		mu.Lock()
		_ = flush()
		mu.Unlock()
		return Envelope{}, resumed, err
	}

	fps := make([]string, len(env.Jobs))
	for i, j := range env.Jobs {
		fps[i] = j.Fingerprint
	}
	env.Fingerprint = foldFingerprints(fps)
	if err := writeCheckpoint(path, env); err != nil {
		return Envelope{}, resumed, err
	}
	return env, resumed, nil
}

// loadCheckpoint reads and validates a checkpoint file against the
// freshly planned shard. A missing file is a clean cold start (nil, nil).
// Everything else that is wrong — another sweep, another shard slice,
// another configuration, a corrupted payload — is an error: silently
// discarding a checkpoint would hide exactly the mismatch the digest
// machinery exists to catch.
func loadCheckpoint(path string, want Envelope, plan []Job, shards int) ([]JobResult, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var prior Envelope
	if err := json.Unmarshal(data, &prior); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s is not an envelope (truncated or corrupted): %w", path, err)
	}
	if prior.Schema != EnvelopeSchema {
		return nil, fmt.Errorf("sweep: checkpoint %s has schema %q, this build reads %q", path, prior.Schema, EnvelopeSchema)
	}
	if prior.Sweep != want.Sweep {
		return nil, fmt.Errorf("sweep: checkpoint %s belongs to sweep %q, resuming %q", path, prior.Sweep, want.Sweep)
	}
	if prior.Shard != want.Shard || prior.Shards != shards {
		return nil, fmt.Errorf("sweep: checkpoint %s covers shard %d/%d, resuming shard %d/%d", path, prior.Shard, prior.Shards, want.Shard, shards)
	}
	if prior.PlanJobs != want.PlanJobs {
		return nil, fmt.Errorf("sweep: checkpoint %s plans %d jobs, this configuration plans %d — resume must use the same flags as the checkpointed run", path, prior.PlanJobs, want.PlanJobs)
	}
	if prior.Config != want.Config {
		return nil, fmt.Errorf("sweep: checkpoint %s was produced under a different configuration (digest %s, resuming with %s) — resume must use the same flags as the checkpointed run", path, prior.Config, want.Config)
	}
	seen := make(map[int]bool, len(prior.Jobs))
	for _, jr := range prior.Jobs {
		if jr.Index < 0 || jr.Index >= len(plan) {
			return nil, fmt.Errorf("sweep: checkpoint %s job index %d out of plan range", path, jr.Index)
		}
		if jr.Index%shards != want.Shard {
			return nil, fmt.Errorf("sweep: checkpoint %s job %d does not belong to shard %d of %d", path, jr.Index, want.Shard, shards)
		}
		if jr.Key != plan[jr.Index].Key {
			return nil, fmt.Errorf("sweep: checkpoint %s job %d is %q, the plan says %q — resume must use the same flags as the checkpointed run", path, jr.Index, jr.Key, plan[jr.Index].Key)
		}
		if seen[jr.Index] {
			return nil, fmt.Errorf("sweep: checkpoint %s supplies job %d twice", path, jr.Index)
		}
		seen[jr.Index] = true
		if got := FingerprintPayload(jr.Payload); got != jr.Fingerprint {
			return nil, fmt.Errorf("sweep: checkpoint %s job %s payload does not match its fingerprint (%s vs %s) — file corrupted", path, jr.Key, got, jr.Fingerprint)
		}
	}
	return prior.Jobs, nil
}

// writeCheckpoint writes the envelope atomically: temp file in the same
// directory, fsync-free rename, so a kill mid-write leaves the previous
// checkpoint intact.
func writeCheckpoint(path string, env Envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
