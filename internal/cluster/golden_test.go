package cluster

// Fleet-level golden determinism guard: a 4-host Kyoto fleet run serially
// and through the worker pool must produce the same committed fingerprint.
// Together with internal/hv's golden.json this locks serial-vs-parallel
// equivalence across hot-path refactors.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

var updateFleetGolden = flag.Bool("update", false, "rewrite testdata/golden_fleet.json with the observed fingerprint")

const fleetGoldenTicks = 30

// goldenFleet builds a 4-host Kyoto fleet with two VMs per host, the shape
// of the PR-1 parallel-vs-serial determinism tests.
func goldenFleet(t testing.TB, workers int) *Fleet {
	t.Helper()
	f, err := New(Config{
		Hosts: 4,
		Template: HostTemplate{
			Seed:        42,
			EnableKyoto: true,
			MemoryMB:    128,
		},
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"gcc", "lbm", "omnetpp", "blockie"}
	for i := 0; i < 2*f.Size(); i++ {
		_, err := f.Place(Request{Spec: vm.Spec{
			Name:   fmt.Sprintf("vm%d", i),
			App:    apps[i%len(apps)],
			Pins:   []int{i % 2},
			LLCCap: 250,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// fleetFingerprint folds every host's vCPU counters in host-ID then
// vCPU-id order.
func fleetFingerprint(f *Fleet) string {
	h := pmc.FoldSeed
	for _, host := range f.Hosts() {
		for _, v := range host.World.VCPUs() {
			h = v.Counters.Fold(h)
		}
	}
	return fmt.Sprintf("%016x", h)
}

func TestGoldenFleetSerialParallel(t *testing.T) {
	serial := goldenFleet(t, 1)
	serial.RunTicks(fleetGoldenTicks)
	parallel := goldenFleet(t, 0)
	parallel.RunTicks(fleetGoldenTicks)

	got := fleetFingerprint(serial)
	if pg := fleetFingerprint(parallel); pg != got {
		t.Fatalf("parallel fleet fingerprint %s != serial %s", pg, got)
	}

	path := filepath.Join("testdata", "golden_fleet.json")
	if *updateFleetGolden {
		data, err := json.MarshalIndent(map[string]string{"kyoto-fleet-4x2": got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got != want["kyoto-fleet-4x2"] {
		t.Fatalf("fleet fingerprint %s, want %s — fleet execution is no longer bit-identical to the committed baseline",
			got, want["kyoto-fleet-4x2"])
	}
}
