package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"kyoto/internal/detect"
	"kyoto/internal/vm"
)

func TestBeginEpochResolvesKnobsAndEligibility(t *testing.T) {
	var cd migrationCooldown
	view := RebalanceView{VMs: []VMLoad{{Name: "a"}}}

	thr, eligible := cd.beginEpoch(view, 0, 0)
	if thr != DefaultRebalanceThreshold {
		t.Fatalf("zero threshold knob resolved to %v, want default %v", thr, DefaultRebalanceThreshold)
	}
	if !eligible("a") || !eligible("never-seen") {
		t.Fatal("fresh VMs must be eligible")
	}

	cd.moved("a")
	for i := 0; i < DefaultMigrationCooldown; i++ {
		if _, eligible = cd.beginEpoch(view, 0, 0); eligible("a") {
			t.Fatalf("epoch %d after a move: VM must still be cooling down", i+1)
		}
	}
	if _, eligible = cd.beginEpoch(view, 0, 0); !eligible("a") {
		t.Fatal("cooldown must expire after DefaultMigrationCooldown epochs")
	}

	// Custom knobs pass through: explicit threshold, negative cooldown
	// disables the hysteresis entirely.
	var loose migrationCooldown
	thr, _ = loose.beginEpoch(view, 123.5, -1)
	if thr != 123.5 {
		t.Fatalf("explicit threshold resolved to %v", thr)
	}
	loose.moved("a")
	if _, eligible = loose.beginEpoch(view, 123.5, -1); !eligible("a") {
		t.Fatal("negative cooldown knob must disable hysteresis")
	}

	// Departed VMs are forgotten so long runs do not leak state.
	cd.moved("a")
	cd.beginEpoch(RebalanceView{}, 0, 0)
	if len(cd.lastMoved) != 0 {
		t.Fatalf("departed VM still tracked: %v", cd.lastMoved)
	}
}

// sigView fabricates one epoch's view (summing HostRates from the VM
// loads) the way pingPongView does for the reactive tests.
func sigView(hosts int, vms ...VMLoad) RebalanceView {
	view := RebalanceView{VMs: vms, HostRates: make([]float64, hosts)}
	for i := range vms {
		if vms[i].Request.Name == "" {
			vms[i].Request = Request{Spec: vm.Spec{Name: vms[i].Name, App: vms[i].App, LLCCap: 10}}
		}
		view.HostRates[vms[i].HostID] += vms[i].Rate
	}
	return view
}

// twitchy is a detector config that arms after two samples and fires on
// the first clipped deviation, so tests can place change points exactly.
var twitchy = detect.Config{Alpha: 0.2, Drift: 0.1, Threshold: 1, Warmup: 2}

// signatureScenario drives a Signature through three quiet epochs: a
// polluter (rate 5000) and a victim (rate base) on host 0, a bystander
// on host 1, host 2 empty. Returns the fleet and the epoch-4 view with
// the victim's rate stepped to next.
func signatureScenario(t *testing.T, g *Signature, base, next float64) ([]*Host, RebalanceView) {
	t.Helper()
	f, err := New(Config{Hosts: 3, Template: HostTemplate{Seed: 5}, Placer: FirstFit{}})
	if err != nil {
		t.Fatal(err)
	}
	quiet := sigView(3,
		VMLoad{Name: "polluter", App: "lbm", HostID: 0, Rate: 5000},
		VMLoad{Name: "victim", App: "gcc", HostID: 0, Rate: base},
		VMLoad{Name: "bystander", App: "bzip", HostID: 1, Rate: 50},
	)
	for epoch := 1; epoch <= 3; epoch++ {
		// The polluter's rate exceeds any threshold from epoch 1, but no
		// series has shifted yet: a change-detection policy must stay
		// quiet where Reactive would already migrate.
		if plan := g.Plan(f.Hosts(), quiet); len(plan) != 0 {
			t.Fatalf("epoch %d planned %v before any change point", epoch, plan)
		}
	}
	return f.Hosts(), sigView(3,
		VMLoad{Name: "polluter", App: "lbm", HostID: 0, Rate: 5000},
		VMLoad{Name: "victim", App: "gcc", HostID: 0, Rate: next},
		VMLoad{Name: "bystander", App: "bzip", HostID: 1, Rate: 50},
	)
}

func TestSignatureEvictsPolluterOnVictimUpShift(t *testing.T) {
	g := &Signature{Detector: twitchy}
	hosts, stepped := signatureScenario(t, g, 100, 1100)
	plan := g.Plan(hosts, stepped)
	if len(plan) != 1 {
		t.Fatalf("plan %v, want one eviction", plan)
	}
	m := plan[0]
	if m.VMName != "polluter" || m.SrcHost != 0 || m.DstHost != 2 {
		t.Fatalf("plan %+v, want the polluter evicted host0->host2 (empty host is coolest)", m)
	}
	cps := g.ChangePoints()
	if len(cps) != 1 || cps[0].VM != "victim" || cps[0].Direction != "up" || cps[0].Epoch != 4 {
		t.Fatalf("change points %+v, want one upward shift on victim at epoch 4", cps)
	}
}

func TestSignatureDownShiftLogsButDoesNotMigrate(t *testing.T) {
	g := &Signature{Detector: twitchy}
	hosts, stepped := signatureScenario(t, g, 1100, 100)
	if plan := g.Plan(hosts, stepped); len(plan) != 0 {
		t.Fatalf("a downward shift (polluter departed) must not migrate, got %v", plan)
	}
	cps := g.ChangePoints()
	if len(cps) != 1 || cps[0].Direction != "down" {
		t.Fatalf("change points %+v, want one downward shift logged", cps)
	}
}

// fixedLife is a LifetimeEstimator stub returning a constant remaining
// lifetime whatever the age.
type fixedLife float64

func (f fixedLife) ExpectedRemainingTicks(uint64) float64 { return float64(f) }

func TestSignatureAmortizationSkipsDoomedVMs(t *testing.T) {
	// The polluter books LLCCap 10 (one permit floor), so the move must
	// amortize over DefaultAmortizeEpochs epochs of EpochTicks ticks.
	need := float64(DefaultAmortizeEpochs * DefaultSignatureEpochTicks)
	g := &Signature{Detector: twitchy, Lifetimes: fixedLife(need - 1)}
	hosts, stepped := signatureScenario(t, g, 100, 1100)
	if plan := g.Plan(hosts, stepped); len(plan) != 0 {
		t.Fatalf("a VM expected to die before the move pays off was still planned: %v", plan)
	}

	g2 := &Signature{Detector: twitchy, Lifetimes: fixedLife(need)}
	hosts2, stepped2 := signatureScenario(t, g2, 100, 1100)
	if plan := g2.Plan(hosts2, stepped2); len(plan) != 1 {
		t.Fatalf("a long-lived VM must still move, got %v", plan)
	}
}

func TestSignatureBatchesShiftedHostsHottestFirst(t *testing.T) {
	mk := func(maxMoves int) (*Signature, []*Host, RebalanceView) {
		g := &Signature{Detector: twitchy, MaxMoves: maxMoves}
		f, err := New(Config{Hosts: 4, Template: HostTemplate{Seed: 5}, Placer: FirstFit{}})
		if err != nil {
			t.Fatal(err)
		}
		quiet := sigView(4,
			VMLoad{Name: "p0", App: "lbm", HostID: 0, Rate: 5000},
			VMLoad{Name: "v0", App: "gcc", HostID: 0, Rate: 100},
			VMLoad{Name: "p1", App: "lbm", HostID: 1, Rate: 3000},
			VMLoad{Name: "v1", App: "gcc", HostID: 1, Rate: 100},
		)
		for epoch := 1; epoch <= 3; epoch++ {
			if plan := g.Plan(f.Hosts(), quiet); len(plan) != 0 {
				t.Fatalf("epoch %d planned %v", epoch, plan)
			}
		}
		stepped := sigView(4,
			VMLoad{Name: "p0", App: "lbm", HostID: 0, Rate: 5000},
			VMLoad{Name: "v0", App: "gcc", HostID: 0, Rate: 1100},
			VMLoad{Name: "p1", App: "lbm", HostID: 1, Rate: 3000},
			VMLoad{Name: "v1", App: "gcc", HostID: 1, Rate: 1100},
		)
		return g, f.Hosts(), stepped
	}

	// Both hosts shift in the same epoch; the default cap moves both
	// polluters, with batch capacity accounting spreading them over the
	// two cold hosts.
	g, hosts, stepped := mk(0)
	plan := g.Plan(hosts, stepped)
	if len(plan) != 2 || plan[0].VMName != "p0" || plan[1].VMName != "p1" {
		t.Fatalf("plan %+v, want p0 (hotter host first) then p1", plan)
	}
	if plan[0].DstHost == plan[1].DstHost {
		// Both cold hosts are empty; after p0 lands on one, it is no
		// longer the coolest, so p1 must pick the other.
		t.Fatalf("batch rate accounting failed: both moves chose host %d", plan[0].DstHost)
	}

	// MaxMoves: 1 spends the single move on the hotter host.
	g1, hosts1, stepped1 := mk(1)
	if plan := g1.Plan(hosts1, stepped1); len(plan) != 1 || plan[0].VMName != "p0" {
		t.Fatalf("capped plan %+v, want only p0 from the hottest shifted host", plan)
	}
}

func TestSignatureStateRoundTripContinuesIdentically(t *testing.T) {
	// Drive one Signature to the brink of firing, capture, restore into
	// a fresh instance, then confirm both plan identical moves and
	// serialize identical state afterwards.
	a := &Signature{Detector: twitchy}
	hosts, stepped := signatureScenario(t, a, 100, 1100)

	blob, err := a.CaptureRebalanceState()
	if err != nil {
		t.Fatal(err)
	}
	b := &Signature{Detector: twitchy}
	if err := b.RestoreRebalanceState(blob); err != nil {
		t.Fatal(err)
	}

	planA := a.Plan(hosts, stepped)
	planB := b.Plan(hosts, stepped)
	if !reflect.DeepEqual(planA, planB) {
		t.Fatalf("plans diverged after restore:\n%+v\n%+v", planA, planB)
	}
	if !reflect.DeepEqual(a.ChangePoints(), b.ChangePoints()) {
		t.Fatalf("change-point logs diverged:\n%+v\n%+v", a.ChangePoints(), b.ChangePoints())
	}
	sa, err := a.CaptureRebalanceState()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.CaptureRebalanceState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sa, sb) {
		t.Fatalf("captured states diverged:\n%s\n%s", sa, sb)
	}
}

func TestSignatureValidateRejectsBadDetectorKnobs(t *testing.T) {
	if err := (&Signature{Detector: detect.Config{Alpha: 2}}).Validate(); err == nil {
		t.Fatal("alpha 2 must fail validation")
	}
	if err := (&Signature{}).Validate(); err != nil {
		t.Fatalf("zero config must validate, got %v", err)
	}
}
