// Rebalancing policies: the reactive face of the placement debate. The
// paper's Kyoto argument is proactive — book llc_cap at admission and any
// placement is safe — while real IaaS operators also react, watching the
// fleet and live-migrating noisy VMs after the fact. A Rebalancer is that
// reaction, planned from the same Equation-1 pollution indicator the
// on-host Kyoto monitor enforces with; the MigrationSweep experiment puts
// the two side by side on one trace.

package cluster

import (
	"fmt"

	"kyoto/internal/core"
	"kyoto/internal/pmc"
)

// DefaultRebalanceThreshold is the Equation-1 pollution rate above which
// the built-in rebalancers consider a VM a polluter worth migrating: one
// full Figure-5 permit (llc_cap 250). Below it, migration costs more than
// the contention it relieves.
const DefaultRebalanceThreshold = 250

// VMLoad is one VM's pollution observation over the last rebalance epoch.
type VMLoad struct {
	// Name and App identify the VM.
	Name string
	App  string
	// HostID is where the VM currently runs.
	HostID int
	// Rate is the VM's Equation-1 pollution (LLC misses per busy
	// millisecond) over the epoch window.
	Rate float64
	// Request echoes the VM's booking, for feasibility checks.
	Request Request
}

// RebalanceView is the fleet snapshot a Rebalancer plans from: per-VM
// pollution rates over the last epoch in deterministic order (host ID,
// then placement order), plus the per-host sums.
type RebalanceView struct {
	// VMs lists every placed VM's epoch observation.
	VMs []VMLoad
	// HostRates sums Rate per host, indexed by host ID.
	HostRates []float64
}

// FleetMonitor derives RebalanceViews from a fleet: it snapshots every
// VM's lifetime counters at each Observe call and reports the Equation-1
// pollution rate over the delta — the fleet-level analogue of the on-host
// monitors in internal/monitor, and deliberately independent of whether
// per-host Kyoto enforcement is active, so unprotected first-fit fleets
// can be rebalanced from the same signal. Counters survive migration
// (vm.VM.Carried), so a VM moved mid-epoch still reports one continuous
// rate.
type FleetMonitor struct {
	prev map[string]pmc.Counters
}

// NewFleetMonitor returns a monitor whose first Observe covers each VM's
// whole residency so far.
func NewFleetMonitor() *FleetMonitor {
	return &FleetMonitor{prev: make(map[string]pmc.Counters)}
}

// Observe builds the epoch view and advances the per-VM snapshots.
// Departed VMs are forgotten, so long churn runs do not leak state.
func (m *FleetMonitor) Observe(f *Fleet) RebalanceView {
	view := RebalanceView{HostRates: make([]float64, len(f.hosts))}
	live := make(map[string]bool, len(f.placements))
	for _, h := range f.hosts {
		for _, p := range h.vms {
			cur := p.VM.Counters()
			rate := core.Equation1Value(cur.Delta(m.prev[p.VM.Name]))
			m.prev[p.VM.Name] = cur
			live[p.VM.Name] = true
			view.VMs = append(view.VMs, VMLoad{
				Name: p.VM.Name, App: p.VM.App, HostID: h.ID,
				Rate: rate, Request: p.Request,
			})
			view.HostRates[h.ID] += rate
		}
	}
	for name := range m.prev {
		if !live[name] {
			delete(m.prev, name)
		}
	}
	return view
}

// Rebalancer plans live migrations from an epoch's fleet view.
// Implementations must be deterministic (ties break toward the lowest
// host ID / earliest placement) and must not mutate the hosts; the replay
// engine applies the plan through Fleet.Migrate.
type Rebalancer interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Plan returns the migrations to perform this epoch, in order.
	Plan(hosts []*Host, view RebalanceView) []Migration
}

// Migration is one planned move.
type Migration struct {
	// VMName is the VM to move.
	VMName string
	// SrcHost and DstHost are the endpoints.
	SrcHost, DstHost int
	// Reason explains the decision for reports.
	Reason string
}

// Reactive is the classic hotspot-chasing rebalancer an IaaS operator
// runs without Kyoto: find the host with the highest summed pollution,
// and if its worst polluter exceeds the threshold, evict that VM to the
// least-polluted host with capacity headroom. It reacts to contention
// after tenants have already suffered it — the contrast the paper's
// admission-time permits are measured against.
type Reactive struct {
	// Threshold is the per-VM Equation-1 rate below which no migration is
	// worth its cost (default DefaultRebalanceThreshold).
	Threshold float64
}

// Name implements Rebalancer.
func (Reactive) Name() string { return "reactive" }

// Plan implements Rebalancer: at most one migration per epoch, worst
// polluter of the hottest host to the coolest feasible host.
func (r Reactive) Plan(hosts []*Host, view RebalanceView) []Migration {
	worst := worstPolluter(view, threshold(r.Threshold))
	if worst == nil {
		return nil
	}
	dst := -1
	for _, h := range hosts {
		if h.ID == worst.HostID || !canHost(h, worst.Request) {
			continue
		}
		if dst == -1 || view.HostRates[h.ID] < view.HostRates[dst] {
			dst = h.ID
		}
	}
	// Only move toward strictly cooler hosts: migrating between equally
	// hot hosts would ping-pong the polluter without relieving anything.
	if dst == -1 || view.HostRates[dst] >= view.HostRates[worst.HostID] {
		return nil
	}
	return []Migration{{
		VMName: worst.Name, SrcHost: worst.HostID, DstHost: dst,
		Reason: fmt.Sprintf("eq1 %.0f on hottest host %d, coolest fit %d", worst.Rate, worst.HostID, dst),
	}}
}

// TopologyAware is the heterogeneity-exploiting rebalancer: the same
// hotspot detection as Reactive, but polluters are steered onto hosts
// with a larger LLC (HostOverride machines) where the same miss stream
// pollutes a smaller fraction of the cache — the placement the
// capacity-only placers cannot express because they reason about vCPUs
// and memory alone. Falls back to Reactive's coolest-host choice when no
// bigger-LLC host fits.
type TopologyAware struct {
	// Threshold is the per-VM Equation-1 rate below which no migration is
	// worth its cost (default DefaultRebalanceThreshold).
	Threshold float64
}

// Name implements Rebalancer.
func (TopologyAware) Name() string { return "topo" }

// Plan implements Rebalancer.
func (t TopologyAware) Plan(hosts []*Host, view RebalanceView) []Migration {
	worst := worstPolluter(view, threshold(t.Threshold))
	if worst == nil {
		return nil
	}
	srcLLC := hostLLCBytes(hosts[worst.HostID])
	bigger, cooler := -1, -1
	for _, h := range hosts {
		if h.ID == worst.HostID || !canHost(h, worst.Request) {
			continue
		}
		if hostLLCBytes(h) > srcLLC {
			if bigger == -1 || view.HostRates[h.ID] < view.HostRates[bigger] {
				bigger = h.ID
			}
		}
		if cooler == -1 || view.HostRates[h.ID] < view.HostRates[cooler] {
			cooler = h.ID
		}
	}
	if bigger != -1 {
		return []Migration{{
			VMName: worst.Name, SrcHost: worst.HostID, DstHost: bigger,
			Reason: fmt.Sprintf("eq1 %.0f, bigger-LLC host %d (%d KB > %d KB)",
				worst.Rate, bigger, hostLLCBytes(hosts[bigger])/1024, srcLLC/1024),
		}}
	}
	if cooler == -1 || view.HostRates[cooler] >= view.HostRates[worst.HostID] {
		return nil
	}
	return []Migration{{
		VMName: worst.Name, SrcHost: worst.HostID, DstHost: cooler,
		Reason: fmt.Sprintf("eq1 %.0f, no bigger LLC, coolest fit %d", worst.Rate, cooler),
	}}
}

// threshold resolves the zero value to the default.
func threshold(t float64) float64 {
	if t == 0 {
		return DefaultRebalanceThreshold
	}
	return t
}

// worstPolluter returns the highest-rate VM on the hottest host when it
// exceeds thr, else nil. Ties break toward the lowest host ID and the
// earliest placement, keeping plans deterministic.
func worstPolluter(view RebalanceView, thr float64) *VMLoad {
	src, srcRate := -1, 0.0
	for id, rate := range view.HostRates {
		if rate > srcRate {
			src, srcRate = id, rate
		}
	}
	if src == -1 {
		return nil
	}
	var worst *VMLoad
	for i := range view.VMs {
		v := &view.VMs[i]
		if v.HostID != src {
			continue
		}
		if worst == nil || v.Rate > worst.Rate {
			worst = v
		}
	}
	if worst == nil || worst.Rate < thr {
		return nil
	}
	return worst
}

// canHost reports whether h can take the migrated request: vCPU and
// memory headroom always, permit headroom when the host enforces Kyoto.
func canHost(h *Host, req Request) bool {
	if !h.Fits(req) {
		return false
	}
	return h.kyoto == nil || req.LLCCap <= h.FreeLLC()
}

// hostLLCBytes returns the host's total last-level cache capacity.
func hostLLCBytes(h *Host) int {
	cfg := h.World.Machine().Config()
	return cfg.LLC.SizeBytes * cfg.Sockets
}

// RebalancerByName returns the built-in rebalancing policy with the given
// CLI name; "none" or the empty string return nil (no rebalancing).
func RebalancerByName(name string) (Rebalancer, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "reactive":
		return Reactive{}, nil
	case "topo", "topology":
		return TopologyAware{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown rebalancer %q (want none, reactive or topo)", name)
	}
}

// RebalancerNames lists the built-in rebalancer names for CLI help.
func RebalancerNames() []string { return []string{"none", "reactive", "topo"} }
