// Rebalancing policies: the reactive face of the placement debate. The
// paper's Kyoto argument is proactive — book llc_cap at admission and any
// placement is safe — while real IaaS operators also react, watching the
// fleet and live-migrating noisy VMs after the fact. A Rebalancer is that
// reaction, planned from the same Equation-1 pollution indicator the
// on-host Kyoto monitor enforces with; the MigrationSweep experiment puts
// the two side by side on one trace.

package cluster

import (
	"fmt"

	"kyoto/internal/core"
	"kyoto/internal/pmc"
)

// DefaultRebalanceThreshold is the Equation-1 pollution rate above which
// the built-in rebalancers consider a VM a polluter worth migrating: one
// full Figure-5 permit (llc_cap 250). Below it, migration costs more than
// the contention it relieves.
const DefaultRebalanceThreshold = 250

// DefaultMigrationCooldown is the per-VM hysteresis of the built-in
// rebalancers: after a VM is migrated, it is ineligible for this many
// subsequent rebalance epochs. Without it the reactive policy ping-pongs:
// moving the worst polluter makes its destination the next epoch's
// hottest host, and the same VM bounces straight back. Two epochs lets
// the migrated VM's cold-cache transient decay before its rate is judged
// again.
const DefaultMigrationCooldown = 2

// VMLoad is one VM's pollution observation over the last rebalance epoch.
type VMLoad struct {
	// Name and App identify the VM.
	Name string
	App  string
	// HostID is where the VM currently runs.
	HostID int
	// Rate is the VM's Equation-1 pollution (LLC misses per busy
	// millisecond) over the epoch window.
	Rate float64
	// Request echoes the VM's booking, for feasibility checks.
	Request Request
}

// RebalanceView is the fleet snapshot a Rebalancer plans from: per-VM
// pollution rates over the last epoch in deterministic order (host ID,
// then placement order), plus the per-host sums.
type RebalanceView struct {
	// VMs lists every placed VM's epoch observation.
	VMs []VMLoad
	// HostRates sums Rate per host, indexed by host ID.
	HostRates []float64
}

// FleetMonitor derives RebalanceViews from a fleet: it snapshots every
// VM's lifetime counters at each Observe call and reports the Equation-1
// pollution rate over the delta — the fleet-level analogue of the on-host
// monitors in internal/monitor, and deliberately independent of whether
// per-host Kyoto enforcement is active, so unprotected first-fit fleets
// can be rebalanced from the same signal. Counters survive migration
// (vm.VM.Carried), so a VM moved mid-epoch still reports one continuous
// rate.
type FleetMonitor struct {
	prev map[string]pmc.Counters
}

// NewFleetMonitor returns a monitor whose first Observe covers each VM's
// whole residency so far.
func NewFleetMonitor() *FleetMonitor {
	return &FleetMonitor{prev: make(map[string]pmc.Counters)}
}

// Observe builds the epoch view and advances the per-VM snapshots.
// Departed VMs are forgotten, so long churn runs do not leak state.
// An observation reads every VM's counters — simulated state — so it is
// a global barrier: every lagging host is fast-forwarded to the fleet
// clock first. This is what makes a rebalance epoch the synchronization
// point of a lazily advanced replay.
func (m *FleetMonitor) Observe(f *Fleet) RebalanceView {
	f.Barrier()
	view := RebalanceView{HostRates: make([]float64, len(f.hosts))}
	live := make(map[string]bool, len(f.placements))
	for _, h := range f.hosts {
		for _, p := range h.vms {
			cur := p.VM.Counters()
			rate := core.Equation1Value(cur.Delta(m.prev[p.VM.Name]))
			m.prev[p.VM.Name] = cur
			live[p.VM.Name] = true
			view.VMs = append(view.VMs, VMLoad{
				Name: p.VM.Name, App: p.VM.App, HostID: h.ID,
				Rate: rate, Request: p.Request,
			})
			view.HostRates[h.ID] += rate
		}
	}
	for name := range m.prev {
		if !live[name] {
			delete(m.prev, name)
		}
	}
	return view
}

// Rebalancer plans live migrations from an epoch's fleet view.
// Implementations must be deterministic (ties break toward the lowest
// host ID / earliest placement) and must not mutate the hosts; the replay
// engine applies the plan through Fleet.Migrate. Implementations may
// carry per-replay state (the built-ins track per-VM migration
// cooldowns), so one instance serves one replay.
type Rebalancer interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Plan returns the migrations to perform this epoch, in order.
	Plan(hosts []*Host, view RebalanceView) []Migration
}

// Migration is one planned move.
type Migration struct {
	// VMName is the VM to move.
	VMName string
	// SrcHost and DstHost are the endpoints.
	SrcHost, DstHost int
	// Reason explains the decision for reports.
	Reason string
}

// migrationCooldown is the per-VM hysteresis state the built-in
// rebalancers share: which epoch each VM was last migrated in, plus the
// epoch counter the Plan calls advance. A rebalancer instance therefore
// belongs to one replay — build a fresh one per run (RebalancerByName
// does), or plans would leak cooldowns across unrelated fleets.
type migrationCooldown struct {
	epoch     uint64
	lastMoved map[string]uint64
}

// advance starts a new epoch and forgets departed VMs so long churn runs
// do not leak state.
func (c *migrationCooldown) advance(view RebalanceView) {
	c.epoch++
	if c.lastMoved == nil {
		c.lastMoved = make(map[string]uint64)
		return
	}
	live := make(map[string]bool, len(view.VMs))
	for i := range view.VMs {
		live[view.VMs[i].Name] = true
	}
	for name := range c.lastMoved {
		if !live[name] {
			delete(c.lastMoved, name)
		}
	}
}

// eligible reports whether the VM is off cooldown for the current epoch.
func (c *migrationCooldown) eligible(name string, cooldownEpochs int) bool {
	moved, ok := c.lastMoved[name]
	return !ok || c.epoch-moved > uint64(cooldownEpochs)
}

// moved records the VM as migrated this epoch.
func (c *migrationCooldown) moved(name string) { c.lastMoved[name] = c.epoch }

// beginEpoch is the shared epoch prologue of every built-in rebalancer:
// advance the cooldown bookkeeping, resolve the Threshold and
// CooldownEpochs knobs to their defaults in one place, and return the
// resolved threshold plus the eligibility predicate for this epoch.
// Reactive, TopologyAware and Signature all start their Plan here, so
// the knob-defaulting rules cannot drift between policies.
func (c *migrationCooldown) beginEpoch(view RebalanceView, thresholdKnob float64, cooldownKnob int) (thr float64, eligible func(name string) bool) {
	c.advance(view)
	cool := cooldownEpochs(cooldownKnob)
	return threshold(thresholdKnob), func(name string) bool {
		return c.eligible(name, cool)
	}
}

// cooldownEpochs resolves the knob: 0 means the default, negative
// disables the hysteresis entirely.
func cooldownEpochs(n int) int {
	if n == 0 {
		return DefaultMigrationCooldown
	}
	if n < 0 {
		return 0
	}
	return n
}

// Reactive is the classic hotspot-chasing rebalancer an IaaS operator
// runs without Kyoto: find the host with the highest summed pollution,
// and if its worst polluter exceeds the threshold, evict that VM to the
// least-polluted host with capacity headroom. It reacts to contention
// after tenants have already suffered it — the contrast the paper's
// admission-time permits are measured against.
//
// Plans carry per-VM cooldown state, so a Reactive value is stateful:
// use one instance per replay and do not share it across goroutines.
type Reactive struct {
	// Threshold is the per-VM Equation-1 rate below which no migration is
	// worth its cost (default DefaultRebalanceThreshold).
	Threshold float64
	// CooldownEpochs is the per-VM hysteresis: a VM that was just
	// migrated is ineligible for this many subsequent epochs, so the
	// policy cannot bounce the same VM between hosts on consecutive
	// plans. 0 selects DefaultMigrationCooldown; negative disables.
	CooldownEpochs int

	cd migrationCooldown
}

// Name implements Rebalancer.
func (*Reactive) Name() string { return "reactive" }

// Plan implements Rebalancer: at most one migration per epoch, worst
// eligible polluter of the hottest host to the coolest feasible host.
func (r *Reactive) Plan(hosts []*Host, view RebalanceView) []Migration {
	thr, eligible := r.cd.beginEpoch(view, r.Threshold, r.CooldownEpochs)
	worst := worstPolluter(view, thr, eligible)
	if worst == nil {
		return nil
	}
	dst := -1
	for _, h := range hosts {
		if h.ID == worst.HostID || !canHost(h, worst.Request) {
			continue
		}
		if dst == -1 || view.HostRates[h.ID] < view.HostRates[dst] {
			dst = h.ID
		}
	}
	// Only move toward strictly cooler hosts: migrating between equally
	// hot hosts would ping-pong the polluter without relieving anything.
	if dst == -1 || view.HostRates[dst] >= view.HostRates[worst.HostID] {
		return nil
	}
	r.cd.moved(worst.Name)
	return []Migration{{
		VMName: worst.Name, SrcHost: worst.HostID, DstHost: dst,
		Reason: fmt.Sprintf("eq1 %.0f on hottest host %d, coolest fit %d", worst.Rate, worst.HostID, dst),
	}}
}

// TopologyAware is the heterogeneity-exploiting rebalancer: the same
// hotspot detection as Reactive, but polluters are steered onto hosts
// with a larger LLC (HostOverride machines) where the same miss stream
// pollutes a smaller fraction of the cache — the placement the
// capacity-only placers cannot express because they reason about vCPUs
// and memory alone. Falls back to Reactive's coolest-host choice when no
// bigger-LLC host fits.
//
// Like Reactive, plans carry per-VM cooldown state: one instance per
// replay.
type TopologyAware struct {
	// Threshold is the per-VM Equation-1 rate below which no migration is
	// worth its cost (default DefaultRebalanceThreshold).
	Threshold float64
	// CooldownEpochs is the per-VM hysteresis, as in Reactive
	// (0 = DefaultMigrationCooldown, negative disables).
	CooldownEpochs int

	cd migrationCooldown
}

// Name implements Rebalancer.
func (*TopologyAware) Name() string { return "topo" }

// Plan implements Rebalancer.
func (t *TopologyAware) Plan(hosts []*Host, view RebalanceView) []Migration {
	thr, eligible := t.cd.beginEpoch(view, t.Threshold, t.CooldownEpochs)
	worst := worstPolluter(view, thr, eligible)
	if worst == nil {
		return nil
	}
	srcLLC := hostLLCBytes(hosts[worst.HostID])
	bigger, cooler := -1, -1
	for _, h := range hosts {
		if h.ID == worst.HostID || !canHost(h, worst.Request) {
			continue
		}
		if hostLLCBytes(h) > srcLLC {
			if bigger == -1 || view.HostRates[h.ID] < view.HostRates[bigger] {
				bigger = h.ID
			}
		}
		if cooler == -1 || view.HostRates[h.ID] < view.HostRates[cooler] {
			cooler = h.ID
		}
	}
	if bigger != -1 {
		t.cd.moved(worst.Name)
		return []Migration{{
			VMName: worst.Name, SrcHost: worst.HostID, DstHost: bigger,
			Reason: fmt.Sprintf("eq1 %.0f, bigger-LLC host %d (%d KB > %d KB)",
				worst.Rate, bigger, hostLLCBytes(hosts[bigger])/1024, srcLLC/1024),
		}}
	}
	if cooler == -1 || view.HostRates[cooler] >= view.HostRates[worst.HostID] {
		return nil
	}
	t.cd.moved(worst.Name)
	return []Migration{{
		VMName: worst.Name, SrcHost: worst.HostID, DstHost: cooler,
		Reason: fmt.Sprintf("eq1 %.0f, no bigger LLC, coolest fit %d", worst.Rate, cooler),
	}}
}

// threshold resolves the zero value to the default.
func threshold(t float64) float64 {
	if t == 0 {
		return DefaultRebalanceThreshold
	}
	return t
}

// worstPolluter returns the highest-rate eligible VM on the hottest host
// when it exceeds thr, else nil. Ineligible VMs (on migration cooldown)
// are invisible to the selection: if the hottest host's worst polluter is
// cooling down, its next-worst eligible VM is considered instead. Ties
// break toward the lowest host ID and the earliest placement, keeping
// plans deterministic.
func worstPolluter(view RebalanceView, thr float64, eligible func(name string) bool) *VMLoad {
	src, srcRate := -1, 0.0
	for id, rate := range view.HostRates {
		if rate > srcRate {
			src, srcRate = id, rate
		}
	}
	if src == -1 {
		return nil
	}
	var worst *VMLoad
	for i := range view.VMs {
		v := &view.VMs[i]
		if v.HostID != src || !eligible(v.Name) {
			continue
		}
		if worst == nil || v.Rate > worst.Rate {
			worst = v
		}
	}
	if worst == nil || worst.Rate < thr {
		return nil
	}
	return worst
}

// canHost reports whether h can take the migrated request: vCPU and
// memory headroom always, permit headroom when the host enforces Kyoto.
func canHost(h *Host, req Request) bool {
	if !h.Fits(req) {
		return false
	}
	return h.kyoto == nil || req.LLCCap <= h.FreeLLC()
}

// hostLLCBytes returns the host's total last-level cache capacity.
func hostLLCBytes(h *Host) int {
	cfg := h.World.Machine().Config()
	return cfg.LLC.SizeBytes * cfg.Sockets
}

// RebalancerByName returns a fresh instance of the built-in rebalancing
// policy with the given CLI name; "none" or the empty string return nil
// (no rebalancing). Each call builds a new instance because the built-ins
// carry per-replay cooldown state.
func RebalancerByName(name string) (Rebalancer, error) {
	switch name {
	case "", "none":
		return nil, nil
	case "reactive":
		return &Reactive{}, nil
	case "topo", "topology":
		return &TopologyAware{}, nil
	case "signature":
		return &Signature{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown rebalancer %q (want none, reactive, topo or signature)", name)
	}
}

// RebalancerNames lists the built-in rebalancer names for CLI help.
func RebalancerNames() []string { return []string{"none", "reactive", "topo", "signature"} }
