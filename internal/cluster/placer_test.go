package cluster

import (
	"errors"
	"strings"
	"testing"

	"kyoto/internal/vm"
)

// req builds a single-vCPU request booking the default memory.
func req(name, app string, llcCap float64) Request {
	return Request{Spec: vm.Spec{Name: name, App: app, LLCCap: llcCap}}
}

// newTestFleet builds a small fleet with the given policy.
func newTestFleet(t *testing.T, hosts int, p Placer) *Fleet {
	t.Helper()
	f, err := New(Config{Hosts: hosts, Template: HostTemplate{Seed: 1}, Placer: p})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPlacerPolicies(t *testing.T) {
	// Each case places a request sequence on a 2-host Table-1 fleet
	// (4 vCPU slots, 506 MB, llc budget 1000 per host) and checks the
	// host chosen for each, or the rejection.
	type placement struct {
		req      Request
		wantHost int    // -1 means the request must be rejected
		wantErr  string // substring of the rejection
	}
	cases := []struct {
		name   string
		placer Placer
		seq    []placement
	}{
		{
			name:   "first-fit packs host 0 before touching host 1",
			placer: FirstFit{},
			seq: []placement{
				{req: req("a", "gcc", 0), wantHost: 0},
				{req: req("b", "lbm", 0), wantHost: 0},
				{req: req("c", "mcf", 0), wantHost: 0},
				{req: req("d", "bzip", 0), wantHost: 0},
				{req: req("e", "astar", 0), wantHost: 1}, // host 0's 4 slots gone
			},
		},
		{
			name:   "first-fit respects memory",
			placer: FirstFit{},
			seq: []placement{
				{req: Request{Spec: vm.Spec{Name: "big", App: "gcc"}, MemoryMB: 400}, wantHost: 0},
				{req: Request{Spec: vm.Spec{Name: "big2", App: "gcc"}, MemoryMB: 400}, wantHost: 1},
				{req: Request{Spec: vm.Spec{Name: "big3", App: "gcc"}, MemoryMB: 400}, wantHost: -1,
					wantErr: "no host"},
			},
		},
		{
			name:   "spread separates the polluters",
			placer: Spread{},
			seq: []placement{
				{req: req("dis1", "lbm", 0), wantHost: 0},
				// blockie is the most aggressive app: it must avoid lbm's host.
				{req: req("dis2", "blockie", 0), wantHost: 1},
				// gcc (weight 8) joins the lighter host: host 0 carries lbm
				// (30), host 1 blockie (35).
				{req: req("sen1", "gcc", 0), wantHost: 0},
				// next sensitive VM joins host 1 (38 vs 35 after gcc).
				{req: req("sen2", "omnetpp", 0), wantHost: 1},
			},
		},
		{
			name:   "spread ties break toward the lowest host ID",
			placer: Spread{},
			seq: []placement{
				{req: req("a", "gcc", 0), wantHost: 0},
				{req: req("b", "gcc", 0), wantHost: 1},
				{req: req("c", "gcc", 0), wantHost: 0},
				{req: req("d", "gcc", 0), wantHost: 1},
			},
		},
		{
			name:   "kyoto admission books llc_cap and rejects oversubscription",
			placer: Admission{},
			seq: []placement{
				{req: req("a", "lbm", 600), wantHost: 0},
				// 600 booked on host 0 leaves 400 free: next 600 goes to host 1.
				{req: req("b", "blockie", 600), wantHost: 1},
				// 400 still fits host 0.
				{req: req("c", "mcf", 400), wantHost: 0},
				// permits exhausted on host 0, 400 free on host 1.
				{req: req("d", "milc", 400), wantHost: 1},
				// every host's permit budget is now fully subscribed.
				{req: req("e", "gcc", 100), wantHost: -1, wantErr: "oversubscribes"},
			},
		},
		{
			name:   "kyoto admission requires a permit",
			placer: Admission{},
			seq: []placement{
				{req: req("nopermit", "gcc", 0), wantHost: -1, wantErr: "books no llc_cap"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newTestFleet(t, 2, tc.placer)
			for _, step := range tc.seq {
				p, err := f.Place(step.req)
				if step.wantHost == -1 {
					if err == nil {
						t.Fatalf("placing %q: want rejection, got host %d", step.req.Name, p.HostID)
					}
					if !errors.Is(err, ErrUnplaceable) {
						t.Fatalf("placing %q: error %v must wrap ErrUnplaceable", step.req.Name, err)
					}
					if !strings.Contains(err.Error(), step.wantErr) {
						t.Fatalf("placing %q: error %q missing %q", step.req.Name, err, step.wantErr)
					}
					continue
				}
				if err != nil {
					t.Fatalf("placing %q: %v", step.req.Name, err)
				}
				if p.HostID != step.wantHost {
					t.Fatalf("placing %q: host %d, want %d", step.req.Name, p.HostID, step.wantHost)
				}
			}
		})
	}
}

func TestPlacementBookkeeping(t *testing.T) {
	f := newTestFleet(t, 1, FirstFit{})
	h := f.Host(0)
	if h.CapacityCPUs != 4 || h.LLCBudget != 1000 {
		t.Fatalf("table-1 host capacity: %d vCPUs, llc %v", h.CapacityCPUs, h.LLCBudget)
	}
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "v", App: "gcc", VCPUs: 2, LLCCap: 250}, MemoryMB: 100}); err != nil {
		t.Fatal(err)
	}
	if h.BookedCPUs != 2 || h.BookedMemMB != 100 || h.BookedLLC != 250 {
		t.Fatalf("booked %d/%d/%v", h.BookedCPUs, h.BookedMemMB, h.BookedLLC)
	}
	if h.FreeCPUs() != 2 || h.FreeMemMB() != h.CapacityMemMB-100 || h.FreeLLC() != 750 {
		t.Fatalf("free %d/%d/%v", h.FreeCPUs(), h.FreeMemMB(), h.FreeLLC())
	}
	if len(f.Placements()) != 1 || len(h.Placements()) != 1 {
		t.Fatal("placement not recorded")
	}
}

func TestPlaceRejectsBadSpec(t *testing.T) {
	f := newTestFleet(t, 1, FirstFit{})
	if _, err := f.Place(req("x", "no-such-app", 0)); err == nil {
		t.Fatal("unknown app must fail")
	}
}

func TestPlacerByName(t *testing.T) {
	for _, name := range PlacerNames() {
		p, err := PlacerByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("round trip: %q -> %q", name, p.Name())
		}
	}
	if _, err := PlacerByName("nope"); err == nil {
		t.Fatal("unknown placer must fail")
	}
	if p, err := PlacerByName(""); err != nil || p.Name() != "first-fit" {
		t.Fatalf("empty name must default to first-fit, got %v, %v", p, err)
	}
}

func TestAggressivenessCoversFigure4(t *testing.T) {
	// Spread's weights must rank the heavy polluters above the quiet
	// cache-resident apps, matching the paper's o1 ordering.
	if !(AggressivenessOf("blockie") > AggressivenessOf("lbm")) {
		t.Fatal("blockie leads o1")
	}
	if !(AggressivenessOf("lbm") > AggressivenessOf("gcc")) {
		t.Fatal("polluters out-rank sensitive apps")
	}
	if !(AggressivenessOf("gcc") > AggressivenessOf("bzip")) {
		t.Fatal("bzip trails o1")
	}
	if AggressivenessOf("povray") != defaultAggressiveness {
		t.Fatal("unknown apps get the default weight")
	}
}

func TestDeterministicPlacementOrdering(t *testing.T) {
	// The same request sequence on two fresh fleets must produce the
	// identical placement, whatever the policy.
	seq := []Request{
		req("a", "lbm", 250), req("b", "gcc", 250), req("c", "blockie", 250),
		req("d", "omnetpp", 250), req("e", "mcf", 250), req("f", "bzip", 250),
	}
	for _, name := range PlacerNames() {
		p, err := PlacerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		f1 := newTestFleet(t, 4, p)
		f2 := newTestFleet(t, 4, p)
		p1, err1 := f1.PlaceAll(seq)
		p2, err2 := f2.PlaceAll(seq)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: divergent errors %v vs %v", name, err1, err2)
		}
		for i := range p1 {
			if p1[i].HostID != p2[i].HostID {
				t.Fatalf("%s: request %d placed on host %d then %d", name, i, p1[i].HostID, p2[i].HostID)
			}
		}
	}
}
