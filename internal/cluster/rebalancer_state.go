package cluster

// Rebalancing checkpoint support: the replay-relevant state of the fleet
// monitor (its per-VM previous-counter snapshots) and of the built-in
// rebalancers (their per-VM migration cooldowns). Both serialize as
// name-sorted lists so the encoding is canonical whatever map iteration
// order produced it.

import (
	"encoding/json"
	"fmt"
	"sort"

	"kyoto/internal/pmc"
)

// NamedCounters is one VM's previous-Observe counter snapshot.
type NamedCounters struct {
	Name     string       `json:"name"`
	Counters pmc.Counters `json:"counters"`
}

// State returns the monitor's per-VM snapshots, sorted by name.
func (m *FleetMonitor) State() []NamedCounters {
	out := make([]NamedCounters, 0, len(m.prev))
	for name, c := range m.prev {
		out = append(out, NamedCounters{Name: name, Counters: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SetState replaces the monitor's per-VM snapshots.
func (m *FleetMonitor) SetState(st []NamedCounters) {
	m.prev = make(map[string]pmc.Counters, len(st))
	for _, nc := range st {
		m.prev[nc.Name] = nc.Counters
	}
}

// StatefulRebalancer is implemented by rebalancers whose plans depend on
// per-replay state (the built-ins' migration cooldowns); replay
// checkpoints capture and restore it through this interface. A stateless
// custom Rebalancer needs no implementation.
type StatefulRebalancer interface {
	CaptureRebalanceState() (json.RawMessage, error)
	RestoreRebalanceState(data json.RawMessage) error
}

// namedEpoch is one VM's last-migrated epoch.
type namedEpoch struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch"`
}

// cooldownState is the serialized form of migrationCooldown.
type cooldownState struct {
	Epoch     uint64       `json:"epoch"`
	LastMoved []namedEpoch `json:"last_moved,omitempty"`
}

func (c *migrationCooldown) capture() (json.RawMessage, error) {
	st := cooldownState{Epoch: c.epoch}
	for name, e := range c.lastMoved {
		st.LastMoved = append(st.LastMoved, namedEpoch{Name: name, Epoch: e})
	}
	sort.Slice(st.LastMoved, func(i, j int) bool { return st.LastMoved[i].Name < st.LastMoved[j].Name })
	return json.Marshal(st)
}

func (c *migrationCooldown) restore(data json.RawMessage) error {
	var st cooldownState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("cluster: cooldown state: %w", err)
	}
	c.epoch = st.Epoch
	c.lastMoved = make(map[string]uint64, len(st.LastMoved))
	for _, ne := range st.LastMoved {
		c.lastMoved[ne.Name] = ne.Epoch
	}
	return nil
}

// CaptureRebalanceState implements StatefulRebalancer.
func (r *Reactive) CaptureRebalanceState() (json.RawMessage, error) { return r.cd.capture() }

// RestoreRebalanceState implements StatefulRebalancer.
func (r *Reactive) RestoreRebalanceState(data json.RawMessage) error { return r.cd.restore(data) }

// CaptureRebalanceState implements StatefulRebalancer.
func (t *TopologyAware) CaptureRebalanceState() (json.RawMessage, error) { return t.cd.capture() }

// RestoreRebalanceState implements StatefulRebalancer.
func (t *TopologyAware) RestoreRebalanceState(data json.RawMessage) error { return t.cd.restore(data) }
