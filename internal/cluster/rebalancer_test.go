package cluster

import (
	"testing"

	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

// rebalanceScenario builds a 3-host fleet with a polluter (lbm) and a
// quiet tenant (gcc) on host 0, a quiet tenant on host 1, and host 2
// empty, runs it, and returns the fleet plus the first epoch's view.
func rebalanceScenario(t *testing.T, overrides map[int]HostOverride) (*Fleet, RebalanceView) {
	t.Helper()
	f, err := New(Config{
		Hosts:     3,
		Template:  HostTemplate{Seed: 5},
		Overrides: overrides,
		Placer:    FirstFit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []vm.Spec{
		{Name: "noisy", App: "lbm", LLCCap: 250},
		{Name: "quiet0", App: "gcc", LLCCap: 250},
	} {
		if _, err := f.Place(Request{Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	// Occupy host 0 fully so first-fit sends the next tenant to host 1.
	for _, name := range []string{"f0", "f1"} {
		if _, err := f.Place(Request{Spec: vm.Spec{Name: name, App: "bzip", LLCCap: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	if p, err := f.Place(Request{Spec: vm.Spec{Name: "quiet1", App: "gcc", LLCCap: 250}}); err != nil || p.HostID != 1 {
		t.Fatalf("quiet1 on host %d (err %v), want 1", p.HostID, err)
	}
	f.RunTicks(24)
	mon := NewFleetMonitor()
	return f, mon.Observe(f)
}

func TestFleetMonitorViewIsOrderedAndSummed(t *testing.T) {
	_, view := rebalanceScenario(t, nil)
	if len(view.VMs) != 5 {
		t.Fatalf("view has %d VMs, want 5", len(view.VMs))
	}
	names := []string{"noisy", "quiet0", "f0", "f1", "quiet1"}
	for i, want := range names {
		if view.VMs[i].Name != want {
			t.Fatalf("view order: got %q at %d, want %q", view.VMs[i].Name, i, want)
		}
	}
	if len(view.HostRates) != 3 || view.HostRates[2] != 0 {
		t.Fatalf("host rates %v", view.HostRates)
	}
	if view.HostRates[0] <= view.HostRates[1] {
		t.Fatalf("lbm host must dominate: %v", view.HostRates)
	}
}

func TestReactivePlanEvictsWorstPolluterToCoolestHost(t *testing.T) {
	f, view := rebalanceScenario(t, nil)
	plan := (&Reactive{}).Plan(f.Hosts(), view)
	if len(plan) != 1 {
		t.Fatalf("plan %v, want one migration", plan)
	}
	m := plan[0]
	if m.VMName != "noisy" || m.SrcHost != 0 || m.DstHost != 2 {
		t.Fatalf("plan %+v, want noisy host0->host2 (empty host is coolest)", m)
	}
}

func TestReactiveThresholdSuppressesCheapMigrations(t *testing.T) {
	f, view := rebalanceScenario(t, nil)
	plan := (&Reactive{Threshold: 1e12}).Plan(f.Hosts(), view)
	if len(plan) != 0 {
		t.Fatalf("an unreachable threshold still planned %v", plan)
	}
}

func TestReactivePlanSkipsWhenNoFeasibleDestination(t *testing.T) {
	f, view := rebalanceScenario(t, nil)
	// Fill every other host's vCPU slots so nothing fits anywhere.
	for _, name := range []string{"g0", "g1", "g2", "h0", "h1", "h2", "h3"} {
		if _, err := f.Place(Request{Spec: vm.Spec{Name: name, App: "bzip", LLCCap: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	if f.Host(1).FreeCPUs() != 0 || f.Host(2).FreeCPUs() != 0 {
		t.Fatalf("hosts not full: %d/%d free", f.Host(1).FreeCPUs(), f.Host(2).FreeCPUs())
	}
	if plan := (&Reactive{}).Plan(f.Hosts(), view); len(plan) != 0 {
		t.Fatalf("full fleet still planned %v", plan)
	}
}

func TestTopologyAwarePrefersBigLLCHost(t *testing.T) {
	big := machine.TableOne(5)
	big.LLC.SizeBytes *= 2
	f, view := rebalanceScenario(t, map[int]HostOverride{
		1: {Machine: big},
	})
	// Reactive would choose empty host 2; topology-aware must prefer the
	// big-LLC host 1 even though a quiet tenant already lives there.
	plan := (&TopologyAware{}).Plan(f.Hosts(), view)
	if len(plan) != 1 || plan[0].VMName != "noisy" || plan[0].DstHost != 1 {
		t.Fatalf("plan %+v, want noisy -> big-LLC host 1", plan)
	}
	if reactive := (&Reactive{}).Plan(f.Hosts(), view); len(reactive) != 1 || reactive[0].DstHost != 2 {
		t.Fatalf("reactive control arm chose %+v, want host 2", reactive)
	}
}

func TestTopologyAwareFallsBackToCoolestHost(t *testing.T) {
	f, view := rebalanceScenario(t, nil) // homogeneous: no bigger LLC exists
	plan := (&TopologyAware{}).Plan(f.Hosts(), view)
	if len(plan) != 1 || plan[0].DstHost != 2 {
		t.Fatalf("plan %+v, want reactive-style fallback to host 2", plan)
	}
}

// pingPongView builds the epoch view after "noisy" landed on dst: dst is
// now the hottest host (noisy's rate dominates), src is cooler, so a
// memoryless reactive policy would immediately bounce noisy back.
func pingPongView(noisyHost, otherHost int, hosts int) RebalanceView {
	view := RebalanceView{HostRates: make([]float64, hosts)}
	view.VMs = []VMLoad{
		{Name: "noisy", App: "lbm", HostID: noisyHost, Rate: 5000},
		{Name: "quiet", App: "gcc", HostID: otherHost, Rate: 50},
	}
	view.HostRates[noisyHost] = 5000
	view.HostRates[otherHost] = 50
	return view
}

func TestReactiveCooldownPreventsPingPong(t *testing.T) {
	f, view := rebalanceScenario(t, nil)
	r := &Reactive{}
	plan := r.Plan(f.Hosts(), view)
	if len(plan) != 1 || plan[0].VMName != "noisy" {
		t.Fatalf("epoch 1 plan %+v, want noisy migrated", plan)
	}
	dst, src := plan[0].DstHost, plan[0].SrcHost
	// Epochs 2 and 3: noisy's new host is now the hottest, and without
	// hysteresis the policy would plan noisy straight back — the
	// ping-pong. The cooldown must keep the VM where it is.
	for epoch := 2; epoch <= 1+DefaultMigrationCooldown; epoch++ {
		bounce := pingPongView(dst, src, len(f.Hosts()))
		if plan := r.Plan(f.Hosts(), bounce); len(plan) != 0 {
			t.Fatalf("epoch %d bounced a cooling-down VM: %+v", epoch, plan)
		}
	}
	// Once the cooldown expires the VM is a normal candidate again.
	if plan := r.Plan(f.Hosts(), pingPongView(dst, src, len(f.Hosts()))); len(plan) != 1 || plan[0].VMName != "noisy" {
		t.Fatalf("post-cooldown plan %+v, want noisy eligible again", plan)
	}

	// A memoryless control arm (cooldown disabled) does bounce — the
	// behaviour the hysteresis exists to kill.
	loose := &Reactive{CooldownEpochs: -1}
	if plan := loose.Plan(f.Hosts(), view); len(plan) != 1 {
		t.Fatalf("control arm epoch 1: %+v", plan)
	}
	if plan := loose.Plan(f.Hosts(), pingPongView(dst, src, len(f.Hosts()))); len(plan) != 1 || plan[0].VMName != "noisy" {
		t.Fatalf("control arm did not bounce (%+v) — the scenario no longer exhibits ping-pong and the test is vacuous", plan)
	}
}

func TestCooldownSkipsToNextWorstEligiblePolluter(t *testing.T) {
	f, view := rebalanceScenario(t, nil)
	r := &Reactive{}
	if plan := r.Plan(f.Hosts(), view); len(plan) != 1 || plan[0].VMName != "noisy" {
		t.Fatal("setup: first plan must move noisy")
	}
	// Next epoch the old host is still hottest because a second polluter
	// lives there: the plan must pick it, not the cooling-down noisy.
	view2 := RebalanceView{HostRates: make([]float64, len(f.Hosts()))}
	view2.VMs = []VMLoad{
		{Name: "noisy", App: "lbm", HostID: 2, Rate: 9000},
		{Name: "noisy2", App: "lbm", HostID: 2, Rate: 4000},
		{Name: "quiet", App: "gcc", HostID: 0, Rate: 10},
	}
	view2.HostRates[2] = 13000
	view2.HostRates[0] = 10
	plan := r.Plan(f.Hosts(), view2)
	if len(plan) != 1 || plan[0].VMName != "noisy2" {
		t.Fatalf("plan %+v, want the eligible noisy2 while noisy cools down", plan)
	}
}

func TestRebalancerByNameReturnsFreshInstances(t *testing.T) {
	a, err := RebalancerByName("reactive")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RebalancerByName("reactive")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*Reactive) == b.(*Reactive) {
		t.Fatal("RebalancerByName must not share cooldown state between replays")
	}
}

func TestRebalancerByName(t *testing.T) {
	for _, name := range []string{"", "none"} {
		rb, err := RebalancerByName(name)
		if err != nil || rb != nil {
			t.Fatalf("%q: rb %v err %v, want nil/nil", name, rb, err)
		}
	}
	for name, want := range map[string]string{"reactive": "reactive", "topo": "topo", "topology": "topo", "signature": "signature"} {
		rb, err := RebalancerByName(name)
		if err != nil || rb.Name() != want {
			t.Fatalf("%q: %v / %v", name, rb, err)
		}
	}
	if _, err := RebalancerByName("bogus"); err == nil {
		t.Fatal("bogus rebalancer name must fail")
	}
	for _, name := range RebalancerNames() {
		if rb, err := RebalancerByName(name); err != nil {
			t.Fatalf("advertised name %q does not parse: %v / %v", name, rb, err)
		}
	}
}
