// Signature-based rebalancing: instead of reacting to instantaneous
// Equation-1 threshold crossings, watch each VM's pollution-rate series
// through a streaming change-point detector (internal/detect) and plan
// migrations only on confirmed regime shifts. The detector absorbs the
// one-epoch spikes a raw threshold fires on, so the policy migrates on
// behaviour changes, not noise — and because confirmed shifts are rare,
// it can afford to plan a batch of moves per epoch instead of one.

package cluster

import (
	"encoding/json"
	"fmt"
	"sort"

	"kyoto/internal/detect"
)

// DefaultSignatureMaxMoves caps a Signature plan's batch: at most this
// many migrations per rebalance epoch. Confirmed change points arrive
// in bursts when a noisy tenant lands, and moving the whole burst in
// one epoch beats dribbling it out — but an unbounded batch could churn
// half the fleet on a pathological trace.
const DefaultSignatureMaxMoves = 4

// DefaultSignatureEpochTicks is the assumed tick length of one
// rebalance epoch for lifetime amortization, matching the replay
// engine's default rebalance cadence (arrivals.DefaultRebalanceEvery).
// Callers driving the replay at a different cadence should set
// Signature.EpochTicks to match.
const DefaultSignatureEpochTicks = 12

// DefaultAmortizeEpochs is how many rebalance epochs of expected
// remaining lifetime a one-permit VM must have before a migration is
// worth its evicted cache footprint; VMs with bigger footprints need
// proportionally longer.
const DefaultAmortizeEpochs = 2

// LifetimeEstimator predicts how much longer a VM is expected to run
// given how long it has run already. The arrivals package implements it
// from a trace's empirical lifetime distribution; the Signature
// rebalancer uses it to skip migrations that would not amortize.
type LifetimeEstimator interface {
	// ExpectedRemainingTicks returns the expected remaining lifetime, in
	// ticks, of a VM that has been running for age ticks.
	ExpectedRemainingTicks(age uint64) float64
}

// ChangePoint is one confirmed regime shift in a VM's pollution-rate
// series, as logged by the Signature rebalancer.
type ChangePoint struct {
	// Epoch is the rebalance epoch ordinal (1-based) the shift was
	// confirmed in.
	Epoch uint64 `json:"epoch"`
	// VM and App identify the series.
	VM  string `json:"vm"`
	App string `json:"app"`
	// Rate is the Equation-1 rate observed in the confirming epoch.
	Rate float64 `json:"rate"`
	// Direction is "up" or "down".
	Direction string `json:"direction"`
}

// Signature is the change-detection rebalancer: one detect.Detector per
// VM, fed that VM's per-epoch Equation-1 rate. A confirmed upward
// change point on any VM's series is evidence its *host's* regime
// shifted — the victim-side signal of the signature-based detection
// literature: when a polluter lands, it is the neighbours' miss rates
// that jump, since the polluter itself has polluted from birth and its
// own series never shifts. The policy therefore fires only on confirmed
// change points, and responds on each shifted host by evicting that
// host's worst polluter above Threshold. Candidate moves are scored
// with migration-cost awareness — a VM whose expected remaining
// lifetime will not amortize its evicted cache footprint is left alone
// — and emitted as a batched plan of up to MaxMoves migrations toward
// the coolest feasible hosts.
//
// Like the other built-ins, a Signature value carries per-replay state
// (detectors, VM ages, cooldowns, the change-point log): use one
// instance per replay and do not share it across goroutines.
type Signature struct {
	// Threshold is the minimum Equation-1 rate a confirmed change point
	// must reach before it is acted on (default
	// DefaultRebalanceThreshold): a VM that shifted regimes but still
	// pollutes lightly is not worth moving.
	Threshold float64
	// CooldownEpochs is the per-VM hysteresis, as in Reactive
	// (0 = DefaultMigrationCooldown, negative disables).
	CooldownEpochs int
	// Detector configures the per-VM change-point detectors (zero value
	// = detect defaults). Set knobs before the first Plan; later changes
	// do not affect detectors already created.
	Detector detect.Config
	// MaxMoves caps the batch size of one plan
	// (0 = DefaultSignatureMaxMoves, negative removes the cap).
	MaxMoves int
	// EpochTicks converts epoch-counted VM ages to ticks for the
	// lifetime amortization check (0 = DefaultSignatureEpochTicks; set
	// to the replay's rebalance cadence when it differs).
	EpochTicks uint64
	// AmortizeEpochs is the expected-remaining-lifetime floor, in
	// epochs per permit of footprint (0 = DefaultAmortizeEpochs,
	// negative disables the check).
	AmortizeEpochs float64
	// Lifetimes estimates remaining VM lifetimes for the amortization
	// check; nil disables the check.
	Lifetimes LifetimeEstimator

	cd     migrationCooldown
	det    map[string]*detect.Detector
	ages   map[string]uint64
	log    []ChangePoint
	detErr error
}

// Name implements Rebalancer.
func (*Signature) Name() string { return "signature" }

// Validate reports whether the Detector knobs are usable. Plan falls
// back to the detect defaults on a bad config (it cannot return an
// error); callers that accept knobs from users should Validate first.
func (g *Signature) Validate() error {
	_, err := detect.New(g.Detector)
	return err
}

// ChangePoints returns a copy of every confirmed change point so far,
// in confirmation order (epoch, then view order within the epoch).
func (g *Signature) ChangePoints() []ChangePoint {
	return append([]ChangePoint(nil), g.log...)
}

// newDetector builds one per-VM detector, falling back to the defaults
// when the configured knobs are out of domain (recorded for Validate).
func (g *Signature) newDetector() *detect.Detector {
	d, err := detect.New(g.Detector)
	if err != nil {
		g.detErr = err
		d, _ = detect.New(detect.Config{})
	}
	return d
}

// Plan implements Rebalancer: step every VM's detector with this
// epoch's rate (in view order, so plans are deterministic), log the
// confirmed change points, mark the hosts with an upward change point
// as regime-shifted, then plan a batch of evictions — each shifted
// host's worst polluter that clears the rate threshold, the cooldown
// and the lifetime-amortization check. Destinations are chosen coolest
// first with capacity accounting across the whole batch, so applying
// the plan in order through Fleet.Migrate stays feasible.
func (g *Signature) Plan(hosts []*Host, view RebalanceView) []Migration {
	thr, eligible := g.cd.beginEpoch(view, g.Threshold, g.CooldownEpochs)
	if g.det == nil {
		g.det = make(map[string]*detect.Detector)
		g.ages = make(map[string]uint64)
	}

	// Step the detectors; an upward change point on any VM marks its
	// host as shifted this epoch.
	shifted := make([]bool, len(view.HostRates))
	any := false
	live := make(map[string]bool, len(view.VMs))
	for i := range view.VMs {
		v := &view.VMs[i]
		live[v.Name] = true
		g.ages[v.Name]++
		d := g.det[v.Name]
		if d == nil {
			d = g.newDetector()
			g.det[v.Name] = d
		}
		dir, err := d.Step(v.Rate)
		if err != nil || dir == detect.None {
			continue
		}
		g.log = append(g.log, ChangePoint{
			Epoch: g.cd.epoch, VM: v.Name, App: v.App, Rate: v.Rate, Direction: dir.String(),
		})
		if dir == detect.Up && v.HostID >= 0 && v.HostID < len(shifted) {
			shifted[v.HostID] = true
			any = true
		}
	}
	for name := range g.det {
		if !live[name] {
			delete(g.det, name)
			delete(g.ages, name)
		}
	}
	if !any {
		return nil
	}

	// Order the shifted hosts hottest first (ties toward the lower ID),
	// so a capped batch spends its moves where the contention is.
	var order []int
	for id, s := range shifted {
		if s {
			order = append(order, id)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		if view.HostRates[order[i]] != view.HostRates[order[j]] {
			return view.HostRates[order[i]] > view.HostRates[order[j]]
		}
		return order[i] < order[j]
	})

	maxMoves := g.MaxMoves
	if maxMoves == 0 {
		maxMoves = DefaultSignatureMaxMoves
	}

	// Batched destination selection: plan against running copies of the
	// per-host heat and free capacity, so each move in the batch sees
	// the fleet as the previous moves will leave it.
	rates := append([]float64(nil), view.HostRates...)
	free := make([]plannedFree, len(hosts))
	for i, h := range hosts {
		free[i] = plannedFree{
			cpus: h.FreeCPUs(), mem: h.FreeMemMB(), llc: h.FreeLLC(), enforced: h.kyoto != nil,
		}
	}
	var moves []Migration
	for _, src := range order {
		if maxMoves >= 0 && len(moves) >= maxMoves {
			break
		}
		// The eviction candidate is the shifted host's worst eligible
		// polluter — usually the newcomer whose arrival the victims'
		// detectors just confirmed. Ties break toward the earliest
		// placement, keeping plans deterministic.
		var v *VMLoad
		for i := range view.VMs {
			c := &view.VMs[i]
			if c.HostID != src || c.Rate < thr || !eligible(c.Name) || !g.amortizes(c) {
				continue
			}
			if v == nil || c.Rate > v.Rate {
				v = c
			}
		}
		if v == nil {
			continue
		}
		dst := -1
		for _, h := range hosts {
			if h.ID == src || !free[h.ID].fits(v.Request) {
				continue
			}
			if dst == -1 || rates[h.ID] < rates[dst] {
				dst = h.ID
			}
		}
		// Only move toward strictly cooler hosts, as Reactive does.
		if dst == -1 || rates[dst] >= rates[src] {
			continue
		}
		g.cd.moved(v.Name)
		moves = append(moves, Migration{
			VMName: v.Name, SrcHost: src, DstHost: dst,
			Reason: fmt.Sprintf("change point on host %d, evicting eq1 %.0f to coolest fit %d", src, v.Rate, dst),
		})
		rates[src] -= v.Rate
		rates[dst] += v.Rate
		free[src].release(v.Request)
		free[dst].book(v.Request)
	}
	return moves
}

// amortizes reports whether migrating the VM is expected to pay for
// itself: its expected remaining lifetime must cover AmortizeEpochs
// rebalance epochs per permit of booked cache footprint. With no
// estimator the check is disabled.
func (g *Signature) amortizes(v *VMLoad) bool {
	if g.Lifetimes == nil {
		return true
	}
	amortize := g.AmortizeEpochs
	if amortize == 0 {
		amortize = DefaultAmortizeEpochs
	}
	if amortize < 0 {
		return true
	}
	epochTicks := g.EpochTicks
	if epochTicks == 0 {
		epochTicks = DefaultSignatureEpochTicks
	}
	footprint := v.Request.LLCCap / DefaultLLCCapPerCore
	if footprint < 1 {
		footprint = 1 // even a capless VM costs at least one permit of warm cache
	}
	remaining := g.Lifetimes.ExpectedRemainingTicks(g.ages[v.Name] * epochTicks)
	return remaining >= amortize*float64(epochTicks)*footprint
}

// plannedFree is one host's uncommitted capacity as a batch plan books
// moves against it — the planning-time analogue of canHost.
type plannedFree struct {
	cpus, mem int
	llc       float64
	enforced  bool
}

func (p *plannedFree) fits(req Request) bool {
	if req.CPUs() > p.cpus || req.MemMB() > p.mem {
		return false
	}
	return !p.enforced || req.LLCCap <= p.llc
}

func (p *plannedFree) book(req Request) {
	p.cpus -= req.CPUs()
	p.mem -= req.MemMB()
	p.llc -= req.LLCCap
}

func (p *plannedFree) release(req Request) {
	p.cpus += req.CPUs()
	p.mem += req.MemMB()
	p.llc += req.LLCCap
}

// signatureVMState is one VM's detector state and age, name-sorted in
// the serialized form.
type signatureVMState struct {
	Name     string       `json:"name"`
	Age      uint64       `json:"age"`
	Detector detect.State `json:"detector"`
}

// signatureState is the serialized form of a Signature's per-replay
// state: cooldowns, per-VM detectors and ages, and the change-point
// log.
type signatureState struct {
	Cooldown json.RawMessage    `json:"cooldown"`
	VMs      []signatureVMState `json:"vms,omitempty"`
	Log      []ChangePoint      `json:"log,omitempty"`
}

// CaptureRebalanceState implements StatefulRebalancer. The encoding is
// canonical (VMs name-sorted), so identical states serialize to
// identical bytes whatever map iteration order produced them.
func (g *Signature) CaptureRebalanceState() (json.RawMessage, error) {
	cd, err := g.cd.capture()
	if err != nil {
		return nil, err
	}
	st := signatureState{Cooldown: cd, Log: append([]ChangePoint(nil), g.log...)}
	for name, d := range g.det {
		st.VMs = append(st.VMs, signatureVMState{Name: name, Age: g.ages[name], Detector: d.State()})
	}
	sort.Slice(st.VMs, func(i, j int) bool { return st.VMs[i].Name < st.VMs[j].Name })
	return json.Marshal(st)
}

// RestoreRebalanceState implements StatefulRebalancer.
func (g *Signature) RestoreRebalanceState(data json.RawMessage) error {
	var st signatureState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("cluster: signature state: %w", err)
	}
	if err := g.cd.restore(st.Cooldown); err != nil {
		return err
	}
	g.det = make(map[string]*detect.Detector, len(st.VMs))
	g.ages = make(map[string]uint64, len(st.VMs))
	for _, vs := range st.VMs {
		d := g.newDetector()
		if err := d.SetState(vs.Detector); err != nil {
			return fmt.Errorf("cluster: signature state for %q: %w", vs.Name, err)
		}
		g.det[vs.Name] = d
		g.ages[vs.Name] = vs.Age
	}
	g.log = append([]ChangePoint(nil), st.Log...)
	return nil
}
