package cluster_test

// Churn golden determinism guard, alongside the fixed-population fleet
// golden: a seeded synthetic arrivals trace replayed through a Kyoto
// fleet must produce the committed fingerprint — run twice, serial and
// parallel. This pins the whole lifecycle path (Place, Remove, cache
// eviction on departure, monotonic ID assignment) bit for bit; it lives
// in an external test package because arrivals imports cluster.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
)

var updateChurnGolden = flag.Bool("update-churn", false, "rewrite testdata/golden_churn.json with the observed fingerprint")

// churnTrace is the pinned scenario: a dozen VMs with heavy-tailed
// lifetimes churning over a 3-host Kyoto fleet — small enough to stay
// fast under -race, busy enough that placements, departures and permit
// pressure all occur.
func churnTrace() arrivals.Trace {
	return arrivals.Synthesize(arrivals.SynthConfig{
		Seed:         7,
		VMs:          12,
		Horizon:      45,
		MeanLifetime: 14,
	})
}

func churnFingerprint(t *testing.T, workers int) string {
	t.Helper()
	f, err := cluster.New(cluster.Config{
		Hosts:    3,
		Template: cluster.HostTemplate{Seed: 42, EnableKyoto: true},
		Placer:   cluster.Admission{},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := arrivals.Replay(f, churnTrace(), arrivals.Options{DrainTicks: 6})
	if err != nil {
		t.Fatal(err)
	}
	return res.Fingerprint()
}

func TestGoldenChurnSerialParallel(t *testing.T) {
	got := churnFingerprint(t, 1)
	if again := churnFingerprint(t, 1); again != got {
		t.Fatalf("serial churn replay not reproducible: %s vs %s", again, got)
	}
	if par := churnFingerprint(t, 0); par != got {
		t.Fatalf("parallel churn fingerprint %s != serial %s", par, got)
	}

	path := filepath.Join("testdata", "golden_churn.json")
	if *updateChurnGolden {
		data, err := json.MarshalIndent(map[string]string{"kyoto-churn-3h12vm": got}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update-churn to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got != want["kyoto-churn-3h12vm"] {
		t.Fatalf("churn fingerprint %s, want %s — the lifecycle path is no longer bit-identical to the committed baseline",
			got, want["kyoto-churn-3h12vm"])
	}
}
