package cluster_test

// Churn golden determinism guards, alongside the fixed-population fleet
// golden: seeded synthetic arrivals traces replayed through Kyoto fleets
// must produce the committed fingerprints — each run twice, serial and
// parallel. Three scenarios are pinned: the plain lifecycle path (Place,
// Remove, cache eviction on departure, monotonic ID assignment), and two
// migration scenarios exercising the full reactive stack (live migration
// with downtime, pending queue, owner-tag recycling) — one reactive on a
// homogeneous fleet, one topology-aware on a heterogeneous big-LLC
// fleet. They live in an external test package because arrivals imports
// cluster.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
	"kyoto/internal/machine"
)

var updateChurnGolden = flag.Bool("update-churn", false, "rewrite testdata/golden_churn.json with the observed fingerprints")

// churnTrace is the pinned scenario: a dozen VMs with heavy-tailed
// lifetimes churning over a 3-host Kyoto fleet — small enough to stay
// fast under -race, busy enough that placements, departures and permit
// pressure all occur.
func churnTrace() arrivals.Trace {
	return arrivals.Synthesize(arrivals.SynthConfig{
		Seed:         7,
		VMs:          12,
		Horizon:      45,
		MeanLifetime: 14,
	})
}

// churnFleet builds the golden scenarios' 3-host Kyoto fleet.
func churnFleet(t *testing.T, workers int, overrides map[int]cluster.HostOverride) *cluster.Fleet {
	t.Helper()
	f, err := cluster.New(cluster.Config{
		Hosts:     3,
		Template:  cluster.HostTemplate{Seed: 42, EnableKyoto: true},
		Overrides: overrides,
		Placer:    cluster.Admission{},
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// bigLLCOverride doubles host 2's LLC and permit budget, the
// heterogeneous fleet the topology-aware golden steers polluters to.
func bigLLCOverride() map[int]cluster.HostOverride {
	m := machine.TableOne(42)
	m.LLC.SizeBytes *= 2
	return map[int]cluster.HostOverride{2: {Machine: m, LLCBudget: 2000}}
}

// churnScenarios maps each golden key to its replay.
var churnScenarios = map[string]func(t *testing.T, workers int) string{
	// The original lifecycle golden: its fingerprint predates owner-tag
	// recycling, migration and the pending queue, and pins all three as
	// arithmetic-neutral for non-migrating replays.
	"kyoto-churn-3h12vm": func(t *testing.T, workers int) string {
		f := churnFleet(t, workers, nil)
		res, err := arrivals.Replay(f, churnTrace(), arrivals.Options{DrainTicks: 6})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	},
	"kyoto-churn-migrate-reactive": func(t *testing.T, workers int) string {
		f := churnFleet(t, workers, nil)
		res, err := arrivals.Replay(f, churnTrace(), arrivals.Options{
			DrainTicks:        6,
			Pending:           arrivals.PendingFIFO,
			Rebalancer:        &cluster.Reactive{},
			RebalanceEvery:    9,
			MigrationDowntime: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	},
	"kyoto-churn-migrate-topo": func(t *testing.T, workers int) string {
		f := churnFleet(t, workers, bigLLCOverride())
		res, err := arrivals.Replay(f, churnTrace(), arrivals.Options{
			DrainTicks:        6,
			Pending:           arrivals.PendingDeadline,
			MaxWait:           20,
			Rebalancer:        &cluster.TopologyAware{},
			RebalanceEvery:    9,
			MigrationDowntime: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Fingerprint()
	},
}

func TestGoldenChurnSerialParallel(t *testing.T) {
	got := make(map[string]string, len(churnScenarios))
	for key, run := range churnScenarios {
		serial := run(t, 1)
		if again := run(t, 1); again != serial {
			t.Fatalf("%s: serial churn replay not reproducible: %s vs %s", key, again, serial)
		}
		if par := run(t, 0); par != serial {
			t.Fatalf("%s: parallel churn fingerprint %s != serial %s", key, par, serial)
		}
		got[key] = serial
	}

	path := filepath.Join("testdata", "golden_churn.json")
	if *updateChurnGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update-churn to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, fp := range got {
		if fp != want[key] {
			t.Fatalf("%s: churn fingerprint %s, want %s — the lifecycle/migration path is no longer bit-identical to the committed baseline",
				key, fp, want[key])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("golden file pins %d scenarios, test runs %d — regenerate with -update-churn", len(want), len(got))
	}
}
