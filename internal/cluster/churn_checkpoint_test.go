package cluster_test

// Replay checkpoint differentials over the committed churn goldens: for
// each of the three pinned scenarios (plain lifecycle, reactive
// migration, topology-aware migration on the heterogeneous fleet), pause
// the replay at several mid-run ticks, serialize the checkpoint through
// JSON, resume it onto a freshly built fleet, and finish — the resumed
// Result must carry the exact committed golden fingerprint. The
// checkpoint crosses a real encode/decode so the test covers the wire
// format, not just the in-memory copy.

import (
	"encoding/json"
	"testing"

	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
	"kyoto/internal/detect"
)

// churnOptions rebuilds each golden scenario's (fleet, options) pair.
// Options cannot be shared between the straight-through and resumed run:
// a Rebalancer carries per-replay cooldown state, so every run gets a
// fresh one.
var churnOptions = map[string]struct {
	overrides func() map[int]cluster.HostOverride
	opt       func() arrivals.Options
}{
	"kyoto-churn-3h12vm": {
		overrides: func() map[int]cluster.HostOverride { return nil },
		opt:       func() arrivals.Options { return arrivals.Options{DrainTicks: 6} },
	},
	"kyoto-churn-migrate-reactive": {
		overrides: func() map[int]cluster.HostOverride { return nil },
		opt: func() arrivals.Options {
			return arrivals.Options{
				DrainTicks:        6,
				Pending:           arrivals.PendingFIFO,
				Rebalancer:        &cluster.Reactive{},
				RebalanceEvery:    9,
				MigrationDowntime: 2,
			}
		},
	},
	// A detector-armed rebalancer: the checkpoint must carry every
	// per-VM CUSUM detector (EWMA baselines mid-convergence, partial
	// sums), the VM ages and the change-point log across the wire and
	// resume bit-identically. The twitchy detector knobs make the
	// detectors fire during the pinned pause window, so the resumed run
	// crosses live detection state, not just empty maps.
	"kyoto-churn-migrate-signature": {
		overrides: func() map[int]cluster.HostOverride { return nil },
		opt: func() arrivals.Options {
			return arrivals.Options{
				DrainTicks:        6,
				Pending:           arrivals.PendingFIFO,
				Rebalancer:        &cluster.Signature{Detector: detect.Config{Alpha: 0.2, Drift: 0.1, Threshold: 1, Warmup: 2}},
				RebalanceEvery:    4,
				MigrationDowntime: 2,
			}
		},
	},
	"kyoto-churn-migrate-topo": {
		overrides: bigLLCOverride,
		opt: func() arrivals.Options {
			return arrivals.Options{
				DrainTicks:        6,
				Pending:           arrivals.PendingDeadline,
				MaxWait:           20,
				Rebalancer:        &cluster.TopologyAware{},
				RebalanceEvery:    9,
				MigrationDowntime: 2,
			}
		},
	},
}

func TestChurnCheckpointResumeBitIdentity(t *testing.T) {
	for key, sc := range churnOptions {
		t.Run(key, func(t *testing.T) {
			// Straight-through reference.
			ref, err := arrivals.Replay(churnFleet(t, 1, sc.overrides()), churnTrace(), sc.opt())
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Fingerprint()

			for _, pauseTick := range []uint64{0, 11, 23, 38} {
				// Drive a replay to the pause point and checkpoint it.
				p, err := arrivals.NewReplayer(churnFleet(t, 1, sc.overrides()), churnTrace(), sc.opt())
				if err != nil {
					t.Fatalf("pause %d: %v", pauseTick, err)
				}
				if _, err := p.StepUntil(pauseTick); err != nil {
					t.Fatalf("pause %d: step: %v", pauseTick, err)
				}
				st, err := p.CaptureState()
				if err != nil {
					t.Fatalf("pause %d: capture: %v", pauseTick, err)
				}

				// Cross the wire: the resumed run sees only JSON bytes.
				blob, err := json.Marshal(st)
				if err != nil {
					t.Fatalf("pause %d: marshal: %v", pauseTick, err)
				}
				var decoded arrivals.ReplayState
				if err := json.Unmarshal(blob, &decoded); err != nil {
					t.Fatalf("pause %d: unmarshal: %v", pauseTick, err)
				}

				// The checkpointed replay itself keeps running, unperturbed.
				res, err := p.Finish()
				if err != nil {
					t.Fatalf("pause %d: finish original: %v", pauseTick, err)
				}
				if got := res.Fingerprint(); got != want {
					t.Fatalf("pause %d: checkpointing perturbed the replay: %s vs %s", pauseTick, got, want)
				}

				// Resume onto a fresh fleet with fresh options and finish.
				r, err := arrivals.ResumeReplayer(churnFleet(t, 1, sc.overrides()), churnTrace(), sc.opt(), &decoded)
				if err != nil {
					t.Fatalf("pause %d: resume: %v", pauseTick, err)
				}
				rres, err := r.Finish()
				if err != nil {
					t.Fatalf("pause %d: finish resumed: %v", pauseTick, err)
				}
				if got := rres.Fingerprint(); got != want {
					t.Fatalf("pause %d: resumed replay diverged from golden: %s vs %s", pauseTick, got, want)
				}
				if rres.CPUUtilization != res.CPUUtilization {
					t.Fatalf("pause %d: resumed utilization %v != %v", pauseTick, rres.CPUUtilization, res.CPUUtilization)
				}
			}
		})
	}
}

// TestResumeReplayerValidation pins the clean-error contract: a resumed
// replay must refuse a wrong-length trace, a missing fleet snapshot, and
// options that disagree with the checkpoint about rebalancing.
func TestResumeReplayerValidation(t *testing.T) {
	sc := churnOptions["kyoto-churn-migrate-reactive"]
	p, err := arrivals.NewReplayer(churnFleet(t, 1, nil), churnTrace(), sc.opt())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.StepUntil(11); err != nil {
		t.Fatal(err)
	}
	st, err := p.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	short := churnTrace()
	short.Events = short.Events[:len(short.Events)-1]
	if _, err := arrivals.ResumeReplayer(churnFleet(t, 1, nil), short, sc.opt(), st); err == nil {
		t.Fatal("resume with a shorter trace succeeded")
	}

	plain := arrivals.Options{DrainTicks: 6}
	if _, err := arrivals.ResumeReplayer(churnFleet(t, 1, nil), churnTrace(), plain, st); err == nil {
		t.Fatal("resume without the checkpointed rebalancer succeeded")
	}

	noFleet := *st
	noFleet.Fleet = nil
	if _, err := arrivals.ResumeReplayer(churnFleet(t, 1, nil), churnTrace(), sc.opt(), &noFleet); err == nil {
		t.Fatal("resume without a fleet snapshot succeeded")
	}
}
