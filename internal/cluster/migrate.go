// Live migration: moving a VM between hosts of a running fleet, paying the
// costs a real migration pays — the cache footprint built up on the source
// is lost (hv releases every line on RemoveVM), the destination starts
// cold, and an optional blackout window models the stop-and-copy downtime.
// The rebalancing policies in rebalancer.go decide *which* VM moves where;
// Fleet.Migrate is the mechanism.

package cluster

import "fmt"

// Migrate moves the named VM to dstHost, preserving its lifetime counters
// and punishment count across the move: the domain is torn down on its
// current host (evicting its cache footprint — the migration's warm-state
// cost) and re-instantiated on the destination with the same request, its
// accumulated counters carried over (vm.VM.Carried), and its workload
// profile restarting deterministically from the destination host's seed.
// A positive downtime suspends the migrated VM for that many ticks on the
// destination, modelling the stop-and-copy blackout.
//
// Booked vCPUs, memory and llc_cap move with the VM. The destination must
// have capacity headroom; on a Kyoto-enforcing host the llc_cap permit
// must fit too, so migration cannot oversubscribe what admission enforced
// (the error wraps ErrUnplaceable — test with errors.Is). Migrating a VM
// to the host it already occupies is a no-op returning the existing
// placement: no flush, no downtime, no cost. Unknown VMs and out-of-range
// hosts are errors that leave the fleet untouched.
func (f *Fleet) Migrate(name string, dstHost int, downtime int) (Placement, error) {
	if dstHost < 0 || dstHost >= len(f.hosts) {
		return Placement{}, fmt.Errorf("cluster: migrate %q: no such host %d (fleet has hosts 0..%d)", name, dstHost, len(f.hosts)-1)
	}
	src, idx := f.findPlacement(name)
	if src == nil {
		return Placement{}, fmt.Errorf("cluster: migrate %q: no such VM in the fleet", name)
	}
	p := src.vms[idx]
	if src.ID == dstHost {
		return p, nil
	}
	dst := f.hosts[dstHost]
	if !dst.Fits(p.Request) {
		return Placement{}, fmt.Errorf("cluster: migrate %q to host %d: %w (need %d vCPU, %d MB; host has %d vCPU, %d MB free)",
			name, dstHost, ErrUnplaceable, p.Request.CPUs(), p.Request.MemMB(), dst.FreeCPUs(), dst.FreeMemMB())
	}
	if dst.kyoto != nil && p.Request.LLCCap > dst.FreeLLC() {
		return Placement{}, fmt.Errorf("cluster: migrate %q to host %d: %w (llc_cap %.0f exceeds the host's free permit %.0f)",
			name, dstHost, ErrUnplaceable, p.Request.LLCCap, dst.FreeLLC())
	}

	// Both endpoints are about to be read and mutated (the source's
	// lifetime counters are carried over; the destination's world clock
	// anchors the suspend window), so both must reach the fleet clock.
	f.seek(src)
	f.seek(dst)

	// Instantiate on the destination first so a spec the destination's
	// machine cannot host (home node or pin out of range on a smaller
	// override host) fails cleanly with the source untouched.
	carried := p.VM.Counters()
	punishments := p.VM.Punishments
	domain, err := dst.World.AddVM(p.Request.Spec)
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: migrate %q to host %d: %w", name, dstHost, err)
	}
	if err := src.World.RemoveVM(name); err != nil {
		// Unreachable with the built-in schedulers (all implement
		// sched.Remover and the VM demonstrably exists); unwind the
		// destination copy so the fleet is unchanged either way.
		_ = dst.World.RemoveVM(name)
		return Placement{}, fmt.Errorf("cluster: migrate %q: source host %d: %w", name, src.ID, err)
	}
	domain.Carried = carried
	domain.Punishments = punishments

	src.BookedCPUs -= p.Request.CPUs()
	src.BookedMemMB -= p.Request.MemMB()
	src.BookedLLC -= p.Request.LLCCap
	dst.BookedCPUs += p.Request.CPUs()
	dst.BookedMemMB += p.Request.MemMB()
	dst.BookedLLC += p.Request.LLCCap

	moved := Placement{HostID: dstHost, VM: domain, Request: p.Request}
	src.vms = append(src.vms[:idx], src.vms[idx+1:]...)
	dst.vms = append(dst.vms, moved)
	for i, fp := range f.placements {
		if fp.VM == p.VM {
			f.placements[i] = moved
			break
		}
	}
	dst.World.SuspendVM(domain, downtime)
	return moved, nil
}

// findPlacement locates the named VM, returning its host and index within
// the host's placement list, or (nil, -1).
func (f *Fleet) findPlacement(name string) (*Host, int) {
	for _, h := range f.hosts {
		for i, p := range h.vms {
			if p.VM.Name == name {
				return h, i
			}
		}
	}
	return nil, -1
}
