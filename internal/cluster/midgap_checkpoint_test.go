package cluster_test

// Checkpoint capture in the middle of a lazy-clock gap: under the
// event-horizon engine host worlds trail the fleet clock until an event
// seeks them, so a snapshot request can arrive while hosts sit at
// wildly different ticks. CaptureState must barrier the fleet first
// (RestoreState rejects misaligned clocks outright), and a fleet
// restored from such a mid-gap capture must evolve bit-identically to
// the original from then on.

import (
	"encoding/json"
	"testing"

	"kyoto/internal/cluster"
	"kyoto/internal/vm"
)

func TestCaptureStateMidGapBetweenHostClocks(t *testing.T) {
	build := func() *cluster.Fleet {
		t.Helper()
		f, err := cluster.New(cluster.Config{
			Hosts:    3,
			Template: cluster.HostTemplate{Seed: 21, EnableKyoto: true},
			Placer:   cluster.Admission{},
			Workers:  1, // no drainers: host lag persists until an event seeks
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	place := func(f *cluster.Fleet, name string) {
		t.Helper()
		if _, err := f.Place(cluster.Request{Spec: vm.Spec{Name: name, App: "gcc", LLCCap: 100}}); err != nil {
			t.Fatal(err)
		}
	}
	capture := func(f *cluster.Fleet) []byte {
		t.Helper()
		st, err := f.CaptureState()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	// Open a real gap: advance the fleet clock 40 ticks with no events,
	// then place one VM — only its chosen host seeks to tick 40, the
	// others stay where they were.
	f := build()
	place(f, "v0")
	f.SkipTicks(40)
	if f.Clock() != 40 {
		t.Fatalf("fleet clock %d after SkipTicks(40), want 40", f.Clock())
	}
	place(f, "v1")
	lagged := 0
	for i := 0; i < f.Size(); i++ {
		if f.HostLag(i) > 0 {
			lagged++
		}
	}
	if lagged == 0 {
		t.Fatal("no host lags the fleet clock — the capture would not cross a gap")
	}

	// Capture mid-gap. The snapshot must hold every host at one common
	// tick (CaptureState barriers before serializing).
	blob := capture(f)
	var st cluster.FleetState
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	for i, hs := range st.Hosts {
		if hs.World.Now != st.Hosts[0].World.Now {
			t.Fatalf("host %d captured at tick %d, host 0 at %d — capture must barrier", i, hs.World.Now, st.Hosts[0].World.Now)
		}
	}
	for i := 0; i < f.Size(); i++ {
		if lag := f.HostLag(i); lag != 0 {
			t.Fatalf("host %d still lags %d ticks after capture", i, lag)
		}
	}

	// Restore the wire bytes onto a fresh fleet and drive both fleets
	// through the same post-checkpoint schedule, ending with another
	// mid-gap capture. Every byte of the final states must match.
	r := build()
	if err := r.RestoreState(&st); err != nil {
		t.Fatal(err)
	}
	for _, g := range []*cluster.Fleet{f, r} {
		g.SkipTicks(25)
		place(g, "v2")
		g.SkipTicks(7)
	}
	if got, want := capture(r), capture(f); string(got) != string(want) {
		t.Fatalf("restored fleet diverged after the mid-gap checkpoint:\n got %s\nwant %s", got, want)
	}
}
