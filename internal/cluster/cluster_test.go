package cluster

import (
	"fmt"
	"testing"

	"kyoto/internal/vm"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Hosts: 0}); err == nil {
		t.Fatal("zero hosts must fail")
	}
	f, err := New(Config{Hosts: 3, Template: HostTemplate{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 || len(f.Hosts()) != 3 {
		t.Fatalf("fleet size %d", f.Size())
	}
	if f.Placer().Name() != "first-fit" {
		t.Fatalf("default placer %q", f.Placer().Name())
	}
	for i, h := range f.Hosts() {
		if h.ID != i {
			t.Fatalf("host %d has ID %d", i, h.ID)
		}
	}
}

func TestHostsAreIndependentlySeeded(t *testing.T) {
	f, err := New(Config{Hosts: 2, Template: HostTemplate{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range f.Hosts() {
		if _, err := h.World.AddVM(vm.Spec{Name: "v", App: "gcc"}); err != nil {
			t.Fatal(err)
		}
	}
	f.RunTicksSerial(20)
	c0 := f.Host(0).World.FindVM("v").Counters()
	c1 := f.Host(1).World.FindVM("v").Counters()
	if c0 == c1 {
		t.Fatal("distinct hosts must not replay the identical workload stream")
	}
}

func TestKyotoTemplateEnforcesPermits(t *testing.T) {
	f, err := New(Config{
		Hosts:    1,
		Template: HostTemplate{Seed: 1, EnableKyoto: true},
		Placer:   Admission{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Host(0).Kyoto() == nil {
		t.Fatal("kyoto ledger missing")
	}
	p, err := f.Place(Request{Spec: vm.Spec{Name: "dis", App: "lbm", Pins: []int{0}, LLCCap: 100}})
	if err != nil {
		t.Fatal(err)
	}
	f.RunTicks(30)
	if p.VM.Punishments == 0 {
		t.Fatal("over-permit polluter must be punished on its host")
	}
}

// fleetScenario builds a fleet of the given size, places one sensitive and
// one disruptive VM per host, and returns it.
func fleetScenario(t testing.TB, hosts, workers int) *Fleet {
	t.Helper()
	f, err := New(Config{
		Hosts:    hosts,
		Template: HostTemplate{Seed: 42, EnableKyoto: true},
		Placer:   FirstFit{},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"gcc", "lbm", "omnetpp", "blockie", "soplex", "mcf"}
	for i := 0; i < hosts; i++ {
		for j := 0; j < 2; j++ {
			app := apps[(2*i+j)%len(apps)]
			_, err := f.Place(Request{Spec: vm.Spec{
				Name:   fmt.Sprintf("h%d-%s%d", i, app, j),
				App:    app,
				Pins:   []int{j},
				LLCCap: 250,
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

// TestFleetParallelMatchesSerial is the determinism lock for the worker
// pool: a >=16-host fleet driven concurrently (run it under -race) must
// produce per-host results bit-identical to serial execution.
func TestFleetParallelMatchesSerial(t *testing.T) {
	const hosts = 16
	serial := fleetScenario(t, hosts, 1)
	parallel := fleetScenario(t, hosts, 8)

	serial.RunTicksSerial(30)
	parallel.RunTicks(30)

	sSnap := serial.SnapshotVMs()
	pSnap := parallel.SnapshotVMs()
	for i := 0; i < hosts; i++ {
		if len(sSnap[i]) != len(pSnap[i]) {
			t.Fatalf("host %d: VM count diverged", i)
		}
		for name, sc := range sSnap[i] {
			if pc, ok := pSnap[i][name]; !ok || pc != sc {
				t.Errorf("host %d VM %s: parallel counters diverged from serial\nserial:   %+v\nparallel: %+v",
					i, name, sc, pc)
			}
		}
		sw, pw := serial.Host(i).World, parallel.Host(i).World
		if sw.Now() != pw.Now() {
			t.Errorf("host %d clocks diverged: %d vs %d", i, sw.Now(), pw.Now())
		}
		for _, p := range serial.Host(i).Placements() {
			pv := parallel.Host(i).World.FindVM(p.VM.Name)
			if pv == nil || pv.Punishments != p.VM.Punishments {
				t.Errorf("host %d VM %s: punishments diverged", i, p.VM.Name)
			}
		}
	}
}

func TestRunTicksWorkerCapFallsBackToSerial(t *testing.T) {
	f := fleetScenario(t, 2, 1)
	f.RunTicks(5) // workers <= 1 takes the serial path
	for _, h := range f.Hosts() {
		if h.World.Now() != 5 {
			t.Fatalf("host %d ran %d ticks", h.ID, h.World.Now())
		}
	}
}
