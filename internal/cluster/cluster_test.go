package cluster

import (
	"fmt"
	"testing"

	"kyoto/internal/vm"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Hosts: 0}); err == nil {
		t.Fatal("zero hosts must fail")
	}
	f, err := New(Config{Hosts: 3, Template: HostTemplate{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 || len(f.Hosts()) != 3 {
		t.Fatalf("fleet size %d", f.Size())
	}
	if f.Placer().Name() != "first-fit" {
		t.Fatalf("default placer %q", f.Placer().Name())
	}
	for i, h := range f.Hosts() {
		if h.ID != i {
			t.Fatalf("host %d has ID %d", i, h.ID)
		}
	}
}

func TestHostsAreIndependentlySeeded(t *testing.T) {
	f, err := New(Config{Hosts: 2, Template: HostTemplate{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range f.Hosts() {
		if _, err := h.World.AddVM(vm.Spec{Name: "v", App: "gcc"}); err != nil {
			t.Fatal(err)
		}
	}
	f.RunTicksSerial(20)
	c0 := f.Host(0).World.FindVM("v").Counters()
	c1 := f.Host(1).World.FindVM("v").Counters()
	if c0 == c1 {
		t.Fatal("distinct hosts must not replay the identical workload stream")
	}
}

func TestKyotoTemplateEnforcesPermits(t *testing.T) {
	f, err := New(Config{
		Hosts:    1,
		Template: HostTemplate{Seed: 1, EnableKyoto: true},
		Placer:   Admission{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Host(0).Kyoto() == nil {
		t.Fatal("kyoto ledger missing")
	}
	p, err := f.Place(Request{Spec: vm.Spec{Name: "dis", App: "lbm", Pins: []int{0}, LLCCap: 100}})
	if err != nil {
		t.Fatal(err)
	}
	f.RunTicks(30)
	if p.VM.Punishments == 0 {
		t.Fatal("over-permit polluter must be punished on its host")
	}
}

// fleetScenario builds a fleet of the given size, places one sensitive and
// one disruptive VM per host, and returns it.
func fleetScenario(t testing.TB, hosts, workers int) *Fleet {
	t.Helper()
	f, err := New(Config{
		Hosts:    hosts,
		Template: HostTemplate{Seed: 42, EnableKyoto: true},
		Placer:   FirstFit{},
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"gcc", "lbm", "omnetpp", "blockie", "soplex", "mcf"}
	for i := 0; i < hosts; i++ {
		for j := 0; j < 2; j++ {
			app := apps[(2*i+j)%len(apps)]
			_, err := f.Place(Request{Spec: vm.Spec{
				Name:   fmt.Sprintf("h%d-%s%d", i, app, j),
				App:    app,
				Pins:   []int{j},
				LLCCap: 250,
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return f
}

// TestFleetParallelMatchesSerial is the determinism lock for the worker
// pool: a >=16-host fleet driven concurrently (run it under -race) must
// produce per-host results bit-identical to serial execution.
func TestFleetParallelMatchesSerial(t *testing.T) {
	const hosts = 16
	serial := fleetScenario(t, hosts, 1)
	parallel := fleetScenario(t, hosts, 8)

	serial.RunTicksSerial(30)
	parallel.RunTicks(30)

	sSnap := serial.SnapshotVMs()
	pSnap := parallel.SnapshotVMs()
	for i := 0; i < hosts; i++ {
		if len(sSnap[i]) != len(pSnap[i]) {
			t.Fatalf("host %d: VM count diverged", i)
		}
		for name, sc := range sSnap[i] {
			if pc, ok := pSnap[i][name]; !ok || pc != sc {
				t.Errorf("host %d VM %s: parallel counters diverged from serial\nserial:   %+v\nparallel: %+v",
					i, name, sc, pc)
			}
		}
		sw, pw := serial.Host(i).World, parallel.Host(i).World
		if sw.Now() != pw.Now() {
			t.Errorf("host %d clocks diverged: %d vs %d", i, sw.Now(), pw.Now())
		}
		for _, p := range serial.Host(i).Placements() {
			pv := parallel.Host(i).World.FindVM(p.VM.Name)
			if pv == nil || pv.Punishments != p.VM.Punishments {
				t.Errorf("host %d VM %s: punishments diverged", i, p.VM.Name)
			}
		}
	}
}

func TestRunTicksWorkerCapFallsBackToSerial(t *testing.T) {
	f := fleetScenario(t, 2, 1)
	f.RunTicks(5) // workers <= 1 takes the serial path
	for _, h := range f.Hosts() {
		if h.World.Now() != 5 {
			t.Fatalf("host %d ran %d ticks", h.ID, h.World.Now())
		}
	}
}

// bookings snapshots a host's booked-resource ledger for comparison.
func bookings(h *Host) [3]float64 {
	return [3]float64{float64(h.BookedCPUs), float64(h.BookedMemMB), h.BookedLLC}
}

// TestRejectedRequestLeavesAccountingUntouched locks the no-double-booking
// contract: a request the policy rejects, and a request the policy admits
// but whose spec the host then refuses (bad pin on the second vCPU), must
// both leave every host's booked totals exactly as they were.
func TestRejectedRequestLeavesAccountingUntouched(t *testing.T) {
	f, err := New(Config{
		Hosts:    2,
		Template: HostTemplate{Seed: 1, MemoryMB: 128},
		Placer:   Admission{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "ok", App: "gcc", LLCCap: 250}}); err != nil {
		t.Fatal(err)
	}
	before := [...][3]float64{bookings(f.Host(0)), bookings(f.Host(1))}
	vmsBefore := len(f.Host(0).World.VMs()) + len(f.Host(1).World.VMs())

	// Policy rejection: no permit booked under Kyoto admission.
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "noperm", App: "lbm"}}); err == nil {
		t.Fatal("permit-less request must be rejected by admission")
	}
	// Host rejection after the policy said yes: vCPU 1 pinned off-machine.
	_, err = f.Place(Request{Spec: vm.Spec{
		Name: "badpin", App: "lbm", VCPUs: 2, Pins: []int{0, 99}, LLCCap: 10,
	}})
	if err == nil {
		t.Fatal("invalid pin must fail placement")
	}
	for i, h := range f.Hosts() {
		if got := bookings(h); got != before[i] {
			t.Fatalf("host %d bookings changed by rejected requests: %v -> %v", i, before[i], got)
		}
	}
	if got := len(f.Host(0).World.VMs()) + len(f.Host(1).World.VMs()); got != vmsBefore {
		t.Fatalf("rejected requests leaked VMs into a world: %d -> %d", vmsBefore, got)
	}
	// The fleet must still be fully usable after the failed placements.
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "ok2", App: "lbm", LLCCap: 250}}); err != nil {
		t.Fatalf("fleet unusable after rejections: %v", err)
	}
}

// TestRemoveFreesBookings: departures free booked CPU, memory and llc_cap,
// and the freed capacity is placeable again.
func TestRemoveFreesBookings(t *testing.T) {
	f, err := New(Config{
		Hosts:    1,
		Template: HostTemplate{Seed: 3, EnableKyoto: true},
		Placer:   Admission{},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := f.Host(0)
	empty := bookings(h)
	// Fill every permit slot (4 cores x 250).
	for i := 0; i < 4; i++ {
		if _, err := f.Place(Request{Spec: vm.Spec{
			Name: fmt.Sprintf("vm%d", i), App: "gcc", LLCCap: 250,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "extra", App: "lbm", LLCCap: 250}}); err == nil {
		t.Fatal("full fleet must reject a fifth fully-booked VM")
	}
	f.RunTicks(6)
	p, err := f.Remove("vm2")
	if err != nil {
		t.Fatal(err)
	}
	if p.VM.Name != "vm2" || p.VM.Counters().Instructions == 0 {
		t.Fatalf("removed placement must carry the departed VM's lifetime counters, got %+v", p.VM)
	}
	if h.World.FindVM("vm2") != nil {
		t.Fatal("removed VM still present in the world")
	}
	if got, want := h.BookedCPUs, 3; got != want {
		t.Fatalf("booked CPUs after removal: %d, want %d", got, want)
	}
	if got, want := h.BookedLLC, 750.0; got != want {
		t.Fatalf("booked llc_cap after removal: %v, want %v", got, want)
	}
	if got, want := len(f.Placements()), 3; got != want {
		t.Fatalf("live placements after removal: %d, want %d", got, want)
	}
	// The freed slot admits a new VM, and the world keeps running.
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "late", App: "lbm", LLCCap: 250}}); err != nil {
		t.Fatalf("freed capacity not placeable: %v", err)
	}
	f.RunTicks(6)
	if v := h.World.FindVM("late"); v == nil || v.Counters().Instructions == 0 {
		t.Fatal("late VM did not execute after churn")
	}
	// Remove the rest; the ledger must return to empty exactly.
	for _, name := range []string{"vm0", "vm1", "vm3", "late"} {
		if _, err := f.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	if got := bookings(h); got != empty {
		t.Fatalf("ledger not empty after removing every VM: %v", got)
	}
}

// TestRemoveUnknownVMIsCleanError: removing a VM the fleet does not hold
// (never placed, or already removed) errors without corrupting bookings.
func TestRemoveUnknownVMIsCleanError(t *testing.T) {
	f, err := New(Config{Hosts: 1, Template: HostTemplate{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Place(Request{Spec: vm.Spec{Name: "only", App: "gcc"}}); err != nil {
		t.Fatal(err)
	}
	before := bookings(f.Host(0))
	if _, err := f.Remove("ghost"); err == nil {
		t.Fatal("removing an unknown VM must error")
	}
	if _, err := f.Remove("only"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Remove("only"); err == nil {
		t.Fatal("double removal must error")
	}
	if got := bookings(f.Host(0)); got[0] != before[0]-1 {
		t.Fatalf("double removal corrupted the CPU ledger: %v", got)
	}
}

// TestHostOverridesMixFleet: per-host overrides produce a heterogeneous
// fleet — here one big-memory, big-permit host in a Table-1 fleet — and
// capacity-aware placement exploits it.
func TestHostOverridesMixFleet(t *testing.T) {
	f, err := New(Config{
		Hosts:    3,
		Template: HostTemplate{Seed: 9, MemoryMB: 128},
		Overrides: map[int]HostOverride{
			1: {MemoryMB: 1024, LLCBudget: 4000},
		},
		Placer: Admission{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Host(0).CapacityMemMB != 128 || f.Host(2).CapacityMemMB != 128 {
		t.Fatalf("template hosts changed: %d/%d MB", f.Host(0).CapacityMemMB, f.Host(2).CapacityMemMB)
	}
	if f.Host(1).CapacityMemMB != 1024 || f.Host(1).LLCBudget != 4000 {
		t.Fatalf("override host not applied: %d MB, %v permit", f.Host(1).CapacityMemMB, f.Host(1).LLCBudget)
	}
	// A permit bigger than a Table-1 budget (4x250) fits only on host 1.
	p, err := f.Place(Request{Spec: vm.Spec{Name: "big", App: "lbm", LLCCap: 1500}})
	if err != nil {
		t.Fatal(err)
	}
	if p.HostID != 1 {
		t.Fatalf("oversized permit placed on host %d, want the override host 1", p.HostID)
	}
}

func TestOverrideKeysAreValidated(t *testing.T) {
	_, err := New(Config{
		Hosts:     2,
		Template:  HostTemplate{Seed: 1},
		Overrides: map[int]HostOverride{2: {MemoryMB: 1024}},
	})
	if err == nil {
		t.Fatal("override for a host outside the fleet must fail construction")
	}
}

// TestPlacementsSurviveRemove: slices returned by Placements stay valid
// (value copies) across later fleet churn.
func TestPlacementsSurviveRemove(t *testing.T) {
	f, err := New(Config{Hosts: 1, Template: HostTemplate{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c"}
	for _, n := range names {
		if _, err := f.Place(Request{Spec: vm.Spec{Name: n, App: "gcc"}}); err != nil {
			t.Fatal(err)
		}
	}
	snapshot := f.Placements()
	hostSnap := f.Host(0).Placements()
	if _, err := f.Remove("a"); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if snapshot[i].VM.Name != n || hostSnap[i].VM.Name != n {
			t.Fatalf("pre-removal snapshot mutated at %d: %s/%s", i, snapshot[i].VM.Name, hostSnap[i].VM.Name)
		}
	}
	if got := len(f.Placements()); got != 2 {
		t.Fatalf("live placements after removal: %d", got)
	}
}
