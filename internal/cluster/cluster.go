// Package cluster scales the single-host testbed to an IaaS fleet: N
// simulated hosts, each wrapping an independent hv.World, driven
// concurrently by a bounded worker pool and fed by a pluggable placement
// policy.
//
// The paper's argument is cluster-scoped: contention-aware VM placement
// (the related-work approach) must solve an NP-hard bin-packing across
// exactly these hosts, while Kyoto permits make *any* placement safe by
// charging polluters at the hypervisor. This package expresses both sides:
// a Placer decides which host gets each VM, and because every host is a
// full Kyoto-capable World, the same fleet can be run with or without
// permit enforcement.
//
// Determinism is preserved: hosts share no mutable state, each host's
// World is seeded independently, and RunTicks merely distributes whole
// hosts across workers — so a concurrent fleet run is bit-identical to
// driving the hosts serially (cluster tests assert this under -race).
//
// # Lazy per-host clocks
//
// The fleet keeps a virtual clock (SkipTicks advances it without
// simulating anything) and each host records how many ticks have
// actually been driven into its World. A host is fast-forwarded to the
// fleet clock only when an operation needs its simulated state: Place
// and Remove seek the one host they touch, Migrate seeks both
// endpoints, and whole-fleet reads (FleetMonitor.Observe, CaptureState,
// SnapshotVMs) call Barrier first. Because hv.World.RunTicks(n) is
// exactly n repetitions of one tick — chunk-invariant — advancing a
// host in one large seek is bit-identical to the many small lockstep
// advances it replaces; the churn goldens pin this. RunTicks keeps its
// historical all-hosts semantics (SkipTicks then Barrier), so callers
// that want whole-fleet advancement still get it.
//
// Laziness pays twice. First, an idle host's deferred stretch collapses
// to O(1): hv.World.FastForward elides the tick loop for a world that
// provably holds no VMs, so hosts a sparse trace never touches cost
// nothing to catch up — work is eliminated, not merely postponed.
// Second, busy lags close concurrently: fleets built with more than one
// worker run background drainer goroutines (the due-host scheduler)
// that sweep lagging hosts in DueChunkTicks-sized chunks while the
// calling goroutine processes events, synchronizing per host through
// Host.mu. Both mechanisms are schedule-only — every World still
// receives exactly the tick sequence the clock deltas dictate — so a
// drained, elided, concurrent run is bit-identical to
// RunTicksLockstep's eager serial schedule (the pre-event-horizon
// engine, kept as the measured baseline).
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// DefaultVMMemoryMB is booked for a VM whose request leaves MemoryMB
// zero — 1/8 of the scaled Table-1 host's 506 MB.
const DefaultVMMemoryMB = 64

// DefaultLLCCapPerCore sizes a host's pollution-permit budget: the
// paper's Figure-5 booking (llc_cap 250) per core. A Table-1 host can
// thus admit four fully-booked VMs before Kyoto admission says no.
const DefaultLLCCapPerCore = 250

// HostTemplate describes how each host of a fleet is assembled; it is the
// internal mirror of the public WorldConfig.
type HostTemplate struct {
	// Machine is the per-host hardware; the zero value selects the
	// paper's Table 1 machine.
	Machine machine.Config
	// NewSched builds the base scheduler; nil selects the Xen credit
	// scheduler, the paper's baseline.
	NewSched func(cores int) sched.Scheduler
	// EnableKyoto wraps every host's scheduler with pollution
	// enforcement and attaches a monitor.
	EnableKyoto bool
	// ShadowMonitor selects the trace-replay monitor instead of the
	// exact per-vCPU counters when Kyoto is enabled.
	ShadowMonitor bool
	// Seed drives all randomness; host i derives its own stream from it.
	Seed uint64
	// Fidelity selects each host's cache-model tier (hv.Config.Fidelity).
	// The analytic tier cannot drive the shadow monitor, which needs a
	// per-access trace.
	Fidelity cache.Fidelity
	// MemoryMB overrides the host memory capacity used for admission
	// (default Machine.MainMemoryMB).
	MemoryMB int
	// LLCBudget overrides the host's pollution-permit budget in
	// Equation-1 units (default cores x DefaultLLCCapPerCore).
	LLCBudget float64
}

// Host is one machine of the fleet: a World plus the resource ledger the
// placement policies book against.
type Host struct {
	// ID is the host's index in the fleet, fixed at construction.
	ID int
	// World is the host's simulated testbed.
	World *hv.World

	kyoto  *core.Kyoto
	oracle *monitor.Oracle
	shadow bool

	// Capacity of the three first-class resources. CPUs counts vCPU
	// slots (one per physical core: the paper's §2.2 assumption of
	// unshared cores for admission purposes), MemMB main memory, and
	// LLCBudget the total pollution permit the host will book.
	CapacityCPUs  int
	CapacityMemMB int
	LLCBudget     float64

	// Booked resources, updated by Fleet.Place.
	BookedCPUs  int
	BookedMemMB int
	BookedLLC   float64

	vms []Placement

	// mu serializes simulation access to the host's World between the
	// fleet's calling goroutine and the background due-host drainers.
	// ran counts the ticks actually driven into the World since fleet
	// construction (or the last RestoreState); invariant: ran <= the
	// fleet clock, and the gap is the host's lag, closed by seeks.
	// Both are guarded by mu.
	mu  sync.Mutex
	ran uint64
}

// Kyoto returns the host's pollution ledger when the template enabled
// enforcement, else nil.
func (h *Host) Kyoto() *core.Kyoto { return h.kyoto }

// Placements returns the VMs currently placed on this host, in placement
// order (departed VMs are pruned by Fleet.Remove). The slice is a copy:
// it stays valid however the fleet churns afterwards.
func (h *Host) Placements() []Placement { return append([]Placement(nil), h.vms...) }

// FreeCPUs returns the unbooked vCPU slots.
func (h *Host) FreeCPUs() int { return h.CapacityCPUs - h.BookedCPUs }

// FreeMemMB returns the unbooked memory.
func (h *Host) FreeMemMB() int { return h.CapacityMemMB - h.BookedMemMB }

// FreeLLC returns the unbooked pollution budget.
func (h *Host) FreeLLC() float64 { return h.LLCBudget - h.BookedLLC }

// Fits reports whether the request's vCPU and memory bookings fit.
func (h *Host) Fits(req Request) bool {
	return req.CPUs() <= h.FreeCPUs() && req.MemMB() <= h.FreeMemMB()
}

// Request asks the fleet for a VM. The embedded spec is handed verbatim
// to the chosen host's World; MemoryMB is the booking the placement
// policies see.
type Request struct {
	vm.Spec
	// MemoryMB is the VM's booked memory (default DefaultVMMemoryMB).
	MemoryMB int
}

// CPUs returns the vCPU slots the request books.
func (r Request) CPUs() int {
	if r.VCPUs == 0 {
		return 1
	}
	return r.VCPUs
}

// MemMB returns the memory the request books.
func (r Request) MemMB() int {
	if r.MemoryMB == 0 {
		return DefaultVMMemoryMB
	}
	return r.MemoryMB
}

// Placement records where a VM landed.
type Placement struct {
	// HostID is the chosen host.
	HostID int
	// VM is the instantiated domain on that host's World.
	VM *vm.VM
	// Request echoes what was asked.
	Request Request
}

// HostOverride customizes one host of an otherwise uniform fleet, making
// heterogeneous fleets expressible: a few Table-1-class hosts next to
// machines with a larger LLC, more memory, or a bigger permit budget.
// Zero-valued fields keep the template's value; scheduler, Kyoto
// enforcement and the seed always come from the template so the fleet
// stays one coherent experiment.
type HostOverride struct {
	// Machine replaces the template machine when set (Sockets > 0).
	Machine machine.Config
	// MemoryMB replaces the host memory capacity when non-zero.
	MemoryMB int
	// LLCBudget replaces the pollution-permit budget when non-zero.
	LLCBudget float64
}

// Config assembles a Fleet.
type Config struct {
	// Hosts is the fleet size (at least 1).
	Hosts int
	// Template describes every host.
	Template HostTemplate
	// Overrides customizes individual hosts by ID; hosts without an entry
	// are stamped from Template unchanged.
	Overrides map[int]HostOverride
	// Placer decides which host gets each VM (default FirstFit).
	Placer Placer
	// Workers caps RunTicks concurrency (default GOMAXPROCS).
	Workers int
}

// Fleet is a cluster of simulated hosts behind one placement policy.
type Fleet struct {
	hosts      []*Host
	placer     Placer
	workers    int
	placements []Placement

	// sched owns the lazy-clock machinery: the fleet's virtual clock and
	// the background due-host drainers. It deliberately holds no pointer
	// back to the Fleet, so the drainer goroutines never keep a
	// discarded fleet alive — the finalizer set in New stops them once
	// the Fleet itself is collected.
	sched *dueScheduler
}

// dueScheduler is the shared state between a fleet's calling goroutine
// and its background drainers: the virtual clock (how far every host is
// *entitled* to have run) and the host list whose lags the drainers
// close. Per-host serialization lives in Host.mu.
type dueScheduler struct {
	hosts []*Host
	// clock is the fleet's virtual time in ticks since construction (or
	// the last RestoreState). SkipTicks advances it for free; seeks and
	// Barrier make hosts catch up to it. Atomic because drainers read it
	// while the calling goroutine advances it.
	clock atomic.Uint64
	// wake (buffered, capacity one) nudges parked drainers after the
	// clock moves; quit stops them for good. Both are nil on fleets that
	// run without drainers (single host, or an effective worker count of
	// one).
	wake chan struct{}
	quit chan struct{}
}

// New builds a fleet of cfg.Hosts identical hosts.
func New(cfg Config) (*Fleet, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 host, got %d", cfg.Hosts)
	}
	placer := cfg.Placer
	if placer == nil {
		placer = FirstFit{}
	}
	for id, o := range cfg.Overrides {
		if id < 0 || id >= cfg.Hosts {
			return nil, fmt.Errorf("cluster: override for host %d, but fleet has hosts 0..%d", id, cfg.Hosts-1)
		}
		if o.MemoryMB < 0 || o.LLCBudget < 0 {
			return nil, fmt.Errorf("cluster: override for host %d: negative capacity (%d MB, %v permit)", id, o.MemoryMB, o.LLCBudget)
		}
	}
	f := &Fleet{placer: placer, workers: cfg.Workers}
	for i := 0; i < cfg.Hosts; i++ {
		t := cfg.Template
		if o, ok := cfg.Overrides[i]; ok {
			if o.Machine.Sockets > 0 {
				t.Machine = o.Machine
			}
			if o.MemoryMB != 0 {
				t.MemoryMB = o.MemoryMB
			}
			if o.LLCBudget != 0 {
				t.LLCBudget = o.LLCBudget
			}
		}
		h, err := newHost(i, t)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", i, err)
		}
		f.hosts = append(f.hosts, h)
	}
	f.sched = &dueScheduler{hosts: f.hosts}
	if n := f.drainers(); n > 0 {
		f.sched.start(n)
		// The drainers hold only f.sched, so the Fleet itself can be
		// collected; stopping them on collection keeps fleet-heavy test
		// suites and sweeps from accumulating parked goroutines forever.
		runtime.SetFinalizer(f, func(f *Fleet) { close(f.sched.quit) })
	}
	return f, nil
}

// resolveWorkers returns the effective advancement concurrency.
func (f *Fleet) resolveWorkers() int {
	if f.workers > 0 {
		return f.workers
	}
	return runtime.GOMAXPROCS(0)
}

// drainers returns how many background drainers the fleet runs: the
// worker budget minus the calling goroutine (which drives the host its
// event touches), bounded by the hosts that could lag concurrently.
func (f *Fleet) drainers() int {
	n := f.resolveWorkers()
	if n > len(f.hosts) {
		n = len(f.hosts)
	}
	return n - 1
}

// newHost assembles one host from the template, deriving a per-host seed
// the same way hv derives per-VM seeds.
func newHost(id int, t HostTemplate) (*Host, error) {
	mcfg := t.Machine
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	seed ^= uint64(id+1) * 0x9e3779b97f4a7c15
	if mcfg.Sockets == 0 {
		mcfg = machine.TableOne(seed)
	}
	// The per-host seed must reach the cache RNGs even when the template
	// carries an explicit machine config, or every host replays identical
	// replacement streams.
	mcfg.Seed = seed
	cores := mcfg.Sockets * mcfg.CoresPerSocket

	var base sched.Scheduler
	if t.NewSched != nil {
		base = t.NewSched(cores)
	} else {
		base = sched.NewCredit(cores)
	}
	var k *core.Kyoto
	s := base
	if t.EnableKyoto {
		k = core.New(base)
		s = k
	}
	if t.ShadowMonitor && t.Fidelity == cache.FidelityAnalytic {
		return nil, fmt.Errorf("cluster: the shadow monitor replays per-access traces, which the analytic tier does not produce — use the counter monitor or exact fidelity")
	}
	w, err := hv.New(hv.Config{Machine: mcfg, Seed: seed, Fidelity: t.Fidelity}, s)
	if err != nil {
		return nil, err
	}
	var oracle *monitor.Oracle
	if t.EnableKyoto {
		if t.ShadowMonitor {
			w.AddHook(monitor.NewShadowSim(k, mcfg, 0))
		} else {
			oracle = monitor.NewOracle(k, core.Equation1)
			w.AddHook(oracle)
		}
	}
	memMB := t.MemoryMB
	if memMB == 0 {
		memMB = mcfg.MainMemoryMB
	}
	llc := t.LLCBudget
	if llc == 0 {
		llc = float64(cores) * DefaultLLCCapPerCore
	}
	return &Host{
		ID:            id,
		World:         w,
		kyoto:         k,
		oracle:        oracle,
		shadow:        t.EnableKyoto && t.ShadowMonitor,
		CapacityCPUs:  cores,
		CapacityMemMB: memMB,
		LLCBudget:     llc,
	}, nil
}

// Hosts returns the fleet's hosts in ID order.
func (f *Fleet) Hosts() []*Host { return f.hosts }

// Host returns host i.
func (f *Fleet) Host(i int) *Host { return f.hosts[i] }

// Size returns the number of hosts.
func (f *Fleet) Size() int { return len(f.hosts) }

// Placer returns the fleet's placement policy.
func (f *Fleet) Placer() Placer { return f.placer }

// Placements returns the live placements in request order; VMs torn down
// by Remove no longer appear. The slice is a copy: it stays valid
// however the fleet churns afterwards.
func (f *Fleet) Placements() []Placement { return append([]Placement(nil), f.placements...) }

// Place asks the policy for a host, books the request's resources and
// instantiates the VM there. The error is ErrUnplaceable (wrapped with
// the policy's reason) when no host can take the VM.
func (f *Fleet) Place(req Request) (Placement, error) {
	hostID, err := f.placer.Place(f.hosts, req)
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: placing %q: %w", req.Name, err)
	}
	if hostID < 0 || hostID >= len(f.hosts) {
		return Placement{}, fmt.Errorf("cluster: placer %s chose invalid host %d", f.placer.Name(), hostID)
	}
	h := f.hosts[hostID]
	// The placer only read booking ledgers; the chosen host's World is
	// about to change, so it must reach the fleet clock first.
	f.seek(h)
	domain, err := h.World.AddVM(req.Spec)
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: host %d: %w", hostID, err)
	}
	h.BookedCPUs += req.CPUs()
	h.BookedMemMB += req.MemMB()
	h.BookedLLC += req.LLCCap
	p := Placement{HostID: hostID, VM: domain, Request: req}
	h.vms = append(h.vms, p)
	f.placements = append(f.placements, p)
	return p, nil
}

// Remove tears the named VM down wherever it landed: the VM leaves its
// host's World (scheduler runqueues, cache footprint — see
// hv.World.RemoveVM) and its booked vCPUs, memory and llc_cap permit are
// freed for future placements. Removing a VM the fleet does not hold
// returns an error and leaves every booking untouched. The removed
// Placement is returned so callers can read the departed VM's lifetime
// counters.
func (f *Fleet) Remove(name string) (Placement, error) {
	for _, h := range f.hosts {
		for i, p := range h.vms {
			if p.VM.Name != name {
				continue
			}
			// The departing VM's lifetime counters are read by callers of
			// the returned Placement; the host must be current first.
			f.seek(h)
			if err := h.World.RemoveVM(name); err != nil {
				return Placement{}, fmt.Errorf("cluster: host %d: %w", h.ID, err)
			}
			h.BookedCPUs -= p.Request.CPUs()
			h.BookedMemMB -= p.Request.MemMB()
			h.BookedLLC -= p.Request.LLCCap
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			for j, fp := range f.placements {
				if fp.VM == p.VM {
					f.placements = append(f.placements[:j], f.placements[j+1:]...)
					break
				}
			}
			return p, nil
		}
	}
	return Placement{}, fmt.Errorf("cluster: remove %q: no such VM in the fleet", name)
}

// BookedCPUFraction returns the fleet-wide booked share of vCPU slots in
// [0, 1] — the utilization the trace-replay reports sample between events.
func (f *Fleet) BookedCPUFraction() float64 {
	var booked, capacity int
	for _, h := range f.hosts {
		booked += h.BookedCPUs
		capacity += h.CapacityCPUs
	}
	if capacity == 0 {
		return 0
	}
	return float64(booked) / float64(capacity)
}

// PlaceAll places every request in order, returning all placements or the
// first error.
func (f *Fleet) PlaceAll(reqs []Request) ([]Placement, error) {
	out := make([]Placement, 0, len(reqs))
	for _, req := range reqs {
		p, err := f.Place(req)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// DueChunkTicks bounds how long a background drainer holds one host's
// lock: lag is closed in contiguous chunks of at most this many ticks,
// so the calling goroutine's seek of the same host blocks for at most
// one chunk (and that blocked time is never wasted — the drainer is
// doing exactly the catch-up the seek needs). Large enough to amortize
// the lock traffic over real simulation work, small enough to keep
// event-path latency bounded.
const DueChunkTicks = 256

// RunTicks advances every host n ticks: the fleet clock moves forward
// and every host catches up to it, the drainers closing lags alongside
// the calling goroutine. Hosts share no state, so the result is
// identical to RunTicksSerial.
func (f *Fleet) RunTicks(n int) {
	f.SkipTicks(uint64(n))
	f.Barrier()
}

// RunTicksSerial advances every host n ticks on the calling goroutine, in
// host-ID order — the reference execution the concurrent path must match.
func (f *Fleet) RunTicksSerial(n int) {
	f.sched.clock.Add(uint64(n))
	for _, h := range f.hosts {
		h.mu.Lock()
		f.sched.seekLocked(h)
		h.mu.Unlock()
	}
}

// RunTicksLockstep advances every host n ticks through the
// pre-event-horizon schedule: the whole fleet synchronizes inside this
// one call, hosts distributed across a freshly spawned worker pool of
// min(Workers, hosts, GOMAXPROCS) goroutines, with no idle elision and
// no background draining. It exists as the measured baseline the lazy
// engine's speedup is quoted against (arrivals.Options.Lockstep) and is
// bit-identical to RunTicks — only the schedule and the cost differ.
func (f *Fleet) RunTicksLockstep(n int) {
	s := f.sched
	s.clock.Add(uint64(n)) // deliberately no nudge: drainers stay parked
	workers := f.resolveWorkers()
	if workers > len(f.hosts) {
		workers = len(f.hosts)
	}
	if workers <= 1 {
		for _, h := range f.hosts {
			h.mu.Lock()
			s.tickLocked(h)
			h.mu.Unlock()
		}
		return
	}
	var wg sync.WaitGroup
	ch := make(chan *Host)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range ch {
				h.mu.Lock()
				s.tickLocked(h)
				h.mu.Unlock()
			}
		}()
	}
	for _, h := range f.hosts {
		ch <- h
	}
	close(ch)
	wg.Wait()
}

// SkipTicks advances the fleet's virtual clock by n ticks without
// simulating anything on the calling goroutine. Hosts catch up lazily:
// each one is fast-forwarded the moment an operation needs its
// simulated state (Place, Remove, Migrate on that host; Barrier for all
// of them), and the background drainers close lags concurrently in the
// meantime. Bookkeeping reads — Fits, FreeLLC, BookedCPUFraction, the
// placement ledgers — never force a catch-up, which is what makes
// replaying a sparse event stream cheap.
func (f *Fleet) SkipTicks(n uint64) {
	f.sched.clock.Add(n)
	f.sched.nudge()
}

// Clock returns the fleet's virtual time in ticks since construction
// (or the last RestoreState).
func (f *Fleet) Clock() uint64 { return f.sched.clock.Load() }

// HostLag returns how many ticks host i still has to simulate to reach
// the fleet clock (0 for a fully caught-up host).
func (f *Fleet) HostLag(i int) uint64 {
	h := f.hosts[i]
	h.mu.Lock()
	lag := f.sched.clock.Load() - h.ran
	h.mu.Unlock()
	return lag
}

// Barrier fast-forwards every lagging host to the fleet clock, the
// drainers helping concurrently. After it returns, every host's World
// is at the same virtual time — the prerequisite for whole-fleet reads
// (monitor observations, checkpoints, counter snapshots) — and no
// drainer touches any World until the clock moves again.
func (f *Fleet) Barrier() {
	s := f.sched
	s.nudge()
	for _, h := range f.hosts {
		h.mu.Lock()
		s.seekLocked(h)
		h.mu.Unlock()
	}
}

// seek fast-forwards one host to the fleet clock because an event needs
// its simulated state. Acquiring the host lock also establishes the
// happens-before edge with whichever drainer last advanced the World,
// so the caller may read and mutate it freely afterwards (no drainer
// touches a caught-up host until the clock moves again, and only the
// calling goroutine moves it).
func (f *Fleet) seek(h *Host) {
	h.mu.Lock()
	f.sched.seekLocked(h)
	h.mu.Unlock()
}

// start spawns n background drainers. Each one sweeps the host list
// from its own offset, closing lags chunk by chunk, and parks on the
// wake channel once a full sweep finds every host caught up.
func (s *dueScheduler) start(n int) {
	s.wake = make(chan struct{}, 1)
	s.quit = make(chan struct{})
	for i := 0; i < n; i++ {
		go s.drain(i * len(s.hosts) / n)
	}
}

// nudge wakes parked drainers after the clock moved. The buffered
// channel makes it a few-nanosecond no-op when they are already awake,
// and no wakeup can be lost: a nudge arriving mid-sweep is consumed by
// the drainer's next park-and-recheck.
func (s *dueScheduler) nudge() {
	if s.wake == nil {
		return
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// drain is one background drainer: sweep every host, close up to
// DueChunkTicks of lag per lock hold, park when a whole sweep finds no
// work. Which goroutine runs a host's ticks can never matter — each
// World's tick sequence is fixed by the clock deltas alone — so the
// drainers accelerate the replay without touching its results.
func (s *dueScheduler) drain(start int) {
	n := len(s.hosts)
	for {
		worked := false
		for i := 0; i < n; i++ {
			select {
			case <-s.quit:
				return
			default:
			}
			h := s.hosts[(start+i)%n]
			h.mu.Lock()
			if c := s.clock.Load(); h.ran < c {
				step := c - h.ran
				if step > DueChunkTicks {
					step = DueChunkTicks
				}
				h.World.FastForward(int(step))
				h.ran += step
				worked = true
			}
			h.mu.Unlock()
		}
		if !worked {
			select {
			case <-s.wake:
			case <-s.quit:
				return
			}
		}
	}
}

// seekLocked closes h's lag on the calling goroutine (h.mu held), in
// int-sized chunks so the uint64 delta cannot truncate on 32-bit
// platforms. World.FastForward elides the tick loop in O(1) while the
// host is empty — an untouched host's idle stretch costs nothing to
// close, which is the lazy engine's headline saving.
func (s *dueScheduler) seekLocked(h *Host) {
	for {
		c := s.clock.Load()
		if h.ran >= c {
			return
		}
		step := c - h.ran
		if step > math.MaxInt32 {
			step = math.MaxInt32
		}
		h.World.FastForward(int(step))
		h.ran += step
	}
}

// tickLocked closes h's lag tick by tick (h.mu held) — the lockstep
// baseline's cost model, with no idle elision.
func (s *dueScheduler) tickLocked(h *Host) {
	for {
		c := s.clock.Load()
		if h.ran >= c {
			return
		}
		step := c - h.ran
		if step > math.MaxInt32 {
			step = math.MaxInt32
		}
		h.World.RunTicks(int(step))
		h.ran += step
	}
}

// FindVM returns the live VM with the given name and its host's ID, or
// (nil, -1). Hosts are scanned in ID order, so duplicated names resolve
// to the lowest host.
func (f *Fleet) FindVM(name string) (*vm.VM, int) {
	for _, h := range f.hosts {
		if v := h.World.FindVM(name); v != nil {
			return v, h.ID
		}
	}
	return nil, -1
}

// SnapshotVMs returns every host's per-VM aggregate counters, indexed by
// host ID then VM name. Counters are simulated state, so every host is
// first brought to the fleet clock.
func (f *Fleet) SnapshotVMs() []map[string]pmc.Counters {
	f.Barrier()
	out := make([]map[string]pmc.Counters, len(f.hosts))
	for i, h := range f.hosts {
		out[i] = h.World.SnapshotVMs()
	}
	return out
}
