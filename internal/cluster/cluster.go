// Package cluster scales the single-host testbed to an IaaS fleet: N
// simulated hosts, each wrapping an independent hv.World, driven
// concurrently by a bounded worker pool and fed by a pluggable placement
// policy.
//
// The paper's argument is cluster-scoped: contention-aware VM placement
// (the related-work approach) must solve an NP-hard bin-packing across
// exactly these hosts, while Kyoto permits make *any* placement safe by
// charging polluters at the hypervisor. This package expresses both sides:
// a Placer decides which host gets each VM, and because every host is a
// full Kyoto-capable World, the same fleet can be run with or without
// permit enforcement.
//
// Determinism is preserved: hosts share no mutable state, each host's
// World is seeded independently, and RunTicks merely distributes whole
// hosts across workers — so a concurrent fleet run is bit-identical to
// driving the hosts serially (cluster tests assert this under -race).
package cluster

import (
	"fmt"
	"runtime"
	"sync"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// DefaultVMMemoryMB is booked for a VM whose request leaves MemoryMB
// zero — 1/8 of the scaled Table-1 host's 506 MB.
const DefaultVMMemoryMB = 64

// DefaultLLCCapPerCore sizes a host's pollution-permit budget: the
// paper's Figure-5 booking (llc_cap 250) per core. A Table-1 host can
// thus admit four fully-booked VMs before Kyoto admission says no.
const DefaultLLCCapPerCore = 250

// HostTemplate describes how each host of a fleet is assembled; it is the
// internal mirror of the public WorldConfig.
type HostTemplate struct {
	// Machine is the per-host hardware; the zero value selects the
	// paper's Table 1 machine.
	Machine machine.Config
	// NewSched builds the base scheduler; nil selects the Xen credit
	// scheduler, the paper's baseline.
	NewSched func(cores int) sched.Scheduler
	// EnableKyoto wraps every host's scheduler with pollution
	// enforcement and attaches a monitor.
	EnableKyoto bool
	// ShadowMonitor selects the trace-replay monitor instead of the
	// exact per-vCPU counters when Kyoto is enabled.
	ShadowMonitor bool
	// Seed drives all randomness; host i derives its own stream from it.
	Seed uint64
	// Fidelity selects each host's cache-model tier (hv.Config.Fidelity).
	// The analytic tier cannot drive the shadow monitor, which needs a
	// per-access trace.
	Fidelity cache.Fidelity
	// MemoryMB overrides the host memory capacity used for admission
	// (default Machine.MainMemoryMB).
	MemoryMB int
	// LLCBudget overrides the host's pollution-permit budget in
	// Equation-1 units (default cores x DefaultLLCCapPerCore).
	LLCBudget float64
}

// Host is one machine of the fleet: a World plus the resource ledger the
// placement policies book against.
type Host struct {
	// ID is the host's index in the fleet, fixed at construction.
	ID int
	// World is the host's simulated testbed.
	World *hv.World

	kyoto  *core.Kyoto
	oracle *monitor.Oracle
	shadow bool

	// Capacity of the three first-class resources. CPUs counts vCPU
	// slots (one per physical core: the paper's §2.2 assumption of
	// unshared cores for admission purposes), MemMB main memory, and
	// LLCBudget the total pollution permit the host will book.
	CapacityCPUs  int
	CapacityMemMB int
	LLCBudget     float64

	// Booked resources, updated by Fleet.Place.
	BookedCPUs  int
	BookedMemMB int
	BookedLLC   float64

	vms []Placement
}

// Kyoto returns the host's pollution ledger when the template enabled
// enforcement, else nil.
func (h *Host) Kyoto() *core.Kyoto { return h.kyoto }

// Placements returns the VMs currently placed on this host, in placement
// order (departed VMs are pruned by Fleet.Remove). The slice is a copy:
// it stays valid however the fleet churns afterwards.
func (h *Host) Placements() []Placement { return append([]Placement(nil), h.vms...) }

// FreeCPUs returns the unbooked vCPU slots.
func (h *Host) FreeCPUs() int { return h.CapacityCPUs - h.BookedCPUs }

// FreeMemMB returns the unbooked memory.
func (h *Host) FreeMemMB() int { return h.CapacityMemMB - h.BookedMemMB }

// FreeLLC returns the unbooked pollution budget.
func (h *Host) FreeLLC() float64 { return h.LLCBudget - h.BookedLLC }

// Fits reports whether the request's vCPU and memory bookings fit.
func (h *Host) Fits(req Request) bool {
	return req.CPUs() <= h.FreeCPUs() && req.MemMB() <= h.FreeMemMB()
}

// Request asks the fleet for a VM. The embedded spec is handed verbatim
// to the chosen host's World; MemoryMB is the booking the placement
// policies see.
type Request struct {
	vm.Spec
	// MemoryMB is the VM's booked memory (default DefaultVMMemoryMB).
	MemoryMB int
}

// CPUs returns the vCPU slots the request books.
func (r Request) CPUs() int {
	if r.VCPUs == 0 {
		return 1
	}
	return r.VCPUs
}

// MemMB returns the memory the request books.
func (r Request) MemMB() int {
	if r.MemoryMB == 0 {
		return DefaultVMMemoryMB
	}
	return r.MemoryMB
}

// Placement records where a VM landed.
type Placement struct {
	// HostID is the chosen host.
	HostID int
	// VM is the instantiated domain on that host's World.
	VM *vm.VM
	// Request echoes what was asked.
	Request Request
}

// HostOverride customizes one host of an otherwise uniform fleet, making
// heterogeneous fleets expressible: a few Table-1-class hosts next to
// machines with a larger LLC, more memory, or a bigger permit budget.
// Zero-valued fields keep the template's value; scheduler, Kyoto
// enforcement and the seed always come from the template so the fleet
// stays one coherent experiment.
type HostOverride struct {
	// Machine replaces the template machine when set (Sockets > 0).
	Machine machine.Config
	// MemoryMB replaces the host memory capacity when non-zero.
	MemoryMB int
	// LLCBudget replaces the pollution-permit budget when non-zero.
	LLCBudget float64
}

// Config assembles a Fleet.
type Config struct {
	// Hosts is the fleet size (at least 1).
	Hosts int
	// Template describes every host.
	Template HostTemplate
	// Overrides customizes individual hosts by ID; hosts without an entry
	// are stamped from Template unchanged.
	Overrides map[int]HostOverride
	// Placer decides which host gets each VM (default FirstFit).
	Placer Placer
	// Workers caps RunTicks concurrency (default GOMAXPROCS).
	Workers int
}

// Fleet is a cluster of simulated hosts behind one placement policy.
type Fleet struct {
	hosts      []*Host
	placer     Placer
	workers    int
	placements []Placement
}

// New builds a fleet of cfg.Hosts identical hosts.
func New(cfg Config) (*Fleet, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("cluster: need at least 1 host, got %d", cfg.Hosts)
	}
	placer := cfg.Placer
	if placer == nil {
		placer = FirstFit{}
	}
	for id, o := range cfg.Overrides {
		if id < 0 || id >= cfg.Hosts {
			return nil, fmt.Errorf("cluster: override for host %d, but fleet has hosts 0..%d", id, cfg.Hosts-1)
		}
		if o.MemoryMB < 0 || o.LLCBudget < 0 {
			return nil, fmt.Errorf("cluster: override for host %d: negative capacity (%d MB, %v permit)", id, o.MemoryMB, o.LLCBudget)
		}
	}
	f := &Fleet{placer: placer, workers: cfg.Workers}
	for i := 0; i < cfg.Hosts; i++ {
		t := cfg.Template
		if o, ok := cfg.Overrides[i]; ok {
			if o.Machine.Sockets > 0 {
				t.Machine = o.Machine
			}
			if o.MemoryMB != 0 {
				t.MemoryMB = o.MemoryMB
			}
			if o.LLCBudget != 0 {
				t.LLCBudget = o.LLCBudget
			}
		}
		h, err := newHost(i, t)
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", i, err)
		}
		f.hosts = append(f.hosts, h)
	}
	return f, nil
}

// newHost assembles one host from the template, deriving a per-host seed
// the same way hv derives per-VM seeds.
func newHost(id int, t HostTemplate) (*Host, error) {
	mcfg := t.Machine
	seed := t.Seed
	if seed == 0 {
		seed = 1
	}
	seed ^= uint64(id+1) * 0x9e3779b97f4a7c15
	if mcfg.Sockets == 0 {
		mcfg = machine.TableOne(seed)
	}
	// The per-host seed must reach the cache RNGs even when the template
	// carries an explicit machine config, or every host replays identical
	// replacement streams.
	mcfg.Seed = seed
	cores := mcfg.Sockets * mcfg.CoresPerSocket

	var base sched.Scheduler
	if t.NewSched != nil {
		base = t.NewSched(cores)
	} else {
		base = sched.NewCredit(cores)
	}
	var k *core.Kyoto
	s := base
	if t.EnableKyoto {
		k = core.New(base)
		s = k
	}
	if t.ShadowMonitor && t.Fidelity == cache.FidelityAnalytic {
		return nil, fmt.Errorf("cluster: the shadow monitor replays per-access traces, which the analytic tier does not produce — use the counter monitor or exact fidelity")
	}
	w, err := hv.New(hv.Config{Machine: mcfg, Seed: seed, Fidelity: t.Fidelity}, s)
	if err != nil {
		return nil, err
	}
	var oracle *monitor.Oracle
	if t.EnableKyoto {
		if t.ShadowMonitor {
			w.AddHook(monitor.NewShadowSim(k, mcfg, 0))
		} else {
			oracle = monitor.NewOracle(k, core.Equation1)
			w.AddHook(oracle)
		}
	}
	memMB := t.MemoryMB
	if memMB == 0 {
		memMB = mcfg.MainMemoryMB
	}
	llc := t.LLCBudget
	if llc == 0 {
		llc = float64(cores) * DefaultLLCCapPerCore
	}
	return &Host{
		ID:            id,
		World:         w,
		kyoto:         k,
		oracle:        oracle,
		shadow:        t.EnableKyoto && t.ShadowMonitor,
		CapacityCPUs:  cores,
		CapacityMemMB: memMB,
		LLCBudget:     llc,
	}, nil
}

// Hosts returns the fleet's hosts in ID order.
func (f *Fleet) Hosts() []*Host { return f.hosts }

// Host returns host i.
func (f *Fleet) Host(i int) *Host { return f.hosts[i] }

// Size returns the number of hosts.
func (f *Fleet) Size() int { return len(f.hosts) }

// Placer returns the fleet's placement policy.
func (f *Fleet) Placer() Placer { return f.placer }

// Placements returns the live placements in request order; VMs torn down
// by Remove no longer appear. The slice is a copy: it stays valid
// however the fleet churns afterwards.
func (f *Fleet) Placements() []Placement { return append([]Placement(nil), f.placements...) }

// Place asks the policy for a host, books the request's resources and
// instantiates the VM there. The error is ErrUnplaceable (wrapped with
// the policy's reason) when no host can take the VM.
func (f *Fleet) Place(req Request) (Placement, error) {
	hostID, err := f.placer.Place(f.hosts, req)
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: placing %q: %w", req.Name, err)
	}
	if hostID < 0 || hostID >= len(f.hosts) {
		return Placement{}, fmt.Errorf("cluster: placer %s chose invalid host %d", f.placer.Name(), hostID)
	}
	h := f.hosts[hostID]
	domain, err := h.World.AddVM(req.Spec)
	if err != nil {
		return Placement{}, fmt.Errorf("cluster: host %d: %w", hostID, err)
	}
	h.BookedCPUs += req.CPUs()
	h.BookedMemMB += req.MemMB()
	h.BookedLLC += req.LLCCap
	p := Placement{HostID: hostID, VM: domain, Request: req}
	h.vms = append(h.vms, p)
	f.placements = append(f.placements, p)
	return p, nil
}

// Remove tears the named VM down wherever it landed: the VM leaves its
// host's World (scheduler runqueues, cache footprint — see
// hv.World.RemoveVM) and its booked vCPUs, memory and llc_cap permit are
// freed for future placements. Removing a VM the fleet does not hold
// returns an error and leaves every booking untouched. The removed
// Placement is returned so callers can read the departed VM's lifetime
// counters.
func (f *Fleet) Remove(name string) (Placement, error) {
	for _, h := range f.hosts {
		for i, p := range h.vms {
			if p.VM.Name != name {
				continue
			}
			if err := h.World.RemoveVM(name); err != nil {
				return Placement{}, fmt.Errorf("cluster: host %d: %w", h.ID, err)
			}
			h.BookedCPUs -= p.Request.CPUs()
			h.BookedMemMB -= p.Request.MemMB()
			h.BookedLLC -= p.Request.LLCCap
			h.vms = append(h.vms[:i], h.vms[i+1:]...)
			for j, fp := range f.placements {
				if fp.VM == p.VM {
					f.placements = append(f.placements[:j], f.placements[j+1:]...)
					break
				}
			}
			return p, nil
		}
	}
	return Placement{}, fmt.Errorf("cluster: remove %q: no such VM in the fleet", name)
}

// BookedCPUFraction returns the fleet-wide booked share of vCPU slots in
// [0, 1] — the utilization the trace-replay reports sample between events.
func (f *Fleet) BookedCPUFraction() float64 {
	var booked, capacity int
	for _, h := range f.hosts {
		booked += h.BookedCPUs
		capacity += h.CapacityCPUs
	}
	if capacity == 0 {
		return 0
	}
	return float64(booked) / float64(capacity)
}

// PlaceAll places every request in order, returning all placements or the
// first error.
func (f *Fleet) PlaceAll(reqs []Request) ([]Placement, error) {
	out := make([]Placement, 0, len(reqs))
	for _, req := range reqs {
		p, err := f.Place(req)
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RunTicks advances every host n ticks, distributing whole hosts across a
// worker pool of min(Workers, hosts, GOMAXPROCS) goroutines. Hosts share
// no state, so the result is identical to RunTicksSerial.
func (f *Fleet) RunTicks(n int) {
	workers := f.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(f.hosts) {
		workers = len(f.hosts)
	}
	if workers <= 1 {
		f.RunTicksSerial(n)
		return
	}
	var wg sync.WaitGroup
	ch := make(chan *Host)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for h := range ch {
				h.World.RunTicks(n)
			}
		}()
	}
	for _, h := range f.hosts {
		ch <- h
	}
	close(ch)
	wg.Wait()
}

// RunTicksSerial advances every host n ticks on the calling goroutine, in
// host-ID order — the reference execution the concurrent path must match.
func (f *Fleet) RunTicksSerial(n int) {
	for _, h := range f.hosts {
		h.World.RunTicks(n)
	}
}

// FindVM returns the live VM with the given name and its host's ID, or
// (nil, -1). Hosts are scanned in ID order, so duplicated names resolve
// to the lowest host.
func (f *Fleet) FindVM(name string) (*vm.VM, int) {
	for _, h := range f.hosts {
		if v := h.World.FindVM(name); v != nil {
			return v, h.ID
		}
	}
	return nil, -1
}

// SnapshotVMs returns every host's per-VM aggregate counters, indexed by
// host ID then VM name.
func (f *Fleet) SnapshotVMs() []map[string]pmc.Counters {
	out := make([]map[string]pmc.Counters, len(f.hosts))
	for i, h := range f.hosts {
		out[i] = h.World.SnapshotVMs()
	}
	return out
}
