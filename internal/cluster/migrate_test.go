package cluster

import (
	"errors"
	"strings"
	"testing"

	"kyoto/internal/vm"
)

// migrateFleet builds a 3-host Kyoto fleet with one VM placed on host 0.
func migrateFleet(t *testing.T) (*Fleet, Placement) {
	t.Helper()
	f, err := New(Config{
		Hosts:    3,
		Template: HostTemplate{Seed: 11, EnableKyoto: true},
		Placer:   FirstFit{},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Place(Request{Spec: vm.Spec{Name: "mover", App: "lbm", LLCCap: 250}})
	if err != nil {
		t.Fatal(err)
	}
	if p.HostID != 0 {
		t.Fatalf("first-fit put the VM on host %d, want 0", p.HostID)
	}
	return f, p
}

func TestMigrateMovesVMAndBookings(t *testing.T) {
	f, p := migrateFleet(t)
	f.RunTicks(12)
	before := p.VM.Counters()
	if before.Instructions == 0 {
		t.Fatal("VM ran 12 ticks but retired nothing")
	}

	moved, err := f.Migrate("mover", 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved.HostID != 2 {
		t.Fatalf("moved to host %d, want 2", moved.HostID)
	}
	if v, host := f.FindVM("mover"); v == nil || host != 2 {
		t.Fatalf("FindVM after migrate: host %d", host)
	}
	src, dst := f.Host(0), f.Host(2)
	if src.BookedCPUs != 0 || src.BookedMemMB != 0 || src.BookedLLC != 0 {
		t.Fatalf("source still books %d cpu / %d MB / %v llc", src.BookedCPUs, src.BookedMemMB, src.BookedLLC)
	}
	if dst.BookedCPUs != 1 || dst.BookedMemMB != DefaultVMMemoryMB || dst.BookedLLC != 250 {
		t.Fatalf("destination books %d cpu / %d MB / %v llc", dst.BookedCPUs, dst.BookedMemMB, dst.BookedLLC)
	}

	// Lifetime counters survive the move: the carried history is folded
	// into the re-instantiated domain, and keeps growing on the new host.
	after := moved.VM.Counters()
	if after.Instructions < before.Instructions {
		t.Fatalf("lifetime counters went backwards: %d -> %d", before.Instructions, after.Instructions)
	}
	dst.World.RunTicks(12)
	if grown := moved.VM.Counters(); grown.Instructions <= after.Instructions {
		t.Fatal("migrated VM makes no progress on its destination")
	}

	// The fleet-wide placement list tracks the move without reordering.
	ps := f.Placements()
	if len(ps) != 1 || ps[0].HostID != 2 || ps[0].VM != moved.VM {
		t.Fatalf("placements after migrate: %+v", ps)
	}
}

func TestMigrateUnknownVMFails(t *testing.T) {
	f, _ := migrateFleet(t)
	if _, err := f.Migrate("ghost", 1, 0); err == nil || !strings.Contains(err.Error(), "no such VM") {
		t.Fatalf("unknown VM: %v", err)
	}
	if _, err := f.Migrate("mover", 9, 0); err == nil || !strings.Contains(err.Error(), "no such host") {
		t.Fatalf("bad host: %v", err)
	}
	if _, err := f.Migrate("mover", -1, 0); err == nil {
		t.Fatal("negative host must fail")
	}
}

func TestMigrateToSameHostIsNoOp(t *testing.T) {
	f, p := migrateFleet(t)
	f.RunTicks(6)
	occBefore := f.Host(0).World.Machine().Sockets()[0].LLC.Occupancy(p.VM.VCPUs[0].Owner())
	moved, err := f.Migrate("mover", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if moved.VM != p.VM || moved.HostID != 0 {
		t.Fatalf("no-op migrate changed the placement: %+v", moved)
	}
	if p.VM.Down {
		t.Fatal("no-op migrate must not suspend the VM")
	}
	occAfter := f.Host(0).World.Machine().Sockets()[0].LLC.Occupancy(p.VM.VCPUs[0].Owner())
	if occAfter != occBefore {
		t.Fatalf("no-op migrate flushed the cache footprint: %d -> %d lines", occBefore, occAfter)
	}
}

func TestMigrateDestinationFullFails(t *testing.T) {
	f, _ := migrateFleet(t)
	// First-fit fills host 0's remaining three slots, then host 1's four.
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		if _, err := f.Place(Request{Spec: vm.Spec{Name: name, App: "gcc", LLCCap: 100}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Host(1).FreeCPUs(); got != 0 {
		t.Fatalf("host 1 has %d free vCPUs, expected 0", got)
	}
	_, err := f.Migrate("mover", 1, 0)
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("full destination must wrap ErrUnplaceable, got %v", err)
	}
	// Nothing moved, nothing leaked.
	if _, host := f.FindVM("mover"); host != 0 {
		t.Fatalf("failed migrate moved the VM to host %d", host)
	}
	if f.Host(1).BookedCPUs != 4 {
		t.Fatalf("failed migrate disturbed destination bookings: %d", f.Host(1).BookedCPUs)
	}
}

func TestMigratePermitPressureFailsOnKyotoHost(t *testing.T) {
	f, _ := migrateFleet(t)
	// Fill host 0's remaining slots so the hog lands on host 1, where it
	// books most of the 4 x 250 permit budget.
	for _, name := range []string{"a", "b", "c"} {
		if _, err := f.Place(Request{Spec: vm.Spec{Name: name, App: "gcc", LLCCap: 10}}); err != nil {
			t.Fatal(err)
		}
	}
	hog, err := f.Place(Request{Spec: vm.Spec{Name: "hog", App: "gcc", LLCCap: 900}})
	if err != nil {
		t.Fatal(err)
	}
	if hog.HostID != 1 {
		t.Fatalf("hog landed on host %d, want 1", hog.HostID)
	}
	if _, err := f.Migrate("mover", 1, 0); !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("permit-exhausted Kyoto destination must reject, got %v", err)
	}

	// A non-enforcing fleet ignores permit headroom on migration, as its
	// placers do at admission.
	nf, err := New(Config{Hosts: 2, Template: HostTemplate{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mover", "a", "b", "c"} {
		if _, err := nf.Place(Request{Spec: vm.Spec{Name: name, App: "gcc", LLCCap: 250}}); err != nil {
			t.Fatal(err)
		}
	}
	hog2, err := nf.Place(Request{Spec: vm.Spec{Name: "hog", App: "gcc", LLCCap: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if hog2.HostID != 1 {
		t.Fatalf("hog landed on host %d, want 1", hog2.HostID)
	}
	if _, err := nf.Migrate("mover", 1, 0); err != nil {
		t.Fatalf("unenforced fleet must allow permit-oversubscribed migration: %v", err)
	}
}

func TestMigrateDowntimeSuspendsVM(t *testing.T) {
	f, _ := migrateFleet(t)
	f.RunTicks(6)
	moved, err := f.Migrate("mover", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !moved.VM.Down {
		t.Fatal("downtime must leave the VM suspended")
	}
	base := moved.VM.Counters()
	f.Host(1).World.RunTicks(4)
	if got := moved.VM.Counters(); got.Instructions != base.Instructions {
		t.Fatalf("suspended VM retired %d instructions during its blackout", got.Instructions-base.Instructions)
	}
	f.Host(1).World.RunTicks(6)
	if moved.VM.Down {
		t.Fatal("VM still down after the blackout elapsed")
	}
	if got := moved.VM.Counters(); got.Instructions <= base.Instructions {
		t.Fatal("VM made no progress after waking")
	}
}

func TestMigrateFlushesSourceFootprint(t *testing.T) {
	f, p := migrateFleet(t)
	f.RunTicks(9)
	llc := f.Host(0).World.Machine().Sockets()[0].LLC
	owner := p.VM.VCPUs[0].Owner()
	if llc.Occupancy(owner) == 0 {
		t.Fatal("lbm built no LLC footprint in 9 ticks")
	}
	if _, err := f.Migrate("mover", 2, 0); err != nil {
		t.Fatal(err)
	}
	if got := llc.Occupancy(owner); got != 0 {
		t.Fatalf("source LLC still holds %d lines of the migrated VM", got)
	}
}
