// Placement policies: the two solution families the paper contrasts
// (contention-aware placement vs Kyoto admission) plus the contention-blind
// baseline both are measured against.
package cluster

import (
	"errors"
	"fmt"
)

// ErrUnplaceable is wrapped by Fleet.Place when no host can take a VM.
var ErrUnplaceable = errors.New("no host can take the VM")

// Placer picks a host for a request. Implementations must be
// deterministic: the same fleet state and request always yield the same
// host (ties break toward the lowest host ID), so fleet scenarios are
// reproducible bit for bit.
type Placer interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// Place returns the chosen host's ID, or an error wrapping
	// ErrUnplaceable when every host is unsuitable. It must not mutate
	// the hosts; Fleet.Place does the booking.
	Place(hosts []*Host, req Request) (int, error)
}

// FirstFit is contention-blind first-fit bin-packing on vCPU and memory —
// what a capacity-only IaaS scheduler does, and the placement Kyoto
// permits make safe.
type FirstFit struct{}

// Name implements Placer.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Placer.
func (FirstFit) Place(hosts []*Host, req Request) (int, error) {
	for _, h := range hosts {
		if h.Fits(req) {
			return h.ID, nil
		}
	}
	return -1, fmt.Errorf("first-fit: %w (need %d vCPU, %d MB)", ErrUnplaceable, req.CPUs(), req.MemMB())
}

// aggressiveness maps the ten Figure-4 applications to their measured
// real aggressiveness — the average degradation (percent) each inflicts
// across the nine co-runners, in the paper's o1 order. These are the
// weights a contention-aware placer balances; apps outside the study get
// a mid-pack default.
var aggressiveness = map[string]float64{
	"blockie": 35, // bursty wiper: #1 inflicted damage
	"lbm":     30, // steady polluter
	"mcf":     22,
	"soplex":  18,
	"milc":    15, // huge miss count, but self-thrashing
	"omnetpp": 10,
	"gcc":     8,
	"xalan":   4,
	"astar":   2,
	"bzip":    1,
}

// defaultAggressiveness is assumed for applications outside the Figure-4
// study (micro-benchmarks, povray, custom profiles).
const defaultAggressiveness = 5

// AggressivenessOf returns the Figure-4 aggressiveness weight used by the
// Spread policy for the named application.
func AggressivenessOf(app string) float64 {
	if a, ok := aggressiveness[app]; ok {
		return a
	}
	return defaultAggressiveness
}

// Spread is the related-work strawman: contention-aware placement that
// balances the fleet's aggressiveness load, steering polluters away from
// each other (and from everyone else) using the Figure-4 aggressiveness
// data. It needs global knowledge of every VM's behaviour ahead of time —
// exactly the omniscience the paper argues real IaaS operators lack — and
// its optimal form is NP-hard; this greedy online version is the standard
// approximation.
type Spread struct{}

// Name implements Placer.
func (Spread) Name() string { return "spread" }

// Place implements Placer: pick the feasible host with the least booked
// aggressiveness, lowest ID on ties.
func (Spread) Place(hosts []*Host, req Request) (int, error) {
	best, bestLoad := -1, 0.0
	for _, h := range hosts {
		if !h.Fits(req) {
			continue
		}
		load := 0.0
		for _, p := range h.vms {
			load += AggressivenessOf(p.VM.App)
		}
		if best == -1 || load < bestLoad {
			best, bestLoad = h.ID, load
		}
	}
	if best == -1 {
		return -1, fmt.Errorf("spread: %w (need %d vCPU, %d MB)", ErrUnplaceable, req.CPUs(), req.MemMB())
	}
	return best, nil
}

// Admission is Kyoto admission control: llc_cap is a first-class booked
// resource like vCPUs and memory. A VM must book a pollution permit, and
// a host whose permits are fully subscribed rejects further polluters —
// the cluster-level half of the Kyoto contract (the per-host scheduler
// enforces the permits the placement admitted). Co-location is otherwise
// free: any host with permit headroom will do, no behavioural knowledge
// required.
type Admission struct{}

// Name implements Placer.
func (Admission) Name() string { return "kyoto" }

// Place implements Placer: first host where vCPUs, memory AND the
// pollution permit fit; rejection (not overload) when permits
// oversubscribe everywhere.
func (Admission) Place(hosts []*Host, req Request) (int, error) {
	if req.LLCCap <= 0 {
		return -1, fmt.Errorf("kyoto admission: VM %q books no llc_cap permit: %w", req.Name, ErrUnplaceable)
	}
	permitShort := false
	for _, h := range hosts {
		if !h.Fits(req) {
			continue
		}
		if req.LLCCap > h.FreeLLC() {
			permitShort = true
			continue
		}
		return h.ID, nil
	}
	if permitShort {
		return -1, fmt.Errorf("kyoto admission: llc_cap %.0f oversubscribes every host's permit budget: %w", req.LLCCap, ErrUnplaceable)
	}
	return -1, fmt.Errorf("kyoto admission: %w (need %d vCPU, %d MB)", ErrUnplaceable, req.CPUs(), req.MemMB())
}

// PlacerByName returns the built-in policy with the given CLI name.
func PlacerByName(name string) (Placer, error) {
	switch name {
	case "", "first-fit", "firstfit":
		return FirstFit{}, nil
	case "spread":
		return Spread{}, nil
	case "kyoto":
		return Admission{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown placer %q (want first-fit, spread or kyoto)", name)
	}
}

// PlacerNames lists the built-in policy names for CLI help.
func PlacerNames() []string { return []string{"first-fit", "spread", "kyoto"} }
