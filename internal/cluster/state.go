package cluster

// Fleet checkpoint support: capture every host's world (plus its counter
// monitor) together with the placement bookkeeping the placer bin-packs
// on, and restore the lot onto a freshly built fleet of the identical
// configuration. CaptureState is a global barrier: every lazily lagging
// host is fast-forwarded to the fleet clock first, so the captured
// worlds all sit at one common tick boundary (the only place hv worlds
// checkpoint) and the envelope's per-host clocks agree — which is what
// lets a resumed run keep advancing lazily and still end bit-identical.

import (
	"fmt"

	"kyoto/internal/hv"
	"kyoto/internal/pmc"
)

// HostPlacementState is one VM placed on a host: its name (the key it is
// found under after the world restore) and the original request whose
// bookings Remove must return.
type HostPlacementState struct {
	Name    string  `json:"name"`
	Request Request `json:"request"`
}

// HostState is one host's serialized state.
type HostState struct {
	World  *hv.WorldState `json:"world"`
	Oracle []pmc.Counters `json:"oracle,omitempty"`

	BookedCPUs  int     `json:"booked_cpus"`
	BookedMemMB int     `json:"booked_mem_mb"`
	BookedLLC   float64 `json:"booked_llc"`

	VMs []HostPlacementState `json:"vms,omitempty"`
}

// PlacementRef identifies one fleet-level placement by host and VM name,
// preserving request order.
type PlacementRef struct {
	HostID int    `json:"host_id"`
	Name   string `json:"name"`
}

// FleetState is the complete serialized state of a Fleet between
// RunTicks calls.
type FleetState struct {
	Hosts      []HostState    `json:"hosts"`
	Placements []PlacementRef `json:"placements,omitempty"`
}

// CaptureState serializes the fleet: every host's world and monitor,
// the resource bookings, and both placement orders.
func (f *Fleet) CaptureState() (*FleetState, error) {
	f.Barrier()
	st := &FleetState{}
	for _, h := range f.hosts {
		if h.shadow {
			return nil, fmt.Errorf("cluster: host %d uses the shadow-sim monitor, whose trace buffers are not checkpointable — use the counter monitor", h.ID)
		}
		ws, err := h.World.CaptureState()
		if err != nil {
			return nil, fmt.Errorf("cluster: host %d: %w", h.ID, err)
		}
		hs := HostState{
			World:       ws,
			BookedCPUs:  h.BookedCPUs,
			BookedMemMB: h.BookedMemMB,
			BookedLLC:   h.BookedLLC,
		}
		if h.oracle != nil {
			hs.Oracle = h.oracle.CaptureState(h.World.VCPUs())
		}
		for _, p := range h.vms {
			hs.VMs = append(hs.VMs, HostPlacementState{Name: p.VM.Name, Request: p.Request})
		}
		st.Hosts = append(st.Hosts, hs)
	}
	for _, p := range f.placements {
		st.Placements = append(st.Placements, PlacementRef{HostID: p.HostID, Name: p.VM.Name})
	}
	return st, nil
}

// RestoreState overlays a captured fleet state onto a freshly built
// fleet of the identical configuration (the snapshot envelope's config
// digest enforces the identity; this method validates shape).
func (f *Fleet) RestoreState(st *FleetState) error {
	if len(st.Hosts) != len(f.hosts) {
		return fmt.Errorf("cluster: state holds %d hosts, fleet has %d", len(st.Hosts), len(f.hosts))
	}
	if len(f.placements) != 0 {
		return fmt.Errorf("cluster: restore target must be a freshly built fleet (%d placements live)", len(f.placements))
	}
	// CaptureState barriers, so a well-formed snapshot holds every host
	// at one common tick; reject anything else up front — restoring
	// misaligned clocks would silently skew every later lazy delta.
	for i := 1; i < len(st.Hosts); i++ {
		if st.Hosts[i].World == nil || st.Hosts[0].World == nil {
			continue // the nil check below reports the real error per host
		}
		if st.Hosts[i].World.Now != st.Hosts[0].World.Now {
			return fmt.Errorf("cluster: state holds host clocks at ticks %d and %d — a fleet snapshot must be captured at a barrier", st.Hosts[0].World.Now, st.Hosts[i].World.Now)
		}
	}
	for i, h := range f.hosts {
		hs := &st.Hosts[i]
		if h.shadow {
			return fmt.Errorf("cluster: host %d uses the shadow-sim monitor, which cannot restore checkpoints", h.ID)
		}
		if hs.World == nil {
			return fmt.Errorf("cluster: host %d state has no world", h.ID)
		}
		if err := h.World.RestoreState(hs.World); err != nil {
			return fmt.Errorf("cluster: host %d: %w", h.ID, err)
		}
		if h.oracle != nil {
			if err := h.oracle.RestoreState(h.World.VCPUs(), hs.Oracle); err != nil {
				return fmt.Errorf("cluster: host %d: %w", h.ID, err)
			}
		}
		h.BookedCPUs = hs.BookedCPUs
		h.BookedMemMB = hs.BookedMemMB
		h.BookedLLC = hs.BookedLLC
		for _, ps := range hs.VMs {
			domain := h.World.FindVM(ps.Name)
			if domain == nil {
				return fmt.Errorf("cluster: host %d placement references VM %q, which its world does not hold", h.ID, ps.Name)
			}
			h.vms = append(h.vms, Placement{HostID: h.ID, VM: domain, Request: ps.Request})
		}
	}
	for _, ref := range st.Placements {
		if ref.HostID < 0 || ref.HostID >= len(f.hosts) {
			return fmt.Errorf("cluster: placement references host %d, fleet has hosts 0..%d", ref.HostID, len(f.hosts)-1)
		}
		var found *Placement
		for i := range f.hosts[ref.HostID].vms {
			if f.hosts[ref.HostID].vms[i].VM.Name == ref.Name {
				found = &f.hosts[ref.HostID].vms[i]
				break
			}
		}
		if found == nil {
			return fmt.Errorf("cluster: placement references VM %q on host %d, which does not hold it", ref.Name, ref.HostID)
		}
		f.placements = append(f.placements, *found)
	}
	// The lazy clocks are relative to the restore point: every restored
	// world sits at the same (captured) tick, so the fleet starts over
	// with zero lag everywhere and advances in deltas from here. Host
	// locks order these resets against any drainer activity, and a
	// fresh-fleet clock of zero means no drainer ran before this point.
	f.sched.clock.Store(0)
	for _, h := range f.hosts {
		h.mu.Lock()
		h.ran = 0
		h.mu.Unlock()
	}
	return nil
}
