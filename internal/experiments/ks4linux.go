package experiments

import (
	"sync"

	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/monitor"
	"kyoto/internal/sched"
	"kyoto/internal/workload"
)

// KS4LinuxResult validates the paper's claim that the Kyoto approach
// "can easily be implemented within other systems" (§1): the same permit
// configuration enforced through all three patched schedulers — Xen
// credit (KS4Xen), CFS (KS4Linux) and Pisces (KS4Pisces) — protects the
// sensitive VM equally, because enforcement rides on the generic
// pollution-block flag rather than on any one policy's internals.
type KS4LinuxResult struct {
	// NormPerf[system] is vsen1's normalized performance colocated with
	// vdis1 under the Kyoto-extended scheduler.
	NormPerf map[string]float64
	// NormPerfBase[system] is the same under the unmodified scheduler.
	NormPerfBase map[string]float64
	// Systems lists presentation order.
	Systems []string
}

// KS4Linux runs the vsen1-vs-vdis1 pairing on the three systems.
func KS4Linux(seed uint64) (KS4LinuxResult, error) {
	res := KS4LinuxResult{
		NormPerf:     make(map[string]float64, 3),
		NormPerfBase: make(map[string]float64, 3),
		Systems:      []string{"KS4Xen (credit)", "KS4Linux (cfs)", "KS4Pisces (pisces)"},
	}
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return res, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	bases := map[string]func() sched.Scheduler{
		"KS4Xen (credit)":    func() sched.Scheduler { return sched.NewCredit(4) },
		"KS4Linux (cfs)":     func() sched.Scheduler { return sched.NewCFS() },
		"KS4Pisces (pisces)": func() sched.Scheduler { return sched.NewPisces() },
	}
	// The three systems are independent world pairs: fan them out. The
	// result maps are pre-sized and each worker writes distinct keys.
	var mu sync.Mutex
	err = ForEach(len(res.Systems), 0, func(i int) error {
		system := res.Systems[i]
		mk := bases[system]

		base, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return mk() },
			VMs:      fig5VMs(workload.VDis1),
			Measure:  45,
		})
		if err != nil {
			return err
		}

		k := core.New(mk())
		mon := monitor.NewOracle(k, core.Equation1)
		ks, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      fig5VMs(workload.VDis1),
			Hooks:    []hv.TickHook{mon},
			Measure:  45,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		res.NormPerfBase[system] = base.IPC("sen") / soloIPC
		res.NormPerf[system] = ks.IPC("sen") / soloIPC
		mu.Unlock()
		return nil
	})
	return res, err
}

// Table renders the cross-system comparison.
func (r KS4LinuxResult) Table() Table {
	t := Table{
		Title:   "Kyoto across virtualization systems (vsen1 vs vdis1, llc_cap 250)",
		Note:    "the same permit protects vsen1 under every patched scheduler (§1's portability claim)",
		Columns: []string{"system", "vsen1 norm perf (Kyoto)", "vsen1 norm perf (base)"},
	}
	for _, s := range r.Systems {
		t.AddRow(s, r.NormPerf[s], r.NormPerfBase[s])
	}
	return t
}
