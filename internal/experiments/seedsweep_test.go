package experiments

// Seed-sweep adapters and the seed-sweep shard determinism golden: a
// 16-seed trace sweep over the committed 22-VM trace must merge to the
// identical statistics table and fingerprint for every shard count, and
// the merged fingerprint is pinned in testdata/golden_seedsweep.json.

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"kyoto/internal/arrivals"
	"kyoto/internal/sweep"
)

var updateSeedSweepGolden = flag.Bool("update-seedsweep", false, "rewrite testdata/golden_seedsweep.json with the observed merged fingerprint")

func TestTraceSweeperSeedableMetrics(t *testing.T) {
	s, err := NewTraceSweeper(sweepTrace(), TraceSweepConfig{Hosts: 2, Seed: 5, DrainTicks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if s.MetricRows() != nil {
		t.Fatal("metric rows before merge")
	}
	if err := (sweep.Engine{}).Run(s); err != nil {
		t.Fatal(err)
	}
	rows := s.MetricRows()
	if len(rows) != 3 {
		t.Fatalf("%d metric rows, want one per placer", len(rows))
	}
	names := s.MetricNames()
	for i, row := range rows {
		if row.Arm != s.res.Rows[i].Placer {
			t.Fatalf("row %d arm %q", i, row.Arm)
		}
		if len(row.Values) != len(names) {
			t.Fatalf("arm %s: %d values for %d metrics", row.Arm, len(row.Values), len(names))
		}
	}
	// Reseeding must change the seed and nothing else.
	re, err := s.Reseed(9)
	if err != nil {
		t.Fatal(err)
	}
	rs := re.(*TraceSweeper)
	if rs.cfg.Seed != 9 || rs.cfg.Hosts != 2 || rs.cfg.DrainTicks != 6 {
		t.Fatalf("reseeded config %+v", rs.cfg)
	}
	if len(rs.Plan()) != len(s.Plan()) {
		t.Fatal("reseeded plan shape differs")
	}
}

func TestMigrationSweeperSeedableMetrics(t *testing.T) {
	s, err := NewMigrationSweeper(sweepTrace(), MigrationSweepConfig{
		Hosts: 2, Seed: 5, DrainTicks: 6, Pending: arrivals.PendingSJF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := (sweep.Engine{}).Run(s); err != nil {
		t.Fatal(err)
	}
	rows := s.MetricRows()
	if len(rows) != 9 {
		t.Fatalf("%d metric rows, want 9 combinations", len(rows))
	}
	if rows[0].Arm != "first-fit/none" {
		t.Fatalf("first arm %q", rows[0].Arm)
	}
	names := s.MetricNames()
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("metric %q missing from %v", name, names)
		return -1
	}
	for _, row := range rows {
		if len(row.Values) != len(names) {
			t.Fatalf("arm %s: %d values for %d metrics", row.Arm, len(row.Values), len(names))
		}
		// The size-class split covers placed VMs: with an all-small trace
		// the large-class tail must read 0, and the small-class tail must
		// match the pooled one.
		if got := row.Values[idx("wait_p99_large")]; got != 0 {
			t.Fatalf("arm %s: wait_p99_large %v on an all-small trace", row.Arm, got)
		}
		if small, pooled := row.Values[idx("wait_p99_small")], row.Values[idx("wait_p99")]; small != pooled {
			t.Fatalf("arm %s: wait_p99_small %v != pooled %v on an all-small trace", row.Arm, small, pooled)
		}
	}
	re, err := s.Reseed(9)
	if err != nil {
		t.Fatal(err)
	}
	if re.(*MigrationSweeper).cfg.Seed != 9 {
		t.Fatal("reseed did not take")
	}
}

// PlacedWaitsByClass splits by booked size; a mixed-size trace must
// land VMs in both classes.
func TestPlacedWaitsByClassSplitsSizes(t *testing.T) {
	res := arrivals.Result{
		Placed: 3,
		Records: []arrivals.Record{
			{VCPUs: 0, WaitTicks: 1},                 // books 1 vCPU -> small
			{VCPUs: 2, WaitTicks: 2},                 // small
			{VCPUs: 4, WaitTicks: 7},                 // large
			{VCPUs: 4, WaitTicks: 9, Rejected: true}, // dropped: excluded
		},
	}
	small, large := res.PlacedWaitsByClass()
	if len(small) != 2 || small[0] != 1 || small[1] != 2 {
		t.Fatalf("small waits %v", small)
	}
	if len(large) != 1 || large[0] != 7 {
		t.Fatalf("large waits %v", large)
	}
}

func TestSeedSweepTableRendering(t *testing.T) {
	proto, err := NewTraceSweeper(sweepTrace(), TraceSweepConfig{Hosts: 2, Seed: 1, DrainTicks: 6})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sweep.NewSeedSweeper(proto, sweep.SeedSweepConfig{Seeds: 3, Resamples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SeedSweepTable(ss.Result()); err == nil {
		t.Fatal("table rendered before merge")
	}
	if err := (sweep.Engine{}).Run(ss); err != nil {
		t.Fatal(err)
	}
	res := ss.Result()
	for _, arm := range []string{"first-fit", "spread", "kyoto"} {
		sum, err := res.Metric(arm, "p99_norm")
		if err != nil {
			t.Fatal(err)
		}
		if sum.Count() != 3 {
			t.Fatalf("arm %s has %d samples, want 3", arm, sum.Count())
		}
		for _, x := range sum.Samples() {
			if math.IsNaN(x) || x < 0 {
				t.Fatalf("arm %s p99_norm sample %v", arm, x)
			}
		}
	}
	tbl, err := SeedSweepTable(res)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"3 seeds", "kyoto", "p99_norm", "mean ± 95% CI", "bootstrap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestSeedSweepShardDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the committed 22-VM trace under 16 seeds per shard count")
	}
	tr, err := arrivals.Load(filepath.Join("..", "arrivals", "testdata", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	shardCounts := []int{1, 4}
	if w := runtime.GOMAXPROCS(0); w > 4 {
		shardCounts = append(shardCounts, w)
	}
	build := func() sweep.Sweep {
		proto, err := NewTraceSweeper(tr, TraceSweepConfig{Hosts: 2, Seed: 1, DrainTicks: 6})
		if err != nil {
			t.Fatal(err)
		}
		ss, err := sweep.NewSeedSweeper(proto, sweep.SeedSweepConfig{Seeds: 16, Resamples: 200})
		if err != nil {
			t.Fatal(err)
		}
		return ss
	}
	fp := shardGoldenCase(t, build, func(s sweep.Sweep) string {
		tbl, err := SeedSweepTable(s.(*sweep.SeedSweeper).Result())
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}, shardCounts)

	got := map[string]string{"seedsweep-trace-16x22vm": fp}
	path := filepath.Join("testdata", "golden_seedsweep.json")
	if *updateSeedSweepGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update-seedsweep to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, g := range got {
		if g != want[key] {
			t.Fatalf("%s: merged seed-sweep fingerprint %s, want %s — sharded seed sweeps no longer reproduce the committed baseline",
				key, g, want[key])
		}
	}
}
