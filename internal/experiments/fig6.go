package experiments

import (
	"fmt"

	"kyoto/internal/sched"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Fig6Counts is the colocated-disruptor sweep (the paper's x axis).
var Fig6Counts = []int{1, 2, 4, 6, 8, 10, 13, 14, 15}

// Fig6Result is the §4.3 scalability study: vsen1 (booked 250) co-located
// with N vdis1 VMs (booked 50 each) under KS4Xen. The paper's claim:
// vsen1's performance is kept whatever the number of disruptors.
type Fig6Result struct {
	// Counts echoes Fig6Counts.
	Counts []int
	// NormPerf aligns with Counts: vsen1 IPC / solo IPC under KS4Xen.
	NormPerf []float64
	// NormPerfXCS is the plain-XCS contrast (not in the paper's figure,
	// but the baseline that shows what Kyoto prevents).
	NormPerfXCS []float64
}

// Fig6 runs the sweep.
func Fig6(seed uint64) (Fig6Result, error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return Fig6Result{}, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	res := Fig6Result{
		Counts:      Fig6Counts,
		NormPerf:    make([]float64, len(Fig6Counts)),
		NormPerfXCS: make([]float64, len(Fig6Counts)),
	}
	// Every sweep point is an independent pair of worlds: fan them out.
	err = ForEach(len(Fig6Counts), 0, func(i int) error {
		n := Fig6Counts[i]
		vms := []vm.Spec{
			{Name: "sen", App: workload.VSen1, Pins: []int{0}, LLCCap: Fig5LLCCap},
		}
		for j := 0; j < n; j++ {
			vms = append(vms, vm.Spec{
				Name:   fmt.Sprintf("dis%d", j),
				App:    workload.VDis1,
				LLCCap: Fig6DisLLCCap,
			})
		}

		k, hooks := ks4xen(4)
		ks, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      vms,
			Hooks:    hooks,
			Measure:  45,
		})
		if err != nil {
			return err
		}
		res.NormPerf[i] = ks.IPC("sen") / soloIPC

		xcs, err := Run(Scenario{Seed: seed, VMs: vms, Measure: 45})
		if err != nil {
			return err
		}
		res.NormPerfXCS[i] = xcs.IPC("sen") / soloIPC
		return nil
	})
	if err != nil {
		return Fig6Result{}, err
	}
	return res, nil
}

// Table renders the sweep.
func (r Fig6Result) Table() Table {
	t := Table{
		Title:   "Figure 6: KS4Xen scalability — vsen1 normalized perf vs # colocated 50-cap vdis1",
		Note:    "paper shows ~1.0 across the sweep; XCS column added as contrast",
		Columns: []string{"# disruptor vCPUs", "vsen1 norm perf (KS4Xen)", "vsen1 norm perf (XCS)"},
	}
	for i, n := range r.Counts {
		t.AddRow(n, r.NormPerf[i], r.NormPerfXCS[i])
	}
	return t
}
