package experiments

// Trace sweep: the cluster-scoped experiment the lifecycle layer unlocks.
// One arrival/departure trace is replayed through each of the three
// placement policies on identically seeded fleets, and per-policy
// rejection rate, utilization and the fleet-wide distribution of
// normalized performance (per-VM lifetime IPC over its solo IPC) are
// reported — the paper's contrast, under churn: contention-blind
// first-fit and contention-aware spread run unprotected, while the Kyoto
// placer books llc_cap permits at admission and enforces them on-host.
//
// The sweep is expressed as a sweep.Sweep (TraceSweeper): solo-baseline
// jobs (one per distinct app class) plus one replay job per placer, so it
// can be fanned out across processes with -shard/-merge and merged
// bit-identically to the in-process run.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"kyoto/internal/arrivals"
	"kyoto/internal/cache"
	"kyoto/internal/cluster"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
)

// TraceSweepConfig parameterizes a sweep.
type TraceSweepConfig struct {
	// Hosts is the fleet size each policy gets (default 4).
	Hosts int
	// Seed seeds every fleet and the solo baselines (default 1).
	Seed uint64
	// Workers caps each fleet's RunTicks concurrency (0 = GOMAXPROCS).
	Workers int
	// Lockstep forces the eager fleet engine (every host ticked every
	// tick) instead of the lazy event-horizon default. Schedule-only:
	// results are bit-identical either way, so like Workers it stays out
	// of the config digest. It exists for baseline timing comparisons.
	Lockstep bool
	// DrainTicks extends the replay past the last event so VMs that
	// never depart accumulate a window (default DefaultMeasureTicks).
	DrainTicks int
	// Overrides optionally makes the fleets heterogeneous; the same
	// overrides apply under every policy.
	Overrides map[int]cluster.HostOverride
	// Fidelity selects the cache-model tier for every fleet and the solo
	// baselines (default cache.FidelityExact). It enters the config
	// digest, so shards run at different fidelities refuse to merge.
	Fidelity cache.Fidelity
}

// TraceSweepRow is one policy's outcome over the trace.
type TraceSweepRow struct {
	// Placer is the policy name; Enforced reports whether per-host Kyoto
	// permit enforcement was active (the kyoto placer's contract).
	Placer   string
	Enforced bool
	// Submitted/Placed/Rejected count VMs; RejectionRate is
	// Rejected/Submitted.
	Submitted     int
	Placed        int
	Rejected      int
	RejectionRate float64
	// CPUUtilization is the time-weighted mean booked vCPU share.
	CPUUtilization float64
	// P50, P95, P99 are tail-oriented percentiles of per-VM normalized
	// performance (lifetime IPC over the app's solo IPC, 1.0 = as if
	// alone): PXX is the normalized performance that XX% of placed VMs
	// meet or exceed, so P99 is the floor the slowest 1% boundary
	// provides — where churn-driven unpredictability lives.
	P50 float64
	P95 float64
	P99 float64
	// Replay is the full per-VM outcome for deeper analysis.
	Replay arrivals.Result
}

// TraceSweepResult is the whole sweep.
type TraceSweepResult struct {
	Hosts int
	Rows  []TraceSweepRow
}

// tracePlacers are the swept policies: the two unprotected families the
// paper contrasts, then Kyoto admission with on-host enforcement.
var tracePlacers = []struct {
	placer   cluster.Placer
	enforced bool
}{
	{cluster.FirstFit{}, false},
	{cluster.Spread{}, false},
	{cluster.Admission{}, true},
}

// soloPayload is the canonical JSON result of one solo-baseline job.
type soloPayload struct {
	App string  `json:"app"`
	IPC float64 `json:"ipc"`
}

// traceArmPayload is the canonical JSON result of one placer replay job.
type traceArmPayload struct {
	Placer   string          `json:"placer"`
	Enforced bool            `json:"enforced"`
	Replay   arrivals.Result `json:"replay"`
}

// TraceSweeper is the shardable form of TraceSweep: it implements
// sweep.Sweep, so its jobs can be planned, run shard-by-shard across
// processes, and merged into the same TraceSweepResult the in-process
// run produces. Use NewTraceSweeper, then either sweep.Engine.Run for a
// single process or RunShard/Merge for a distributed one; Result returns
// the merged outcome.
type TraceSweeper struct {
	tr   arrivals.Trace
	cfg  TraceSweepConfig
	apps []string
	res  *TraceSweepResult
}

// NewTraceSweeper validates the trace, applies the config defaults and
// returns the shardable sweep.
func NewTraceSweeper(tr arrivals.Trace, cfg TraceSweepConfig) (*TraceSweeper, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DrainTicks == 0 {
		cfg.DrainTicks = DefaultMeasureTicks
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &TraceSweeper{tr: tr, cfg: cfg, apps: traceApps(tr)}, nil
}

// Name implements sweep.Sweep.
func (s *TraceSweeper) Name() string { return "trace-sweep" }

// ConfigFingerprint implements sweep.ConfigFingerprinter: a digest of
// the trace and every result-shaping knob (Workers is excluded — it only
// changes scheduling, never results).
func (s *TraceSweeper) ConfigFingerprint() string {
	return sweepConfigFingerprint(s.tr, struct {
		Hosts      int
		Seed       uint64
		DrainTicks int
		Overrides  map[int]cluster.HostOverride
		Fidelity   string `json:",omitempty"`
	}{s.cfg.Hosts, s.cfg.Seed, s.cfg.DrainTicks, s.cfg.Overrides, fidelityTag(s.cfg.Fidelity)})
}

// Plan implements sweep.Sweep: one solo-baseline job per distinct app
// class, then one replay job per placement policy.
func (s *TraceSweeper) Plan() []sweep.Job {
	jobs := make([]sweep.Job, 0, len(s.apps)+len(tracePlacers))
	for _, app := range s.apps {
		jobs = append(jobs, sweep.Job{
			Sweep: s.Name(), Key: "solo/" + app, Index: len(jobs), Seed: s.cfg.Seed,
			Params: map[string]string{"app": app},
		})
	}
	for _, arm := range tracePlacers {
		jobs = append(jobs, sweep.Job{
			Sweep: s.Name(), Key: "arm/" + arm.placer.Name(), Index: len(jobs), Seed: s.cfg.Seed,
			Params: map[string]string{"placer": arm.placer.Name(), "enforced": fmt.Sprint(arm.enforced)},
		})
	}
	return jobs
}

// Run implements sweep.Sweep.
func (s *TraceSweeper) Run(job sweep.Job) (json.RawMessage, error) {
	if app, ok := strings.CutPrefix(job.Key, "solo/"); ok {
		ipc, err := soloIPC(app, s.cfg.Seed, s.cfg.Fidelity)
		if err != nil {
			return nil, err
		}
		return json.Marshal(soloPayload{App: app, IPC: ipc})
	}
	name, ok := strings.CutPrefix(job.Key, "arm/")
	if !ok {
		return nil, fmt.Errorf("unknown job key %q", job.Key)
	}
	arm, err := tracePlacerByName(name)
	if err != nil {
		return nil, err
	}
	f, err := cluster.New(cluster.Config{
		Hosts:     s.cfg.Hosts,
		Template:  cluster.HostTemplate{Seed: s.cfg.Seed, EnableKyoto: arm.enforced, Fidelity: s.cfg.Fidelity},
		Overrides: s.cfg.Overrides,
		Placer:    arm.placer,
		Workers:   s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	replay, err := arrivals.Replay(f, s.tr, arrivals.Options{DrainTicks: s.cfg.DrainTicks, Lockstep: s.cfg.Lockstep})
	if err != nil {
		return nil, fmt.Errorf("placer %s: %w", name, err)
	}
	return json.Marshal(traceArmPayload{Placer: name, Enforced: arm.enforced, Replay: replay})
}

// Merge implements sweep.Sweep: solo payloads become the normalization
// baselines, arm payloads become rows with their tail percentiles.
func (s *TraceSweeper) Merge(payloads []json.RawMessage) error {
	solo := make(map[string]float64, len(s.apps))
	for i, app := range s.apps {
		var p soloPayload
		if err := json.Unmarshal(payloads[i], &p); err != nil {
			return fmt.Errorf("solo/%s payload: %w", app, err)
		}
		solo[p.App] = p.IPC
	}
	res := &TraceSweepResult{Hosts: s.cfg.Hosts}
	for i := range tracePlacers {
		var p traceArmPayload
		if err := json.Unmarshal(payloads[len(s.apps)+i], &p); err != nil {
			return fmt.Errorf("arm payload %d: %w", i, err)
		}
		res.Rows = append(res.Rows, traceRow(p, solo))
	}
	s.res = res
	return nil
}

// Result returns the merged sweep outcome; it is nil until Merge ran.
func (s *TraceSweeper) Result() *TraceSweepResult { return s.res }

// traceRow folds one arm payload into its result row, normalizing
// against the solo baselines (shared by Merge and the two-tier exact
// confirmation pass).
func traceRow(p traceArmPayload, solo map[string]float64) TraceSweepRow {
	row := TraceSweepRow{
		Placer:         p.Placer,
		Enforced:       p.Enforced,
		Submitted:      len(p.Replay.Records),
		Placed:         p.Replay.Placed,
		Rejected:       p.Replay.Rejected,
		RejectionRate:  p.Replay.RejectionRate(),
		CPUUtilization: p.Replay.CPUUtilization,
		Replay:         p.Replay,
	}
	if norm := normalizedPerf(p.Replay, solo); len(norm) > 0 {
		// PXX = the perf floor XX% of VMs meet, i.e. the (100-XX)th
		// percentile of the higher-is-better distribution. Errors are
		// impossible here (non-empty sample, valid p).
		row.P50, _ = stats.Percentile(norm, 50)
		row.P95, _ = stats.Percentile(norm, 5)
		row.P99, _ = stats.Percentile(norm, 1)
	}
	return row
}

// TraceSweep replays the trace through all three placement policies and
// reports per-policy rejection, utilization and normalized-performance
// percentiles. Fleets are seeded identically, so rows differ only by
// policy; the whole sweep is deterministic for a given trace and config.
// It is the single-process path through TraceSweeper — sharded runs of
// the same sweep merge to the identical result.
func TraceSweep(tr arrivals.Trace, cfg TraceSweepConfig) (*TraceSweepResult, error) {
	s, err := NewTraceSweeper(tr, cfg)
	if err != nil {
		return nil, err
	}
	if err := (sweep.Engine{Workers: cfg.Workers}).Run(s); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// sweepConfigFingerprint digests a trace plus a config struct into the
// envelope's configuration check. Marshal errors degrade to a sentinel
// (still caught at merge: both sides would need the same failure).
func sweepConfigFingerprint(tr arrivals.Trace, cfg interface{}) string {
	data, err := json.Marshal(struct {
		Trace arrivals.Trace `json:"trace"`
		Cfg   interface{}    `json:"cfg"`
	}{tr, cfg})
	if err != nil {
		return "unmarshalable-config"
	}
	return sweep.FingerprintPayload(data)
}

// tracePlacerByName resolves a swept placement arm.
func tracePlacerByName(name string) (struct {
	placer   cluster.Placer
	enforced bool
}, error) {
	for _, arm := range tracePlacers {
		if arm.placer.Name() == name {
			return arm, nil
		}
	}
	return tracePlacers[0], fmt.Errorf("unknown placer arm %q", name)
}

// traceApps returns the distinct app classes of the trace, sorted — the
// solo-baseline jobs of a sweep plan.
func traceApps(tr arrivals.Trace) []string {
	seen := make(map[string]bool)
	apps := make([]string, 0, 8)
	for _, e := range tr.Events {
		if !seen[e.App] {
			seen[e.App] = true
			apps = append(apps, e.App)
		}
	}
	sort.Strings(apps)
	return apps
}

// soloIPC runs one app class alone on a template host and returns its
// IPC — the denominator of normalized performance. The baseline runs on
// the same fidelity tier as the fleets it normalizes, so a tier's
// systematic bias cancels out of the ratio.
func soloIPC(app string, seed uint64, fid cache.Fidelity) (float64, error) {
	sc := soloScenario(app, seed)
	sc.Fidelity = fid
	r, err := Run(sc)
	if err != nil {
		return 0, fmt.Errorf("solo baseline %s: %w", app, err)
	}
	return r.IPC("solo"), nil
}

// normalizedPerf computes per-VM lifetime IPC over the app's solo IPC for
// every placed VM with a measurable window, in record order.
func normalizedPerf(replay arrivals.Result, solo map[string]float64) []float64 {
	var norm []float64
	for _, rec := range replay.Records {
		base := solo[rec.App]
		if rec.Rejected || base == 0 || rec.Counters.UnhaltedCycles == 0 {
			continue
		}
		norm = append(norm, rec.Counters.IPC()/base)
	}
	return norm
}

// Table renders the sweep as the rejection-rate / p99 comparison the
// kyotosim -trace CLI prints.
func (r TraceSweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Trace sweep: 3 placers, %d hosts", r.Hosts),
		Note: "normalized perf = per-VM lifetime IPC / solo IPC (1.0 = as if alone); pXX = floor XX% of VMs meet; " +
			"first-fit and spread run unprotected, kyoto books and enforces llc_cap permits",
		Columns: []string{"placer", "enforced", "placed", "rejected", "rej rate", "cpu util", "p50 norm", "p95 norm", "p99 norm"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Placer, row.Enforced, row.Placed, row.Rejected,
			fmt.Sprintf("%.1f%%", 100*row.RejectionRate),
			fmt.Sprintf("%.1f%%", 100*row.CPUUtilization),
			row.P50, row.P95, row.P99)
	}
	return t
}
