package experiments

// Trace sweep: the cluster-scoped experiment the lifecycle layer unlocks.
// One arrival/departure trace is replayed through each of the three
// placement policies on identically seeded fleets, and per-policy
// rejection rate, utilization and the fleet-wide distribution of
// normalized performance (per-VM lifetime IPC over its solo IPC) are
// reported — the paper's contrast, under churn: contention-blind
// first-fit and contention-aware spread run unprotected, while the Kyoto
// placer books llc_cap permits at admission and enforces them on-host.

import (
	"fmt"
	"sort"

	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
	"kyoto/internal/stats"
)

// TraceSweepConfig parameterizes a sweep.
type TraceSweepConfig struct {
	// Hosts is the fleet size each policy gets (default 4).
	Hosts int
	// Seed seeds every fleet and the solo baselines (default 1).
	Seed uint64
	// Workers caps each fleet's RunTicks concurrency (0 = GOMAXPROCS).
	Workers int
	// DrainTicks extends the replay past the last event so VMs that
	// never depart accumulate a window (default DefaultMeasureTicks).
	DrainTicks int
	// Overrides optionally makes the fleets heterogeneous; the same
	// overrides apply under every policy.
	Overrides map[int]cluster.HostOverride
}

// TraceSweepRow is one policy's outcome over the trace.
type TraceSweepRow struct {
	// Placer is the policy name; Enforced reports whether per-host Kyoto
	// permit enforcement was active (the kyoto placer's contract).
	Placer   string
	Enforced bool
	// Submitted/Placed/Rejected count VMs; RejectionRate is
	// Rejected/Submitted.
	Submitted     int
	Placed        int
	Rejected      int
	RejectionRate float64
	// CPUUtilization is the time-weighted mean booked vCPU share.
	CPUUtilization float64
	// P50, P95, P99 are tail-oriented percentiles of per-VM normalized
	// performance (lifetime IPC over the app's solo IPC, 1.0 = as if
	// alone): PXX is the normalized performance that XX% of placed VMs
	// meet or exceed, so P99 is the floor the slowest 1% boundary
	// provides — where churn-driven unpredictability lives.
	P50 float64
	P95 float64
	P99 float64
	// Replay is the full per-VM outcome for deeper analysis.
	Replay arrivals.Result
}

// TraceSweepResult is the whole sweep.
type TraceSweepResult struct {
	Hosts int
	Rows  []TraceSweepRow
}

// tracePlacers are the swept policies: the two unprotected families the
// paper contrasts, then Kyoto admission with on-host enforcement.
var tracePlacers = []struct {
	placer   cluster.Placer
	enforced bool
}{
	{cluster.FirstFit{}, false},
	{cluster.Spread{}, false},
	{cluster.Admission{}, true},
}

// TraceSweep replays the trace through all three placement policies and
// reports per-policy rejection, utilization and normalized-performance
// percentiles. Fleets are seeded identically, so rows differ only by
// policy; the whole sweep is deterministic for a given trace and config.
func TraceSweep(tr arrivals.Trace, cfg TraceSweepConfig) (*TraceSweepResult, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DrainTicks == 0 {
		cfg.DrainTicks = DefaultMeasureTicks
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	solo, err := soloBaselines(tr, cfg.Seed)
	if err != nil {
		return nil, err
	}

	res := &TraceSweepResult{Hosts: cfg.Hosts}
	rows := make([]TraceSweepRow, len(tracePlacers))
	err = ForEach(len(tracePlacers), cfg.Workers, func(i int) error {
		arm := tracePlacers[i]
		f, err := cluster.New(cluster.Config{
			Hosts:     cfg.Hosts,
			Template:  cluster.HostTemplate{Seed: cfg.Seed, EnableKyoto: arm.enforced},
			Overrides: cfg.Overrides,
			Placer:    arm.placer,
			Workers:   cfg.Workers,
		})
		if err != nil {
			return err
		}
		replay, err := arrivals.Replay(f, tr, arrivals.Options{DrainTicks: cfg.DrainTicks})
		if err != nil {
			return fmt.Errorf("placer %s: %w", arm.placer.Name(), err)
		}
		row := TraceSweepRow{
			Placer:         arm.placer.Name(),
			Enforced:       arm.enforced,
			Submitted:      len(replay.Records),
			Placed:         replay.Placed,
			Rejected:       replay.Rejected,
			RejectionRate:  replay.RejectionRate(),
			CPUUtilization: replay.CPUUtilization,
			Replay:         replay,
		}
		var norm []float64
		for _, rec := range replay.Records {
			base := solo[rec.App]
			if rec.Rejected || base == 0 || rec.Counters.UnhaltedCycles == 0 {
				continue
			}
			norm = append(norm, rec.Counters.IPC()/base)
		}
		if len(norm) > 0 {
			// PXX = the perf floor XX% of VMs meet, i.e. the (100-XX)th
			// percentile of the higher-is-better distribution. Errors are
			// impossible here (non-empty sample, valid p).
			row.P50, _ = stats.Percentile(norm, 50)
			row.P95, _ = stats.Percentile(norm, 5)
			row.P99, _ = stats.Percentile(norm, 1)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// soloBaselines runs each distinct app class of the trace alone on a
// template host, returning its solo IPC — the denominator of normalized
// performance. Baselines fan out across cores.
func soloBaselines(tr arrivals.Trace, seed uint64) (map[string]float64, error) {
	apps := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, e := range tr.Events {
		if !seen[e.App] {
			seen[e.App] = true
			apps = append(apps, e.App)
		}
	}
	sort.Strings(apps)
	ipcs := make([]float64, len(apps))
	err := ForEach(len(apps), 0, func(i int) error {
		r, err := Run(soloScenario(apps[i], seed))
		if err != nil {
			return fmt.Errorf("solo baseline %s: %w", apps[i], err)
		}
		ipcs[i] = r.IPC("solo")
		return nil
	})
	if err != nil {
		return nil, err
	}
	solo := make(map[string]float64, len(apps))
	for i, app := range apps {
		solo[app] = ipcs[i]
	}
	return solo, nil
}

// Table renders the sweep as the rejection-rate / p99 comparison the
// kyotosim -trace CLI prints.
func (r TraceSweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Trace sweep: 3 placers, %d hosts", r.Hosts),
		Note: "normalized perf = per-VM lifetime IPC / solo IPC (1.0 = as if alone); pXX = floor XX% of VMs meet; " +
			"first-fit and spread run unprotected, kyoto books and enforces llc_cap permits",
		Columns: []string{"placer", "enforced", "placed", "rejected", "rej rate", "cpu util", "p50 norm", "p95 norm", "p99 norm"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Placer, row.Enforced, row.Placed, row.Rejected,
			fmt.Sprintf("%.1f%%", 100*row.RejectionRate),
			fmt.Sprintf("%.1f%%", 100*row.CPUUtilization),
			row.P50, row.P95, row.P99)
	}
	return t
}
