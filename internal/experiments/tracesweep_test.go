package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"kyoto/internal/arrivals"
)

// sweepTrace is a small churn trace sized for a 2-host fleet: eight
// permit-booking VMs with staggered lifetimes plus one permit-less VM
// that only Kyoto admission rejects. It lives in crossval.go because the
// cross-validation harness must run the same committed golden.
func sweepTrace() arrivals.Trace { return GoldenSweepTrace() }

func TestTraceSweepComparesPlacers(t *testing.T) {
	if testing.Short() {
		t.Skip("trace sweep replays three fleets")
	}
	res, err := TraceSweep(sweepTrace(), TraceSweepConfig{Hosts: 2, Seed: 5, DrainTicks: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	byName := map[string]TraceSweepRow{}
	for _, r := range res.Rows {
		if r.Submitted != 9 {
			t.Fatalf("placer %s saw %d submissions", r.Placer, r.Submitted)
		}
		if r.CPUUtilization <= 0 || r.CPUUtilization > 1 {
			t.Fatalf("placer %s utilization %v", r.Placer, r.CPUUtilization)
		}
		byName[r.Placer] = r
	}
	ff, ok1 := byName["first-fit"]
	sp, ok2 := byName["spread"]
	ky, ok3 := byName["kyoto"]
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing placer rows: %v", byName)
	}
	if ff.Enforced || sp.Enforced || !ky.Enforced {
		t.Fatal("enforcement flags wrong: only the kyoto arm runs enforced")
	}
	// The permit-less VM is placeable by the capacity-only policies but
	// must be rejected by Kyoto admission.
	if ff.Rejected != 0 || sp.Rejected != 0 {
		t.Fatalf("capacity policies rejected VMs on an uncontended fleet: ff=%d sp=%d", ff.Rejected, sp.Rejected)
	}
	if ky.Rejected < 1 {
		t.Fatal("kyoto admission must reject the permit-less VM")
	}
	for name, r := range byName {
		// pXX is the floor XX% of VMs meet, so p99 <= p95 <= p50.
		if r.Placed > 0 && (r.P50 <= 0 || r.P99 <= 0 || r.P99 > r.P95 || r.P95 > r.P50) {
			t.Fatalf("%s: implausible normalized percentiles p50=%v p95=%v p99=%v", name, r.P50, r.P95, r.P99)
		}
	}
	// Determinism: the same sweep again is identical record for record.
	again, err := TraceSweep(sweepTrace(), TraceSweepConfig{Hosts: 2, Seed: 5, DrainTicks: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i].Replay.Fingerprint() != again.Rows[i].Replay.Fingerprint() {
			t.Fatalf("sweep row %d not reproducible", i)
		}
	}

	tbl := res.Table().String()
	for _, want := range []string{"first-fit", "spread", "kyoto", "rej rate", "p99 norm"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, tbl)
		}
	}
}

func TestTraceSweepOnCommittedExample(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the committed 22-VM example trace on three 4-host fleets")
	}
	tr, err := arrivals.Load(filepath.Join("..", "arrivals", "testdata", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TraceSweep(tr, TraceSweepConfig{Hosts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Submitted != len(tr.Events) {
			t.Fatalf("placer %s: %d submitted, want %d", r.Placer, r.Submitted, len(tr.Events))
		}
		if r.Placed == 0 {
			t.Fatalf("placer %s placed nothing", r.Placer)
		}
	}
}
