package experiments

// Warm-start sweep forking: the Figure-1-style contention arms all share
// the same warm-up prefix (the victim running solo until caches and
// scheduler reach steady state), so instead of re-simulating that prefix
// per arm, the prefix runs once, is checkpointed through
// internal/snapshot, and every arm forks from the checkpoint — restore,
// add its disruptor, measure. Because restore is bit-identical, the
// forked arms produce exactly the counters the cold arms do; the sweep
// verifies that per arm and reports the measured wall-clock speedup,
// which BENCH_kyoto.json tracks commit over commit.

import (
	"fmt"
	"time"

	"kyoto/internal/cache"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/snapshot"
	"kyoto/internal/vm"
)

// WarmStartConfig shapes the forked contention sweep.
type WarmStartConfig struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// Fidelity selects the cache-model tier (default cache.FidelityExact).
	Fidelity cache.Fidelity
	// WarmupTicks is the shared solo prefix length (default 30).
	WarmupTicks int
	// MeasureTicks is the per-arm measurement window (default 30).
	MeasureTicks int
	// Victim is the sensitive app warmed up solo on core 0 (default gcc).
	Victim string
	// Disruptors are the per-arm co-runners on core 1 (default the
	// built-in SPEC-style mix).
	Disruptors []string
}

// withDefaults fills the zero fields.
func (c WarmStartConfig) withDefaults() WarmStartConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WarmupTicks == 0 {
		c.WarmupTicks = 30
	}
	if c.MeasureTicks == 0 {
		c.MeasureTicks = 30
	}
	if c.Victim == "" {
		c.Victim = "gcc"
	}
	if len(c.Disruptors) == 0 {
		c.Disruptors = []string{"lbm", "omnetpp", "blockie", "povray", "micro-c2-dis", "micro-c3-dis"}
	}
	return c
}

// WarmStartArm is one disruptor's measured outcome.
type WarmStartArm struct {
	// Disruptor is the co-runner app.
	Disruptor string
	// VictimIPC is the victim's IPC over the measurement window.
	VictimIPC float64
	// Fingerprint folds every VM's end-of-run counters and punishments —
	// the identity the warm and cold paths are compared on.
	Fingerprint string
}

// WarmStartResult holds both paths' arms and the fork accounting.
type WarmStartResult struct {
	// Warm and Cold are the per-arm outcomes of the forked and the
	// straight-through path, in disruptor order.
	Warm, Cold []WarmStartArm
	// WarmupTicks and MeasureTicks echo the config.
	WarmupTicks, MeasureTicks int
	// TicksCold and TicksWarm count simulated ticks per path: cold pays
	// the warm-up once per arm, warm pays it once in total.
	TicksCold, TicksWarm int
	// ColdDuration and WarmDuration are the measured wall clocks.
	ColdDuration, WarmDuration time.Duration
	// Speedup is ColdDuration / WarmDuration.
	Speedup float64
}

// BitIdentical reports whether every forked arm reproduced its cold
// arm's fingerprint exactly.
func (r *WarmStartResult) BitIdentical() bool {
	if len(r.Warm) != len(r.Cold) {
		return false
	}
	for i := range r.Warm {
		if r.Warm[i] != r.Cold[i] {
			return false
		}
	}
	return true
}

// warmStartWorld builds the sweep's empty world.
func warmStartWorld(cfg WarmStartConfig) (*hv.World, error) {
	return hv.New(hv.Config{
		Machine:  machine.TableOne(cfg.Seed),
		Seed:     cfg.Seed,
		Fidelity: cfg.Fidelity,
	}, sched.NewCredit(machine.TableOne(cfg.Seed).Sockets*machine.TableOne(cfg.Seed).CoresPerSocket))
}

// warmStartFingerprint folds the world's outcome.
func warmStartFingerprint(w *hv.World) string {
	h := pmc.FoldSeed
	for _, v := range w.VCPUs() {
		h = v.Counters.Fold(h)
	}
	for _, m := range w.VMs() {
		h = pmc.FoldUint64(h, m.Punishments)
	}
	return fmt.Sprintf("%016x", h)
}

// warmStartMeasure adds the arm's disruptor to a warmed-up world and
// runs the measurement window, returning the arm outcome.
func warmStartMeasure(w *hv.World, cfg WarmStartConfig, disruptor string) (WarmStartArm, error) {
	victim := w.FindVM("victim")
	if victim == nil {
		return WarmStartArm{}, fmt.Errorf("warmstart: warmed-up world has no victim VM")
	}
	before := victim.Counters()
	if _, err := w.AddVM(vm.Spec{Name: "dis", App: disruptor, Pins: []int{1}}); err != nil {
		return WarmStartArm{}, err
	}
	w.RunTicks(cfg.MeasureTicks)
	delta := victim.Counters().Delta(before)
	return WarmStartArm{
		Disruptor:   disruptor,
		VictimIPC:   delta.IPC(),
		Fingerprint: warmStartFingerprint(w),
	}, nil
}

// WarmStartSweep runs the contention arms twice — cold (every arm
// re-simulates the warm-up) and warm (all arms fork from one checkpoint)
// — verifies per-arm bit-identity, and reports the measured speedup.
// Arms run serially in both paths so the wall-clock ratio measures the
// fork itself, not scheduling noise.
func WarmStartSweep(cfg WarmStartConfig) (*WarmStartResult, error) {
	cfg = cfg.withDefaults()
	digest, err := snapshot.ConfigDigest(cfg)
	if err != nil {
		return nil, err
	}
	res := &WarmStartResult{
		WarmupTicks:  cfg.WarmupTicks,
		MeasureTicks: cfg.MeasureTicks,
		TicksCold:    len(cfg.Disruptors) * (cfg.WarmupTicks + cfg.MeasureTicks),
		TicksWarm:    cfg.WarmupTicks + len(cfg.Disruptors)*cfg.MeasureTicks,
	}

	// Cold path: each arm re-simulates the shared prefix.
	start := time.Now()
	for _, dis := range cfg.Disruptors {
		w, err := warmStartWorld(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := w.AddVM(vm.Spec{Name: "victim", App: cfg.Victim, Pins: []int{0}}); err != nil {
			return nil, err
		}
		w.RunTicks(cfg.WarmupTicks)
		arm, err := warmStartMeasure(w, cfg, dis)
		if err != nil {
			return nil, err
		}
		res.Cold = append(res.Cold, arm)
	}
	res.ColdDuration = time.Since(start)

	// Warm path: one prefix, one checkpoint, one fork per arm.
	start = time.Now()
	prefix, err := warmStartWorld(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := prefix.AddVM(vm.Spec{Name: "victim", App: cfg.Victim, Pins: []int{0}}); err != nil {
		return nil, err
	}
	prefix.RunTicks(cfg.WarmupTicks)
	ckpt, err := snapshot.CaptureWorld(prefix, nil, digest)
	if err != nil {
		return nil, err
	}
	for _, dis := range cfg.Disruptors {
		w, err := warmStartWorld(cfg)
		if err != nil {
			return nil, err
		}
		if err := snapshot.RestoreWorld(w, nil, digest, ckpt); err != nil {
			return nil, err
		}
		arm, err := warmStartMeasure(w, cfg, dis)
		if err != nil {
			return nil, err
		}
		res.Warm = append(res.Warm, arm)
	}
	res.WarmDuration = time.Since(start)

	if res.WarmDuration > 0 {
		res.Speedup = float64(res.ColdDuration) / float64(res.WarmDuration)
	}
	if !res.BitIdentical() {
		return res, fmt.Errorf("warmstart: forked arms diverged from cold arms — snapshot restore is not bit-identical")
	}
	return res, nil
}

// Table renders the sweep: per-arm victim IPC with the warm/cold
// fingerprints, and a footer row with the fork accounting.
func (r *WarmStartResult) Table() Table {
	t := Table{
		Title:   "Warm-start forking: contention arms forked from one checkpointed warm-up",
		Note:    fmt.Sprintf("warmup %d ticks shared across %d arms; cold %d simulated ticks vs warm %d; wall speedup %.2fx", r.WarmupTicks, len(r.Warm), r.TicksCold, r.TicksWarm, r.Speedup),
		Columns: []string{"disruptor", "victim IPC", "fingerprint", "forked == cold"},
	}
	for i, arm := range r.Warm {
		t.AddRow(arm.Disruptor, arm.VictimIPC, arm.Fingerprint, arm == r.Cold[i])
	}
	return t
}
