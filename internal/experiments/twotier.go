package experiments

// Two-tier sweeps: broad on the analytic fast tier, confirmed on the
// exact tier. The analytic tier trades per-access cache simulation for a
// once-per-tick occupancy recurrence (internal/cache.AnalyticLLC), which
// makes it cheap enough to sweep configurations wholesale — but its miss
// rates are modeled, not simulated. The two-tier mode uses each tier for
// what it is good at: the analytic pass ranks every arm, and only the
// top-k arms are re-run on the exact tier, so the expensive model is
// spent where the decision actually lands. Both passes are deterministic,
// so a two-tier run is reproducible end to end.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"kyoto/internal/arrivals"
	"kyoto/internal/cache"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
	"kyoto/internal/workload"
)

// DefaultConfirmTopK is how many leading arms a two-tier sweep re-runs
// on the exact tier when the caller does not say.
const DefaultConfirmTopK = 1

// TwoTierTraceResult pairs the broad analytic trace sweep with the exact
// re-runs of its leading arms.
type TwoTierTraceResult struct {
	// Analytic is the full broad-pass sweep result.
	Analytic *TraceSweepResult
	// TopK is the number of arms confirmed exact.
	TopK int
	// Confirmed holds the exact-tier rows of the top-k arms, in the
	// analytic pass's p99 ranking order (best floor first).
	Confirmed []TraceSweepRow
}

// TwoTierTraceSweep runs the three-placer trace sweep two-tier: the
// whole sweep on the analytic tier, then the topK arms with the best
// analytic p99 normalized-performance floor again on the exact tier
// (with exact solo baselines, so the confirmation rows normalize against
// the same tier they ran on). topK <= 0 selects DefaultConfirmTopK.
func TwoTierTraceSweep(tr arrivals.Trace, cfg TraceSweepConfig, topK int) (*TwoTierTraceResult, error) {
	if topK <= 0 {
		topK = DefaultConfirmTopK
	}
	acfg := cfg
	acfg.Fidelity = cache.FidelityAnalytic
	ares, err := TraceSweep(tr, acfg)
	if err != nil {
		return nil, err
	}
	ranked := append([]TraceSweepRow(nil), ares.Rows...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].P99 > ranked[j].P99 })
	if topK > len(ranked) {
		topK = len(ranked)
	}

	ecfg := cfg
	ecfg.Fidelity = cache.FidelityExact
	es, err := NewTraceSweeper(tr, ecfg)
	if err != nil {
		return nil, err
	}
	// Exact solo baselines plus the top-k arm replays, as the exact
	// sweeper's own jobs, fanned out like any sweep.
	keys := make([]string, 0, len(es.apps)+topK)
	for _, app := range es.apps {
		keys = append(keys, "solo/"+app)
	}
	for i := 0; i < topK; i++ {
		keys = append(keys, "arm/"+ranked[i].Placer)
	}
	raws := make([]json.RawMessage, len(keys))
	if err := ForEach(len(keys), cfg.Workers, func(i int) error {
		raw, err := es.Run(sweep.Job{Sweep: es.Name(), Key: keys[i]})
		raws[i] = raw
		return err
	}); err != nil {
		return nil, err
	}
	solo := make(map[string]float64, len(es.apps))
	for i := range es.apps {
		var p soloPayload
		if err := json.Unmarshal(raws[i], &p); err != nil {
			return nil, fmt.Errorf("%s payload: %w", keys[i], err)
		}
		solo[p.App] = p.IPC
	}
	res := &TwoTierTraceResult{Analytic: ares, TopK: topK}
	for i := len(es.apps); i < len(keys); i++ {
		var p traceArmPayload
		if err := json.Unmarshal(raws[i], &p); err != nil {
			return nil, fmt.Errorf("%s payload: %w", keys[i], err)
		}
		res.Confirmed = append(res.Confirmed, traceRow(p, solo))
	}
	return res, nil
}

// Tables renders the broad analytic table and the exact-confirmation
// comparison.
func (r TwoTierTraceResult) Tables() []Table {
	broad := r.Analytic.Table()
	broad.Title += " [analytic broad pass]"
	confirm := Table{
		Title: fmt.Sprintf("Two-tier confirmation: top %d arm(s) re-run exact", r.TopK),
		Note: "the analytic pass ranks arms by p99 normalized perf; only the leaders pay for the exact tier\n" +
			"|err| = |analytic - exact| of the p99 floor",
		Columns: []string{"placer", "p99 analytic", "p99 exact", "p99 |err|", "rej rate analytic", "rej rate exact"},
	}
	byPlacer := make(map[string]TraceSweepRow, len(r.Analytic.Rows))
	for _, row := range r.Analytic.Rows {
		byPlacer[row.Placer] = row
	}
	for _, row := range r.Confirmed {
		a := byPlacer[row.Placer]
		confirm.AddRow(row.Placer, a.P99, row.P99, math.Abs(a.P99-row.P99),
			fmt.Sprintf("%.1f%%", 100*a.RejectionRate),
			fmt.Sprintf("%.1f%%", 100*row.RejectionRate))
	}
	return []Table{broad, confirm}
}

// TwoTierFig4Result pairs the broad analytic Figure 4 study with the
// exact re-measurement of its most aggressive applications.
type TwoTierFig4Result struct {
	// Analytic is the full broad-pass indicator study.
	Analytic Fig4Result
	// TopK is the number of attackers confirmed exact.
	TopK int
	// Attackers are the confirmed apps, most analytic-aggressive first.
	Attackers []string
	// ExactAggressiveness is each confirmed attacker's aggressiveness
	// re-measured on the exact tier (average degradation inflicted across
	// the nine co-runners, percent).
	ExactAggressiveness map[string]float64
}

// TwoTierFig4 runs the Figure 4 indicator study two-tier: the whole
// 10-solo + 90-pair sweep on the analytic tier, then only the topK most
// aggressive attackers' rows (their 9 pairings each, plus the exact solo
// baselines) on the exact tier — k*9+10 exact worlds instead of 100.
// topK <= 0 selects DefaultConfirmTopK.
func TwoTierFig4(seed uint64, topK int) (*TwoTierFig4Result, error) {
	if topK <= 0 {
		topK = DefaultConfirmTopK
	}
	s := NewFig4SweeperFidelity(seed, cache.FidelityAnalytic)
	if err := (sweep.Engine{}).Run(s); err != nil {
		return nil, err
	}
	ares := *s.Result()
	if topK > len(ares.Apps) {
		topK = len(ares.Apps)
	}
	attackers := append([]string(nil), ares.Apps[:topK]...)

	apps := workload.Figure4Apps()
	keys := make([]string, 0, len(apps)+topK*(len(apps)-1))
	for _, app := range apps {
		keys = append(keys, "solo/"+app)
	}
	for _, a := range attackers {
		for _, b := range apps {
			if a != b {
				keys = append(keys, "pair/"+a+"/"+b)
			}
		}
	}
	raws := make([]json.RawMessage, len(keys))
	if err := ForEach(len(keys), 0, func(i int) error {
		raw, err := fig4RunJob(sweep.Job{Sweep: "fig4", Key: keys[i]}, seed, cache.FidelityExact)
		raws[i] = raw
		return err
	}); err != nil {
		return nil, err
	}
	soloIPC := make(map[string]float64, len(apps))
	for i := range apps {
		var p fig4SoloPayload
		if err := json.Unmarshal(raws[i], &p); err != nil {
			return nil, fmt.Errorf("%s payload: %w", keys[i], err)
		}
		soloIPC[p.App] = p.IPC
	}
	inflicted := make(map[string][]float64, topK)
	for i := len(apps); i < len(keys); i++ {
		var p fig4PairPayload
		if err := json.Unmarshal(raws[i], &p); err != nil {
			return nil, fmt.Errorf("%s payload: %w", keys[i], err)
		}
		deg := stats.DegradationPercent(soloIPC[p.Victim], p.VictimIPC)
		if deg < 0 {
			deg = 0
		}
		inflicted[p.Attacker] = append(inflicted[p.Attacker], deg)
	}
	exact := make(map[string]float64, topK)
	for _, a := range attackers {
		exact[a] = stats.Mean(inflicted[a])
	}
	return &TwoTierFig4Result{Analytic: ares, TopK: topK, Attackers: attackers, ExactAggressiveness: exact}, nil
}

// Tables renders the broad analytic study and the exact-confirmation
// comparison.
func (r TwoTierFig4Result) Tables() []Table {
	broad := r.Analytic.Table()
	broad.Title += " [analytic broad pass]"
	confirm := Table{
		Title:   fmt.Sprintf("Two-tier confirmation: top %d attacker(s) re-run exact", r.TopK),
		Note:    "aggressiveness = avg % degradation inflicted across the 9 co-runners; |err| in percentage points",
		Columns: []string{"app", "aggressiveness analytic", "aggressiveness exact", "|err| pts"},
	}
	for _, a := range r.Attackers {
		confirm.AddRow(a, r.Analytic.Aggressiveness[a], r.ExactAggressiveness[a],
			math.Abs(r.Analytic.Aggressiveness[a]-r.ExactAggressiveness[a]))
	}
	return []Table{broad, confirm}
}
