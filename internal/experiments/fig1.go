package experiments

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/stats"
	"kyoto/internal/vm"
)

// ExecMode is one of the paper's §2.2.4 co-location modes.
type ExecMode int

// Execution modes of Figure 1.
const (
	// Alternative time-shares the representative and disruptive VMs on
	// the same core.
	Alternative ExecMode = iota + 1
	// Parallel runs them simultaneously on different cores of the same
	// socket (shared LLC).
	Parallel
	// Combined does both: one disruptor shares the core, a second
	// disruptor runs on a neighbouring core.
	Combined
)

// String returns the mode name.
func (m ExecMode) String() string {
	switch m {
	case Alternative:
		return "alternative"
	case Parallel:
		return "parallel"
	case Combined:
		return "combined"
	default:
		return fmt.Sprintf("ExecMode(%d)", int(m))
	}
}

// Fig1Result is the §2.2.5 contention assessment: performance degradation
// of each class's representative VM against each class's disruptive VM
// under the three execution modes.
type Fig1Result struct {
	// Degradation[mode][rep][dis] is the rep's IPC degradation percent.
	Degradation map[ExecMode]map[string]map[string]float64
	// Reps and Dis list the VM labels in class order (v1..v3).
	Reps []string
	Dis  []string
}

// microRep and microDis name the §2.2 micro-benchmark profiles per class.
var (
	microReps = []string{"micro-c1-rep", "micro-c2-rep", "micro-c3-rep"}
	microDis  = []string{"micro-c1-dis", "micro-c2-dis", "micro-c3-dis"}
)

// Fig1 runs the 3 reps x (1 alone + 3 modes x 3 disruptors) grid.
func Fig1(seed uint64) (Fig1Result, error) {
	return Fig1Fidelity(seed, cache.FidelityExact)
}

// Fig1Fidelity is Fig1 with an explicit cache-model tier; the
// cross-validation harness runs the grid on both tiers and compares.
func Fig1Fidelity(seed uint64, fid cache.Fidelity) (Fig1Result, error) {
	modes := []ExecMode{Alternative, Parallel, Combined}

	// Baselines: each rep alone on core 0.
	solos := make([]Scenario, len(microReps))
	for i, rep := range microReps {
		solos[i] = soloScenario(rep, seed)
		solos[i].Fidelity = fid
	}
	soloRes, err := RunAll(solos)
	if err != nil {
		return Fig1Result{}, err
	}
	soloIPC := make(map[string]float64, len(microReps))
	for i, rep := range microReps {
		soloIPC[rep] = soloRes[i].PerVM["solo"].IPC()
	}

	type key struct {
		mode ExecMode
		rep  string
		dis  string
	}
	var keys []key
	var scenarios []Scenario
	for _, mode := range modes {
		for _, rep := range microReps {
			for _, dis := range microDis {
				keys = append(keys, key{mode, rep, dis})
				sc := fig1Scenario(mode, rep, dis, seed)
				sc.Fidelity = fid
				scenarios = append(scenarios, sc)
			}
		}
	}
	results, err := RunAll(scenarios)
	if err != nil {
		return Fig1Result{}, err
	}

	out := Fig1Result{
		Degradation: make(map[ExecMode]map[string]map[string]float64, len(modes)),
		Reps:        microReps,
		Dis:         microDis,
	}
	for _, mode := range modes {
		out.Degradation[mode] = make(map[string]map[string]float64, len(microReps))
		for _, rep := range microReps {
			out.Degradation[mode][rep] = make(map[string]float64, len(microDis))
		}
	}
	for i, k := range keys {
		deg := stats.DegradationPercent(soloIPC[k.rep], results[i].IPC("rep"))
		if deg < 0 {
			deg = 0
		}
		out.Degradation[k.mode][k.rep][k.dis] = deg
	}
	return out, nil
}

// fig1Scenario builds one cell's scenario.
func fig1Scenario(mode ExecMode, rep, dis string, seed uint64) Scenario {
	var vms []vm.Spec
	switch mode {
	case Alternative:
		vms = []vm.Spec{
			pinned("rep", rep, 0),
			pinned("dis", dis, 0),
		}
	case Parallel:
		vms = []vm.Spec{
			pinned("rep", rep, 0),
			pinned("dis", dis, 1),
		}
	default: // Combined
		vms = []vm.Spec{
			pinned("rep", rep, 0),
			pinned("dis-alt", dis, 0),
			pinned("dis-par", dis, 1),
		}
	}
	s := Scenario{Seed: seed, VMs: vms}
	// Alternative/combined time-share one core: keep the same measured
	// window but longer warmup so both VMs settle into slice rotation.
	s.Warmup = 15
	s.Measure = 42
	return s
}

// Tables renders the three panels of Figure 1.
func (r Fig1Result) Tables() []Table {
	out := make([]Table, 0, 3)
	for _, mode := range []ExecMode{Alternative, Parallel, Combined} {
		t := Table{
			Title:   fmt.Sprintf("Figure 1 (%s execution): %% degradation of representative VMs", mode),
			Columns: []string{"rep \\ dis", "v1dis (C1)", "v2dis (C2)", "v3dis (C3)"},
		}
		for _, rep := range r.Reps {
			row := []interface{}{rep}
			for _, dis := range r.Dis {
				row = append(row, r.Degradation[mode][rep][dis])
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	return out
}
