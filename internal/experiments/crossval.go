package experiments

// Cross-validation of the analytic fast tier against the exact model.
//
// The analytic tier (internal/cache.AnalyticLLC + cpu.RunAnalytic) is
// only useful if its errors are known and bounded, so this harness runs
// the repo's committed golden configurations — the Figure 1 contention
// grid, the Figure 4 indicator study, and the trace/migration sweeps
// whose shard fingerprints are pinned in testdata/golden_sweep.json —
// on BOTH tiers and reports the analytic tier's error on each headline
// metric against a declared budget. TestCrossValidationBudgets asserts
// every budget holds, so the budgets below are commitments, not
// documentation: loosening one is a reviewable diff.
//
// Budgets are set from measured errors with roughly 2x headroom (the
// measured values are recorded next to each constant), wide enough to
// absorb drift from unrelated tuning but tight enough that a broken
// analytic model — occupancy leak, wrong miss-rate split, broken
// renormalization — blows through them immediately.

import (
	"fmt"
	"math"

	"kyoto/internal/arrivals"
	"kyoto/internal/cache"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
	"kyoto/internal/vm"
)

// Declared error budgets, one per cross-validated metric. Units match
// the metric: percentage points for degradation/aggressiveness and
// rejection rates, absolute normalized-performance units for p99
// floors, absolute fractions for LLC occupancy shares.
const (
	// BudgetFig1MeanPts bounds the mean |degradation error| across the
	// 27 Figure 1 cells (measured ~4.0 pts).
	BudgetFig1MeanPts = 10.0
	// BudgetFig1MaxPts bounds the worst single Figure 1 cell (measured
	// ~22.6 pts; the alternative-mode cells are the hardest because the
	// analytic tier models slice rotation with epoch-grained occupancy).
	BudgetFig1MaxPts = 40.0
	// BudgetFig4MeanPts bounds the mean |aggressiveness error| across
	// the ten Figure 4 applications (measured ~4.5 pts).
	BudgetFig4MeanPts = 10.0
	// BudgetFig4RankDisagreement bounds 1 - KendallTau between the two
	// tiers' aggressiveness rankings (measured ~0.18, i.e. tau ~0.82;
	// with ten apps tau is quantized in steps of ~0.044). The ranking is
	// what the two-tier sweep trusts the fast tier for, so it gets its
	// own budget independent of the magnitudes.
	BudgetFig4RankDisagreement = 0.35
	// BudgetTraceP99 bounds the per-placer |p99 normalized-performance
	// error| on the committed trace-sweep golden (measured ~0.13).
	BudgetTraceP99 = 0.30
	// BudgetTraceRejectionPts bounds the per-placer |rejection-rate
	// error| in percentage points on the same golden (measured 0.0:
	// admission decisions depend on permits and capacity, which the
	// analytic tier reproduces exactly).
	BudgetTraceRejectionPts = 5.0
	// BudgetMigrationP99 bounds the per-combination |p99 error| on the
	// committed migration-sweep golden (measured ~0.13).
	BudgetMigrationP99 = 0.30
	// BudgetMigrationRejectionPts is BudgetTraceRejectionPts for the
	// migration sweep's nine rebalancer x placer combinations.
	BudgetMigrationRejectionPts = 5.0
	// BudgetOccupancyFraction bounds the per-VM |LLC occupancy fraction
	// error| of a contended four-app world (measured ~0.12). Occupancy
	// is the analytic tier's state variable, so this is the most direct
	// check of the Markov recurrence itself.
	BudgetOccupancyFraction = 0.25
)

// GoldenSweepTrace returns the committed churn trace behind the
// trace-sweep-2h and migration-sweep-2h shard goldens: eight
// permit-booking VMs with staggered lifetimes on a 2-host fleet, plus
// one permit-less VM that only Kyoto admission rejects. The shard
// determinism test pins the sweeps' merged fingerprints over exactly
// this trace, which is what makes it a golden the cross-validation
// harness must run.
func GoldenSweepTrace() arrivals.Trace {
	return arrivals.Trace{Events: []arrivals.Event{
		{Submit: 0, Lifetime: 18, Name: "a", App: "gcc", LLCCap: 250},
		{Submit: 0, Lifetime: 24, Name: "b", App: "lbm", LLCCap: 250},
		{Submit: 3, Lifetime: 18, Name: "c", App: "omnetpp", LLCCap: 250},
		{Submit: 6, Lifetime: 21, Name: "d", App: "blockie", LLCCap: 250},
		{Submit: 9, Lifetime: 15, Name: "e", App: "astar", LLCCap: 250},
		{Submit: 12, Name: "noperm", App: "mcf"},
		{Submit: 15, Lifetime: 15, Name: "f", App: "lbm", LLCCap: 250},
		{Submit: 18, Lifetime: 12, Name: "g", App: "gcc", LLCCap: 250},
		{Submit: 21, Lifetime: 12, Name: "h", App: "bzip", LLCCap: 250},
	}}
}

// GoldenTraceSweepConfig is the trace-sweep-2h golden configuration.
func GoldenTraceSweepConfig() TraceSweepConfig {
	return TraceSweepConfig{Hosts: 2, Seed: 5, DrainTicks: 6}
}

// GoldenMigrationSweepConfig is the migration-sweep-2h golden
// configuration.
func GoldenMigrationSweepConfig() MigrationSweepConfig {
	return MigrationSweepConfig{
		Hosts: 2, Seed: 5, DrainTicks: 6, BigLLCFactor: 2,
		Pending: arrivals.PendingFIFO, Downtime: 2,
	}
}

// CrossValCheck is one cross-validated metric: the figure it came from,
// both tiers' values (aggregates where the figure has many cells), the
// error and its declared budget.
type CrossValCheck struct {
	Figure string
	Metric string
	// Exact and Analytic are the metric's value on each tier. For
	// aggregate metrics (mean/max over cells) they are the values of
	// the worst cell, so the table stays readable.
	Exact    float64
	Analytic float64
	// Err is the analytic tier's error in the metric's own units.
	Err float64
	// Budget is the declared bound Err must stay under.
	Budget float64
}

// Pass reports whether the error is within budget.
func (c CrossValCheck) Pass() bool { return c.Err <= c.Budget }

// CrossValResult is the harness output: every check, in figure order.
type CrossValResult struct {
	Checks []CrossValCheck
}

// Pass reports whether every check is within budget.
func (r *CrossValResult) Pass() bool {
	for _, c := range r.Checks {
		if !c.Pass() {
			return false
		}
	}
	return true
}

// Failures returns the checks that blew their budget.
func (r *CrossValResult) Failures() []CrossValCheck {
	var out []CrossValCheck
	for _, c := range r.Checks {
		if !c.Pass() {
			out = append(out, c)
		}
	}
	return out
}

// Table renders the per-figure, per-metric error report.
func (r *CrossValResult) Table() Table {
	t := Table{
		Title: "Cross-validation: analytic tier vs exact model on the committed goldens",
		Note: "err is the analytic tier's error in the metric's units; budget is the declared bound\n" +
			"(asserted by TestCrossValidationBudgets); exact/analytic are the worst cell's values",
		Columns: []string{"figure", "metric", "exact", "analytic", "err", "budget", "ok"},
	}
	for _, c := range r.Checks {
		ok := "pass"
		if !c.Pass() {
			ok = "FAIL"
		}
		t.AddRow(c.Figure, c.Metric, c.Exact, c.Analytic, c.Err, c.Budget, ok)
	}
	return t
}

// CrossValFigures lists the figures CrossValidate knows, in run order.
var CrossValFigures = []string{"fig1", "fig4", "trace", "migration", "occupancy"}

// CrossValidate runs the requested golden figures on both fidelity
// tiers and returns the per-metric error report. No figures means all
// of CrossValFigures. seed drives the Figure 1/4 grids and the
// occupancy scenario; the trace and migration sweeps run their golden
// configurations verbatim (those pin their own seed, because the shard
// determinism test pins fingerprints over exactly that configuration).
func CrossValidate(seed uint64, figures ...string) (*CrossValResult, error) {
	if len(figures) == 0 {
		figures = CrossValFigures
	}
	res := &CrossValResult{}
	for _, fig := range figures {
		var err error
		switch fig {
		case "fig1":
			err = crossValFig1(res, seed)
		case "fig4":
			err = crossValFig4(res, seed)
		case "trace":
			err = crossValTrace(res)
		case "migration":
			err = crossValMigration(res)
		case "occupancy":
			err = crossValOccupancy(res, seed)
		default:
			return nil, fmt.Errorf("crossval: unknown figure %q (have %v)", fig, CrossValFigures)
		}
		if err != nil {
			return nil, fmt.Errorf("crossval %s: %w", fig, err)
		}
	}
	return res, nil
}

// crossValFig1 compares the 27 degradation cells of the Figure 1
// contention grid: mean and worst-cell absolute error in points.
func crossValFig1(res *CrossValResult, seed uint64) error {
	exact, err := Fig1Fidelity(seed, cache.FidelityExact)
	if err != nil {
		return err
	}
	analytic, err := Fig1Fidelity(seed, cache.FidelityAnalytic)
	if err != nil {
		return err
	}
	var sum, worst float64
	var n int
	var worstE, worstA float64
	for mode, reps := range exact.Degradation {
		for rep, diss := range reps {
			for dis, e := range diss {
				a := analytic.Degradation[mode][rep][dis]
				d := math.Abs(a - e)
				sum += d
				n++
				if d > worst {
					worst, worstE, worstA = d, e, a
				}
			}
		}
	}
	res.Checks = append(res.Checks,
		CrossValCheck{
			Figure: "fig1", Metric: "degradation mean |err| (pts)",
			Exact: worstE, Analytic: worstA, Err: sum / float64(n), Budget: BudgetFig1MeanPts,
		},
		CrossValCheck{
			Figure: "fig1", Metric: "degradation max |err| (pts)",
			Exact: worstE, Analytic: worstA, Err: worst, Budget: BudgetFig1MaxPts,
		})
	return nil
}

// crossValFig4 compares aggressiveness magnitudes and, separately, the
// aggressiveness ranking (what the two-tier sweep trusts the fast tier
// for) between the tiers.
func crossValFig4(res *CrossValResult, seed uint64) error {
	run := func(fid cache.Fidelity) (*Fig4Result, error) {
		s := NewFig4SweeperFidelity(seed, fid)
		if err := (sweep.Engine{}).Run(s); err != nil {
			return nil, err
		}
		return s.Result(), nil
	}
	exact, err := run(cache.FidelityExact)
	if err != nil {
		return err
	}
	analytic, err := run(cache.FidelityAnalytic)
	if err != nil {
		return err
	}
	var sum, worst, worstE, worstA float64
	for _, app := range exact.Apps {
		e, a := exact.Aggressiveness[app], analytic.Aggressiveness[app]
		d := math.Abs(a - e)
		sum += d
		if d > worst {
			worst, worstE, worstA = d, e, a
		}
	}
	tau, err := stats.KendallTau(stats.RankByValue(analytic.Aggressiveness),
		stats.RankByValue(exact.Aggressiveness))
	if err != nil {
		return err
	}
	res.Checks = append(res.Checks,
		CrossValCheck{
			Figure: "fig4", Metric: "aggressiveness mean |err| (pts)",
			Exact: worstE, Analytic: worstA, Err: sum / float64(len(exact.Apps)), Budget: BudgetFig4MeanPts,
		},
		CrossValCheck{
			Figure: "fig4", Metric: "ranking disagreement (1 - Kendall tau)",
			Exact: 1, Analytic: tau, Err: 1 - tau, Budget: BudgetFig4RankDisagreement,
		})
	return nil
}

// crossValTrace compares the three placer arms of the committed
// trace-sweep golden: worst per-placer p99 normalized-performance error
// and worst rejection-rate error.
func crossValTrace(res *CrossValResult) error {
	run := func(fid cache.Fidelity) (*TraceSweepResult, error) {
		cfg := GoldenTraceSweepConfig()
		cfg.Fidelity = fid
		return TraceSweep(GoldenSweepTrace(), cfg)
	}
	exact, err := run(cache.FidelityExact)
	if err != nil {
		return err
	}
	analytic, err := run(cache.FidelityAnalytic)
	if err != nil {
		return err
	}
	byPlacer := make(map[string]TraceSweepRow, len(analytic.Rows))
	for _, row := range analytic.Rows {
		byPlacer[row.Placer] = row
	}
	var worstP99, p99E, p99A, worstRej, rejE, rejA float64
	for _, e := range exact.Rows {
		a := byPlacer[e.Placer]
		if d := math.Abs(a.P99 - e.P99); d > worstP99 {
			worstP99, p99E, p99A = d, e.P99, a.P99
		}
		if d := 100 * math.Abs(a.RejectionRate-e.RejectionRate); d > worstRej {
			worstRej, rejE, rejA = d, 100*e.RejectionRate, 100*a.RejectionRate
		}
	}
	res.Checks = append(res.Checks,
		CrossValCheck{
			Figure: "trace-sweep-2h", Metric: "p99 normalized perf max |err|",
			Exact: p99E, Analytic: p99A, Err: worstP99, Budget: BudgetTraceP99,
		},
		CrossValCheck{
			Figure: "trace-sweep-2h", Metric: "rejection rate max |err| (pts)",
			Exact: rejE, Analytic: rejA, Err: worstRej, Budget: BudgetTraceRejectionPts,
		})
	return nil
}

// crossValMigration is crossValTrace for the nine rebalancer x placer
// combinations of the committed migration-sweep golden.
func crossValMigration(res *CrossValResult) error {
	run := func(fid cache.Fidelity) (*MigrationSweepResult, error) {
		cfg := GoldenMigrationSweepConfig()
		cfg.Fidelity = fid
		return MigrationSweep(GoldenSweepTrace(), cfg)
	}
	exact, err := run(cache.FidelityExact)
	if err != nil {
		return err
	}
	analytic, err := run(cache.FidelityAnalytic)
	if err != nil {
		return err
	}
	type comb struct{ placer, rebalancer string }
	byComb := make(map[comb]MigrationSweepRow, len(analytic.Rows))
	for _, row := range analytic.Rows {
		byComb[comb{row.Placer, row.Rebalancer}] = row
	}
	var worstP99, p99E, p99A, worstRej, rejE, rejA float64
	for _, e := range exact.Rows {
		a := byComb[comb{e.Placer, e.Rebalancer}]
		if d := math.Abs(a.P99 - e.P99); d > worstP99 {
			worstP99, p99E, p99A = d, e.P99, a.P99
		}
		if d := 100 * math.Abs(a.RejectionRate-e.RejectionRate); d > worstRej {
			worstRej, rejE, rejA = d, 100*e.RejectionRate, 100*a.RejectionRate
		}
	}
	res.Checks = append(res.Checks,
		CrossValCheck{
			Figure: "migration-sweep-2h", Metric: "p99 normalized perf max |err|",
			Exact: p99E, Analytic: p99A, Err: worstP99, Budget: BudgetMigrationP99,
		},
		CrossValCheck{
			Figure: "migration-sweep-2h", Metric: "rejection rate max |err| (pts)",
			Exact: rejE, Analytic: rejA, Err: worstRej, Budget: BudgetMigrationRejectionPts,
		})
	return nil
}

// crossValOccupancy contends four Figure 4 applications on one machine
// and compares each VM's end-of-run LLC occupancy fraction between the
// tiers — the most direct check of the Markov occupancy recurrence,
// with no performance model in between.
func crossValOccupancy(res *CrossValResult, seed uint64) error {
	scenario := func(fid cache.Fidelity) Scenario {
		return Scenario{
			Seed: seed,
			VMs: []vm.Spec{
				pinned("mcf", "mcf", 0),
				pinned("gcc", "gcc", 1),
				pinned("blockie", "blockie", 2),
				pinned("astar", "astar", 3),
			},
			Fidelity: fid,
		}
	}
	occupancy := func(fid cache.Fidelity) (map[string]float64, error) {
		r, err := Run(scenario(fid))
		if err != nil {
			return nil, err
		}
		out := make(map[string]float64, len(r.World.VMs()))
		for _, m := range r.World.VMs() {
			var frac float64
			for _, v := range m.VCPUs {
				frac += r.World.LLCOccupancyFraction(v)
			}
			out[m.Name] = frac
		}
		return out, nil
	}
	exact, err := occupancy(cache.FidelityExact)
	if err != nil {
		return err
	}
	analytic, err := occupancy(cache.FidelityAnalytic)
	if err != nil {
		return err
	}
	var worst, worstE, worstA float64
	for name, e := range exact {
		a := analytic[name]
		if d := math.Abs(a - e); d > worst {
			worst, worstE, worstA = d, e, a
		}
	}
	res.Checks = append(res.Checks, CrossValCheck{
		Figure: "occupancy", Metric: "LLC occupancy fraction max |err|",
		Exact: worstE, Analytic: worstA, Err: worst, Budget: BudgetOccupancyFraction,
	})
	return nil
}
