package experiments

import (
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// fig8Work is the fixed instruction budget whose completion time Figure 8
// measures (~30 solo ticks of gcc on the scaled machine).
const fig8Work = 25_000_000

// fig8MaxTicks bounds the runs.
const fig8MaxTicks = 2_000

// Fig8Result is the §4.4 Pisces comparison: execution time of vsen1 as a
// Pisces enclave, alone vs co-located with a vdis1 enclave on the same
// socket, under plain Pisces and under KS4Pisces. Pisces removes
// hypervisor-level interference by construction, but the shared LLC still
// leaks ~24% performance; KS4Pisces closes the gap.
type Fig8Result struct {
	// ExecTimeMillis[system][situation] in model milliseconds;
	// system is "pisces" or "ks4pisces", situation "alone"/"colocated".
	PiscesAlone        float64
	PiscesColocated    float64
	KS4PiscesAlone     float64
	KS4PiscesColocated float64
}

// Fig8 runs the four bars concurrently (each is an independent world).
func Fig8(seed uint64) (Fig8Result, error) {
	var res Fig8Result
	bars := []struct {
		colocated, kyoto bool
		out              *float64
	}{
		{false, false, &res.PiscesAlone},
		{true, false, &res.PiscesColocated},
		{false, true, &res.KS4PiscesAlone},
		{true, true, &res.KS4PiscesColocated},
	}
	err := ForEach(len(bars), 0, func(i int) error {
		v, err := fig8Run(seed, bars[i].colocated, bars[i].kyoto)
		if err != nil {
			return err
		}
		*bars[i].out = v
		return nil
	})
	return res, err
}

// fig8Run measures vsen1's completion time for fig8Work instructions.
func fig8Run(seed uint64, colocated, kyoto bool) (float64, error) {
	var s sched.Scheduler = sched.NewPisces()
	var hooks []hv.TickHook
	if kyoto {
		k := core.New(s)
		hooks = append(hooks, monitor.NewOracle(k, core.Equation1))
		s = k
	}
	w, err := hv.New(hv.Config{Machine: machine.TableOne(seed), Seed: seed}, s)
	if err != nil {
		return 0, err
	}
	sen := vm.Spec{Name: "sen", App: workload.VSen1, Pins: []int{0}, LLCCap: Fig5LLCCap}
	if _, err := w.AddVM(sen); err != nil {
		return 0, err
	}
	if colocated {
		dis := vm.Spec{Name: "dis", App: workload.VDis1, Pins: []int{1}, LLCCap: Fig5LLCCap}
		if _, err := w.AddVM(dis); err != nil {
			return 0, err
		}
	}
	for _, h := range hooks {
		w.AddHook(h)
	}
	senVM := w.FindVM("sen")
	ticks := w.RunUntil(func(w *hv.World) bool {
		return senVM.Counters().Instructions >= fig8Work
	}, fig8MaxTicks)
	return float64(ticks) * machine.TickMillis, nil
}

// Table renders the four bars.
func (r Fig8Result) Table() Table {
	t := Table{
		Title:   "Figure 8: Kyoto vs Pisces — vsen1 execution time (model ms)",
		Note:    "Pisces isolates everything but the LLC; KS4Pisces adds the pollution permit",
		Columns: []string{"system", "vsen1 alone", "vsen1 colocated (vdis1)", "slowdown %"},
	}
	slow := func(alone, col float64) float64 {
		if alone == 0 {
			return 0
		}
		return 100 * (col - alone) / alone
	}
	t.AddRow("Pisces", r.PiscesAlone, r.PiscesColocated, slow(r.PiscesAlone, r.PiscesColocated))
	t.AddRow("KS4Pisces", r.KS4PiscesAlone, r.KS4PiscesColocated, slow(r.KS4PiscesAlone, r.KS4PiscesColocated))
	return t
}
