package experiments

import (
	"strings"
	"testing"

	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Note: "n", Columns: []string{"a", "bb"}}
	tbl.AddRow("x", 1.5)
	tbl.AddRow("longer", 2.0)
	s := tbl.String()
	for _, want := range []string{"== T ==", "n", "a", "bb", "x", "1.5", "longer", "2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	tests := map[float64]string{
		1.5:   "1.5",
		2.0:   "2",
		0:     "0",
		-0.4:  "-0.4",
		10.25: "10.25",
	}
	for in, want := range tests {
		if got := formatFloat(in); got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTable1ContainsPaperRows(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"Main memory", "L1 cache", "L2 cache", "LLC", "Processor"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestTable2MapsPaperVMs(t *testing.T) {
	s := Table2().String()
	for _, want := range []string{"vsen1", "gcc", "vdis2", "blockie", "sensitive", "disruptive"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 2 missing %q", want)
		}
	}
}

func TestRunProducesDeltas(t *testing.T) {
	r, err := Run(Scenario{
		Seed:    1,
		VMs:     []vm.Spec{pinned("v", "povray", 0)},
		Warmup:  2,
		Measure: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.PerVM["v"].Instructions == 0 {
		t.Fatal("no measured progress")
	}
	if r.IPC("v") <= 0 {
		t.Fatal("IPC must be positive")
	}
	if r.MeasureTicks != 3 {
		t.Fatalf("measure ticks = %d", r.MeasureTicks)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	if _, err := Run(Scenario{VMs: []vm.Spec{{Name: "x", App: "nope"}}}); err == nil {
		t.Fatal("unknown app must fail")
	}
}

func TestRunAllOrderAndParallelism(t *testing.T) {
	scenarios := []Scenario{
		{Seed: 1, VMs: []vm.Spec{pinned("v", "povray", 0)}, Warmup: 1, Measure: 2},
		{Seed: 2, VMs: []vm.Spec{pinned("v", "hmmer", 0)}, Warmup: 1, Measure: 2},
	}
	rs, err := RunAll(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("results = %d", len(rs))
	}
	if rs[0].World.FindVM("v").App != "povray" || rs[1].World.FindVM("v").App != "hmmer" {
		t.Fatal("result order scrambled")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	_, err := RunAll([]Scenario{{VMs: []vm.Spec{{Name: "x", App: "nope"}}}})
	if err == nil {
		t.Fatal("error lost")
	}
}

func TestRunDeterminism(t *testing.T) {
	s := Scenario{
		Seed:    9,
		VMs:     []vm.Spec{pinned("a", "gcc", 0), pinned("b", "lbm", 1)},
		Warmup:  3,
		Measure: 6,
	}
	r1, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r1.PerVM["a"] != r2.PerVM["a"] || r1.PerVM["b"] != r2.PerVM["b"] {
		t.Fatal("same scenario diverged")
	}
}

func TestMigrationHookBounces(t *testing.T) {
	mcfg := machine.R420(1)
	w, err := hv.New(hv.Config{Machine: mcfg, Seed: 1}, newCreditSched(8))
	if err != nil {
		t.Fatal(err)
	}
	d := w.MustAddVM(pinned("v", "lbm", 0))
	hook := NewMigrationHook(d.VCPUs[0], 0, 4, 3, 2, 1)
	w.AddHook(hook)
	w.RunTicks(30)
	if hook.Migrations < 4 {
		t.Fatalf("migrations = %d, want several", hook.Migrations)
	}
	if d.Counters().RemoteAccesses == 0 {
		t.Fatal("exiled vCPU must have made remote accesses")
	}
}

func TestFig2ShapesQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 timeline runs are expensive; run without -short")
	}
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	alone := r.Series["alone"]
	if len(alone) != Fig2Ticks {
		t.Fatalf("series length = %d", len(alone))
	}
	// Data loading happens in the first slice, then the resident set hits.
	if alone[0] == 0 {
		t.Fatal("alone run must load its data in the first tick")
	}
	for _, v := range alone[3:] {
		if v != 0 {
			t.Fatalf("alone run must stop missing after load: %v", alone)
		}
	}
	// Parallel execution misses continuously.
	par := r.Series["parallel"]
	zero := 0
	for _, v := range par {
		if v == 0 {
			zero++
		}
	}
	if zero > 2 {
		t.Fatalf("parallel series has %d zero ticks: %v", zero, par)
	}
	// Alternative execution reloads periodically: at least two spikes.
	alt := r.Series["alternative"]
	spikes := 0
	for _, v := range alt {
		if v > 1000 {
			spikes++
		}
	}
	if spikes < 2 {
		t.Fatalf("alternative series lacks reload spikes: %v", alt)
	}
}

func TestFig10SkipEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 runs are expensive; run without -short")
	}
	r, err := Fig10(1)
	if err != nil {
		t.Fatal(err)
	}
	// hmmer: both measurements ~0 and equal.
	if r.HmmerNotIsolated > 5 || r.HmmerIsolated > 5 {
		t.Fatalf("hmmer rates too high: %+v", r)
	}
	// bzip with quiet co-runners matches isolated closely.
	if rel := relDiff(r.BzipNotIsolated, r.BzipIsolated); rel > 0.25 {
		t.Fatalf("bzip with hmmer co-runners deviates %v%%: %+v", rel*100, r)
	}
	// Control: with disruptors the in-place estimate is inflated.
	if r.BzipWithDisruptors <= r.BzipIsolated*1.3 {
		t.Fatalf("control must show inflation: %+v", r)
	}
}

func TestFig12NearZeroOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 sweep is expensive; run without -short")
	}
	r, err := Fig12(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.TickMillis {
		x, k := r.ExecXCS[i], r.ExecKyoto[i]
		if x == 0 || k == 0 {
			t.Fatalf("run did not finish: %+v", r)
		}
		over := (k - x) / x
		if over > 0.08 || over < -0.08 {
			t.Fatalf("overhead at %dms tick = %.1f%%", r.TickMillis[i], over*100)
		}
	}
}

// relDiff is |a-b| / max(|b|, 1).
func relDiff(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	den := b
	if den < 1 {
		den = 1
	}
	return d / den
}
