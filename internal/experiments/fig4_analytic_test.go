package experiments

import (
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/sweep"
)

// TestFig4AnalyticSweep runs the full Figure 4 indicator study (10 solo
// runs + the 90-pair matrix) on the analytic tier — cheap enough for
// short mode, and the exact shape the broad pass of a two-tier sweep
// executes. The exact-tier numbers are pinned by the calibration lock;
// here the assertions are structural: complete orderings, sane
// aggressiveness values, and a fidelity-tagged config digest that
// refuses to merge with exact-tier shards.
func TestFig4AnalyticSweep(t *testing.T) {
	s := NewFig4SweeperFidelity(1, cache.FidelityAnalytic)
	if err := (sweep.Engine{}).Run(s); err != nil {
		t.Fatal(err)
	}
	r := s.Result()
	if r == nil {
		t.Fatal("Result is nil after Merge")
	}
	if len(r.Apps) != 10 || len(r.O1) != 10 || len(r.O2) != 10 || len(r.O3) != 10 {
		t.Fatalf("incomplete orderings: apps %d, o1 %d, o2 %d, o3 %d",
			len(r.Apps), len(r.O1), len(r.O2), len(r.O3))
	}
	for _, app := range r.Apps {
		if r.Aggressiveness[app] < 0 {
			t.Fatalf("%s aggressiveness %v < 0", app, r.Aggressiveness[app])
		}
		if r.LLCM[app] <= 0 || r.Equation1[app] < 0 {
			t.Fatalf("%s indicators: LLCM %v, eq1 %v", app, r.LLCM[app], r.Equation1[app])
		}
	}
	for _, tau := range []float64{r.TauLLCM, r.TauEq1, r.PaperTauLLCM, r.PaperTauEq1} {
		if tau < -1 || tau > 1 {
			t.Fatalf("Kendall tau %v outside [-1, 1]", tau)
		}
	}
	if tbl := r.Table(); len(tbl.Rows) < len(r.Apps) {
		t.Fatalf("Figure 4 table has %d rows for %d apps", len(tbl.Rows), len(r.Apps))
	}
	if exact := NewFig4Sweeper(1).ConfigFingerprint(); exact == s.ConfigFingerprint() {
		t.Fatal("analytic config digest equals the exact-tier digest — mixed-fidelity shards would merge")
	}
}
