package experiments

import (
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// Fig12TickMillis is the time-slice sweep (milliseconds per tick).
var Fig12TickMillis = []int{3, 5, 10, 15, 20, 30}

// fig12Work is the instruction budget whose completion time is measured.
const fig12Work = 60_000_000

// Fig12Result is the §4.5 monitoring-overhead study: two CPU-bound povray
// VMs time-share one core; KS4Xen's per-tick PMC collection runs more
// often as the tick shrinks, yet execution time stays at the XCS level —
// the overhead is "near zero".
type Fig12Result struct {
	TickMillis []int
	// ExecXCS and ExecKyoto align with TickMillis (model milliseconds of
	// the measured VM's completion time).
	ExecXCS   []float64
	ExecKyoto []float64
}

// Fig12 runs the sweep, fanning the independent tick lengths out across
// workers.
func Fig12(seed uint64) (Fig12Result, error) {
	res := Fig12Result{
		TickMillis: Fig12TickMillis,
		ExecXCS:    make([]float64, len(Fig12TickMillis)),
		ExecKyoto:  make([]float64, len(Fig12TickMillis)),
	}
	err := ForEach(len(Fig12TickMillis), 0, func(i int) error {
		ms := Fig12TickMillis[i]
		x, err := fig12Run(seed, ms, false)
		if err != nil {
			return err
		}
		k, err := fig12Run(seed, ms, true)
		if err != nil {
			return err
		}
		res.ExecXCS[i] = x
		res.ExecKyoto[i] = k
		return nil
	})
	return res, err
}

// fig12Run measures VM "a"'s completion time with the given tick length.
func fig12Run(seed uint64, tickMs int, kyoto bool) (float64, error) {
	var s sched.Scheduler = sched.NewCredit(4)
	var hooks []hv.TickHook
	if kyoto {
		k := core.New(s)
		hooks = append(hooks, monitor.NewOracle(k, core.Equation1))
		s = k
	}
	w, err := hv.New(hv.Config{
		Machine:       machine.TableOne(seed),
		CyclesPerTick: uint64(tickMs) * machine.CPUFreqKHz,
		Seed:          seed,
	}, s)
	if err != nil {
		return 0, err
	}
	for _, name := range []string{"a", "b"} {
		spec := vm.Spec{Name: name, App: "povray", Pins: []int{0}, LLCCap: Fig5LLCCap}
		if _, err := w.AddVM(spec); err != nil {
			return 0, err
		}
	}
	for _, h := range hooks {
		w.AddHook(h)
	}
	target := w.FindVM("a")
	maxTicks := 4_000_000 / tickMs // bound total model time at 4000s/1000
	ticks := w.RunUntil(func(*hv.World) bool {
		return target.Counters().Instructions >= fig12Work
	}, maxTicks)
	return float64(ticks) * float64(tickMs), nil
}

// Table renders the two curves.
func (r Fig12Result) Table() Table {
	t := Table{
		Title:   "Figure 12: KS4Xen monitoring overhead across scheduling tick lengths",
		Note:    "two povray VMs share one core; completion time of fixed work (model ms)",
		Columns: []string{"tick (ms)", "exec time XCS", "exec time KS4Xen", "overhead %"},
	}
	for i, ms := range r.TickMillis {
		x, k := r.ExecXCS[i], r.ExecKyoto[i]
		over := 0.0
		if x > 0 {
			over = 100 * (k - x) / x
		}
		t.AddRow(ms, x, k, over)
	}
	return t
}
