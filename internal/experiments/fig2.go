package experiments

import (
	"fmt"

	"kyoto/internal/hv"
	"kyoto/internal/vm"
)

// Fig2Ticks is the timeline length: the paper zooms into the first six
// time slices (18 ticks); we keep 21 for one slice of margin.
const Fig2Ticks = 21

// Fig2Result is the §2.2.5 zoom-in: the per-tick LLC miss count of the
// most penalized VM type (micro-c2-rep) in the four situations, from a
// cold start — showing the data-loading spike when alone, the zigzag
// reload pattern under alternative execution, and the sustained misses
// under parallel execution.
type Fig2Result struct {
	// Series maps situation name to the rep VM's per-tick LLC misses.
	Series map[string][]float64
	// Situations lists the series in presentation order.
	Situations []string
}

// Fig2 runs the four situations with a per-tick recorder and no warmup
// (the cold start is the point).
func Fig2(seed uint64) (Fig2Result, error) {
	rep := "micro-c2-rep"
	dis := "micro-c2-dis"
	situations := []struct {
		name string
		vms  []vm.Spec
	}{
		{"alone", []vm.Spec{pinned("rep", rep, 0)}},
		{"alternative", []vm.Spec{pinned("rep", rep, 0), pinned("dis", dis, 0)}},
		{"parallel", []vm.Spec{pinned("rep", rep, 0), pinned("dis", dis, 1)}},
		{"alter+para", []vm.Spec{pinned("rep", rep, 0), pinned("dis", dis, 0), pinned("dis2", dis, 1)}},
	}
	out := Fig2Result{Series: make(map[string][]float64, len(situations))}
	// The four situations are independent worlds with private recorders:
	// fan them out and assemble the series in presentation order.
	collected := make([][]float64, len(situations))
	err := ForEach(len(situations), 0, func(i int) error {
		rec := NewLLCMissSeries()
		_, err := Run(Scenario{
			Seed:    seed,
			VMs:     situations[i].vms,
			Hooks:   []hv.TickHook{rec},
			Warmup:  1, // snapshot boundary only; recording starts at tick 0
			Measure: Fig2Ticks,
		})
		if err != nil {
			return err
		}
		series := rec.Values["rep"]
		if len(series) > Fig2Ticks {
			series = series[:Fig2Ticks]
		}
		collected[i] = series
		return nil
	})
	if err != nil {
		return Fig2Result{}, err
	}
	for i, sit := range situations {
		out.Series[sit.name] = collected[i]
		out.Situations = append(out.Situations, sit.name)
	}
	return out, nil
}

// Table renders the timelines as rows of per-tick miss counts.
func (r Fig2Result) Table() Table {
	t := Table{
		Title: "Figure 2: LLC misses (LLCM) per 10ms tick of v2rep, first slices from cold start",
		Note:  "1 time slice = 3 ticks; alternative execution reloads at each slice start (zigzag)",
	}
	t.Columns = []string{"situation"}
	for i := 0; i < Fig2Ticks; i++ {
		t.Columns = append(t.Columns, fmt.Sprintf("t%d", i))
	}
	for _, sit := range r.Situations {
		row := []interface{}{sit}
		for _, v := range r.Series[sit] {
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
