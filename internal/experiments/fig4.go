package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Fig4Result is the §4.2 indicator study: for the ten Figure 4
// applications, the solo-run values of both pollution indicators, the
// measured real aggressiveness (average degradation inflicted on the nine
// co-runner applications), and the Kendall's-tau agreement of each
// indicator's ordering with the real one.
type Fig4Result struct {
	// Apps lists the applications in descending real-aggressiveness order
	// (the measured o1).
	Apps []string
	// Aggressiveness is the average degradation (percent) each app
	// inflicts across all pairings.
	Aggressiveness map[string]float64
	// LLCM and Equation1 are the solo indicator values (misses/ms).
	LLCM      map[string]float64
	Equation1 map[string]float64
	// O1, O2, O3 are the measured orderings (real, LLCM, Equation 1).
	O1, O2, O3 []string
	// TauLLCM and TauEq1 are Kendall's tau of O2 and O3 against O1.
	TauLLCM float64
	TauEq1  float64
	// PaperTauLLCM and PaperTauEq1 are the taus computed from the
	// orderings the paper reports, for side-by-side comparison.
	PaperTauLLCM float64
	PaperTauEq1  float64
}

// fig4SoloPayload is one app's solo characterization: IPC plus both
// pollution indicators.
type fig4SoloPayload struct {
	App  string  `json:"app"`
	IPC  float64 `json:"ipc"`
	LLCM float64 `json:"llcm"`
	Eq1  float64 `json:"eq1"`
}

// fig4PairPayload is one parallel-execution cell: the victim's IPC when
// co-run with the attacker.
type fig4PairPayload struct {
	Attacker  string  `json:"attacker"`
	Victim    string  `json:"victim"`
	VictimIPC float64 `json:"victim_ipc"`
}

// fig4Pairs enumerates the pairwise matrix in canonical (attacker-major)
// order.
func fig4Pairs(apps []string) [][2]string {
	pairs := make([][2]string, 0, len(apps)*(len(apps)-1))
	for _, a := range apps {
		for _, b := range apps {
			if a != b {
				pairs = append(pairs, [2]string{a, b})
			}
		}
	}
	return pairs
}

// fig4Plan builds the shared solo + pairwise job plan of the Figure 4
// sweeps: one solo job per app, then one job per ordered pair.
func fig4Plan(name string, apps []string, seed uint64) []sweep.Job {
	pairs := fig4Pairs(apps)
	jobs := make([]sweep.Job, 0, len(apps)+len(pairs))
	for _, app := range apps {
		jobs = append(jobs, sweep.Job{
			Sweep: name, Key: "solo/" + app, Index: len(jobs), Seed: seed,
			Params: map[string]string{"app": app},
		})
	}
	for _, p := range pairs {
		jobs = append(jobs, sweep.Job{
			Sweep: name, Key: "pair/" + p[0] + "/" + p[1], Index: len(jobs), Seed: seed,
			Params: map[string]string{"attacker": p[0], "victim": p[1]},
		})
	}
	return jobs
}

// fig4RunJob executes one job of a Figure 4 plan (shared by the study
// and the diagnostic matrix) on the given fidelity tier.
func fig4RunJob(job sweep.Job, seed uint64, fid cache.Fidelity) (json.RawMessage, error) {
	if app, ok := strings.CutPrefix(job.Key, "solo/"); ok {
		sc := soloScenario(app, seed)
		sc.Fidelity = fid
		r, err := Run(sc)
		if err != nil {
			return nil, err
		}
		d := r.PerVM["solo"]
		return json.Marshal(fig4SoloPayload{
			App: app, IPC: d.IPC(), LLCM: core.RawLLCMValue(d), Eq1: core.Equation1Value(d),
		})
	}
	rest, ok := strings.CutPrefix(job.Key, "pair/")
	if !ok {
		return nil, fmt.Errorf("unknown job key %q", job.Key)
	}
	attacker, victim, ok := strings.Cut(rest, "/")
	if !ok {
		return nil, fmt.Errorf("unknown job key %q", job.Key)
	}
	r, err := Run(Scenario{
		Seed:     seed,
		Fidelity: fid,
		VMs: []vm.Spec{
			pinned("attacker", attacker, 0),
			pinned("victim", victim, 1),
		},
	})
	if err != nil {
		return nil, err
	}
	return json.Marshal(fig4PairPayload{Attacker: attacker, Victim: victim, VictimIPC: r.IPC("victim")})
}

// Fig4Sweeper is the shardable form of Fig4: the 10 solo
// characterizations plus the 90-world pairwise parallel-execution matrix
// behind the aggressiveness averages — the largest single sweep in the
// harness, and the reference workload for process-level sharding.
type Fig4Sweeper struct {
	seed uint64
	fid  cache.Fidelity
	apps []string
	res  *Fig4Result
}

// NewFig4Sweeper returns the shardable Figure 4 indicator study on the
// exact tier.
func NewFig4Sweeper(seed uint64) *Fig4Sweeper {
	return NewFig4SweeperFidelity(seed, cache.FidelityExact)
}

// NewFig4SweeperFidelity is NewFig4Sweeper with an explicit cache-model
// tier — the broad pass of a two-tier sweep runs it analytic.
func NewFig4SweeperFidelity(seed uint64, fid cache.Fidelity) *Fig4Sweeper {
	return &Fig4Sweeper{seed: seed, fid: fid, apps: workload.Figure4Apps()}
}

// Name implements sweep.Sweep.
func (s *Fig4Sweeper) Name() string { return "fig4" }

// ConfigFingerprint implements sweep.ConfigFingerprinter. Exact-tier
// digests predate the fidelity knob and must not move; non-exact tiers
// append their tag so mixed-fidelity shards refuse to merge.
func (s *Fig4Sweeper) ConfigFingerprint() string {
	return fig4ConfigFingerprint(s.seed, s.fid)
}

// Plan implements sweep.Sweep.
func (s *Fig4Sweeper) Plan() []sweep.Job { return fig4Plan(s.Name(), s.apps, s.seed) }

// Run implements sweep.Sweep.
func (s *Fig4Sweeper) Run(job sweep.Job) (json.RawMessage, error) {
	return fig4RunJob(job, s.seed, s.fid)
}

// fig4ConfigFingerprint digests the seed, plus the fidelity tag when it
// is not the pre-two-fidelity default.
func fig4ConfigFingerprint(seed uint64, fid cache.Fidelity) string {
	if tag := fidelityTag(fid); tag != "" {
		return sweep.FingerprintPayload([]byte(fmt.Sprintf(`{"seed":%d,"fidelity":%q}`, seed, tag)))
	}
	return sweep.FingerprintPayload([]byte(fmt.Sprintf(`{"seed":%d}`, seed)))
}

// Merge implements sweep.Sweep: fold the solo indicators and pairwise
// degradations into the orderings and Kendall taus.
func (s *Fig4Sweeper) Merge(payloads []json.RawMessage) error {
	res := Fig4Result{
		Aggressiveness: make(map[string]float64, len(s.apps)),
		LLCM:           make(map[string]float64, len(s.apps)),
		Equation1:      make(map[string]float64, len(s.apps)),
	}
	soloIPC := make(map[string]float64, len(s.apps))
	for i, app := range s.apps {
		var p fig4SoloPayload
		if err := json.Unmarshal(payloads[i], &p); err != nil {
			return fmt.Errorf("solo/%s payload: %w", app, err)
		}
		soloIPC[app] = p.IPC
		res.LLCM[app] = p.LLCM
		res.Equation1[app] = p.Eq1
	}
	inflicted := make(map[string][]float64, len(s.apps))
	for i := range fig4Pairs(s.apps) {
		var p fig4PairPayload
		if err := json.Unmarshal(payloads[len(s.apps)+i], &p); err != nil {
			return fmt.Errorf("pair payload %d: %w", i, err)
		}
		deg := stats.DegradationPercent(soloIPC[p.Victim], p.VictimIPC)
		if deg < 0 {
			deg = 0
		}
		inflicted[p.Attacker] = append(inflicted[p.Attacker], deg)
	}
	for _, app := range s.apps {
		res.Aggressiveness[app] = stats.Mean(inflicted[app])
	}

	res.O1 = stats.RankByValue(res.Aggressiveness)
	res.O2 = stats.RankByValue(res.LLCM)
	res.O3 = stats.RankByValue(res.Equation1)
	res.Apps = res.O1

	var err error
	if res.TauLLCM, err = stats.KendallTau(res.O2, res.O1); err != nil {
		return err
	}
	if res.TauEq1, err = stats.KendallTau(res.O3, res.O1); err != nil {
		return err
	}
	if res.PaperTauLLCM, err = stats.KendallTau(workload.PaperOrderO2(), workload.PaperOrderO1()); err != nil {
		return err
	}
	if res.PaperTauEq1, err = stats.KendallTau(workload.PaperOrderO3(), workload.PaperOrderO1()); err != nil {
		return err
	}
	s.res = &res
	return nil
}

// Result returns the merged study; it is nil until Merge ran.
func (s *Fig4Sweeper) Result() *Fig4Result { return s.res }

// Fig4 runs the indicator study: 10 solo runs plus the full pairwise
// parallel-execution matrix (90 runs), in-process through Fig4Sweeper.
func Fig4(seed uint64) (Fig4Result, error) {
	s := NewFig4Sweeper(seed)
	if err := (sweep.Engine{}).Run(s); err != nil {
		return Fig4Result{}, err
	}
	return *s.Result(), nil
}

// Table renders the study as the paper's Figure 4 panels.
func (r Fig4Result) Table() Table {
	t := Table{
		Title: "Figure 4: Equation 1 vs LLCM as the llc_cap indicator",
		Note: "aggressiveness = avg % degradation inflicted across the 9 co-runners (parallel execution);\n" +
			"indicators measured on solo runs, misses per ms",
		Columns: []string{"app", "avg aggressiveness %", "LLCM", "equation1"},
	}
	for _, app := range r.Apps {
		t.AddRow(app, r.Aggressiveness[app], r.LLCM[app], r.Equation1[app])
	}
	t.Rows = append(t.Rows, []string{"", "", "", ""})
	t.Rows = append(t.Rows, []string{"o1 (real)", fmt.Sprint(r.O1), "", ""})
	t.Rows = append(t.Rows, []string{"o2 (LLCM)", fmt.Sprint(r.O2), "", ""})
	t.Rows = append(t.Rows, []string{"o3 (eq1)", fmt.Sprint(r.O3), "", ""})
	t.Rows = append(t.Rows, []string{"tau(o2,o1)", formatFloat(r.TauLLCM), "paper:", formatFloat(r.PaperTauLLCM)})
	t.Rows = append(t.Rows, []string{"tau(o3,o1)", formatFloat(r.TauEq1), "paper:", formatFloat(r.PaperTauEq1)})
	return t
}
