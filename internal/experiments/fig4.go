package experiments

import (
	"fmt"

	"kyoto/internal/core"
	"kyoto/internal/stats"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Fig4Result is the §4.2 indicator study: for the ten Figure 4
// applications, the solo-run values of both pollution indicators, the
// measured real aggressiveness (average degradation inflicted on the nine
// co-runner applications), and the Kendall's-tau agreement of each
// indicator's ordering with the real one.
type Fig4Result struct {
	// Apps lists the applications in descending real-aggressiveness order
	// (the measured o1).
	Apps []string
	// Aggressiveness is the average degradation (percent) each app
	// inflicts across all pairings.
	Aggressiveness map[string]float64
	// LLCM and Equation1 are the solo indicator values (misses/ms).
	LLCM      map[string]float64
	Equation1 map[string]float64
	// O1, O2, O3 are the measured orderings (real, LLCM, Equation 1).
	O1, O2, O3 []string
	// TauLLCM and TauEq1 are Kendall's tau of O2 and O3 against O1.
	TauLLCM float64
	TauEq1  float64
	// PaperTauLLCM and PaperTauEq1 are the taus computed from the
	// orderings the paper reports, for side-by-side comparison.
	PaperTauLLCM float64
	PaperTauEq1  float64
}

// Fig4 runs the indicator study: 10 solo runs plus the full pairwise
// parallel-execution matrix (90 runs).
func Fig4(seed uint64) (Fig4Result, error) {
	apps := workload.Figure4Apps()

	// Solo characterization.
	solos := make([]Scenario, len(apps))
	for i, app := range apps {
		solos[i] = soloScenario(app, seed)
	}
	soloRes, err := RunAll(solos)
	if err != nil {
		return Fig4Result{}, err
	}
	res := Fig4Result{
		Aggressiveness: make(map[string]float64, len(apps)),
		LLCM:           make(map[string]float64, len(apps)),
		Equation1:      make(map[string]float64, len(apps)),
	}
	soloIPC := make(map[string]float64, len(apps))
	for i, app := range apps {
		d := soloRes[i].PerVM["solo"]
		soloIPC[app] = d.IPC()
		res.LLCM[app] = core.RawLLCMValue(d)
		res.Equation1[app] = core.Equation1Value(d)
	}

	// Pairwise aggressiveness: attacker on core 0, victim on core 1.
	type pair struct{ attacker, victim string }
	var pairs []pair
	var scenarios []Scenario
	for _, a := range apps {
		for _, b := range apps {
			if a == b {
				continue
			}
			pairs = append(pairs, pair{a, b})
			scenarios = append(scenarios, Scenario{
				Seed: seed,
				VMs: []vm.Spec{
					pinned("attacker", a, 0),
					pinned("victim", b, 1),
				},
			})
		}
	}
	pairRes, err := RunAll(scenarios)
	if err != nil {
		return Fig4Result{}, err
	}
	inflicted := make(map[string][]float64, len(apps))
	for i, p := range pairs {
		vIPC := pairRes[i].IPC("victim")
		deg := stats.DegradationPercent(soloIPC[p.victim], vIPC)
		if deg < 0 {
			deg = 0
		}
		inflicted[p.attacker] = append(inflicted[p.attacker], deg)
	}
	for _, app := range apps {
		res.Aggressiveness[app] = stats.Mean(inflicted[app])
	}

	res.O1 = stats.RankByValue(res.Aggressiveness)
	res.O2 = stats.RankByValue(res.LLCM)
	res.O3 = stats.RankByValue(res.Equation1)
	res.Apps = res.O1

	if res.TauLLCM, err = stats.KendallTau(res.O2, res.O1); err != nil {
		return Fig4Result{}, err
	}
	if res.TauEq1, err = stats.KendallTau(res.O3, res.O1); err != nil {
		return Fig4Result{}, err
	}
	if res.PaperTauLLCM, err = stats.KendallTau(workload.PaperOrderO2(), workload.PaperOrderO1()); err != nil {
		return Fig4Result{}, err
	}
	if res.PaperTauEq1, err = stats.KendallTau(workload.PaperOrderO3(), workload.PaperOrderO1()); err != nil {
		return Fig4Result{}, err
	}
	return res, nil
}

// Table renders the study as the paper's Figure 4 panels.
func (r Fig4Result) Table() Table {
	t := Table{
		Title: "Figure 4: Equation 1 vs LLCM as the llc_cap indicator",
		Note: "aggressiveness = avg % degradation inflicted across the 9 co-runners (parallel execution);\n" +
			"indicators measured on solo runs, misses per ms",
		Columns: []string{"app", "avg aggressiveness %", "LLCM", "equation1"},
	}
	for _, app := range r.Apps {
		t.AddRow(app, r.Aggressiveness[app], r.LLCM[app], r.Equation1[app])
	}
	t.Rows = append(t.Rows, []string{"", "", "", ""})
	t.Rows = append(t.Rows, []string{"o1 (real)", fmt.Sprint(r.O1), "", ""})
	t.Rows = append(t.Rows, []string{"o2 (LLCM)", fmt.Sprint(r.O2), "", ""})
	t.Rows = append(t.Rows, []string{"o3 (eq1)", fmt.Sprint(r.O3), "", ""})
	t.Rows = append(t.Rows, []string{"tau(o2,o1)", formatFloat(r.TauLLCM), "paper:", formatFloat(r.PaperTauLLCM)})
	t.Rows = append(t.Rows, []string{"tau(o3,o1)", formatFloat(r.TauEq1), "paper:", formatFloat(r.PaperTauEq1)})
	return t
}
