package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a titled grid with column
// headers, matching how the paper's tables and bar charts read as rows.
type Table struct {
	// Title names the artefact, e.g. "Figure 4: Equation 1 vs LLCM".
	Title string
	// Note optionally explains units or scaling.
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells, pre-formatted.
	Rows [][]string
}

// AddRow appends a row of cells formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly (2 decimals, trimmed).
func formatFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table as aligned ASCII.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
