package experiments

import (
	"kyoto/internal/machine"
	"kyoto/internal/workload"
)

// Table1 renders the experimental machine description (the paper's
// Table 1), annotated with the simulator's scaling.
func Table1() Table {
	cfg := machine.TableOne(1)
	t := Table{
		Title: "Table 1: Experimental machine",
		Note: "scaled replica: capacities 1:16, clock 1:28 of the paper's Dell / Xeon E5-1603 v3\n" +
			"(paper: 8096 MB RAM; L1 D/I 32 KB 8-way; L2 256 KB 8-way; LLC 10 MB 20-way; 1 socket x 4 cores @ 2.8 GHz)",
		Columns: []string{"component", "simulated value"},
	}
	t.AddRow("Main memory", intKB(cfg.MainMemoryMB*1024)+" (MB-scale)")
	t.AddRow("L1 cache", intKB(cfg.L1.SizeBytes)+", "+ways(cfg.L1.Ways))
	t.AddRow("L2 cache", intKB(cfg.L2.SizeBytes)+", "+ways(cfg.L2.Ways))
	t.AddRow("LLC", intKB(cfg.LLC.SizeBytes)+", "+ways(cfg.LLC.Ways))
	t.AddRow("Processor", "1 socket, 4 cores/socket @ 100 MHz (model)")
	t.AddRow("Latencies", "L1 4cy, L2 12cy, LLC 45cy, memory 180cy (+120 remote)")
	return t
}

// Table2 renders the VM-to-application mapping (the paper's Table 2).
func Table2() Table {
	t := Table{
		Title:   "Table 2: Experimental VMs",
		Columns: []string{"VM name", "application", "class", "role"},
	}
	rows := []struct{ vm, app, role string }{
		{"vsen1", workload.VSen1, "sensitive"},
		{"vsen2", workload.VSen2, "sensitive"},
		{"vsen3", workload.VSen3, "sensitive"},
		{"vdis1", workload.VDis1, "disruptive"},
		{"vdis2", workload.VDis2, "disruptive"},
		{"vdis3", workload.VDis3, "disruptive"},
	}
	for _, r := range rows {
		p := workload.MustLookup(r.app)
		t.AddRow(r.vm, r.app, p.Class.String(), r.role)
	}
	return t
}

// intKB formats a byte count in KB.
func intKB(bytes int) string {
	return formatFloat(float64(bytes)/1024) + " KB"
}

// ways formats associativity.
func ways(n int) string { return formatFloat(float64(n)) + "-way" }
