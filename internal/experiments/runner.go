// Package experiments reproduces every table and figure of the paper's
// evaluation (§2.2 and §4). Each ExpNN/FigNN/TableNN function builds the
// corresponding scenario on the scaled testbed, runs it, and returns a
// structured result that renders as the paper's rows/series.
//
// The per-experiment index mapping paper artefacts to these functions
// lives in DESIGN.md; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/sweep"
	"kyoto/internal/vm"
)

// Default measurement windows (ticks are 10 ms of model time). Warmup
// fills caches and lets schedulers reach steady state before measuring.
const (
	DefaultWarmupTicks  = 12
	DefaultMeasureTicks = 30
)

// Scenario describes one simulation run.
type Scenario struct {
	// Machine is the hardware; zero value selects machine.TableOne.
	Machine machine.Config
	// NewSched builds the scheduler; nil selects the credit scheduler
	// (XCS), the paper's baseline.
	NewSched func(cores int) sched.Scheduler
	// CyclesPerTick optionally overrides the tick length (Fig 12).
	CyclesPerTick uint64
	// Seed drives all randomness (default 1).
	Seed uint64
	// VMs to instantiate, in order.
	VMs []vm.Spec
	// Hooks are attached before the run (monitors, recorders).
	Hooks []hv.TickHook
	// Warmup/Measure override the default window lengths when non-zero.
	Warmup  int
	Measure int
	// Fidelity selects the cache-model tier (default cache.FidelityExact).
	Fidelity cache.Fidelity
}

// Result holds a scenario's measurement-window counters.
type Result struct {
	// PerVM maps VM name to its counter delta over the measurement window.
	PerVM map[string]pmc.Counters
	// World is the (stopped) world, for result extractors that need more
	// than counters (punishments, quota ledgers, idle cycles).
	World *hv.World
	// MeasureTicks is the length of the measurement window.
	MeasureTicks int
}

// IPC returns the named VM's instructions per unhalted cycle over the
// measurement window — the paper's performance metric (§2.2.3).
func (r Result) IPC(name string) float64 {
	return r.PerVM[name].IPC()
}

// Run builds and executes the scenario.
func Run(s Scenario) (Result, error) {
	if s.Machine.Sockets == 0 {
		s.Machine = machine.TableOne(s.Seed)
	}
	cores := s.Machine.Sockets * s.Machine.CoresPerSocket
	newSched := s.NewSched
	if newSched == nil {
		newSched = func(n int) sched.Scheduler { return sched.NewCredit(n) }
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	w, err := hv.New(hv.Config{
		Machine:       s.Machine,
		CyclesPerTick: s.CyclesPerTick,
		Seed:          seed,
		Fidelity:      s.Fidelity,
	}, newSched(cores))
	if err != nil {
		return Result{}, err
	}
	for _, spec := range s.VMs {
		if _, err := w.AddVM(spec); err != nil {
			return Result{}, err
		}
	}
	for _, h := range s.Hooks {
		w.AddHook(h)
	}
	warmup, measure := s.Warmup, s.Measure
	if warmup == 0 {
		warmup = DefaultWarmupTicks
	}
	if measure == 0 {
		measure = DefaultMeasureTicks
	}
	w.RunTicks(warmup)
	before := w.SnapshotVMs()
	w.RunTicks(measure)
	after := w.SnapshotVMs()

	per := make(map[string]pmc.Counters, len(after))
	for name, c := range after {
		per[name] = c.Delta(before[name])
	}
	return Result{PerVM: per, World: w, MeasureTicks: measure}, nil
}

// MustRun is Run but panics on error, for scenarios whose validity is
// fixed at compile time.
func MustRun(s Scenario) Result {
	r, err := Run(s)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return r
}

// RunAll executes scenarios concurrently (each run is an independent,
// deterministic world) and returns results in input order.
func RunAll(scenarios []Scenario) ([]Result, error) {
	return RunAllWorkers(scenarios, 0)
}

// RunAllWorkers is RunAll with an explicit worker cap: 1 runs the
// scenarios serially on the calling goroutine (the reference execution
// BenchmarkRunnerParallel compares against), 0 defaults to GOMAXPROCS.
// Results are in input order and identical whatever the cap, because
// every scenario is an isolated world.
func RunAllWorkers(scenarios []Scenario, workers int) ([]Result, error) {
	results := make([]Result, len(scenarios))
	err := ForEach(len(scenarios), workers, func(i int) error {
		var err error
		results[i], err = Run(scenarios[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// ForEach runs f(0) .. f(n-1) across a bounded worker pool (0 workers
// means GOMAXPROCS; 1 means serial in index order) and returns the error
// of the lowest-indexed failure. Experiment fan-outs use it for their
// independent arms; it is sweep.ForEach, re-exported so figure-level
// code does not need the sweep package for a plain parallel loop.
func ForEach(n, workers int, f func(i int) error) error {
	return sweep.ForEach(n, workers, f)
}

// fidelityTag is a fidelity's config-digest tag: empty for exact, so
// every digest computed before the two-fidelity split — and every
// envelope committed under it — keeps its value byte for byte.
func fidelityTag(f cache.Fidelity) string {
	if f == cache.FidelityExact {
		return ""
	}
	return f.String()
}

// newCreditSched builds the default XCS policy.
func newCreditSched(cores int) sched.Scheduler { return sched.NewCredit(cores) }

// pinned returns a single-vCPU spec for app pinned to core.
func pinned(name, app string, core int) vm.Spec {
	return vm.Spec{Name: name, App: app, Pins: []int{core}}
}

// soloScenario runs one app alone, pinned to core 0, on a fresh Table-1
// machine.
func soloScenario(app string, seed uint64) Scenario {
	return Scenario{
		Seed: seed,
		VMs:  []vm.Spec{pinned("solo", app, 0)},
	}
}
