package experiments

import (
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/stats"
	"kyoto/internal/vm"
	"kyoto/internal/xrand"
)

// Fig9Apps are the eight SPEC applications of the §4.5 migration study.
var Fig9Apps = []string{"mcf", "soplex", "milc", "omnetpp", "xalan", "astar", "bzip", "lbm"}

// MigrationHook models KS4Xen's socket-dedication sampling from the
// migrated vCPU's point of view (§4.5, Figure 9): every Period ticks the
// victim vCPU is exiled to the other socket for a pseudo-random 1..MaxAway
// ticks ("the return migration is performed after a random period in order
// to mimic the time taken to compute all vCPUs' llc_capact"), then brought
// home. While away it pays remote-memory latency and loses cache affinity.
type MigrationHook struct {
	// Target is the vCPU being bounced between sockets.
	Target *vm.VCPU
	// HomeCore and AwayCore are the two pinning targets.
	HomeCore int
	AwayCore int
	// Period is the tick interval between exiles.
	Period int
	// MaxAway bounds the random away duration in ticks.
	MaxAway int

	rng   *xrand.Rand
	away  bool
	timer int
	// Migrations counts one-way moves.
	Migrations int
}

var _ hv.TickHook = (*MigrationHook)(nil)

// NewMigrationHook builds the hook with the given seed.
func NewMigrationHook(target *vm.VCPU, homeCore, awayCore, period, maxAway int, seed uint64) *MigrationHook {
	return &MigrationHook{
		Target:   target,
		HomeCore: homeCore,
		AwayCore: awayCore,
		Period:   period,
		MaxAway:  maxAway,
		rng:      xrand.New(seed ^ 0xfeed),
		timer:    period,
	}
}

// OnTick implements hv.TickHook.
func (m *MigrationHook) OnTick(w *hv.World) {
	m.timer--
	if m.timer > 0 {
		return
	}
	if m.away {
		m.Target.Pin = m.HomeCore
		m.away = false
		m.timer = m.Period
	} else {
		m.Target.Pin = m.AwayCore
		m.away = true
		m.timer = 1 + m.rng.Intn(m.MaxAway)
	}
	m.Migrations++
}

// Fig9Result is the migration-overhead study on the NUMA R420.
type Fig9Result struct {
	Apps []string
	// Degradation aligns with Apps: percent IPC loss with periodic
	// cross-socket migration vs undisturbed execution.
	Degradation []float64
}

// Fig9 runs each app solo on the R420, with and without migrations.
func Fig9(seed uint64) (Fig9Result, error) {
	res := Fig9Result{Apps: Fig9Apps, Degradation: make([]float64, len(Fig9Apps))}
	// Each app's base/migrated pair is independent: fan them out.
	err := ForEach(len(Fig9Apps), 0, func(i int) error {
		app := Fig9Apps[i]
		base, err := Run(Scenario{
			Machine: machine.R420(seed),
			Seed:    seed,
			VMs:     []vm.Spec{pinned("solo", app, 0)},
			Measure: 60,
		})
		if err != nil {
			return err
		}

		// Migrated run: build manually to wire the hook to the vCPU.
		migrated, err := fig9MigratedRun(app, seed)
		if err != nil {
			return err
		}
		deg := stats.DegradationPercent(base.IPC("solo"), migrated)
		if deg < 0 {
			deg = 0
		}
		res.Degradation[i] = deg
		return nil
	})
	return res, err
}

// fig9MigratedRun returns the app's IPC under periodic migration.
func fig9MigratedRun(app string, seed uint64) (float64, error) {
	k := newCreditSched(8)
	w, err := hv.New(hv.Config{Machine: machine.R420(seed), Seed: seed}, k)
	if err != nil {
		return 0, err
	}
	domain, err := w.AddVM(pinned("solo", app, 0))
	if err != nil {
		return 0, err
	}
	awayCore := w.Machine().Socket(1).Cores[0].ID
	w.AddHook(NewMigrationHook(domain.VCPUs[0], 0, awayCore, 6, 3, seed))

	w.RunTicks(DefaultWarmupTicks)
	before := domain.Counters()
	w.RunTicks(60)
	delta := domain.Counters().Delta(before)
	return delta.IPC(), nil
}

// Table renders the per-app overhead bars.
func (r Fig9Result) Table() Table {
	t := Table{
		Title:   "Figure 9: vCPU migration (socket dedication) overhead per application",
		Note:    "periodic exile to the remote socket; memory-bound applications suffer most",
		Columns: []string{"app", "perf degradation %"},
	}
	for i, app := range r.Apps {
		t.AddRow(app, r.Degradation[i])
	}
	return t
}
