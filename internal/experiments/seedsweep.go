package experiments

// Seedable adapters: every sweeper in the harness can be replicated
// under consecutive RNG seeds by sweep.SeedSweeper, turning its single
// numbers into distributions with confidence intervals. Each adapter
// supplies the three hooks the seed sweep needs — an independent
// reseeded copy, the fixed metric list, and per-arm metric rows read
// off the merged result — plus SeedSweepTable, the one renderer behind
// `kyotosim -seeds` and `kyotobench -seeds`.

import (
	"fmt"

	"kyoto/internal/stats"
	"kyoto/internal/sweep"
)

// Reseed implements sweep.Seedable: an independent trace sweep over the
// same trace and fleet shape, seeded differently.
func (s *TraceSweeper) Reseed(seed uint64) (sweep.Seedable, error) {
	cfg := s.cfg
	cfg.Seed = seed
	return NewTraceSweeper(s.tr, cfg)
}

// traceSweepMetrics is the fixed metric order of a trace seed sweep.
var traceSweepMetrics = []string{"rej_rate", "cpu_util", "p50_norm", "p95_norm", "p99_norm"}

// MetricNames implements sweep.Seedable.
func (s *TraceSweeper) MetricNames() []string {
	return append([]string(nil), traceSweepMetrics...)
}

// MetricRows implements sweep.Seedable: one row per placement arm.
func (s *TraceSweeper) MetricRows() []sweep.MetricRow {
	if s.res == nil {
		return nil
	}
	rows := make([]sweep.MetricRow, len(s.res.Rows))
	for i, row := range s.res.Rows {
		rows[i] = sweep.MetricRow{
			Arm:    row.Placer,
			Values: []float64{row.RejectionRate, row.CPUUtilization, row.P50, row.P95, row.P99},
		}
	}
	return rows
}

// Reseed implements sweep.Seedable for the migration sweep.
func (s *MigrationSweeper) Reseed(seed uint64) (sweep.Seedable, error) {
	cfg := s.cfg
	cfg.Seed = seed
	return NewMigrationSweeper(s.tr, cfg)
}

// migrationSweepMetrics is the fixed metric order of a migration seed
// sweep. wait_p99_small / wait_p99_large split the tail wait by VM size
// class (arrivals.SmallVMMaxCPUs), making SJF starvation of large VMs
// visible; both are 0 for traces whose VMs all share one class.
var migrationSweepMetrics = []string{
	"rej_rate", "cpu_util",
	"wait_p50", "wait_p95", "wait_p99", "wait_p99_small", "wait_p99_large",
	"migrations", "p50_norm", "p99_norm",
}

// MetricNames implements sweep.Seedable.
func (s *MigrationSweeper) MetricNames() []string {
	return append([]string(nil), migrationSweepMetrics...)
}

// MetricRows implements sweep.Seedable: one row per {placer, rebalancer}
// combination, named "placer/rebalancer".
func (s *MigrationSweeper) MetricRows() []sweep.MetricRow {
	if s.res == nil {
		return nil
	}
	rows := make([]sweep.MetricRow, len(s.res.Rows))
	for i, row := range s.res.Rows {
		smallWaits, largeWaits := row.Replay.PlacedWaitsByClass()
		rows[i] = sweep.MetricRow{
			Arm: row.Placer + "/" + row.Rebalancer,
			Values: []float64{
				row.RejectionRate, row.CPUUtilization,
				row.WaitP50, row.WaitP95, row.WaitP99,
				percentileOrZero(smallWaits, 99), percentileOrZero(largeWaits, 99),
				float64(row.MigrationCount), row.P50, row.P99,
			},
		}
	}
	return rows
}

// Reseed implements sweep.Seedable for the detection sweep.
func (s *DetectionSweeper) Reseed(seed uint64) (sweep.Seedable, error) {
	cfg := s.cfg
	cfg.Seed = seed
	return NewDetectionSweeper(s.tr, cfg)
}

// detectionSweepMetrics is the fixed metric order of a detection seed
// sweep: trigger volume and quality (false-trigger rate, coverage,
// time-to-detect) alongside the usual performance floor.
var detectionSweepMetrics = []string{
	"placed", "triggers", "chgpts", "false_rate", "detected", "mean_ttd", "p99_norm",
}

// MetricNames implements sweep.Seedable.
func (s *DetectionSweeper) MetricNames() []string {
	return append([]string(nil), detectionSweepMetrics...)
}

// MetricRows implements sweep.Seedable: one row per detection arm.
func (s *DetectionSweeper) MetricRows() []sweep.MetricRow {
	if s.res == nil {
		return nil
	}
	rows := make([]sweep.MetricRow, len(s.res.Rows))
	for i, row := range s.res.Rows {
		rows[i] = sweep.MetricRow{
			Arm: row.Arm,
			Values: []float64{
				float64(row.Placed), float64(row.Triggers), float64(row.ChangePointCount),
				row.FalseTriggerRate, float64(row.Detected), row.MeanTimeToDetect, row.P99,
			},
		}
	}
	return rows
}

// percentileOrZero is stats.Percentile with empty samples reading as 0
// — "no VMs of this class waited" rather than an error.
func percentileOrZero(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	v, err := stats.Percentile(xs, p)
	if err != nil {
		return 0
	}
	return v
}

// Reseed implements sweep.Seedable for the Figure 4 indicator study.
func (s *Fig4Sweeper) Reseed(seed uint64) (sweep.Seedable, error) {
	return NewFig4Sweeper(seed), nil
}

// MetricNames implements sweep.Seedable.
func (s *Fig4Sweeper) MetricNames() []string { return []string{"tau_llcm", "tau_eq1"} }

// MetricRows implements sweep.Seedable: the study is one arm whose
// metrics are the two indicator-agreement taus.
func (s *Fig4Sweeper) MetricRows() []sweep.MetricRow {
	if s.res == nil {
		return nil
	}
	return []sweep.MetricRow{{Arm: "fig4", Values: []float64{s.res.TauLLCM, s.res.TauEq1}}}
}

// ablationArmNames names the six ablation outcomes (A and B of each
// study, in ablationArms order) as seed-sweep arms.
var ablationArmNames = map[string][2]string{
	"indicator":    {"indicator/eq1", "indicator/llcm"},
	"partitioning": {"partitioning/ks4xen", "partitioning/ucp"},
	"banking":      {"banking/none", "banking/bank4"},
}

// Reseed implements sweep.Seedable for the ablation suite.
func (s *AblationSweeper) Reseed(seed uint64) (sweep.Seedable, error) {
	return NewAblationSweeper(seed), nil
}

// MetricNames implements sweep.Seedable.
func (s *AblationSweeper) MetricNames() []string { return []string{"vsen1_norm"} }

// MetricRows implements sweep.Seedable: each study's A and B outcomes
// become separate arms sharing the one normalized-performance metric.
func (s *AblationSweeper) MetricRows() []sweep.MetricRow {
	if s.vals == nil {
		return nil
	}
	rows := make([]sweep.MetricRow, 0, 2*len(ablationArms))
	for i, arm := range ablationArms {
		names := ablationArmNames[arm.key]
		rows = append(rows,
			sweep.MetricRow{Arm: names[0], Values: []float64{s.vals[i].A}},
			sweep.MetricRow{Arm: names[1], Values: []float64{s.vals[i].B}},
		)
	}
	return rows
}

// SeedSweepTable renders a merged seed sweep as the arm x metric table
// the CLIs print: sample mean with its normal-approximation CI, and the
// p50/p95/p99 of the across-seed distribution with seeded-bootstrap
// CIs. Every number is a pure function of the merged result, so the
// rendering is bit-identical for every shard count.
func SeedSweepTable(r *sweep.SeedSweepResult) (Table, error) {
	if r == nil {
		return Table{}, fmt.Errorf("experiments: seed sweep has no merged result")
	}
	pct := int(100 * r.Confidence)
	t := Table{
		Title: fmt.Sprintf("Seed sweep: %s, %d seeds (base %d)", r.Sweep, r.Seeds, r.BaseSeed),
		Note: fmt.Sprintf("each metric aggregated across %d seeds; mean ± half-width of the %d%% normal-approximation CI; "+
			"pXX [lo, hi] = across-seed percentile with %d%% bootstrap CI (%d resamples, seed %d)",
			r.Seeds, pct, pct, r.Resamples, r.BootstrapSeed),
		Columns: []string{"arm", "metric", fmt.Sprintf("mean ± %d%% CI", pct), "p50", "p95", "p99"},
	}
	for _, arm := range r.Arms {
		for mi, metric := range r.Metrics {
			sum := arm.Summaries[mi]
			mci, err := sum.MeanCI(r.Confidence)
			if err != nil {
				return Table{}, fmt.Errorf("experiments: %s/%s: %w", arm.Arm, metric, err)
			}
			cells := []interface{}{arm.Arm, metric, stats.FormatMeanCI(sum.Mean(), mci.Halfwidth())}
			for _, p := range []float64{50, 95, 99} {
				point, err := sum.Percentile(p)
				if err != nil {
					return Table{}, fmt.Errorf("experiments: %s/%s p%v: %w", arm.Arm, metric, p, err)
				}
				ci, err := sum.PercentileCI(p, r.Confidence, r.Resamples, r.BootstrapSeed)
				if err != nil {
					return Table{}, fmt.Errorf("experiments: %s/%s p%v CI: %w", arm.Arm, metric, p, err)
				}
				cells = append(cells, fmt.Sprintf("%.3f [%.3f, %.3f]", point, ci.Lo, ci.Hi))
			}
			t.AddRow(cells...)
		}
	}
	return t, nil
}
