package experiments

// The warm-start contract: forked arms are byte-for-byte the cold arms,
// on both fidelity tiers, and the fork actually saves simulated ticks.

import (
	"testing"

	"kyoto/internal/cache"
)

func TestWarmStartBitIdentity(t *testing.T) {
	for _, fid := range []cache.Fidelity{cache.FidelityExact, cache.FidelityAnalytic} {
		t.Run(fid.String(), func(t *testing.T) {
			cfg := WarmStartConfig{
				Seed:     7,
				Fidelity: fid,
				// Small arms keep the -race run fast; bit-identity does not
				// depend on the window sizes.
				WarmupTicks:  12,
				MeasureTicks: 10,
				Disruptors:   []string{"lbm", "omnetpp", "blockie"},
			}
			res, err := WarmStartSweep(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.BitIdentical() {
				t.Fatalf("forked arms diverged:\nwarm %v\ncold %v", res.Warm, res.Cold)
			}
			if len(res.Warm) != len(cfg.Disruptors) {
				t.Fatalf("got %d arms, want %d", len(res.Warm), len(cfg.Disruptors))
			}
			// The arms must actually differ from each other — identical
			// fingerprints across disruptors would mean the fork froze the
			// world rather than diverged per arm.
			seen := map[string]bool{}
			for _, arm := range res.Warm {
				if seen[arm.Fingerprint] {
					t.Fatalf("two arms share fingerprint %s", arm.Fingerprint)
				}
				seen[arm.Fingerprint] = true
				if arm.VictimIPC <= 0 {
					t.Fatalf("arm %s measured no victim progress", arm.Disruptor)
				}
			}
			if res.TicksWarm >= res.TicksCold {
				t.Fatalf("warm path simulates %d ticks, cold %d — fork saves nothing", res.TicksWarm, res.TicksCold)
			}
		})
	}
}

func TestWarmStartDefaultsAndTable(t *testing.T) {
	cfg := WarmStartConfig{}.withDefaults()
	if cfg.Victim == "" || len(cfg.Disruptors) == 0 || cfg.WarmupTicks == 0 {
		t.Fatalf("defaults incomplete: %+v", cfg)
	}
	res, err := WarmStartSweep(WarmStartConfig{
		Seed: 7, WarmupTicks: 8, MeasureTicks: 6,
		Disruptors: []string{"lbm", "povray"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Table()
	if len(tbl.Rows) != 2 || len(tbl.Columns) != 4 {
		t.Fatalf("table shape wrong: %+v", tbl)
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Fatalf("table row not marked bit-identical: %v", row)
		}
	}
}
