package experiments

import (
	"strings"
	"testing"
)

// These tests exercise the table renderers on hand-built results, so the
// presentation layer is covered without re-running the simulations.

func TestFig1TablesRender(t *testing.T) {
	r := Fig1Result{
		Degradation: map[ExecMode]map[string]map[string]float64{
			Alternative: {"micro-c1-rep": {"micro-c1-dis": 0.1, "micro-c2-dis": 1, "micro-c3-dis": 2}},
			Parallel:    {"micro-c1-rep": {"micro-c1-dis": 0, "micro-c2-dis": 70, "micro-c3-dis": 40}},
			Combined:    {"micro-c1-rep": {"micro-c1-dis": 0, "micro-c2-dis": 71, "micro-c3-dis": 41}},
		},
		Reps: []string{"micro-c1-rep"},
		Dis:  []string{"micro-c1-dis", "micro-c2-dis", "micro-c3-dis"},
	}
	tables := r.Tables()
	if len(tables) != 3 {
		t.Fatalf("want 3 panels, got %d", len(tables))
	}
	if !strings.Contains(tables[1].String(), "70") {
		t.Fatalf("parallel panel missing value:\n%s", tables[1])
	}
}

func TestFig3TableRender(t *testing.T) {
	r := Fig3Result{
		Degradation: map[string][]float64{
			"gcc": {1, 2, 3, 4, 5}, "omnetpp": {2, 3, 4, 5, 6}, "soplex": {1, 1, 2, 3, 4},
		},
		PearsonR: map[string]float64{"gcc": 0.9, "omnetpp": 0.95, "soplex": 0.99},
		Caps:     Fig3Caps,
	}
	s := r.Table().String()
	for _, want := range []string{"20%", "100%", "pearson", "0.99"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig3 table missing %q:\n%s", want, s)
		}
	}
}

func TestFig4TableRender(t *testing.T) {
	apps := []string{"a", "b"}
	r := Fig4Result{
		Apps:           apps,
		Aggressiveness: map[string]float64{"a": 10, "b": 5},
		LLCM:           map[string]float64{"a": 100, "b": 50},
		Equation1:      map[string]float64{"a": 200, "b": 60},
		O1:             apps, O2: apps, O3: apps,
		TauLLCM: 0.5, TauEq1: 0.8, PaperTauLLCM: 0.6, PaperTauEq1: 0.82,
	}
	s := r.Table().String()
	for _, want := range []string{"tau(o2,o1)", "tau(o3,o1)", "0.8", "aggressiveness"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig4 table missing %q:\n%s", want, s)
		}
	}
}

func TestFig5TablesRender(t *testing.T) {
	r := Fig5Result{
		NormPerf:    map[string]float64{"lbm": 0.96},
		NormPerfXCS: map[string]float64{"lbm": 0.44},
		PunishSen:   map[string]uint64{"lbm": 2},
		PunishDis:   map[string]uint64{"lbm": 47},
		Disruptors:  []string{"lbm"},
		Timeline: Fig5Timeline{
			RanXCS:   []float64{1, 1},
			RanKyoto: []float64{1, 0},
			Rate:     []float64{3200, 0},
			Quota:    []float64{7500, -6000},
		},
	}
	tables := r.Tables()
	if len(tables) != 2 {
		t.Fatalf("want 2 panels, got %d", len(tables))
	}
	if !strings.Contains(tables[0].String(), "0.96") {
		t.Fatalf("perf panel:\n%s", tables[0])
	}
	if !strings.Contains(tables[1].String(), "-6000") {
		t.Fatalf("timeline panel:\n%s", tables[1])
	}
}

func TestFig6TableRender(t *testing.T) {
	r := Fig6Result{
		Counts:      []int{1, 15},
		NormPerf:    []float64{0.98, 0.97},
		NormPerfXCS: []float64{0.44, 0.4},
	}
	s := r.Table().String()
	if !strings.Contains(s, "15") || !strings.Contains(s, "0.97") {
		t.Fatalf("fig6 table:\n%s", s)
	}
}

func TestFig8TableRender(t *testing.T) {
	r := Fig8Result{
		PiscesAlone: 100, PiscesColocated: 124,
		KS4PiscesAlone: 100, KS4PiscesColocated: 102,
	}
	s := r.Table().String()
	if !strings.Contains(s, "24") || !strings.Contains(s, "KS4Pisces") {
		t.Fatalf("fig8 table:\n%s", s)
	}
}

func TestFig9TableRender(t *testing.T) {
	r := Fig9Result{Apps: []string{"mcf"}, Degradation: []float64{10.1}}
	s := r.Table().String()
	if !strings.Contains(s, "mcf") || !strings.Contains(s, "10.1") {
		t.Fatalf("fig9 table:\n%s", s)
	}
}

func TestFig10TableRender(t *testing.T) {
	r := Fig10Result{HmmerNotIsolated: 1, HmmerIsolated: 1, BzipNotIsolated: 8, BzipIsolated: 8, BzipWithDisruptors: 18}
	s := r.Table().String()
	if !strings.Contains(s, "hmmer") || !strings.Contains(s, "control") {
		t.Fatalf("fig10 table:\n%s", s)
	}
}

func TestFig11TableRender(t *testing.T) {
	r := Fig11Result{
		Apps:         []string{"lbm"},
		Solo:         map[string]float64{"lbm": 3200},
		Dedicated:    map[string]float64{"lbm": 3200},
		InPlace:      map[string]float64{"lbm": 2400},
		Shadow:       map[string]float64{"lbm": 3100},
		TauDedicated: 0.96, TauInPlace: 0.91, TauShadow: 0.96,
	}
	s := r.Table().String()
	if !strings.Contains(s, "kendall tau") || !strings.Contains(s, "3200") {
		t.Fatalf("fig11 table:\n%s", s)
	}
}

func TestFig12TableRender(t *testing.T) {
	r := Fig12Result{
		TickMillis: []int{3, 30},
		ExecXCS:    []float64{1851, 1860},
		ExecKyoto:  []float64{1851, 1860},
	}
	s := r.Table().String()
	if !strings.Contains(s, "overhead %") || !strings.Contains(s, "1851") {
		t.Fatalf("fig12 table:\n%s", s)
	}
}

func TestFig2TableRender(t *testing.T) {
	r := Fig2Result{
		Series:     map[string][]float64{"alone": {5120, 0}},
		Situations: []string{"alone"},
	}
	s := r.Table().String()
	if !strings.Contains(s, "alone") || !strings.Contains(s, "5120") {
		t.Fatalf("fig2 table:\n%s", s)
	}
}

func TestKS4LinuxTableRender(t *testing.T) {
	r := KS4LinuxResult{
		NormPerf:     map[string]float64{"KS4Xen (credit)": 0.96},
		NormPerfBase: map[string]float64{"KS4Xen (credit)": 0.44},
		Systems:      []string{"KS4Xen (credit)"},
	}
	s := r.Table().String()
	if !strings.Contains(s, "KS4Xen") || !strings.Contains(s, "0.96") {
		t.Fatalf("ks4linux table:\n%s", s)
	}
}
