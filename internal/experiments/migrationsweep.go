package experiments

// Migration sweep: reactive operation vs proactive admission. The trace
// sweep asked which *placement* policy tames churn-driven
// unpredictability; this sweep adds the other axis real operators use —
// live migration after the fact, and a Borg-style pending queue instead
// of outright rejection. Every {rebalancer} x {placer} combination
// replays the same trace on identically seeded fleets, so the table
// reads as one controlled experiment: does migrating noisy VMs
// (reactively, or topology-aware onto big-LLC hosts) buy back the tail
// that Kyoto's llc_cap permits protect by construction, and what does
// each approach cost in rejections, queue wait and migrations?
//
// Like the trace sweep, it is expressed as a sweep.Sweep
// (MigrationSweeper): solo-baseline jobs plus one job per combination,
// shardable across processes and merged bit-identically.

import (
	"encoding/json"
	"fmt"
	"strings"

	"kyoto/internal/arrivals"
	"kyoto/internal/cache"
	"kyoto/internal/cluster"
	"kyoto/internal/detect"
	"kyoto/internal/machine"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
)

// MigrationSweepConfig parameterizes a migration sweep.
type MigrationSweepConfig struct {
	// Hosts is the fleet size each combination gets (default 4).
	Hosts int
	// Seed seeds every fleet and the solo baselines (default 1).
	Seed uint64
	// Workers caps each fleet's RunTicks concurrency (0 = GOMAXPROCS).
	Workers int
	// Lockstep forces the eager fleet engine (schedule-only, excluded
	// from the config digest like Workers; see TraceSweepConfig).
	Lockstep bool
	// DrainTicks extends the replay past the last event (default
	// DefaultMeasureTicks).
	DrainTicks int
	// Overrides optionally makes the fleets heterogeneous; the same
	// overrides apply under every combination.
	Overrides map[int]cluster.HostOverride
	// BigLLCFactor, when non-zero (a power of two), gives the highest-ID
	// host an LLC and permit budget scaled by this factor — the
	// heterogeneous fleet the topology-aware rebalancer steers polluters
	// to. An explicit Overrides entry for that host wins.
	BigLLCFactor int
	// Rebalancers names the rebalancing arms to sweep (default none,
	// reactive, topo — pinned explicitly, not cluster.RebalancerNames,
	// so the committed sweep fingerprints survive new policies being
	// registered; ask for "signature" by name).
	Rebalancers []string
	// RebalanceEvery is the rebalance epoch in ticks (default
	// arrivals.DefaultRebalanceEvery).
	RebalanceEvery uint64
	// Downtime is the per-migration blackout in ticks (default 0).
	Downtime int
	// Pending is the queue policy applied to rejected arrivals in every
	// arm (default PendingNone: reject outright).
	Pending arrivals.PendingPolicy
	// MaxWait bounds queue waits under PendingDeadline (default
	// arrivals.DefaultMaxWait).
	MaxWait uint64
	// Detector configures the change-point detectors of any "signature"
	// arm (zero value = detect defaults; ignored by the other arms). A
	// non-zero config enters the config digest.
	Detector detect.Config
	// Fidelity selects the cache-model tier for every fleet and the solo
	// baselines (default cache.FidelityExact). It enters the config
	// digest, so shards run at different fidelities refuse to merge.
	Fidelity cache.Fidelity
}

// MigrationSweepRow is one {rebalancer, placer} combination's outcome.
type MigrationSweepRow struct {
	// Placer and Rebalancer name the combination; Enforced reports
	// whether per-host Kyoto permit enforcement was active (the kyoto
	// placer's contract).
	Placer     string
	Rebalancer string
	Enforced   bool
	// Submitted/Placed/Rejected count VMs; RejectionRate is
	// Rejected/Submitted.
	Submitted     int
	Placed        int
	Rejected      int
	RejectionRate float64
	// CPUUtilization is the time-weighted mean booked vCPU share.
	CPUUtilization float64
	// WaitP50/P95/P99 are percentiles of the placed VMs' pending-queue
	// wait in ticks (all zero when the queue is disabled or never used).
	WaitP50, WaitP95, WaitP99 float64
	// MigrationCount is the number of live migrations applied.
	MigrationCount int
	// P50 and P99 are tail-oriented normalized-performance floors, as in
	// TraceSweepRow: PXX is the per-VM lifetime IPC over solo IPC that
	// XX% of placed VMs meet or exceed.
	P50, P99 float64
	// Replay is the full per-VM outcome for deeper analysis.
	Replay arrivals.Result
}

// MigrationSweepResult is the whole sweep.
type MigrationSweepResult struct {
	Hosts   int
	Pending arrivals.PendingPolicy
	Rows    []MigrationSweepRow
}

// migrationCombo is one {rebalancer, placer} arm of the plan.
type migrationCombo struct {
	rbName string
	placer cluster.Placer
	enf    bool
}

// migrationArmPayload is the canonical JSON result of one combination.
type migrationArmPayload struct {
	Placer     string          `json:"placer"`
	Rebalancer string          `json:"rebalancer"`
	Enforced   bool            `json:"enforced"`
	Replay     arrivals.Result `json:"replay"`
}

// MigrationSweeper is the shardable form of MigrationSweep (see
// TraceSweeper for the pattern): solo-baseline jobs plus one job per
// {rebalancer, placer} combination.
type MigrationSweeper struct {
	tr        arrivals.Trace
	cfg       MigrationSweepConfig
	apps      []string
	combos    []migrationCombo
	overrides map[int]cluster.HostOverride
	res       *MigrationSweepResult
}

// NewMigrationSweeper validates the trace and config, applies defaults
// and returns the shardable sweep.
func NewMigrationSweeper(tr arrivals.Trace, cfg MigrationSweepConfig) (*MigrationSweeper, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DrainTicks == 0 {
		cfg.DrainTicks = DefaultMeasureTicks
	}
	if len(cfg.Rebalancers) == 0 {
		cfg.Rebalancers = []string{"none", "reactive", "topo"}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := (&cluster.Signature{Detector: cfg.Detector}).Validate(); err != nil {
		return nil, err
	}
	var combos []migrationCombo
	for _, name := range cfg.Rebalancers {
		// Resolve now so a bogus name fails at plan time; each job builds
		// its own instance (rebalancers may carry per-run cooldown state).
		if _, err := cluster.RebalancerByName(name); err != nil {
			return nil, err
		}
		for _, arm := range tracePlacers {
			combos = append(combos, migrationCombo{name, arm.placer, arm.enforced})
		}
	}
	overrides, err := bigLLCOverrides(cfg)
	if err != nil {
		return nil, err
	}
	return &MigrationSweeper{
		tr: tr, cfg: cfg, apps: traceApps(tr), combos: combos, overrides: overrides,
	}, nil
}

// Name implements sweep.Sweep.
func (s *MigrationSweeper) Name() string { return "migration-sweep" }

// ConfigFingerprint implements sweep.ConfigFingerprinter (Workers
// excluded, as in TraceSweeper).
func (s *MigrationSweeper) ConfigFingerprint() string {
	return sweepConfigFingerprint(s.tr, struct {
		Hosts          int
		Seed           uint64
		DrainTicks     int
		Overrides      map[int]cluster.HostOverride
		BigLLCFactor   int
		Rebalancers    []string
		RebalanceEvery uint64
		Downtime       int
		Pending        arrivals.PendingPolicy
		MaxWait        uint64
		Detector       *detect.Config `json:",omitempty"`
		Fidelity       string         `json:",omitempty"`
	}{s.cfg.Hosts, s.cfg.Seed, s.cfg.DrainTicks, s.cfg.Overrides, s.cfg.BigLLCFactor,
		s.cfg.Rebalancers, s.cfg.RebalanceEvery, s.cfg.Downtime, s.cfg.Pending, s.cfg.MaxWait,
		detectorTag(s.cfg.Detector), fidelityTag(s.cfg.Fidelity)})
}

// Plan implements sweep.Sweep: solo baselines, then the combination
// grid rebalancer-major in the order requested, placers within in
// first-fit/spread/kyoto order.
func (s *MigrationSweeper) Plan() []sweep.Job {
	jobs := make([]sweep.Job, 0, len(s.apps)+len(s.combos))
	for _, app := range s.apps {
		jobs = append(jobs, sweep.Job{
			Sweep: s.Name(), Key: "solo/" + app, Index: len(jobs), Seed: s.cfg.Seed,
			Params: map[string]string{"app": app},
		})
	}
	for _, c := range s.combos {
		jobs = append(jobs, sweep.Job{
			Sweep: s.Name(), Key: "arm/" + c.rbName + "/" + c.placer.Name(), Index: len(jobs), Seed: s.cfg.Seed,
			Params: map[string]string{"rebalancer": c.rbName, "placer": c.placer.Name()},
		})
	}
	return jobs
}

// Run implements sweep.Sweep.
func (s *MigrationSweeper) Run(job sweep.Job) (json.RawMessage, error) {
	if app, ok := strings.CutPrefix(job.Key, "solo/"); ok {
		ipc, err := soloIPC(app, s.cfg.Seed, s.cfg.Fidelity)
		if err != nil {
			return nil, err
		}
		return json.Marshal(soloPayload{App: app, IPC: ipc})
	}
	c, err := s.comboByKey(job.Key)
	if err != nil {
		return nil, err
	}
	// A fresh rebalancer per job: the built-ins carry per-VM cooldown
	// state, which must not leak between combinations (or between the
	// shards of a distributed run, which could never share it anyway).
	rb, err := cluster.RebalancerByName(c.rbName)
	if err != nil {
		return nil, err
	}
	if sig, ok := rb.(*cluster.Signature); ok {
		sig.Detector = s.cfg.Detector
	}
	armRebalancer(rb, s.tr, s.cfg.RebalanceEvery)
	f, err := cluster.New(cluster.Config{
		Hosts:     s.cfg.Hosts,
		Template:  cluster.HostTemplate{Seed: s.cfg.Seed, EnableKyoto: c.enf, Fidelity: s.cfg.Fidelity},
		Overrides: s.overrides,
		Placer:    c.placer,
		Workers:   s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	replay, err := arrivals.Replay(f, s.tr, arrivals.Options{
		DrainTicks:        s.cfg.DrainTicks,
		Lockstep:          s.cfg.Lockstep,
		Pending:           s.cfg.Pending,
		MaxWait:           s.cfg.MaxWait,
		Rebalancer:        rb,
		RebalanceEvery:    s.cfg.RebalanceEvery,
		MigrationDowntime: s.cfg.Downtime,
	})
	if err != nil {
		return nil, fmt.Errorf("placer %s, rebalancer %s: %w", c.placer.Name(), c.rbName, err)
	}
	return json.Marshal(migrationArmPayload{
		Placer: c.placer.Name(), Rebalancer: c.rbName, Enforced: c.enf, Replay: replay,
	})
}

// Merge implements sweep.Sweep.
func (s *MigrationSweeper) Merge(payloads []json.RawMessage) error {
	solo := make(map[string]float64, len(s.apps))
	for i, app := range s.apps {
		var p soloPayload
		if err := json.Unmarshal(payloads[i], &p); err != nil {
			return fmt.Errorf("solo/%s payload: %w", app, err)
		}
		solo[p.App] = p.IPC
	}
	res := &MigrationSweepResult{Hosts: s.cfg.Hosts, Pending: s.cfg.Pending}
	for i := range s.combos {
		var p migrationArmPayload
		if err := json.Unmarshal(payloads[len(s.apps)+i], &p); err != nil {
			return fmt.Errorf("arm payload %d: %w", i, err)
		}
		row := MigrationSweepRow{
			Placer:         p.Placer,
			Rebalancer:     p.Rebalancer,
			Enforced:       p.Enforced,
			Submitted:      len(p.Replay.Records),
			Placed:         p.Replay.Placed,
			Rejected:       p.Replay.Rejected,
			RejectionRate:  p.Replay.RejectionRate(),
			CPUUtilization: p.Replay.CPUUtilization,
			MigrationCount: len(p.Replay.Migrations),
			Replay:         p.Replay,
		}
		if waits := p.Replay.PlacedWaits(); len(waits) > 0 {
			// Waits are lower-is-better, so pXX is the plain XXth
			// percentile: the wait the luckiest XX% stayed under.
			row.WaitP50, _ = stats.Percentile(waits, 50)
			row.WaitP95, _ = stats.Percentile(waits, 95)
			row.WaitP99, _ = stats.Percentile(waits, 99)
		}
		if norm := normalizedPerf(p.Replay, solo); len(norm) > 0 {
			row.P50, _ = stats.Percentile(norm, 50)
			row.P99, _ = stats.Percentile(norm, 1)
		}
		res.Rows = append(res.Rows, row)
	}
	s.res = res
	return nil
}

// Result returns the merged sweep outcome; it is nil until Merge ran.
func (s *MigrationSweeper) Result() *MigrationSweepResult { return s.res }

// comboByKey resolves an "arm/<rebalancer>/<placer>" job key.
func (s *MigrationSweeper) comboByKey(key string) (migrationCombo, error) {
	for _, c := range s.combos {
		if key == "arm/"+c.rbName+"/"+c.placer.Name() {
			return c, nil
		}
	}
	return migrationCombo{}, fmt.Errorf("unknown job key %q", key)
}

// MigrationSweep replays the trace through every requested rebalancer x
// placer combination on identically seeded fleets. Rows are ordered
// rebalancer-major in the order requested, placers within in
// first-fit/spread/kyoto order. The whole sweep is deterministic for a
// given trace and config, and is the single-process path through
// MigrationSweeper — sharded runs merge to the identical result.
func MigrationSweep(tr arrivals.Trace, cfg MigrationSweepConfig) (*MigrationSweepResult, error) {
	s, err := NewMigrationSweeper(tr, cfg)
	if err != nil {
		return nil, err
	}
	if err := (sweep.Engine{Workers: cfg.Workers}).Run(s); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// bigLLCOverrides merges cfg.Overrides with the BigLLCFactor host.
func bigLLCOverrides(cfg MigrationSweepConfig) (map[int]cluster.HostOverride, error) {
	if cfg.BigLLCFactor == 0 {
		return cfg.Overrides, nil
	}
	if cfg.BigLLCFactor < 0 || cfg.BigLLCFactor&(cfg.BigLLCFactor-1) != 0 {
		return nil, fmt.Errorf("experiments: BigLLCFactor %d is not a power of two (cache sets must stay a power of two)", cfg.BigLLCFactor)
	}
	overrides := make(map[int]cluster.HostOverride, len(cfg.Overrides)+1)
	for id, o := range cfg.Overrides {
		overrides[id] = o
	}
	big := cfg.Hosts - 1
	if _, ok := overrides[big]; !ok {
		m := machine.TableOne(cfg.Seed)
		m.LLC.SizeBytes *= cfg.BigLLCFactor
		cores := m.Sockets * m.CoresPerSocket
		overrides[big] = cluster.HostOverride{
			Machine:   m,
			LLCBudget: float64(cores*cluster.DefaultLLCCapPerCore) * float64(cfg.BigLLCFactor),
		}
	}
	return overrides, nil
}

// Table renders the sweep as the migration-vs-admission comparison the
// kyotosim -migrate CLI prints.
func (r MigrationSweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Migration sweep: %d hosts, pending=%s", r.Hosts, r.Pending),
		Note: "normalized perf = per-VM lifetime IPC / solo IPC (1.0 = as if alone); p99 norm = floor 99% of VMs meet; " +
			"wait pXX = pending-queue wait (ticks) XX% of placed VMs stayed under; " +
			"first-fit and spread run unprotected, kyoto books and enforces llc_cap permits",
		Columns: []string{"placer", "migrate", "placed", "rejected", "rej rate", "wait p50", "wait p95", "wait p99", "migs", "p99 norm"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Placer, row.Rebalancer, row.Placed, row.Rejected,
			fmt.Sprintf("%.1f%%", 100*row.RejectionRate),
			row.WaitP50, row.WaitP95, row.WaitP99,
			row.MigrationCount, row.P99)
	}
	return t
}
