package experiments

// Migration sweep: reactive operation vs proactive admission. The trace
// sweep asked which *placement* policy tames churn-driven
// unpredictability; this sweep adds the other axis real operators use —
// live migration after the fact, and a Borg-style pending queue instead
// of outright rejection. Every {rebalancer} x {placer} combination
// replays the same trace on identically seeded fleets, so the table
// reads as one controlled experiment: does migrating noisy VMs
// (reactively, or topology-aware onto big-LLC hosts) buy back the tail
// that Kyoto's llc_cap permits protect by construction, and what does
// each approach cost in rejections, queue wait and migrations?

import (
	"fmt"

	"kyoto/internal/arrivals"
	"kyoto/internal/cluster"
	"kyoto/internal/machine"
	"kyoto/internal/stats"
)

// MigrationSweepConfig parameterizes a migration sweep.
type MigrationSweepConfig struct {
	// Hosts is the fleet size each combination gets (default 4).
	Hosts int
	// Seed seeds every fleet and the solo baselines (default 1).
	Seed uint64
	// Workers caps each fleet's RunTicks concurrency (0 = GOMAXPROCS).
	Workers int
	// DrainTicks extends the replay past the last event (default
	// DefaultMeasureTicks).
	DrainTicks int
	// Overrides optionally makes the fleets heterogeneous; the same
	// overrides apply under every combination.
	Overrides map[int]cluster.HostOverride
	// BigLLCFactor, when non-zero (a power of two), gives the highest-ID
	// host an LLC and permit budget scaled by this factor — the
	// heterogeneous fleet the topology-aware rebalancer steers polluters
	// to. An explicit Overrides entry for that host wins.
	BigLLCFactor int
	// Rebalancers names the rebalancing arms to sweep (default all of
	// cluster.RebalancerNames: none, reactive, topo).
	Rebalancers []string
	// RebalanceEvery is the rebalance epoch in ticks (default
	// arrivals.DefaultRebalanceEvery).
	RebalanceEvery uint64
	// Downtime is the per-migration blackout in ticks (default 0).
	Downtime int
	// Pending is the queue policy applied to rejected arrivals in every
	// arm (default PendingNone: reject outright).
	Pending arrivals.PendingPolicy
	// MaxWait bounds queue waits under PendingDeadline (default
	// arrivals.DefaultMaxWait).
	MaxWait uint64
}

// MigrationSweepRow is one {rebalancer, placer} combination's outcome.
type MigrationSweepRow struct {
	// Placer and Rebalancer name the combination; Enforced reports
	// whether per-host Kyoto permit enforcement was active (the kyoto
	// placer's contract).
	Placer     string
	Rebalancer string
	Enforced   bool
	// Submitted/Placed/Rejected count VMs; RejectionRate is
	// Rejected/Submitted.
	Submitted     int
	Placed        int
	Rejected      int
	RejectionRate float64
	// CPUUtilization is the time-weighted mean booked vCPU share.
	CPUUtilization float64
	// WaitP50/P95/P99 are percentiles of the placed VMs' pending-queue
	// wait in ticks (all zero when the queue is disabled or never used).
	WaitP50, WaitP95, WaitP99 float64
	// MigrationCount is the number of live migrations applied.
	MigrationCount int
	// P50 and P99 are tail-oriented normalized-performance floors, as in
	// TraceSweepRow: PXX is the per-VM lifetime IPC over solo IPC that
	// XX% of placed VMs meet or exceed.
	P50, P99 float64
	// Replay is the full per-VM outcome for deeper analysis.
	Replay arrivals.Result
}

// MigrationSweepResult is the whole sweep.
type MigrationSweepResult struct {
	Hosts   int
	Pending arrivals.PendingPolicy
	Rows    []MigrationSweepRow
}

// MigrationSweep replays the trace through every requested rebalancer x
// placer combination on identically seeded fleets. Rows are ordered
// rebalancer-major in the order requested, placers within in
// first-fit/spread/kyoto order. The whole sweep is deterministic for a
// given trace and config.
func MigrationSweep(tr arrivals.Trace, cfg MigrationSweepConfig) (*MigrationSweepResult, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DrainTicks == 0 {
		cfg.DrainTicks = DefaultMeasureTicks
	}
	if len(cfg.Rebalancers) == 0 {
		cfg.Rebalancers = cluster.RebalancerNames()
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	rebalancers := make([]cluster.Rebalancer, len(cfg.Rebalancers))
	for i, name := range cfg.Rebalancers {
		rb, err := cluster.RebalancerByName(name)
		if err != nil {
			return nil, err
		}
		rebalancers[i] = rb
	}
	overrides, err := bigLLCOverrides(cfg)
	if err != nil {
		return nil, err
	}
	solo, err := soloBaselines(tr, cfg.Seed)
	if err != nil {
		return nil, err
	}

	type combo struct {
		rbName string
		rb     cluster.Rebalancer
		placer cluster.Placer
		enf    bool
	}
	var combos []combo
	for i, rb := range rebalancers {
		for _, arm := range tracePlacers {
			combos = append(combos, combo{cfg.Rebalancers[i], rb, arm.placer, arm.enforced})
		}
	}

	rows := make([]MigrationSweepRow, len(combos))
	err = ForEach(len(combos), cfg.Workers, func(i int) error {
		c := combos[i]
		f, err := cluster.New(cluster.Config{
			Hosts:     cfg.Hosts,
			Template:  cluster.HostTemplate{Seed: cfg.Seed, EnableKyoto: c.enf},
			Overrides: overrides,
			Placer:    c.placer,
			Workers:   cfg.Workers,
		})
		if err != nil {
			return err
		}
		replay, err := arrivals.Replay(f, tr, arrivals.Options{
			DrainTicks:        cfg.DrainTicks,
			Pending:           cfg.Pending,
			MaxWait:           cfg.MaxWait,
			Rebalancer:        c.rb,
			RebalanceEvery:    cfg.RebalanceEvery,
			MigrationDowntime: cfg.Downtime,
		})
		if err != nil {
			return fmt.Errorf("placer %s, rebalancer %s: %w", c.placer.Name(), c.rbName, err)
		}
		row := MigrationSweepRow{
			Placer:         c.placer.Name(),
			Rebalancer:     c.rbName,
			Enforced:       c.enf,
			Submitted:      len(replay.Records),
			Placed:         replay.Placed,
			Rejected:       replay.Rejected,
			RejectionRate:  replay.RejectionRate(),
			CPUUtilization: replay.CPUUtilization,
			MigrationCount: len(replay.Migrations),
			Replay:         replay,
		}
		if waits := replay.PlacedWaits(); len(waits) > 0 {
			// Waits are lower-is-better, so pXX is the plain XXth
			// percentile: the wait the luckiest XX% stayed under.
			row.WaitP50, _ = stats.Percentile(waits, 50)
			row.WaitP95, _ = stats.Percentile(waits, 95)
			row.WaitP99, _ = stats.Percentile(waits, 99)
		}
		var norm []float64
		for _, rec := range replay.Records {
			base := solo[rec.App]
			if rec.Rejected || base == 0 || rec.Counters.UnhaltedCycles == 0 {
				continue
			}
			norm = append(norm, rec.Counters.IPC()/base)
		}
		if len(norm) > 0 {
			row.P50, _ = stats.Percentile(norm, 50)
			row.P99, _ = stats.Percentile(norm, 1)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &MigrationSweepResult{Hosts: cfg.Hosts, Pending: cfg.Pending, Rows: rows}, nil
}

// bigLLCOverrides merges cfg.Overrides with the BigLLCFactor host.
func bigLLCOverrides(cfg MigrationSweepConfig) (map[int]cluster.HostOverride, error) {
	if cfg.BigLLCFactor == 0 {
		return cfg.Overrides, nil
	}
	if cfg.BigLLCFactor < 0 || cfg.BigLLCFactor&(cfg.BigLLCFactor-1) != 0 {
		return nil, fmt.Errorf("experiments: BigLLCFactor %d is not a power of two (cache sets must stay a power of two)", cfg.BigLLCFactor)
	}
	overrides := make(map[int]cluster.HostOverride, len(cfg.Overrides)+1)
	for id, o := range cfg.Overrides {
		overrides[id] = o
	}
	big := cfg.Hosts - 1
	if _, ok := overrides[big]; !ok {
		m := machine.TableOne(cfg.Seed)
		m.LLC.SizeBytes *= cfg.BigLLCFactor
		cores := m.Sockets * m.CoresPerSocket
		overrides[big] = cluster.HostOverride{
			Machine:   m,
			LLCBudget: float64(cores*cluster.DefaultLLCCapPerCore) * float64(cfg.BigLLCFactor),
		}
	}
	return overrides, nil
}

// Table renders the sweep as the migration-vs-admission comparison the
// kyotosim -migrate CLI prints.
func (r MigrationSweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Migration sweep: %d hosts, pending=%s", r.Hosts, r.Pending),
		Note: "normalized perf = per-VM lifetime IPC / solo IPC (1.0 = as if alone); p99 norm = floor 99% of VMs meet; " +
			"wait pXX = pending-queue wait (ticks) XX% of placed VMs stayed under; " +
			"first-fit and spread run unprotected, kyoto books and enforces llc_cap permits",
		Columns: []string{"placer", "migrate", "placed", "rejected", "rej rate", "wait p50", "wait p95", "wait p99", "migs", "p99 norm"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Placer, row.Rebalancer, row.Placed, row.Rejected,
			fmt.Sprintf("%.1f%%", 100*row.RejectionRate),
			row.WaitP50, row.WaitP95, row.WaitP99,
			row.MigrationCount, row.P99)
	}
	return t
}
