package experiments

import (
	"fmt"
	"sync"

	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/monitor"
	"kyoto/internal/pmc"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Paper booking levels (§4.3): the paper books 250k for the Figure 5 VMs
// and 50k for the Figure 6 disruptors. Our Equation-1 unit is misses per
// busy millisecond on the scaled clock, so the same labels map to 250/50
// (see EXPERIMENTS.md for the unit discussion).
const (
	Fig5LLCCap    = 250
	Fig6DisLLCCap = 50
)

// ks4xen builds one KS4Xen scheduler instance with its oracle monitor.
// Each scenario needs a fresh pair.
func ks4xen(cores int, opts ...core.Option) (*core.Kyoto, []hv.TickHook) {
	k := core.New(sched.NewCredit(cores), opts...)
	mon := monitor.NewOracle(k, core.Equation1)
	return k, []hv.TickHook{mon}
}

// Fig5Timeline is the per-tick trace of the vdis1 comparison (Fig 5
// bottom): whether the disruptor ran, its measured llc_cap, and its
// pollution-quota balance.
type Fig5Timeline struct {
	// RanXCS[t] is 1 when vdis1 consumed CPU at tick t under plain XCS.
	RanXCS []float64
	// RanKyoto[t] is the same under KS4Xen.
	RanKyoto []float64
	// Rate[t] is the measured llc_cap (Equation 1) under KS4Xen.
	Rate []float64
	// Quota[t] is the pollution-quota balance under KS4Xen (misses).
	Quota []float64
}

// Fig5Result is the §4.3 effectiveness study.
type Fig5Result struct {
	// NormPerf[dis] is vsen1's IPC under KS4Xen co-located with dis,
	// normalized to its solo IPC (paper: ~1.0 for all three disruptors).
	NormPerf map[string]float64
	// NormPerfXCS[dis] is the same under plain XCS (the contrast).
	NormPerfXCS map[string]float64
	// PunishSen[dis] and PunishDis[dis] count pollution punishments.
	PunishSen map[string]uint64
	PunishDis map[string]uint64
	// Timeline traces the vdis1 (lbm) run.
	Timeline Fig5Timeline
	// Disruptors lists the order.
	Disruptors []string
}

// fig5TimelineTicks is the timeline length (the paper plots ~70 ticks).
const fig5TimelineTicks = 70

// Fig5 runs vsen1 against each disruptor under XCS and KS4Xen.
func Fig5(seed uint64) (Fig5Result, error) {
	disruptors := []string{workload.VDis1, workload.VDis2, workload.VDis3}
	res := Fig5Result{
		NormPerf:    make(map[string]float64, len(disruptors)),
		NormPerfXCS: make(map[string]float64, len(disruptors)),
		PunishSen:   make(map[string]uint64, len(disruptors)),
		PunishDis:   make(map[string]uint64, len(disruptors)),
		Disruptors:  disruptors,
	}

	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return res, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	// Each disruptor's XCS/KS4Xen pair is independent: fan them out.
	var mu sync.Mutex
	err = ForEach(len(disruptors), 0, func(i int) error {
		dis := disruptors[i]
		// Plain XCS.
		xcs, err := Run(Scenario{
			Seed:    seed,
			VMs:     fig5VMs(dis),
			Measure: 45,
		})
		if err != nil {
			return err
		}

		// KS4Xen.
		k, hooks := ks4xen(4)
		ks, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      fig5VMs(dis),
			Hooks:    hooks,
			Measure:  45,
		})
		if err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		res.NormPerfXCS[dis] = xcs.IPC("sen") / soloIPC
		res.NormPerf[dis] = ks.IPC("sen") / soloIPC
		res.PunishSen[dis] = ks.World.FindVM("sen").Punishments
		res.PunishDis[dis] = ks.World.FindVM("dis").Punishments
		return nil
	})
	if err != nil {
		return res, err
	}

	tl, err := fig5Timeline(seed)
	if err != nil {
		return res, err
	}
	res.Timeline = tl
	return res, nil
}

// fig5VMs builds the vsen1+disruptor pair with the paper's bookings.
func fig5VMs(dis string) []vm.Spec {
	return []vm.Spec{
		{Name: "sen", App: workload.VSen1, Pins: []int{0}, LLCCap: Fig5LLCCap},
		{Name: "dis", App: dis, Pins: []int{1}, LLCCap: Fig5LLCCap},
	}
}

// fig5Timeline records the vdis1 run/rate/quota traces.
func fig5Timeline(seed uint64) (Fig5Timeline, error) {
	var tl Fig5Timeline

	// XCS run trace.
	xcsRec := NewTickSeries(func(_ *vm.VM, delta pmc.Counters, _ *hv.World) float64 {
		if delta.WallCycles() > 0 {
			return 1
		}
		return 0
	})
	if _, err := Run(Scenario{
		Seed:    seed,
		VMs:     fig5VMs(workload.VDis1),
		Hooks:   []hv.TickHook{xcsRec},
		Warmup:  1,
		Measure: fig5TimelineTicks,
	}); err != nil {
		return tl, err
	}
	tl.RanXCS = xcsRec.Values["dis"]

	// KS4Xen run trace: CPU usage, measured rate, quota ledger.
	k, hooks := ks4xen(4)
	var rate, quota, ran []float64
	rec := NewTickSeries(func(domain *vm.VM, delta pmc.Counters, _ *hv.World) float64 {
		if domain.Name != "dis" {
			return 0
		}
		if delta.WallCycles() > 0 {
			ran = append(ran, 1)
		} else {
			ran = append(ran, 0)
		}
		rate = append(rate, core.Equation1Value(delta))
		quota = append(quota, k.QuotaBalance(domain))
		return 0
	})
	if _, err := Run(Scenario{
		Seed:     seed,
		NewSched: func(int) sched.Scheduler { return k },
		VMs:      fig5VMs(workload.VDis1),
		Hooks:    append(hooks, rec),
		Warmup:   1,
		Measure:  fig5TimelineTicks,
	}); err != nil {
		return tl, err
	}
	tl.RanKyoto, tl.Rate, tl.Quota = ran, rate, quota
	return tl, nil
}

// Tables renders the three panels.
func (r Fig5Result) Tables() []Table {
	perf := Table{
		Title: "Figure 5 (top): KS4Xen keeps vsen1 performance under contention",
		Note: fmt.Sprintf("llc_cap booked: %d for every VM; normalized to vsen1 solo IPC; punishments over the run",
			Fig5LLCCap),
		Columns: []string{"disruptor", "vsen1 norm perf (KS4Xen)", "vsen1 norm perf (XCS)", "punishments sen", "punishments dis"},
	}
	for _, dis := range r.Disruptors {
		perf.AddRow(dis, r.NormPerf[dis], r.NormPerfXCS[dis], r.PunishSen[dis], r.PunishDis[dis])
	}

	tl := Table{
		Title:   "Figure 5 (bottom): vdis1 (lbm) timeline under XCS vs KS4Xen",
		Note:    "KS4Xen deprives the VM of the processor whenever measured llc_cap exhausts the booked quota",
		Columns: []string{"tick", "ran (XCS)", "ran (KS4Xen)", "measured llc_cap", "quota balance"},
	}
	for t := 0; t < len(r.Timeline.RanKyoto) && t < len(r.Timeline.RanXCS); t++ {
		tl.AddRow(t, r.Timeline.RanXCS[t], r.Timeline.RanKyoto[t], r.Timeline.Rate[t], r.Timeline.Quota[t])
	}
	return []Table{perf, tl}
}
