package experiments

import (
	"strings"
	"testing"
)

// TestTwoTierTraceSweep exercises the broad-then-confirm pipeline on the
// committed golden trace: the analytic pass must rank all three placers,
// the confirmation rows must come from the exact tier, and the rendered
// tables must pair the two.
func TestTwoTierTraceSweep(t *testing.T) {
	res, err := TwoTierTraceSweep(GoldenSweepTrace(), GoldenTraceSweepConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopK != 2 || len(res.Confirmed) != 2 {
		t.Fatalf("TopK = %d, confirmed = %d, want 2 and 2", res.TopK, len(res.Confirmed))
	}
	if len(res.Analytic.Rows) != 3 {
		t.Fatalf("broad pass rows = %d, want all 3 placers", len(res.Analytic.Rows))
	}
	// Confirmation order follows the analytic p99 ranking (best first).
	byPlacer := map[string]TraceSweepRow{}
	for _, row := range res.Analytic.Rows {
		byPlacer[row.Placer] = row
	}
	if a, b := byPlacer[res.Confirmed[0].Placer].P99, byPlacer[res.Confirmed[1].Placer].P99; a < b {
		t.Errorf("confirmation order not by analytic p99: %v before %v", a, b)
	}
	for _, row := range res.Confirmed {
		if row.P99 <= 0 || row.P99 > 1 {
			t.Errorf("confirmed %s p99 = %v, want a (0,1] normalized floor", row.Placer, row.P99)
		}
	}

	tables := res.Tables()
	if len(tables) != 2 {
		t.Fatalf("Tables() = %d tables, want broad + confirmation", len(tables))
	}
	if !strings.Contains(tables[0].Title, "analytic broad pass") {
		t.Errorf("broad table title = %q", tables[0].Title)
	}
	if got := len(tables[1].Rows); got != 2 {
		t.Errorf("confirmation table rows = %d, want 2", got)
	}
	rendered := tables[0].String() + tables[1].String()
	for _, placer := range []string{res.Confirmed[0].Placer, res.Confirmed[1].Placer} {
		if !strings.Contains(rendered, placer) {
			t.Errorf("rendered two-tier output missing placer %q", placer)
		}
	}
}

// TestTwoTierTopKDefaultsAndClamps pins the topK edge cases: <=0 selects
// DefaultConfirmTopK, and a request beyond the arm count confirms
// everything rather than failing.
func TestTwoTierTopKDefaultsAndClamps(t *testing.T) {
	res, err := TwoTierTraceSweep(GoldenSweepTrace(), GoldenTraceSweepConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopK != DefaultConfirmTopK {
		t.Errorf("TopK = %d, want DefaultConfirmTopK %d", res.TopK, DefaultConfirmTopK)
	}
	res, err = TwoTierTraceSweep(GoldenSweepTrace(), GoldenTraceSweepConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if res.TopK != 3 || len(res.Confirmed) != 3 {
		t.Errorf("over-large topK: TopK = %d, confirmed = %d, want clamp to 3", res.TopK, len(res.Confirmed))
	}
}
