package experiments

// Detection-sweep tests: behaviour on the committed traces, the
// golden_detection.json pin of the signature arm's change points and
// migration plan on the 22-VM example (serial vs parallel, under -race
// in CI's short pass), and merge(shards(n)) == unsharded for n ∈ {1,4}.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"kyoto/internal/arrivals"
	"kyoto/internal/cache"
	"kyoto/internal/cluster"
	"kyoto/internal/detect"
	"kyoto/internal/sweep"
)

var updateDetectionGolden = flag.Bool("update-detection", false, "rewrite testdata/golden_detection.json with the observed signature-arm outcome")

// exampleTrace loads the committed 22-VM example trace.
func exampleTrace(t *testing.T) arrivals.Trace {
	t.Helper()
	tr, err := arrivals.Load(filepath.Join("..", "arrivals", "testdata", "example.json"))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func detectionRowByArm(t *testing.T, res *DetectionSweepResult, arm string) DetectionSweepRow {
	t.Helper()
	for _, row := range res.Rows {
		if row.Arm == arm {
			return row
		}
	}
	t.Fatalf("no %q row in %+v", arm, res.Rows)
	return DetectionSweepRow{}
}

func TestDetectionSweepOnCommittedExample(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the committed 22-VM example trace on three exact-model fleets; the short-mode coverage is the analytic-tier golden")
	}
	tr := exampleTrace(t)
	res, err := DetectionSweep(tr, DetectionSweepConfig{Hosts: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 arms", len(res.Rows))
	}
	adm := detectionRowByArm(t, res, "admission")
	rea := detectionRowByArm(t, res, "reactive")
	sig := detectionRowByArm(t, res, "signature")
	if !adm.Enforced || rea.Enforced || sig.Enforced {
		t.Fatal("only the admission arm runs with Kyoto enforcement")
	}
	if adm.Triggers != 0 || adm.MigrationCount != 0 {
		t.Fatalf("admission-only arm triggered: %+v", adm)
	}
	if rea.Triggers == 0 {
		t.Fatal("threshold-reactive arm never triggered on the example trace")
	}
	if sig.ChangePointCount == 0 {
		t.Fatal("signature arm confirmed no change points on the example trace")
	}
	// The signature arm's whole point: far fewer migrations than raw
	// threshold reaction, because it only acts on confirmed shifts.
	if sig.Triggers >= rea.Triggers {
		t.Fatalf("signature triggered %d >= reactive %d — confirmation is not suppressing noise", sig.Triggers, rea.Triggers)
	}
	for _, row := range res.Rows {
		if row.Submitted != len(tr.Events) {
			t.Fatalf("arm %s saw %d submissions, want %d", row.Arm, row.Submitted, len(tr.Events))
		}
		if row.Triggers > 0 && (row.FalseTriggerRate < 0 || row.FalseTriggerRate > 1) {
			t.Fatalf("arm %s false-trigger rate %v out of range", row.Arm, row.FalseTriggerRate)
		}
	}
	tbl := res.Table().String()
	for _, want := range []string{"admission", "reactive", "signature", "false rate", "mean ttd", "chgpts"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, tbl)
		}
	}
}

func TestDetectionSweepOnCommittedAzure(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the 256-VM Azure-calibrated trace on three 8-host fleets")
	}
	tr, err := arrivals.Load(filepath.Join("..", "arrivals", "testdata", "azure_calibrated_256.json"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := DetectionSweep(tr, DetectionSweepConfig{Hosts: 8, Seed: 1, Fidelity: cache.FidelityAnalytic})
	if err != nil {
		t.Fatal(err)
	}
	sig := detectionRowByArm(t, res, "signature")
	rea := detectionRowByArm(t, res, "reactive")
	if sig.ChangePointCount == 0 || sig.Triggers == 0 {
		t.Fatalf("signature arm inert on azure trace: %d change points, %d triggers", sig.ChangePointCount, sig.Triggers)
	}
	if sig.Triggers >= rea.Triggers {
		t.Fatalf("signature triggered %d >= reactive %d on azure", sig.Triggers, rea.Triggers)
	}
	if rea.Detected == 0 || rea.MeanTimeToDetect <= 0 {
		t.Fatalf("reactive arm detected nothing on azure: %+v", rea)
	}
}

// goldenDetectionConfig is the pinned configuration behind
// golden_detection.json: the committed 22-VM example trace on four
// hosts at the exact cache tier — the tier where the amortization
// check lets the signature arm actually migrate (at the analytic tier
// the confirmed shifts land late enough that no surviving VM in this
// bounded-lifetime trace amortizes a move, which would pin a vacuous
// plan).
func goldenDetectionConfig(workers int) DetectionSweepConfig {
	return DetectionSweepConfig{Hosts: 4, Seed: 1, Workers: workers}
}

// detectionGolden is the committed signature-arm outcome on the 22-VM
// example trace: every confirmed change point and the full migration
// plan, plus the sweep's merged fingerprint.
type detectionGolden struct {
	MergedFingerprint string                    `json:"merged_fingerprint"`
	ChangePoints      []cluster.ChangePoint     `json:"change_points"`
	Migrations        []arrivals.MigrationEvent `json:"migrations"`
}

func TestGoldenDetectionSerialVsParallel(t *testing.T) {
	tr := exampleTrace(t)
	run := func(workers int) (*DetectionSweepResult, string) {
		s, err := NewDetectionSweeper(tr, goldenDetectionConfig(workers))
		if err != nil {
			t.Fatal(err)
		}
		env, err := sweep.Engine{Workers: workers}.RunShard(s, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := sweep.MergedFingerprint([]sweep.Envelope{env})
		if err != nil {
			t.Fatal(err)
		}
		if err := sweep.Merge(s, []sweep.Envelope{env}); err != nil {
			t.Fatal(err)
		}
		return s.Result(), fp
	}

	serial, serialFP := run(1)
	parallel, parallelFP := run(runtime.GOMAXPROCS(0))
	if serialFP != parallelFP {
		t.Fatalf("serial fingerprint %s != parallel %s", serialFP, parallelFP)
	}
	sigS := detectionRowByArm(t, serial, "signature")
	sigP := detectionRowByArm(t, parallel, "signature")
	if sigS.ChangePointCount == 0 || len(sigS.Replay.Migrations) == 0 {
		t.Fatalf("golden scenario is vacuous: %d change points, %d migrations", sigS.ChangePointCount, len(sigS.Replay.Migrations))
	}
	if !reflect.DeepEqual(sigS.ChangePoints, sigP.ChangePoints) {
		t.Fatalf("change points diverge serial vs parallel:\n%+v\n%+v", sigS.ChangePoints, sigP.ChangePoints)
	}
	if !reflect.DeepEqual(sigS.Replay.Migrations, sigP.Replay.Migrations) {
		t.Fatalf("migration plans diverge serial vs parallel:\n%+v\n%+v", sigS.Replay.Migrations, sigP.Replay.Migrations)
	}

	got := detectionGolden{
		MergedFingerprint: serialFP,
		ChangePoints:      sigS.ChangePoints,
		Migrations:        sigS.Replay.Migrations,
	}
	path := filepath.Join("testdata", "golden_detection.json")
	if *updateDetectionGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update-detection to create): %v", err)
	}
	var want detectionGolden
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if got.MergedFingerprint != want.MergedFingerprint {
		t.Fatalf("merged fingerprint %s, want committed %s", got.MergedFingerprint, want.MergedFingerprint)
	}
	if !reflect.DeepEqual(got.ChangePoints, want.ChangePoints) {
		t.Fatalf("change points drifted from golden:\n got %+v\nwant %+v", got.ChangePoints, want.ChangePoints)
	}
	if !reflect.DeepEqual(got.Migrations, want.Migrations) {
		t.Fatalf("migration plan drifted from golden:\n got %+v\nwant %+v", got.Migrations, want.Migrations)
	}
}

func TestDetectionSweepShardMergeBitIdentity(t *testing.T) {
	tr := exampleTrace(t)
	// The analytic tier keeps five full sweeps cheap enough for the
	// short -race pass; merge determinism is fidelity-independent.
	shardGoldenCase(t, func() sweep.Sweep {
		s, err := NewDetectionSweeper(tr, DetectionSweepConfig{Hosts: 4, Seed: 1, Fidelity: cache.FidelityAnalytic})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, func(s sweep.Sweep) string {
		return s.(*DetectionSweeper).Result().Table().String()
	}, []int{1, 4})
}

func TestDetectionSweepValidatesConfig(t *testing.T) {
	tr := exampleTrace(t)
	if _, err := NewDetectionSweeper(tr, DetectionSweepConfig{Detector: detect.Config{Alpha: 2}}); err == nil {
		t.Fatal("alpha 2 must fail sweeper validation")
	}
	bogus := arrivals.Trace{Events: []arrivals.Event{{App: "no-such-workload"}}}
	if _, err := NewDetectionSweeper(bogus, DetectionSweepConfig{}); err == nil {
		t.Fatal("unknown app class must fail trace validation")
	}
}

// TestDetectionBenchSweeper covers the kyotobench "detection" entry and
// the seed-sweep adapter at the analytic tier: the synthetic-trace
// sweeper runs end to end, its Seedable hooks agree on metric shape,
// and the single-process DetectionSweep path reproduces the engine run.
func TestDetectionBenchSweeper(t *testing.T) {
	s := NewDetectionBenchSweeper(3, cache.FidelityAnalytic, false)
	if err := (sweep.Engine{}).Run(s); err != nil {
		t.Fatal(err)
	}
	res := s.Result()
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 arms, got %d", len(res.Rows))
	}
	names := s.MetricNames()
	rows := s.MetricRows()
	if len(rows) != 3 {
		t.Fatalf("want 3 metric rows, got %d", len(rows))
	}
	for _, row := range rows {
		if len(row.Values) != len(names) {
			t.Fatalf("arm %s: %d values for %d metrics", row.Arm, len(row.Values), len(names))
		}
	}
	re, err := s.Reseed(4)
	if err != nil {
		t.Fatal(err)
	}
	if re.(*DetectionSweeper).cfg.Seed != 4 {
		t.Fatal("Reseed did not take")
	}

	// The one-call path must match the engine run on the same trace.
	tr := arrivals.Synthesize(arrivals.SynthConfig{Seed: 3, VMs: 48})
	direct, err := DetectionSweep(tr, DetectionSweepConfig{Seed: 3, Fidelity: cache.FidelityAnalytic})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, res) {
		t.Fatal("DetectionSweep result differs from the engine-run sweeper")
	}
}
