package experiments

import (
	"kyoto/internal/hv"
	"kyoto/internal/pmc"
	"kyoto/internal/vm"
)

// TickSeries records one per-tick scalar per VM — the building block for
// the paper's timeline plots (Figures 2 and 5).
type TickSeries struct {
	// Values[name] is the per-tick series for VM name.
	Values map[string][]float64
	// sample extracts the scalar from a VM's counter delta for the tick.
	sample func(domain *vm.VM, delta pmc.Counters, w *hv.World) float64

	samplers map[*vm.VCPU]*pmc.Sampler
}

var _ hv.TickHook = (*TickSeries)(nil)

// NewTickSeries returns a recorder applying sample each tick to each VM.
func NewTickSeries(sample func(domain *vm.VM, delta pmc.Counters, w *hv.World) float64) *TickSeries {
	return &TickSeries{
		Values:   make(map[string][]float64),
		sample:   sample,
		samplers: make(map[*vm.VCPU]*pmc.Sampler),
	}
}

// NewLLCMissSeries records per-tick LLC misses per VM (Figure 2's metric).
func NewLLCMissSeries() *TickSeries {
	return NewTickSeries(func(_ *vm.VM, delta pmc.Counters, _ *hv.World) float64 {
		return float64(delta.LLCMisses)
	})
}

// OnTick implements hv.TickHook.
func (t *TickSeries) OnTick(w *hv.World) {
	for _, domain := range w.VMs() {
		var delta pmc.Counters
		for _, v := range domain.VCPUs {
			s, ok := t.samplers[v]
			if !ok {
				s = pmc.NewSampler(&v.Counters)
				t.samplers[v] = s
			}
			delta.Add(s.Sample())
		}
		t.Values[domain.Name] = append(t.Values[domain.Name], t.sample(domain, delta, w))
	}
}
