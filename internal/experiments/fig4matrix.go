package experiments

import (
	"kyoto/internal/stats"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Fig4Matrix computes the full pairwise degradation matrix behind Figure
// 4's aggressiveness averages: cell (attacker, victim) is the victim's IPC
// degradation (percent) when co-run in parallel with the attacker. It is a
// diagnostic companion to Fig4, exposed as the "fig4matrix" experiment.
func Fig4Matrix(seed uint64) (Table, error) {
	apps := workload.Figure4Apps()

	solos := make([]Scenario, len(apps))
	for i, app := range apps {
		solos[i] = soloScenario(app, seed)
	}
	soloRes, err := RunAll(solos)
	if err != nil {
		return Table{}, err
	}
	soloIPC := make(map[string]float64, len(apps))
	for i, app := range apps {
		soloIPC[app] = soloRes[i].PerVM["solo"].IPC()
	}

	type pair struct{ attacker, victim string }
	var pairs []pair
	var scenarios []Scenario
	for _, a := range apps {
		for _, b := range apps {
			if a == b {
				continue
			}
			pairs = append(pairs, pair{a, b})
			scenarios = append(scenarios, Scenario{
				Seed: seed,
				VMs: []vm.Spec{
					pinned("attacker", a, 0),
					pinned("victim", b, 1),
				},
			})
		}
	}
	pairRes, err := RunAll(scenarios)
	if err != nil {
		return Table{}, err
	}
	deg := make(map[pair]float64, len(pairs))
	for i, p := range pairs {
		deg[p] = stats.DegradationPercent(soloIPC[p.victim], pairRes[i].IPC("victim"))
	}

	t := Table{
		Title:   "Figure 4 diagnostic: pairwise degradation matrix (attacker rows, victim columns, %)",
		Columns: append([]string{"attacker\\victim"}, apps...),
	}
	for _, a := range apps {
		cells := make([]interface{}, 0, len(apps)+1)
		cells = append(cells, a)
		for _, b := range apps {
			if a == b {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, deg[pair{a, b}])
		}
		t.AddRow(cells...)
	}
	return t, nil
}
