package experiments

import (
	"encoding/json"
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
	"kyoto/internal/workload"
)

// Fig4MatrixSweeper computes the full pairwise degradation matrix behind
// Figure 4's aggressiveness averages: cell (attacker, victim) is the
// victim's IPC degradation (percent) when co-run in parallel with the
// attacker. It is a diagnostic companion to Fig4, exposed as the
// "fig4matrix" experiment, and shares Fig4's solo + pairwise job plan so
// it shards the same way.
type Fig4MatrixSweeper struct {
	seed uint64
	apps []string
	res  *Table
}

// NewFig4MatrixSweeper returns the shardable degradation-matrix
// diagnostic.
func NewFig4MatrixSweeper(seed uint64) *Fig4MatrixSweeper {
	return &Fig4MatrixSweeper{seed: seed, apps: workload.Figure4Apps()}
}

// Name implements sweep.Sweep.
func (s *Fig4MatrixSweeper) Name() string { return "fig4matrix" }

// ConfigFingerprint implements sweep.ConfigFingerprinter.
func (s *Fig4MatrixSweeper) ConfigFingerprint() string {
	return sweep.FingerprintPayload([]byte(fmt.Sprintf(`{"seed":%d}`, s.seed)))
}

// Plan implements sweep.Sweep.
func (s *Fig4MatrixSweeper) Plan() []sweep.Job { return fig4Plan(s.Name(), s.apps, s.seed) }

// Run implements sweep.Sweep.
func (s *Fig4MatrixSweeper) Run(job sweep.Job) (json.RawMessage, error) {
	return fig4RunJob(job, s.seed, cache.FidelityExact)
}

// Merge implements sweep.Sweep: fold the cells into the rendered matrix.
func (s *Fig4MatrixSweeper) Merge(payloads []json.RawMessage) error {
	soloIPC := make(map[string]float64, len(s.apps))
	for i, app := range s.apps {
		var p fig4SoloPayload
		if err := json.Unmarshal(payloads[i], &p); err != nil {
			return fmt.Errorf("solo/%s payload: %w", app, err)
		}
		soloIPC[app] = p.IPC
	}
	type pair struct{ attacker, victim string }
	deg := make(map[pair]float64, len(payloads)-len(s.apps))
	for i := range fig4Pairs(s.apps) {
		var p fig4PairPayload
		if err := json.Unmarshal(payloads[len(s.apps)+i], &p); err != nil {
			return fmt.Errorf("pair payload %d: %w", i, err)
		}
		deg[pair{p.Attacker, p.Victim}] = stats.DegradationPercent(soloIPC[p.Victim], p.VictimIPC)
	}

	t := Table{
		Title:   "Figure 4 diagnostic: pairwise degradation matrix (attacker rows, victim columns, %)",
		Columns: append([]string{"attacker\\victim"}, s.apps...),
	}
	for _, a := range s.apps {
		cells := make([]interface{}, 0, len(s.apps)+1)
		cells = append(cells, a)
		for _, b := range s.apps {
			if a == b {
				cells = append(cells, "-")
				continue
			}
			cells = append(cells, deg[pair{a, b}])
		}
		t.AddRow(cells...)
	}
	s.res = &t
	return nil
}

// Result returns the merged matrix table; it is nil until Merge ran.
func (s *Fig4MatrixSweeper) Result() *Table { return s.res }

// Fig4Matrix computes the pairwise degradation matrix in-process through
// Fig4MatrixSweeper.
func Fig4Matrix(seed uint64) (Table, error) {
	s := NewFig4MatrixSweeper(seed)
	if err := (sweep.Engine{}).Run(s); err != nil {
		return Table{}, err
	}
	return *s.Result(), nil
}
