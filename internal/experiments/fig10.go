package experiments

import (
	"kyoto/internal/core"
	"kyoto/internal/vm"
)

// Fig10Result is the §4.5 skip-heuristic justification: llc_cap_act
// (Equation 1) measured in place (not isolated, co-located) vs isolated,
// for the two situations where isolation is avoidable:
//
//  1. hmmer — a vCPU with very low LLC misses — measured while co-located
//     with three disruptors: contention cannot inflate a working set that
//     lives in the private caches, so in-place == isolated.
//  2. bzip — a normal vCPU — measured while co-located only with hmmer
//     vCPUs: quiet co-runners cannot inflate its counters either.
type Fig10Result struct {
	HmmerNotIsolated float64
	HmmerIsolated    float64
	BzipNotIsolated  float64
	BzipIsolated     float64
	// BzipWithDisruptors is the control the heuristics protect against:
	// bzip measured in place among disruptors (inflated).
	BzipWithDisruptors float64
}

// Fig10 runs the five measurements concurrently (each is an independent
// world).
func Fig10(seed uint64) (Fig10Result, error) {
	var res Fig10Result

	scenarios := []Scenario{
		// hmmer among disruptors (in place).
		{Seed: seed, VMs: []vm.Spec{
			pinned("target", "hmmer", 0),
			pinned("d1", "lbm", 1),
			pinned("d2", "blockie", 2),
			pinned("d3", "mcf", 3),
		}},
		soloScenario("hmmer", seed),
		// bzip among hmmers (in place).
		{Seed: seed, VMs: []vm.Spec{
			pinned("target", "bzip", 0),
			pinned("h1", "hmmer", 1),
			pinned("h2", "hmmer", 2),
			pinned("h3", "hmmer", 3),
		}},
		soloScenario("bzip", seed),
		// Control: bzip among disruptors (what the heuristics must avoid
		// treating as bzip's own pollution).
		{Seed: seed, VMs: []vm.Spec{
			pinned("target", "bzip", 0),
			pinned("d1", "lbm", 1),
			pinned("d2", "blockie", 2),
			pinned("d3", "mcf", 3),
		}},
	}
	rs, err := RunAll(scenarios)
	if err != nil {
		return res, err
	}
	eq1 := func(r Result, name string) float64 {
		return core.Equation1Value(r.PerVM[name])
	}
	res.HmmerNotIsolated = eq1(rs[0], "target")
	res.HmmerIsolated = eq1(rs[1], "solo")
	res.BzipNotIsolated = eq1(rs[2], "target")
	res.BzipIsolated = eq1(rs[3], "solo")
	res.BzipWithDisruptors = eq1(rs[4], "target")
	return res, nil
}

// Table renders the bars.
func (r Fig10Result) Table() Table {
	t := Table{
		Title:   "Figure 10: vCPU isolation can be skipped in two situations (llc_cap_act, eq 1)",
		Note:    "pairs should match; the control row shows why quiet co-runners are required",
		Columns: []string{"measurement", "not isolated", "isolated", "co-runners"},
	}
	t.AddRow("hmmer", r.HmmerNotIsolated, r.HmmerIsolated, "lbm+blockie+mcf")
	t.AddRow("bzip", r.BzipNotIsolated, r.BzipIsolated, "3x hmmer")
	t.AddRow("bzip (control)", r.BzipWithDisruptors, r.BzipIsolated, "lbm+blockie+mcf")
	return t
}
