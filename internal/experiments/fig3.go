package experiments

import (
	"fmt"

	"kyoto/internal/stats"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Fig3Caps is the disruptor computing-capacity sweep (percent of a core).
var Fig3Caps = []int{20, 40, 60, 80, 100}

// Fig3Result is the §4.1 "processor is a good lever" experiment: the
// degradation of each sensitive VM when co-run with vdis1 (lbm) whose CPU
// cap sweeps Fig3Caps. The paper's claim is that degradation increases
// (approximately linearly) with the disruptor's computing capacity, which
// is what makes the CPU an effective lever for pollution control.
type Fig3Result struct {
	// Degradation[app] aligns with Caps: degradation percent per cap.
	Degradation map[string][]float64
	// PearsonR[app] is the linear-correlation coefficient of the curve.
	PearsonR map[string]float64
	// Caps echoes Fig3Caps.
	Caps []int
}

// Fig3 runs the sweep for vsen1..3 against vdis1.
func Fig3(seed uint64) (Fig3Result, error) {
	sens := []string{workload.VSen1, workload.VSen2, workload.VSen3}

	solos := make([]Scenario, len(sens))
	for i, app := range sens {
		solos[i] = soloScenario(app, seed)
	}
	soloRes, err := RunAll(solos)
	if err != nil {
		return Fig3Result{}, err
	}
	soloIPC := make(map[string]float64, len(sens))
	for i, app := range sens {
		soloIPC[app] = soloRes[i].PerVM["solo"].IPC()
	}

	type key struct {
		app string
		cap int
	}
	var keys []key
	var scenarios []Scenario
	for _, app := range sens {
		for _, c := range Fig3Caps {
			keys = append(keys, key{app, c})
			scenarios = append(scenarios, Scenario{
				Seed: seed,
				VMs: []vm.Spec{
					pinned("sen", app, 0),
					{Name: "dis", App: workload.VDis1, Pins: []int{1}, CapPercent: c},
				},
			})
		}
	}
	results, err := RunAll(scenarios)
	if err != nil {
		return Fig3Result{}, err
	}

	out := Fig3Result{
		Degradation: make(map[string][]float64, len(sens)),
		PearsonR:    make(map[string]float64, len(sens)),
		Caps:        Fig3Caps,
	}
	for i, k := range keys {
		deg := stats.DegradationPercent(soloIPC[k.app], results[i].IPC("sen"))
		if deg < 0 {
			deg = 0
		}
		out.Degradation[k.app] = append(out.Degradation[k.app], deg)
	}
	caps := make([]float64, len(Fig3Caps))
	for i, c := range Fig3Caps {
		caps[i] = float64(c)
	}
	for _, app := range sens {
		r, err := stats.PearsonR(caps, out.Degradation[app])
		if err != nil {
			r = 0
		}
		out.PearsonR[app] = r
	}
	return out, nil
}

// Table renders the sweep.
func (r Fig3Result) Table() Table {
	t := Table{
		Title: "Figure 3: sensitive-VM degradation vs vdis1 (lbm) computing capacity",
		Note:  "the processor is the lever: reducing a polluter's CPU reduces its aggressiveness",
	}
	t.Columns = []string{"vsen \\ cap%"}
	for _, c := range r.Caps {
		t.Columns = append(t.Columns, fmt.Sprintf("%d%%", c))
	}
	t.Columns = append(t.Columns, "pearson r")
	for _, app := range []string{workload.VSen1, workload.VSen2, workload.VSen3} {
		row := []interface{}{app}
		for _, d := range r.Degradation[app] {
			row = append(row, d)
		}
		row = append(row, r.PearsonR[app])
		t.AddRow(row...)
	}
	return t
}
