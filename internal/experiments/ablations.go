package experiments

import (
	"encoding/json"
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/sched"
	"kyoto/internal/sweep"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// This file holds the design-choice ablations promised in DESIGN.md §6 —
// extensions beyond the paper that quantify the alternatives its related
// work section argues against. The three studies are independent, so the
// fan-out is expressed as a sweep.Sweep (AblationSweeper) and shards like
// every other sweep.

// AblationIndicator reruns the Fig 5 vsen1-vs-vdis1 scenario with quota
// enforcement driven by each indicator, returning vsen1's normalized
// performance under Equation 1 and under raw LLCM. Equation 1 punishes by
// busy-time pollution; raw LLCM conflates pollution with occupancy, which
// under-punishes halty polluters.
func AblationIndicator(seed uint64) (eq1Perf, llcmPerf float64, err error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return 0, 0, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	run := func(ind core.Indicator) (float64, error) {
		k := core.New(sched.NewCredit(4))
		mon := monitor.NewOracle(k, ind)
		r, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      fig5VMs(workload.VDis1),
			Hooks:    []hv.TickHook{mon},
			Measure:  45,
		})
		if err != nil {
			return 0, err
		}
		return r.IPC("sen") / soloIPC, nil
	}
	if eq1Perf, err = run(core.Equation1); err != nil {
		return 0, 0, err
	}
	if llcmPerf, err = run(core.RawLLCM); err != nil {
		return 0, 0, err
	}
	return eq1Perf, llcmPerf, nil
}

// AblationPartitioning compares Kyoto enforcement against an idealized
// UCP-style hardware partitioning of the LLC (half the ways per VM) on the
// Fig 5 scenario. Partitioning needs hardware the paper's datacenters lack;
// Kyoto approximates its isolation in software.
func AblationPartitioning(seed uint64) (kyotoPerf, partPerf float64, err error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return 0, 0, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	// Kyoto arm.
	k, hooks := ks4xen(4)
	kr, err := Run(Scenario{
		Seed:     seed,
		NewSched: func(int) sched.Scheduler { return k },
		VMs:      fig5VMs(workload.VDis1),
		Hooks:    hooks,
		Measure:  45,
	})
	if err != nil {
		return 0, 0, err
	}
	kyotoPerf = kr.IPC("sen") / soloIPC

	// Way-partitioned arm: plain XCS, but the LLC is split 10/10 ways.
	mcfg := machine.TableOne(seed)
	mcfg.LLC.Policy = cache.PartitionedLRU
	w, err := hv.New(hv.Config{Machine: mcfg, Seed: seed}, sched.NewCredit(4))
	if err != nil {
		return 0, 0, err
	}
	sen, err := w.AddVM(vm.Spec{Name: "sen", App: workload.VSen1, Pins: []int{0}})
	if err != nil {
		return 0, 0, err
	}
	dis, err := w.AddVM(vm.Spec{Name: "dis", App: workload.VDis1, Pins: []int{1}})
	if err != nil {
		return 0, 0, err
	}
	llc := w.Machine().Socket(0).LLC
	if err := llc.SetPartition(sen.VCPUs[0].Owner(), 0x003FF); err != nil { // ways 0-9
		return 0, 0, err
	}
	if err := llc.SetPartition(dis.VCPUs[0].Owner(), 0xFFC00); err != nil { // ways 10-19
		return 0, 0, err
	}
	w.RunTicks(DefaultWarmupTicks)
	before := sen.Counters()
	w.RunTicks(45)
	partPerf = sen.Counters().Delta(before).IPC() / soloIPC
	return kyotoPerf, partPerf, nil
}

// AblationBanking measures the cost of letting polluters bank unused quota
// ("carbon credits"): vsen1's normalized performance against a bursty
// blockie polluter without banking vs with 4 slices of banking.
func AblationBanking(seed uint64) (noBank, bank float64, err error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return 0, 0, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	run := func(opts ...core.Option) (float64, error) {
		k := core.New(sched.NewCredit(4), opts...)
		mon := monitor.NewOracle(k, core.Equation1)
		r, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      fig5VMs(workload.VDis2), // blockie: the bursty wiper
			Hooks:    []hv.TickHook{mon},
			Measure:  60,
		})
		if err != nil {
			return 0, err
		}
		return r.IPC("sen") / soloIPC, nil
	}
	if noBank, err = run(); err != nil {
		return 0, 0, err
	}
	if bank, err = run(core.WithBanking(4)); err != nil {
		return 0, 0, err
	}
	return noBank, bank, nil
}

// ablationArms names the independent studies in plan order; each job
// returns the pair of normalized performances its study contrasts.
var ablationArms = []struct {
	key  string
	run  func(seed uint64) (a, b float64, err error)
	rows [2][2]string // {ablation, arm} labels for the A and B values
}{
	{"indicator", AblationIndicator, [2][2]string{
		{"quota indicator", "equation 1 (paper)"},
		{"quota indicator", "raw LLCM"},
	}},
	{"partitioning", AblationPartitioning, [2][2]string{
		{"vs hardware partitioning", "KS4Xen (software)"},
		{"vs hardware partitioning", "UCP-style 10/10 ways"},
	}},
	{"banking", AblationBanking, [2][2]string{
		{"quota banking (vs blockie)", "no banking (paper)"},
		{"quota banking (vs blockie)", "bank 4 slices"},
	}},
}

// ablationPayload is one study's pair of outcomes.
type ablationPayload struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
}

// AblationSweeper is the shardable form of AblationTable: one job per
// design-choice study.
type AblationSweeper struct {
	seed uint64
	res  *Table
	// vals keeps the merged study outcomes in ablationArms order, for
	// the Seedable metric rows.
	vals []ablationPayload
}

// NewAblationSweeper returns the shardable ablation suite.
func NewAblationSweeper(seed uint64) *AblationSweeper { return &AblationSweeper{seed: seed} }

// Name implements sweep.Sweep.
func (s *AblationSweeper) Name() string { return "ablations" }

// ConfigFingerprint implements sweep.ConfigFingerprinter.
func (s *AblationSweeper) ConfigFingerprint() string {
	return sweep.FingerprintPayload([]byte(fmt.Sprintf(`{"seed":%d}`, s.seed)))
}

// Plan implements sweep.Sweep.
func (s *AblationSweeper) Plan() []sweep.Job {
	jobs := make([]sweep.Job, len(ablationArms))
	for i, arm := range ablationArms {
		jobs[i] = sweep.Job{Sweep: s.Name(), Key: "ablation/" + arm.key, Index: i, Seed: s.seed}
	}
	return jobs
}

// Run implements sweep.Sweep.
func (s *AblationSweeper) Run(job sweep.Job) (json.RawMessage, error) {
	for _, arm := range ablationArms {
		if job.Key == "ablation/"+arm.key {
			a, b, err := arm.run(s.seed)
			if err != nil {
				return nil, fmt.Errorf("%s ablation: %w", arm.key, err)
			}
			return json.Marshal(ablationPayload{A: a, B: b})
		}
	}
	return nil, fmt.Errorf("unknown job key %q", job.Key)
}

// Merge implements sweep.Sweep: add the rows in presentation order.
func (s *AblationSweeper) Merge(payloads []json.RawMessage) error {
	t := Table{
		Title:   "Ablations: design choices around the Kyoto mechanism",
		Note:    "vsen1 normalized performance on the Figure 5 scenario unless stated",
		Columns: []string{"ablation", "arm", "vsen1 norm perf"},
	}
	s.vals = make([]ablationPayload, len(ablationArms))
	for i, arm := range ablationArms {
		var p ablationPayload
		if err := json.Unmarshal(payloads[i], &p); err != nil {
			return fmt.Errorf("%s payload: %w", arm.key, err)
		}
		t.AddRow(arm.rows[0][0], arm.rows[0][1], p.A)
		t.AddRow(arm.rows[1][0], arm.rows[1][1], p.B)
		s.vals[i] = p
	}
	s.res = &t
	return nil
}

// Result returns the merged table; it is nil until Merge ran.
func (s *AblationSweeper) Result() *Table { return s.res }

// AblationTable renders all three ablations as one table (the
// "ablations" kyotobench experiment), in-process through AblationSweeper.
func AblationTable(seed uint64) (Table, error) {
	s := NewAblationSweeper(seed)
	if err := (sweep.Engine{}).Run(s); err != nil {
		return Table{}, err
	}
	return *s.Result(), nil
}
