package experiments

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// This file holds the design-choice ablations promised in DESIGN.md §6 —
// extensions beyond the paper that quantify the alternatives its related
// work section argues against.

// AblationIndicator reruns the Fig 5 vsen1-vs-vdis1 scenario with quota
// enforcement driven by each indicator, returning vsen1's normalized
// performance under Equation 1 and under raw LLCM. Equation 1 punishes by
// busy-time pollution; raw LLCM conflates pollution with occupancy, which
// under-punishes halty polluters.
func AblationIndicator(seed uint64) (eq1Perf, llcmPerf float64, err error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return 0, 0, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	run := func(ind core.Indicator) (float64, error) {
		k := core.New(sched.NewCredit(4))
		mon := monitor.NewOracle(k, ind)
		r, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      fig5VMs(workload.VDis1),
			Hooks:    []hv.TickHook{mon},
			Measure:  45,
		})
		if err != nil {
			return 0, err
		}
		return r.IPC("sen") / soloIPC, nil
	}
	if eq1Perf, err = run(core.Equation1); err != nil {
		return 0, 0, err
	}
	if llcmPerf, err = run(core.RawLLCM); err != nil {
		return 0, 0, err
	}
	return eq1Perf, llcmPerf, nil
}

// AblationPartitioning compares Kyoto enforcement against an idealized
// UCP-style hardware partitioning of the LLC (half the ways per VM) on the
// Fig 5 scenario. Partitioning needs hardware the paper's datacenters lack;
// Kyoto approximates its isolation in software.
func AblationPartitioning(seed uint64) (kyotoPerf, partPerf float64, err error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return 0, 0, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	// Kyoto arm.
	k, hooks := ks4xen(4)
	kr, err := Run(Scenario{
		Seed:     seed,
		NewSched: func(int) sched.Scheduler { return k },
		VMs:      fig5VMs(workload.VDis1),
		Hooks:    hooks,
		Measure:  45,
	})
	if err != nil {
		return 0, 0, err
	}
	kyotoPerf = kr.IPC("sen") / soloIPC

	// Way-partitioned arm: plain XCS, but the LLC is split 10/10 ways.
	mcfg := machine.TableOne(seed)
	mcfg.LLC.Policy = cache.PartitionedLRU
	w, err := hv.New(hv.Config{Machine: mcfg, Seed: seed}, sched.NewCredit(4))
	if err != nil {
		return 0, 0, err
	}
	sen, err := w.AddVM(vm.Spec{Name: "sen", App: workload.VSen1, Pins: []int{0}})
	if err != nil {
		return 0, 0, err
	}
	dis, err := w.AddVM(vm.Spec{Name: "dis", App: workload.VDis1, Pins: []int{1}})
	if err != nil {
		return 0, 0, err
	}
	llc := w.Machine().Socket(0).LLC
	if err := llc.SetPartition(sen.VCPUs[0].Owner(), 0x003FF); err != nil { // ways 0-9
		return 0, 0, err
	}
	if err := llc.SetPartition(dis.VCPUs[0].Owner(), 0xFFC00); err != nil { // ways 10-19
		return 0, 0, err
	}
	w.RunTicks(DefaultWarmupTicks)
	before := sen.Counters()
	w.RunTicks(45)
	partPerf = sen.Counters().Delta(before).IPC() / soloIPC
	return kyotoPerf, partPerf, nil
}

// AblationBanking measures the cost of letting polluters bank unused quota
// ("carbon credits"): vsen1's normalized performance against a bursty
// blockie polluter without banking vs with 4 slices of banking.
func AblationBanking(seed uint64) (noBank, bank float64, err error) {
	solo, err := Run(soloScenario(workload.VSen1, seed))
	if err != nil {
		return 0, 0, err
	}
	soloIPC := solo.PerVM["solo"].IPC()

	run := func(opts ...core.Option) (float64, error) {
		k := core.New(sched.NewCredit(4), opts...)
		mon := monitor.NewOracle(k, core.Equation1)
		r, err := Run(Scenario{
			Seed:     seed,
			NewSched: func(int) sched.Scheduler { return k },
			VMs:      fig5VMs(workload.VDis2), // blockie: the bursty wiper
			Hooks:    []hv.TickHook{mon},
			Measure:  60,
		})
		if err != nil {
			return 0, err
		}
		return r.IPC("sen") / soloIPC, nil
	}
	if noBank, err = run(); err != nil {
		return 0, 0, err
	}
	if bank, err = run(core.WithBanking(4)); err != nil {
		return 0, 0, err
	}
	return noBank, bank, nil
}

// AblationTable renders all three ablations as one table (the
// "ablations" kyotobench experiment).
func AblationTable(seed uint64) (Table, error) {
	t := Table{
		Title:   "Ablations: design choices around the Kyoto mechanism",
		Note:    "vsen1 normalized performance on the Figure 5 scenario unless stated",
		Columns: []string{"ablation", "arm", "vsen1 norm perf"},
	}
	// The three ablations are independent studies: fan them out and add
	// the rows in presentation order afterwards.
	var eq1, llcm, kyotoPerf, part, noBank, bank float64
	arms := []struct {
		label string
		run   func() error
	}{
		{"indicator ablation", func() (err error) { eq1, llcm, err = AblationIndicator(seed); return }},
		{"partitioning ablation", func() (err error) { kyotoPerf, part, err = AblationPartitioning(seed); return }},
		{"banking ablation", func() (err error) { noBank, bank, err = AblationBanking(seed); return }},
	}
	err := ForEach(len(arms), 0, func(i int) error {
		if err := arms[i].run(); err != nil {
			return fmt.Errorf("%s: %w", arms[i].label, err)
		}
		return nil
	})
	if err != nil {
		return t, err
	}
	t.AddRow("quota indicator", "equation 1 (paper)", eq1)
	t.AddRow("quota indicator", "raw LLCM", llcm)
	t.AddRow("vs hardware partitioning", "KS4Xen (software)", kyotoPerf)
	t.AddRow("vs hardware partitioning", "UCP-style 10/10 ways", part)
	t.AddRow("quota banking (vs blockie)", "no banking (paper)", noBank)
	t.AddRow("quota banking (vs blockie)", "bank 4 slices", bank)
	return t, nil
}
