package experiments

// Shard determinism goldens: merging the envelopes of an n-way sharded
// sweep must reproduce the unsharded sweep bit for bit — same merged
// fingerprint (pinned in testdata/golden_sweep.json), same rendered
// tables — for n ∈ {1, 3, GOMAXPROCS}, under -race. This is the
// contract that lets kyotobench/kyotosim -shard fan a sweep across
// processes and machines without anyone re-checking the numbers.

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"kyoto/internal/sweep"
)

var updateSweepGolden = flag.Bool("update-sweep", false, "rewrite testdata/golden_sweep.json with the observed merged fingerprints")

// shardGoldenCase runs one sweep build across the given shard counts and
// returns the (identical) merged fingerprint plus the rendered table,
// failing if any shard count disagrees.
func shardGoldenCase(t *testing.T, build func() sweep.Sweep, render func(s sweep.Sweep) string, shardCounts []int) string {
	t.Helper()
	var wantFP, wantTable string
	for _, n := range shardCounts {
		envs := make([]sweep.Envelope, n)
		for k := 0; k < n; k++ {
			// A fresh sweep per shard, exactly like separate processes.
			env, err := sweep.Engine{Workers: 0}.RunShard(build(), k, n)
			if err != nil {
				t.Fatal(err)
			}
			envs[k] = env
		}
		fp, err := sweep.MergedFingerprint(envs)
		if err != nil {
			t.Fatal(err)
		}
		merged := build()
		if err := sweep.Merge(merged, envs); err != nil {
			t.Fatal(err)
		}
		table := render(merged)
		if wantFP == "" {
			wantFP, wantTable = fp, table
			continue
		}
		if fp != wantFP {
			t.Fatalf("%d shards: merged fingerprint %s != 1-shard %s", n, fp, wantFP)
		}
		if table != wantTable {
			t.Fatalf("%d shards: merged table differs from 1-shard run:\n%s\nvs\n%s", n, table, wantTable)
		}
	}
	return wantFP
}

func TestSweepShardDeterminismGolden(t *testing.T) {
	shardCounts := []int{1, 3}
	if !testing.Short() {
		if w := runtime.GOMAXPROCS(0); w > 3 {
			shardCounts = append(shardCounts, w)
		}
	}

	got := map[string]string{}
	// The trace sweep: cheap enough to run in short mode (and therefore
	// under CI's -race pass).
	got["trace-sweep-2h"] = shardGoldenCase(t, func() sweep.Sweep {
		s, err := NewTraceSweeper(sweepTrace(), GoldenTraceSweepConfig())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}, func(s sweep.Sweep) string {
		return s.(*TraceSweeper).Result().Table().String()
	}, shardCounts)

	// The 9-combination migration sweep exercises stateful rebalancers
	// and the pending queue across shard boundaries; it is heavier, so
	// full mode only.
	if !testing.Short() {
		got["migration-sweep-2h"] = shardGoldenCase(t, func() sweep.Sweep {
			s, err := NewMigrationSweeper(sweepTrace(), GoldenMigrationSweepConfig())
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, func(s sweep.Sweep) string {
			return s.(*MigrationSweeper).Result().Table().String()
		}, shardCounts)
	}

	path := filepath.Join("testdata", "golden_sweep.json")
	if *updateSweepGolden {
		if testing.Short() {
			t.Fatal("-update-sweep needs the full (non-short) run so every scenario is regenerated")
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (run with -update-sweep to create): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for key, fp := range got {
		if fp != want[key] {
			t.Fatalf("%s: merged sweep fingerprint %s, want %s — sharded execution no longer reproduces the committed baseline",
				key, fp, want[key])
		}
	}
}
