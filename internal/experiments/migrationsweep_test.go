package experiments

import (
	"strings"
	"testing"

	"kyoto/internal/arrivals"
)

func TestMigrationSweepComparesCombinations(t *testing.T) {
	if testing.Short() {
		t.Skip("migration sweep replays nine fleets")
	}
	res, err := MigrationSweep(sweepTrace(), MigrationSweepConfig{
		Hosts:        2,
		Seed:         5,
		DrainTicks:   12,
		BigLLCFactor: 2,
		Pending:      arrivals.PendingFIFO,
		Downtime:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("got %d rows, want 3 rebalancers x 3 placers", len(res.Rows))
	}
	migratingRows := 0
	for _, r := range res.Rows {
		if r.Submitted != 9 {
			t.Fatalf("%s/%s saw %d submissions", r.Placer, r.Rebalancer, r.Submitted)
		}
		if r.Rebalancer == "none" && r.MigrationCount != 0 {
			t.Fatalf("%s/none migrated %d times", r.Placer, r.MigrationCount)
		}
		if r.MigrationCount != len(r.Replay.Migrations) {
			t.Fatalf("%s/%s migration count %d != %d events", r.Placer, r.Rebalancer, r.MigrationCount, len(r.Replay.Migrations))
		}
		if r.MigrationCount > 0 {
			migratingRows++
		}
		if r.WaitP99 < r.WaitP50 {
			t.Fatalf("%s/%s wait percentiles inverted: p50 %v > p99 %v", r.Placer, r.Rebalancer, r.WaitP50, r.WaitP99)
		}
	}
	// The trace saturates a 2-host fleet, so at least one rebalancing arm
	// must actually migrate — otherwise the sweep is vacuous.
	if migratingRows == 0 {
		t.Fatal("no combination migrated anything")
	}

	// Identical configs reproduce identical outcomes (the sweep fans out
	// across goroutines; fingerprints must not care).
	again, err := MigrationSweep(sweepTrace(), MigrationSweepConfig{
		Hosts:        2,
		Seed:         5,
		DrainTicks:   12,
		BigLLCFactor: 2,
		Pending:      arrivals.PendingFIFO,
		Downtime:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i].Replay.Fingerprint() != again.Rows[i].Replay.Fingerprint() {
			t.Fatalf("row %d (%s/%s) not reproducible", i, res.Rows[i].Placer, res.Rows[i].Rebalancer)
		}
	}

	table := res.Table().String()
	for _, col := range []string{"placer", "migrate", "rej rate", "wait p50", "wait p95", "wait p99", "migs", "p99 norm"} {
		if !strings.Contains(table, col) {
			t.Fatalf("table missing column %q:\n%s", col, table)
		}
	}
}

func TestMigrationSweepReportsSJFWaits(t *testing.T) {
	if testing.Short() {
		t.Skip("replays three fleets")
	}
	res, err := MigrationSweep(sweepTrace(), MigrationSweepConfig{
		Hosts:       2,
		Seed:        5,
		DrainTicks:  6,
		Rebalancers: []string{"none"},
		Pending:     arrivals.PendingSJF,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pending != arrivals.PendingSJF {
		t.Fatalf("result pending policy %v", res.Pending)
	}
	if title := res.Table().Title; !strings.Contains(title, "pending=sjf") {
		t.Fatalf("table title %q does not name the sjf queue", title)
	}
	for _, r := range res.Rows {
		if r.WaitP99 < r.WaitP95 || r.WaitP95 < r.WaitP50 {
			t.Fatalf("%s: inverted wait percentiles p50=%v p95=%v p99=%v", r.Placer, r.WaitP50, r.WaitP95, r.WaitP99)
		}
	}
}

func TestMigrationSweepValidatesConfig(t *testing.T) {
	if _, err := MigrationSweep(sweepTrace(), MigrationSweepConfig{BigLLCFactor: 3}); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("BigLLCFactor 3: %v", err)
	}
	if _, err := MigrationSweep(sweepTrace(), MigrationSweepConfig{Rebalancers: []string{"bogus"}}); err == nil {
		t.Fatal("bogus rebalancer name must fail")
	}
	bad := arrivals.Trace{Events: []arrivals.Event{{App: "no-such-app"}}}
	if _, err := MigrationSweep(bad, MigrationSweepConfig{}); err == nil {
		t.Fatal("invalid trace must fail")
	}
}

func TestMigrationSweepSubsetOfRebalancers(t *testing.T) {
	if testing.Short() {
		t.Skip("replays three fleets")
	}
	res, err := MigrationSweep(sweepTrace(), MigrationSweepConfig{
		Hosts:       2,
		Seed:        5,
		DrainTicks:  6,
		Rebalancers: []string{"none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Rebalancer != "none" || r.MigrationCount != 0 {
			t.Fatalf("unexpected row %s/%s with %d migrations", r.Placer, r.Rebalancer, r.MigrationCount)
		}
	}
}
