package experiments

// The error-budget contract: every committed golden, run on both
// fidelity tiers, must keep the analytic tier's error within the
// budgets declared in crossval.go. Short mode (and therefore CI's -race
// pass) runs the cheap goldens; the full run covers all of them.

import (
	"strings"
	"testing"

	"kyoto/internal/cache"
	"kyoto/internal/sweep"
)

func TestCrossValidationBudgets(t *testing.T) {
	figures := CrossValFigures
	if testing.Short() {
		// The Figure 1/4 grids and the migration sweep replay dozens of
		// worlds on the exact tier; keep short mode to the goldens that
		// are cheap there too.
		figures = []string{"trace", "occupancy"}
	}
	res, err := CrossValidate(1, figures...)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0; len(res.Checks) == want {
		t.Fatal("no checks ran")
	}
	t.Logf("\n%s", res.Table().String())
	if res.Pass() != (len(res.Failures()) == 0) {
		t.Error("Pass() disagrees with Failures()")
	}
	for _, c := range res.Failures() {
		t.Errorf("%s %s: analytic error %.3f exceeds budget %.3f (exact %.3f, analytic %.3f)",
			c.Figure, c.Metric, c.Err, c.Budget, c.Exact, c.Analytic)
	}
}

// The golden configs are shared between the shard-determinism tests and
// the cross-validation harness; pin them so a drive-by edit cannot
// silently re-point every consumer at a different experiment.
func TestGoldenSweepConfigsPinned(t *testing.T) {
	if got := GoldenTraceSweepConfig(); got.Hosts != 2 || got.Seed != 5 || got.DrainTicks != 6 {
		t.Errorf("GoldenTraceSweepConfig() = %+v", got)
	}
	m := GoldenMigrationSweepConfig()
	if m.Hosts != 2 || m.Seed != 5 || m.BigLLCFactor != 2 || m.Downtime != 2 {
		t.Errorf("GoldenMigrationSweepConfig() = %+v", m)
	}
	if tr := GoldenSweepTrace(); len(tr.Events) == 0 {
		t.Error("GoldenSweepTrace() is empty")
	}
}

func TestCrossValidateRejectsUnknownFigure(t *testing.T) {
	if _, err := CrossValidate(1, "fig99"); err == nil {
		t.Fatal("unknown figure must error")
	}
}

// Shard envelopes produced on different fidelity tiers describe
// different experiments; the config digest must refuse to merge them,
// and must keep accepting same-tier envelopes.
func TestMismatchedFidelityEnvelopesRefuseMerge(t *testing.T) {
	build := func(fid cache.Fidelity) sweep.Sweep {
		cfg := GoldenTraceSweepConfig()
		cfg.Fidelity = fid
		s, err := NewTraceSweeper(GoldenSweepTrace(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	shard := func(fid cache.Fidelity, k int) sweep.Envelope {
		env, err := sweep.Engine{}.RunShard(build(fid), k, 2)
		if err != nil {
			t.Fatal(err)
		}
		return env
	}
	a0 := shard(cache.FidelityAnalytic, 0)
	a1 := shard(cache.FidelityAnalytic, 1)
	e1 := shard(cache.FidelityExact, 1)

	err := sweep.Merge(build(cache.FidelityAnalytic), []sweep.Envelope{a0, e1})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("analytic+exact envelopes merged, want config-digest refusal; err = %v", err)
	}
	// Same mixture against an exact-tier merger: still refused.
	err = sweep.Merge(build(cache.FidelityExact), []sweep.Envelope{a0, e1})
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mixed envelopes merged into exact sweeper, want refusal; err = %v", err)
	}
	// Sanity: same-tier envelopes keep merging.
	if err := sweep.Merge(build(cache.FidelityAnalytic), []sweep.Envelope{a0, a1}); err != nil {
		t.Fatalf("same-tier merge must succeed: %v", err)
	}
}
