package experiments

import (
	"testing"

	"kyoto/internal/workload"
)

// TestFig4CalibrationLock asserts the headline Figure 4 reproduction: the
// workload profiles are calibrated so that, measured inside the simulator,
//
//   - the indicator orderings o2 (raw LLCM) and o3 (Equation 1) match the
//     paper's published orderings exactly, and
//   - Kendall's tau certifies Equation 1 as the better indicator:
//     tau(o3,o1) > tau(o2,o1).
//
// Any profile or simulator change that breaks these properties regresses
// the reproduction; this test is the lock.
func TestFig4CalibrationLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig4 sweep is expensive; run without -short")
	}
	r, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}

	assertOrder := func(name string, got, want []string) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s[%d] = %s, want %s (full: got %v, want %v)",
					name, i, got[i], want[i], got, want)
				return
			}
		}
	}
	assertOrder("o2 (LLCM)", r.O2, workload.PaperOrderO2())
	assertOrder("o3 (Equation1)", r.O3, workload.PaperOrderO3())

	if !(r.TauEq1 > r.TauLLCM) {
		t.Errorf("paper's claim violated: tau(o3,o1)=%v <= tau(o2,o1)=%v", r.TauEq1, r.TauLLCM)
	}

	// The measured o1 is allowed to differ from the paper's by adjacent
	// transpositions, but its gross structure must hold: the heavy
	// polluters lead, the quiet chasers trail.
	rank := make(map[string]int, len(r.O1))
	for i, app := range r.O1 {
		rank[app] = i
	}
	for _, heavy := range []string{"lbm", "blockie", "mcf"} {
		if rank[heavy] > 2 {
			t.Errorf("heavy polluter %s ranked %d in o1 %v", heavy, rank[heavy], r.O1)
		}
	}
	for _, quiet := range []string{"astar", "bzip"} {
		if rank[quiet] < 7 {
			t.Errorf("quiet app %s ranked %d in o1 %v", quiet, rank[quiet], r.O1)
		}
	}
	if rank["soplex"] > rank["milc"] {
		t.Errorf("soplex must out-rank milc in o1: %v", r.O1)
	}
}

// TestFig1ShapeLock asserts the §2.2.5 motivation shapes.
func TestFig1ShapeLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig1 grid is expensive; run without -short")
	}
	r, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	par := r.Degradation[Parallel]
	alt := r.Degradation[Alternative]

	// C1 representatives are agnostic to everything.
	for _, dis := range r.Dis {
		if par["micro-c1-rep"][dis] > 3 || alt["micro-c1-rep"][dis] > 3 {
			t.Errorf("C1 rep degraded by %s: par %v alt %v", dis,
				par["micro-c1-rep"][dis], alt["micro-c1-rep"][dis])
		}
	}
	// C1 disruptors hurt nobody (ILC contention is not critical).
	for _, rep := range r.Reps {
		if par[rep]["micro-c1-dis"] > 3 {
			t.Errorf("C1 disruptor hurt %s by %v in parallel", rep, par[rep]["micro-c1-dis"])
		}
	}
	// C2 is the most penalized class, parallel >> alternative (paper:
	// ~70% vs ~13%).
	c2par := par["micro-c2-rep"]["micro-c2-dis"]
	c2alt := alt["micro-c2-rep"]["micro-c2-dis"]
	if c2par < 50 {
		t.Errorf("C2 parallel degradation = %v, want >= 50", c2par)
	}
	if c2alt >= c2par/2 {
		t.Errorf("alternative (%v) must be far milder than parallel (%v)", c2alt, c2par)
	}
	// C3 is also affected, less severely than C2.
	c3par := par["micro-c3-rep"]["micro-c3-dis"]
	if c3par < 5 || c3par > c2par {
		t.Errorf("C3 parallel degradation = %v, want within (5, %v)", c3par, c2par)
	}
}

// TestFig5EffectivenessLock asserts the headline enforcement result.
func TestFig5EffectivenessLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig5 runs are expensive; run without -short")
	}
	r, err := Fig5(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, dis := range r.Disruptors {
		if r.NormPerf[dis] < 0.9 {
			t.Errorf("KS4Xen failed to protect vsen1 from %s: %v", dis, r.NormPerf[dis])
		}
		if r.NormPerf[dis] <= r.NormPerfXCS[dis] {
			t.Errorf("KS4Xen (%v) must beat XCS (%v) against %s",
				r.NormPerf[dis], r.NormPerfXCS[dis], dis)
		}
		if r.PunishDis[dis] <= r.PunishSen[dis] {
			t.Errorf("disruptor %s punished %d times vs sen %d — polluter must pay",
				dis, r.PunishDis[dis], r.PunishSen[dis])
		}
	}
	// Timeline: under XCS the disruptor always runs; under KS4Xen it is
	// deprived of the processor for long stretches.
	ranXCS, ranK := 0.0, 0.0
	for i := range r.Timeline.RanXCS {
		ranXCS += r.Timeline.RanXCS[i]
	}
	for i := range r.Timeline.RanKyoto {
		ranK += r.Timeline.RanKyoto[i]
	}
	if ranXCS < float64(len(r.Timeline.RanXCS))*0.95 {
		t.Errorf("XCS should let the disruptor run nearly always: %v", ranXCS)
	}
	if ranK > ranXCS/2 {
		t.Errorf("KS4Xen must deprive the disruptor: ran %v vs %v", ranK, ranXCS)
	}
}

// TestFig6ScalabilityLock asserts isolation holds as disruptors multiply.
func TestFig6ScalabilityLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 sweep is expensive; run without -short")
	}
	r, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range r.Counts {
		if r.NormPerf[i] < 0.9 {
			t.Errorf("KS4Xen with %d disruptors: norm perf %v", n, r.NormPerf[i])
		}
	}
}

// TestFig8PiscesLock asserts the co-kernel comparison.
func TestFig8PiscesLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 runs are expensive; run without -short")
	}
	r, err := Fig8(1)
	if err != nil {
		t.Fatal(err)
	}
	piscesGap := (r.PiscesColocated - r.PiscesAlone) / r.PiscesAlone
	kyotoGap := (r.KS4PiscesColocated - r.KS4PiscesAlone) / r.KS4PiscesAlone
	if piscesGap < 0.15 {
		t.Errorf("Pisces must leak LLC contention: gap %v", piscesGap)
	}
	if kyotoGap > 0.10 {
		t.Errorf("KS4Pisces must close the gap: %v", kyotoGap)
	}
	if kyotoGap >= piscesGap/2 {
		t.Errorf("KS4Pisces gap (%v) must be far below Pisces gap (%v)", kyotoGap, piscesGap)
	}
}

// TestFig9MigrationLock asserts memory-bound apps suffer most.
func TestFig9MigrationLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig9 runs are expensive; run without -short")
	}
	r, err := Fig9(1)
	if err != nil {
		t.Fatal(err)
	}
	deg := make(map[string]float64, len(r.Apps))
	for i, app := range r.Apps {
		deg[app] = r.Degradation[i]
	}
	for _, memBound := range []string{"mcf", "milc", "lbm"} {
		if deg[memBound] < 3 {
			t.Errorf("memory-bound %s degradation = %v, want noticeable", memBound, deg[memBound])
		}
		if deg[memBound] > 20 {
			t.Errorf("%s degradation = %v, paper caps at ~12%%", memBound, deg[memBound])
		}
	}
	for _, resident := range []string{"xalan", "astar", "bzip"} {
		if deg[resident] > 3 {
			t.Errorf("cache-resident %s should barely degrade: %v", resident, deg[resident])
		}
	}
}

// TestKS4LinuxPortabilityLock asserts §1's claim that the approach ports
// across schedulers: every Kyoto-extended system protects vsen1.
func TestKS4LinuxPortabilityLock(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-system runs are expensive; run without -short")
	}
	r, err := KS4Linux(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, system := range r.Systems {
		if r.NormPerf[system] < 0.9 {
			t.Errorf("%s failed to protect vsen1: %v", system, r.NormPerf[system])
		}
		if r.NormPerf[system] <= r.NormPerfBase[system]+0.2 {
			t.Errorf("%s (%v) must clearly beat its base (%v)",
				system, r.NormPerf[system], r.NormPerfBase[system])
		}
	}
}

// TestFig11MonitoringLock asserts the estimator-equivalence claim.
func TestFig11MonitoringLock(t *testing.T) {
	if testing.Short() {
		t.Skip("fig11 run is expensive; run without -short")
	}
	r, err := Fig11(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TauDedicated < 0.8 {
		t.Errorf("dedicated ordering tau = %v", r.TauDedicated)
	}
	if r.TauInPlace < 0.8 {
		t.Errorf("in-place ordering tau = %v", r.TauInPlace)
	}
	if r.TauShadow < 0.8 {
		t.Errorf("shadow ordering tau = %v", r.TauShadow)
	}
}
