package experiments

// Detection sweep: does signature-based change detection beat raw
// threshold reaction? Three arms replay the same trace on identically
// seeded fleets — proactive admission (the paper's answer, no
// migrations at all), threshold-reactive migration, and
// signature-reactive migration driven by per-VM change-point detectors
// (internal/detect). Beyond the usual placement outcomes, the sweep
// scores each reactive arm's *triggers* against the trace's ground
// truth: the arrivals of aggressive app classes (the Figure-4
// polluters) are the true regime shifts, so a trigger on one of those
// VMs is a detection and a trigger on anything else is a false alarm.
// The headline columns are the false-trigger rate and the mean
// time-to-detect in ticks.
//
// Like the other sweeps it is a sweep.Sweep (DetectionSweeper):
// solo-baseline jobs plus one job per arm, shardable across processes
// and merged bit-identically.

import (
	"encoding/json"
	"fmt"
	"strings"

	"kyoto/internal/arrivals"
	"kyoto/internal/cache"
	"kyoto/internal/cluster"
	"kyoto/internal/detect"
	"kyoto/internal/stats"
	"kyoto/internal/sweep"
)

// DefaultDetectionRebalanceEvery is the detection sweep's rebalance
// epoch in ticks. The sweeps that only migrate use the replay engine's
// default of 12; change detection also has to *observe* each VM enough
// times to learn a baseline and confirm a shift within the VM
// lifetimes the committed traces actually have (median a few tens of
// ticks), so the detection sweep samples three times as often.
const DefaultDetectionRebalanceEvery = 4

// DefaultAggressiveApps are the app classes treated as ground-truth
// regime shifts when they arrive: the paper's Figure-4 polluters, the
// same set arrivals.DefaultMix injects as the aggressive share.
func DefaultAggressiveApps() []string { return []string{"blockie", "lbm", "mcf"} }

// DetectionSweepConfig parameterizes a detection sweep.
type DetectionSweepConfig struct {
	// Hosts is the fleet size each arm gets (default 4).
	Hosts int
	// Seed seeds every fleet and the solo baselines (default 1).
	Seed uint64
	// Workers caps each fleet's RunTicks concurrency (0 = GOMAXPROCS).
	Workers int
	// Lockstep forces the eager fleet engine (schedule-only, excluded
	// from the config digest like Workers; see TraceSweepConfig).
	Lockstep bool
	// DrainTicks extends the replay past the last event (default
	// DefaultMeasureTicks).
	DrainTicks int
	// RebalanceEvery is the rebalance epoch in ticks (default
	// DefaultDetectionRebalanceEvery, finer than the replay engine's
	// 12: a streaming detector needs several samples per VM lifetime,
	// and the committed traces' median lifetimes are a few tens of
	// ticks).
	RebalanceEvery uint64
	// Downtime is the per-migration blackout in ticks (default 0).
	Downtime int
	// Threshold is the Equation-1 rate floor both reactive arms act at
	// (default cluster.DefaultRebalanceThreshold).
	Threshold float64
	// Detector configures the signature arm's change-point detectors
	// (zero value = detect defaults).
	Detector detect.Config
	// AggressiveApps overrides the ground-truth app classes (default
	// DefaultAggressiveApps).
	AggressiveApps []string
	// Fidelity selects the cache-model tier for every fleet and the
	// solo baselines (default cache.FidelityExact). It enters the
	// config digest, so shards run at different fidelities refuse to
	// merge.
	Fidelity cache.Fidelity
}

// detectionArm is one arm of the sweep.
type detectionArm struct {
	name     string
	placer   cluster.Placer
	enforced bool
}

// detectionArms are the swept arms: the paper's proactive admission
// answer, then the two reactive policies on unprotected first-fit
// fleets (reaction is what operators do *instead* of admission
// control, so the reactive arms run without Kyoto enforcement).
var detectionArms = []detectionArm{
	{"admission", cluster.Admission{}, true},
	{"reactive", cluster.FirstFit{}, false},
	{"signature", cluster.FirstFit{}, false},
}

// detectionArmPayload is the canonical JSON result of one arm.
type detectionArmPayload struct {
	Arm          string                `json:"arm"`
	Placer       string                `json:"placer"`
	Enforced     bool                  `json:"enforced"`
	Replay       arrivals.Result       `json:"replay"`
	ChangePoints []cluster.ChangePoint `json:"change_points,omitempty"`
}

// DetectionSweepRow is one arm's outcome.
type DetectionSweepRow struct {
	// Arm, Placer and Enforced identify the configuration.
	Arm      string
	Placer   string
	Enforced bool
	// Submitted/Placed/Rejected count VMs.
	Submitted int
	Placed    int
	Rejected  int
	// MigrationCount is the number of live migrations applied.
	MigrationCount int
	// Triggers counts the arm's actionable detection events — the
	// applied migrations, each an explicit "this VM is the problem"
	// claim — zero for admission-only. ChangePointCount additionally
	// reports the signature arm's raw confirmed change points (its
	// victim-side evidence; a change point names the VM whose series
	// shifted, the eviction it triggers names the polluter).
	Triggers         int
	ChangePointCount int
	// FalseTriggers are triggers on VMs outside the aggressive ground
	// truth; FalseTriggerRate is FalseTriggers/Triggers (0 when the arm
	// never triggered).
	FalseTriggers    int
	FalseTriggerRate float64
	// AggressiveVMs counts placed ground-truth VMs; Detected counts how
	// many of them the arm triggered on at least once.
	AggressiveVMs int
	Detected      int
	// MeanTimeToDetect is the mean of (first trigger tick - placed
	// tick) over detected VMs, in ticks (0 when nothing was detected).
	MeanTimeToDetect float64
	// P99 is the normalized-performance floor 99% of placed VMs meet,
	// as in TraceSweepRow.
	P99 float64
	// Replay and ChangePoints carry the full per-VM outcome and the
	// signature arm's change-point log for deeper analysis.
	Replay       arrivals.Result
	ChangePoints []cluster.ChangePoint
}

// DetectionSweepResult is the whole sweep.
type DetectionSweepResult struct {
	Hosts int
	Rows  []DetectionSweepRow
}

// DetectionSweeper is the shardable form of DetectionSweep (see
// TraceSweeper for the pattern).
type DetectionSweeper struct {
	tr   arrivals.Trace
	cfg  DetectionSweepConfig
	apps []string
	res  *DetectionSweepResult
}

// NewDetectionSweeper validates the trace and config, applies defaults
// and returns the shardable sweep.
func NewDetectionSweeper(tr arrivals.Trace, cfg DetectionSweepConfig) (*DetectionSweeper, error) {
	if cfg.Hosts == 0 {
		cfg.Hosts = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.DrainTicks == 0 {
		cfg.DrainTicks = DefaultMeasureTicks
	}
	if cfg.RebalanceEvery == 0 {
		cfg.RebalanceEvery = DefaultDetectionRebalanceEvery
	}
	if len(cfg.AggressiveApps) == 0 {
		cfg.AggressiveApps = DefaultAggressiveApps()
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := (&cluster.Signature{Detector: cfg.Detector}).Validate(); err != nil {
		return nil, err
	}
	return &DetectionSweeper{tr: tr, cfg: cfg, apps: traceApps(tr)}, nil
}

// Name implements sweep.Sweep.
func (s *DetectionSweeper) Name() string { return "detection-sweep" }

// ConfigFingerprint implements sweep.ConfigFingerprinter (Workers
// excluded, as in TraceSweeper).
func (s *DetectionSweeper) ConfigFingerprint() string {
	return sweepConfigFingerprint(s.tr, struct {
		Hosts          int
		Seed           uint64
		DrainTicks     int
		RebalanceEvery uint64
		Downtime       int
		Threshold      float64
		Detector       detect.Config
		AggressiveApps []string
		Fidelity       string `json:",omitempty"`
	}{s.cfg.Hosts, s.cfg.Seed, s.cfg.DrainTicks, s.cfg.RebalanceEvery, s.cfg.Downtime,
		s.cfg.Threshold, s.cfg.Detector, s.cfg.AggressiveApps, fidelityTag(s.cfg.Fidelity)})
}

// Plan implements sweep.Sweep: solo baselines, then one job per arm in
// admission/reactive/signature order.
func (s *DetectionSweeper) Plan() []sweep.Job {
	jobs := make([]sweep.Job, 0, len(s.apps)+len(detectionArms))
	for _, app := range s.apps {
		jobs = append(jobs, sweep.Job{
			Sweep: s.Name(), Key: "solo/" + app, Index: len(jobs), Seed: s.cfg.Seed,
			Params: map[string]string{"app": app},
		})
	}
	for _, arm := range detectionArms {
		jobs = append(jobs, sweep.Job{
			Sweep: s.Name(), Key: "arm/" + arm.name, Index: len(jobs), Seed: s.cfg.Seed,
			Params: map[string]string{"arm": arm.name, "placer": arm.placer.Name()},
		})
	}
	return jobs
}

// rebalancerForArm builds the arm's policy: nil for admission-only, a
// fresh Reactive or Signature otherwise (fresh per job — they carry
// per-replay state). The signature arm's detectors get the sweep's
// knobs, and its amortization check gets the trace's lifetime
// statistics via armRebalancer.
func (s *DetectionSweeper) rebalancerForArm(name string) (cluster.Rebalancer, error) {
	switch name {
	case "admission":
		return nil, nil
	case "reactive":
		return &cluster.Reactive{Threshold: s.cfg.Threshold}, nil
	case "signature":
		sig := &cluster.Signature{Threshold: s.cfg.Threshold, Detector: s.cfg.Detector}
		armRebalancer(sig, s.tr, s.cfg.RebalanceEvery)
		return sig, nil
	default:
		return nil, fmt.Errorf("unknown detection arm %q", name)
	}
}

// Run implements sweep.Sweep.
func (s *DetectionSweeper) Run(job sweep.Job) (json.RawMessage, error) {
	if app, ok := strings.CutPrefix(job.Key, "solo/"); ok {
		ipc, err := soloIPC(app, s.cfg.Seed, s.cfg.Fidelity)
		if err != nil {
			return nil, err
		}
		return json.Marshal(soloPayload{App: app, IPC: ipc})
	}
	name, ok := strings.CutPrefix(job.Key, "arm/")
	if !ok {
		return nil, fmt.Errorf("unknown job key %q", job.Key)
	}
	var arm detectionArm
	for _, a := range detectionArms {
		if a.name == name {
			arm = a
		}
	}
	if arm.name == "" {
		return nil, fmt.Errorf("unknown detection arm %q", name)
	}
	rb, err := s.rebalancerForArm(name)
	if err != nil {
		return nil, err
	}
	f, err := cluster.New(cluster.Config{
		Hosts:    s.cfg.Hosts,
		Template: cluster.HostTemplate{Seed: s.cfg.Seed, EnableKyoto: arm.enforced, Fidelity: s.cfg.Fidelity},
		Placer:   arm.placer,
		Workers:  s.cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	replay, err := arrivals.Replay(f, s.tr, arrivals.Options{
		DrainTicks:        s.cfg.DrainTicks,
		Lockstep:          s.cfg.Lockstep,
		Rebalancer:        rb,
		RebalanceEvery:    s.cfg.RebalanceEvery,
		MigrationDowntime: s.cfg.Downtime,
	})
	if err != nil {
		return nil, fmt.Errorf("arm %s: %w", name, err)
	}
	p := detectionArmPayload{Arm: name, Placer: arm.placer.Name(), Enforced: arm.enforced, Replay: replay}
	if sig, ok := rb.(*cluster.Signature); ok {
		p.ChangePoints = sig.ChangePoints()
	}
	return json.Marshal(p)
}

// Merge implements sweep.Sweep.
func (s *DetectionSweeper) Merge(payloads []json.RawMessage) error {
	solo := make(map[string]float64, len(s.apps))
	for i, app := range s.apps {
		var p soloPayload
		if err := json.Unmarshal(payloads[i], &p); err != nil {
			return fmt.Errorf("solo/%s payload: %w", app, err)
		}
		solo[p.App] = p.IPC
	}
	res := &DetectionSweepResult{Hosts: s.cfg.Hosts}
	for i := range detectionArms {
		var p detectionArmPayload
		if err := json.Unmarshal(payloads[len(s.apps)+i], &p); err != nil {
			return fmt.Errorf("arm payload %d: %w", i, err)
		}
		res.Rows = append(res.Rows, s.detectionRow(p, solo))
	}
	s.res = res
	return nil
}

// Result returns the merged sweep outcome; it is nil until Merge ran.
func (s *DetectionSweeper) Result() *DetectionSweepResult { return s.res }

// trigger is one detection event: an arm claiming VM vm shifted at
// tick.
type trigger struct {
	tick uint64
	vm   string
	app  string
}

// armTriggers extracts an arm's actionable detection events: its
// applied migrations, each an explicit claim that the migrated VM was
// the problem. Both reactive arms are scored on the same footing —
// threshold reaction and signature confirmation differ in *when and
// whom* they move, which is exactly what the ground-truth match
// measures. Admission-only never triggers.
func armTriggers(p detectionArmPayload) []trigger {
	var out []trigger
	for _, m := range p.Replay.Migrations {
		app := ""
		if m.Index >= 0 && m.Index < len(p.Replay.Records) {
			app = p.Replay.Records[m.Index].App
		}
		out = append(out, trigger{tick: m.Tick, vm: m.Name, app: app})
	}
	return out
}

// detectionRow folds one arm payload into its result row, scoring the
// arm's triggers against the aggressive-app ground truth.
func (s *DetectionSweeper) detectionRow(p detectionArmPayload, solo map[string]float64) DetectionSweepRow {
	row := DetectionSweepRow{
		Arm:              p.Arm,
		Placer:           p.Placer,
		Enforced:         p.Enforced,
		Submitted:        len(p.Replay.Records),
		Placed:           p.Replay.Placed,
		Rejected:         p.Replay.Rejected,
		MigrationCount:   len(p.Replay.Migrations),
		ChangePointCount: len(p.ChangePoints),
		Replay:           p.Replay,
		ChangePoints:     p.ChangePoints,
	}
	if norm := normalizedPerf(p.Replay, solo); len(norm) > 0 {
		row.P99, _ = stats.Percentile(norm, 1)
	}

	aggressive := make(map[string]bool, len(s.cfg.AggressiveApps))
	for _, app := range s.cfg.AggressiveApps {
		aggressive[app] = true
	}
	// Ground truth: every placed aggressive VM is one regime shift, at
	// its placement tick.
	onset := make(map[string]uint64)
	for _, rec := range p.Replay.Records {
		if !rec.Rejected && aggressive[rec.App] {
			onset[rec.Name] = rec.PlacedTick
			row.AggressiveVMs++
		}
	}
	firstHit := make(map[string]uint64)
	for _, tg := range armTriggers(p) {
		row.Triggers++
		if _, isTruth := onset[tg.vm]; !isTruth {
			row.FalseTriggers++
			continue
		}
		if prev, seen := firstHit[tg.vm]; !seen || tg.tick < prev {
			firstHit[tg.vm] = tg.tick
		}
	}
	if row.Triggers > 0 {
		row.FalseTriggerRate = float64(row.FalseTriggers) / float64(row.Triggers)
	}
	// Fold in record order, not map order: float sums must accumulate
	// deterministically for sharded and serial merges to stay bitwise
	// identical.
	var lagSum float64
	for _, rec := range p.Replay.Records {
		tick, ok := firstHit[rec.Name]
		if !ok {
			continue
		}
		row.Detected++
		if tick > onset[rec.Name] {
			lagSum += float64(tick - onset[rec.Name])
		}
	}
	if row.Detected > 0 {
		row.MeanTimeToDetect = lagSum / float64(row.Detected)
	}
	return row
}

// DetectionSweep replays the trace through the three arms and scores
// their triggers against the aggressive-app ground truth. It is the
// single-process path through DetectionSweeper — sharded runs merge to
// the identical result.
func DetectionSweep(tr arrivals.Trace, cfg DetectionSweepConfig) (*DetectionSweepResult, error) {
	s, err := NewDetectionSweeper(tr, cfg)
	if err != nil {
		return nil, err
	}
	if err := (sweep.Engine{Workers: cfg.Workers}).Run(s); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// NewDetectionBenchSweeper is the kyotobench "detection" entry: the
// three-arm detection sweep over a seeded synthetic churn trace (the
// DefaultMix quiet-to-aggressive ratio, 48 VMs) with the default
// detector tuning. It cannot fail: the synthetic trace and the zero
// detector config always validate, so construction errors are
// programming errors and panic like any other broken invariant.
func NewDetectionBenchSweeper(seed uint64, fid cache.Fidelity, lockstep bool) *DetectionSweeper {
	tr := arrivals.Synthesize(arrivals.SynthConfig{Seed: seed, VMs: 48})
	s, err := NewDetectionSweeper(tr, DetectionSweepConfig{Seed: seed, Fidelity: fid, Lockstep: lockstep})
	if err != nil {
		panic(err)
	}
	return s
}

// detectorTag returns the config-digest form of a detector config: nil
// for the zero value, so sweeps that never touch the detector knobs
// keep their committed fingerprints (the fidelityTag pattern).
func detectorTag(cfg detect.Config) *detect.Config {
	if cfg == (detect.Config{}) {
		return nil
	}
	return &cfg
}

// armRebalancer attaches trace-derived context to policies that want
// it: a Signature rebalancer gets the trace's empirical lifetime
// statistics and the replay's rebalance cadence, so its amortization
// check reasons in the trace's own tick scale. Other policies are
// returned untouched.
func armRebalancer(rb cluster.Rebalancer, tr arrivals.Trace, every uint64) {
	sig, ok := rb.(*cluster.Signature)
	if !ok {
		return
	}
	if every == 0 {
		every = arrivals.DefaultRebalanceEvery
	}
	sig.EpochTicks = every
	sig.Lifetimes = arrivals.NewLifetimeStats(tr)
}

// Table renders the sweep as the detection-quality comparison the
// kyotobench detection experiment prints.
func (r DetectionSweepResult) Table() Table {
	t := Table{
		Title: fmt.Sprintf("Detection sweep: 3 arms, %d hosts", r.Hosts),
		Note: "triggers = applied migrations (each claims its VM was the problem); chgpts = confirmed change points (signature only); " +
			"false rate = triggers on non-aggressive VMs / triggers; ttd = mean ticks from aggressive-VM arrival to first trigger; " +
			"p99 norm = per-VM lifetime IPC over solo IPC floor 99% of VMs meet",
		Columns: []string{"arm", "placer", "placed", "chgpts", "triggers", "false rate", "detected", "mean ttd", "p99 norm"},
	}
	for _, row := range r.Rows {
		falseRate := "-"
		if row.Triggers > 0 {
			falseRate = fmt.Sprintf("%.1f%%", 100*row.FalseTriggerRate)
		}
		t.AddRow(row.Arm, row.Placer, row.Placed, row.ChangePointCount, row.Triggers,
			falseRate, fmt.Sprintf("%d/%d", row.Detected, row.AggressiveVMs),
			fmt.Sprintf("%.1f", row.MeanTimeToDetect), row.P99)
	}
	return t
}
