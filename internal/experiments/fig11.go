package experiments

import (
	"kyoto/internal/core"
	"kyoto/internal/hv"
	"kyoto/internal/machine"
	"kyoto/internal/monitor"
	"kyoto/internal/stats"
	"kyoto/internal/vm"
	"kyoto/internal/workload"
)

// Fig11Result is the §4.5 monitoring-equivalence study: Equation-1 values
// per application obtained with socket dedication vs without it, on a
// contended host. The paper's point: the values (and hence the ordering
// Kyoto bills from) barely change, so the cheap strategies are usable.
//
// We compare three estimators against the solo ground truth:
//   - dedicated: the Dedication monitor's clean windows (migrations),
//   - in-place: raw per-VM counters while contended (no dedication),
//   - shadow: the McSimA+-substitute trace replay (no dedication).
type Fig11Result struct {
	Apps      []string
	Solo      map[string]float64
	Dedicated map[string]float64
	InPlace   map[string]float64
	Shadow    map[string]float64
	// TauDedicated etc. are Kendall taus of each estimator's ordering
	// against the solo ordering.
	TauDedicated float64
	TauInPlace   float64
	TauShadow    float64
}

// Fig11 runs the colocated measurement studies on the R420.
func Fig11(seed uint64) (Fig11Result, error) {
	apps := workload.Figure4Apps()
	res := Fig11Result{
		Apps:      apps,
		Solo:      make(map[string]float64, len(apps)),
		Dedicated: make(map[string]float64, len(apps)),
		InPlace:   make(map[string]float64, len(apps)),
		Shadow:    make(map[string]float64, len(apps)),
	}

	// Ground truth: solo runs.
	solos := make([]Scenario, len(apps))
	for i, app := range apps {
		solos[i] = soloScenario(app, seed)
	}
	soloRes, err := RunAll(solos)
	if err != nil {
		return res, err
	}
	for i, app := range apps {
		res.Solo[app] = core.Equation1Value(soloRes[i].PerVM["solo"])
	}

	// Contended host: all ten apps pinned round-robin onto socket 0 of
	// the R420, Dedication + ShadowSim monitors observing.
	mcfg := machine.R420(seed)
	ded := monitor.NewDedication(nil, core.Equation1)
	// Phased applications need windows covering a full phase period
	// (the paper samples ~1 billion cycles, tens of scaled ticks).
	ded.WindowTicks = 6
	shadow := monitor.NewShadowSim(nil, mcfg, 0)
	vms := make([]vm.Spec, 0, len(apps))
	for i, app := range apps {
		vms = append(vms, vm.Spec{Name: app, App: app, Pins: []int{i % 4}})
	}
	run, err := Run(Scenario{
		Machine: mcfg,
		Seed:    seed,
		VMs:     vms,
		Hooks:   []hv.TickHook{ded, shadow},
		Warmup:  15,
		Measure: 10 * 8 * 2, // two full dedication rotations
	})
	if err != nil {
		return res, err
	}
	for _, app := range apps {
		res.InPlace[app] = core.Equation1Value(run.PerVM[app])
	}
	for _, domain := range run.World.VMs() {
		res.Dedicated[domain.Name] = ded.LastRate[domain]
		res.Shadow[domain.Name] = shadow.LastRate[domain]
	}

	soloOrder := stats.RankByValue(res.Solo)
	if res.TauDedicated, err = stats.KendallTau(stats.RankByValue(res.Dedicated), soloOrder); err != nil {
		return res, err
	}
	if res.TauInPlace, err = stats.KendallTau(stats.RankByValue(res.InPlace), soloOrder); err != nil {
		return res, err
	}
	if res.TauShadow, err = stats.KendallTau(stats.RankByValue(res.Shadow), soloOrder); err != nil {
		return res, err
	}
	return res, nil
}

// Table renders the comparison.
func (r Fig11Result) Table() Table {
	t := Table{
		Title:   "Figure 11: socket dedication vs cheaper llc_cap_act estimators (equation 1)",
		Note:    "ten contended apps on one socket; taus compare each estimator's ordering to the solo ordering",
		Columns: []string{"app", "solo (truth)", "dedicated", "in-place", "shadow replay"},
	}
	for _, app := range r.Apps {
		t.AddRow(app, r.Solo[app], r.Dedicated[app], r.InPlace[app], r.Shadow[app])
	}
	t.Rows = append(t.Rows, []string{"kendall tau vs solo", "1", formatFloat(r.TauDedicated), formatFloat(r.TauInPlace), formatFloat(r.TauShadow)})
	return t
}
