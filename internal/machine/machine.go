// Package machine assembles the simulated physical machines the evaluation
// runs on: sockets, cores, the private/shared cache hierarchy, NUMA memory
// nodes, and the model clock.
//
// Two configurations mirror the paper's testbeds:
//
//   - TableOne: the Dell with one Xeon E5-1603 v3 socket (4 cores, 10 MB
//     20-way LLC) used by every experiment except Fig 9,
//   - R420: the two-socket PowerEdge R420 used for the NUMA migration
//     overhead study (Fig 9).
//
// Both are scaled replicas: capacities 1:16 and clock 1:28 relative to the
// real machines (see the Scale* constants). Scaling preserves the
// contention geometry — sets x ways, working-set-to-cache ratios, and the
// reload-time-to-tick ratio that gives Figure 2 its shape — while keeping
// simulation cost tractable.
package machine

import (
	"fmt"
	"strings"

	"kyoto/internal/cache"
)

// Scaling of the simulated machines relative to the paper's hardware.
const (
	// CapacityScale divides all cache and working-set capacities.
	CapacityScale = 16
	// ClockScale divides the paper's 2.8 GHz clock (100 MHz model clock).
	ClockScale = 28
)

// Model-time constants (the paper's Xen defaults, §2.2.5: a 30 ms time
// slice of three 10 ms ticks).
const (
	// CPUFreqKHz is the model clock: 100 MHz.
	CPUFreqKHz = 100_000
	// TickMillis is the scheduler tick length.
	TickMillis = 10
	// CyclesPerTick = CPUFreqKHz * TickMillis.
	CyclesPerTick = CPUFreqKHz * TickMillis
	// TicksPerSlice is the credit-scheduler accounting period.
	TicksPerSlice = 3
)

// Config describes a machine to build.
type Config struct {
	// Name labels the machine in reports.
	Name string
	// Sockets and CoresPerSocket give the topology.
	Sockets        int
	CoresPerSocket int
	// MainMemoryMB is reported in Table 1 renderings (the simulator does
	// not model capacity misses in main memory).
	MainMemoryMB int
	// L1, L2 are per-core cache templates; LLC is the per-socket shared
	// cache template. Seeds are derived per instance.
	L1  cache.Config
	L2  cache.Config
	LLC cache.Config
	// MemLatencyCycles and RemotePenaltyCycles parameterize main memory.
	MemLatencyCycles    uint32
	RemotePenaltyCycles uint32
	// Seed diversifies per-instance cache RNGs.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Sockets <= 0 || c.CoresPerSocket <= 0 {
		return fmt.Errorf("machine %q: need positive sockets/cores, got %d/%d", c.Name, c.Sockets, c.CoresPerSocket)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	if err := c.LLC.Validate(); err != nil {
		return fmt.Errorf("machine %q: %w", c.Name, err)
	}
	if c.MemLatencyCycles == 0 {
		return fmt.Errorf("machine %q: memory latency must be positive", c.Name)
	}
	return nil
}

// Core is one physical core with its private caches and its socket's
// shared LLC reachable through Path.
type Core struct {
	// ID is the global core id (socket-major order).
	ID int
	// SocketID is the owning socket.
	SocketID int
	// Path is the memory path used by the execution engine.
	Path cache.Path
}

// Socket groups cores sharing one LLC and one local memory node.
type Socket struct {
	// ID is the socket (and NUMA node) id.
	ID int
	// LLC is the shared last-level cache.
	LLC *cache.Cache
	// Cores are the socket's cores.
	Cores []*Core
}

// Machine is a built simulated machine.
type Machine struct {
	cfg     Config
	sockets []*Socket
	cores   []*Core // flat, by global id
}

// New builds a machine from cfg.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg}
	coreID := 0
	for s := 0; s < cfg.Sockets; s++ {
		llcCfg := cfg.LLC
		llcCfg.Name = fmt.Sprintf("LLC%d", s)
		llcCfg.Seed = cfg.Seed ^ uint64(s)<<32
		llc, err := cache.New(llcCfg)
		if err != nil {
			return nil, err
		}
		sock := &Socket{ID: s, LLC: llc}
		for c := 0; c < cfg.CoresPerSocket; c++ {
			l1Cfg := cfg.L1
			l1Cfg.Name = fmt.Sprintf("L1D.%d", coreID)
			l1Cfg.Seed = cfg.Seed ^ uint64(coreID)<<16 ^ 0x11
			l2Cfg := cfg.L2
			l2Cfg.Name = fmt.Sprintf("L2.%d", coreID)
			l2Cfg.Seed = cfg.Seed ^ uint64(coreID)<<16 ^ 0x22
			l1, err := cache.New(l1Cfg)
			if err != nil {
				return nil, err
			}
			l2, err := cache.New(l2Cfg)
			if err != nil {
				return nil, err
			}
			core := &Core{
				ID:       coreID,
				SocketID: s,
				Path: cache.Path{
					L1D: l1, L2: l2, LLC: llc,
					MemLatencyCycles:    cfg.MemLatencyCycles,
					RemotePenaltyCycles: cfg.RemotePenaltyCycles,
				},
			}
			sock.Cores = append(sock.Cores, core)
			m.cores = append(m.cores, core)
			coreID++
		}
		m.sockets = append(m.sockets, sock)
	}
	return m, nil
}

// MustNew is New but panics on error, for the built-in configs.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCores returns the total core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// NumSockets returns the socket count.
func (m *Machine) NumSockets() int { return len(m.sockets) }

// Core returns the core with global id.
func (m *Machine) Core(id int) *Core { return m.cores[id] }

// Socket returns the socket with the given id.
func (m *Machine) Socket(id int) *Socket { return m.sockets[id] }

// Sockets returns all sockets.
func (m *Machine) Sockets() []*Socket { return m.sockets }

// Cores returns all cores in global-id order.
func (m *Machine) Cores() []*Core { return m.cores }

// TableOne returns the scaled replica of the paper's Table 1 machine:
// Xeon E5-1603 v3, one socket, four cores; L1D 32 KB 8-way, L2 256 KB
// 8-way, LLC 10 MB 20-way; main memory 8096 MB. All capacities divided by
// CapacityScale.
func TableOne(seed uint64) Config {
	return Config{
		Name:           "Dell / Xeon E5-1603 v3 (1:16 capacity, 1:28 clock)",
		Sockets:        1,
		CoresPerSocket: 4,
		MainMemoryMB:   8096 / CapacityScale,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 32 * 1024 / CapacityScale, Ways: 8,
			LineBytes: 64, HitLatencyCycles: 4,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: 256 * 1024 / CapacityScale, Ways: 8,
			LineBytes: 64, HitLatencyCycles: 12,
		},
		LLC: cache.Config{
			Name: "LLC", SizeBytes: 10 * 1024 * 1024 / CapacityScale, Ways: 20,
			LineBytes: 64, HitLatencyCycles: 45,
		},
		MemLatencyCycles:    180,
		RemotePenaltyCycles: 120,
		Seed:                seed,
	}
}

// R420 returns the scaled replica of the paper's PowerEdge R420 (§4.5):
// two sockets, four cores each, with per-socket memory nodes. Remote
// accesses pay RemotePenaltyCycles, which is what Figure 9 measures.
func R420(seed uint64) Config {
	cfg := TableOne(seed)
	cfg.Name = "PowerEdge R420, 2 sockets (1:16 capacity, 1:28 clock)"
	cfg.Sockets = 2
	cfg.MainMemoryMB *= 2
	return cfg
}

// TableString renders the configuration as the paper's Table 1.
func (c Config) TableString() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-14s %s\n", k, v) }
	row("Main memory", fmt.Sprintf("%d MB", c.MainMemoryMB))
	row("L1 cache", fmt.Sprintf("L1 D %d KB, %d-way", c.L1.SizeBytes/1024, c.L1.Ways))
	row("L2 cache", fmt.Sprintf("L2 U %d KB, %d-way", c.L2.SizeBytes/1024, c.L2.Ways))
	row("LLC", fmt.Sprintf("%d KB, %d-way", c.LLC.SizeBytes/1024, c.LLC.Ways))
	row("Processor", fmt.Sprintf("%d Socket(s), %d Cores/socket @ %d kHz (model)", c.Sockets, c.CoresPerSocket, CPUFreqKHz))
	return b.String()
}
