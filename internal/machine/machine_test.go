package machine

import (
	"strings"
	"testing"

	"kyoto/internal/cache"
)

func TestTableOneGeometry(t *testing.T) {
	cfg := TableOne(1)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Sockets != 1 || cfg.CoresPerSocket != 4 {
		t.Fatalf("topology = %d x %d", cfg.Sockets, cfg.CoresPerSocket)
	}
	// Scaled capacities: 2 KB / 16 KB / 640 KB.
	if cfg.L1.SizeBytes != 2048 || cfg.L2.SizeBytes != 16*1024 || cfg.LLC.SizeBytes != 640*1024 {
		t.Fatalf("capacities = %d/%d/%d", cfg.L1.SizeBytes, cfg.L2.SizeBytes, cfg.LLC.SizeBytes)
	}
	// Paper associativities survive scaling.
	if cfg.L1.Ways != 8 || cfg.L2.Ways != 8 || cfg.LLC.Ways != 20 {
		t.Fatalf("ways = %d/%d/%d", cfg.L1.Ways, cfg.L2.Ways, cfg.LLC.Ways)
	}
	// Paper latencies (lmbench §2.2.4).
	if cfg.L1.HitLatencyCycles != 4 || cfg.L2.HitLatencyCycles != 12 ||
		cfg.LLC.HitLatencyCycles != 45 || cfg.MemLatencyCycles != 180 {
		t.Fatal("latencies do not match the paper")
	}
}

func TestR420Topology(t *testing.T) {
	cfg := R420(1)
	if cfg.Sockets != 2 {
		t.Fatalf("R420 sockets = %d", cfg.Sockets)
	}
	m := MustNew(cfg)
	if m.NumCores() != 8 || m.NumSockets() != 2 {
		t.Fatalf("cores/sockets = %d/%d", m.NumCores(), m.NumSockets())
	}
	// Cores 4..7 are on socket 1.
	if m.Core(5).SocketID != 1 || m.Core(2).SocketID != 0 {
		t.Fatal("socket assignment wrong")
	}
}

func TestLLCSharedWithinSocketOnly(t *testing.T) {
	m := MustNew(R420(1))
	s0 := m.Socket(0)
	if s0.Cores[0].Path.LLC != s0.Cores[3].Path.LLC {
		t.Fatal("cores of one socket must share the LLC")
	}
	if m.Socket(0).LLC == m.Socket(1).LLC {
		t.Fatal("sockets must not share an LLC")
	}
	if m.Core(0).Path.LLC != m.Socket(0).LLC {
		t.Fatal("core path must reference its socket's LLC")
	}
}

func TestPrivateCachesArePrivate(t *testing.T) {
	m := MustNew(TableOne(1))
	if m.Core(0).Path.L1D == m.Core(1).Path.L1D {
		t.Fatal("L1 must be per core")
	}
	if m.Core(0).Path.L2 == m.Core(1).Path.L2 {
		t.Fatal("L2 must be per core")
	}
}

func TestContentionThroughSharedLLC(t *testing.T) {
	m := MustNew(TableOne(1))
	llc := m.Socket(0).LLC
	// Owner 1 via core 0 fills a line; owner 2 via core 3 sees it in LLC.
	m.Core(0).Path.Access(0x1234, cache.Owner(1), false)
	lvl, _ := m.Core(3).Path.Access(0x1234, cache.Owner(2), false)
	if lvl != cache.HitLLC {
		t.Fatalf("cross-core access level = %v, want LLC hit", lvl)
	}
	if llc.Stats(cache.Owner(1)).Fills != 1 {
		t.Fatal("attribution lost")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := TableOne(1)
	cfg.Sockets = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero sockets must fail")
	}
	cfg = TableOne(1)
	cfg.MemLatencyCycles = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero memory latency must fail")
	}
	cfg = TableOne(1)
	cfg.LLC.Ways = 7 // 10240 lines not divisible -> invalid
	if _, err := New(cfg); err == nil {
		t.Fatal("bad LLC geometry must fail")
	}
}

func TestTableString(t *testing.T) {
	s := TableOne(1).TableString()
	for _, want := range []string{"LLC", "640 KB", "20-way", "L1 D", "Cores/socket"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table missing %q:\n%s", want, s)
		}
	}
}

func TestModelClockConstants(t *testing.T) {
	if CyclesPerTick != CPUFreqKHz*TickMillis {
		t.Fatal("cycle/tick arithmetic inconsistent")
	}
	if TicksPerSlice != 3 || TickMillis != 10 {
		t.Fatal("paper's Xen defaults: 30ms slice of 3 ticks")
	}
}
