package sched

import (
	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

// Credit reimplements the Xen credit scheduler as the paper describes it
// (§3.2, following Cherkasova et al.): each VM is configured with a credit
// (weight) that the scheduler converts into a per-slice budget
// (remainCredit); running burns credits, exhausting them demotes the vCPU
// to priority OVER, and the periodic accounting (every slice, 30 ms)
// refills credits and restores priority UNDER. The scheduler is
// work-conserving: OVER vCPUs run when no UNDER vCPU is runnable.
//
// The optional per-VM cap (vm.Spec.CapPercent) hard-limits consumption per
// accounting window even on an idle host — the lever Figure 3 sweeps to
// vary a disruptor's "computation power".
type Credit struct {
	cores  int
	vcpus  []*vm.VCPU
	vms    []*vm.VM // distinct VMs, ascending ID (refill iterates this)
	assign assignTracker
}

var _ Scheduler = (*Credit)(nil)
var _ Remover = (*Credit)(nil)

// NewCredit returns a credit scheduler for a machine with cores pCPUs.
func NewCredit(cores int) *Credit {
	return &Credit{cores: cores, assign: newAssignTracker()}
}

// Name implements Scheduler.
func (c *Credit) Name() string { return "credit" }

// IdleTickInvariant implements IdleTickInvariant: with no registered
// vCPUs, PickNext finds no candidate (and mutates nothing) and EndTick's
// refill returns immediately on zero total weight.
func (c *Credit) IdleTickInvariant() {}

// Register implements Scheduler.
func (c *Credit) Register(v *vm.VCPU) {
	if v.VM.Weight == 0 {
		v.VM.Weight = vm.DefaultWeight
	}
	// A fresh vCPU starts with one slice of credit at fair share,
	// computed at the next accounting boundary; give it a nominal
	// positive balance so it is UNDER immediately.
	v.RemainCredit = 1
	v.OverPriority = false
	c.vcpus = append(c.vcpus, v)
	// Maintain the distinct-VM list sorted by ID here, on the cold path,
	// so the every-slice refill never sorts or allocates.
	for _, m := range c.vms {
		if m == v.VM {
			return
		}
	}
	i := len(c.vms)
	for i > 0 && c.vms[i-1].ID > v.VM.ID {
		i--
	}
	c.vms = append(c.vms, nil)
	copy(c.vms[i+1:], c.vms[i:])
	c.vms[i] = v.VM
}

// Unregister implements Remover: drop the vCPU from the runqueue, and the
// VM from the refill list once its last vCPU is gone.
func (c *Credit) Unregister(v *vm.VCPU) {
	c.vcpus = removeVCPU(c.vcpus, v)
	c.assign.forget(v)
	for _, other := range c.vcpus {
		if other.VM == v.VM {
			return
		}
	}
	for i, m := range c.vms {
		if m == v.VM {
			c.vms = append(c.vms[:i], c.vms[i+1:]...)
			return
		}
	}
}

// PickNext implements Scheduler. Priority order: UNDER before OVER (work
// conserving), round-robin by least-recently-run within a class.
func (c *Credit) PickNext(core *machine.Core, now uint64) *vm.VCPU {
	var best *vm.VCPU
	bestKey := pickKey{}
	for _, v := range c.vcpus {
		if !v.Schedulable() || !v.AllowedOn(core.ID) || c.assign.taken(v, now) {
			continue
		}
		k := pickKey{over: v.OverPriority, lastRun: v.LastRunTick, id: v.Seq}
		if best == nil || k.less(bestKey) {
			best, bestKey = v, k
		}
	}
	if best != nil {
		c.assign.take(best, now)
		best.LastRunTick = now
	}
	return best
}

// pickKey orders candidate vCPUs: UNDER first, then least recently run,
// then lowest creation sequence number for determinism (never-recycled,
// so churn cannot alias a new VM into a departed one’s round-robin slot).
type pickKey struct {
	over    bool
	lastRun uint64
	id      int
}

func (k pickKey) less(o pickKey) bool {
	if k.over != o.over {
		return !k.over
	}
	if k.lastRun != o.lastRun {
		return k.lastRun < o.lastRun
	}
	return k.id < o.id
}

// ChargeTick implements Scheduler: burn credits proportional to occupancy.
func (c *Credit) ChargeTick(v *vm.VCPU, wallCycles uint64, now uint64) {
	v.RemainCredit -= int64(wallCycles)
	if v.RemainCredit <= 0 {
		v.OverPriority = true
	}
	if v.VM.CapPercent > 0 {
		v.WindowBurn += wallCycles
		if v.WindowBurn >= c.capBudget(v) {
			v.CapBlocked = true
		}
	}
}

// capBudget returns the wall-cycle allowance per accounting window for a
// capped vCPU.
func (c *Credit) capBudget(v *vm.VCPU) uint64 {
	window := uint64(machine.CyclesPerTick) * machine.TicksPerSlice
	return window * uint64(v.VM.CapPercent) / 100
}

// TickBudget implements BudgetLimiter: a capped vCPU may only consume the
// remainder of its window allowance, enforcing caps at sub-tick
// granularity (Figure 3 sweeps caps in 20% steps, finer than a tick).
func (c *Credit) TickBudget(v *vm.VCPU, now uint64) uint64 {
	if v.VM.CapPercent <= 0 {
		return ^uint64(0)
	}
	budget := c.capBudget(v)
	if v.WindowBurn >= budget {
		return 0
	}
	return budget - v.WindowBurn
}

// EndTick implements Scheduler: on slice boundaries, refill credits
// weighted by VM weight and reset cap windows.
func (c *Credit) EndTick(now uint64) {
	if (now+1)%machine.TicksPerSlice != 0 {
		return
	}
	c.refill()
	for _, v := range c.vcpus {
		v.WindowBurn = 0
		v.CapBlocked = false
	}
}

// refill distributes one slice's worth of pCPU cycles as credits in
// proportion to VM weights, clamping balances to one slice's share so
// blocked VMs cannot bank unbounded credit (as XCS clamps). It runs every
// slice on the hot tick path and is allocation-free: Register maintains
// the deterministic ID-ordered VM list.
func (c *Credit) refill() {
	var totalWeight int64
	for _, m := range c.vms {
		totalWeight += m.Weight
	}
	if totalWeight == 0 {
		return
	}
	sliceCycles := int64(machine.CyclesPerTick) * machine.TicksPerSlice * int64(c.cores)
	for _, m := range c.vms {
		share := sliceCycles * m.Weight / totalWeight
		perVCPU := share / int64(len(m.VCPUs))
		for _, v := range m.VCPUs {
			v.RemainCredit += perVCPU
			if v.RemainCredit > perVCPU {
				v.RemainCredit = perVCPU
			}
			v.OverPriority = v.RemainCredit <= 0
		}
	}
}
