package sched

import (
	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

// CFS is a completely-fair-scheduler-style policy: each vCPU accumulates
// weighted virtual runtime and the runnable vCPU with the minimum vruntime
// runs next. It is the substrate the paper's KS4Linux builds on (§4.4);
// the Kyoto decorator adds pollution throttling on top without modifying
// this code, mirroring how the real patch leaves CFS's pick logic alone.
type CFS struct {
	vcpus  []*vm.VCPU
	assign assignTracker
}

var _ Scheduler = (*CFS)(nil)
var _ Remover = (*CFS)(nil)

// NewCFS returns a CFS-style scheduler.
func NewCFS() *CFS {
	return &CFS{assign: newAssignTracker()}
}

// Name implements Scheduler.
func (c *CFS) Name() string { return "cfs" }

// IdleTickInvariant implements IdleTickInvariant: with no registered
// vCPUs, PickNext finds no candidate (and mutates nothing) and EndTick
// is empty.
func (c *CFS) IdleTickInvariant() {}

// Register implements Scheduler. A new vCPU starts at the current minimum
// vruntime so it neither starves others nor is starved.
func (c *CFS) Register(v *vm.VCPU) {
	if v.VM.Weight == 0 {
		v.VM.Weight = vm.DefaultWeight
	}
	v.VRuntime = c.minVRuntime()
	c.vcpus = append(c.vcpus, v)
}

// Unregister implements Remover.
func (c *CFS) Unregister(v *vm.VCPU) {
	c.vcpus = removeVCPU(c.vcpus, v)
	c.assign.forget(v)
}

// minVRuntime returns the smallest vruntime among registered vCPUs.
func (c *CFS) minVRuntime() uint64 {
	var minV uint64
	for i, v := range c.vcpus {
		if i == 0 || v.VRuntime < minV {
			minV = v.VRuntime
		}
	}
	return minV
}

// PickNext implements Scheduler: minimum vruntime first; ties go to the
// lowest vCPU id for determinism.
func (c *CFS) PickNext(core *machine.Core, now uint64) *vm.VCPU {
	var best *vm.VCPU
	for _, v := range c.vcpus {
		if !v.Schedulable() || !v.AllowedOn(core.ID) || c.assign.taken(v, now) {
			continue
		}
		if best == nil || v.VRuntime < best.VRuntime ||
			(v.VRuntime == best.VRuntime && v.Seq < best.Seq) {
			best = v
		}
	}
	if best != nil {
		c.assign.take(best, now)
		best.LastRunTick = now
	}
	return best
}

// ChargeTick implements Scheduler: vruntime advances inversely to weight.
func (c *CFS) ChargeTick(v *vm.VCPU, wallCycles uint64, now uint64) {
	w := v.VM.Weight
	if w <= 0 {
		w = vm.DefaultWeight
	}
	v.VRuntime += wallCycles * uint64(vm.DefaultWeight) / uint64(w)
}

// EndTick implements Scheduler. CFS has no slice accounting.
func (c *CFS) EndTick(now uint64) {}

// Pisces is the space-partitioned co-kernel scheduler of §4.4: every vCPU
// is an enclave with exclusive ownership of its pinned core — no
// time-sharing, no ticks stolen by a hypervisor. Performance interference
// through shared virtualization components is eliminated by construction,
// but the LLC stays shared, which is exactly the residual interference
// Figure 8 demonstrates (and KS4Pisces closes).
type Pisces struct {
	byCore map[int]*vm.VCPU
}

var _ Scheduler = (*Pisces)(nil)
var _ Remover = (*Pisces)(nil)

// NewPisces returns a Pisces-style scheduler.
func NewPisces() *Pisces {
	return &Pisces{byCore: make(map[int]*vm.VCPU)}
}

// Name implements Scheduler.
func (p *Pisces) Name() string { return "pisces" }

// Register implements Scheduler. Pisces enclaves must be pinned; an
// unpinned or conflicting vCPU is rejected by panicking early, since this
// is a static misconfiguration of the experiment, not a runtime condition.
func (p *Pisces) Register(v *vm.VCPU) {
	if v.Pin == vm.NoPin {
		panic("sched: pisces enclave vCPU must be pinned to a core")
	}
	if _, busy := p.byCore[v.Pin]; busy {
		panic("sched: pisces core already owned by another enclave")
	}
	p.byCore[v.Pin] = v
}

// Unregister implements Remover: the enclave releases its core, which a
// later Register may claim again.
func (p *Pisces) Unregister(v *vm.VCPU) {
	if p.byCore[v.Pin] == v {
		delete(p.byCore, v.Pin)
	}
}

// PickNext implements Scheduler: the owning enclave always runs, unless
// blocked (the Kyoto layer's duty-cycling uses exactly this).
func (p *Pisces) PickNext(core *machine.Core, now uint64) *vm.VCPU {
	v, ok := p.byCore[core.ID]
	if !ok || !v.Schedulable() {
		return nil
	}
	v.LastRunTick = now
	return v
}

// ChargeTick implements Scheduler. Pisces does no accounting.
func (p *Pisces) ChargeTick(v *vm.VCPU, wallCycles uint64, now uint64) {}

// EndTick implements Scheduler.
func (p *Pisces) EndTick(now uint64) {}
