package sched

import (
	"testing"

	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

// mkMachine builds the Table-1 machine for scheduling tests.
func mkMachine(t *testing.T) *machine.Machine {
	t.Helper()
	return machine.MustNew(machine.TableOne(1))
}

// mkVCPU builds a lone vCPU in its own single-vCPU VM.
func mkVCPU(id int, weight int64, pin int) *vm.VCPU {
	domain := &vm.VM{ID: id, Name: "vm", Weight: weight}
	v := &vm.VCPU{VM: domain, ID: id, Pin: pin, LastCore: vm.NoPin}
	domain.VCPUs = []*vm.VCPU{v}
	return v
}

func TestCreditPickPrefersUnder(t *testing.T) {
	m := mkMachine(t)
	c := NewCredit(4)
	a := mkVCPU(1, 256, vm.NoPin)
	b := mkVCPU(2, 256, vm.NoPin)
	c.Register(a)
	c.Register(b)
	b.OverPriority = true
	if got := c.PickNext(m.Core(0), 0); got != a {
		t.Fatalf("picked %v, want UNDER vCPU a", got)
	}
}

func TestCreditNoDoubleAssignSameTick(t *testing.T) {
	m := mkMachine(t)
	c := NewCredit(4)
	a := mkVCPU(1, 256, vm.NoPin)
	c.Register(a)
	if got := c.PickNext(m.Core(0), 5); got != a {
		t.Fatal("first pick must return the only vCPU")
	}
	if got := c.PickNext(m.Core(1), 5); got != nil {
		t.Fatal("same vCPU handed to two cores in one tick")
	}
	if got := c.PickNext(m.Core(0), 6); got != a {
		t.Fatal("next tick must pick again")
	}
}

func TestCreditRespectsPinning(t *testing.T) {
	m := mkMachine(t)
	c := NewCredit(4)
	a := mkVCPU(1, 256, 2)
	c.Register(a)
	if got := c.PickNext(m.Core(0), 0); got != nil {
		t.Fatal("pinned vCPU must not run on core 0")
	}
	if got := c.PickNext(m.Core(2), 0); got != a {
		t.Fatal("pinned vCPU must run on its core")
	}
}

func TestCreditRespectsPollutionBlock(t *testing.T) {
	m := mkMachine(t)
	c := NewCredit(4)
	a := mkVCPU(1, 256, vm.NoPin)
	c.Register(a)
	a.VM.PollutionBlocked = true
	if got := c.PickNext(m.Core(0), 0); got != nil {
		t.Fatal("pollution-blocked vCPU must not be scheduled")
	}
}

func TestCreditRoundRobinFairness(t *testing.T) {
	m := mkMachine(t)
	c := NewCredit(1)
	a := mkVCPU(1, 256, 0)
	b := mkVCPU(2, 256, 0)
	c.Register(a)
	c.Register(b)
	counts := map[*vm.VCPU]int{}
	for tick := uint64(0); tick < 100; tick++ {
		v := c.PickNext(m.Core(0), tick)
		counts[v]++
		c.ChargeTick(v, machine.CyclesPerTick, tick)
		c.EndTick(tick)
	}
	if counts[a] < 45 || counts[b] < 45 {
		t.Fatalf("unfair rotation: %d vs %d", counts[a], counts[b])
	}
}

func TestCreditWeightsShareCredits(t *testing.T) {
	c := NewCredit(1)
	heavy := mkVCPU(1, 512, 0)
	light := mkVCPU(2, 256, 0)
	c.Register(heavy)
	c.Register(light)
	// Trigger a refill at a slice boundary.
	c.EndTick(machine.TicksPerSlice - 1)
	if heavy.RemainCredit <= light.RemainCredit {
		t.Fatalf("weighted refill wrong: heavy %d, light %d", heavy.RemainCredit, light.RemainCredit)
	}
}

func TestCreditOverAfterBurn(t *testing.T) {
	c := NewCredit(1)
	a := mkVCPU(1, 256, 0)
	c.Register(a)
	c.ChargeTick(a, 10*machine.CyclesPerTick, 0)
	if !a.OverPriority {
		t.Fatal("vCPU must be OVER after burning through its credit")
	}
	// Refill restores UNDER.
	c.EndTick(machine.TicksPerSlice - 1)
	c.EndTick(2*machine.TicksPerSlice - 1)
	c.EndTick(3*machine.TicksPerSlice - 1)
	if a.RemainCredit <= 0 {
		t.Skipf("credit still negative after refills: %d", a.RemainCredit)
	}
	if a.OverPriority {
		t.Fatal("refilled vCPU must be UNDER")
	}
}

func TestCreditCapBlocksAndResets(t *testing.T) {
	c := NewCredit(4)
	a := mkVCPU(1, 256, 0)
	a.VM.CapPercent = 50
	c.Register(a)
	window := uint64(machine.CyclesPerTick) * machine.TicksPerSlice
	c.ChargeTick(a, window/2, 0) // exactly the 50% budget
	if !a.CapBlocked {
		t.Fatal("cap budget spent, vCPU must be blocked")
	}
	if got := c.TickBudget(a, 1); got != 0 {
		t.Fatalf("tick budget = %d, want 0", got)
	}
	c.EndTick(machine.TicksPerSlice - 1) // window reset
	if a.CapBlocked {
		t.Fatal("cap must reset at the window boundary")
	}
	if got := c.TickBudget(a, 3); got != window/2 {
		t.Fatalf("fresh budget = %d, want %d", got, window/2)
	}
}

func TestCreditTickBudgetUncapped(t *testing.T) {
	c := NewCredit(4)
	a := mkVCPU(1, 256, 0)
	c.Register(a)
	if got := c.TickBudget(a, 0); got != ^uint64(0) {
		t.Fatalf("uncapped budget = %d", got)
	}
}

func TestCFSPicksMinVruntime(t *testing.T) {
	m := mkMachine(t)
	c := NewCFS()
	a := mkVCPU(1, 256, vm.NoPin)
	b := mkVCPU(2, 256, vm.NoPin)
	c.Register(a)
	c.Register(b)
	a.VRuntime = 100
	b.VRuntime = 50
	if got := c.PickNext(m.Core(0), 0); got != b {
		t.Fatal("CFS must pick the minimum vruntime")
	}
}

func TestCFSWeightedCharge(t *testing.T) {
	c := NewCFS()
	heavy := mkVCPU(1, 512, vm.NoPin)
	light := mkVCPU(2, 256, vm.NoPin)
	c.Register(heavy)
	c.Register(light)
	c.ChargeTick(heavy, 1000, 0)
	c.ChargeTick(light, 1000, 0)
	if heavy.VRuntime >= light.VRuntime {
		t.Fatalf("heavier VM must accrue vruntime slower: %d vs %d", heavy.VRuntime, light.VRuntime)
	}
}

func TestCFSFairnessOverTime(t *testing.T) {
	m := mkMachine(t)
	c := NewCFS()
	a := mkVCPU(1, 256, 0)
	b := mkVCPU(2, 256, 0)
	c.Register(a)
	c.Register(b)
	counts := map[*vm.VCPU]int{}
	for tick := uint64(0); tick < 100; tick++ {
		v := c.PickNext(m.Core(0), tick)
		counts[v]++
		c.ChargeTick(v, machine.CyclesPerTick, tick)
		c.EndTick(tick)
	}
	if counts[a] != 50 || counts[b] != 50 {
		t.Fatalf("CFS rotation: %d vs %d", counts[a], counts[b])
	}
}

func TestCFSNewcomerNotStarved(t *testing.T) {
	c := NewCFS()
	old := mkVCPU(1, 256, vm.NoPin)
	c.Register(old)
	old.VRuntime = 1_000_000
	late := mkVCPU(2, 256, vm.NoPin)
	c.Register(late)
	if late.VRuntime != 1_000_000 {
		t.Fatalf("newcomer vruntime = %d, want the current minimum", late.VRuntime)
	}
}

func TestPiscesStaticOwnership(t *testing.T) {
	m := mkMachine(t)
	p := NewPisces()
	a := mkVCPU(1, 0, 0)
	b := mkVCPU(2, 0, 1)
	p.Register(a)
	p.Register(b)
	for tick := uint64(0); tick < 5; tick++ {
		if p.PickNext(m.Core(0), tick) != a || p.PickNext(m.Core(1), tick) != b {
			t.Fatal("enclave must always own its core")
		}
	}
	if p.PickNext(m.Core(2), 0) != nil {
		t.Fatal("unowned core must idle")
	}
}

func TestPiscesRejectsUnpinned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unpinned enclave must panic")
		}
	}()
	NewPisces().Register(mkVCPU(1, 0, vm.NoPin))
}

func TestPiscesRejectsDoubleOwnership(t *testing.T) {
	p := NewPisces()
	p.Register(mkVCPU(1, 0, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("double core ownership must panic")
		}
	}()
	p.Register(mkVCPU(2, 0, 0))
}

func TestPiscesHonoursPollutionBlock(t *testing.T) {
	m := mkMachine(t)
	p := NewPisces()
	a := mkVCPU(1, 0, 0)
	p.Register(a)
	a.VM.PollutionBlocked = true
	if p.PickNext(m.Core(0), 0) != nil {
		t.Fatal("blocked enclave must be duty-cycled off its core")
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewCredit(1).Name() != "credit" || NewCFS().Name() != "cfs" || NewPisces().Name() != "pisces" {
		t.Fatal("scheduler names changed")
	}
}
