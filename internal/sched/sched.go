// Package sched implements the vCPU schedulers the paper builds on and
// extends: the Xen credit scheduler (XCS, §3.2), a CFS-style fair
// scheduler (the KVM/Linux substrate of KS4Linux), and a Pisces-style
// space-partitioned co-kernel scheduler (§4.4). The Kyoto pollution layer
// in internal/core decorates any of them.
//
// All schedulers run under the deterministic tick loop of internal/hv:
// once per tick each core asks PickNext for an assignment, execution is
// charged back through ChargeTick, and EndTick closes the tick (credit
// refill happens on slice boundaries).
package sched

import (
	"kyoto/internal/machine"
	"kyoto/internal/vm"
)

// Scheduler is the hypervisor scheduling policy driven by internal/hv.
//
// Implementations are single-threaded (the simulation loop owns them) and
// must respect vm.VCPU.Schedulable and vm.VCPU.AllowedOn in PickNext so
// that the Kyoto layer's pollution blocking and the experiments' pinning
// work with every policy.
type Scheduler interface {
	// Name identifies the policy in reports ("credit", "cfs", ...).
	Name() string
	// Register adds a vCPU to the runqueue.
	Register(v *vm.VCPU)
	// PickNext chooses the vCPU core runs during the next tick, or nil to
	// idle. hv calls it once per core per tick, in core order; a vCPU
	// already handed out in the same tick must not be handed out twice.
	PickNext(core *machine.Core, now uint64) *vm.VCPU
	// ChargeTick accounts wallCycles of pCPU occupancy to v for the tick
	// that just executed.
	ChargeTick(v *vm.VCPU, wallCycles uint64, now uint64)
	// EndTick finishes the tick; slice-boundary bookkeeping (credit
	// refill, cap-window reset) happens here.
	EndTick(now uint64)
}

// Remover is implemented by schedulers that support removing a vCPU from
// their runqueues — the scheduler half of VM departure in fleet churn
// scenarios (internal/hv.World.RemoveVM requires it). All built-in
// policies implement Remover; Unregister of a vCPU that was never
// registered is a no-op.
type Remover interface {
	Unregister(v *vm.VCPU)
}

// IdleTickInvariant marks a scheduler (or hv tick hook) whose per-tick
// work is provably the identity on a world that holds no VMs: with an
// empty runqueue, PickNext returns nil without mutating anything and
// EndTick's slice-boundary bookkeeping touches no state. The testbed's
// idle fast-forward (hv.World.FastForward) elides the tick loop for
// empty worlds only when every installed policy and hook carries this
// marker — which is what lets the fleet's lazy per-host clocks skip an
// untouched host's idle stretch in O(1) instead of simulating it.
// Implementations promise the invariant for their own state only; a
// decorator must additionally hold it for its base (hv checks the base
// recursively through the Base accessor).
type IdleTickInvariant interface {
	IdleTickInvariant()
}

// BudgetLimiter is optionally implemented by schedulers that bound how
// many wall cycles a vCPU may consume within one tick (sub-tick cap
// enforcement). The testbed stops the vCPU once the budget is spent and
// leaves the core idle for the remainder of the tick.
type BudgetLimiter interface {
	// TickBudget returns the maximum wall cycles v may run during the
	// coming tick; ^uint64(0) means unlimited.
	TickBudget(v *vm.VCPU, now uint64) uint64
}

// assignment tracking shared by the policies: a vCPU picked at tick t must
// not be picked again at tick t by another core.
type assignTracker struct {
	tick map[*vm.VCPU]uint64
}

func newAssignTracker() assignTracker {
	return assignTracker{tick: make(map[*vm.VCPU]uint64)}
}

// taken reports whether v was already assigned at tick now.
func (a *assignTracker) taken(v *vm.VCPU, now uint64) bool {
	t, ok := a.tick[v]
	return ok && t == now+1 // stored as now+1 so tick 0 works
}

// take marks v assigned at tick now.
func (a *assignTracker) take(v *vm.VCPU, now uint64) {
	a.tick[v] = now + 1
}

// forget drops v's assignment record (vCPU removal).
func (a *assignTracker) forget(v *vm.VCPU) {
	delete(a.tick, v)
}

// removeVCPU deletes v from vcpus preserving order, returning the shrunk
// slice. Shared by the policies' Unregister implementations; removal is a
// cold-path operation, so the O(n) copy is fine.
func removeVCPU(vcpus []*vm.VCPU, v *vm.VCPU) []*vm.VCPU {
	for i, cand := range vcpus {
		if cand == v {
			return append(vcpus[:i], vcpus[i+1:]...)
		}
	}
	return vcpus
}
