package workload

import (
	"fmt"
	"sort"
)

// This file defines the application models used throughout the evaluation.
//
// Working-set sizes are expressed against the scaled machine of
// internal/machine (LLC 640 KB / L2 16 KB / L1 2 KB — 1:16 of the paper's
// Table 1) and the scaled 100 MHz clock (1 tick = 10 ms = 1 M cycles).
//
// The SPEC CPU2006 profiles are calibrated so that, measured inside the
// simulator, they reproduce the paper's Figure 4 data:
//
//	o1 (real aggressiveness):  blockie lbm mcf soplex milc omnetpp gcc xalan astar bzip
//	o2 (raw LLCM indicator):   milc lbm soplex mcf blockie gcc omnetpp xalan astar bzip
//	o3 (Equation 1 indicator): lbm blockie milc mcf soplex gcc omnetpp xalan astar bzip
//
// The mechanisms that produce the divergences are deliberate, not curve
// fitting:
//
//   - milc ranks #1 on raw miss count but only #5 on inflicted damage
//     because its large power-of-two stride concentrates its (enormous)
//     conflict-miss traffic into a few LLC sets — it thrashes itself, not
//     its neighbours.
//   - blockie ranks #5 on raw miss count but #1 on damage because it is a
//     bursty wiper: short maximum-bandwidth sweeps that overwhelm LRU's
//     recency protection and flush co-runners' footprints wholesale,
//     separated by long quiet phases that dilute its wall-clock averages.
//   - lbm is the steady polluter: the highest busy-time pollution *rate*
//     (hence #1 on Equation 1, which normalizes by unhalted cycles), with
//     enough halted time that its wall-clock miss count trails milc's.
//
// Sensitive applications (gcc, omnetpp, soplex — the paper's vsen1..3) are
// LLC-resident pointer chasers: dependent loads with no memory-level
// parallelism, so every line a polluter evicts costs a full memory round
// trip.
const (
	kib = 1024
	mib = 1024 * kib
)

// Paper VM notation (§4, Table 2): vsen1..3 and vdis1..3.
const (
	VSen1 = "gcc"     // sensitive VM 1
	VSen2 = "omnetpp" // sensitive VM 2
	VSen3 = "soplex"  // sensitive VM 3
	VDis1 = "lbm"     // disruptive VM 1
	VDis2 = "blockie" // disruptive VM 2
	VDis3 = "mcf"     // disruptive VM 3
)

// profileTable is built once at package init from static literals; access
// it through Lookup/Names so callers cannot mutate shared state.
var profileTable = buildProfiles()

func buildProfiles() map[string]Profile {
	ps := []Profile{
		// --- The paper's three sensitive applications (Table 2). ---
		{
			// gcc: LLC-resident pointer chasing over a mid-size working
			// set, with a short sweep phase modelling its pass-structure
			// (source -> IR -> codegen) that occasionally overflows the LLC.
			Name: "gcc", Class: C2, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 224 * kib, MemRatio: 0.25, Instructions: 400_000},
				{Kind: Stream, WSSBytes: 896 * kib, StrideBytes: 512, MemRatio: 0.6, MLP: 2, Instructions: 10_000},
			},
		},
		{
			// omnetpp: discrete-event simulator; slightly larger resident
			// heap than gcc (more occupancy -> more aggressive when
			// co-located) but fewer solo LLC misses.
			Name: "omnetpp", Class: C2, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 384 * kib, MemRatio: 0.45, MLP: 1.4, Instructions: 400_000},
				{Kind: Stream, WSSBytes: 768 * kib, StrideBytes: 256, MemRatio: 0.8, MLP: 4, Instructions: 5_000},
			},
		},
		{
			// soplex: LP solver; alternates LLC-resident pivoting with
			// sparse matrix scans at a 256 B effective stride (every 4th
			// line), so its scan pollution lands on a quarter of the sets.
			Name: "soplex", Class: C3, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Stream, WSSBytes: 4 * mib, StrideBytes: 256, MemRatio: 0.95, MLP: 6, Instructions: 36_000},
				{Kind: Chase, WSSBytes: 320 * kib, MemRatio: 0.3, MLP: 1.4, HaltFrac: 0.15, Instructions: 120_000},
			},
		},

		// --- The paper's three disruptive applications (Table 2). ---
		{
			// lbm: fluid dynamics, the canonical steady streamer: top
			// busy-time pollution rate, uniform across all LLC sets.
			Name: "lbm", Class: C3, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Stream, WSSBytes: 2560 * kib, StrideBytes: 128, MemRatio: 0.45, MLP: 6, HaltFrac: 0.56, Instructions: 1_000_000},
			},
		},
		{
			// blockie: the contention suite's synthetic wiper [Mars &
			// Soffa, WBIA 2009]: short maximum-bandwidth sweeps of a
			// 2 MB block, then a long quiet phase. Each sweep floods every
			// set faster than victims can re-touch their lines.
			Name: "blockie", Class: C3, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Stream, WSSBytes: 3 * mib, StrideBytes: 64, MemRatio: 0.95, MLP: 8, Instructions: 11_000},
				{Kind: Compute, HaltFrac: 0.855, Instructions: 125_000},
			},
		},
		{
			// mcf: vehicle scheduling over huge pointer-linked arcs:
			// uniformly random traffic over a working set 4x the LLC with
			// modest memory-level parallelism.
			Name: "mcf", Class: C3, BaseCPI: 1,
			Phases: []Phase{
				{Kind: UniformRandom, WSSBytes: 2560 * kib, MemRatio: 0.75, MLP: 3.5, HaltFrac: 0.45, Instructions: 1_000_000},
			},
		},

		// --- Remaining Figure 4 applications. ---
		{
			// milc: lattice QCD; su3 field walks with a large power-of-two
			// stride. Every access conflict-misses in a handful of LLC
			// sets: the highest raw miss count in the suite, confined to
			// ~1/64th of the cache.
			Name: "milc", Class: C3, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Strided, WSSBytes: 1 * mib, StrideBytes: 2048, MemRatio: 0.95, MLP: 4, HaltFrac: 0.08, Instructions: 1_000_000},
			},
		},
		{
			// xalan: XSLT processor; resident tree walks plus occasional
			// document sweeps.
			Name: "xalan", Class: C2, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 224 * kib, MemRatio: 0.22, Instructions: 400_000},
				{Kind: Stream, WSSBytes: 704 * kib, StrideBytes: 512, MemRatio: 0.5, MLP: 2, Instructions: 4_500},
			},
		},
		{
			// astar: path finding on a mostly-resident map.
			Name: "astar", Class: C2, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 160 * kib, MemRatio: 0.2, Instructions: 400_000},
				{Kind: Stream, WSSBytes: 672 * kib, StrideBytes: 256, MemRatio: 0.5, MLP: 2, Instructions: 2_500},
			},
		},
		{
			// bzip2: block compression in small buffers; the least
			// LLC-active application of the Figure 4 set.
			Name: "bzip", Class: C2, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 96 * kib, MemRatio: 0.25, Instructions: 400_000},
				{Kind: Stream, WSSBytes: 656 * kib, StrideBytes: 256, MemRatio: 0.5, MLP: 2, Instructions: 1_500},
			},
		},

		// --- Figures 9, 10, 12 applications. ---
		{
			// hmmer: profile HMM search, L2-resident: "known to generate
			// low LLC misses" (§4.5) — the Fig 10 skip-heuristic subject.
			Name: "hmmer", Class: C1, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 12 * kib, MemRatio: 0.3, Instructions: 1_000_000},
			},
		},
		{
			// povray: ray tracing, CPU-bound with a tiny footprint — the
			// Fig 12 overhead workload.
			Name: "povray", Class: C1, BaseCPI: 1,
			Phases: []Phase{
				{Kind: Chase, WSSBytes: 4 * kib, MemRatio: 0.05, Instructions: 1_000_000},
			},
		},

		// --- §2.2 micro-benchmarks: representative and disruptive VMs
		// per class (v1..3 rep/dis). The representative is the paper's
		// linked-list walker at the class's working-set size; the
		// disruptive version streams at high intensity within the class.
		{
			Name: "micro-c1-rep", Class: C1, BaseCPI: 1,
			Phases: []Phase{{Kind: Chase, WSSBytes: 8 * kib, MemRatio: 0.3, Instructions: 1_000_000}},
		},
		{
			Name: "micro-c1-dis", Class: C1, BaseCPI: 1,
			Phases: []Phase{{Kind: Stream, WSSBytes: 12 * kib, StrideBytes: 64, MemRatio: 0.9, MLP: 2, Instructions: 1_000_000}},
		},
		{
			Name: "micro-c2-rep", Class: C2, BaseCPI: 1,
			Phases: []Phase{{Kind: Chase, WSSBytes: 320 * kib, MemRatio: 0.3, Instructions: 1_000_000}},
		},
		{
			Name: "micro-c2-dis", Class: C2, BaseCPI: 1,
			Phases: []Phase{{Kind: Stream, WSSBytes: 512 * kib, StrideBytes: 64, MemRatio: 0.9, MLP: 8, Instructions: 1_000_000}},
		},
		{
			Name: "micro-c3-rep", Class: C3, BaseCPI: 1,
			Phases: []Phase{{Kind: UniformRandom, WSSBytes: 2 * mib, MemRatio: 0.35, MLP: 2, Instructions: 1_000_000}},
		},
		{
			Name: "micro-c3-dis", Class: C3, BaseCPI: 1,
			Phases: []Phase{{Kind: Stream, WSSBytes: 3 * mib, StrideBytes: 64, MemRatio: 0.9, MLP: 8, Instructions: 1_000_000}},
		},
	}

	m := make(map[string]Profile, len(ps))
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			panic(fmt.Sprintf("workload: built-in profile invalid: %v", err))
		}
		if _, dup := m[p.Name]; dup {
			panic(fmt.Sprintf("workload: duplicate built-in profile %q", p.Name))
		}
		m[p.Name] = p
	}
	return m
}

// Lookup returns the built-in profile with the given name.
func Lookup(name string) (Profile, error) {
	p, ok := profileTable[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
	}
	return p, nil
}

// MustLookup is Lookup but panics on unknown names; for the experiment
// harness whose names are compile-time constants.
func MustLookup(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all built-in profile names, sorted.
func Names() []string {
	names := make([]string, 0, len(profileTable))
	for n := range profileTable {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Figure4Apps returns the ten applications of the paper's Figure 4
// aggressiveness study, in the paper's o1 (real aggressiveness) order.
func Figure4Apps() []string {
	return []string{"blockie", "lbm", "mcf", "soplex", "milc", "omnetpp", "gcc", "xalan", "astar", "bzip"}
}

// PaperOrderO1 is the paper's measured real-aggressiveness ordering.
func PaperOrderO1() []string { return Figure4Apps() }

// PaperOrderO2 is the paper's ordering by the raw-LLCM indicator.
func PaperOrderO2() []string {
	return []string{"milc", "lbm", "soplex", "mcf", "blockie", "gcc", "omnetpp", "xalan", "astar", "bzip"}
}

// PaperOrderO3 is the paper's ordering by the Equation 1 indicator.
func PaperOrderO3() []string {
	return []string{"lbm", "blockie", "milc", "mcf", "soplex", "gcc", "omnetpp", "xalan", "astar", "bzip"}
}
