// Package workload synthesizes the memory behaviour of the applications the
// paper evaluates (SPEC CPU2006 subset, blockie, and the micro-benchmarks of
// §2.2.2) as deterministic instruction/access streams.
//
// SPEC binaries cannot run inside the simulator, so each application is
// modelled by a profile built from a small set of mechanisms that the
// contention literature (and the paper's own Figure 4 data) identify as the
// determinants of cache aggressiveness and sensitivity:
//
//   - working-set size relative to the cache levels (the paper's C1/C2/C3
//     classes, §2.2.4),
//   - access pattern: pointer chase (dependent loads, latency-bound),
//     streaming (high footprint velocity), large-stride walks
//     (set-concentrated conflict misses), uniform random,
//   - memory intensity (fraction of instructions that touch memory),
//   - phase structure (bursts of memory activity between compute phases),
//   - halt fraction (cycles the core idles, stopping the unhalted-cycle
//     PMC but not wall time).
//
// Profiles are calibrated against the paper's published orderings; see
// profiles.go and the calibration tests.
package workload

import (
	"fmt"

	"kyoto/internal/xrand"
)

// Step is one unit of execution emitted by a Generator: a run of compute
// instructions optionally followed by a single memory access.
//
// Field order packs the struct into 40 bytes (wide fields first): the
// execution engine writes and reads one Step per simulated step, so its
// size is hot-path-relevant.
type Step struct {
	// Addr is the virtual byte address of the access (valid when HasAccess).
	Addr uint64
	// HaltFrac is the fraction of wall time the application halts during
	// this phase, in [0,1). The execution engine stretches wall time by
	// 1/(1-HaltFrac) without advancing the unhalted-cycle counter.
	HaltFrac float64
	// MLP is the memory-level parallelism of this phase's accesses: the
	// effective divisor on LLC/memory latency from overlapped misses and
	// hardware prefetching. 0 means 1 (fully serialized, e.g. pointer
	// chasing). Streaming patterns reach 4-8 on real hardware.
	MLP float64
	// Instrs is the number of instructions this step retires, including
	// the memory access when HasAccess is set. At least 1.
	Instrs uint32
	// ComputeCycles is the cycle cost of the non-memory instructions.
	ComputeCycles uint32
	// HasAccess reports whether the step ends with a memory access.
	HasAccess bool
	// IsWrite marks stores (valid when HasAccess).
	IsWrite bool
}

// Generator produces an infinite deterministic stream of Steps.
// Implementations are not safe for concurrent use; each vCPU owns one.
type Generator interface {
	// Next returns the next step.
	Next() Step
}

// BatchGenerator is optionally implemented by generators that can emit
// many steps per call. NextBatch must be arithmetic-preserving: filling a
// buffer draws exactly the same RNG values and carries the same fractional
// accumulators as the equivalent sequence of Next calls, so the step
// stream is bit-identical however it is consumed. The execution engine
// (internal/cpu) uses it to amortize the per-step interface dispatch.
type BatchGenerator interface {
	Generator
	// NextBatch fills buf with the next len(buf) steps of the stream and
	// returns the number written (len(buf), except when buf is empty).
	NextBatch(buf []Step) int
}

// PatternKind selects an address-generation mechanism.
type PatternKind int

// Supported patterns.
const (
	// Chase walks a random circular permutation of the working set's
	// lines (the paper's §2.2.2 micro-benchmark): dependent loads with no
	// spatial locality, maximally sensitive to eviction.
	Chase PatternKind = iota + 1
	// Stream walks the working set sequentially with a fixed stride,
	// wrapping at the end: maximal footprint velocity, the signature of
	// lbm/blockie-style polluters.
	Stream
	// Strided is Stream with a large power-of-two stride, concentrating
	// all accesses into a few cache sets: enormous miss counts whose
	// pollution is confined (the milc signature).
	Strided
	// UniformRandom touches uniformly random lines of the working set
	// (the mcf signature).
	UniformRandom
	// Compute performs no memory accesses.
	Compute
)

// String returns the pattern name.
func (k PatternKind) String() string {
	switch k {
	case Chase:
		return "chase"
	case Stream:
		return "stream"
	case Strided:
		return "strided"
	case UniformRandom:
		return "uniform"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("PatternKind(%d)", int(k))
	}
}

// Phase describes one phase of an application's periodic behaviour.
type Phase struct {
	// Kind is the address pattern of this phase.
	Kind PatternKind
	// WSSBytes is the phase's working-set size.
	WSSBytes int
	// StrideBytes is the walk stride for Stream/Strided (default 64).
	StrideBytes int
	// MemRatio is the fraction of instructions that access memory, in
	// [0,1]. Zero is allowed only for Compute phases.
	MemRatio float64
	// Instructions is the phase length; generators cycle through phases.
	Instructions uint64
	// HaltFrac is the halted fraction of wall time during this phase.
	HaltFrac float64
	// Writes is the store fraction among memory accesses.
	Writes float64
	// MLP is the phase's memory-level parallelism (see Step.MLP); 0 means
	// 1. Dependent-load patterns (Chase) should leave it at 1; streaming
	// patterns with prefetcher-friendly strides justify 4-8.
	MLP float64
}

// Validate reports configuration errors.
func (p Phase) Validate() error {
	if p.Kind == Compute {
		if p.MemRatio != 0 {
			return fmt.Errorf("workload: compute phase cannot have MemRatio %v", p.MemRatio)
		}
	} else {
		if p.WSSBytes <= 0 {
			return fmt.Errorf("workload: %v phase needs positive WSSBytes, got %d", p.Kind, p.WSSBytes)
		}
		if p.MemRatio <= 0 || p.MemRatio > 1 {
			return fmt.Errorf("workload: MemRatio %v outside (0,1]", p.MemRatio)
		}
	}
	if p.Instructions == 0 {
		return fmt.Errorf("workload: phase needs positive Instructions")
	}
	if p.HaltFrac < 0 || p.HaltFrac >= 1 {
		return fmt.Errorf("workload: HaltFrac %v outside [0,1)", p.HaltFrac)
	}
	if p.Writes < 0 || p.Writes > 1 {
		return fmt.Errorf("workload: Writes %v outside [0,1]", p.Writes)
	}
	if p.MLP < 0 || p.MLP > 64 {
		return fmt.Errorf("workload: MLP %v outside [0,64]", p.MLP)
	}
	return nil
}

// Class is the paper's application taxonomy (§2.2.4): C1 fits in the
// intermediate-level caches (L1+L2), C2 fits in the LLC, C3 exceeds it.
type Class int

// Application classes.
const (
	C1 Class = iota + 1
	C2
	C3
)

// String returns "C1".."C3".
func (c Class) String() string { return fmt.Sprintf("C%d", int(c)) }

// Profile is a named application model.
type Profile struct {
	// Name is the application name as used in the paper ("gcc", "lbm", ...).
	Name string
	// Class is the paper's C1/C2/C3 classification.
	Class Class
	// BaseCPI is the cycle cost of a non-memory instruction.
	BaseCPI float64
	// Phases cycle forever in order.
	Phases []Phase
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: profile %q has no phases", p.Name)
	}
	if p.BaseCPI <= 0 {
		return fmt.Errorf("workload: profile %q BaseCPI %v must be positive", p.Name, p.BaseCPI)
	}
	for i, ph := range p.Phases {
		if err := ph.Validate(); err != nil {
			return fmt.Errorf("profile %q phase %d: %w", p.Name, i, err)
		}
	}
	return nil
}

// MaxWSSBytes returns the largest working set across phases.
func (p Profile) MaxWSSBytes() int {
	m := 0
	for _, ph := range p.Phases {
		if ph.WSSBytes > m {
			m = ph.WSSBytes
		}
	}
	return m
}

// lineBytes is the cache line granularity addresses are generated at.
const lineBytes = 64

// gen implements Generator for a Profile.
type gen struct {
	profile Profile
	rng     *xrand.Rand

	phaseIdx    int
	phaseInstrs uint64 // instructions retired in the current phase
	// patterns holds one persistent state per phase: a phase resumes
	// where it left off when the profile cycles back to it (a program
	// scanning a large structure continues, it does not restart).
	patterns []patternState

	// memAcc is the fractional accumulator implementing MemRatio
	// deterministically (avoids RNG noise in intensity).
	memAcc float64
	// cpiAcc accumulates fractional compute cycles.
	cpiAcc float64
}

// New returns a Generator for profile, seeded with seed. The profile is
// validated; invalid profiles return an error.
func New(profile Profile, seed uint64) (Generator, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		profile:  profile,
		rng:      xrand.New(seed ^ 0x9e3779b9),
		patterns: make([]patternState, len(profile.Phases)),
	}
	for i, ph := range profile.Phases {
		g.patterns[i].init(ph, g.rng)
	}
	return g, nil
}

// MustNew is New but panics on error, for statically known-good profiles.
func MustNew(profile Profile, seed uint64) Generator {
	g, err := New(profile, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// enterPhase switches to phase i, preserving its pattern state.
func (g *gen) enterPhase(i int) {
	g.phaseIdx = i
	g.phaseInstrs = 0
}

// Next implements Generator.
func (g *gen) Next() Step {
	var s Step
	g.nextInto(&s)
	return s
}

// NextBatch implements BatchGenerator. The loop body is the exact Next
// step function, so batch consumption preserves every RNG draw and
// accumulator update of the serial stream.
func (g *gen) NextBatch(buf []Step) int {
	for i := range buf {
		g.nextInto(&buf[i])
	}
	return len(buf)
}

// nextInto writes the next step to out (in place, sparing the caller a
// 40-byte struct copy per step).
func (g *gen) nextInto(out *Step) {
	ph := &g.profile.Phases[g.phaseIdx]

	if ph.Kind == Compute || ph.MemRatio == 0 {
		// Emit the whole remaining phase as a single compute step, capped
		// so steps stay small relative to scheduling chunks.
		const maxChunk = 256
		remain := ph.Instructions - g.phaseInstrs
		n := uint64(maxChunk)
		if remain < n {
			n = remain
		}
		cycles := g.cyclesFor(n)
		g.advance(n)
		*out = Step{
			Instrs:        uint32(n),
			ComputeCycles: cycles,
			HaltFrac:      ph.HaltFrac,
			MLP:           ph.MLP,
		}
		return
	}

	// Number of compute instructions before the next access: from the
	// fractional accumulator, mean (1-m)/m.
	g.memAcc += ph.MemRatio
	gap := uint64(0)
	for g.memAcc < 1 {
		// Accumulate whole instructions until an access is due.
		need := (1 - g.memAcc) / ph.MemRatio
		step := uint64(need)
		if float64(step) < need {
			step++
		}
		gap += step
		g.memAcc += float64(step) * ph.MemRatio
	}
	g.memAcc -= 1

	addr := g.patterns[g.phaseIdx].next(*ph, g.rng)
	isWrite := ph.Writes > 0 && g.rng.Bool(ph.Writes)
	instrs := gap + 1
	cycles := g.cyclesFor(gap)
	g.advance(instrs)
	*out = Step{
		Instrs:        uint32(instrs),
		ComputeCycles: cycles,
		HasAccess:     true,
		Addr:          addr,
		IsWrite:       isWrite,
		HaltFrac:      ph.HaltFrac,
		MLP:           ph.MLP,
	}
}

// cyclesFor converts an instruction count to compute cycles under BaseCPI,
// carrying the fractional remainder across calls.
func (g *gen) cyclesFor(instrs uint64) uint32 {
	g.cpiAcc += float64(instrs) * g.profile.BaseCPI
	c := uint64(g.cpiAcc)
	g.cpiAcc -= float64(c)
	return uint32(c)
}

// advance retires instrs instructions, switching phases when due.
func (g *gen) advance(instrs uint64) {
	g.phaseInstrs += instrs
	if g.phaseInstrs >= g.profile.Phases[g.phaseIdx].Instructions {
		g.enterPhase((g.phaseIdx + 1) % len(g.profile.Phases))
	}
}

// patternState holds per-phase address-generation state.
type patternState struct {
	// Chase: chain[i] is the next line index after i (single cycle).
	chain []uint32
	pos   uint32
	// Stream/Strided: current byte offset.
	offset uint64
}

// init prepares state for phase ph.
func (s *patternState) init(ph Phase, rng *xrand.Rand) {
	s.offset = 0
	s.pos = 0
	s.chain = nil
	if ph.Kind == Chase {
		lines := ph.WSSBytes / lineBytes
		if lines < 2 {
			lines = 2
		}
		s.chain = sattolo(lines, rng)
	}
}

// next returns the next access address for phase ph.
func (s *patternState) next(ph Phase, rng *xrand.Rand) uint64 {
	switch ph.Kind {
	case Chase:
		s.pos = s.chain[s.pos]
		return uint64(s.pos) * lineBytes
	case Stream, Strided:
		stride := uint64(ph.StrideBytes)
		if stride == 0 {
			stride = lineBytes
		}
		addr := s.offset
		s.offset += stride
		if s.offset >= uint64(ph.WSSBytes) {
			s.offset = 0
		}
		return addr
	case UniformRandom:
		lines := uint64(ph.WSSBytes / lineBytes)
		if lines == 0 {
			lines = 1
		}
		return rng.Uint64n(lines) * lineBytes
	default:
		return 0
	}
}

// sattolo builds a single-cycle random permutation: chain[i] = successor of
// line i, with all n lines on one cycle (so a chase visits the whole
// working set before repeating, like the paper's linked-list walker).
func sattolo(n int, rng *xrand.Rand) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	// Sattolo's algorithm produces a uniformly random cyclic permutation.
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// perm is a cycle in one-line notation; convert to successor form.
	chain := make([]uint32, n)
	for i := 0; i < n-1; i++ {
		chain[perm[i]] = perm[i+1]
	}
	chain[perm[n-1]] = perm[0]
	return chain
}
