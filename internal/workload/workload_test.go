package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func chasePhase(wss int, ratio float64) Phase {
	return Phase{Kind: Chase, WSSBytes: wss, MemRatio: ratio, Instructions: 100_000}
}

func testProfile(phases ...Phase) Profile {
	return Profile{Name: "test", Class: C2, BaseCPI: 1, Phases: phases}
}

func TestPhaseValidate(t *testing.T) {
	tests := []struct {
		name string
		ph   Phase
		ok   bool
	}{
		{"chase ok", chasePhase(4096, 0.5), true},
		{"zero wss", Phase{Kind: Chase, MemRatio: 0.5, Instructions: 1}, false},
		{"zero memratio", Phase{Kind: Chase, WSSBytes: 64, Instructions: 1}, false},
		{"memratio > 1", Phase{Kind: Chase, WSSBytes: 64, MemRatio: 1.5, Instructions: 1}, false},
		{"compute with memratio", Phase{Kind: Compute, MemRatio: 0.5, Instructions: 1}, false},
		{"compute ok", Phase{Kind: Compute, Instructions: 1}, true},
		{"zero instructions", Phase{Kind: Compute}, false},
		{"halt 1.0", Phase{Kind: Compute, HaltFrac: 1, Instructions: 1}, false},
		{"bad writes", Phase{Kind: Chase, WSSBytes: 64, MemRatio: 0.5, Writes: 2, Instructions: 1}, false},
		{"bad mlp", Phase{Kind: Chase, WSSBytes: 64, MemRatio: 0.5, MLP: 100, Instructions: 1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ph.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want ok, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{}).Validate(); err == nil {
		t.Fatal("empty profile must not validate")
	}
	if err := (Profile{Name: "x", BaseCPI: 1}).Validate(); err == nil {
		t.Fatal("no phases must not validate")
	}
	if err := (Profile{Name: "x", Phases: []Phase{chasePhase(64, 0.5)}}).Validate(); err == nil {
		t.Fatal("zero CPI must not validate")
	}
	if err := testProfile(chasePhase(4096, 0.5)).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMemRatioIsHonoured(t *testing.T) {
	for _, ratio := range []float64{0.1, 0.25, 0.5, 0.9, 1.0} {
		g := MustNew(testProfile(chasePhase(64*1024, ratio)), 1)
		var instrs, accesses uint64
		for i := 0; i < 20000; i++ {
			st := g.Next()
			instrs += uint64(st.Instrs)
			if st.HasAccess {
				accesses++
			}
		}
		got := float64(accesses) / float64(instrs)
		if math.Abs(got-ratio) > 0.02 {
			t.Fatalf("ratio %v: measured %v", ratio, got)
		}
	}
}

func TestChaseVisitsWholeWorkingSet(t *testing.T) {
	const wss = 64 * 64 // 64 lines
	g := MustNew(testProfile(chasePhase(wss, 1.0)), 3)
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		st := g.Next()
		if !st.HasAccess {
			t.Fatal("MemRatio 1 must access every step")
		}
		if st.Addr >= wss {
			t.Fatalf("address %#x outside working set", st.Addr)
		}
		seen[st.Addr/64] = true
	}
	if len(seen) != 64 {
		t.Fatalf("chase visited %d/64 lines in one period", len(seen))
	}
}

func TestStreamWrapsAndStrides(t *testing.T) {
	ph := Phase{Kind: Stream, WSSBytes: 4 * 64, StrideBytes: 64, MemRatio: 1, Instructions: 100}
	g := MustNew(testProfile(ph), 1)
	want := []uint64{0, 64, 128, 192, 0, 64}
	for i, w := range want {
		st := g.Next()
		if st.Addr != w {
			t.Fatalf("step %d addr = %d, want %d", i, st.Addr, w)
		}
	}
}

func TestStridedConcentratesSets(t *testing.T) {
	// Stride 1024 over 64KB: line indexes are multiples of 16.
	ph := Phase{Kind: Strided, WSSBytes: 64 * 1024, StrideBytes: 1024, MemRatio: 1, Instructions: 10_000}
	g := MustNew(testProfile(ph), 1)
	for i := 0; i < 200; i++ {
		st := g.Next()
		if (st.Addr/64)%16 != 0 {
			t.Fatalf("strided address %#x not on stride grid", st.Addr)
		}
	}
}

func TestUniformRandomStaysInWSS(t *testing.T) {
	ph := Phase{Kind: UniformRandom, WSSBytes: 128 * 64, MemRatio: 1, Instructions: 10_000}
	g := MustNew(testProfile(ph), 9)
	for i := 0; i < 1000; i++ {
		st := g.Next()
		if st.Addr >= 128*64 {
			t.Fatalf("address %#x outside working set", st.Addr)
		}
	}
}

func TestPhaseCyclingAndPersistence(t *testing.T) {
	// Stream phase resumes where it left off across phase switches.
	stream := Phase{Kind: Stream, WSSBytes: 1 << 20, StrideBytes: 64, MemRatio: 1, Instructions: 4}
	compute := Phase{Kind: Compute, Instructions: 8}
	g := MustNew(testProfile(stream, compute), 1)
	var addrs []uint64
	for len(addrs) < 8 {
		st := g.Next()
		if st.HasAccess {
			addrs = append(addrs, st.Addr)
		}
	}
	for i := 1; i < len(addrs); i++ {
		if addrs[i] != addrs[i-1]+64 {
			t.Fatalf("stream did not persist across phases: %v", addrs)
		}
	}
}

func TestHaltFracPropagates(t *testing.T) {
	ph := chasePhase(4096, 0.5)
	ph.HaltFrac = 0.25
	g := MustNew(testProfile(ph), 1)
	if st := g.Next(); st.HaltFrac != 0.25 {
		t.Fatalf("HaltFrac = %v", st.HaltFrac)
	}
}

func TestWritesFraction(t *testing.T) {
	ph := chasePhase(4096, 1.0)
	ph.Writes = 0.5
	g := MustNew(testProfile(ph), 5)
	writes := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if g.Next().IsWrite {
			writes++
		}
	}
	if frac := float64(writes) / n; math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("write fraction = %v", frac)
	}
}

func TestDeterministicStreams(t *testing.T) {
	p := MustLookup("gcc")
	a := MustNew(p, 42)
	b := MustNew(p, 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	p := MustLookup("mcf")
	a := MustNew(p, 1)
	b := MustNew(p, 2)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next().Addr != b.Next().Addr {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical address streams")
	}
}

func TestBuiltinProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p := MustLookup(name)
		if err := p.Validate(); err != nil {
			t.Fatalf("profile %s: %v", name, err)
		}
		g := MustNew(p, 7)
		var instrs uint64
		for i := 0; i < 1000; i++ {
			st := g.Next()
			if st.Instrs == 0 {
				t.Fatalf("profile %s emitted zero-instruction step", name)
			}
			instrs += uint64(st.Instrs)
		}
		if instrs == 0 {
			t.Fatalf("profile %s made no progress", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-app"); err == nil {
		t.Fatal("unknown profile must error")
	}
}

func TestFigure4AppsAreProfiles(t *testing.T) {
	for _, name := range Figure4Apps() {
		if _, err := Lookup(name); err != nil {
			t.Fatalf("figure-4 app %s missing: %v", name, err)
		}
	}
	if len(Figure4Apps()) != 10 {
		t.Fatalf("figure 4 needs 10 apps, have %d", len(Figure4Apps()))
	}
}

func TestPaperOrdersArePermutations(t *testing.T) {
	base := map[string]bool{}
	for _, a := range Figure4Apps() {
		base[a] = true
	}
	for _, order := range [][]string{PaperOrderO1(), PaperOrderO2(), PaperOrderO3()} {
		if len(order) != len(base) {
			t.Fatalf("order length %d", len(order))
		}
		seen := map[string]bool{}
		for _, a := range order {
			if !base[a] || seen[a] {
				t.Fatalf("order %v not a permutation", order)
			}
			seen[a] = true
		}
	}
}

func TestClassString(t *testing.T) {
	if C1.String() != "C1" || C3.String() != "C3" {
		t.Fatal("class labels wrong")
	}
}

func TestMaxWSS(t *testing.T) {
	p := testProfile(chasePhase(100, 0.5), Phase{Kind: Stream, WSSBytes: 500, MemRatio: 0.5, Instructions: 10})
	if p.MaxWSSBytes() != 500 {
		t.Fatalf("max wss = %d", p.MaxWSSBytes())
	}
}

// Property: sattolo chains are single cycles covering every line.
func TestQuickSattoloSingleCycle(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%200) + 2
		wss := n * 64
		g := MustNew(testProfile(chasePhase(wss, 1.0)), seed)
		seen := make(map[uint64]bool, n)
		for i := 0; i < n; i++ {
			st := g.Next()
			if seen[st.Addr] {
				return false // revisited before covering the cycle
			}
			seen[st.Addr] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkWorkloadGen measures step-stream generation for the profiles
// the evaluation leans on hardest: a memory-heavy phase mix (gcc), a pure
// streamer (lbm), and a compute-dominated app (povray).
func BenchmarkWorkloadGen(b *testing.B) {
	for _, app := range []string{"gcc", "lbm", "povray"} {
		b.Run(app, func(b *testing.B) {
			p, err := Lookup(app)
			if err != nil {
				b.Fatal(err)
			}
			g := MustNew(p, 1)
			b.ReportAllocs()
			b.ResetTimer()
			var instrs uint64
			for i := 0; i < b.N; i++ {
				instrs += uint64(g.Next().Instrs)
			}
			b.ReportMetric(float64(instrs)/float64(b.N), "instrs/step")
		})
	}
	// The batched path the execution engine actually uses: one interface
	// call per 64 steps, steps written in place.
	b.Run("gcc-batch", func(b *testing.B) {
		p, err := Lookup("gcc")
		if err != nil {
			b.Fatal(err)
		}
		g := MustNew(p, 1).(BatchGenerator)
		buf := make([]Step, 64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += len(buf) {
			g.NextBatch(buf)
		}
	})
}

// TestNextBatchMatchesNext pins the batch API's arithmetic-preservation
// contract: the batched stream must be bit-identical to repeated Next
// calls, whatever buffer size slices it.
func TestNextBatchMatchesNext(t *testing.T) {
	for _, app := range []string{"gcc", "lbm", "mcf", "povray"} {
		p, err := Lookup(app)
		if err != nil {
			t.Fatal(err)
		}
		serial := MustNew(p, 99)
		batched := MustNew(p, 99).(BatchGenerator)
		buf := make([]Step, 7) // odd size: batches straddle phase boundaries
		for n := 0; n < 3000; n += len(buf) {
			got := batched.NextBatch(buf)
			if got != len(buf) {
				t.Fatalf("%s: NextBatch returned %d, want %d", app, got, len(buf))
			}
			for i := range buf[:got] {
				want := serial.Next()
				if buf[i] != want {
					t.Fatalf("%s: step %d diverged:\nbatch  %+v\nserial %+v", app, n+i, buf[i], want)
				}
			}
		}
	}
}
