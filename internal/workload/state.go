package workload

// Generator checkpoint support. A generator built by New is a pure
// function of (profile, seed, cursor): the phase chains are derived from
// the seed at construction, so a checkpoint only needs the cursor — the
// RNG position, the phase position, the per-phase walk positions, and
// the two fractional accumulators. Restoring the cursor into a freshly
// built generator for the same (profile, seed) reproduces the remaining
// step stream bit-for-bit, which is what the snapshot layer's
// differential goldens assert.

import "fmt"

// GenState is the serializable cursor of a generator built by New.
type GenState struct {
	// RNG is the generator's splitmix64 position.
	RNG uint64 `json:"rng"`
	// PhaseIdx / PhaseInstrs locate execution within the profile.
	PhaseIdx    int    `json:"phase_idx"`
	PhaseInstrs uint64 `json:"phase_instrs"`
	// MemAcc / CpiAcc are the fractional accumulators (finite by
	// construction, so their JSON round-trip is exact).
	MemAcc float64 `json:"mem_acc"`
	CpiAcc float64 `json:"cpi_acc"`
	// Pos / Offset are the per-phase pattern positions (chase position,
	// stream/strided byte offset), indexed like the profile's phases.
	Pos    []uint32 `json:"pos"`
	Offset []uint64 `json:"offset"`
}

// CaptureGenState extracts the cursor of a generator built by New.
// Generators of other types (none exist in-tree) are rejected.
func CaptureGenState(gr Generator) (GenState, error) {
	g, ok := gr.(*gen)
	if !ok {
		return GenState{}, fmt.Errorf("workload: generator %T does not support checkpointing", gr)
	}
	st := GenState{
		RNG:         g.rng.State(),
		PhaseIdx:    g.phaseIdx,
		PhaseInstrs: g.phaseInstrs,
		MemAcc:      g.memAcc,
		CpiAcc:      g.cpiAcc,
		Pos:         make([]uint32, len(g.patterns)),
		Offset:      make([]uint64, len(g.patterns)),
	}
	for i := range g.patterns {
		st.Pos[i] = g.patterns[i].pos
		st.Offset[i] = g.patterns[i].offset
	}
	return st, nil
}

// RestoreGenState overlays a captured cursor onto a generator freshly
// built by New for the same (profile, seed). The phase chains are already
// in place from construction; only the cursor moves.
func RestoreGenState(gr Generator, st GenState) error {
	g, ok := gr.(*gen)
	if !ok {
		return fmt.Errorf("workload: generator %T does not support checkpointing", gr)
	}
	if len(st.Pos) != len(g.patterns) || len(st.Offset) != len(g.patterns) {
		return fmt.Errorf("workload: generator state has %d/%d phase cursors, profile has %d phases",
			len(st.Pos), len(st.Offset), len(g.patterns))
	}
	if st.PhaseIdx < 0 || st.PhaseIdx >= len(g.profile.Phases) {
		return fmt.Errorf("workload: generator state phase %d outside profile's %d phases",
			st.PhaseIdx, len(g.profile.Phases))
	}
	g.rng.SetState(st.RNG)
	g.phaseIdx = st.PhaseIdx
	g.phaseInstrs = st.PhaseInstrs
	g.memAcc = st.MemAcc
	g.cpiAcc = st.CpiAcc
	for i := range g.patterns {
		g.patterns[i].pos = st.Pos[i]
		g.patterns[i].offset = st.Offset[i]
	}
	return nil
}
