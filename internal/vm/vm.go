// Package vm defines the virtual machine and virtual CPU state shared by
// the schedulers, the Kyoto accounting layer, and the hypervisor testbed —
// the moral equivalent of Xen's csched_dom / csched_vcpu structures, which
// is where the paper's 110-line patch keeps its per-VM pollution state.
package vm

import (
	"fmt"

	"kyoto/internal/cache"
	"kyoto/internal/cpu"
	"kyoto/internal/pmc"
	"kyoto/internal/workload"
)

// NoPin marks an unpinned vCPU.
const NoPin = -1

// DefaultWeight is the credit-scheduler weight assigned when a spec leaves
// it zero (Xen's default).
const DefaultWeight = 256

// Spec declares a VM to be added to a World.
type Spec struct {
	// Name identifies the VM in reports ("vsen1", ...).
	Name string
	// App names a built-in workload profile; Profile overrides it when
	// non-zero.
	App string
	// Profile, when it has phases, is used instead of looking up App.
	Profile workload.Profile
	// VCPUs is the vCPU count (default 1, the paper's assumption §2.2).
	VCPUs int
	// Weight is the credit-scheduler weight (default DefaultWeight).
	Weight int64
	// CapPercent caps the VM's CPU consumption per accounting window, in
	// percent of one core per vCPU; 0 means uncapped. This is the lever
	// Figure 3 sweeps.
	CapPercent int
	// LLCCap is the booked pollution permit in Equation-1 units (LLC
	// misses per busy millisecond). 0 books no permit: the VM is never
	// pollution-punished.
	LLCCap float64
	// Pins optionally pins vCPU i to core Pins[i]; missing entries mean
	// unpinned.
	Pins []int
	// HomeNode is the NUMA node holding the VM's memory.
	HomeNode int
	// Seed diversifies the workload stream; 0 derives one from the VM id.
	Seed uint64
}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("vm: spec needs a name")
	}
	if s.App == "" && len(s.Profile.Phases) == 0 {
		return fmt.Errorf("vm %q: spec needs App or Profile", s.Name)
	}
	if s.VCPUs < 0 {
		return fmt.Errorf("vm %q: negative vCPU count", s.Name)
	}
	if s.CapPercent < 0 || s.CapPercent > 100 {
		return fmt.Errorf("vm %q: cap %d%% outside [0,100]", s.Name, s.CapPercent)
	}
	if s.LLCCap < 0 {
		return fmt.Errorf("vm %q: negative llc_cap", s.Name)
	}
	if s.Weight < 0 {
		return fmt.Errorf("vm %q: negative weight", s.Name)
	}
	return nil
}

// VM is a running virtual machine.
type VM struct {
	// ID is the domain id, assigned by the World.
	ID int
	// Name is the spec name.
	Name string
	// App is the resolved profile name.
	App string
	// Weight, CapPercent, LLCCap, HomeNode mirror the Spec.
	Weight     int64
	CapPercent int
	LLCCap     float64
	HomeNode   int
	// VCPUs are the VM's virtual CPUs.
	VCPUs []*VCPU

	// PollutionBlocked is set by the Kyoto layer while the VM's pollution
	// quota is negative; schedulers must not run its vCPUs ("priority
	// OVER" in the paper's terms, §3.2).
	PollutionBlocked bool
	// Down is set while the VM is suspended for a live-migration blackout
	// window (hv.World.SuspendVM); schedulers must not run its vCPUs.
	Down bool
	// Punishments counts the ticks the VM spent pollution-blocked
	// (Fig 5 top-right).
	Punishments uint64

	// Carried holds the counters the VM accumulated on previous hosts
	// before a live migration (cluster.Fleet.Migrate re-instantiates the
	// domain on the destination with fresh per-vCPU counters, so monitors
	// sampling vCPU deltas never see the history as a one-tick spike).
	// Counters folds it in, keeping lifetime statistics migration-proof.
	Carried pmc.Counters

	// Spec is the specification the VM was instantiated from, retained
	// verbatim so checkpointing can rebuild the domain — including its
	// workload generators, whose seeds derive from the spec — on restore.
	Spec Spec
}

// Counters aggregates the PMCs of all the VM's vCPUs plus anything carried
// over from hosts the VM lived on before being migrated.
func (m *VM) Counters() pmc.Counters {
	agg := m.Carried
	for _, v := range m.VCPUs {
		agg.Add(v.Counters)
	}
	return agg
}

// VCPU is one virtual CPU.
type VCPU struct {
	// VM owns this vCPU.
	VM *VM
	// ID is the global vCPU id; it doubles as the cache attribution
	// owner tag. IDs are recycled after VM removal (hv releases the tag
	// once every cache line is evicted and the stats rows are zeroed), so
	// the dense per-owner cache slices stay bounded under churn. Nothing
	// arithmetic may depend on it — use Seq for deterministic ordering.
	ID int
	// Seq is the vCPU's creation sequence number, monotonic and never
	// reused. Schedulers tie-break on Seq, not ID: a recycled ID would
	// otherwise let a new VM inherit a departed VM's round-robin slot and
	// shift the schedule.
	Seq int
	// Index is the vCPU's index within its VM.
	Index int
	// Gen is the vCPU's instruction stream.
	Gen workload.Generator
	// Counters is the vCPU's cumulative PMC block.
	Counters pmc.Counters
	// Ctx is the execution context bound to Counters/Gen; the hypervisor
	// rebinds its Path on every placement.
	Ctx cpu.Context
	// ACtx is the analytic-tier execution context; nil on exact-fidelity
	// worlds. The hypervisor rebinds its LLC on every placement, exactly
	// as it rebinds Ctx.Path.
	ACtx *cpu.AnalyticContext

	// Pin restricts the vCPU to one core (NoPin = free).
	Pin int
	// LastCore is the core the vCPU last ran on (NoPin before first run).
	LastCore int

	// Scheduler-owned state (credit scheduler fields mirror XCS).
	RemainCredit int64
	OverPriority bool   // true when RemainCredit exhausted (priority OVER)
	WindowBurn   uint64 // wall cycles consumed in the current cap window
	CapBlocked   bool   // true when the cap budget for the window is spent
	LastRunTick  uint64 // round-robin fairness key
	VRuntime     uint64 // CFS virtual runtime
}

// Owner returns the cache attribution tag for this vCPU.
func (v *VCPU) Owner() cache.Owner { return cache.Owner(v.ID) }

// Schedulable reports whether any scheduler may run this vCPU now: it is
// not pollution-blocked (Kyoto), not cap-blocked (credit cap), and not in
// a migration blackout window.
func (v *VCPU) Schedulable() bool {
	return !v.VM.PollutionBlocked && !v.CapBlocked && !v.VM.Down
}

// AllowedOn reports whether the vCPU may run on the given core id.
func (v *VCPU) AllowedOn(coreID int) bool {
	return v.Pin == NoPin || v.Pin == coreID
}
