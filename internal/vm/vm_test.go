package vm

import (
	"testing"

	"kyoto/internal/pmc"
)

func TestSpecValidate(t *testing.T) {
	tests := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"ok", Spec{Name: "v", App: "gcc"}, true},
		{"no name", Spec{App: "gcc"}, false},
		{"no app or profile", Spec{Name: "v"}, false},
		{"negative vcpus", Spec{Name: "v", App: "gcc", VCPUs: -1}, false},
		{"cap too big", Spec{Name: "v", App: "gcc", CapPercent: 150}, false},
		{"negative cap", Spec{Name: "v", App: "gcc", CapPercent: -1}, false},
		{"negative llccap", Spec{Name: "v", App: "gcc", LLCCap: -5}, false},
		{"negative weight", Spec{Name: "v", App: "gcc", Weight: -1}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want ok, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestVMCountersAggregate(t *testing.T) {
	m := &VM{Name: "v"}
	v1 := &VCPU{VM: m, Counters: pmc.Counters{Instructions: 10, LLCMisses: 1}}
	v2 := &VCPU{VM: m, Counters: pmc.Counters{Instructions: 20, LLCMisses: 2}}
	m.VCPUs = []*VCPU{v1, v2}
	agg := m.Counters()
	if agg.Instructions != 30 || agg.LLCMisses != 3 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestSchedulable(t *testing.T) {
	m := &VM{}
	v := &VCPU{VM: m}
	if !v.Schedulable() {
		t.Fatal("fresh vCPU must be schedulable")
	}
	m.PollutionBlocked = true
	if v.Schedulable() {
		t.Fatal("pollution block must stop scheduling")
	}
	m.PollutionBlocked = false
	v.CapBlocked = true
	if v.Schedulable() {
		t.Fatal("cap block must stop scheduling")
	}
}

func TestAllowedOn(t *testing.T) {
	v := &VCPU{Pin: NoPin}
	if !v.AllowedOn(0) || !v.AllowedOn(3) {
		t.Fatal("unpinned vCPU runs anywhere")
	}
	v.Pin = 2
	if v.AllowedOn(0) || !v.AllowedOn(2) {
		t.Fatal("pinned vCPU restricted to its core")
	}
}

func TestOwnerTag(t *testing.T) {
	v := &VCPU{ID: 7}
	if int(v.Owner()) != 7 {
		t.Fatal("owner tag must be the vCPU id")
	}
}
