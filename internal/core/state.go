package core

// Kyoto-ledger checkpoint support. The decorator's mutable state beyond
// the vCPU fields (which internal/hv captures directly) is the per-VM
// pollution ledger; the pending measurement buffer is always empty at
// tick boundaries (EndTick drains it), which is the only place the
// snapshot layer checkpoints. Capture/restore implement the optional
// hv.StatefulScheduler interface, keyed by registration order so the
// blob needs no VM identities.

import (
	"encoding/json"
	"fmt"
)

// ledgerState is one VM's serialized pollution account. All three values
// are finite, so their JSON round-trip is exact.
type ledgerState struct {
	Balance    float64 `json:"balance"`
	LastRate   float64 `json:"last_rate"`
	LastMisses float64 `json:"last_misses"`
}

// CaptureSchedState implements hv.StatefulScheduler: the ledgers in VM
// registration order.
func (k *Kyoto) CaptureSchedState() (json.RawMessage, error) {
	states := make([]ledgerState, len(k.vmsInOrder))
	for i, domain := range k.vmsInOrder {
		l := k.ledgers[domain]
		states[i] = ledgerState{Balance: l.balance, LastRate: l.lastRate, LastMisses: l.lastMisses}
	}
	return json.Marshal(states)
}

// RestoreSchedState implements hv.StatefulScheduler: overlay captured
// ledgers onto the accounts Register opened, in registration order. The
// caller must have re-registered exactly the checkpointed VM population.
func (k *Kyoto) RestoreSchedState(data json.RawMessage) error {
	var states []ledgerState
	if err := json.Unmarshal(data, &states); err != nil {
		return fmt.Errorf("core: kyoto ledger state: %w", err)
	}
	if len(states) != len(k.vmsInOrder) {
		return fmt.Errorf("core: kyoto ledger state has %d accounts, %d VMs are registered", len(states), len(k.vmsInOrder))
	}
	for i, domain := range k.vmsInOrder {
		l := k.ledgers[domain]
		l.balance = states[i].Balance
		l.lastRate = states[i].LastRate
		l.lastMisses = states[i].LastMisses
	}
	return nil
}
