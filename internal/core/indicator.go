// Package core implements the paper's contribution: the Kyoto
// "polluters pay" system. It provides
//
//   - the pollution indicators of §3.3/§4.2 — Equation 1
//     (llc_misses x cpu_freq_khz / unhalted_core_cycles) and the raw
//     LLC-miss-rate alternative it is compared against,
//   - pollution permits (the llc_cap VM parameter of §3.1) and the per-VM
//     pollution-quota ledger,
//   - the Kyoto scheduler extension (§3.2): a decorator over any base
//     scheduler (credit/XCS -> KS4Xen, CFS -> KS4Linux, Pisces ->
//     KS4Pisces) that debits quotas with measured pollution and deprives
//     VMs of the processor while their quota is negative.
package core

import (
	"kyoto/internal/machine"
	"kyoto/internal/pmc"
)

// Indicator selects how a VM's pollution level (llc_cap_act) is estimated
// from a PMC sample — the comparison of §4.2 / Figure 4.
type Indicator int

// Indicators.
const (
	// Equation1 is the paper's chosen indicator (introduced by Tang et
	// al. [7]): LLC misses normalized by unhalted core cycles, i.e. the
	// pollution *rate while actually executing*.
	Equation1 Indicator = iota + 1
	// RawLLCM is the baseline indicator: LLC misses per wall-clock
	// millisecond, which conflates pollution with CPU occupancy and halts.
	RawLLCM
)

// String returns the indicator name.
func (i Indicator) String() string {
	switch i {
	case Equation1:
		return "equation1"
	case RawLLCM:
		return "llcm"
	default:
		return "indicator?"
	}
}

// Value computes the indicator over a counter delta. Both indicators are
// expressed in misses per millisecond so they are directly comparable;
// they differ in the time base (busy vs wall), which is exactly what
// separates the paper's o2 and o3 orderings.
func (i Indicator) Value(d pmc.Counters) float64 {
	switch i {
	case Equation1:
		return Equation1Value(d)
	case RawLLCM:
		return RawLLCMValue(d)
	default:
		return 0
	}
}

// Equation1Value computes the paper's Equation 1:
//
//	llc_cap_act = llc_misses x cpu_freq_khz / unhalted_core_cycles
//
// With the model clock in kHz this is LLC misses per millisecond of
// non-halted execution.
func Equation1Value(d pmc.Counters) float64 {
	if d.UnhaltedCycles == 0 {
		return 0
	}
	return float64(d.LLCMisses) * float64(machine.CPUFreqKHz) / float64(d.UnhaltedCycles)
}

// RawLLCMValue is the §4.2 baseline: LLC misses per wall millisecond of
// scheduled time (busy + halted).
func RawLLCMValue(d pmc.Counters) float64 {
	wall := d.WallCycles()
	if wall == 0 {
		return 0
	}
	return float64(d.LLCMisses) * float64(machine.CPUFreqKHz) / float64(wall)
}

// BusyMillis returns the busy milliseconds covered by a counter delta.
func BusyMillis(d pmc.Counters) float64 {
	return float64(d.UnhaltedCycles) / float64(machine.CPUFreqKHz)
}

// WallMillis returns the wall milliseconds covered by a counter delta.
func WallMillis(d pmc.Counters) float64 {
	return float64(d.WallCycles()) / float64(machine.CPUFreqKHz)
}
