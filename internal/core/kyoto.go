package core

import (
	"fmt"
	"sort"

	"kyoto/internal/machine"
	"kyoto/internal/sched"
	"kyoto/internal/vm"
)

// Measurement is one VM's attributed pollution for the tick that just
// executed, produced by a monitor (internal/monitor) and fed to the Kyoto
// scheduler before its end-of-tick accounting.
type Measurement struct {
	// VM is the measured domain.
	VM *vm.VM
	// Misses is the estimated number of LLC misses attributable to the
	// VM during the tick.
	Misses float64
	// Rate is the estimated pollution rate (indicator units, misses per
	// millisecond) behind Misses; kept for reporting (Fig 5 bottom).
	Rate float64
}

// Option configures the Kyoto scheduler.
type Option func(*Kyoto)

// WithBanking lets VMs accumulate unused pollution quota beyond one
// slice's allowance ("carbon credits"). The paper's design refills at most
// one slice of quota; banking is an extension evaluated in the ablation
// benches.
func WithBanking(maxSlices float64) Option {
	return func(k *Kyoto) { k.bankSlices = maxSlices }
}

// WithOverheadCycles sets the per-tick monitoring cost charged to core 0,
// modelling the perfctr collection path whose (negligible) cost §4.5 /
// Figure 12 measures.
func WithOverheadCycles(c uint64) Option {
	return func(k *Kyoto) { k.overhead = c }
}

// DefaultOverheadCycles models the perfctr-xen sampling cost per tick.
// ~500 cycles against a 1M-cycle tick is 0.05%: "near zero", matching
// Figure 12.
const DefaultOverheadCycles = 500

// Kyoto is the pollution-enforcing scheduler: it delegates all CPU
// scheduling to a base policy and adds the paper's pollution-quota ledger.
//
//	KS4Xen    = New(sched.NewCredit(n))
//	KS4Linux  = New(sched.NewCFS())
//	KS4Pisces = New(sched.NewPisces())
//
// Each tick, monitors feed per-VM Measurements; EndTick debits each VM's
// quota. A VM whose quota goes negative is marked PollutionBlocked — the
// base scheduler then cannot run it (the paper's "priority OVER"), so the
// processor acts as the enforcement lever (§4.1). On slice boundaries
// every permitted VM earns its booked llc_cap worth of quota back.
type Kyoto struct {
	base       sched.Scheduler
	ledgers    map[*vm.VM]*ledger
	vmsInOrder []*vm.VM
	registered map[*vm.VCPU]bool
	vcpuCount  map[*vm.VM]int
	pending    []Measurement
	bankSlices float64
	overhead   uint64
}

// ledger is one VM's pollution account.
type ledger struct {
	// balance is the quota in misses; negative means the VM owes.
	balance float64
	// lastRate is the most recent measured pollution rate (reporting).
	lastRate float64
	// lastMisses is the most recent tick's attributed misses.
	lastMisses float64
}

var _ sched.Scheduler = (*Kyoto)(nil)
var _ sched.Remover = (*Kyoto)(nil)

// New wraps base with Kyoto pollution enforcement.
func New(base sched.Scheduler, opts ...Option) *Kyoto {
	k := &Kyoto{
		base:       base,
		ledgers:    make(map[*vm.VM]*ledger),
		registered: make(map[*vm.VCPU]bool),
		vcpuCount:  make(map[*vm.VM]int),
		bankSlices: 1,
		overhead:   DefaultOverheadCycles,
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

// Name implements sched.Scheduler.
func (k *Kyoto) Name() string { return "kyoto+" + k.base.Name() }

// Base returns the wrapped scheduler.
func (k *Kyoto) Base() sched.Scheduler { return k.base }

// IdleTickInvariant implements sched.IdleTickInvariant for the
// decorator's own state: with no registered VMs, EndTick finds no
// pending measurements and no ledgers to refill, so it only delegates.
// hv additionally requires the base scheduler to carry the marker
// (checked through Base), so a Kyoto-wrapped non-invariant policy does
// not qualify.
func (k *Kyoto) IdleTickInvariant() {}

// TickOverheadCycles implements hv.OverheadReporter.
func (k *Kyoto) TickOverheadCycles() uint64 { return k.overhead }

// Register implements sched.Scheduler.
func (k *Kyoto) Register(v *vm.VCPU) {
	if _, ok := k.ledgers[v.VM]; !ok {
		// Start with one slice of quota so a fresh VM is schedulable.
		k.ledgers[v.VM] = &ledger{balance: k.sliceQuota(v.VM)}
		k.vmsInOrder = append(k.vmsInOrder, v.VM)
	}
	if !k.registered[v] {
		k.registered[v] = true
		k.vcpuCount[v.VM]++
	}
	k.base.Register(v)
}

// Unregister implements sched.Remover: the departing VM's pollution
// ledger is closed when its last vCPU leaves, so long-running churn
// scenarios do not accumulate dead accounts. The base scheduler must
// itself implement sched.Remover (all built-in policies do); wrapping a
// base that cannot remove vCPUs is a static misconfiguration, and
// silently skipping the base removal would leave departed vCPUs
// schedulable — so it panics, like Pisces.Register on an unpinned vCPU.
func (k *Kyoto) Unregister(v *vm.VCPU) {
	r, ok := k.base.(sched.Remover)
	if !ok {
		panic(fmt.Sprintf("core: base scheduler %s does not implement sched.Remover; cannot remove vCPUs through the Kyoto decorator", k.base.Name()))
	}
	r.Unregister(v)
	// Never-registered (or already-unregistered) vCPUs are a no-op, per
	// the Remover contract — a stray double-removal must not collapse a
	// live sibling's ledger.
	if !k.registered[v] {
		return
	}
	delete(k.registered, v)
	k.vcpuCount[v.VM]--
	if k.vcpuCount[v.VM] > 0 {
		return
	}
	delete(k.vcpuCount, v.VM)
	delete(k.ledgers, v.VM)
	for i, domain := range k.vmsInOrder {
		if domain == v.VM {
			k.vmsInOrder = append(k.vmsInOrder[:i], k.vmsInOrder[i+1:]...)
			break
		}
	}
}

// PickNext implements sched.Scheduler by delegation; pollution blocking is
// enforced through vm.VCPU.Schedulable, which every base policy honours.
func (k *Kyoto) PickNext(core *machine.Core, now uint64) *vm.VCPU {
	return k.base.PickNext(core, now)
}

// ChargeTick implements sched.Scheduler by delegation.
func (k *Kyoto) ChargeTick(v *vm.VCPU, wallCycles uint64, now uint64) {
	k.base.ChargeTick(v, wallCycles, now)
}

// TickBudget implements sched.BudgetLimiter by delegation, so base-policy
// caps keep working under the Kyoto decorator.
func (k *Kyoto) TickBudget(v *vm.VCPU, now uint64) uint64 {
	if bl, ok := k.base.(sched.BudgetLimiter); ok {
		return bl.TickBudget(v, now)
	}
	return ^uint64(0)
}

// Feed delivers this tick's measurements. Monitors call it from their
// OnTick hook, which the testbed runs before EndTick.
func (k *Kyoto) Feed(ms []Measurement) {
	k.pending = append(k.pending, ms...)
}

// EndTick implements sched.Scheduler: debit quotas with the fed
// measurements, punish or absolve, and refill on slice boundaries.
func (k *Kyoto) EndTick(now uint64) {
	for _, m := range k.pending {
		l, ok := k.ledgers[m.VM]
		if !ok {
			continue
		}
		l.lastRate = m.Rate
		l.lastMisses = m.Misses
		if m.VM.LLCCap <= 0 {
			continue // no permit booked: never punished
		}
		l.balance -= m.Misses
	}
	k.pending = k.pending[:0]

	// Refill earned quota at slice boundaries (§3.2: "at the end of each
	// time slice, VMs earn a specific amount of pollution quota based on
	// their booked llc_cap").
	refill := (now+1)%machine.TicksPerSlice == 0
	for _, domain := range k.vmsInOrder {
		l := k.ledgers[domain]
		if domain.LLCCap <= 0 {
			domain.PollutionBlocked = false
			continue
		}
		if refill {
			q := k.sliceQuota(domain)
			l.balance += q
			if maxBank := q * k.bankSlices; l.balance > maxBank {
				l.balance = maxBank
			}
		}
		blocked := l.balance < 0
		if blocked {
			domain.Punishments++
		}
		domain.PollutionBlocked = blocked
	}

	k.base.EndTick(now)
}

// sliceQuota converts a VM's booked llc_cap (misses per millisecond) into
// the quota earned per slice (misses per slice).
func (k *Kyoto) sliceQuota(domain *vm.VM) float64 {
	return domain.LLCCap * float64(machine.TickMillis) * float64(machine.TicksPerSlice)
}

// QuotaBalance returns a VM's current quota balance in misses (Fig 5
// bottom plots this ledger).
func (k *Kyoto) QuotaBalance(domain *vm.VM) float64 {
	if l, ok := k.ledgers[domain]; ok {
		return l.balance
	}
	return 0
}

// LastRate returns the VM's most recent measured pollution rate.
func (k *Kyoto) LastRate(domain *vm.VM) float64 {
	if l, ok := k.ledgers[domain]; ok {
		return l.lastRate
	}
	return 0
}

// LastMisses returns the VM's most recent tick's attributed misses.
func (k *Kyoto) LastMisses(domain *vm.VM) float64 {
	if l, ok := k.ledgers[domain]; ok {
		return l.lastMisses
	}
	return 0
}

// VMs returns the domains with ledgers, in registration order (copy).
func (k *Kyoto) VMs() []*vm.VM {
	out := make([]*vm.VM, len(k.vmsInOrder))
	copy(out, k.vmsInOrder)
	return out
}

// RankByIndicator orders application names by descending indicator value —
// the Figure 4 analysis helper. values maps name to the indicator value.
func RankByIndicator(values map[string]float64) []string {
	names := make([]string, 0, len(values))
	for n := range values {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		vi, vj := values[names[i]], values[names[j]]
		if vi != vj {
			return vi > vj
		}
		return names[i] < names[j]
	})
	return names
}
